// MetricsRegistry unit tests: counter/gauge semantics, histogram percentile
// math (empty, single sample, bucket boundaries, overflow), concurrent
// updates, Prometheus rendering, and the engine-wide instrumentation hooks.
#include "util/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "test_util.h"
#include "util/thread_pool.h"

namespace relopt {
namespace {

using tu::Sql;

TEST(MetricsTest, CounterAndGauge) {
  MetricsRegistry registry;
  MetricCounter* c = registry.counter("test.counter");
  EXPECT_EQ(c->value(), 0u);
  c->Add(1);
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
  // Find-or-create returns the same object.
  EXPECT_EQ(registry.counter("test.counter"), c);

  MetricGauge* g = registry.gauge("test.gauge");
  g->Add(10);
  g->Sub(3);
  EXPECT_EQ(g->value(), 7);
  g->Set(-5);
  EXPECT_EQ(g->value(), -5);
}

TEST(MetricsTest, HistogramEmpty) {
  MetricHistogram h({1.0, 10.0, 100.0});
  MetricHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.total_count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.Percentile(0.5), 0.0);
  EXPECT_EQ(s.Percentile(0.99), 0.0);
}

TEST(MetricsTest, HistogramSingleSample) {
  MetricHistogram h({1.0, 10.0, 100.0});
  h.Observe(5.0);
  MetricHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.total_count, 1u);
  EXPECT_DOUBLE_EQ(s.sum, 5.0);
  EXPECT_DOUBLE_EQ(s.max_value, 5.0);
  // Every percentile of a one-sample histogram lands in the (1, 10] bucket
  // and must not exceed the tracked maximum.
  for (double q : {0.0, 0.5, 0.95, 1.0}) {
    double p = s.Percentile(q);
    EXPECT_GT(p, 1.0) << "q=" << q;
    EXPECT_LE(p, 5.0) << "q=" << q;
  }
}

TEST(MetricsTest, HistogramBucketBoundaries) {
  // Prometheus "le" semantics: a sample equal to a bound belongs to that
  // bound's bucket, not the next one.
  MetricHistogram h({1.0, 10.0, 100.0});
  h.Observe(1.0);   // (-inf, 1]
  h.Observe(10.0);  // (1, 10]
  MetricHistogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 0u);
  EXPECT_EQ(s.counts[3], 0u);
}

TEST(MetricsTest, HistogramOverflowBucket) {
  MetricHistogram h({1.0, 10.0});
  h.Observe(0.5);
  h.Observe(5000.0);
  h.Observe(99999.0);
  MetricHistogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 3u);
  EXPECT_EQ(s.counts[2], 2u);  // both large samples overflowed
  EXPECT_DOUBLE_EQ(s.max_value, 99999.0);
  // Percentiles owned by the overflow bucket report the exact maximum.
  EXPECT_DOUBLE_EQ(s.Percentile(0.99), 99999.0);
  // The median lands in the overflow bucket too (2 of 3 samples above 10).
  EXPECT_DOUBLE_EQ(s.Percentile(0.9), 99999.0);
}

TEST(MetricsTest, HistogramPercentileMonotone) {
  MetricHistogram h(MetricHistogram::LatencyBucketsUs());
  for (int i = 1; i <= 1000; ++i) h.Observe(static_cast<double>(i));
  MetricHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.total_count, 1000u);
  double prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    double p = s.Percentile(q);
    EXPECT_GE(p, prev) << "q=" << q;
    prev = p;
  }
  // p50 of uniform 1..1000 should land near 500 (bucket interpolation).
  EXPECT_GT(s.Percentile(0.5), 200.0);
  EXPECT_LT(s.Percentile(0.5), 800.0);
}

TEST(MetricsTest, ConcurrentHistogramObserve) {
  MetricHistogram h(MetricHistogram::SizeBuckets());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<double>((t * kPerThread + i) % 1000 + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MetricHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.total_count, static_cast<uint64_t>(kThreads * kPerThread));
  uint64_t bucket_total = 0;
  for (uint64_t c : s.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, s.total_count);
}

TEST(MetricsTest, ConcurrentCounterAdds) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    // Half the threads race registration against updates.
    threads.emplace_back([&registry]() {
      for (int i = 0; i < kPerThread; ++i) registry.counter("racy.counter")->Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.counter("racy.counter")->value(),
            static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(MetricsTest, SnapshotAndPrometheusRendering) {
  MetricsRegistry registry;
  registry.counter("app.requests")->Add(3);
  registry.gauge("app.depth")->Set(2);
  registry.histogram("app.latency_us", {1.0, 10.0})->Observe(4.0);

  std::vector<MetricSample> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // Sorted by name.
  EXPECT_EQ(snap[0].name, "app.depth");
  EXPECT_EQ(snap[0].kind, "gauge");
  EXPECT_EQ(snap[1].name, "app.latency_us");
  EXPECT_EQ(snap[1].kind, "histogram");
  EXPECT_EQ(snap[1].count, 1u);
  EXPECT_EQ(snap[2].name, "app.requests");
  EXPECT_DOUBLE_EQ(snap[2].value, 3.0);

  std::string prom = registry.RenderPrometheus();
  // Dots map to underscores; histograms render cumulative buckets.
  EXPECT_NE(prom.find("# TYPE app_requests counter"), std::string::npos) << prom;
  EXPECT_NE(prom.find("app_requests 3"), std::string::npos) << prom;
  EXPECT_NE(prom.find("app_latency_us_bucket{le=\"10\"} 1"), std::string::npos) << prom;
  EXPECT_NE(prom.find("app_latency_us_bucket{le=\"+Inf\"} 1"), std::string::npos) << prom;
  EXPECT_NE(prom.find("app_latency_us_count 1"), std::string::npos) << prom;

  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"app.requests\""), std::string::npos) << json;
}

// The engine instrumentation: running statements must move the global
// counters. Asserted as deltas because the registry is process-global and
// other tests run in the same process.
TEST(MetricsTest, EngineCountersAdvanceWithWork) {
  const EngineMetrics& em = EngineMetrics::Get();
  const uint64_t reads_before = em.disk_page_reads->value();
  const uint64_t opts_before = em.optimizer_optimizations->value();
  const uint64_t rows_before = em.exec_rows_produced->value();

  // A tiny pool under a multi-page table forces real page reads (at ~100
  // rows per 4K page, 3000 rows cannot fit in 8 frames).
  SessionOptions opts;
  opts.buffer_pool_pages = 8;
  Database db(opts);
  tu::LoadEmpDept(&db, 3000, 10);
  Sql(&db, "SELECT * FROM emp WHERE salary > 2000");

  EXPECT_GT(em.disk_page_reads->value(), reads_before);
  EXPECT_GT(em.optimizer_optimizations->value(), opts_before);
  EXPECT_GT(em.exec_rows_produced->value(), rows_before);
  EXPECT_GT(em.engine_statement_us->snapshot().total_count, 0u);
}

TEST(MetricsTest, ThreadPoolCountersAdvance) {
  const EngineMetrics& em = EngineMetrics::Get();
  const uint64_t run_before = em.threadpool_tasks_run->value();
  std::atomic<int> done{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&done]() { done.fetch_add(1); });
    }
    // The destructor drains the queue and joins the workers.
  }
  EXPECT_EQ(done.load(), 32);
  EXPECT_GE(em.threadpool_tasks_run->value(), run_before + 32);
}

}  // namespace
}  // namespace relopt
