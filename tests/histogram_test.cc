// Equi-depth histogram construction and estimation tests.
#include <gtest/gtest.h>

#include "catalog/histogram.h"
#include "util/rng.h"

namespace relopt {
namespace {

std::vector<Value> Ints(std::initializer_list<int64_t> vals) {
  std::vector<Value> out;
  for (int64_t v : vals) out.push_back(Value::Int(v));
  return out;
}

std::vector<Value> Range(int64_t lo, int64_t hi) {
  std::vector<Value> out;
  for (int64_t v = lo; v <= hi; ++v) out.push_back(Value::Int(v));
  return out;
}

TEST(HistogramTest, EmptyInput) {
  EquiDepthHistogram h = *EquiDepthHistogram::Build({}, 8);
  EXPECT_TRUE(h.Empty());
  EXPECT_DOUBLE_EQ(h.EstimateEq(Value::Int(1)), 0.0);
  EXPECT_DOUBLE_EQ(h.EstimateLess(Value::Int(1), true), 0.0);
}

TEST(HistogramTest, BucketsCoverInput) {
  EquiDepthHistogram h = *EquiDepthHistogram::Build(Range(1, 100), 10);
  EXPECT_EQ(h.total_count(), 100u);
  EXPECT_EQ(h.buckets().size(), 10u);
  uint64_t total = 0;
  for (const auto& b : h.buckets()) total += b.count;
  EXPECT_EQ(total, 100u);
  EXPECT_TRUE(h.buckets().front().lo.Equals(Value::Int(1)));
  EXPECT_TRUE(h.buckets().back().hi.Equals(Value::Int(100)));
}

TEST(HistogramTest, EqOnUniformData) {
  EquiDepthHistogram h = *EquiDepthHistogram::Build(Range(1, 1000), 32);
  // Each value is 1/1000 of the data.
  EXPECT_NEAR(h.EstimateEq(Value::Int(500)), 0.001, 0.0005);
  EXPECT_DOUBLE_EQ(h.EstimateEq(Value::Int(5000)), 0.0);  // out of range
  EXPECT_DOUBLE_EQ(h.EstimateEq(Value::Int(-1)), 0.0);
  EXPECT_DOUBLE_EQ(h.EstimateEq(Value::Null()), 0.0);
}

TEST(HistogramTest, HeavyHitterGetsOwnBucketMass) {
  // 900 copies of 5, 100 distinct others: Eq(5) should be ~0.9.
  std::vector<Value> values;
  for (int i = 0; i < 900; ++i) values.push_back(Value::Int(5));
  for (int i = 0; i < 100; ++i) values.push_back(Value::Int(1000 + i));
  EquiDepthHistogram h = *EquiDepthHistogram::Build(std::move(values), 16);
  EXPECT_NEAR(h.EstimateEq(Value::Int(5)), 0.9, 0.1);
  // A rare value is far below.
  EXPECT_LT(h.EstimateEq(Value::Int(1050)), 0.05);
}

TEST(HistogramTest, LessEstimates) {
  EquiDepthHistogram h = *EquiDepthHistogram::Build(Range(1, 1000), 32);
  EXPECT_NEAR(h.EstimateLess(Value::Int(500), false), 0.5, 0.05);
  EXPECT_NEAR(h.EstimateLess(Value::Int(100), false), 0.1, 0.05);
  EXPECT_DOUBLE_EQ(h.EstimateLess(Value::Int(0), false), 0.0);
  EXPECT_NEAR(h.EstimateLess(Value::Int(2000), false), 1.0, 1e-9);
}

TEST(HistogramTest, RangeEstimates) {
  EquiDepthHistogram h = *EquiDepthHistogram::Build(Range(1, 1000), 32);
  Value lo = Value::Int(250), hi = Value::Int(750);
  EXPECT_NEAR(h.EstimateRange(&lo, true, &hi, true), 0.5, 0.05);
  EXPECT_NEAR(h.EstimateRange(nullptr, true, &hi, true), 0.75, 0.05);
  EXPECT_NEAR(h.EstimateRange(&lo, true, nullptr, true), 0.75, 0.05);
  EXPECT_NEAR(h.EstimateRange(nullptr, true, nullptr, true), 1.0, 1e-9);
}

TEST(HistogramTest, SkewedDataStillAccurate) {
  // Zipf-ish data: histogram should estimate the head much better than the
  // uniform assumption would.
  Rng rng(17);
  ZipfGenerator zipf(100, 1.1);
  std::vector<Value> values;
  int count_of_one = 0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = zipf.Next(&rng);
    if (v == 1) ++count_of_one;
    values.push_back(Value::Int(static_cast<int64_t>(v)));
  }
  double true_frac = static_cast<double>(count_of_one) / 20000.0;
  EquiDepthHistogram h = *EquiDepthHistogram::Build(std::move(values), 32);
  double est = h.EstimateEq(Value::Int(1));
  // Within 2x of truth (the uniform assumption would be off by ~20x).
  EXPECT_GT(est, true_frac / 2);
  EXPECT_LT(est, true_frac * 2);
}

TEST(HistogramTest, SingleValueInput) {
  std::vector<Value> values(50, Value::Int(7));
  EquiDepthHistogram h = *EquiDepthHistogram::Build(std::move(values), 8);
  EXPECT_EQ(h.buckets().size(), 1u);
  EXPECT_DOUBLE_EQ(h.EstimateEq(Value::Int(7)), 1.0);
  EXPECT_DOUBLE_EQ(h.EstimateEq(Value::Int(8)), 0.0);
}

TEST(HistogramTest, StringValues) {
  EquiDepthHistogram h =
      *EquiDepthHistogram::Build({Value::String("a"), Value::String("b"), Value::String("c"),
                                  Value::String("d")},
                                 2);
  EXPECT_GT(h.EstimateEq(Value::String("a")), 0.0);
  EXPECT_DOUBLE_EQ(h.EstimateEq(Value::String("zz")), 0.0);
  EXPECT_GT(h.EstimateLess(Value::String("c"), false), 0.0);
}

TEST(HistogramTest, EqualsBoundaryInclusivity) {
  EquiDepthHistogram h = *EquiDepthHistogram::Build(Ints({1, 2, 3, 4, 5}), 5);
  // col <= 3 should exceed col < 3 by about Eq(3).
  double le = h.EstimateLess(Value::Int(3), true);
  double lt = h.EstimateLess(Value::Int(3), false);
  EXPECT_GT(le, lt);
  EXPECT_NEAR(le - lt, h.EstimateEq(Value::Int(3)), 0.1);
}

TEST(HistogramTest, ToStringMentionsBuckets) {
  EquiDepthHistogram h = *EquiDepthHistogram::Build(Range(1, 10), 2);
  std::string s = h.ToString();
  EXPECT_NE(s.find("buckets"), std::string::npos);
}

}  // namespace
}  // namespace relopt
