// Direct executor tests: scans, filter, project, values, limit, materialize,
// index scan.
#include <gtest/gtest.h>

#include "exec/executor_factory.h"
#include "exec/filter.h"
#include "exec/index_scan.h"
#include "exec/limit.h"
#include "exec/materialize.h"
#include "exec/project.h"
#include "exec/seq_scan.h"
#include "exec/values_exec.h"
#include "test_util.h"
#include "types/key_codec.h"

namespace relopt {
namespace {

using tu::Sql;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : pool_(&disk_, 64), catalog_(&pool_), ctx_(&catalog_, &pool_) {
    Schema schema;
    schema.AddColumn(Column("id", TypeId::kInt64, "t"));
    schema.AddColumn(Column("v", TypeId::kInt64, "t"));
    table_ = *catalog_.CreateTable("t", schema);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(catalog_.InsertTuple(table_, Tuple({Value::Int(i), Value::Int(i % 10)})).ok());
    }
  }

  std::vector<Tuple> Drain(Executor* exec) {
    EXPECT_TRUE(exec->Init().ok());
    std::vector<Tuple> out;
    Tuple t;
    while (true) {
      Result<bool> has = exec->Next(&t);
      EXPECT_TRUE(has.ok()) << has.status().ToString();
      if (!has.ok() || !*has) break;
      out.push_back(t);
    }
    return out;
  }

  DiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
  ExecContext ctx_;
  TableInfo* table_;
};

TEST_F(ExecutorTest, SeqScanReturnsAllRows) {
  SeqScanExecutor scan(&ctx_, table_->schema(), table_);
  std::vector<Tuple> rows = Drain(&scan);
  EXPECT_EQ(rows.size(), 100u);
  EXPECT_EQ(scan.rows_produced(), 100u);
}

TEST_F(ExecutorTest, SeqScanRestartsOnReInit) {
  SeqScanExecutor scan(&ctx_, table_->schema(), table_);
  EXPECT_EQ(Drain(&scan).size(), 100u);
  EXPECT_EQ(Drain(&scan).size(), 100u);  // Init() again rewinds
}

TEST_F(ExecutorTest, FilterKeepsMatching) {
  auto scan = std::make_unique<SeqScanExecutor>(&ctx_, table_->schema(), table_);
  ExprPtr pred =
      MakeComparison(CompareOp::kEq, MakeColumnRef("t", "v"), MakeLiteral(Value::Int(3)));
  ASSERT_TRUE(pred->Bind(table_->schema()).ok());
  FilterExecutor filter(&ctx_, std::move(scan), pred.get());
  std::vector<Tuple> rows = Drain(&filter);
  EXPECT_EQ(rows.size(), 10u);
  for (const Tuple& r : rows) EXPECT_EQ(r.At(1).AsInt(), 3);
}

TEST_F(ExecutorTest, FilterRejectsNullPredicate) {
  // v = NULL evaluates to NULL -> rejected for every row.
  auto scan = std::make_unique<SeqScanExecutor>(&ctx_, table_->schema(), table_);
  ExprPtr pred =
      MakeComparison(CompareOp::kEq, MakeColumnRef("t", "v"), MakeLiteral(Value::Null()));
  ASSERT_TRUE(pred->Bind(table_->schema()).ok());
  FilterExecutor filter(&ctx_, std::move(scan), pred.get());
  EXPECT_TRUE(Drain(&filter).empty());
}

TEST_F(ExecutorTest, ProjectComputesExpressions) {
  auto scan = std::make_unique<SeqScanExecutor>(&ctx_, table_->schema(), table_);
  std::vector<ExprPtr> exprs;
  exprs.push_back(std::make_unique<ArithmeticExpr>(ArithOp::kMul, MakeColumnRef("t", "id"),
                                                   MakeLiteral(Value::Int(2))));
  ASSERT_TRUE(exprs[0]->Bind(table_->schema()).ok());
  Schema out;
  out.AddColumn(Column("double_id", TypeId::kInt64));
  ProjectExecutor project(&ctx_, out, std::move(scan), &exprs);
  std::vector<Tuple> rows = Drain(&project);
  ASSERT_EQ(rows.size(), 100u);
  EXPECT_EQ(rows[7].At(0).AsInt(), 14);
}

TEST_F(ExecutorTest, ValuesEmitsLiterals) {
  std::vector<Tuple> data = {Tuple({Value::Int(1)}), Tuple({Value::Int(2)})};
  Schema schema;
  schema.AddColumn(Column("x", TypeId::kInt64));
  ValuesExecutor values(&ctx_, schema, &data);
  EXPECT_EQ(Drain(&values).size(), 2u);
  EXPECT_EQ(Drain(&values).size(), 2u);  // re-init
}

TEST_F(ExecutorTest, LimitStopsEarly) {
  auto scan = std::make_unique<SeqScanExecutor>(&ctx_, table_->schema(), table_);
  LimitExecutor limit(&ctx_, std::move(scan), 7);
  EXPECT_EQ(Drain(&limit).size(), 7u);
}

TEST_F(ExecutorTest, LimitZero) {
  auto scan = std::make_unique<SeqScanExecutor>(&ctx_, table_->schema(), table_);
  LimitExecutor limit(&ctx_, std::move(scan), 0);
  EXPECT_TRUE(Drain(&limit).empty());
}

TEST_F(ExecutorTest, MaterializeCachesChildOutput) {
  auto scan = std::make_unique<SeqScanExecutor>(&ctx_, table_->schema(), table_);
  MaterializeExecutor mat(&ctx_, std::move(scan));
  EXPECT_EQ(Drain(&mat).size(), 100u);
  // Second drain re-reads the spool (not the base table).
  EXPECT_EQ(Drain(&mat).size(), 100u);
}

TEST_F(ExecutorTest, IndexScanRange) {
  IndexInfo* index = *catalog_.CreateIndex("idx_t_id", "t", {"id"}, false);
  std::string lo = EncodeKey({Value::Int(10)});
  std::string hi = EncodeKey({Value::Int(19)});
  IndexScanExecutor scan(&ctx_, table_->schema(), table_, index, lo, true, hi, true, nullptr);
  std::vector<Tuple> rows = Drain(&scan);
  ASSERT_EQ(rows.size(), 10u);
  // Index order = id order.
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].At(0).AsInt(), static_cast<int64_t>(10 + i));
  }
}

TEST_F(ExecutorTest, IndexScanWithResidual) {
  IndexInfo* index = *catalog_.CreateIndex("idx_t_id2", "t", {"id"}, false);
  ExprPtr residual =
      MakeComparison(CompareOp::kEq, MakeColumnRef("t", "v"), MakeLiteral(Value::Int(5)));
  ASSERT_TRUE(residual->Bind(table_->schema()).ok());
  std::string lo = EncodeKey({Value::Int(0)});
  std::string hi = EncodeKey({Value::Int(49)});
  IndexScanExecutor scan(&ctx_, table_->schema(), table_, index, lo, true, hi, true,
                         residual.get());
  std::vector<Tuple> rows = Drain(&scan);
  EXPECT_EQ(rows.size(), 5u);  // ids 5, 15, 25, 35, 45
}

TEST_F(ExecutorTest, IndexScanUnbounded) {
  IndexInfo* index = *catalog_.CreateIndex("idx_t_id3", "t", {"id"}, false);
  IndexScanExecutor scan(&ctx_, table_->schema(), table_, index, std::nullopt, true,
                         std::nullopt, true, nullptr);
  EXPECT_EQ(Drain(&scan).size(), 100u);
}

// ------------------------------------------------------- factory coverage --

TEST(ExecutorFactoryTest, BuildsFullPipelineFromPhysicalPlan) {
  Database db;
  tu::LoadEmpDept(&db, 100, 5);
  Result<PhysicalPtr> plan =
      db.PlanQuery("SELECT dname, count(*) FROM emp, dept WHERE emp.dept_id = dept.id "
                   "GROUP BY dname ORDER BY dname LIMIT 3");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Result<QueryResult> result = db.ExecutePlan(**plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->rows[0].At(0).AsString(), "d0");
  EXPECT_EQ(result->rows[0].At(1).AsInt(), 20);
}

}  // namespace
}  // namespace relopt
