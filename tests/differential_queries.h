// The shared differential query corpus, used by both differential harnesses
// (serial-vs-parallel and row-vs-vectorized) so every query is exercised
// across the full execution-mode matrix: parallelism x drive mode.
#pragma once

#include <cstdlib>
#include <string>

#include "test_util.h"
#include "workload/queries.h"

namespace relopt {
namespace tu {

/// The spec the differential fixture builds every join-topology workload
/// with. Small tables: the point is plan-shape diversity across execution
/// modes, not data volume. Shared with the drift guard in join_order_test.cc
/// that pins the builder output to the literals below.
inline JoinWorkloadSpec DifferentialJoinSpec(const char* prefix) {
  JoinWorkloadSpec spec;
  spec.num_relations = 4;
  spec.base_rows = 30;
  spec.growth = 1.5;
  spec.dim_rows = 10;
  spec.seed = 7;
  spec.prefix = prefix;
  return spec;
}

/// Builder output for each topology under DifferentialJoinSpec, pinned as
/// literals so the corpus below stays greppable. join_order_test.cc fails if
/// the builders drift from these strings.
inline constexpr const char* kJwChainQuery =
    "SELECT count(*) FROM jw_c0, jw_c1, jw_c2, jw_c3 WHERE jw_c0.fk = jw_c1.id "
    "AND jw_c1.fk = jw_c2.id AND jw_c2.fk = jw_c3.id";
inline constexpr const char* kJwStarQuery =
    "SELECT count(*) FROM jw_s_fact, jw_s_dim0, jw_s_dim1, jw_s_dim2 WHERE "
    "jw_s_fact.d0 = jw_s_dim0.id AND jw_s_fact.d1 = jw_s_dim1.id AND "
    "jw_s_fact.d2 = jw_s_dim2.id";
inline constexpr const char* kJwCycleQuery =
    "SELECT count(*) FROM jw_y0, jw_y1, jw_y2, jw_y3 WHERE jw_y0.fk = jw_y1.id "
    "AND jw_y1.fk = jw_y2.id AND jw_y2.fk = jw_y3.id AND jw_y3.fk = jw_y0.id";
inline constexpr const char* kJwCliqueQuery =
    "SELECT count(*) FROM jw_q0, jw_q1, jw_q2, jw_q3 WHERE jw_q0.k = jw_q1.k "
    "AND jw_q0.k = jw_q2.k AND jw_q0.k = jw_q3.k AND jw_q1.k = jw_q2.k AND "
    "jw_q1.k = jw_q3.k AND jw_q2.k = jw_q3.k";
inline constexpr const char* kJwRandomQuery =
    "SELECT count(*) FROM jw_r0, jw_r1, jw_r2, jw_r3 WHERE jw_r1.fk0 = jw_r0.id "
    "AND jw_r2.fk0 = jw_r0.id AND jw_r3.fk0 = jw_r0.id";

/// Loads the fixture both differential suites run against:
///   emp(id, name, dept_id, salary)  — 300 rows, 10 departments
///   dept(id, dname)                 — 10 rows
///   empty_t(x, y)                   — no rows
///   nulls_t(a, b)                   — 90 rows, two thirds of `b` NULL
/// plus one tiny generated join workload per topology (jw_c* chain, jw_s*
/// star, jw_y* cycle, jw_q* clique, jw_r* random), with stats analyzed.
inline void LoadDifferentialFixture(Database* db) {
  LoadEmpDept(db, 300, 10);
  struct {
    JoinTopology topology;
    const char* prefix;
  } workloads[] = {{JoinTopology::kChain, "jw_c"},
                   {JoinTopology::kStar, "jw_s"},
                   {JoinTopology::kCycle, "jw_y"},
                   {JoinTopology::kClique, "jw_q"},
                   {JoinTopology::kRandom, "jw_r"}};
  for (const auto& w : workloads) {
    Result<std::string> q = BuildJoinWorkload(db, w.topology, DifferentialJoinSpec(w.prefix));
    if (!q.ok()) std::abort();  // fixture bug, not a test condition
  }
  Sql(db, "CREATE TABLE empty_t (x INT, y TEXT)");
  // A NULL-heavy table: two thirds of `b` are NULL, for predicate,
  // selection-vector, and NULL-group edge cases under three-valued logic.
  Sql(db, "CREATE TABLE nulls_t (a INT, b INT)");
  std::string insert = "INSERT INTO nulls_t VALUES ";
  for (int i = 0; i < 90; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i) + ", " +
              (i % 3 == 0 ? std::to_string(i * 10) : std::string("NULL")) + ")";
  }
  Sql(db, insert);
  Sql(db, "ANALYZE");
}

/// The e2e query corpus: scans, filters, projections, equi- and non-equi
/// joins, multi-way joins, grouped and global aggregates (NULL groups, empty
/// input, HAVING, expression keys), DISTINCT, ORDER BY, LIMIT, and degenerate
/// inputs. Everything a user-facing SELECT can reach.
const char* const kDifferentialQueries[] = {
    "SELECT * FROM emp",
    "SELECT id, salary FROM emp WHERE salary > 3000",
    "SELECT id, salary * 2 + 1 FROM emp WHERE id < 50",
    "SELECT id FROM emp WHERE salary < 1500 OR salary > 5500 OR id = 100",
    "SELECT count(*) FROM emp WHERE id BETWEEN 10 AND 19",
    "SELECT count(*) FROM emp WHERE dept_id IN (1, 3, 5)",
    "SELECT emp.name, dept.dname FROM emp, dept "
    "WHERE emp.dept_id = dept.id AND emp.salary > 3000",
    "SELECT count(*), sum(emp.salary) FROM emp, dept "
    "WHERE emp.dept_id = dept.id AND dept.id < 7",
    "SELECT e.id FROM emp e, dept d, emp e2 "
    "WHERE e.dept_id = d.id AND e2.dept_id = d.id AND e.id < 20 AND e2.id < 10",
    "SELECT e.id, e2.id FROM emp e, emp e2 "
    "WHERE e.id < 12 AND e2.id < 12 AND e.salary < e2.salary",
    "SELECT dept_id, count(*), sum(salary), min(salary), max(salary) "
    "FROM emp GROUP BY dept_id",
    "SELECT salary FROM emp ORDER BY salary DESC LIMIT 50",
    "SELECT dept_id, salary FROM emp ORDER BY dept_id ASC, salary DESC LIMIT 100",
    "SELECT DISTINCT dept_id FROM emp",
    "SELECT DISTINCT dname FROM emp, dept WHERE emp.dept_id = dept.id AND emp.salary > 3000",
    "SELECT id FROM emp LIMIT 5",
    "SELECT * FROM empty_t",
    "SELECT count(*) FROM empty_t",
    "SELECT e.name, d.dname FROM emp e, dept d WHERE e.dept_id = d.id AND e.name = d.dname",
    "SELECT dept_id, count(*) FROM emp WHERE salary > 2000 GROUP BY dept_id ORDER BY dept_id",
    // --- aggregate-focused additions (parallel partitioned aggregation) ----
    "SELECT dept_id, avg(salary) FROM emp GROUP BY dept_id",
    "SELECT b, count(*), sum(a), avg(a) FROM nulls_t GROUP BY b",
    "SELECT count(*), count(b), min(b), max(b), sum(b) FROM nulls_t",
    "SELECT dept_id, name, count(*) FROM emp GROUP BY dept_id, name",
    "SELECT dept_id FROM emp GROUP BY dept_id HAVING min(id) < 5",
    "SELECT sum(x), avg(x), min(y), count(*) FROM empty_t",
    "SELECT x, count(*) FROM empty_t GROUP BY x",
    "SELECT dept_id % 3, count(*), sum(salary) FROM emp GROUP BY dept_id % 3",
    "SELECT emp.dept_id, count(*), min(dept.dname) FROM emp, dept "
    "WHERE emp.dept_id = dept.id GROUP BY emp.dept_id",
    // --- expression-heavy additions (batch expression engine) --------------
    "SELECT id, (salary + id * 3) * 2 - salary / 4 FROM emp "
    "WHERE (salary - 1000) * 2 > id + 500",
    "SELECT id, salary / (id % 5) FROM emp WHERE id < 40",
    "SELECT id, CASE WHEN salary > 5000 THEN 'high' WHEN salary > 2500 THEN 'mid' "
    "ELSE 'low' END FROM emp",
    "SELECT CASE WHEN b IS NULL THEN 0 - 1 ELSE b / 10 END, count(*) FROM nulls_t "
    "GROUP BY CASE WHEN b IS NULL THEN 0 - 1 ELSE b / 10 END",
    "SELECT id FROM emp WHERE id % 7 = 0 OR salary % 10 = 3 "
    "OR (dept_id = 2 AND salary > 4000) OR name = 'e17'",
    "SELECT a, coalesce(b, a * 100, 7) FROM nulls_t "
    "WHERE nullif(a % 3, 0) IS NULL OR b IS NOT NULL",
    "SELECT upper(name), length(name) + id FROM emp WHERE lower(name) < 'e3'",
    "SELECT e.id, d.dname FROM emp e, dept d "
    "WHERE e.dept_id + 1 = d.id + 1 AND abs(e.salary - 3000) < 1500",
    "SELECT name, salary FROM emp ORDER BY salary % 1000 DESC, length(name) ASC, id ASC "
    "LIMIT 40",
    "SELECT dept_id, sum(CASE WHEN salary > 3000 THEN salary ELSE 0 END) FROM emp "
    "GROUP BY dept_id",
    // --- generated join-order workload, one query per topology -------------
    kJwChainQuery,
    kJwStarQuery,
    kJwCycleQuery,
    kJwCliqueQuery,
    kJwRandomQuery,
};

/// The GROUP BY / global aggregate subset, the target of the exact-profile
/// matrix checks (no LIMIT, fully consumed plans).
const char* const kAggregateQueries[] = {
    "SELECT dept_id, count(*), sum(salary), min(salary), max(salary) "
    "FROM emp GROUP BY dept_id",
    "SELECT dept_id, avg(salary) FROM emp GROUP BY dept_id",
    "SELECT b, count(*), sum(a), avg(a) FROM nulls_t GROUP BY b",
    "SELECT count(*), count(b), min(b), max(b), sum(b) FROM nulls_t",
    "SELECT dept_id, name, count(*) FROM emp GROUP BY dept_id, name",
    "SELECT dept_id FROM emp GROUP BY dept_id HAVING min(id) < 5",
    "SELECT sum(x), avg(x), min(y), count(*) FROM empty_t",
    "SELECT x, count(*) FROM empty_t GROUP BY x",
    "SELECT dept_id % 3, count(*), sum(salary) FROM emp GROUP BY dept_id % 3",
    "SELECT emp.dept_id, count(*), min(dept.dname) FROM emp, dept "
    "WHERE emp.dept_id = dept.id GROUP BY emp.dept_id",
};

/// Queries that must fail — and fail identically — in every execution mode.
const char* const kDifferentialFailingQueries[] = {
    "SELECT nope FROM emp",
    "SELECT * FROM missing_table",
    "SELECT id FROM emp ORDER BY",
    "SELECT DISTINCT dept_id FROM emp ORDER BY salary",
    "SELECT count(*) FROM (SELECT 1) sub",
    "SELECT sum(nope) FROM emp",
    "SELECT dept_id, count(*) FROM emp GROUP BY",
};

}  // namespace tu
}  // namespace relopt
