// Optimizer facade tests: pushdown effects, access path choice end-to-end,
// naive baseline, estimate propagation.
#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/generator.h"

namespace relopt {
namespace {

int CountKind(const PhysicalNode& node, PhysicalNodeKind kind) {
  int n = node.kind() == kind ? 1 : 0;
  for (const PhysicalPtr& child : node.children()) n += CountKind(*child, kind);
  return n;
}

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() { tu::LoadEmpDept(&db_, 2000, 20); }

  PhysicalPtr Plan(const std::string& sql) {
    Result<PhysicalPtr> plan = db_.PlanQuery(sql);
    EXPECT_TRUE(plan.ok()) << sql << " -> " << plan.status().ToString();
    return plan.ok() ? plan.MoveValue() : nullptr;
  }

  Database db_;
};

TEST_F(OptimizerTest, FilterPushedToScan) {
  PhysicalPtr plan = Plan(
      "SELECT emp.name FROM emp, dept WHERE emp.dept_id = dept.id AND emp.salary > 5500");
  // The salary filter must sit below the join (on the emp side), not above.
  std::string text = plan->ToString();
  // Find the join line and the filter line: filter must come later (deeper).
  size_t join_pos = text.find("Join");
  size_t filter_pos = text.find("salary");
  ASSERT_NE(join_pos, std::string::npos);
  ASSERT_NE(filter_pos, std::string::npos);
  EXPECT_GT(filter_pos, join_pos) << text;
}

TEST_F(OptimizerTest, NaiveModeSkipsEverything) {
  db_.options().optimizer.naive = true;
  PhysicalPtr plan = Plan(
      "SELECT emp.name FROM emp, dept WHERE emp.dept_id = dept.id AND emp.salary > 5500");
  // Naive: NLJ in FROM order with the whole WHERE on top.
  EXPECT_EQ(CountKind(*plan, PhysicalNodeKind::kNestedLoopJoin), 1);
  EXPECT_EQ(CountKind(*plan, PhysicalNodeKind::kHashJoin), 0);
  // The filter sits above the join.
  std::string text = plan->ToString();
  EXPECT_LT(text.find("Filter"), text.find("NestedLoopJoin"));

  // And it still returns the same answer as the optimized plan.
  QueryResult naive = tu::Sql(
      &db_, "SELECT count(*) FROM emp, dept WHERE emp.dept_id = dept.id AND emp.salary > 5500");
  db_.options().optimizer.naive = false;
  QueryResult opt = tu::Sql(
      &db_, "SELECT count(*) FROM emp, dept WHERE emp.dept_id = dept.id AND emp.salary > 5500");
  EXPECT_EQ(naive.rows[0].At(0).AsInt(), opt.rows[0].At(0).AsInt());
}

TEST_F(OptimizerTest, NaiveCostsMoreThanOptimized) {
  const std::string q =
      "SELECT count(*) FROM emp, dept WHERE emp.dept_id = dept.id AND emp.salary > 5500";
  db_.options().optimizer.naive = true;
  tu::Sql(&db_, q);
  uint64_t naive_tuples = db_.last_metrics().tuples_processed;
  db_.options().optimizer.naive = false;
  tu::Sql(&db_, q);
  uint64_t opt_tuples = db_.last_metrics().tuples_processed;
  EXPECT_GT(naive_tuples, 2 * opt_tuples);
}

TEST_F(OptimizerTest, IndexChosenForSelectivePredicate) {
  tu::Sql(&db_, "CREATE INDEX idx_emp_id ON emp (id)");
  PhysicalPtr plan = Plan("SELECT name FROM emp WHERE id = 42");
  EXPECT_EQ(CountKind(*plan, PhysicalNodeKind::kIndexScan), 1) << plan->ToString();
  EXPECT_EQ(CountKind(*plan, PhysicalNodeKind::kSeqScan), 0);
}

TEST_F(OptimizerTest, SeqScanChosenForUnselectivePredicate) {
  tu::Sql(&db_, "CREATE INDEX idx_emp_sal ON emp (salary)");
  PhysicalPtr plan = Plan("SELECT name FROM emp WHERE salary > 1000");
  EXPECT_EQ(CountKind(*plan, PhysicalNodeKind::kSeqScan), 1) << plan->ToString();
}

TEST_F(OptimizerTest, EstimatesPropagatesToRoot) {
  PhysicalPtr plan = Plan("SELECT name FROM emp WHERE salary > 5500");
  EXPECT_GT(plan->est_cost().Total(), 0);
  EXPECT_GT(plan->est_rows(), 0);
  EXPECT_LT(plan->est_rows(), 2000);
}

TEST_F(OptimizerTest, LimitDoesNotBreakPlans) {
  PhysicalPtr plan = Plan("SELECT name FROM emp ORDER BY salary DESC LIMIT 5");
  EXPECT_EQ(plan->kind(), PhysicalNodeKind::kLimit);
  QueryResult r = *db_.ExecutePlan(*plan);
  ASSERT_EQ(r.rows.size(), 5u);
}

TEST_F(OptimizerTest, HavingFilterSurvivesOptimization) {
  QueryResult r = tu::Sql(&db_,
                          "SELECT dept_id, count(*) FROM emp GROUP BY dept_id "
                          "HAVING count(*) > 99 ORDER BY dept_id");
  ASSERT_EQ(r.rows.size(), 20u);  // 2000/20 = 100 per dept, all pass
  QueryResult none = tu::Sql(&db_,
                             "SELECT dept_id, count(*) FROM emp GROUP BY dept_id "
                             "HAVING count(*) > 100");
  EXPECT_TRUE(none.rows.empty());
}

TEST_F(OptimizerTest, ConstantFalseWhereYieldsEmptyPlan) {
  QueryResult r = tu::Sql(&db_, "SELECT name FROM emp WHERE 1 = 2");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(OptimizerTest, ConstantTrueWhereIsDropped) {
  PhysicalPtr plan = Plan("SELECT count(*) FROM emp WHERE 1 = 1");
  EXPECT_EQ(CountKind(*plan, PhysicalNodeKind::kFilter), 0) << plan->ToString();
}

TEST_F(OptimizerTest, StatsModeFlagChangesEstimates) {
  // Build a skewed table where histogram and uniform estimates differ.
  TableSpec spec;
  spec.name = "skewed";
  spec.num_rows = 5000;
  spec.columns = {ColumnSpec::Zipf("z", 50, 1.2)};
  ASSERT_TRUE(GenerateTable(&db_, spec).ok());

  db_.options().optimizer.stats_mode = StatsMode::kHistogram;
  PhysicalPtr hist_plan = Plan("SELECT count(*) FROM skewed WHERE z = 1");
  db_.options().optimizer.stats_mode = StatsMode::kSystemR;
  PhysicalPtr unif_plan = Plan("SELECT count(*) FROM skewed WHERE z = 1");
  // The scan-level row estimates must differ materially.
  const PhysicalNode* hist_scan = hist_plan.get();
  while (!hist_scan->children().empty()) hist_scan = hist_scan->child(0);
  const PhysicalNode* unif_scan = unif_plan.get();
  while (!unif_scan->children().empty()) unif_scan = unif_scan->child(0);
  EXPECT_GT(hist_scan->est_rows(), 2 * unif_scan->est_rows());
}

TEST_F(OptimizerTest, BufferSizeChangesJoinCosts) {
  // Estimated cost of the same join should not increase with more memory.
  const std::string q = "SELECT count(*) FROM emp e1, emp e2 WHERE e1.id = e2.id";
  db_.options().buffer_pool_pages = 16;
  // Note: buffer_pool_pages is fixed at construction; emulate via optimizer
  // option instead.
  db_.options().optimizer.buffer_pages = 16;
  Result<PhysicalPtr> small = db_.PlanQuery(q);
  ASSERT_TRUE(small.ok());
  // PlanQuery overwrites buffer_pages from the real pool, so compare via
  // explicit CostModel instead.
  CostModel small_cm(16);
  CostModel big_cm(4096);
  Cost sort_cost_small = small_cm.Sort(100000, 2500);
  Cost sort_cost_big = big_cm.Sort(100000, 2500);
  EXPECT_GT(small_cm.Total(sort_cost_small), big_cm.Total(sort_cost_big));
}

TEST_F(OptimizerTest, ExplainRendersTree) {
  Result<std::string> text = db_.Explain(
      "SELECT dname, count(*) FROM emp, dept WHERE emp.dept_id = dept.id GROUP BY dname");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("Aggregate"), std::string::npos);
  EXPECT_NE(text->find("rows="), std::string::npos);
}

}  // namespace
}  // namespace relopt
