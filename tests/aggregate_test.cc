// Aggregate executor SQL semantics (via the Database facade for brevity).
#include <gtest/gtest.h>

#include "test_util.h"

namespace relopt {
namespace {

using tu::IntCell;
using tu::Sql;

class AggregateTest : public ::testing::Test {
 protected:
  AggregateTest() {
    Sql(&db_, "CREATE TABLE t (g INT, v INT, d DOUBLE)");
    Sql(&db_,
        "INSERT INTO t VALUES (1, 10, 1.5), (1, 20, 2.5), (2, 30, 3.5), "
        "(2, NULL, NULL), (3, NULL, 4.5)");
  }

  Database db_;
};

TEST_F(AggregateTest, CountStarCountsAllRows) {
  EXPECT_EQ(IntCell(Sql(&db_, "SELECT count(*) FROM t")), 5);
}

TEST_F(AggregateTest, CountColumnIgnoresNulls) {
  EXPECT_EQ(IntCell(Sql(&db_, "SELECT count(v) FROM t")), 3);
}

TEST_F(AggregateTest, SumMinMax) {
  QueryResult r = Sql(&db_, "SELECT sum(v), min(v), max(v) FROM t");
  EXPECT_EQ(r.rows[0].At(0).AsInt(), 60);
  EXPECT_EQ(r.rows[0].At(1).AsInt(), 10);
  EXPECT_EQ(r.rows[0].At(2).AsInt(), 30);
}

TEST_F(AggregateTest, AvgIsDouble) {
  QueryResult r = Sql(&db_, "SELECT avg(v) FROM t");
  EXPECT_DOUBLE_EQ(r.rows[0].At(0).AsDouble(), 20.0);
}

TEST_F(AggregateTest, SumOfDoubles) {
  QueryResult r = Sql(&db_, "SELECT sum(d) FROM t");
  EXPECT_DOUBLE_EQ(r.rows[0].At(0).AsDouble(), 12.0);
}

TEST_F(AggregateTest, EmptyInputScalarAggregates) {
  Sql(&db_, "CREATE TABLE empty_t (x INT)");
  QueryResult r = Sql(&db_, "SELECT count(*), count(x), sum(x), min(x), avg(x) FROM empty_t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].At(0).AsInt(), 0);
  EXPECT_EQ(r.rows[0].At(1).AsInt(), 0);
  EXPECT_TRUE(r.rows[0].At(2).is_null());
  EXPECT_TRUE(r.rows[0].At(3).is_null());
  EXPECT_TRUE(r.rows[0].At(4).is_null());
}

TEST_F(AggregateTest, EmptyInputWithGroupByYieldsNoRows) {
  Sql(&db_, "CREATE TABLE empty_g (x INT)");
  QueryResult r = Sql(&db_, "SELECT x, count(*) FROM empty_g GROUP BY x");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(AggregateTest, GroupBy) {
  QueryResult r = Sql(&db_, "SELECT g, count(*), sum(v) FROM t GROUP BY g ORDER BY g");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0].At(0).AsInt(), 1);
  EXPECT_EQ(r.rows[0].At(1).AsInt(), 2);
  EXPECT_EQ(r.rows[0].At(2).AsInt(), 30);
  EXPECT_EQ(r.rows[1].At(1).AsInt(), 2);
  EXPECT_EQ(r.rows[1].At(2).AsInt(), 30);
  // Group 3 has only a NULL v: sum is NULL.
  EXPECT_TRUE(r.rows[2].At(2).is_null());
}

TEST_F(AggregateTest, GroupByGroupsNullsTogether) {
  Sql(&db_, "CREATE TABLE n (g INT)");
  Sql(&db_, "INSERT INTO n VALUES (NULL), (NULL), (1)");
  QueryResult r = Sql(&db_, "SELECT g, count(*) FROM n GROUP BY g ORDER BY g");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_TRUE(r.rows[0].At(0).is_null());  // NULL group sorts first
  EXPECT_EQ(r.rows[0].At(1).AsInt(), 2);
}

TEST_F(AggregateTest, HavingFiltersGroups) {
  QueryResult r = Sql(&db_, "SELECT g FROM t GROUP BY g HAVING count(v) = 2 ORDER BY g");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].At(0).AsInt(), 1);
}

TEST_F(AggregateTest, AggregateOverExpression) {
  QueryResult r = Sql(&db_, "SELECT sum(v * 2) FROM t");
  EXPECT_EQ(r.rows[0].At(0).AsInt(), 120);
}

TEST_F(AggregateTest, GroupByExpression) {
  QueryResult r = Sql(&db_, "SELECT g % 2, count(*) FROM t GROUP BY g % 2 ORDER BY g % 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].At(1).AsInt(), 2);  // g=2 (even): 2 rows
  EXPECT_EQ(r.rows[1].At(1).AsInt(), 3);  // g=1,3 (odd): 3 rows
}

TEST_F(AggregateTest, MinMaxOnStrings) {
  Sql(&db_, "CREATE TABLE s (x TEXT)");
  Sql(&db_, "INSERT INTO s VALUES ('banana'), ('apple'), ('cherry')");
  QueryResult r = Sql(&db_, "SELECT min(x), max(x) FROM s");
  EXPECT_EQ(r.rows[0].At(0).AsString(), "apple");
  EXPECT_EQ(r.rows[0].At(1).AsString(), "cherry");
}

TEST_F(AggregateTest, MixedIntDoubleSumPromotes) {
  Sql(&db_, "CREATE TABLE m (x DOUBLE)");
  Sql(&db_, "INSERT INTO m VALUES (1.5), (2)");
  QueryResult r = Sql(&db_, "SELECT sum(x) FROM m");
  EXPECT_DOUBLE_EQ(r.rows[0].At(0).AsDouble(), 3.5);
}

TEST_F(AggregateTest, IntegerSumNearMaxIsExact) {
  Sql(&db_, "CREATE TABLE big (x INT)");
  Sql(&db_, "INSERT INTO big VALUES (9223372036854775806), (1)");
  QueryResult r = Sql(&db_, "SELECT sum(x) FROM big");
  EXPECT_EQ(r.rows[0].At(0).AsInt(), INT64_MAX);
}

TEST_F(AggregateTest, IntegerSumOverflowErrorsInsteadOfWrapping) {
  Sql(&db_, "CREATE TABLE big (x INT)");
  Sql(&db_, "INSERT INTO big VALUES (9223372036854775807), (1)");
  Result<QueryResult> r = db_.Execute("SELECT sum(x) FROM big");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("overflow"), std::string::npos) << r.status().ToString();
}

TEST_F(AggregateTest, GroupedSumOverflowErrorsToo) {
  Sql(&db_, "CREATE TABLE big (g INT, x INT)");
  Sql(&db_, "INSERT INTO big VALUES (1, 9223372036854775807), (1, 1), (2, 5)");
  Result<QueryResult> r = db_.Execute("SELECT g, sum(x) FROM big GROUP BY g");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("overflow"), std::string::npos) << r.status().ToString();
}

TEST_F(AggregateTest, SumOverflowErrorIsIdenticalUnderParallelism) {
  Sql(&db_, "CREATE TABLE big (x INT)");
  Sql(&db_, "INSERT INTO big VALUES (9223372036854775807), (1)");
  Result<QueryResult> serial = db_.Execute("SELECT sum(x) FROM big");
  db_.set_parallelism(4);
  Result<QueryResult> parallel = db_.Execute("SELECT sum(x) FROM big");
  db_.set_parallelism(1);
  ASSERT_FALSE(serial.ok());
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(serial.status().ToString(), parallel.status().ToString());
}

TEST_F(AggregateTest, AvgWidensToDoubleOnOverflow) {
  Sql(&db_, "CREATE TABLE big (x INT)");
  Sql(&db_, "INSERT INTO big VALUES (9223372036854775807), (9223372036854775807)");
  QueryResult r = Sql(&db_, "SELECT avg(x) FROM big");
  EXPECT_NEAR(r.rows[0].At(0).AsDouble(), 9.223372036854776e18, 1e13);
}

TEST_F(AggregateTest, NegativeSumOverflowErrorsToo) {
  Sql(&db_, "CREATE TABLE big (x INT)");
  Sql(&db_, "INSERT INTO big VALUES (-9223372036854775807), (-2)");
  Result<QueryResult> r = db_.Execute("SELECT sum(x) FROM big");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("overflow"), std::string::npos) << r.status().ToString();
}

}  // namespace
}  // namespace relopt
