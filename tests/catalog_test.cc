// Catalog: table/index lifecycle, insert/delete consistency, ANALYZE.
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "types/key_codec.h"

namespace relopt {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : pool_(&disk_, 128), catalog_(&pool_) {}

  Schema UserSchema() {
    Schema s;
    s.AddColumn(Column("id", TypeId::kInt64, "users"));
    s.AddColumn(Column("name", TypeId::kString, "users"));
    s.AddColumn(Column("age", TypeId::kInt64, "users"));
    return s;
  }

  TableInfo* MakeUsers(int rows) {
    TableInfo* t = *catalog_.CreateTable("users", UserSchema());
    for (int i = 0; i < rows; ++i) {
      Tuple tuple({Value::Int(i), Value::String("u" + std::to_string(i)),
                   Value::Int(20 + i % 50)});
      EXPECT_TRUE(catalog_.InsertTuple(t, tuple).ok());
    }
    return t;
  }

  DiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
};

TEST_F(CatalogTest, CreateAndGetTable) {
  TableInfo* t = MakeUsers(5);
  EXPECT_EQ(t->name(), "users");
  EXPECT_EQ(t->live_rows(), 5u);
  EXPECT_EQ(*catalog_.GetTable("USERS"), t);  // case-insensitive
  EXPECT_TRUE(catalog_.HasTable("users"));
  EXPECT_FALSE(catalog_.HasTable("nope"));
  EXPECT_EQ(catalog_.GetTable("nope").status().code(), StatusCode::kNotFound);
}

TEST_F(CatalogTest, DuplicateTableRejected) {
  MakeUsers(1);
  EXPECT_EQ(catalog_.CreateTable("users", UserSchema()).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, InsertValidatesArityAndTypes) {
  TableInfo* t = MakeUsers(0);
  EXPECT_EQ(catalog_.InsertTuple(t, Tuple({Value::Int(1)})).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(catalog_
                .InsertTuple(t, Tuple({Value::String("x"), Value::String("y"), Value::Int(1)}))
                .status()
                .code(),
            StatusCode::kTypeError);
  // NULLs pass type checking.
  EXPECT_TRUE(catalog_.InsertTuple(t, Tuple({Value::Int(1), Value::Null(TypeId::kString),
                                             Value::Null(TypeId::kInt64)}))
                  .ok());
}

TEST_F(CatalogTest, GetTupleRoundTrip) {
  TableInfo* t = MakeUsers(0);
  Tuple tuple({Value::Int(7), Value::String("seven"), Value::Int(70)});
  Rid rid = *catalog_.InsertTuple(t, tuple);
  Tuple back = *t->GetTuple(rid);
  EXPECT_EQ(back, tuple);
}

TEST_F(CatalogTest, CreateIndexBuildsFromExistingRows) {
  TableInfo* t = MakeUsers(100);
  IndexInfo* idx = *catalog_.CreateIndex("idx_users_age", "users", {"age"}, false);
  EXPECT_EQ(idx->table_name, "users");
  EXPECT_EQ(t->indexes().size(), 1u);
  EXPECT_EQ(*idx->tree->NumEntries(), 100u);

  // Every row is findable through the index.
  std::vector<Rid> rids = *idx->tree->SearchEqual(EncodeKey({Value::Int(25)}));
  EXPECT_EQ(rids.size(), 2u);  // ages cycle mod 50 over 100 rows
  for (Rid rid : rids) {
    Tuple row = *t->GetTuple(rid);
    EXPECT_EQ(row.At(2).AsInt(), 25);
  }
}

TEST_F(CatalogTest, IndexMaintainedOnInsertAndDelete) {
  TableInfo* t = MakeUsers(10);
  IndexInfo* idx = *catalog_.CreateIndex("idx_id", "users", {"id"}, false);

  Rid rid = *catalog_.InsertTuple(
      t, Tuple({Value::Int(999), Value::String("new"), Value::Int(30)}));
  EXPECT_EQ(idx->tree->SearchEqual(EncodeKey({Value::Int(999)}))->size(), 1u);

  ASSERT_TRUE(catalog_.DeleteTuple(t, rid).ok());
  EXPECT_TRUE(idx->tree->SearchEqual(EncodeKey({Value::Int(999)}))->empty());
  EXPECT_EQ(t->live_rows(), 10u);
}

TEST_F(CatalogTest, CompositeIndex) {
  TableInfo* t = MakeUsers(50);
  (void)t;
  IndexInfo* idx = *catalog_.CreateIndex("idx_age_name", "users", {"age", "name"}, false);
  EXPECT_EQ(idx->key_columns, (std::vector<size_t>{2, 1}));
  EXPECT_EQ(*idx->tree->NumEntries(), 50u);
}

TEST_F(CatalogTest, IndexErrors) {
  MakeUsers(1);
  EXPECT_EQ(catalog_.CreateIndex("i1", "nope", {"id"}).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog_.CreateIndex("i1", "users", {"bogus"}).status().code(),
            StatusCode::kBindError);
  ASSERT_TRUE(catalog_.CreateIndex("i1", "users", {"id"}).ok());
  EXPECT_EQ(catalog_.CreateIndex("i1", "users", {"age"}).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog_.CreateIndex("i2", "users", {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CatalogTest, DropTableRemovesIndexesAndStorage) {
  MakeUsers(10);
  ASSERT_TRUE(catalog_.CreateIndex("idx_drop", "users", {"id"}).ok());
  ASSERT_TRUE(catalog_.DropTable("users").ok());
  EXPECT_FALSE(catalog_.HasTable("users"));
  EXPECT_EQ(catalog_.GetIndex("idx_drop").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog_.DropTable("users").code(), StatusCode::kNotFound);
}

TEST_F(CatalogTest, AnalyzeComputesStats) {
  TableInfo* t = MakeUsers(200);
  EXPECT_FALSE(t->has_stats());
  ASSERT_TRUE(catalog_.AnalyzeTable("users", 16).ok());
  ASSERT_TRUE(t->has_stats());
  const TableStats& stats = t->stats();
  EXPECT_EQ(stats.num_rows, 200u);
  EXPECT_GT(stats.num_pages, 0u);
  ASSERT_EQ(stats.columns.size(), 3u);
  EXPECT_EQ(stats.columns[0].ndv, 200u);  // serial ids
  EXPECT_EQ(stats.columns[2].ndv, 50u);   // ages cycle mod 50
  EXPECT_TRUE(stats.columns[0].min->Equals(Value::Int(0)));
  EXPECT_TRUE(stats.columns[0].max->Equals(Value::Int(199)));
  EXPECT_FALSE(stats.columns[2].histogram.Empty());
}

TEST_F(CatalogTest, AnalyzeCountsNulls) {
  TableInfo* t = MakeUsers(0);
  for (int i = 0; i < 10; ++i) {
    Value name = (i % 2 == 0) ? Value::Null(TypeId::kString) : Value::String("x");
    ASSERT_TRUE(catalog_.InsertTuple(t, Tuple({Value::Int(i), name, Value::Int(1)})).ok());
  }
  ASSERT_TRUE(catalog_.AnalyzeTable("users").ok());
  EXPECT_EQ(t->stats().columns[1].num_null, 5u);
  EXPECT_DOUBLE_EQ(t->stats().columns[1].null_fraction(), 0.5);
}

TEST_F(CatalogTest, AnalyzeWithZeroBucketsSkipsHistograms) {
  TableInfo* t = MakeUsers(50);
  ASSERT_TRUE(catalog_.AnalyzeTable("users", 0).ok());
  EXPECT_TRUE(t->stats().columns[0].histogram.Empty());
  EXPECT_EQ(t->stats().columns[0].ndv, 50u);  // ndv/min/max still present
}

TEST_F(CatalogTest, TableNamesSorted) {
  catalog_.CreateTable("zebra", UserSchema()).status();
  catalog_.CreateTable("alpha", UserSchema()).status();
  std::vector<std::string> names = catalog_.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zebra");
}

}  // namespace
}  // namespace relopt
