// B+tree tests: inserts, splits, duplicates, range scans, deletes, integrity.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "storage/btree.h"
#include "types/key_codec.h"
#include "util/rng.h"

namespace relopt {
namespace {

std::string IntKey(int64_t v) { return EncodeKey({Value::Int(v)}); }

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : pool_(&disk_, 256), tree_(*BTree::Create(&pool_)) {}

  std::vector<std::pair<std::string, Rid>> ScanAll() {
    std::vector<std::pair<std::string, Rid>> out;
    BTree::Iterator it = *BTree::Iterator::Seek(&tree_, std::nullopt, true, std::nullopt, true);
    std::string key;
    Rid rid;
    while (*it.Next(&key, &rid)) out.push_back({key, rid});
    return out;
  }

  DiskManager disk_;
  BufferPool pool_;
  BTree tree_;
};

TEST_F(BTreeTest, EmptyTree) {
  EXPECT_EQ(*tree_.Height(), 1);
  EXPECT_EQ(*tree_.NumEntries(), 0u);
  EXPECT_TRUE(tree_.SearchEqual(IntKey(5))->empty());
  EXPECT_TRUE(ScanAll().empty());
  EXPECT_TRUE(tree_.CheckIntegrity().ok());
}

TEST_F(BTreeTest, InsertAndSearch) {
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree_.Insert(IntKey(i), Rid{static_cast<PageNo>(i), 0}).ok());
  }
  EXPECT_EQ(*tree_.NumEntries(), 100u);
  for (int64_t i = 0; i < 100; ++i) {
    std::vector<Rid> rids = *tree_.SearchEqual(IntKey(i));
    ASSERT_EQ(rids.size(), 1u) << i;
    EXPECT_EQ(rids[0].page_no, static_cast<PageNo>(i));
  }
  EXPECT_TRUE(tree_.SearchEqual(IntKey(100))->empty());
  EXPECT_TRUE(tree_.CheckIntegrity().ok());
}

TEST_F(BTreeTest, SplitsGrowTheTree) {
  // Enough entries to force three levels (keys ~9 bytes + rid 6 -> ~240
  // entries per leaf page, ~190 separators per internal page).
  const int n = 60000;
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(tree_.Insert(IntKey(i), Rid{static_cast<PageNo>(i), 0}).ok());
  }
  EXPECT_GE(*tree_.Height(), 3);
  EXPECT_EQ(*tree_.NumEntries(), static_cast<size_t>(n));
  EXPECT_GT(*tree_.NumLeafPages(), 50u);
  ASSERT_TRUE(tree_.CheckIntegrity().ok());

  // Scan returns every key in order.
  auto all = ScanAll();
  ASSERT_EQ(all.size(), static_cast<size_t>(n));
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
}

TEST_F(BTreeTest, RandomInsertOrderStaysSorted) {
  Rng rng(5);
  std::vector<size_t> perm = rng.Permutation(5000);
  for (size_t v : perm) {
    ASSERT_TRUE(tree_.Insert(IntKey(static_cast<int64_t>(v)), Rid{static_cast<PageNo>(v), 1}).ok());
  }
  ASSERT_TRUE(tree_.CheckIntegrity().ok());
  auto all = ScanAll();
  ASSERT_EQ(all.size(), 5000u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end(),
                             [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST_F(BTreeTest, DuplicateKeys) {
  for (uint16_t s = 0; s < 500; ++s) {
    ASSERT_TRUE(tree_.Insert(IntKey(7), Rid{1, s}).ok());
  }
  ASSERT_TRUE(tree_.Insert(IntKey(6), Rid{0, 0}).ok());
  ASSERT_TRUE(tree_.Insert(IntKey(8), Rid{2, 0}).ok());
  std::vector<Rid> rids = *tree_.SearchEqual(IntKey(7));
  EXPECT_EQ(rids.size(), 500u);
  // Duplicates come back in rid order (the tree's tiebreak).
  EXPECT_TRUE(std::is_sorted(rids.begin(), rids.end()));
  EXPECT_EQ(tree_.SearchEqual(IntKey(6))->size(), 1u);
  ASSERT_TRUE(tree_.CheckIntegrity().ok());
}

TEST_F(BTreeTest, RangeScans) {
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree_.Insert(IntKey(i * 2), Rid{static_cast<PageNo>(i), 0}).ok());  // even keys
  }
  auto scan = [&](std::optional<int64_t> lo, bool lo_inc, std::optional<int64_t> hi,
                  bool hi_inc) {
    std::optional<std::string> lo_k, hi_k;
    if (lo) lo_k = IntKey(*lo);
    if (hi) hi_k = IntKey(*hi);
    BTree::Iterator it = *BTree::Iterator::Seek(&tree_, lo_k, lo_inc, hi_k, hi_inc);
    int count = 0;
    std::string k;
    Rid r;
    while (*it.Next(&k, &r)) ++count;
    return count;
  };

  EXPECT_EQ(scan(std::nullopt, true, std::nullopt, true), 1000);
  EXPECT_EQ(scan(0, true, 10, true), 6);     // 0,2,4,6,8,10
  EXPECT_EQ(scan(0, false, 10, false), 4);   // 2,4,6,8
  EXPECT_EQ(scan(1, true, 9, true), 4);      // 2,4,6,8 (bounds between keys)
  EXPECT_EQ(scan(1990, true, std::nullopt, true), 5);  // 1990..1998
  EXPECT_EQ(scan(std::nullopt, true, 7, true), 4);     // 0,2,4,6
  EXPECT_EQ(scan(5000, true, 6000, true), 0);
}

TEST_F(BTreeTest, DeleteRemovesSpecificEntry) {
  for (int64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree_.Insert(IntKey(i), Rid{static_cast<PageNo>(i), 0}).ok());
  }
  // Delete every third key.
  for (int64_t i = 0; i < 2000; i += 3) {
    ASSERT_TRUE(tree_.Delete(IntKey(i), Rid{static_cast<PageNo>(i), 0}).ok());
  }
  for (int64_t i = 0; i < 2000; ++i) {
    bool deleted = (i % 3) == 0;
    EXPECT_EQ(tree_.SearchEqual(IntKey(i))->size(), deleted ? 0u : 1u) << i;
  }
  ASSERT_TRUE(tree_.CheckIntegrity().ok());
}

TEST_F(BTreeTest, DeleteDistinguishesDuplicatesByRid) {
  ASSERT_TRUE(tree_.Insert(IntKey(1), Rid{10, 0}).ok());
  ASSERT_TRUE(tree_.Insert(IntKey(1), Rid{20, 0}).ok());
  ASSERT_TRUE(tree_.Delete(IntKey(1), Rid{10, 0}).ok());
  std::vector<Rid> rids = *tree_.SearchEqual(IntKey(1));
  ASSERT_EQ(rids.size(), 1u);
  EXPECT_EQ(rids[0].page_no, 20u);
  EXPECT_EQ(tree_.Delete(IntKey(1), Rid{10, 0}).code(), StatusCode::kNotFound);
}

TEST_F(BTreeTest, DeleteMissingKeyIsNotFound) {
  ASSERT_TRUE(tree_.Insert(IntKey(1), Rid{1, 0}).ok());
  EXPECT_EQ(tree_.Delete(IntKey(2), Rid{1, 0}).code(), StatusCode::kNotFound);
}

TEST_F(BTreeTest, StringKeysWithVariableLengths) {
  Rng rng(3);
  std::map<std::string, Rid> reference;
  for (int i = 0; i < 3000; ++i) {
    std::string key = EncodeKey({Value::String(rng.RandomString(1 + i % 40))});
    Rid rid{static_cast<PageNo>(i), 0};
    if (reference.emplace(key, rid).second) {
      ASSERT_TRUE(tree_.Insert(key, rid).ok());
    }
  }
  ASSERT_TRUE(tree_.CheckIntegrity().ok());
  auto all = ScanAll();
  ASSERT_EQ(all.size(), reference.size());
  size_t i = 0;
  for (const auto& [key, rid] : reference) {
    EXPECT_EQ(all[i].first, key);
    EXPECT_EQ(all[i].second, rid);
    ++i;
  }
}

TEST_F(BTreeTest, OversizeKeyRejected) {
  std::string huge(2000, 'k');
  EXPECT_EQ(tree_.Insert(huge, Rid{0, 0}).code(), StatusCode::kInvalidArgument);
}

TEST_F(BTreeTest, IndexIoGoesThroughBufferPool) {
  for (int64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(tree_.Insert(IntKey(i), Rid{static_cast<PageNo>(i), 0}).ok());
  }
  ASSERT_TRUE(pool_.FlushAll().ok());
  ASSERT_TRUE(pool_.EvictAll().ok());
  disk_.ResetStats();
  // A point lookup touches height pages (plus the meta page).
  int height = *tree_.Height();
  disk_.ResetStats();
  ASSERT_TRUE(tree_.SearchEqual(IntKey(2500)).ok());
  EXPECT_LE(disk_.stats().page_reads, static_cast<uint64_t>(height) + 2);
}

TEST_F(BTreeTest, SeekWithExclusiveLowerBoundSkipsAllDuplicates) {
  for (uint16_t s = 0; s < 50; ++s) {
    ASSERT_TRUE(tree_.Insert(IntKey(5), Rid{1, s}).ok());
  }
  ASSERT_TRUE(tree_.Insert(IntKey(6), Rid{2, 0}).ok());
  BTree::Iterator it = *BTree::Iterator::Seek(&tree_, IntKey(5), /*lo_inclusive=*/false,
                                              std::nullopt, true);
  std::string k;
  Rid r;
  ASSERT_TRUE(*it.Next(&k, &r));
  EXPECT_EQ(k, IntKey(6));
  EXPECT_FALSE(*it.Next(&k, &r));
}

}  // namespace
}  // namespace relopt
