// Cardinality feedback: signature normalization, store semantics, engine
// integration (harvest, override, plan-cache re-optimization, invalidation),
// and the headline acceptance case — a correlated-predicate join whose plan
// flips to a strictly cheaper one once actuals flow back.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "engine/session.h"
#include "optimizer/feedback.h"
#include "parser/parser.h"
#include "test_util.h"
#include "workload/generator.h"

namespace relopt {
namespace {

// --- signature construction --------------------------------------------------

ExprPtr ParseWhere(const std::string& pred_sql) {
  Result<StatementPtr> stmt = ParseStatement("SELECT 1 FROM t WHERE " + pred_sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  return std::move(static_cast<SelectStmt*>(stmt->get())->where);
}

TEST(FeedbackSignature, ScanSignatureSortsAndLowercases) {
  std::string a = FeedbackStore::ScanSignature("Emp", {"a < 10", "b = 3"});
  std::string b = FeedbackStore::ScanSignature("emp", {"b = 3", "a < 10"});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, "s|emp|a < 10 AND b = 3");
}

TEST(FeedbackSignature, RenderConjunctStripsQualifiers) {
  ExprPtr e = ParseWhere("T.K < 10");
  EXPECT_EQ(FeedbackStore::RenderConjunct(*e, /*strip_qualifiers=*/true), "(k < 10)");
  // Unstripped keeps the (lowercased) qualifier.
  EXPECT_EQ(FeedbackStore::RenderConjunct(*e, /*strip_qualifiers=*/false), "(t.k < 10)");
}

TEST(FeedbackSignature, RenderConjunctPreservesLiteralCase) {
  ExprPtr e = ParseWhere("Name = 'Alice'");
  std::string sig = FeedbackStore::RenderConjunct(*e, true);
  EXPECT_NE(sig.find("'Alice'"), std::string::npos) << sig;
  // Different literals must never share a signature.
  ExprPtr e2 = ParseWhere("Name = 'alice'");
  EXPECT_NE(sig, FeedbackStore::RenderConjunct(*e2, true));
}

TEST(FeedbackSignature, JoinSignatureOrderInsensitive) {
  std::string a = FeedbackStore::JoinSignature({"e:emp", "d:dept"}, {"d.id=e.dept_id"}, {});
  std::string b = FeedbackStore::JoinSignature({"d:dept", "e:emp"}, {"d.id=e.dept_id"}, {});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, "j|d:dept,e:emp|d.id=e.dept_id|");
}

// --- store semantics ---------------------------------------------------------

TEST(FeedbackStoreTest, RecordLookupRoundTrip) {
  FeedbackStore store;
  EXPECT_FALSE(store.LookupScanRows("s|t|k < 10").has_value());
  store.RecordScanRows("s|t|k < 10", {"t"}, 42.0);
  std::optional<double> v = store.LookupScanRows("s|t|k < 10");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, 42.0);
  EXPECT_EQ(store.size(), 1u);
}

TEST(FeedbackStoreTest, VersionBumpsOnlyOnMaterialChange) {
  FeedbackStore store;
  uint64_t v0 = store.version();
  store.RecordScanRows("s|t|", {"t"}, 1000.0);
  uint64_t v1 = store.version();
  EXPECT_GT(v1, v0);  // fresh entry always bumps

  store.RecordScanRows("s|t|", {"t"}, 1000.0);  // identical: no bump
  EXPECT_EQ(store.version(), v1);
  store.RecordScanRows("s|t|", {"t"}, 1005.0);  // 0.5% drift: below threshold
  EXPECT_EQ(store.version(), v1);
  store.RecordScanRows("s|t|", {"t"}, 1200.0);  // 20%: material
  EXPECT_GT(store.version(), v1);
}

TEST(FeedbackStoreTest, ClearAndInvalidateTable) {
  FeedbackStore store;
  store.RecordScanRows("s|emp|a < 10", {"emp"}, 5.0);
  store.RecordScanRows("s|dept|", {"dept"}, 20.0);
  store.RecordJoinSelectivity("j|d:dept,e:emp|d.id=e.dept_id|", {"dept", "emp"}, 0.05);
  ASSERT_EQ(store.size(), 3u);

  // DML on emp drops the emp scan AND the join touching emp, not dept's.
  uint64_t v_before = store.version();
  EXPECT_EQ(store.InvalidateTable("EMP"), 2u);  // case-insensitive
  EXPECT_EQ(store.size(), 1u);
  EXPECT_GT(store.version(), v_before);
  EXPECT_TRUE(store.LookupScanRows("s|dept|").has_value());

  // Invalidating an untouched table is a no-op (and no version bump).
  uint64_t v_mid = store.version();
  EXPECT_EQ(store.InvalidateTable("nosuch"), 0u);
  EXPECT_EQ(store.version(), v_mid);

  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_GT(store.version(), v_mid);
}

TEST(FeedbackStoreTest, SnapshotClassifiesKinds) {
  FeedbackStore store;
  store.RecordScanRows("s|emp|a < 10", {"emp"}, 5.0);
  store.RecordJoinSelectivity("j|d:dept,e:emp|d.id=e.dept_id|", {"dept", "emp"}, 0.05);
  std::vector<FeedbackStore::EntryInfo> snap = store.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].kind, "join");
  EXPECT_EQ(snap[0].tables, "dept,emp");
  EXPECT_EQ(snap[1].kind, "scan");
  EXPECT_EQ(snap[1].tables, "emp");
}

// --- engine integration ------------------------------------------------------

class FeedbackEngineTest : public ::testing::Test {
 protected:
  FeedbackEngineTest() { tu::LoadEmpDept(&db_); }
  Database db_;
};

TEST_F(FeedbackEngineTest, OffByDefaultHarvestsNothing) {
  tu::Sql(&db_, "SELECT count(*) FROM emp WHERE salary > 3000");
  EXPECT_EQ(db_.feedback()->size(), 0u);
}

TEST_F(FeedbackEngineTest, HarvestsScanAndJoinActuals) {
  db_.set_cardinality_feedback(true);
  tu::Sql(&db_,
          "SELECT count(*) FROM emp e, dept d WHERE e.dept_id = d.id AND e.salary > 3000");
  EXPECT_GT(db_.feedback()->size(), 0u);
  // Both kinds of entries exist, and the scan actual is the true row count.
  bool saw_scan = false, saw_join = false;
  for (const FeedbackStore::EntryInfo& e : db_.feedback()->Snapshot()) {
    if (e.kind == "scan") saw_scan = true;
    if (e.kind == "join") {
      saw_join = true;
      EXPECT_GT(e.value, 0.0);
      EXPECT_LE(e.value, 1.0);
    }
  }
  EXPECT_TRUE(saw_scan);
  EXPECT_TRUE(saw_join);
}

TEST_F(FeedbackEngineTest, LimitQueriesDoNotPoisonTheStore) {
  db_.set_cardinality_feedback(true);
  tu::Sql(&db_, "SELECT id FROM emp WHERE salary > 3000 LIMIT 3");
  EXPECT_EQ(db_.feedback()->size(), 0u);
}

TEST_F(FeedbackEngineTest, SecondRunUsesObservedCardinality) {
  db_.set_cardinality_feedback(true);
  const std::string q = "SELECT id FROM emp WHERE salary > 3000";
  QueryResult r1 = tu::Sql(&db_, q);
  const double truth = static_cast<double>(r1.rows.size());
  ASSERT_GT(truth, 0);
  tu::Sql(&db_, q);
  // After the second optimization the plan's estimate IS the observation.
  EXPECT_NEAR(db_.last_metrics().est_rows, truth, std::max(1.0, truth * 0.01));
}

TEST_F(FeedbackEngineTest, PlanCacheReoptimizesAfterFeedbackUpdate) {
  db_.set_cardinality_feedback(true);
  const std::string q = "SELECT count(*) FROM emp WHERE salary > 3000";
  tu::Sql(&db_, q);
  EXPECT_FALSE(db_.last_metrics().plan_cache_hit);  // cold: miss, optimize
  tu::Sql(&db_, q);
  // The harvest bumped the store version, so the cached plan (keyed on the
  // old version) is provably NOT replayed: the statement re-optimizes.
  EXPECT_FALSE(db_.last_metrics().plan_cache_hit);
  tu::Sql(&db_, q);
  // Converged: the re-recorded actuals match the stored values, the version
  // holds still, and the plan cache serves the re-optimized plan.
  EXPECT_TRUE(db_.last_metrics().plan_cache_hit);
}

TEST_F(FeedbackEngineTest, AnalyzeAndDdlClearTheStore) {
  db_.set_cardinality_feedback(true);
  tu::Sql(&db_, "SELECT count(*) FROM emp WHERE salary > 3000");
  ASSERT_GT(db_.feedback()->size(), 0u);
  tu::Sql(&db_, "ANALYZE");
  EXPECT_EQ(db_.feedback()->size(), 0u);

  tu::Sql(&db_, "SELECT count(*) FROM emp WHERE salary > 3000");
  ASSERT_GT(db_.feedback()->size(), 0u);
  tu::Sql(&db_, "CREATE TABLE scratch (x INT)");
  EXPECT_EQ(db_.feedback()->size(), 0u);
}

TEST_F(FeedbackEngineTest, DmlInvalidatesOnlyTheWrittenTable) {
  db_.set_cardinality_feedback(true);
  tu::Sql(&db_, "SELECT count(*) FROM emp WHERE salary > 3000");
  tu::Sql(&db_, "SELECT count(*) FROM dept WHERE id < 5");
  ASSERT_GE(db_.feedback()->size(), 2u);
  tu::Sql(&db_, "INSERT INTO emp VALUES (9999, 'x', 0, 100)");
  bool emp_left = false, dept_left = false;
  for (const FeedbackStore::EntryInfo& e : db_.feedback()->Snapshot()) {
    if (e.tables.find("emp") != std::string::npos) emp_left = true;
    if (e.tables.find("dept") != std::string::npos) dept_left = true;
  }
  EXPECT_FALSE(emp_left);
  EXPECT_TRUE(dept_left);
}

TEST_F(FeedbackEngineTest, FeedbackTableFunctionExposesEntries) {
  db_.set_cardinality_feedback(true);
  tu::Sql(&db_, "SELECT count(*) FROM emp WHERE salary > 3000");
  QueryResult r = tu::Sql(&db_, "SELECT kind, tables, signature, value FROM relopt_feedback()");
  ASSERT_GT(r.rows.size(), 0u);
  EXPECT_EQ(r.rows[0].At(0).AsString(), "scan");
  EXPECT_EQ(r.rows[0].At(1).AsString(), "emp");
  // Filters over the function compose like any scan.
  QueryResult scans =
      tu::Sql(&db_, "SELECT count(*) FROM relopt_feedback() WHERE kind = 'scan'");
  EXPECT_GT(tu::IntCell(scans), 0);
}

TEST_F(FeedbackEngineTest, SimpliSquaredAlgorithmRuns) {
  // The estimate-free baseline orders by base-table size only; it must still
  // produce correct results through the normal executor.
  QueryResult expected = tu::Sql(
      &db_, "SELECT count(*) FROM emp e, dept d WHERE e.dept_id = d.id AND d.id < 5");
  db_.options().optimizer.join.algorithm = JoinEnumAlgorithm::kSimpliSquared;
  QueryResult got = tu::Sql(
      &db_, "SELECT count(*) FROM emp e, dept d WHERE e.dept_id = d.id AND d.id < 5");
  EXPECT_EQ(tu::IntCell(got), tu::IntCell(expected));
  EXPECT_STREQ(JoinEnumAlgorithmToString(JoinEnumAlgorithm::kSimpliSquared), "simpli2");
}

// The store is shared across sessions: concurrent feedback-on readers must
// race safely (TSan exercises this via the |Feedback test filter).
TEST_F(FeedbackEngineTest, FeedbackConcurrentSessionsAgree) {
  const std::string q =
      "SELECT count(*) FROM emp e, dept d WHERE e.dept_id = d.id AND e.salary > 3000";
  int64_t expected = tu::IntCell(tu::Sql(&db_, q));
  constexpr int kThreads = 4;
  std::vector<Session*> sessions;
  for (int i = 0; i < kThreads; ++i) {
    Session* s = db_.CreateSession();
    s->set_cardinality_feedback(true);
    sessions.push_back(s);
  }
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i]() {
      for (int round = 0; round < 5; ++round) {
        Result<QueryResult> r = sessions[i]->Execute(q);
        if (!r.ok() || r->rows.size() != 1 || r->rows[0].At(0).AsInt() != expected) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(db_.feedback()->size(), 0u);
}

// --- the acceptance case -----------------------------------------------------
//
// fact(a, b, c, k): a = b = c = i % 100, perfectly correlated. Under the
// independence assumption `a<20 AND b<20 AND c<20` estimates 0.2^3 = 0.008
// (160 rows); the truth is 0.2 (4000 rows). big(id, pad) is wider than the
// buffer pool with an index on id, so the estimate-picked index-nested-loop
// join thrashes the pool with 4000 random probes. Once the fact-scan actual
// feeds back, the re-optimized plan must be strictly cheaper in page reads.
class FeedbackPlanFlipTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tu::Sql(&db_, "CREATE TABLE fact (a INT, b INT, c INT, k INT)");
    for (int base = 0; base < 20000; base += 1000) {
      std::string insert = "INSERT INTO fact VALUES ";
      for (int i = base; i < base + 1000; ++i) {
        if (i > base) insert += ", ";
        int v = i % 100;
        insert += "(" + std::to_string(v) + ", " + std::to_string(v) + ", " + std::to_string(v) +
                  ", " + std::to_string((i * 7919) % 20000) + ")";
      }
      tu::Sql(&db_, insert);
    }
    TableSpec big;
    big.name = "big";
    big.num_rows = 20000;
    ColumnSpec pad = ColumnSpec::Serial("id");
    ColumnSpec padcol;
    padcol.name = "pad";
    padcol.type = TypeId::kString;
    padcol.dist = ColumnDist::kRandomString;
    padcol.string_length = 100;
    big.columns = {pad, padcol};
    big.sort_by = "id";
    ASSERT_OK(GenerateTable(&db_, big));
    tu::Sql(&db_, "CREATE INDEX big_id ON big (id)");
    tu::Sql(&db_, "ANALYZE");
  }

  Database db_;
  const std::string query_ =
      "SELECT count(*) FROM fact, big "
      "WHERE fact.k = big.id AND fact.a < 20 AND fact.b < 20 AND fact.c < 20";
};

TEST_F(FeedbackPlanFlipTest, FeedbackImprovesCorrelatedJoinPlan) {
  db_.set_cardinality_feedback(true);

  // The estimate-picked plan, before any observation exists.
  Result<std::string> plan_before = db_.Explain(query_);
  ASSERT_TRUE(plan_before.ok());

  QueryResult r1 = tu::Sql(&db_, query_);
  int64_t truth = tu::IntCell(r1);
  ASSERT_EQ(truth, 4000);
  uint64_t reads_before = db_.last_metrics().io.page_reads;

  QueryResult r2 = tu::Sql(&db_, query_);
  EXPECT_EQ(tu::IntCell(r2), truth);  // feedback never changes results
  uint64_t reads_after = db_.last_metrics().io.page_reads;
  Result<std::string> plan_after = db_.Explain(query_);
  ASSERT_TRUE(plan_after.ok());

  // The plan changed, and the measured cost dropped strictly.
  EXPECT_NE(*plan_before, *plan_after);
  EXPECT_LT(reads_after, reads_before)
      << "before:\n" << *plan_before << "after:\n" << *plan_after;
}

}  // namespace
}  // namespace relopt
