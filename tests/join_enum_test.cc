// Join enumeration tests: DP vs baselines, method selection, interesting
// orders, cross-product handling.
#include <gtest/gtest.h>

#include <set>

#include "test_util.h"
#include "workload/queries.h"

namespace relopt {
namespace {

/// Counts nodes of a kind in a physical plan.
int CountKind(const PhysicalNode& node, PhysicalNodeKind kind) {
  int n = node.kind() == kind ? 1 : 0;
  for (const PhysicalPtr& child : node.children()) n += CountKind(*child, kind);
  return n;
}

bool HasJoin(const PhysicalNode& node) {
  return CountKind(node, PhysicalNodeKind::kNestedLoopJoin) +
             CountKind(node, PhysicalNodeKind::kBlockNestedLoopJoin) +
             CountKind(node, PhysicalNodeKind::kIndexNestedLoopJoin) +
             CountKind(node, PhysicalNodeKind::kSortMergeJoin) +
             CountKind(node, PhysicalNodeKind::kHashJoin) >
         0;
}

class JoinEnumTest : public ::testing::Test {
 protected:
  void BuildChain(int n, bool with_indexes = false) {
    JoinWorkloadSpec spec;
    spec.num_relations = n;
    spec.base_rows = 200;
    spec.growth = 3.0;
    spec.with_indexes = with_indexes;
    Result<std::string> q = BuildChainWorkload(&db_, spec);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    query_ = *q;
  }

  double PlanCost(JoinEnumAlgorithm algorithm, OptimizeInfo* info = nullptr) {
    db_.options().optimizer.join.algorithm = algorithm;
    Result<PhysicalPtr> plan = db_.PlanQuery(query_, info);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    last_plan_ = plan.MoveValue();
    return last_plan_->est_cost().Total();
  }

  int64_t Rows(const std::string& sql) {
    QueryResult r = tu::Sql(&db_, sql);
    return r.rows[0].At(0).AsInt();
  }

  Database db_;
  std::string query_;
  PhysicalPtr last_plan_;
};

TEST_F(JoinEnumTest, DpNoWorseThanBaselines) {
  BuildChain(5);
  double dp = PlanCost(JoinEnumAlgorithm::kDpBushy);
  double greedy = PlanCost(JoinEnumAlgorithm::kGreedy);
  double random = PlanCost(JoinEnumAlgorithm::kRandom);
  double worst = PlanCost(JoinEnumAlgorithm::kWorst);
  EXPECT_LE(dp, greedy * 1.0001);
  EXPECT_LE(dp, random * 1.0001);
  EXPECT_LE(dp, worst * 1.0001);
  EXPECT_GE(worst, random * 0.9999);  // worst is at least as bad as random
}

TEST_F(JoinEnumTest, BushyNoWorseThanLeftDeep) {
  BuildChain(6);
  double bushy = PlanCost(JoinEnumAlgorithm::kDpBushy);
  double left_deep = PlanCost(JoinEnumAlgorithm::kDpLeftDeep);
  EXPECT_LE(bushy, left_deep * 1.0001);
}

TEST_F(JoinEnumTest, ExhaustiveMatchesLeftDeepDpOnSmallQueries) {
  BuildChain(4);
  OptimizeInfo dp_info, ex_info;
  double dp = PlanCost(JoinEnumAlgorithm::kDpLeftDeep, &dp_info);
  double ex = PlanCost(JoinEnumAlgorithm::kExhaustive, &ex_info);
  // Both find an optimal left-deep plan (exhaustive may miss order-based
  // wins, so allow a small slack).
  EXPECT_NEAR(dp, ex, dp * 0.1 + 1);
}

TEST_F(JoinEnumTest, DpCostsGrowSlowerThanExhaustive) {
  // A star graph: exhaustive must try (n-1)! dimension orders while DP's
  // subset table stays ~n*2^n. (On a chain, cross-product avoidance makes
  // exhaustive artificially cheap, so the star is the honest comparison.)
  JoinWorkloadSpec spec;
  spec.num_relations = 7;
  spec.base_rows = 500;
  spec.dim_rows = 20;
  spec.growth = 1.5;
  Result<std::string> q = BuildStarWorkload(&db_, spec);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  query_ = *q;

  OptimizeInfo dp_info, ex_info;
  PlanCost(JoinEnumAlgorithm::kDpLeftDeep, &dp_info);
  PlanCost(JoinEnumAlgorithm::kExhaustive, &ex_info);
  EXPECT_GT(ex_info.enum_stats.joins_costed, 2 * dp_info.enum_stats.joins_costed);
}

TEST_F(JoinEnumTest, AllStrategiesProduceCorrectResults) {
  BuildChain(4);
  db_.options().optimizer.join.algorithm = JoinEnumAlgorithm::kDpBushy;
  int64_t expected = Rows(query_);
  for (JoinEnumAlgorithm a :
       {JoinEnumAlgorithm::kDpLeftDeep, JoinEnumAlgorithm::kGreedy,
        JoinEnumAlgorithm::kExhaustive, JoinEnumAlgorithm::kRandom, JoinEnumAlgorithm::kWorst,
        JoinEnumAlgorithm::kDpCcp}) {
    db_.options().optimizer.join.algorithm = a;
    EXPECT_EQ(Rows(query_), expected) << JoinEnumAlgorithmToString(a);
  }
}

TEST_F(JoinEnumTest, IndexNestedLoopChosenForSelectiveOuter) {
  // INLJ wins when the outer is tiny and the inner is big enough that even
  // one full scan of it is more expensive than a handful of index probes.
  JoinWorkloadSpec spec;
  spec.num_relations = 2;
  spec.base_rows = 200;
  spec.growth = 100.0;  // r1 has 20000 rows
  spec.with_indexes = true;
  Result<std::string> q = BuildChainWorkload(&db_, spec);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  query_ = "SELECT count(*) FROM r0, r1 WHERE r0.fk = r1.id AND r0.id < 5";
  db_.options().optimizer.join.algorithm = JoinEnumAlgorithm::kDpBushy;
  Result<PhysicalPtr> plan = db_.PlanQuery(query_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountKind(**plan, PhysicalNodeKind::kIndexNestedLoopJoin), 1)
      << (*plan)->ToString();
}

TEST_F(JoinEnumTest, DisablingMethodsRespected) {
  BuildChain(3);
  db_.options().optimizer.join.enable_hash = false;
  db_.options().optimizer.join.enable_smj = false;
  db_.options().optimizer.join.enable_inlj = false;
  db_.options().optimizer.join.enable_nlj = false;
  // Only BNLJ remains.
  Result<PhysicalPtr> plan = db_.PlanQuery(query_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountKind(**plan, PhysicalNodeKind::kHashJoin), 0);
  EXPECT_EQ(CountKind(**plan, PhysicalNodeKind::kSortMergeJoin), 0);
  EXPECT_EQ(CountKind(**plan, PhysicalNodeKind::kBlockNestedLoopJoin), 2);
  EXPECT_TRUE(HasJoin(**plan));
}

TEST_F(JoinEnumTest, CrossProductQueryStillPlans) {
  BuildChain(2);
  query_ = "SELECT count(*) FROM r0, r1";  // no join predicate
  Result<PhysicalPtr> plan = db_.PlanQuery(query_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(HasJoin(**plan));
  int64_t rows = Rows(query_);
  EXPECT_EQ(rows, 200 * 600);
}

TEST_F(JoinEnumTest, DisconnectedThreeWayStillPlans) {
  BuildChain(3);
  query_ = "SELECT count(*) FROM r0, r1, r2 WHERE r0.fk = r1.id";  // r2 dangling
  Result<PhysicalPtr> plan = db_.PlanQuery(query_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
}

TEST_F(JoinEnumTest, InterestingOrderAvoidsSortWithClusteredIndex) {
  // Table physically sorted by id with an index on id: ORDER BY id should
  // come for free through the index scan path.
  tu::Sql(&db_, "CREATE TABLE s (id INT, v INT)");
  std::string insert = "INSERT INTO s VALUES ";
  for (int i = 0; i < 2000; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i) + ", " + std::to_string(i % 7) + ")";
  }
  tu::Sql(&db_, insert);
  tu::Sql(&db_, "CREATE CLUSTERED INDEX idx_s_id ON s (id)");
  tu::Sql(&db_, "ANALYZE");

  db_.options().optimizer.join.use_interesting_orders = true;
  Result<PhysicalPtr> with_io = db_.PlanQuery("SELECT id FROM s WHERE id < 1500 ORDER BY id");
  ASSERT_TRUE(with_io.ok());
  EXPECT_EQ(CountKind(**with_io, PhysicalNodeKind::kSort), 0) << (*with_io)->ToString();

  db_.options().optimizer.join.use_interesting_orders = false;
  Result<PhysicalPtr> without_io =
      db_.PlanQuery("SELECT id FROM s WHERE id < 1500 ORDER BY id");
  ASSERT_TRUE(without_io.ok());
  EXPECT_EQ(CountKind(**without_io, PhysicalNodeKind::kSort), 1);
}

TEST_F(JoinEnumTest, OrderedResultsAreActuallyOrdered) {
  BuildChain(2, true);
  db_.options().optimizer.join.use_interesting_orders = true;
  QueryResult r = tu::Sql(
      &db_, "SELECT r1.id FROM r0, r1 WHERE r0.fk = r1.id AND r0.id < 50 ORDER BY r1.id");
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_LE(r.rows[i - 1].At(0).AsInt(), r.rows[i].At(0).AsInt());
  }
}

TEST_F(JoinEnumTest, StatsReported) {
  BuildChain(5);
  OptimizeInfo info;
  PlanCost(JoinEnumAlgorithm::kDpBushy, &info);
  EXPECT_GT(info.enum_stats.joins_costed, 0u);
  EXPECT_GT(info.enum_stats.dp_entries, 0u);
  EXPECT_GT(info.enum_stats.subsets_visited, 0u);
}

TEST_F(JoinEnumTest, RandomSeedChangesPlanSometimes) {
  BuildChain(6);
  db_.options().optimizer.join.algorithm = JoinEnumAlgorithm::kRandom;
  std::set<std::string> plans;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    db_.options().optimizer.join.random_seed = seed;
    Result<PhysicalPtr> plan = db_.PlanQuery(query_);
    ASSERT_TRUE(plan.ok());
    plans.insert((*plan)->ToString());
  }
  EXPECT_GT(plans.size(), 1u);  // different seeds, different join orders
}

}  // namespace
}  // namespace relopt
