#include <gtest/gtest.h>

#include <set>

#include "util/bitset.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/timer.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/str_util.h"

namespace relopt {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing table");
  EXPECT_EQ(s.ToString(), "NotFound: missing table");
}

TEST(StatusTest, CopyAndMove) {
  Status s = Status::Internal("boom");
  Status copy = s;
  EXPECT_EQ(copy, s);
  Status moved = std::move(s);
  EXPECT_EQ(moved.code(), StatusCode::kInternal);
  EXPECT_EQ(moved.message(), "boom");
}

TEST(StatusTest, EveryCodeHasName) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kBindError), "BindError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kTypeError), "TypeError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted), "ResourceExhausted");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    RELOPT_RETURN_NOT_OK(Status::InvalidArgument("nope"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------- Result --

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::OutOfRange("past end");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto inner = []() -> Result<int> { return 7; };
  auto outer = [&]() -> Result<int> {
    RELOPT_ASSIGN_OR_RETURN(int v, inner());
    return v + 1;
  };
  EXPECT_EQ(*outer(), 8);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto inner = []() -> Result<int> { return Status::NotFound("x"); };
  auto outer = [&]() -> Result<int> {
    RELOPT_ASSIGN_OR_RETURN(int v, inner());
    return v + 1;
  };
  EXPECT_EQ(outer().status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveValue) {
  Result<std::string> r = std::string("hello");
  std::string v = r.MoveValue();
  EXPECT_EQ(v, "hello");
}

// --------------------------------------------------------------- strings --

TEST(StrUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
}

TEST(StrUtilTest, SplitAndJoin) {
  std::vector<std::string> parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, "-"), "a-b--c");
}

TEST(StrUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StrUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(StrUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StrUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 5, "x"), "5-x");
}

TEST(StrUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.5), "3.5");
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(0.001), "0.001");
}

TEST(StrUtilTest, EscapeSqlString) {
  EXPECT_EQ(EscapeSqlString("o'brien"), "o''brien");
}

// ------------------------------------------------------------------- rng --

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(11);
  std::vector<size_t> perm = rng.Permutation(50);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(ZipfTest, SkewZeroIsRoughlyUniform) {
  Rng rng(1);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 10000; ++i) counts[zipf.Next(&rng)]++;
  for (int v = 1; v <= 10; ++v) {
    EXPECT_GT(counts[v], 700);
    EXPECT_LT(counts[v], 1300);
  }
}

TEST(ZipfTest, HighSkewConcentratesOnRankOne) {
  Rng rng(2);
  ZipfGenerator zipf(1000, 1.2);
  int ones = 0;
  for (int i = 0; i < 10000; ++i) {
    if (zipf.Next(&rng) == 1) ++ones;
  }
  // Rank 1 should dominate under strong skew.
  EXPECT_GT(ones, 1500);
}

// ---------------------------------------------------------------- JoinSet --

TEST(JoinSetTest, BasicOps) {
  JoinSet s = JoinSet::Single(3).With(5);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Count(), 2);
  EXPECT_EQ(s.Lowest(), 3);
  EXPECT_EQ(s.ToString(), "{3,5}");
}

TEST(JoinSetTest, SetAlgebra) {
  JoinSet a(0b0110);
  JoinSet b(0b0011);
  EXPECT_EQ(a.Union(b).bits(), 0b0111u);
  EXPECT_EQ(a.Intersect(b).bits(), 0b0010u);
  EXPECT_EQ(a.Minus(b).bits(), 0b0100u);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(JoinSet(0b0010).IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
}

TEST(JoinSetTest, AllUpTo) {
  EXPECT_EQ(JoinSet::AllUpTo(4).bits(), 0b1111u);
  EXPECT_EQ(JoinSet::AllUpTo(1).bits(), 0b1u);
}

TEST(JoinSetTest, ForEachAscending) {
  std::vector<int> seen;
  JoinSet(0b101001).ForEach([&](int i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<int>{0, 3, 5}));
}

TEST(SubsetIteratorTest, EnumeratesAllProperNonEmptySubsets) {
  JoinSet set(0b1011);  // {0,1,3}
  std::set<uint64_t> subsets;
  for (SubsetIterator it(set); it.Valid(); it.Next()) {
    subsets.insert(it.Current().bits());
  }
  // 2^3 - 2 = 6 proper non-empty subsets.
  EXPECT_EQ(subsets.size(), 6u);
  EXPECT_TRUE(subsets.count(0b0001));
  EXPECT_TRUE(subsets.count(0b1010));
  EXPECT_FALSE(subsets.count(0b1011));  // the full set is excluded
  EXPECT_FALSE(subsets.count(0));
  for (uint64_t s : subsets) {
    EXPECT_TRUE(JoinSet(s).IsSubsetOf(set));
  }
}

// --------------------------------------------------------------- Logging --

TEST(LoggingTest, SinkCapturesCompleteLines) {
  std::vector<std::string> lines;
  SetLogSink([&lines](LogLevel, const std::string& line) { lines.push_back(line); });
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  RELOPT_LOG(kInfo) << "hello " << 42;
  RELOPT_LOG(kWarn) << "second";
  RELOPT_LOG(kDebug) << "dropped below threshold";
  SetLogLevel(old_level);
  SetLogSink(nullptr);  // restore stderr

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("hello 42"), std::string::npos);
  EXPECT_EQ(lines[0].back(), '\n');  // one complete line per emission
  EXPECT_NE(lines[1].find("second"), std::string::npos);
}

// ----------------------------------------------------------------- Timer --

TEST(TimerTest, ScopedTimerAccumulates) {
  uint64_t nanos = 0;
  {
    ScopedTimer t(&nanos);
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  uint64_t first = nanos;
  EXPECT_GT(first, 0u);
  {
    ScopedTimer t(&nanos);
  }
  EXPECT_GE(nanos, first);  // accumulates, never resets
}

TEST(TimerTest, MonotonicNanosNeverDecreases) {
  uint64_t a = MonotonicNanos();
  uint64_t b = MonotonicNanos();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace relopt
