// Thread-safety regression for the logging subsystem (run under TSan in
// scripts/check.sh): concurrent RELOPT_LOG emission from many threads while
// the log level and sink are churned must neither race nor tear lines.
#include "util/logging.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace relopt {
namespace {

TEST(LoggingConcurrencyTest, ParallelEmissionDoesNotTearLines) {
  std::mutex mu;
  std::vector<std::string> lines;
  SetLogSink([&](LogLevel, const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  });
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t]() {
      for (int i = 0; i < kPerThread; ++i) {
        RELOPT_LOG(kWarn) << "thread=" << t << " seq=" << i << " payload=abcdefgh";
      }
    });
  }
  for (std::thread& th : threads) th.join();
  SetLogSink(nullptr);

  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads * kPerThread));
  // Each line arrived whole: exactly one trailing newline, and the payload
  // marker intact (a torn write would interleave fragments).
  for (const std::string& line : lines) {
    EXPECT_EQ(line.find('\n'), line.size() - 1) << line;
    EXPECT_NE(line.find("payload=abcdefgh"), std::string::npos) << line;
  }
}

TEST(LoggingConcurrencyTest, LevelAndSinkChurnWhileLogging) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> delivered{0};
  const LogLevel restore_level = GetLogLevel();
  SetLogSink([](LogLevel, const std::string&) {});  // keep stderr quiet

  std::vector<std::thread> loggers;
  for (int t = 0; t < 4; ++t) {
    loggers.emplace_back([&stop]() {
      while (!stop.load(std::memory_order_relaxed)) {
        RELOPT_LOG(kWarn) << "churn";
        RELOPT_LOG(kDebug) << "mostly-dropped";
      }
    });
  }
  // Churn the global level and sink from a second pair of threads; the only
  // requirement is no data race / crash and whole-line delivery.
  std::thread level_churner([&stop]() {
    while (!stop.load(std::memory_order_relaxed)) {
      SetLogLevel(LogLevel::kDebug);
      SetLogLevel(LogLevel::kError);
      SetLogLevel(LogLevel::kWarn);
    }
  });
  std::thread sink_churner([&stop, &delivered]() {
    for (int i = 0; i < 200 && !stop.load(std::memory_order_relaxed); ++i) {
      SetLogSink([&delivered](LogLevel, const std::string& line) {
        if (line.find("churn") != std::string::npos) delivered.fetch_add(1);
      });
      std::this_thread::yield();
    }
  });
  sink_churner.join();
  stop.store(true);
  level_churner.join();
  for (std::thread& th : loggers) th.join();
  SetLogSink(nullptr);
  SetLogLevel(restore_level);
  EXPECT_GT(delivered.load(), 0u);
}

}  // namespace
}  // namespace relopt
