// QueryHistoryStore tests: SQL normalization, ring-buffer wraparound,
// concurrent appends (parallelism 2/4/8), slow-query log emission, and the
// Database integration (records for successful AND failing statements).
#include "engine/query_history.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "expr/expression.h"
#include "plan/physical_plan.h"
#include "test_util.h"
#include "util/logging.h"

namespace relopt {
namespace {

using tu::Sql;

TEST(NormalizeSqlTest, CollapsesWhitespaceAndLowercases) {
  EXPECT_EQ(NormalizeSql("SELECT  *\n FROM\temp  "), "select * from emp");
}

TEST(NormalizeSqlTest, ReplacesNumericLiterals) {
  EXPECT_EQ(NormalizeSql("SELECT * FROM emp WHERE id = 7 AND salary > 30.5"),
            "select * from emp where id = ? and salary > ?");
}

TEST(NormalizeSqlTest, ReplacesStringLiteralsIncludingEscapes) {
  EXPECT_EQ(NormalizeSql("SELECT * FROM emp WHERE name = 'O''Brien'"),
            "select * from emp where name = ?");
}

TEST(NormalizeSqlTest, KeepsDigitsInsideIdentifiers) {
  EXPECT_EQ(NormalizeSql("SELECT a1 FROM emp2 WHERE a1 = 3"),
            "select a1 from emp2 where a1 = ?");
}

QueryRecord MakeRecord(const std::string& sql, uint64_t wall_us = 0) {
  QueryRecord r;
  r.verb = "select";
  r.status = "OK";
  r.sql = sql;
  r.wall_micros = wall_us;
  return r;
}

TEST(QueryHistoryStoreTest, AssignsMonotonicIds) {
  QueryHistoryStore store(4);
  EXPECT_EQ(store.Append(MakeRecord("q1")), 1u);
  EXPECT_EQ(store.Append(MakeRecord("q2")), 2u);
  EXPECT_EQ(store.total_appended(), 2u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(QueryHistoryStoreTest, RingWrapsKeepingNewestOldestFirst) {
  QueryHistoryStore store(3);
  for (int i = 1; i <= 5; ++i) store.Append(MakeRecord("q" + std::to_string(i)));
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.total_appended(), 5u);
  std::vector<QueryRecord> snap = store.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // Oldest-first: records 3, 4, 5 survive.
  EXPECT_EQ(snap[0].sql, "q3");
  EXPECT_EQ(snap[1].sql, "q4");
  EXPECT_EQ(snap[2].sql, "q5");
  EXPECT_EQ(snap[0].id, 3u);
  EXPECT_EQ(snap[2].id, 5u);
}

TEST(QueryHistoryStoreTest, ClearKeepsIdsIncreasing) {
  QueryHistoryStore store(4);
  store.Append(MakeRecord("a"));
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.Append(MakeRecord("b")), 2u);
}

class QueryHistoryConcurrencyTest : public ::testing::TestWithParam<int> {};

TEST_P(QueryHistoryConcurrencyTest, ConcurrentAppendsKeepInvariants) {
  const int kThreads = GetParam();
  constexpr int kPerThread = 500;
  QueryHistoryStore store(64);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        store.Append(MakeRecord("t" + std::to_string(t) + "_" + std::to_string(i)));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(store.total_appended(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(store.size(), 64u);
  // Ids in a snapshot are unique and strictly increasing oldest-first.
  std::vector<QueryRecord> snap = store.Snapshot();
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].id, snap[i].id);
  }
}

INSTANTIATE_TEST_SUITE_P(Parallelism, QueryHistoryConcurrencyTest, ::testing::Values(2, 4, 8));

TEST(QueryHistoryStoreTest, SlowQueryEmitsOneLineJson) {
  std::vector<std::string> lines;
  SetLogSink([&lines](LogLevel, const std::string& line) { lines.push_back(line); });
  QueryHistoryStore store(8);
  store.set_slow_query_micros(1000);
  store.Append(MakeRecord("fast", 999));   // below threshold: no log line
  store.Append(MakeRecord("slow", 1000));  // at threshold: logged
  SetLogSink(nullptr);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"event\": \"slow_query\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"sql\": \"slow\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"wall_us\": 1000"), std::string::npos) << lines[0];
  // One line: no embedded newlines before the trailing one.
  EXPECT_EQ(lines[0].find('\n'), lines[0].size() - 1);
}

TEST(QueryHistoryStoreTest, ToJsonEscapesStrings) {
  QueryRecord r = MakeRecord("select \"x\"");
  r.error = "bad\nthing";
  r.status = "Internal";
  std::string json = r.ToJson();
  EXPECT_NE(json.find("\\\"x\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("bad\\nthing"), std::string::npos) << json;
}

// ---- Database integration ---------------------------------------------------

TEST(DatabaseHistoryTest, RecordsEveryStatementWithTimingAndCounters) {
  Database db;
  tu::LoadEmpDept(&db, 100, 5);
  size_t before = db.history()->size();
  Sql(&db, "SELECT count(*) FROM emp WHERE salary > 2000");

  std::vector<QueryRecord> snap = db.history()->Snapshot();
  ASSERT_GT(snap.size(), before);
  const QueryRecord& rec = snap.back();
  EXPECT_EQ(rec.verb, "select");
  EXPECT_EQ(rec.status, "OK");
  EXPECT_EQ(rec.sql, "select count(*) from emp where salary > ?");
  EXPECT_EQ(rec.rows_returned, 1u);
  EXPECT_GT(rec.wall_micros, 0u);
  EXPECT_GT(rec.tuples_processed, 0u);
  EXPECT_FALSE(rec.operators.empty());
  // The retained per-operator records carry the est-vs-actual substrate.
  bool has_scan = false;
  for (const OperatorRecord& op : rec.operators) {
    EXPECT_GE(op.q_error, 1.0);
    if (op.op == "SeqScan" || op.op == "IndexScan") has_scan = true;
  }
  EXPECT_TRUE(has_scan);
}

TEST(DatabaseHistoryTest, RecordsFailingStatementsExactlyOnce) {
  Database db;
  tu::LoadEmpDept(&db, 50, 5);
  uint64_t appended_before = db.history()->total_appended();
  // Casting 'e0' to INT fails at runtime, after the scan has started (binder
  // does not type-check UPDATE assignments; CastTo does, per row).
  Result<QueryResult> r = db.Execute("UPDATE emp SET salary = name");
  EXPECT_FALSE(r.ok());

  EXPECT_EQ(db.history()->total_appended(), appended_before + 1);
  std::vector<QueryRecord> snap = db.history()->Snapshot();
  ASSERT_FALSE(snap.empty());
  const QueryRecord& rec = snap.back();
  EXPECT_EQ(rec.verb, "update");
  EXPECT_NE(rec.status, "OK");
  EXPECT_FALSE(rec.error.empty());
  // Satellite fix: the failing statement still reports the work it did —
  // captured once, on the error path. The scan went through the buffer pool.
  const ExecutionMetrics& m = db.last_metrics();
  EXPECT_GT(m.pool.hits + m.pool.misses, 0u);

  // And the next statement's metrics are its own (no carry-over).
  Sql(&db, "SELECT count(*) FROM dept");
  EXPECT_EQ(db.history()->Snapshot().back().status, "OK");
}

// The executor path: a plan that fails mid-drive still captures counters for
// the work done before the failure, and exactly once.
TEST(DatabaseHistoryTest, FailingPlanExecutionStillCapturesCounters) {
  Database db;
  tu::LoadEmpDept(&db, 200, 5);
  Result<PhysicalPtr> plan = db.PlanQuery("SELECT * FROM emp");
  ASSERT_OK(plan.status());
  // An unbound column reference as the filter predicate fails on the first
  // evaluated row — after the scan has already produced tuples.
  PhysicalPtr failing = std::make_unique<PhysFilter>(plan.MoveValue(),
                                                     MakeColumnRef("emp", "salary"));
  Result<QueryResult> r = db.ExecutePlan(*failing);
  EXPECT_FALSE(r.ok());
  const ExecutionMetrics& m = db.last_metrics();
  EXPECT_TRUE(m.executed_plan);
  EXPECT_GT(m.tuples_processed, 0u);
  EXPECT_GT(m.pool.hits + m.pool.misses, 0u);
}

TEST(DatabaseHistoryTest, DdlAndDmlStatementsAreRecorded) {
  Database db;
  Sql(&db, "CREATE TABLE t (a INT)");
  Sql(&db, "INSERT INTO t VALUES (1), (2)");
  std::vector<QueryRecord> snap = db.history()->Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].verb, "create_table");
  EXPECT_EQ(snap[1].verb, "insert");
  EXPECT_EQ(snap[1].sql, "insert into t values (?), (?)");
  EXPECT_TRUE(snap[1].operators.empty());
}

}  // namespace
}  // namespace relopt
