// End-to-end SQL correctness: optimized plans must return exactly the rows a
// naive reference computation produces, across joins, filters, aggregates,
// ordering, and every optimizer configuration.
#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace relopt {
namespace {

using tu::Sql;

class SqlEndToEndTest : public ::testing::Test {
 protected:
  SqlEndToEndTest() { tu::LoadEmpDept(&db_, 300, 10); }

  std::vector<std::string> Canon(const QueryResult& r) {
    std::vector<std::string> rows;
    for (const Tuple& t : r.rows) rows.push_back(t.ToString());
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  /// Runs the query under the optimizer and under the naive planner and
  /// checks both agree.
  void CheckAgainstNaive(const std::string& sql) {
    db_.options().optimizer.naive = false;
    QueryResult optimized = Sql(&db_, sql);
    db_.options().optimizer.naive = true;
    QueryResult naive = Sql(&db_, sql);
    db_.options().optimizer.naive = false;
    EXPECT_EQ(Canon(optimized), Canon(naive)) << sql;
  }

  Database db_;
};

TEST_F(SqlEndToEndTest, FilteredJoinAgreesWithNaive) {
  CheckAgainstNaive(
      "SELECT emp.name, dept.dname FROM emp, dept "
      "WHERE emp.dept_id = dept.id AND emp.salary > 3000");
}

TEST_F(SqlEndToEndTest, ThreeWayJoinAgreesWithNaive) {
  CheckAgainstNaive(
      "SELECT e.id FROM emp e, dept d, emp e2 "
      "WHERE e.dept_id = d.id AND e2.dept_id = d.id AND e.id < 20 AND e2.id < 10");
}

TEST_F(SqlEndToEndTest, AggregationAgreesWithNaive) {
  CheckAgainstNaive(
      "SELECT dept_id, count(*), sum(salary), min(salary), max(salary) "
      "FROM emp GROUP BY dept_id");
}

TEST_F(SqlEndToEndTest, NonEquiJoinAgreesWithNaive) {
  CheckAgainstNaive(
      "SELECT e.id, e2.id FROM emp e, emp e2 "
      "WHERE e.id < 12 AND e2.id < 12 AND e.salary < e2.salary");
}

TEST_F(SqlEndToEndTest, OrPredicateAgreesWithNaive) {
  CheckAgainstNaive("SELECT id FROM emp WHERE salary < 1500 OR salary > 5500 OR id = 100");
}

TEST_F(SqlEndToEndTest, JoinWithIndexesAgrees) {
  Sql(&db_, "CREATE INDEX idx_emp_dept ON emp (dept_id)");
  Sql(&db_, "CREATE INDEX idx_dept_id ON dept (id)");
  CheckAgainstNaive(
      "SELECT emp.name FROM emp, dept WHERE emp.dept_id = dept.id AND dept.id < 3");
}

TEST_F(SqlEndToEndTest, OrderByReturnsSortedRows) {
  QueryResult r = Sql(&db_, "SELECT salary FROM emp ORDER BY salary DESC LIMIT 50");
  ASSERT_EQ(r.rows.size(), 50u);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_GE(r.rows[i - 1].At(0).AsInt(), r.rows[i].At(0).AsInt());
  }
}

TEST_F(SqlEndToEndTest, OrderByMultipleKeys) {
  QueryResult r =
      Sql(&db_, "SELECT dept_id, salary FROM emp ORDER BY dept_id ASC, salary DESC LIMIT 100");
  for (size_t i = 1; i < r.rows.size(); ++i) {
    int64_t d_prev = r.rows[i - 1].At(0).AsInt(), d = r.rows[i].At(0).AsInt();
    EXPECT_LE(d_prev, d);
    if (d_prev == d) {
      EXPECT_GE(r.rows[i - 1].At(1).AsInt(), r.rows[i].At(1).AsInt());
    }
  }
}

TEST_F(SqlEndToEndTest, BetweenAndInWork) {
  QueryResult r = Sql(&db_, "SELECT count(*) FROM emp WHERE id BETWEEN 10 AND 19");
  EXPECT_EQ(r.rows[0].At(0).AsInt(), 10);
  QueryResult r2 = Sql(&db_, "SELECT count(*) FROM emp WHERE dept_id IN (1, 3, 5)");
  EXPECT_EQ(r2.rows[0].At(0).AsInt(), 90);  // 30 per dept over 300 rows / 10 depts
}

TEST_F(SqlEndToEndTest, ScalarSubexpressionsInProjection) {
  QueryResult r = Sql(&db_, "SELECT id, salary * 2 + 1 FROM emp WHERE id = 5");
  ASSERT_EQ(r.rows.size(), 1u);
  QueryResult base = Sql(&db_, "SELECT salary FROM emp WHERE id = 5");
  EXPECT_EQ(r.rows[0].At(1).AsInt(), base.rows[0].At(0).AsInt() * 2 + 1);
}

TEST_F(SqlEndToEndTest, DistinctRemovesDuplicates) {
  QueryResult r = Sql(&db_, "SELECT DISTINCT dept_id FROM emp");
  EXPECT_EQ(r.rows.size(), 10u);  // 10 departments
  QueryResult all = Sql(&db_, "SELECT dept_id FROM emp");
  EXPECT_EQ(all.rows.size(), 300u);
}

TEST_F(SqlEndToEndTest, DistinctWithOrderBy) {
  QueryResult r = Sql(&db_, "SELECT DISTINCT dept_id FROM emp ORDER BY dept_id DESC");
  ASSERT_EQ(r.rows.size(), 10u);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_GT(r.rows[i - 1].At(0).AsInt(), r.rows[i].At(0).AsInt());
  }
}

TEST_F(SqlEndToEndTest, DistinctMultiColumn) {
  Sql(&db_, "CREATE TABLE d (a INT, b INT)");
  Sql(&db_, "INSERT INTO d VALUES (1,1), (1,1), (1,2), (2,1), (2,1)");
  QueryResult r = Sql(&db_, "SELECT DISTINCT a, b FROM d");
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(SqlEndToEndTest, DistinctOverJoin) {
  QueryResult r = Sql(&db_,
                      "SELECT DISTINCT dname FROM emp, dept "
                      "WHERE emp.dept_id = dept.id AND emp.salary > 3000");
  EXPECT_GT(r.rows.size(), 0u);
  EXPECT_LE(r.rows.size(), 10u);
  std::vector<std::string> names = Canon(r);
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());  // all distinct
}

TEST_F(SqlEndToEndTest, DistinctWithLimit) {
  QueryResult r = Sql(&db_, "SELECT DISTINCT dept_id FROM emp ORDER BY dept_id LIMIT 3");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0].At(0).AsInt(), 0);
  EXPECT_EQ(r.rows[2].At(0).AsInt(), 2);
}

TEST_F(SqlEndToEndTest, DistinctTreatsNullsEqual) {
  Sql(&db_, "CREATE TABLE dn (x INT)");
  Sql(&db_, "INSERT INTO dn VALUES (NULL), (NULL), (1)");
  QueryResult r = Sql(&db_, "SELECT DISTINCT x FROM dn");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(SqlEndToEndTest, DistinctOrderByUnselectedColumnRejected) {
  EXPECT_FALSE(db_.Execute("SELECT DISTINCT dept_id FROM emp ORDER BY salary").ok());
}

TEST_F(SqlEndToEndTest, SubqueriesAreCleanlyRejected) {
  // Derived tables are out of scope; the parser must fail, not crash.
  EXPECT_FALSE(db_.Execute("SELECT count(*) FROM (SELECT 1) sub").ok());
}

TEST_F(SqlEndToEndTest, JoinProducesConcatenatedSchema) {
  QueryResult r = Sql(&db_,
                      "SELECT * FROM dept, emp WHERE emp.dept_id = dept.id AND emp.id = 0");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.schema.NumColumns(), 6u);
  EXPECT_EQ(r.schema.ColumnAt(0).QualifiedName(), "dept.id");
  EXPECT_EQ(r.schema.ColumnAt(2).QualifiedName(), "emp.id");
}

TEST_F(SqlEndToEndTest, RepeatedExecutionIsStable) {
  const std::string q =
      "SELECT dept_id, count(*) FROM emp WHERE salary > 2000 GROUP BY dept_id ORDER BY dept_id";
  QueryResult first = Sql(&db_, q);
  for (int i = 0; i < 5; ++i) {
    QueryResult again = Sql(&db_, q);
    EXPECT_EQ(Canon(first), Canon(again));
  }
}

TEST_F(SqlEndToEndTest, AllJoinAlgorithmsAgreeOnRealQuery) {
  const std::string q =
      "SELECT count(*), sum(emp.salary) FROM emp, dept "
      "WHERE emp.dept_id = dept.id AND dept.id < 7";
  QueryResult reference = Sql(&db_, q);
  for (JoinEnumAlgorithm a :
       {JoinEnumAlgorithm::kDpLeftDeep, JoinEnumAlgorithm::kGreedy, JoinEnumAlgorithm::kRandom,
        JoinEnumAlgorithm::kWorst, JoinEnumAlgorithm::kExhaustive}) {
    db_.options().optimizer.join.algorithm = a;
    QueryResult r = Sql(&db_, q);
    EXPECT_EQ(Canon(reference), Canon(r)) << JoinEnumAlgorithmToString(a);
  }
}

}  // namespace
}  // namespace relopt
