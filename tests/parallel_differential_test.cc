// Serial-vs-parallel differential harness: every query must return the same
// bag of rows at parallelism 1 and parallelism N, fail with the same error
// when it fails, and keep EXPLAIN ANALYZE I/O attribution exact under
// concurrency.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "exec/plan_profile.h"
#include "test_util.h"

namespace relopt {
namespace {

using tu::Sql;

std::vector<std::string> Canon(const QueryResult& r) {
  std::vector<std::string> rows;
  for (const Tuple& t : r.rows) rows.push_back(t.ToString());
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<std::string> ColumnNames(const Schema& s) {
  std::vector<std::string> names;
  for (size_t i = 0; i < s.NumColumns(); ++i) names.push_back(s.ColumnAt(i).QualifiedName());
  return names;
}

/// The e2e query corpus: scans, filters, projections, equi- and non-equi
/// joins, multi-way joins, aggregates, DISTINCT, ORDER BY, LIMIT, and
/// degenerate inputs. Everything a user-facing SELECT can reach.
const char* const kQueries[] = {
    "SELECT * FROM emp",
    "SELECT id, salary FROM emp WHERE salary > 3000",
    "SELECT id, salary * 2 + 1 FROM emp WHERE id < 50",
    "SELECT id FROM emp WHERE salary < 1500 OR salary > 5500 OR id = 100",
    "SELECT count(*) FROM emp WHERE id BETWEEN 10 AND 19",
    "SELECT count(*) FROM emp WHERE dept_id IN (1, 3, 5)",
    "SELECT emp.name, dept.dname FROM emp, dept "
    "WHERE emp.dept_id = dept.id AND emp.salary > 3000",
    "SELECT count(*), sum(emp.salary) FROM emp, dept "
    "WHERE emp.dept_id = dept.id AND dept.id < 7",
    "SELECT e.id FROM emp e, dept d, emp e2 "
    "WHERE e.dept_id = d.id AND e2.dept_id = d.id AND e.id < 20 AND e2.id < 10",
    "SELECT e.id, e2.id FROM emp e, emp e2 "
    "WHERE e.id < 12 AND e2.id < 12 AND e.salary < e2.salary",
    "SELECT dept_id, count(*), sum(salary), min(salary), max(salary) "
    "FROM emp GROUP BY dept_id",
    "SELECT salary FROM emp ORDER BY salary DESC LIMIT 50",
    "SELECT dept_id, salary FROM emp ORDER BY dept_id ASC, salary DESC LIMIT 100",
    "SELECT DISTINCT dept_id FROM emp",
    "SELECT DISTINCT dname FROM emp, dept WHERE emp.dept_id = dept.id AND emp.salary > 3000",
    "SELECT id FROM emp LIMIT 5",
    "SELECT * FROM empty_t",
    "SELECT count(*) FROM empty_t",
    "SELECT e.name, d.dname FROM emp e, dept d WHERE e.dept_id = d.id AND e.name = d.dname",
    "SELECT dept_id, count(*) FROM emp WHERE salary > 2000 GROUP BY dept_id ORDER BY dept_id",
};

/// Queries that must fail — and fail identically — at every parallelism.
const char* const kFailingQueries[] = {
    "SELECT nope FROM emp",
    "SELECT * FROM missing_table",
    "SELECT id FROM emp ORDER BY",
    "SELECT DISTINCT dept_id FROM emp ORDER BY salary",
    "SELECT count(*) FROM (SELECT 1) sub",
};

class ParallelDifferentialTest : public ::testing::Test {
 protected:
  ParallelDifferentialTest() {
    tu::LoadEmpDept(&db_, 300, 10);
    Sql(&db_, "CREATE TABLE empty_t (x INT, y TEXT)");
  }

  void CheckSerialVsParallel(const std::string& sql, size_t parallelism) {
    db_.set_parallelism(1);
    QueryResult serial = Sql(&db_, sql);
    db_.set_parallelism(parallelism);
    QueryResult parallel = Sql(&db_, sql);
    db_.set_parallelism(1);
    EXPECT_EQ(ColumnNames(serial.schema), ColumnNames(parallel.schema)) << sql;
    EXPECT_EQ(Canon(serial), Canon(parallel)) << sql << " @ parallelism " << parallelism;
  }

  Database db_;
};

TEST_F(ParallelDifferentialTest, EveryQueryAgreesAtParallelism4) {
  for (const char* q : kQueries) CheckSerialVsParallel(q, 4);
}

TEST_F(ParallelDifferentialTest, EveryQueryAgreesAtParallelism2And8) {
  for (const char* q : kQueries) {
    CheckSerialVsParallel(q, 2);
    CheckSerialVsParallel(q, 8);
  }
}

TEST_F(ParallelDifferentialTest, OrderByStillSortedUnderParallelism) {
  // Bag equality is not enough for ORDER BY: the serial Sort above the
  // Gather must still deliver sorted output even though worker row order is
  // nondeterministic.
  db_.set_parallelism(4);
  QueryResult r = Sql(&db_, "SELECT salary FROM emp ORDER BY salary DESC LIMIT 50");
  ASSERT_EQ(r.rows.size(), 50u);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_GE(r.rows[i - 1].At(0).AsInt(), r.rows[i].At(0).AsInt());
  }
}

TEST_F(ParallelDifferentialTest, ErrorsAreIdenticalAcrossParallelism) {
  for (const char* q : kFailingQueries) {
    db_.set_parallelism(1);
    Result<QueryResult> serial = db_.Execute(q);
    db_.set_parallelism(4);
    Result<QueryResult> parallel = db_.Execute(q);
    db_.set_parallelism(1);
    EXPECT_FALSE(serial.ok()) << q;
    EXPECT_FALSE(parallel.ok()) << q;
    EXPECT_EQ(serial.status().ToString(), parallel.status().ToString()) << q;
  }
}

TEST_F(ParallelDifferentialTest, RepeatedParallelExecutionIsStable) {
  const std::string q =
      "SELECT dept_id, count(*) FROM emp WHERE salary > 2000 GROUP BY dept_id ORDER BY dept_id";
  db_.set_parallelism(1);
  QueryResult reference = Sql(&db_, q);
  db_.set_parallelism(4);
  for (int i = 0; i < 5; ++i) {
    QueryResult again = Sql(&db_, q);
    EXPECT_EQ(Canon(reference), Canon(again));
  }
}

/// Recursively finds the first profile node whose op matches.
const OperatorProfile* FindOp(const OperatorProfile& p, const std::string& op) {
  if (p.op == op) return &p;
  for (const OperatorProfile& c : p.children) {
    if (const OperatorProfile* hit = FindOp(c, op)) return hit;
  }
  return nullptr;
}

TEST_F(ParallelDifferentialTest, ScanActuallyRunsOnAllWorkers) {
  db_.set_parallelism(4);
  Sql(&db_, "SELECT count(*) FROM emp");
  const PlanProfile& profile = db_.last_profile();
  ASSERT_TRUE(profile.valid);
  const OperatorProfile* scan = FindOp(profile.root, "SeqScan");
  ASSERT_NE(scan, nullptr);
  // One MorselScan clone per worker registered against the SeqScan node;
  // merged stats show one Init per worker and the full row count.
  EXPECT_EQ(scan->stats.init_calls, 4u);
  EXPECT_EQ(scan->stats.rows_produced, 300u);
}

TEST_F(ParallelDifferentialTest, HashJoinRunsParallelAndCountsRowsOnce) {
  db_.set_parallelism(4);
  QueryResult r = Sql(&db_,
                      "SELECT emp.name, dept.dname FROM emp, dept "
                      "WHERE emp.dept_id = dept.id");
  const PlanProfile& profile = db_.last_profile();
  ASSERT_TRUE(profile.valid);
  const OperatorProfile* join = FindOp(profile.root, "HashJoin");
  if (join != nullptr) {  // the optimizer is free to pick another join method
    EXPECT_EQ(join->stats.init_calls, 4u);
    EXPECT_EQ(join->stats.rows_produced, 300u);
  }
  EXPECT_EQ(r.rows.size(), 300u);
}

TEST_F(ParallelDifferentialTest, ExplainAnalyzeIoExactUnderParallelism) {
  const std::string q =
      "SELECT count(*), sum(emp.salary) FROM emp, dept WHERE emp.dept_id = dept.id";
  db_.set_parallelism(4);
  PhysicalPtr plan;
  {
    Result<PhysicalPtr> p = db_.PlanQuery(q);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    plan = p.MoveValue();
  }
  // Cold cache so worker scans do real page reads concurrently.
  ASSERT_OK(db_.pool()->FlushAll());
  ASSERT_OK(db_.pool()->EvictAll());
  Result<QueryResult> r = db_.ExecutePlan(*plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  const ExecutionMetrics& m = db_.last_metrics();
  const PlanProfile& profile = db_.last_profile();
  ASSERT_TRUE(profile.valid);
  EXPECT_GT(m.io.page_reads, 0u);
  // Attribution is thread-local and exclusive, so per-operator I/O must sum
  // exactly to the query totals at any parallelism.
  EXPECT_EQ(profile.TotalPageReads(), m.io.page_reads);
  EXPECT_EQ(profile.TotalPageWrites(), m.io.page_writes);
}

TEST_F(ParallelDifferentialTest, SetParallelismIsReversible) {
  const std::string q = "SELECT count(*) FROM emp";
  db_.set_parallelism(4);
  EXPECT_EQ(db_.parallelism(), 4u);
  QueryResult at4 = Sql(&db_, q);
  db_.set_parallelism(0);  // clamps to serial
  EXPECT_EQ(db_.parallelism(), 1u);
  QueryResult at1 = Sql(&db_, q);
  EXPECT_EQ(Canon(at4), Canon(at1));
}

}  // namespace
}  // namespace relopt
