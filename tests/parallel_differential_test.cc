// Serial-vs-parallel differential harness: every query must return the same
// bag of rows at parallelism 1 and parallelism N, fail with the same error
// when it fails, and keep EXPLAIN ANALYZE I/O attribution exact under
// concurrency.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "differential_queries.h"
#include "exec/plan_profile.h"
#include "test_util.h"

namespace relopt {
namespace {

using tu::Sql;

std::vector<std::string> Canon(const QueryResult& r) {
  std::vector<std::string> rows;
  for (const Tuple& t : r.rows) rows.push_back(t.ToString());
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<std::string> ColumnNames(const Schema& s) {
  std::vector<std::string> names;
  for (size_t i = 0; i < s.NumColumns(); ++i) names.push_back(s.ColumnAt(i).QualifiedName());
  return names;
}

// The corpus lives in differential_queries.h, shared with the row-vs-batch
// suite so both harnesses cover the same queries.
using tu::kAggregateQueries;
using tu::kDifferentialFailingQueries;
using tu::kDifferentialQueries;

class ParallelDifferentialTest : public ::testing::Test {
 protected:
  ParallelDifferentialTest() { tu::LoadDifferentialFixture(&db_); }

  void CheckSerialVsParallel(const std::string& sql, size_t parallelism) {
    db_.set_parallelism(1);
    QueryResult serial = Sql(&db_, sql);
    db_.set_parallelism(parallelism);
    QueryResult parallel = Sql(&db_, sql);
    db_.set_parallelism(1);
    EXPECT_EQ(ColumnNames(serial.schema), ColumnNames(parallel.schema)) << sql;
    EXPECT_EQ(Canon(serial), Canon(parallel)) << sql << " @ parallelism " << parallelism;
  }

  Database db_;
};

TEST_F(ParallelDifferentialTest, EveryQueryAgreesAtParallelism4) {
  for (const char* q : kDifferentialQueries) CheckSerialVsParallel(q, 4);
}

TEST_F(ParallelDifferentialTest, EveryQueryAgreesAtParallelism2And8) {
  for (const char* q : kDifferentialQueries) {
    CheckSerialVsParallel(q, 2);
    CheckSerialVsParallel(q, 8);
  }
}

TEST_F(ParallelDifferentialTest, OrderByStillSortedUnderParallelism) {
  // Bag equality is not enough for ORDER BY: the serial Sort above the
  // Gather must still deliver sorted output even though worker row order is
  // nondeterministic.
  db_.set_parallelism(4);
  QueryResult r = Sql(&db_, "SELECT salary FROM emp ORDER BY salary DESC LIMIT 50");
  ASSERT_EQ(r.rows.size(), 50u);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_GE(r.rows[i - 1].At(0).AsInt(), r.rows[i].At(0).AsInt());
  }
}

TEST_F(ParallelDifferentialTest, ErrorsAreIdenticalAcrossParallelism) {
  for (const char* q : kDifferentialFailingQueries) {
    db_.set_parallelism(1);
    Result<QueryResult> serial = db_.Execute(q);
    db_.set_parallelism(4);
    Result<QueryResult> parallel = db_.Execute(q);
    db_.set_parallelism(1);
    EXPECT_FALSE(serial.ok()) << q;
    EXPECT_FALSE(parallel.ok()) << q;
    EXPECT_EQ(serial.status().ToString(), parallel.status().ToString()) << q;
  }
}

TEST_F(ParallelDifferentialTest, RepeatedParallelExecutionIsStable) {
  const std::string q =
      "SELECT dept_id, count(*) FROM emp WHERE salary > 2000 GROUP BY dept_id ORDER BY dept_id";
  db_.set_parallelism(1);
  QueryResult reference = Sql(&db_, q);
  db_.set_parallelism(4);
  for (int i = 0; i < 5; ++i) {
    QueryResult again = Sql(&db_, q);
    EXPECT_EQ(Canon(reference), Canon(again));
  }
}

/// Recursively finds the first profile node whose op matches.
const OperatorProfile* FindOp(const OperatorProfile& p, const std::string& op) {
  if (p.op == op) return &p;
  for (const OperatorProfile& c : p.children) {
    if (const OperatorProfile* hit = FindOp(c, op)) return hit;
  }
  return nullptr;
}

TEST_F(ParallelDifferentialTest, ScanActuallyRunsOnAllWorkers) {
  db_.set_parallelism(4);
  Sql(&db_, "SELECT count(*) FROM emp");
  const PlanProfile& profile = db_.last_profile();
  ASSERT_TRUE(profile.valid);
  const OperatorProfile* scan = FindOp(profile.root, "SeqScan");
  ASSERT_NE(scan, nullptr);
  // One MorselScan clone per worker registered against the SeqScan node;
  // merged stats show one Init per worker and the full row count.
  EXPECT_EQ(scan->stats.init_calls, 4u);
  EXPECT_EQ(scan->stats.rows_produced, 300u);
}

TEST_F(ParallelDifferentialTest, HashJoinRunsParallelAndCountsRowsOnce) {
  db_.set_parallelism(4);
  QueryResult r = Sql(&db_,
                      "SELECT emp.name, dept.dname FROM emp, dept "
                      "WHERE emp.dept_id = dept.id");
  const PlanProfile& profile = db_.last_profile();
  ASSERT_TRUE(profile.valid);
  const OperatorProfile* join = FindOp(profile.root, "HashJoin");
  if (join != nullptr) {  // the optimizer is free to pick another join method
    EXPECT_EQ(join->stats.init_calls, 4u);
    EXPECT_EQ(join->stats.rows_produced, 300u);
  }
  EXPECT_EQ(r.rows.size(), 300u);
}

TEST_F(ParallelDifferentialTest, ExplainAnalyzeIoExactUnderParallelism) {
  const std::string q =
      "SELECT count(*), sum(emp.salary) FROM emp, dept WHERE emp.dept_id = dept.id";
  db_.set_parallelism(4);
  PhysicalPtr plan;
  {
    Result<PhysicalPtr> p = db_.PlanQuery(q);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    plan = p.MoveValue();
  }
  // Cold cache so worker scans do real page reads concurrently.
  ASSERT_OK(db_.pool()->FlushAll());
  ASSERT_OK(db_.pool()->EvictAll());
  Result<QueryResult> r = db_.ExecutePlan(*plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  const ExecutionMetrics& m = db_.last_metrics();
  const PlanProfile& profile = db_.last_profile();
  ASSERT_TRUE(profile.valid);
  EXPECT_GT(m.io.page_reads, 0u);
  // Attribution is thread-local and exclusive, so per-operator I/O must sum
  // exactly to the query totals at any parallelism.
  EXPECT_EQ(profile.TotalPageReads(), m.io.page_reads);
  EXPECT_EQ(profile.TotalPageWrites(), m.io.page_writes);
}

// The full execution-mode matrix over the aggregate corpus: parallelism
// {1, 2, 4} x {row drive, batch 1024}. Every combination must produce the
// same bag of rows as serial row mode, emit each group exactly once (equal
// Aggregate-node rows_produced), and — on a cold cache — read exactly the
// same pages with exact per-operator attribution.
TEST_F(ParallelDifferentialTest, AggregateMatrixExactAcrossModes) {
  const size_t kParallelisms[] = {1, 2, 4};
  for (const char* q : kAggregateQueries) {
    // Reference: serial row mode, cold cache. Plan first so catalog reads
    // during planning don't pollute the execution I/O counts.
    db_.set_parallelism(1);
    db_.set_vectorized(false);
    PhysicalPtr ref_plan;
    {
      Result<PhysicalPtr> p = db_.PlanQuery(q);
      ASSERT_TRUE(p.ok()) << q << ": " << p.status().ToString();
      ref_plan = p.MoveValue();
    }
    ASSERT_OK(db_.pool()->FlushAll());
    ASSERT_OK(db_.pool()->EvictAll());
    Result<QueryResult> ref = db_.ExecutePlan(*ref_plan);
    ASSERT_TRUE(ref.ok()) << q << ": " << ref.status().ToString();
    const uint64_t ref_reads = db_.last_metrics().io.page_reads;
    uint64_t ref_agg_rows = 0;
    {
      const PlanProfile& profile = db_.last_profile();
      ASSERT_TRUE(profile.valid) << q;
      const OperatorProfile* agg = FindOp(profile.root, "Aggregate");
      ASSERT_NE(agg, nullptr) << q;
      ref_agg_rows = agg->stats.rows_produced;
    }

    for (size_t parallelism : kParallelisms) {
      for (bool vectorized : {false, true}) {
        const std::string mode = std::string(q) + " @ parallelism " +
                                 std::to_string(parallelism) +
                                 (vectorized ? ", batch 1024" : ", row mode");
        db_.set_parallelism(parallelism);
        db_.set_vectorized(vectorized);
        if (vectorized) db_.set_batch_size(1024);
        PhysicalPtr plan;
        {
          Result<PhysicalPtr> p = db_.PlanQuery(q);
          ASSERT_TRUE(p.ok()) << mode << ": " << p.status().ToString();
          plan = p.MoveValue();
        }
        ASSERT_OK(db_.pool()->FlushAll());
        ASSERT_OK(db_.pool()->EvictAll());
        Result<QueryResult> got = db_.ExecutePlan(*plan);
        ASSERT_TRUE(got.ok()) << mode << ": " << got.status().ToString();
        EXPECT_EQ(Canon(*ref), Canon(*got)) << mode;

        const ExecutionMetrics& m = db_.last_metrics();
        const PlanProfile& profile = db_.last_profile();
        ASSERT_TRUE(profile.valid) << mode;
        // Same pages are touched no matter how the plan is driven or sliced,
        // and thread-local attribution sums exactly to the query totals.
        EXPECT_EQ(m.io.page_reads, ref_reads) << mode;
        EXPECT_EQ(profile.TotalPageReads(), m.io.page_reads) << mode;
        EXPECT_EQ(profile.TotalPageWrites(), m.io.page_writes) << mode;
        const OperatorProfile* agg = FindOp(profile.root, "Aggregate");
        ASSERT_NE(agg, nullptr) << mode;
        // Partitions are disjoint, so across all workers each group is
        // emitted exactly once: merged rows_produced matches serial.
        EXPECT_EQ(agg->stats.rows_produced, ref_agg_rows) << mode;
      }
    }
    db_.set_parallelism(1);
    db_.set_vectorized(false);
  }
}

TEST_F(ParallelDifferentialTest, SetParallelismIsReversible) {
  const std::string q = "SELECT count(*) FROM emp";
  db_.set_parallelism(4);
  EXPECT_EQ(db_.parallelism(), 4u);
  QueryResult at4 = Sql(&db_, q);
  db_.set_parallelism(0);  // clamps to serial
  EXPECT_EQ(db_.parallelism(), 1u);
  QueryResult at1 = Sql(&db_, q);
  EXPECT_EQ(Canon(at4), Canon(at1));
}

}  // namespace
}  // namespace relopt
