// Cost model formula tests: shapes, monotonicity, crossover behaviour.
#include <gtest/gtest.h>

#include "optimizer/cost_model.h"

namespace relopt {
namespace {

TEST(CostModelTest, EstimatePages) {
  EXPECT_DOUBLE_EQ(CostModel::EstimatePages(0, 100), 0);
  EXPECT_DOUBLE_EQ(CostModel::EstimatePages(40, 100), 1);   // 40 rows fit one page
  EXPECT_DOUBLE_EQ(CostModel::EstimatePages(41, 100), 2);   // 40 per page
  EXPECT_DOUBLE_EQ(CostModel::EstimatePages(1, 10000), 1);  // huge rows: 1/page
}

TEST(CostModelTest, YaoSaturatesAtPages) {
  EXPECT_DOUBLE_EQ(CostModel::YaoPagesTouched(0, 100), 0);
  EXPECT_NEAR(CostModel::YaoPagesTouched(1, 100), 1, 0.01);
  EXPECT_NEAR(CostModel::YaoPagesTouched(1000000, 100), 100, 0.01);
  // Monotonic in k.
  double prev = 0;
  for (double k = 1; k <= 512; k *= 2) {
    double v = CostModel::YaoPagesTouched(k, 100);
    EXPECT_GT(v, prev);
    prev = v;
  }
  EXPECT_LE(prev, 100);
}

TEST(CostModelTest, SeqScanIsPagesPlusCpu) {
  CostModel cm(128);
  Cost c = cm.SeqScan(1000, 50);
  EXPECT_DOUBLE_EQ(c.page_ios, 50);
  EXPECT_DOUBLE_EQ(c.cpu_tuples, 1000);
}

TEST(CostModelTest, ClusteredIndexScanCheaperThanUnclusteredAtModestSelectivity) {
  CostModel cm(128);
  // 10% of a 10k-row, 250-page table.
  Cost clustered = cm.IndexScan(1000, 0.1, 10000, 250, 2, 30, true);
  Cost unclustered = cm.IndexScan(1000, 0.1, 10000, 250, 2, 30, false);
  EXPECT_LT(clustered.page_ios, unclustered.page_ios);
}

TEST(CostModelTest, IndexVsSeqScanCrossover) {
  CostModel cm(128);
  Cost seq = cm.SeqScan(10000, 250);
  // Highly selective: index wins.
  Cost selective = cm.IndexScan(10, 0.001, 10000, 250, 2, 30, false);
  EXPECT_LT(cm.Total(selective), cm.Total(seq));
  // Unselective unclustered: seq scan wins.
  Cost unselective = cm.IndexScan(8000, 0.8, 10000, 250, 2, 30, false);
  EXPECT_GT(cm.Total(unselective), cm.Total(seq));
}

TEST(CostModelTest, SortFreeWhenFitsInMemory) {
  CostModel cm(128);
  Cost c = cm.Sort(1000, 50);  // 50 pages < 120 memory pages
  EXPECT_DOUBLE_EQ(c.page_ios, 0);
  EXPECT_GT(c.cpu_tuples, 0);
}

TEST(CostModelTest, SortSpillsWithRunsAndPasses) {
  CostModel cm(16);  // operator memory = 8 pages, fan-in 7
  double runs = 0, passes = 0;
  Cost c = cm.Sort(100000, 800, &runs, &passes);
  EXPECT_DOUBLE_EQ(runs, 100);               // ceil(800/8)
  EXPECT_DOUBLE_EQ(passes, 2);               // 100 -> 15 -> 3 (two passes), then stream
  EXPECT_DOUBLE_EQ(c.page_ios, 2 * 800 * 3); // 2P(1+passes)
}

TEST(CostModelTest, NljScalesWithOuterRows) {
  CostModel cm(128);
  Cost inner = cm.SeqScan(1000, 25);
  Cost small = cm.NestedLoop(10, inner, 1000);
  Cost big = cm.NestedLoop(1000, inner, 1000);
  EXPECT_DOUBLE_EQ(small.page_ios, 10 * 25);
  EXPECT_DOUBLE_EQ(big.page_ios, 1000 * 25);
}

TEST(CostModelTest, BnljScalesWithOuterBlocks) {
  CostModel cm(34);  // operator memory 26, block = 24 pages
  Cost inner = cm.SeqScan(1000, 25);
  // 100 outer pages -> ceil(100/24) = 5 inner scans.
  Cost c = cm.BlockNestedLoop(4000, 100, inner, 1000);
  EXPECT_DOUBLE_EQ(c.page_ios, 5 * 25);
}

TEST(CostModelTest, BnljBeatsNljAlwaysWithMultiPageOuter) {
  CostModel cm(128);
  Cost inner = cm.SeqScan(1000, 25);
  Cost nlj = cm.NestedLoop(4000, inner, 1000);
  Cost bnlj = cm.BlockNestedLoop(4000, 100, inner, 1000);
  EXPECT_LT(cm.Total(bnlj), cm.Total(nlj));
}

TEST(CostModelTest, InljChargesIndexProbesPerOuterRow) {
  CostModel cm(128);
  Cost c = cm.IndexNestedLoop(100, 2, 1.0, 250, 10000, false);
  // height 2 + ~1 page per match, per probe.
  EXPECT_NEAR(c.page_ios, 100 * 3.0, 5.0);
}

TEST(CostModelTest, InljWinsAtSmallOuterLosesAtHuge) {
  CostModel cm(128);
  Cost inner_scan = cm.SeqScan(100000, 2500);
  // Small outer: probing beats scanning the inner even once.
  Cost inlj_small = cm.IndexNestedLoop(10, 3, 1.0, 2500, 100000, false);
  EXPECT_LT(cm.Total(inlj_small), cm.Total(inner_scan));
  // Huge outer: probe cost explodes past one hash pass.
  Cost inlj_big = cm.IndexNestedLoop(1000000, 3, 1.0, 2500, 100000, false);
  Cost hash = cm.HashJoin(100000, 2500, 1000000, 25000);
  EXPECT_GT(cm.Total(inlj_big), cm.Total(hash) + cm.Total(inner_scan));
}

TEST(CostModelTest, HashJoinFreeIoWhenBuildFits) {
  CostModel cm(128);
  Cost c = cm.HashJoin(1000, 25, 5000, 125);
  EXPECT_DOUBLE_EQ(c.page_ios, 0);
}

TEST(CostModelTest, GraceHashChargesPartitioning) {
  CostModel cm(16);  // memory 8 pages
  Cost c = cm.HashJoin(10000, 250, 50000, 1250);
  EXPECT_DOUBLE_EQ(c.page_ios, 2 * (250 + 1250));
}

TEST(CostModelTest, MergeJoinIsCpuOnly) {
  CostModel cm(128);
  Cost c = cm.MergeJoin(1000, 2000, 1500);
  EXPECT_DOUBLE_EQ(c.page_ios, 0);
  EXPECT_DOUBLE_EQ(c.cpu_tuples, 4500);
}

TEST(CostModelTest, CpuWeightAffectsTotals) {
  CostModel cheap_cpu(128, 0.0001);
  CostModel pricey_cpu(128, 1.0);
  Cost c{10, 1000};
  EXPECT_NEAR(cheap_cpu.Total(c), 10.1, 0.001);
  EXPECT_DOUBLE_EQ(pricey_cpu.Total(c), 1010);
}

TEST(CostModelTest, MaterializeCosts) {
  CostModel cm(128);
  Cost c = cm.Materialize(1000, 25, 3);
  EXPECT_DOUBLE_EQ(c.page_ios, 25 * 4);  // one write + 3 re-reads
}

TEST(CostModelTest, CostAddition) {
  Cost a{1, 10};
  Cost b{2, 20};
  Cost c = a + b;
  EXPECT_DOUBLE_EQ(c.page_ios, 3);
  EXPECT_DOUBLE_EQ(c.cpu_tuples, 30);
  a += b;
  EXPECT_DOUBLE_EQ(a.page_ios, 3);
}

}  // namespace
}  // namespace relopt
