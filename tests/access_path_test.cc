// Access path selection tests: path enumeration, bound extraction, costs.
#include <gtest/gtest.h>

#include "expr/binder.h"
#include "optimizer/access_path.h"
#include "parser/parser.h"
#include "test_util.h"
#include "workload/generator.h"

namespace relopt {
namespace {

class AccessPathTest : public ::testing::Test {
 protected:
  AccessPathTest() : cost_model_(256) {
    TableSpec spec;
    spec.name = "t";
    spec.num_rows = 20000;
    spec.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("k", 0, 99),
                    ColumnSpec::Uniform("v", 0, 999)};
    EXPECT_TRUE(GenerateTable(&db_, spec).ok());
    EXPECT_TRUE(db_.catalog()->CreateIndex("idx_id", "t", {"id"}, false).ok());
    EXPECT_TRUE(db_.catalog()->CreateIndex("idx_k_v", "t", {"k", "v"}, false).ok());
  }

  QueryGraph Graph(const std::string& sql) {
    Result<StatementPtr> stmt = ParseStatement(sql);
    EXPECT_TRUE(stmt.ok());
    Binder binder(db_.catalog());
    Result<LogicalPtr> plan = binder.BindSelect(static_cast<SelectStmt*>(stmt->get()));
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    LogicalPtr node = plan.MoveValue();
    while (node->kind() != LogicalNodeKind::kFilter && node->kind() != LogicalNodeKind::kScan) {
      node = node->TakeChild(0);
    }
    Result<QueryGraph> g = BuildQueryGraph(std::move(node), db_.catalog());
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    return g.MoveValue();
  }

  std::vector<AccessPath> Paths(const std::string& sql, StatsMode mode = StatsMode::kHistogram) {
    graph_ = Graph(sql);
    aliases_.clear();
    for (const BaseRelation& rel : graph_.relations) aliases_[rel.alias] = rel.table;
    SelectivityEstimator est(&aliases_, mode);
    Result<std::vector<AccessPath>> paths =
        EnumerateAccessPaths(graph_, 0, est, cost_model_, true);
    EXPECT_TRUE(paths.ok()) << paths.status().ToString();
    return paths.MoveValue();
  }

  const AccessPath* FindIndexPath(const std::vector<AccessPath>& paths, const std::string& name) {
    for (const AccessPath& p : paths) {
      if (p.index != nullptr && p.index->name == name) return &p;
    }
    return nullptr;
  }

  Database db_;
  CostModel cost_model_;
  QueryGraph graph_;
  AliasMap aliases_;
};

TEST_F(AccessPathTest, SeqScanAlwaysPresent) {
  std::vector<AccessPath> paths = Paths("SELECT id FROM t");
  ASSERT_GE(paths.size(), 1u);
  EXPECT_EQ(paths[0].index, nullptr);
  EXPECT_GT(paths[0].cost.page_ios, 0);
}

TEST_F(AccessPathTest, PointPredicateGetsBoundedIndexPath) {
  std::vector<AccessPath> paths = Paths("SELECT id FROM t WHERE id = 123");
  const AccessPath* p = FindIndexPath(paths, "idx_id");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->lo_values.size(), 1u);
  EXPECT_TRUE(p->lo_values[0].Equals(Value::Int(123)));
  EXPECT_TRUE(p->hi_values[0].Equals(Value::Int(123)));
  EXPECT_EQ(p->consumed.size(), 1u);
  // Highly selective point lookup beats the seq scan.
  EXPECT_LT(cost_model_.Total(p->cost), cost_model_.Total(paths[0].cost));
  EXPECT_NEAR(p->out_rows, 1.0, 0.5);
}

TEST_F(AccessPathTest, RangePredicateBounds) {
  std::vector<AccessPath> paths = Paths("SELECT id FROM t WHERE id > 100 AND id <= 200");
  const AccessPath* p = FindIndexPath(paths, "idx_id");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->lo_values.size(), 1u);
  EXPECT_FALSE(p->lo_inclusive);
  ASSERT_EQ(p->hi_values.size(), 1u);
  EXPECT_TRUE(p->hi_inclusive);
  EXPECT_EQ(p->consumed.size(), 2u);
}

TEST_F(AccessPathTest, CompositePrefixEqThenRange) {
  std::vector<AccessPath> paths = Paths("SELECT id FROM t WHERE k = 5 AND v < 100");
  const AccessPath* p = FindIndexPath(paths, "idx_k_v");
  ASSERT_NE(p, nullptr);
  // lo = (5), hi = (5, 100): equality prefix plus a range on v.
  ASSERT_EQ(p->lo_values.size(), 1u);
  ASSERT_EQ(p->hi_values.size(), 2u);
  EXPECT_TRUE(p->hi_values[1].Equals(Value::Int(100)));
  EXPECT_EQ(p->consumed.size(), 2u);
}

TEST_F(AccessPathTest, NonLeadingColumnDoesNotBound) {
  // v is the second key of idx_k_v; without a k predicate no bound exists.
  std::vector<AccessPath> paths = Paths("SELECT id FROM t WHERE v = 7");
  const AccessPath* p = FindIndexPath(paths, "idx_k_v");
  // The unbounded path may exist (order), but must have no bounds consumed.
  if (p != nullptr) {
    EXPECT_TRUE(p->lo_values.empty());
    EXPECT_TRUE(p->hi_values.empty());
    EXPECT_TRUE(p->consumed.empty());
  }
}

TEST_F(AccessPathTest, IndexOrderReported) {
  std::vector<AccessPath> paths = Paths("SELECT id FROM t WHERE id > 5");
  const AccessPath* p = FindIndexPath(paths, "idx_id");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->order.size(), 1u);
  EXPECT_EQ(p->order[0].column, "id");
  EXPECT_FALSE(p->order[0].desc);
}

TEST_F(AccessPathTest, UnselectiveRangeCostsMoreThanSeqScan) {
  std::vector<AccessPath> paths = Paths("SELECT id FROM t WHERE id >= 0");
  const AccessPath* p = FindIndexPath(paths, "idx_id");
  ASSERT_NE(p, nullptr);
  // Fetching ~every row through an unclustered index must cost more than the
  // seq scan (the classic crossover).
  EXPECT_GT(cost_model_.Total(p->cost), cost_model_.Total(paths[0].cost));
}

TEST_F(AccessPathTest, DisabledIndexScansYieldOnlySeqScan) {
  graph_ = Graph("SELECT id FROM t WHERE id = 5");
  aliases_.clear();
  for (const BaseRelation& rel : graph_.relations) aliases_[rel.alias] = rel.table;
  SelectivityEstimator est(&aliases_, StatsMode::kHistogram);
  Result<std::vector<AccessPath>> paths =
      EnumerateAccessPaths(graph_, 0, est, cost_model_, false);
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 1u);
}

TEST_F(AccessPathTest, BuildPlanForSeqScanWithResidual) {
  std::vector<AccessPath> paths = Paths("SELECT id FROM t WHERE v = 7");
  Result<PhysicalPtr> plan = BuildAccessPathPlan(graph_, paths[0]);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Filter over SeqScan (residual not consumed by any index).
  EXPECT_EQ((*plan)->kind(), PhysicalNodeKind::kFilter);
  EXPECT_EQ((*plan)->child(0)->kind(), PhysicalNodeKind::kSeqScan);
}

TEST_F(AccessPathTest, BuildPlanForIndexScanExecutesCorrectly) {
  std::vector<AccessPath> paths = Paths("SELECT id FROM t WHERE id = 123");
  const AccessPath* p = FindIndexPath(paths, "idx_id");
  ASSERT_NE(p, nullptr);
  Result<PhysicalPtr> plan = BuildAccessPathPlan(graph_, *p);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->kind(), PhysicalNodeKind::kIndexScan);
  Result<QueryResult> result = db_.ExecutePlan(**plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].At(0).AsInt(), 123);
}

TEST_F(AccessPathTest, ResidualKeptWhenIndexConsumesOnlySome) {
  std::vector<AccessPath> paths = Paths("SELECT id FROM t WHERE id = 123 AND v = 7");
  const AccessPath* p = FindIndexPath(paths, "idx_id");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->consumed.size(), 1u);  // only id = 123
  Result<PhysicalPtr> plan = BuildAccessPathPlan(graph_, *p);
  ASSERT_TRUE(plan.ok());
  const auto* scan = static_cast<const PhysIndexScan*>(plan->get());
  ASSERT_NE(scan->residual, nullptr);
}

}  // namespace
}  // namespace relopt
