// Join executor tests: each method directly, plus cross-method agreement.
#include <gtest/gtest.h>

#include <algorithm>

#include "exec/block_nested_loop_join.h"
#include "exec/hash_join.h"
#include "exec/index_nested_loop_join.h"
#include "exec/nested_loop_join.h"
#include "exec/seq_scan.h"
#include "exec/sort_merge_join.h"
#include "exec/values_exec.h"
#include "test_util.h"

namespace relopt {
namespace {

class JoinExecTest : public ::testing::Test {
 protected:
  JoinExecTest() : pool_(&disk_, 64), catalog_(&pool_), ctx_(&catalog_, &pool_) {
    Schema r;
    r.AddColumn(Column("id", TypeId::kInt64, "r"));
    r.AddColumn(Column("k", TypeId::kInt64, "r"));
    r_ = *catalog_.CreateTable("r", r);
    Schema s;
    s.AddColumn(Column("k", TypeId::kInt64, "s"));
    s.AddColumn(Column("tag", TypeId::kString, "s"));
    s_ = *catalog_.CreateTable("s", s);

    // r: 30 rows, k = id % 5.  s: keys 0..3, duplicated twice each, plus a
    // NULL-keyed row and a never-matching key 99.
    for (int i = 0; i < 30; ++i) {
      EXPECT_TRUE(catalog_.InsertTuple(r_, Tuple({Value::Int(i), Value::Int(i % 5)})).ok());
    }
    for (int k = 0; k < 4; ++k) {
      for (int copy = 0; copy < 2; ++copy) {
        EXPECT_TRUE(catalog_
                        .InsertTuple(s_, Tuple({Value::Int(k),
                                                Value::String("s" + std::to_string(k) + "_" +
                                                              std::to_string(copy))}))
                        .ok());
      }
    }
    EXPECT_TRUE(
        catalog_.InsertTuple(s_, Tuple({Value::Null(TypeId::kInt64), Value::String("null")}))
            .ok());
    EXPECT_TRUE(catalog_.InsertTuple(s_, Tuple({Value::Int(99), Value::String("lonely")})).ok());
  }

  ExecutorPtr ScanR() { return std::make_unique<SeqScanExecutor>(&ctx_, r_->schema(), r_); }
  ExecutorPtr ScanS() { return std::make_unique<SeqScanExecutor>(&ctx_, s_->schema(), s_); }

  ExprPtr JoinPred() {
    ExprPtr pred = MakeComparison(CompareOp::kEq, MakeColumnRef("r", "k"), MakeColumnRef("s", "k"));
    Schema concat = Schema::Concat(r_->schema(), s_->schema());
    EXPECT_TRUE(pred->Bind(concat).ok());
    return pred;
  }

  std::vector<Tuple> Drain(Executor* exec) {
    EXPECT_TRUE(exec->Init().ok());
    std::vector<Tuple> out;
    Tuple t;
    while (true) {
      Result<bool> has = exec->Next(&t);
      EXPECT_TRUE(has.ok()) << has.status().ToString();
      if (!has.ok() || !*has) break;
      out.push_back(t);
    }
    return out;
  }

  /// Sorted rendering for order-insensitive comparison.
  static std::vector<std::string> Canon(const std::vector<Tuple>& rows) {
    std::vector<std::string> out;
    for (const Tuple& t : rows) out.push_back(t.ToString());
    std::sort(out.begin(), out.end());
    return out;
  }

  // Expected matches: r keys 0..4 each 6 rows; s keys 0..3 each 2 rows.
  // Matching r rows: k in {0,1,2,3} -> 24 rows, each matching 2 s rows = 48.
  static constexpr size_t kExpectedMatches = 48;

  DiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
  ExecContext ctx_;
  TableInfo* r_;
  TableInfo* s_;
};

TEST_F(JoinExecTest, NestedLoopJoin) {
  ExprPtr pred = JoinPred();
  NestedLoopJoinExecutor join(&ctx_, ScanR(), ScanS(), pred.get());
  std::vector<Tuple> rows = Drain(&join);
  EXPECT_EQ(rows.size(), kExpectedMatches);
  EXPECT_EQ(rows[0].NumValues(), 4u);
}

TEST_F(JoinExecTest, NestedLoopCrossProduct) {
  NestedLoopJoinExecutor join(&ctx_, ScanR(), ScanS(), nullptr);
  EXPECT_EQ(Drain(&join).size(), 30u * 10u);
}

TEST_F(JoinExecTest, BlockNestedLoopJoinMatchesNlj) {
  ExprPtr pred = JoinPred();
  NestedLoopJoinExecutor nlj(&ctx_, ScanR(), ScanS(), pred.get());
  std::vector<Tuple> expected = Drain(&nlj);

  BlockNestedLoopJoinExecutor bnlj(&ctx_, ScanR(), ScanS(), pred.get(), /*block_pages=*/1);
  std::vector<Tuple> got = Drain(&bnlj);
  EXPECT_EQ(Canon(got), Canon(expected));
}

TEST_F(JoinExecTest, BlockNestedLoopTinyBlockStillCorrect) {
  ExprPtr pred = JoinPred();
  // Force many blocks by using a tiny block size relative to 30 rows.
  BlockNestedLoopJoinExecutor bnlj(&ctx_, ScanR(), ScanS(), pred.get(), 1);
  EXPECT_EQ(Drain(&bnlj).size(), kExpectedMatches);
}

TEST_F(JoinExecTest, HashJoinInMemory) {
  HashJoinExecutor join(&ctx_, ScanR(), ScanS(), {1}, {0}, nullptr,
                        /*output_probe_first=*/false);
  std::vector<Tuple> rows = Drain(&join);
  EXPECT_EQ(rows.size(), kExpectedMatches);
  // Output = (build=r, probe=s): 4 columns in r,s order.
  EXPECT_EQ(rows[0].NumValues(), 4u);
}

TEST_F(JoinExecTest, HashJoinSwappedSidesKeepsSchemaOrder) {
  // Build on s, probe with r, but emit (r, s).
  HashJoinExecutor join(&ctx_, ScanS(), ScanR(), {0}, {1}, nullptr,
                        /*output_probe_first=*/true);
  std::vector<Tuple> rows = Drain(&join);
  EXPECT_EQ(rows.size(), kExpectedMatches);
  // First column should be r.id (an int below 30), third s.k.
  for (const Tuple& t : rows) {
    EXPECT_LT(t.At(0).AsInt(), 30);
    EXPECT_EQ(t.At(1).AsInt(), t.At(2).AsInt());  // r.k == s.k
  }
}

TEST_F(JoinExecTest, HashJoinNullKeysNeverMatch) {
  HashJoinExecutor join(&ctx_, ScanS(), ScanS(), {0}, {0}, nullptr, false);
  // s has 8 non-null keyed rows in 4 groups of 2 -> 4*4=16 pairs; the NULL
  // row and key 99 row match... 99 matches itself (1 pair). NULL matches
  // nothing.
  EXPECT_EQ(Drain(&join).size(), 16u + 1u);
}

TEST_F(JoinExecTest, GraceHashJoinSpillsAndMatches) {
  // A pool this small forces the Grace path (operator memory = 1 page).
  DiskManager disk;
  BufferPool pool(&disk, 9);
  Catalog catalog(&pool);
  ExecContext ctx(&catalog, &pool);

  Schema big;
  big.AddColumn(Column("k", TypeId::kInt64, "big"));
  big.AddColumn(Column("pad", TypeId::kString, "big"));
  TableInfo* big_table = *catalog.CreateTable("big", big);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(catalog
                    .InsertTuple(big_table, Tuple({Value::Int(i % 50),
                                                   Value::String(std::string(100, 'x'))}))
                    .ok());
  }
  auto scan1 = std::make_unique<SeqScanExecutor>(&ctx, big_table->schema(), big_table);
  auto scan2 = std::make_unique<SeqScanExecutor>(&ctx, big_table->schema(), big_table);
  HashJoinExecutor join(&ctx, std::move(scan1), std::move(scan2), {0}, {0}, nullptr, false);
  ASSERT_TRUE(join.Init().ok());
  size_t count = 0;
  Tuple t;
  while (true) {
    Result<bool> has = join.Next(&t);
    ASSERT_TRUE(has.ok()) << has.status().ToString();
    if (!*has) break;
    ++count;
  }
  // 50 keys x 10 rows each side -> 50 * 10 * 10.
  EXPECT_EQ(count, 5000u);
  // The spill really happened: scratch partition writes occurred.
  EXPECT_GT(disk.stats().page_writes, 0u);
}

TEST_F(JoinExecTest, SortMergeJoinOnSortedInputs) {
  // Sort both sides via Values (already sorted by key here).
  std::vector<Tuple> left_rows, right_rows;
  for (int i = 0; i < 10; ++i) left_rows.push_back(Tuple({Value::Int(i / 2)}));   // 0,0,1,1,...
  for (int i = 0; i < 5; ++i) right_rows.push_back(Tuple({Value::Int(i)}));
  Schema one_col;
  one_col.AddColumn(Column("k", TypeId::kInt64, "l"));
  Schema one_col_r;
  one_col_r.AddColumn(Column("k", TypeId::kInt64, "rr"));
  auto left = std::make_unique<ValuesExecutor>(&ctx_, one_col, &left_rows);
  auto right = std::make_unique<ValuesExecutor>(&ctx_, one_col_r, &right_rows);
  SortMergeJoinExecutor join(&ctx_, std::move(left), std::move(right), {0}, {0}, nullptr);
  std::vector<Tuple> rows = Drain(&join);
  EXPECT_EQ(rows.size(), 10u);  // every left row matches exactly one right
  for (const Tuple& t : rows) EXPECT_EQ(t.At(0).AsInt(), t.At(1).AsInt());
}

TEST_F(JoinExecTest, SortMergeJoinDuplicateGroupsCrossProduct) {
  std::vector<Tuple> left_rows = {Tuple({Value::Int(1)}), Tuple({Value::Int(1)}),
                                  Tuple({Value::Int(2)})};
  std::vector<Tuple> right_rows = {Tuple({Value::Int(1)}), Tuple({Value::Int(1)}),
                                   Tuple({Value::Int(1)}), Tuple({Value::Int(3)})};
  Schema l;
  l.AddColumn(Column("k", TypeId::kInt64, "l"));
  Schema r;
  r.AddColumn(Column("k", TypeId::kInt64, "rr"));
  auto left = std::make_unique<ValuesExecutor>(&ctx_, l, &left_rows);
  auto right = std::make_unique<ValuesExecutor>(&ctx_, r, &right_rows);
  SortMergeJoinExecutor join(&ctx_, std::move(left), std::move(right), {0}, {0}, nullptr);
  EXPECT_EQ(Drain(&join).size(), 6u);  // 2 left x 3 right for key 1
}

TEST_F(JoinExecTest, SortMergeJoinSkipsNullKeys) {
  std::vector<Tuple> left_rows = {Tuple({Value::Null(TypeId::kInt64)}), Tuple({Value::Int(1)})};
  std::vector<Tuple> right_rows = {Tuple({Value::Null(TypeId::kInt64)}), Tuple({Value::Int(1)})};
  Schema l;
  l.AddColumn(Column("k", TypeId::kInt64, "l"));
  Schema r;
  r.AddColumn(Column("k", TypeId::kInt64, "rr"));
  auto left = std::make_unique<ValuesExecutor>(&ctx_, l, &left_rows);
  auto right = std::make_unique<ValuesExecutor>(&ctx_, r, &right_rows);
  SortMergeJoinExecutor join(&ctx_, std::move(left), std::move(right), {0}, {0}, nullptr);
  EXPECT_EQ(Drain(&join).size(), 1u);
}

TEST_F(JoinExecTest, IndexNestedLoopJoin) {
  IndexInfo* index = *catalog_.CreateIndex("idx_s_k", "s", {"k"}, false);
  std::vector<ExprPtr> key_exprs;
  key_exprs.push_back(MakeColumnRef("r", "k"));
  ASSERT_TRUE(key_exprs[0]->Bind(r_->schema()).ok());
  IndexNestedLoopJoinExecutor join(&ctx_, ScanR(), s_, index, s_->schema(), &key_exprs, nullptr);
  std::vector<Tuple> rows = Drain(&join);
  EXPECT_EQ(rows.size(), kExpectedMatches);
  for (const Tuple& t : rows) {
    EXPECT_EQ(t.At(1).AsInt(), t.At(2).AsInt());  // r.k == s.k
  }
}

TEST_F(JoinExecTest, AllMethodsAgree) {
  ExprPtr pred = JoinPred();
  NestedLoopJoinExecutor nlj(&ctx_, ScanR(), ScanS(), pred.get());
  std::vector<std::string> expected = Canon(Drain(&nlj));

  BlockNestedLoopJoinExecutor bnlj(&ctx_, ScanR(), ScanS(), pred.get(), 2);
  EXPECT_EQ(Canon(Drain(&bnlj)), expected);

  HashJoinExecutor hash(&ctx_, ScanR(), ScanS(), {1}, {0}, nullptr, false);
  EXPECT_EQ(Canon(Drain(&hash)), expected);

  IndexInfo* index = *catalog_.CreateIndex("idx_s_k2", "s", {"k"}, false);
  std::vector<ExprPtr> key_exprs;
  key_exprs.push_back(MakeColumnRef("r", "k"));
  ASSERT_TRUE(key_exprs[0]->Bind(r_->schema()).ok());
  IndexNestedLoopJoinExecutor inlj(&ctx_, ScanR(), s_, index, s_->schema(), &key_exprs, nullptr);
  EXPECT_EQ(Canon(Drain(&inlj)), expected);
}

TEST_F(JoinExecTest, EmptyInputs) {
  Schema empty_schema;
  empty_schema.AddColumn(Column("k", TypeId::kInt64, "e"));
  std::vector<Tuple> no_rows;
  {
    auto left = std::make_unique<ValuesExecutor>(&ctx_, empty_schema, &no_rows);
    NestedLoopJoinExecutor join(&ctx_, std::move(left), ScanS(), nullptr);
    EXPECT_TRUE(Drain(&join).empty());
  }
  {
    auto right = std::make_unique<ValuesExecutor>(&ctx_, empty_schema, &no_rows);
    HashJoinExecutor join(&ctx_, std::move(right), ScanR(), {0}, {1}, nullptr, true);
    EXPECT_TRUE(Drain(&join).empty());
  }
}

}  // namespace
}  // namespace relopt
