// Unit tests for TupleBatch, its selection vector, and the tuple-reuse
// (clear-and-refill) paths underneath batch execution.
#include "types/tuple_batch.h"

#include <gtest/gtest.h>

#include "types/tuple.h"
#include "types/value.h"

namespace relopt {
namespace {

Tuple MakeRow(int64_t a, int64_t b) {
  Tuple t;
  t.Append(Value::Int(a));
  t.Append(Value::Int(b));
  return t;
}

TEST(TupleBatchTest, StartsEmpty) {
  TupleBatch batch(4);
  EXPECT_EQ(batch.capacity(), 4u);
  EXPECT_EQ(batch.NumRows(), 0u);
  EXPECT_EQ(batch.NumSelected(), 0u);
  EXPECT_TRUE(batch.Empty());
  EXPECT_FALSE(batch.Full());
}

TEST(TupleBatchTest, ZeroCapacityClampsToOne) {
  TupleBatch batch(0);
  EXPECT_EQ(batch.capacity(), 1u);
  batch.AppendRow()->Append(Value::Int(1));
  EXPECT_TRUE(batch.Full());
}

TEST(TupleBatchTest, AppendRowSelectsAndFills) {
  TupleBatch batch(4);
  *batch.AppendRow() = MakeRow(1, 10);
  *batch.AppendRow() = MakeRow(2, 20);
  EXPECT_EQ(batch.NumRows(), 2u);
  EXPECT_EQ(batch.NumSelected(), 2u);
  EXPECT_EQ(batch.selection(), (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(batch.SelectedRow(0).At(0).AsInt(), 1);
  EXPECT_EQ(batch.SelectedRow(1).At(1).AsInt(), 20);
}

TEST(TupleBatchTest, FullAtCapacity) {
  TupleBatch batch(2);
  batch.AppendRow();
  EXPECT_FALSE(batch.Full());
  batch.AppendRow();
  EXPECT_TRUE(batch.Full());
}

TEST(TupleBatchTest, DropLastRowUndoesAppend) {
  TupleBatch batch(4);
  *batch.AppendRow() = MakeRow(1, 10);
  batch.AppendRow();  // speculative slot, stream ended
  batch.DropLastRow();
  EXPECT_EQ(batch.NumRows(), 1u);
  EXPECT_EQ(batch.NumSelected(), 1u);
  EXPECT_EQ(batch.SelectedRow(0).At(0).AsInt(), 1);
}

TEST(TupleBatchTest, ClearKeepsStorageForReuse) {
  TupleBatch batch(4);
  *batch.AppendRow() = MakeRow(1, 10);
  *batch.AppendRow() = MakeRow(2, 20);
  batch.Clear();
  EXPECT_EQ(batch.NumRows(), 0u);
  EXPECT_EQ(batch.NumSelected(), 0u);
  // Recycled slots come back cleared even though the Tuple object is reused.
  Tuple* slot = batch.AppendRow();
  EXPECT_EQ(slot->NumValues(), 0u);
  slot->Append(Value::Int(7));
  EXPECT_EQ(batch.SelectedRow(0).At(0).AsInt(), 7);
}

TEST(TupleBatchTest, AppendTupleMovesRowIn) {
  TupleBatch batch(4);
  Tuple t = MakeRow(5, 50);
  batch.AppendTuple(std::move(t));
  EXPECT_EQ(batch.NumSelected(), 1u);
  EXPECT_EQ(batch.SelectedRow(0).At(1).AsInt(), 50);
}

TEST(TupleBatchTest, SelectionCompaction) {
  // A filter keeps rows 0 and 2 of 4: unselected rows stay in storage but
  // disappear from the selected view.
  TupleBatch batch(4);
  for (int i = 0; i < 4; ++i) *batch.AppendRow() = MakeRow(i, i * 10);
  *batch.mutable_selection() = {0, 2};
  EXPECT_EQ(batch.NumRows(), 4u);
  EXPECT_EQ(batch.NumSelected(), 2u);
  EXPECT_EQ(batch.SelectedRow(0).At(0).AsInt(), 0);
  EXPECT_EQ(batch.SelectedRow(1).At(0).AsInt(), 2);
  // RowAt still reaches unselected storage (operators never do; tests can).
  EXPECT_EQ(batch.RowAt(1).At(0).AsInt(), 1);
}

TEST(TupleBatchTest, AllRowsFilteredLeavesValidEmptySelection) {
  TupleBatch batch(4);
  for (int i = 0; i < 4; ++i) *batch.AppendRow() = MakeRow(i, i);
  batch.mutable_selection()->clear();
  EXPECT_TRUE(batch.Empty());
  EXPECT_EQ(batch.NumRows(), 4u);  // storage untouched
  // Clear + refill works after a wipe-out.
  batch.Clear();
  *batch.AppendRow() = MakeRow(9, 9);
  EXPECT_EQ(batch.NumSelected(), 1u);
}

TEST(TupleBatchTest, TruncateSelection) {
  TupleBatch batch(8);
  for (int i = 0; i < 6; ++i) *batch.AppendRow() = MakeRow(i, i);
  batch.TruncateSelection(4);  // LIMIT mid-batch
  EXPECT_EQ(batch.NumSelected(), 4u);
  EXPECT_EQ(batch.SelectedRow(3).At(0).AsInt(), 3);
  batch.TruncateSelection(10);  // no-op past the end
  EXPECT_EQ(batch.NumSelected(), 4u);
  batch.TruncateSelection(0);  // LIMIT exactly at a batch boundary
  EXPECT_TRUE(batch.Empty());
}

TEST(TupleBatchTest, TupleFillFromReusesStorage) {
  Tuple original = MakeRow(42, 43);
  original.Append(Value::String("hello"));
  std::string bytes = original.Serialize();

  Tuple reused = MakeRow(1, 2);  // pre-existing contents must vanish
  ASSERT_TRUE(reused.FillFrom(bytes, 3).ok());
  EXPECT_EQ(reused.NumValues(), 3u);
  EXPECT_EQ(reused.At(0).AsInt(), 42);
  EXPECT_EQ(reused.At(2).AsString(), "hello");
  EXPECT_TRUE(reused == original);

  // Trailing garbage is rejected, matching Tuple::Deserialize.
  EXPECT_FALSE(reused.FillFrom(bytes + "x", 3).ok());
}

TEST(TupleBatchTest, TupleClearKeepsNothingVisible) {
  Tuple t = MakeRow(1, 2);
  t.Clear();
  EXPECT_EQ(t.NumValues(), 0u);
  t.Append(Value::Int(3));
  EXPECT_EQ(t.At(0).AsInt(), 3);
}

}  // namespace
}  // namespace relopt
