// Prepared statements: positional `?` parameters, rebinding across
// executions with different values and types, bind-time (not execute-time)
// type errors, DDL between executions, and interleaved prepare/execute from
// multiple sessions.
#include <string>
#include <vector>

#include "engine/session.h"
#include "test_util.h"

namespace relopt {
namespace {

using tu::IntCell;
using tu::LoadEmpDept;
using tu::Sql;

int64_t CountWhereSalaryAbove(PreparedStatement* stmt, int64_t threshold) {
  Result<QueryResult> r = stmt->Execute({Value::Int(threshold)});
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r->rows[0].At(0).AsInt() : -1;
}

TEST(PreparedStatementTest, RebindsDifferentValues) {
  Database db;
  LoadEmpDept(&db);
  Session* session = db.CreateSession();
  Result<PreparedStatement*> prepared =
      session->Prepare("SELECT count(*) FROM emp WHERE salary > ?");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  PreparedStatement* stmt = *prepared;
  EXPECT_EQ(stmt->num_parameters(), 1u);

  const int64_t all = CountWhereSalaryAbove(stmt, 0);
  const int64_t none = CountWhereSalaryAbove(stmt, 1000000);
  const int64_t some = CountWhereSalaryAbove(stmt, 3000);
  EXPECT_EQ(all, 1000);
  EXPECT_EQ(none, 0);
  EXPECT_GT(some, 0);
  EXPECT_LT(some, 1000);
  // Rebinding an earlier value reproduces its result exactly.
  EXPECT_EQ(CountWhereSalaryAbove(stmt, 0), all);
  EXPECT_EQ(CountWhereSalaryAbove(stmt, 3000), some);
}

TEST(PreparedStatementTest, MultipleParametersBindInOrder) {
  Database db;
  LoadEmpDept(&db);
  Session* session = db.CreateSession();
  Result<PreparedStatement*> prepared =
      session->Prepare("SELECT count(*) FROM emp WHERE salary > ? AND salary < ? AND dept_id = ?");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  PreparedStatement* stmt = *prepared;
  ASSERT_EQ(stmt->num_parameters(), 3u);

  Result<QueryResult> narrow = stmt->Execute({Value::Int(2000), Value::Int(4000), Value::Int(3)});
  ASSERT_TRUE(narrow.ok()) << narrow.status().ToString();
  const int64_t expected =
      IntCell(Sql(&db, "SELECT count(*) FROM emp "
                       "WHERE salary > 2000 AND salary < 4000 AND dept_id = 3"));
  EXPECT_EQ(narrow->rows[0].At(0).AsInt(), expected);
}

TEST(PreparedStatementTest, RebindsDifferentTypes) {
  Database db;
  LoadEmpDept(&db);
  Session* session = db.CreateSession();
  Result<PreparedStatement*> prepared =
      session->Prepare("SELECT count(*) FROM emp WHERE name = ?");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  PreparedStatement* stmt = *prepared;

  Result<QueryResult> hit = stmt->Execute({Value::String("e7")});
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_EQ(hit->rows[0].At(0).AsInt(), 1);

  // An INT against the TEXT column is a bind-time type error — the binder
  // rejects the comparison before any executor runs, so the statement
  // reports no execution work at all.
  Result<QueryResult> mismatch = stmt->Execute({Value::Int(7)});
  ASSERT_FALSE(mismatch.ok());
  EXPECT_FALSE(session->last_metrics().executed_plan)
      << "type mismatch must fail at bind time, not during execution";
  QueryRecord last = db.history()->Snapshot().back();
  EXPECT_NE(last.status, "OK");
  EXPECT_EQ(last.exec_micros, 0u) << "no executor may have been driven";

  // The statement is not poisoned: the next well-typed execution succeeds.
  Result<QueryResult> again = stmt->Execute({Value::String("e9")});
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->rows[0].At(0).AsInt(), 1);
}

TEST(PreparedStatementTest, ParameterCountMismatch) {
  Database db;
  LoadEmpDept(&db);
  Session* session = db.CreateSession();
  Result<PreparedStatement*> prepared =
      session->Prepare("SELECT count(*) FROM emp WHERE salary > ? AND dept_id = ?");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  PreparedStatement* stmt = *prepared;
  EXPECT_FALSE(stmt->Execute({}).ok());
  EXPECT_FALSE(stmt->Execute({Value::Int(1)}).ok());
  EXPECT_FALSE(stmt->Execute({Value::Int(1), Value::Int(2), Value::Int(3)}).ok());
  EXPECT_TRUE(stmt->Execute({Value::Int(1), Value::Int(2)}).ok());
}

TEST(PreparedStatementTest, UnboundParameterInPlainExecuteFails) {
  Database db;
  LoadEmpDept(&db);
  Result<QueryResult> r = db.Execute("SELECT count(*) FROM emp WHERE id = ?");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("parameter"), std::string::npos)
      << r.status().ToString();
}

TEST(PreparedStatementTest, PreparedInsertAndDelete) {
  Database db;
  Sql(&db, "CREATE TABLE t (a INT, b TEXT)");
  Session* session = db.CreateSession();
  Result<PreparedStatement*> insert = session->Prepare("INSERT INTO t VALUES (?, ?)");
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  for (int i = 0; i < 5; ++i) {
    Result<QueryResult> r =
        (*insert)->Execute({Value::Int(i), Value::String("row" + std::to_string(i))});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  EXPECT_EQ(IntCell(Sql(&db, "SELECT count(*) FROM t")), 5);

  Result<PreparedStatement*> del = session->Prepare("DELETE FROM t WHERE a < ?");
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  ASSERT_TRUE((*del)->Execute({Value::Int(3)}).ok());
  EXPECT_EQ(IntCell(Sql(&db, "SELECT count(*) FROM t")), 2);
}

TEST(PreparedStatementTest, ReprepareAfterDdl) {
  Database db;
  Sql(&db, "CREATE TABLE t (a INT)");
  Sql(&db, "INSERT INTO t VALUES (1), (2), (3)");
  Session* session = db.CreateSession();
  Result<PreparedStatement*> prepared = session->Prepare("SELECT count(*) FROM t WHERE a > ?");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  PreparedStatement* stmt = *prepared;
  Result<QueryResult> before = stmt->Execute({Value::Int(1)});
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->rows[0].At(0).AsInt(), 2);

  // Dropping the table makes every execution a bind error...
  Sql(&db, "DROP TABLE t");
  EXPECT_FALSE(stmt->Execute({Value::Int(1)}).ok());

  // ...and re-creating a compatible schema revives it (each execution
  // re-binds against the live catalog).
  Sql(&db, "CREATE TABLE t (a INT)");
  Sql(&db, "INSERT INTO t VALUES (10)");
  Result<QueryResult> revived = stmt->Execute({Value::Int(1)});
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ(revived->rows[0].At(0).AsInt(), 1);

  // An incompatible re-create surfaces as a bind error; re-preparing against
  // the new shape is the fix.
  Sql(&db, "DROP TABLE t");
  Sql(&db, "CREATE TABLE t (renamed INT)");
  Sql(&db, "INSERT INTO t VALUES (100)");
  EXPECT_FALSE(stmt->Execute({Value::Int(1)}).ok());
  Result<PreparedStatement*> reprepared =
      session->Prepare("SELECT count(*) FROM t WHERE renamed > ?");
  ASSERT_TRUE(reprepared.ok()) << reprepared.status().ToString();
  Result<QueryResult> fresh = (*reprepared)->Execute({Value::Int(1)});
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(fresh->rows[0].At(0).AsInt(), 1);
}

TEST(PreparedStatementTest, InterleavedAcrossSessions) {
  Database db;
  LoadEmpDept(&db);
  Session* s1 = db.CreateSession();
  Session* s2 = db.CreateSession();

  Result<PreparedStatement*> p1 = s1->Prepare("SELECT count(*) FROM emp WHERE salary > ?");
  Result<PreparedStatement*> p2 = s2->Prepare("SELECT count(*) FROM emp WHERE dept_id = ?");
  ASSERT_TRUE(p1.ok() && p2.ok());

  // Interleave executions; each session's prepared statement and
  // last-statement metrics stay independent.
  for (int round = 0; round < 3; ++round) {
    Result<QueryResult> r1 = (*p1)->Execute({Value::Int(3000)});
    ASSERT_TRUE(r1.ok());
    const int64_t above = r1->rows[0].At(0).AsInt();
    Result<QueryResult> r2 = (*p2)->Execute({Value::Int(round)});
    ASSERT_TRUE(r2.ok());
    const int64_t in_dept = r2->rows[0].At(0).AsInt();
    EXPECT_EQ(in_dept, 50);  // 1000 rows over 20 departments
    EXPECT_GT(above, 0);
    // s1's metrics were not clobbered by s2's execution.
    EXPECT_EQ(s1->last_metrics().actual_rows, 1u);
    EXPECT_EQ(s2->last_metrics().actual_rows, 1u);
  }
  // A session can also prepare mid-stream without disturbing the other's
  // statements.
  Result<PreparedStatement*> p3 = s2->Prepare("SELECT name FROM emp WHERE id = ?");
  ASSERT_TRUE(p3.ok());
  Result<QueryResult> named = (*p3)->Execute({Value::Int(42)});
  ASSERT_TRUE(named.ok());
  ASSERT_EQ(named->rows.size(), 1u);
  EXPECT_EQ(named->rows[0].At(0).AsString(), "e42");
  EXPECT_TRUE((*p1)->Execute({Value::Int(0)}).ok());
}

// Identical parameter values reuse the cached plan; different values plan
// separately (the key encodes the rendered parameters).
TEST(PreparedStatementTest, ParameterValuesPartitionThePlanCache) {
  Database db;
  LoadEmpDept(&db);
  Session* session = db.CreateSession();
  Result<PreparedStatement*> prepared =
      session->Prepare("SELECT count(*) FROM emp WHERE salary > ?");
  ASSERT_TRUE(prepared.ok());
  PreparedStatement* stmt = *prepared;

  ASSERT_TRUE(stmt->Execute({Value::Int(2500)}).ok());
  EXPECT_FALSE(session->last_metrics().plan_cache_hit);
  ASSERT_TRUE(stmt->Execute({Value::Int(2500)}).ok());
  EXPECT_TRUE(session->last_metrics().plan_cache_hit);
  ASSERT_TRUE(stmt->Execute({Value::Int(9999)}).ok());
  EXPECT_FALSE(session->last_metrics().plan_cache_hit)
      << "different parameter values must not share a cache entry";
}

}  // namespace
}  // namespace relopt
