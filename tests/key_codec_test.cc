// Property tests for the order-preserving key codec: encoded byte order must
// match Value::Compare order for every supported type and composite.
#include <gtest/gtest.h>

#include <algorithm>

#include "types/key_codec.h"
#include "util/rng.h"

namespace relopt {
namespace {

std::string Enc(const Value& v) {
  std::string out;
  EncodeKeyValue(v, &out);
  return out;
}

int Sign(int x) { return x < 0 ? -1 : (x > 0 ? 1 : 0); }

void ExpectOrderPreserved(const Value& a, const Value& b) {
  Result<int> cmp = a.Compare(b);
  ASSERT_TRUE(cmp.ok());
  int enc_cmp = Enc(a).compare(Enc(b));
  EXPECT_EQ(Sign(*cmp), Sign(enc_cmp)) << a.ToString() << " vs " << b.ToString();
}

TEST(KeyCodecTest, IntOrdering) {
  std::vector<int64_t> ints = {-1000000, -2, -1, 0, 1, 2, 7, 4096, 1000000};
  for (size_t i = 0; i < ints.size(); ++i) {
    for (size_t j = 0; j < ints.size(); ++j) {
      ExpectOrderPreserved(Value::Int(ints[i]), Value::Int(ints[j]));
    }
  }
}

TEST(KeyCodecTest, DoubleOrdering) {
  std::vector<double> doubles = {-1e18, -3.5, -0.0001, 0.0, 0.0001, 1.0, 3.5, 1e18};
  for (size_t i = 0; i < doubles.size(); ++i) {
    for (size_t j = 0; j < doubles.size(); ++j) {
      ExpectOrderPreserved(Value::Double(doubles[i]), Value::Double(doubles[j]));
    }
  }
}

TEST(KeyCodecTest, MixedNumericOrdering) {
  ExpectOrderPreserved(Value::Int(2), Value::Double(2.5));
  ExpectOrderPreserved(Value::Double(-0.5), Value::Int(0));
  ExpectOrderPreserved(Value::Int(3), Value::Double(3.0));
}

TEST(KeyCodecTest, StringOrdering) {
  std::vector<std::string> strs = {"", "a", "aa", "ab", "b", "ba", "zzz"};
  for (size_t i = 0; i < strs.size(); ++i) {
    for (size_t j = 0; j < strs.size(); ++j) {
      ExpectOrderPreserved(Value::String(strs[i]), Value::String(strs[j]));
    }
  }
}

TEST(KeyCodecTest, StringWithEmbeddedNulOrdersCorrectly) {
  // "a" < "a\0" < "a\0x" < "ab"
  Value a = Value::String("a");
  Value a0 = Value::String(std::string("a\0", 2));
  Value a0x = Value::String(std::string("a\0x", 3));
  Value ab = Value::String("ab");
  ExpectOrderPreserved(a, a0);
  ExpectOrderPreserved(a0, a0x);
  ExpectOrderPreserved(a0x, ab);
  EXPECT_LT(Enc(a), Enc(a0));
  EXPECT_LT(Enc(a0), Enc(a0x));
  EXPECT_LT(Enc(a0x), Enc(ab));
}

TEST(KeyCodecTest, NullSortsBeforeEverything) {
  EXPECT_LT(Enc(Value::Null()), Enc(Value::Int(INT64_MIN + 1)));
  EXPECT_LT(Enc(Value::Null()), Enc(Value::String("")));
  EXPECT_LT(Enc(Value::Null()), Enc(Value::Bool(false)));
}

TEST(KeyCodecTest, BoolOrdering) {
  EXPECT_LT(Enc(Value::Bool(false)), Enc(Value::Bool(true)));
}

TEST(KeyCodecTest, CompositeKeysOrderLexicographically) {
  std::string k1 = EncodeKey({Value::Int(1), Value::String("b")});
  std::string k2 = EncodeKey({Value::Int(1), Value::String("c")});
  std::string k3 = EncodeKey({Value::Int(2), Value::String("a")});
  EXPECT_LT(k1, k2);
  EXPECT_LT(k2, k3);
}

TEST(KeyCodecTest, CompositeShorterStringDoesNotBleedIntoNextColumn) {
  // ("a", 2) must sort before ("ab", 1): column 1 decides.
  std::string k1 = EncodeKey({Value::String("a"), Value::Int(2)});
  std::string k2 = EncodeKey({Value::String("ab"), Value::Int(1)});
  EXPECT_LT(k1, k2);
}

TEST(KeyCodecTest, EncodeKeyFromTuple) {
  Tuple t({Value::Int(5), Value::String("x"), Value::Double(1.5)});
  EXPECT_EQ(EncodeKeyFromTuple(t, {0, 2}), EncodeKey({Value::Int(5), Value::Double(1.5)}));
  EXPECT_EQ(EncodeKeyFromTuple(t, {1}), EncodeKey({Value::String("x")}));
}

TEST(KeyCodecTest, PrefixSuccessorBounds) {
  EXPECT_EQ(PrefixSuccessor("abc"), "abd");
  std::string with_ff = std::string("a") + std::string(1, static_cast<char>(0xFF));
  EXPECT_EQ(PrefixSuccessor(with_ff), "b");
  // All-0xFF has no successor -> empty (unbounded).
  EXPECT_EQ(PrefixSuccessor(std::string(3, static_cast<char>(0xFF))), "");
}

TEST(KeyCodecTest, RandomizedSortConsistency) {
  // Sorting random values by encoded key must equal sorting by Compare.
  Rng rng(99);
  std::vector<Value> values;
  for (int i = 0; i < 300; ++i) {
    switch (rng.UniformInt(0, 2)) {
      case 0:
        values.push_back(Value::Int(rng.UniformInt(-1000, 1000)));
        break;
      case 1:
        values.push_back(Value::Double(rng.UniformDouble() * 200 - 100));
        break;
      default:
        values.push_back(Value::Int(rng.UniformInt(-5, 5)));
    }
  }
  std::vector<Value> by_compare = values;
  std::sort(by_compare.begin(), by_compare.end(),
            [](const Value& a, const Value& b) { return *a.Compare(b) < 0; });
  std::vector<Value> by_key = values;
  std::sort(by_key.begin(), by_key.end(),
            [](const Value& a, const Value& b) { return Enc(a) < Enc(b); });
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(*by_compare[i].Compare(by_key[i]), 0) << "at " << i;
  }
}

}  // namespace
}  // namespace relopt
