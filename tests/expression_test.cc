// Expression binding, evaluation, and three-valued logic tests.
#include <gtest/gtest.h>

#include "expr/conjuncts.h"
#include "expr/expression.h"

namespace relopt {
namespace {

Schema TestSchema() {
  Schema s;
  s.AddColumn(Column("a", TypeId::kInt64, "t"));
  s.AddColumn(Column("b", TypeId::kString, "t"));
  s.AddColumn(Column("c", TypeId::kDouble, "t"));
  s.AddColumn(Column("d", TypeId::kInt64, "u"));
  return s;
}

Tuple TestRow() {
  return Tuple({Value::Int(5), Value::String("hi"), Value::Double(2.5), Value::Int(10)});
}

Value EvalBound(ExprPtr expr, const Tuple& row = TestRow()) {
  Status st = expr->Bind(TestSchema());
  EXPECT_TRUE(st.ok()) << st.ToString();
  Result<Value> v = expr->Eval(row);
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  return v.ok() ? v.MoveValue() : Value::Null();
}

TEST(ExpressionTest, LiteralEval) {
  EXPECT_EQ(EvalBound(MakeLiteral(Value::Int(3))).AsInt(), 3);
  EXPECT_TRUE(EvalBound(MakeLiteral(Value::Null())).is_null());
}

TEST(ExpressionTest, ColumnRefBindsAndEvals) {
  EXPECT_EQ(EvalBound(MakeColumnRef("t", "a")).AsInt(), 5);
  EXPECT_EQ(EvalBound(MakeColumnRef("", "d")).AsInt(), 10);
  EXPECT_EQ(EvalBound(MakeColumnRef("u", "d")).AsInt(), 10);
}

TEST(ExpressionTest, UnboundColumnEvalFails) {
  ExprPtr ref = MakeColumnRef("t", "a");
  EXPECT_FALSE(ref->Eval(TestRow()).ok());
}

TEST(ExpressionTest, BindUnknownColumnFails) {
  ExprPtr ref = MakeColumnRef("t", "zzz");
  EXPECT_EQ(ref->Bind(TestSchema()).code(), StatusCode::kBindError);
}

TEST(ExpressionTest, ComparisonOps) {
  auto cmp = [&](CompareOp op, Value l, Value r) {
    return EvalBound(MakeComparison(op, MakeLiteral(std::move(l)), MakeLiteral(std::move(r))));
  };
  EXPECT_TRUE(cmp(CompareOp::kEq, Value::Int(1), Value::Int(1)).AsBool());
  EXPECT_FALSE(cmp(CompareOp::kEq, Value::Int(1), Value::Int(2)).AsBool());
  EXPECT_TRUE(cmp(CompareOp::kNe, Value::Int(1), Value::Int(2)).AsBool());
  EXPECT_TRUE(cmp(CompareOp::kLt, Value::Int(1), Value::Double(1.5)).AsBool());
  EXPECT_TRUE(cmp(CompareOp::kLe, Value::Int(1), Value::Int(1)).AsBool());
  EXPECT_TRUE(cmp(CompareOp::kGt, Value::String("b"), Value::String("a")).AsBool());
  EXPECT_TRUE(cmp(CompareOp::kGe, Value::Int(2), Value::Int(2)).AsBool());
}

TEST(ExpressionTest, ComparisonWithNullIsNull) {
  Value v = EvalBound(
      MakeComparison(CompareOp::kEq, MakeLiteral(Value::Null()), MakeLiteral(Value::Int(1))));
  EXPECT_TRUE(v.is_null());
}

TEST(ExpressionTest, ComparisonTypeMismatchFailsBind) {
  ExprPtr e = MakeComparison(CompareOp::kEq, MakeColumnRef("t", "a"), MakeColumnRef("t", "b"));
  EXPECT_EQ(e->Bind(TestSchema()).code(), StatusCode::kTypeError);
}

TEST(ExpressionTest, ThreeValuedAnd) {
  auto and_of = [&](Value l, Value r) {
    return EvalBound(MakeAnd(MakeLiteral(std::move(l)), MakeLiteral(std::move(r))));
  };
  EXPECT_TRUE(and_of(Value::Bool(true), Value::Bool(true)).AsBool());
  EXPECT_FALSE(and_of(Value::Bool(true), Value::Bool(false)).AsBool());
  // NULL AND false = false; NULL AND true = NULL.
  EXPECT_FALSE(and_of(Value::Null(TypeId::kBool), Value::Bool(false)).AsBool());
  EXPECT_TRUE(and_of(Value::Null(TypeId::kBool), Value::Bool(true)).is_null());
}

TEST(ExpressionTest, ThreeValuedOr) {
  auto or_of = [&](Value l, Value r) {
    return EvalBound(MakeOr(MakeLiteral(std::move(l)), MakeLiteral(std::move(r))));
  };
  EXPECT_TRUE(or_of(Value::Null(TypeId::kBool), Value::Bool(true)).AsBool());
  EXPECT_TRUE(or_of(Value::Null(TypeId::kBool), Value::Bool(false)).is_null());
  EXPECT_FALSE(or_of(Value::Bool(false), Value::Bool(false)).AsBool());
}

TEST(ExpressionTest, NotWithNull) {
  EXPECT_TRUE(EvalBound(MakeNot(MakeLiteral(Value::Null(TypeId::kBool)))).is_null());
  EXPECT_FALSE(EvalBound(MakeNot(MakeLiteral(Value::Bool(true)))).AsBool());
}

TEST(ExpressionTest, Arithmetic) {
  auto arith = [&](ArithOp op, Value l, Value r) {
    return EvalBound(std::make_unique<ArithmeticExpr>(op, MakeLiteral(std::move(l)),
                                                      MakeLiteral(std::move(r))));
  };
  EXPECT_EQ(arith(ArithOp::kAdd, Value::Int(2), Value::Int(3)).AsInt(), 5);
  EXPECT_EQ(arith(ArithOp::kSub, Value::Int(2), Value::Int(3)).AsInt(), -1);
  EXPECT_EQ(arith(ArithOp::kMul, Value::Int(4), Value::Int(3)).AsInt(), 12);
  EXPECT_EQ(arith(ArithOp::kDiv, Value::Int(7), Value::Int(2)).AsInt(), 3);
  EXPECT_EQ(arith(ArithOp::kMod, Value::Int(7), Value::Int(2)).AsInt(), 1);
  EXPECT_DOUBLE_EQ(arith(ArithOp::kAdd, Value::Int(1), Value::Double(0.5)).AsDouble(), 1.5);
  EXPECT_DOUBLE_EQ(arith(ArithOp::kDiv, Value::Int(7), Value::Double(2.0)).AsDouble(), 3.5);
}

TEST(ExpressionTest, DivisionByZeroYieldsNull) {
  auto arith = [&](Value l, Value r) {
    return EvalBound(std::make_unique<ArithmeticExpr>(ArithOp::kDiv, MakeLiteral(std::move(l)),
                                                      MakeLiteral(std::move(r))));
  };
  EXPECT_TRUE(arith(Value::Int(1), Value::Int(0)).is_null());
  EXPECT_TRUE(arith(Value::Double(1), Value::Double(0)).is_null());
}

TEST(ExpressionTest, ArithmeticTypePropagation) {
  ExprPtr int_expr = std::make_unique<ArithmeticExpr>(ArithOp::kAdd, MakeColumnRef("t", "a"),
                                                      MakeLiteral(Value::Int(1)));
  ASSERT_TRUE(int_expr->Bind(TestSchema()).ok());
  EXPECT_EQ(int_expr->result_type(), TypeId::kInt64);

  ExprPtr dbl_expr = std::make_unique<ArithmeticExpr>(ArithOp::kAdd, MakeColumnRef("t", "a"),
                                                      MakeColumnRef("t", "c"));
  ASSERT_TRUE(dbl_expr->Bind(TestSchema()).ok());
  EXPECT_EQ(dbl_expr->result_type(), TypeId::kDouble);
}

TEST(ExpressionTest, IsNull) {
  EXPECT_TRUE(EvalBound(std::make_unique<IsNullExpr>(MakeLiteral(Value::Null()), false)).AsBool());
  EXPECT_FALSE(EvalBound(std::make_unique<IsNullExpr>(MakeLiteral(Value::Int(1)), false)).AsBool());
  EXPECT_TRUE(EvalBound(std::make_unique<IsNullExpr>(MakeLiteral(Value::Int(1)), true)).AsBool());
}

TEST(ExpressionTest, CloneIsDeepAndKeepsBinding) {
  ExprPtr e = MakeComparison(CompareOp::kGt, MakeColumnRef("t", "a"), MakeLiteral(Value::Int(3)));
  ASSERT_TRUE(e->Bind(TestSchema()).ok());
  ExprPtr clone = e->Clone();
  Result<Value> v = clone->Eval(TestRow());
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->AsBool());
  EXPECT_EQ(clone->ToString(), e->ToString());
}

TEST(ExpressionTest, ReferencedTables) {
  ExprPtr e = MakeAnd(
      MakeComparison(CompareOp::kEq, MakeColumnRef("t", "a"), MakeColumnRef("u", "d")),
      MakeComparison(CompareOp::kGt, MakeColumnRef("t", "c"), MakeLiteral(Value::Double(1))));
  std::set<std::string> tables = e->ReferencedTables();
  EXPECT_EQ(tables, (std::set<std::string>{"t", "u"}));
}

TEST(ExpressionTest, ContainsAggregate) {
  ExprPtr agg = std::make_unique<AggregateCallExpr>(AggFunc::kSum, MakeColumnRef("t", "a"));
  ExprPtr wrapped = MakeComparison(CompareOp::kGt, std::move(agg), MakeLiteral(Value::Int(0)));
  EXPECT_TRUE(wrapped->ContainsAggregate());
  EXPECT_FALSE(MakeColumnRef("t", "a")->ContainsAggregate());
}

TEST(ExpressionTest, AggregateDirectEvalIsError) {
  AggregateCallExpr agg(AggFunc::kCountStar, nullptr);
  EXPECT_FALSE(agg.Eval(Tuple()).ok());
}

TEST(ExpressionTest, OpHelpers) {
  EXPECT_EQ(SwapCompareOp(CompareOp::kLt), CompareOp::kGt);
  EXPECT_EQ(SwapCompareOp(CompareOp::kGe), CompareOp::kLe);
  EXPECT_EQ(SwapCompareOp(CompareOp::kEq), CompareOp::kEq);
  EXPECT_EQ(NegateCompareOp(CompareOp::kLt), CompareOp::kGe);
  EXPECT_EQ(NegateCompareOp(CompareOp::kEq), CompareOp::kNe);
}

// ---------------------------------------------------------------- conjuncts --

TEST(ConjunctsTest, SplitNestedAnds) {
  ExprPtr e = MakeAnd(MakeAnd(MakeColumnRef("t", "x"), MakeColumnRef("t", "y")),
                      MakeColumnRef("t", "z"));
  std::vector<ExprPtr> parts = SplitConjuncts(std::move(e));
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0]->ToString(), "t.x");
  EXPECT_EQ(parts[2]->ToString(), "t.z");
}

TEST(ConjunctsTest, SplitLeavesOrsAlone) {
  ExprPtr e = MakeOr(MakeColumnRef("t", "x"), MakeColumnRef("t", "y"));
  std::vector<ExprPtr> parts = SplitConjuncts(std::move(e));
  EXPECT_EQ(parts.size(), 1u);
}

TEST(ConjunctsTest, CombineRoundTrip) {
  std::vector<ExprPtr> parts;
  parts.push_back(MakeColumnRef("t", "x"));
  parts.push_back(MakeColumnRef("t", "y"));
  ExprPtr combined = CombineConjuncts(std::move(parts));
  EXPECT_EQ(combined->ToString(), "(t.x AND t.y)");
  EXPECT_EQ(CombineConjuncts({}), nullptr);
}

TEST(ConjunctsTest, MatchSargable) {
  ExprPtr e = MakeComparison(CompareOp::kLt, MakeColumnRef("t", "a"), MakeLiteral(Value::Int(9)));
  auto m = MatchSargable(*e);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->table, "t");
  EXPECT_EQ(m->column, "a");
  EXPECT_EQ(m->op, CompareOp::kLt);
  EXPECT_TRUE(m->constant.Equals(Value::Int(9)));
}

TEST(ConjunctsTest, MatchSargableSwapsLiteralFirst) {
  ExprPtr e = MakeComparison(CompareOp::kLt, MakeLiteral(Value::Int(9)), MakeColumnRef("t", "a"));
  auto m = MatchSargable(*e);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->op, CompareOp::kGt);  // 9 < a  <=>  a > 9
}

TEST(ConjunctsTest, MatchSargableRejectsNonPatterns) {
  EXPECT_FALSE(MatchSargable(*MakeColumnRef("t", "a")).has_value());
  EXPECT_FALSE(MatchSargable(*MakeComparison(CompareOp::kEq, MakeColumnRef("t", "a"),
                                             MakeColumnRef("u", "d")))
                   .has_value());
  // col = NULL never matches anything; not sargable.
  EXPECT_FALSE(MatchSargable(*MakeComparison(CompareOp::kEq, MakeColumnRef("t", "a"),
                                             MakeLiteral(Value::Null())))
                   .has_value());
}

TEST(ConjunctsTest, MatchEquiJoin) {
  ExprPtr e = MakeComparison(CompareOp::kEq, MakeColumnRef("t", "a"), MakeColumnRef("u", "d"));
  auto m = MatchEquiJoin(*e);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->left_table, "t");
  EXPECT_EQ(m->right_column, "d");
}

TEST(ConjunctsTest, MatchEquiJoinRejectsSameTableAndNonEq) {
  EXPECT_FALSE(MatchEquiJoin(*MakeComparison(CompareOp::kEq, MakeColumnRef("t", "a"),
                                             MakeColumnRef("t", "c")))
                   .has_value());
  EXPECT_FALSE(MatchEquiJoin(*MakeComparison(CompareOp::kLt, MakeColumnRef("t", "a"),
                                             MakeColumnRef("u", "d")))
                   .has_value());
}

}  // namespace
}  // namespace relopt
