// Query-graph extraction: relations, conjunct classification, edges.
#include <gtest/gtest.h>

#include "expr/binder.h"
#include "optimizer/join_graph.h"
#include "parser/parser.h"

namespace relopt {
namespace {

class JoinGraphTest : public ::testing::Test {
 protected:
  JoinGraphTest() : pool_(&disk_, 64), catalog_(&pool_) {
    for (const char* name : {"a", "b", "c"}) {
      Schema s;
      s.AddColumn(Column("id", TypeId::kInt64, name));
      s.AddColumn(Column("x", TypeId::kInt64, name));
      EXPECT_TRUE(catalog_.CreateTable(name, std::move(s)).ok());
    }
  }

  /// Binds a SELECT and extracts the query graph from its join block
  /// (stripping Project and anything above the first Filter/Join/Scan).
  QueryGraph Graph(const std::string& sql) {
    Result<StatementPtr> stmt = ParseStatement(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    Binder binder(&catalog_);
    Result<LogicalPtr> plan = binder.BindSelect(static_cast<SelectStmt*>(stmt->get()));
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    LogicalPtr node = plan.MoveValue();
    while (node->kind() != LogicalNodeKind::kFilter && node->kind() != LogicalNodeKind::kJoin &&
           node->kind() != LogicalNodeKind::kScan) {
      node = node->TakeChild(0);
    }
    Result<QueryGraph> graph = BuildQueryGraph(std::move(node), &catalog_);
    EXPECT_TRUE(graph.ok()) << graph.status().ToString();
    return graph.ok() ? graph.MoveValue() : QueryGraph{};
  }

  DiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
};

TEST_F(JoinGraphTest, SingleTableWithConjuncts) {
  QueryGraph g = Graph("SELECT a.id FROM a WHERE a.x > 5 AND a.id = 3");
  ASSERT_EQ(g.relations.size(), 1u);
  EXPECT_EQ(g.relations[0].alias, "a");
  EXPECT_EQ(g.relations[0].conjuncts.size(), 2u);
  EXPECT_TRUE(g.edges.empty());
  EXPECT_TRUE(g.other_conjuncts.empty());
}

TEST_F(JoinGraphTest, EquiJoinBecomesEdge) {
  QueryGraph g = Graph("SELECT a.id FROM a, b WHERE a.id = b.id");
  ASSERT_EQ(g.relations.size(), 2u);
  ASSERT_EQ(g.edges.size(), 1u);
  EXPECT_EQ(g.edges[0].left_column, "id");
  EXPECT_EQ(g.edges[0].right_column, "id");
  EXPECT_NE(g.edges[0].left_rel, g.edges[0].right_rel);
}

TEST_F(JoinGraphTest, MixedConjunctsClassified) {
  QueryGraph g = Graph(
      "SELECT a.id FROM a, b, c "
      "WHERE a.id = b.id AND b.x = c.x AND a.x > 10 AND a.id + b.id < 100");
  EXPECT_EQ(g.relations.size(), 3u);
  EXPECT_EQ(g.edges.size(), 2u);
  // a.x > 10 attaches to a.
  int a_idx = g.RelIndex("a");
  EXPECT_EQ(g.relations[a_idx].conjuncts.size(), 1u);
  // a.id + b.id < 100 is a two-table non-equi conjunct.
  EXPECT_EQ(g.other_conjuncts.size(), 1u);
}

TEST_F(JoinGraphTest, NonEquiJoinGoesToOthers) {
  QueryGraph g = Graph("SELECT a.id FROM a, b WHERE a.id < b.id");
  EXPECT_TRUE(g.edges.empty());
  EXPECT_EQ(g.other_conjuncts.size(), 1u);
}

TEST_F(JoinGraphTest, JoinSyntaxEqualsWhereSyntax) {
  QueryGraph g1 = Graph("SELECT a.id FROM a JOIN b ON a.id = b.id WHERE a.x > 1");
  QueryGraph g2 = Graph("SELECT a.id FROM a, b WHERE a.id = b.id AND a.x > 1");
  EXPECT_EQ(g1.relations.size(), g2.relations.size());
  EXPECT_EQ(g1.edges.size(), g2.edges.size());
  int a1 = g1.RelIndex("a");
  int a2 = g2.RelIndex("a");
  EXPECT_EQ(g1.relations[a1].conjuncts.size(), g2.relations[a2].conjuncts.size());
}

TEST_F(JoinGraphTest, SelfJoinWithAliases) {
  QueryGraph g = Graph("SELECT a1.id FROM a a1, a a2 WHERE a1.id = a2.x");
  ASSERT_EQ(g.relations.size(), 2u);
  EXPECT_NE(g.RelIndex("a1"), -1);
  EXPECT_NE(g.RelIndex("a2"), -1);
  EXPECT_EQ(g.edges.size(), 1u);
}

TEST_F(JoinGraphTest, RelationsOfResolvesQualifiers) {
  QueryGraph g = Graph("SELECT a.id FROM a, b WHERE a.id = b.id");
  ExprPtr e = MakeComparison(CompareOp::kEq, MakeColumnRef("a", "x"), MakeColumnRef("b", "x"));
  Result<JoinSet> rels = g.RelationsOf(*e);
  ASSERT_TRUE(rels.ok());
  EXPECT_EQ(rels->Count(), 2);

  ExprPtr bad = MakeColumnRef("zzz", "x");
  EXPECT_FALSE(g.RelationsOf(*bad).ok());
}

TEST_F(JoinGraphTest, ConnectivityQueries) {
  QueryGraph g = Graph("SELECT a.id FROM a, b, c WHERE a.id = b.id AND b.x = c.x");
  int a = g.RelIndex("a"), b = g.RelIndex("b"), c = g.RelIndex("c");
  EXPECT_TRUE(g.Connected(JoinSet::Single(a), JoinSet::Single(b)));
  EXPECT_FALSE(g.Connected(JoinSet::Single(a), JoinSet::Single(c)));
  EXPECT_TRUE(g.Connected(JoinSet::Single(a).With(b), JoinSet::Single(c)));
  EXPECT_TRUE(g.FullyConnected());
}

TEST_F(JoinGraphTest, DisconnectedGraphDetected) {
  QueryGraph g = Graph("SELECT a.id FROM a, b, c WHERE a.id = b.id");
  EXPECT_FALSE(g.FullyConnected());
}

TEST_F(JoinGraphTest, CrossJoinHasNoEdges) {
  QueryGraph g = Graph("SELECT a.id FROM a, b");
  EXPECT_TRUE(g.edges.empty());
  EXPECT_FALSE(g.FullyConnected());
}

TEST_F(JoinGraphTest, ConstantTrueConjunctDropped) {
  QueryGraph g = Graph("SELECT a.id FROM a WHERE 1 = 1");
  EXPECT_TRUE(g.relations[0].conjuncts.empty());
}

TEST_F(JoinGraphTest, MultipleEdgesBetweenSamePair) {
  QueryGraph g = Graph("SELECT a.id FROM a, b WHERE a.id = b.id AND a.x = b.x");
  EXPECT_EQ(g.edges.size(), 2u);
}

}  // namespace
}  // namespace relopt
