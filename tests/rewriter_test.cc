// NormalizeLogicalPlan: constant folding and trivial-filter elimination.
#include <gtest/gtest.h>

#include "expr/binder.h"
#include "optimizer/rewriter.h"
#include "parser/parser.h"

namespace relopt {
namespace {

class RewriterTest : public ::testing::Test {
 protected:
  RewriterTest() : pool_(&disk_, 64), catalog_(&pool_) {
    Schema s;
    s.AddColumn(Column("a", TypeId::kInt64, "t"));
    s.AddColumn(Column("b", TypeId::kInt64, "t"));
    EXPECT_TRUE(catalog_.CreateTable("t", std::move(s)).ok());
  }

  LogicalPtr Normalized(const std::string& sql) {
    Result<StatementPtr> stmt = ParseStatement(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    Binder binder(&catalog_);
    Result<LogicalPtr> plan = binder.BindSelect(static_cast<SelectStmt*>(stmt->get()));
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    Result<LogicalPtr> norm = NormalizeLogicalPlan(plan.MoveValue());
    EXPECT_TRUE(norm.ok()) << norm.status().ToString();
    return norm.ok() ? norm.MoveValue() : nullptr;
  }

  /// The node under the top-level Project.
  const LogicalNode* UnderProject(const LogicalPtr& plan) {
    EXPECT_EQ(plan->kind(), LogicalNodeKind::kProject);
    return plan->child(0);
  }

  DiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
};

TEST_F(RewriterTest, ConstantTrueFilterRemoved) {
  LogicalPtr plan = Normalized("SELECT a FROM t WHERE 1 = 1");
  EXPECT_EQ(UnderProject(plan)->kind(), LogicalNodeKind::kScan);
}

TEST_F(RewriterTest, TautologyViaAndSimplification) {
  LogicalPtr plan = Normalized("SELECT a FROM t WHERE a > 0 AND true");
  const LogicalNode* filter = UnderProject(plan);
  ASSERT_EQ(filter->kind(), LogicalNodeKind::kFilter);
  // The neutral `true` was folded away.
  EXPECT_EQ(static_cast<const LogicalFilter*>(filter)->predicate()->ToString(), "(t.a > 0)");
}

TEST_F(RewriterTest, ConstantFalseFilterBecomesEmptyValues) {
  LogicalPtr plan = Normalized("SELECT a FROM t WHERE 1 = 2");
  const LogicalNode* node = UnderProject(plan);
  ASSERT_EQ(node->kind(), LogicalNodeKind::kValues);
  EXPECT_TRUE(static_cast<const LogicalValues*>(node)->rows().empty());
  // Schema is preserved so the projection above still binds.
  EXPECT_EQ(node->schema().NumColumns(), 2u);
}

TEST_F(RewriterTest, NullPredicateBehavesLikeFalse) {
  LogicalPtr plan = Normalized("SELECT a FROM t WHERE NULL = 1");
  EXPECT_EQ(UnderProject(plan)->kind(), LogicalNodeKind::kValues);
}

TEST_F(RewriterTest, ArithmeticFoldedInsidePredicate) {
  LogicalPtr plan = Normalized("SELECT a FROM t WHERE a < 2 + 3");
  const LogicalNode* filter = UnderProject(plan);
  ASSERT_EQ(filter->kind(), LogicalNodeKind::kFilter);
  EXPECT_EQ(static_cast<const LogicalFilter*>(filter)->predicate()->ToString(), "(t.a < 5)");
}

TEST_F(RewriterTest, NonConstantFilterUntouched) {
  LogicalPtr plan = Normalized("SELECT a FROM t WHERE a > b");
  EXPECT_EQ(UnderProject(plan)->kind(), LogicalNodeKind::kFilter);
}

TEST_F(RewriterTest, RecursesBelowAggregates) {
  LogicalPtr plan = Normalized("SELECT count(*) FROM t WHERE false");
  // Project -> Aggregate -> (empty) Values.
  const LogicalNode* agg = UnderProject(plan);
  ASSERT_EQ(agg->kind(), LogicalNodeKind::kAggregate);
  EXPECT_EQ(agg->child(0)->kind(), LogicalNodeKind::kValues);
}

TEST_F(RewriterTest, OrShortCircuitToTrueRemovesFilter) {
  LogicalPtr plan = Normalized("SELECT a FROM t WHERE a = 1 OR 1 = 1");
  EXPECT_EQ(UnderProject(plan)->kind(), LogicalNodeKind::kScan);
}

}  // namespace
}  // namespace relopt
