// Database facade tests: DDL/DML/query lifecycle, metrics, errors.
#include <gtest/gtest.h>

#include "test_util.h"

namespace relopt {
namespace {

using tu::Sql;

TEST(DatabaseTest, CreateInsertSelect) {
  Database db;
  Sql(&db, "CREATE TABLE t (a INT, b TEXT)");
  Sql(&db, "INSERT INTO t VALUES (1, 'x'), (2, 'y')");
  QueryResult r = Sql(&db, "SELECT a, b FROM t ORDER BY a");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].At(0).AsInt(), 1);
  EXPECT_EQ(r.rows[1].At(1).AsString(), "y");
}

TEST(DatabaseTest, InsertWithColumnListAndDefaultsNulls) {
  Database db;
  Sql(&db, "CREATE TABLE t (a INT, b TEXT, c DOUBLE)");
  Sql(&db, "INSERT INTO t (c, a) VALUES (2.5, 7)");
  QueryResult r = Sql(&db, "SELECT a, b, c FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].At(0).AsInt(), 7);
  EXPECT_TRUE(r.rows[0].At(1).is_null());
  EXPECT_DOUBLE_EQ(r.rows[0].At(2).AsDouble(), 2.5);
}

TEST(DatabaseTest, InsertCastsLiteralsToColumnTypes) {
  Database db;
  Sql(&db, "CREATE TABLE t (d DOUBLE)");
  Sql(&db, "INSERT INTO t VALUES (3)");  // int literal into double column
  QueryResult r = Sql(&db, "SELECT d FROM t");
  EXPECT_DOUBLE_EQ(r.rows[0].At(0).AsDouble(), 3.0);
}

TEST(DatabaseTest, InsertArityMismatchFails) {
  Database db;
  Sql(&db, "CREATE TABLE t (a INT, b INT)");
  EXPECT_FALSE(db.Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_FALSE(db.Execute("INSERT INTO t (a) VALUES (1, 2)").ok());
}

TEST(DatabaseTest, DeleteWithPredicate) {
  Database db;
  Sql(&db, "CREATE TABLE t (a INT)");
  Sql(&db, "INSERT INTO t VALUES (1), (2), (3), (4)");
  Sql(&db, "DELETE FROM t WHERE a % 2 = 0");
  QueryResult r = Sql(&db, "SELECT a FROM t ORDER BY a");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].At(0).AsInt(), 1);
  EXPECT_EQ(r.rows[1].At(0).AsInt(), 3);
}

TEST(DatabaseTest, DeleteAll) {
  Database db;
  Sql(&db, "CREATE TABLE t (a INT)");
  Sql(&db, "INSERT INTO t VALUES (1), (2)");
  Sql(&db, "DELETE FROM t");
  EXPECT_TRUE(Sql(&db, "SELECT * FROM t").rows.empty());
}

TEST(DatabaseTest, DeleteMaintainsIndexes) {
  Database db;
  Sql(&db, "CREATE TABLE t (a INT)");
  Sql(&db, "INSERT INTO t VALUES (1), (2), (3)");
  Sql(&db, "CREATE INDEX idx_a ON t (a)");
  Sql(&db, "DELETE FROM t WHERE a = 2");
  // Query through the index (point predicate will use it).
  Sql(&db, "ANALYZE");
  QueryResult r = Sql(&db, "SELECT a FROM t WHERE a = 2");
  EXPECT_TRUE(r.rows.empty());
  QueryResult r1 = Sql(&db, "SELECT a FROM t WHERE a = 3");
  EXPECT_EQ(r1.rows.size(), 1u);
}

TEST(DatabaseTest, ScriptExecutionReturnsLastSelect) {
  Database db;
  QueryResult r = Sql(&db,
                      "CREATE TABLE t (a INT); "
                      "INSERT INTO t VALUES (5); "
                      "SELECT a FROM t; ");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].At(0).AsInt(), 5);
}

TEST(DatabaseTest, MetricsCaptureIoAndRows) {
  Database db;
  tu::LoadEmpDept(&db, 500, 10);
  db.ResetCounters();
  Sql(&db, "SELECT count(*) FROM emp");
  const ExecutionMetrics& m = db.last_metrics();
  EXPECT_EQ(m.actual_rows, 1u);
  EXPECT_GT(m.tuples_processed, 500u);  // scan + aggregate
  EXPECT_GT(m.pool.hits + m.pool.misses, 0u);
}

TEST(DatabaseTest, ErrorsAreStatusNotCrashes) {
  Database db;
  EXPECT_EQ(db.Execute("SELECT * FROM missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db.Execute("SELEC 1").status().code(), StatusCode::kParseError);
  Sql(&db, "CREATE TABLE t (a INT)");
  EXPECT_EQ(db.Execute("CREATE TABLE t (a INT)").status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(db.Execute("SELECT b FROM t").status().code(), StatusCode::kBindError);
  EXPECT_FALSE(db.Execute("INSERT INTO t VALUES ('not an int')").ok());
}

TEST(DatabaseTest, ExplainStatement) {
  Database db;
  Sql(&db, "CREATE TABLE t (a INT)");
  Sql(&db, "INSERT INTO t VALUES (1)");
  QueryResult r = Sql(&db, "EXPLAIN SELECT a FROM t WHERE a = 1");
  ASSERT_FALSE(r.rows.empty());
  bool found_scan = false;
  for (const Tuple& row : r.rows) {
    if (row.At(0).AsString().find("SeqScan") != std::string::npos) found_scan = true;
  }
  EXPECT_TRUE(found_scan);
}

TEST(DatabaseTest, ExplainAnalyzeIncludesActuals) {
  Database db;
  Sql(&db, "CREATE TABLE t (a INT)");
  Sql(&db, "INSERT INTO t VALUES (1), (2)");
  QueryResult r = Sql(&db, "EXPLAIN ANALYZE SELECT a FROM t");
  bool found_actual = false;
  for (const Tuple& row : r.rows) {
    if (row.At(0).AsString().find("actual:") != std::string::npos) found_actual = true;
  }
  EXPECT_TRUE(found_actual);
}

TEST(DatabaseTest, AnalyzeAllTables) {
  Database db;
  Sql(&db, "CREATE TABLE t (a INT)");
  Sql(&db, "CREATE TABLE u (b INT)");
  Sql(&db, "INSERT INTO t VALUES (1)");
  Sql(&db, "INSERT INTO u VALUES (2)");
  Sql(&db, "ANALYZE");
  EXPECT_TRUE((*db.catalog()->GetTable("t"))->has_stats());
  EXPECT_TRUE((*db.catalog()->GetTable("u"))->has_stats());
}

TEST(DatabaseTest, FromlessSelect) {
  Database db;
  QueryResult r = Sql(&db, "SELECT 2 + 3, 'hi'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].At(0).AsInt(), 5);
  EXPECT_EQ(r.rows[0].At(1).AsString(), "hi");
}

TEST(DatabaseTest, ResultToStringRendersTable) {
  Database db;
  Sql(&db, "CREATE TABLE t (a INT, b TEXT)");
  Sql(&db, "INSERT INTO t VALUES (1, 'x')");
  std::string text = Sql(&db, "SELECT a, b FROM t").ToString();
  EXPECT_NE(text.find("t.a"), std::string::npos);
  EXPECT_NE(text.find("'x'"), std::string::npos);
  EXPECT_NE(text.find("(1 rows)"), std::string::npos);
}

TEST(DatabaseTest, SmallBufferPoolStillWorks) {
  SessionOptions options;
  options.buffer_pool_pages = 12;
  Database db(options);
  tu::LoadEmpDept(&db, 3000, 8);
  QueryResult r = Sql(&db, "SELECT count(*) FROM emp, dept WHERE emp.dept_id = dept.id");
  EXPECT_EQ(r.rows[0].At(0).AsInt(), 3000);
  // With 800 rows over many pages and a 12-page pool, evictions must happen.
  EXPECT_GT(db.pool()->stats().evictions, 0u);
}

TEST(DatabaseTest, UpdateWithPredicate) {
  Database db;
  Sql(&db, "CREATE TABLE t (a INT, b INT)");
  Sql(&db, "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
  Sql(&db, "UPDATE t SET b = b + 100 WHERE a >= 2");
  QueryResult r = Sql(&db, "SELECT a, b FROM t ORDER BY a");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0].At(1).AsInt(), 10);
  EXPECT_EQ(r.rows[1].At(1).AsInt(), 120);
  EXPECT_EQ(r.rows[2].At(1).AsInt(), 130);
}

TEST(DatabaseTest, UpdateAllRowsMultipleColumns) {
  Database db;
  Sql(&db, "CREATE TABLE t (a INT, b TEXT)");
  Sql(&db, "INSERT INTO t VALUES (1, 'x'), (2, 'y')");
  Sql(&db, "UPDATE t SET a = a * 2, b = 'z'");
  QueryResult r = Sql(&db, "SELECT a, b FROM t ORDER BY a");
  EXPECT_EQ(r.rows[0].At(0).AsInt(), 2);
  EXPECT_EQ(r.rows[1].At(0).AsInt(), 4);
  EXPECT_EQ(r.rows[0].At(1).AsString(), "z");
}

TEST(DatabaseTest, UpdateReadsOldValues) {
  // Swap-style update: both assignments see the row's pre-update image.
  Database db;
  Sql(&db, "CREATE TABLE t (a INT, b INT)");
  Sql(&db, "INSERT INTO t VALUES (1, 2)");
  Sql(&db, "UPDATE t SET a = b, b = a");
  QueryResult r = Sql(&db, "SELECT a, b FROM t");
  EXPECT_EQ(r.rows[0].At(0).AsInt(), 2);
  EXPECT_EQ(r.rows[0].At(1).AsInt(), 1);
}

TEST(DatabaseTest, UpdateMaintainsIndexes) {
  Database db;
  Sql(&db, "CREATE TABLE t (a INT)");
  Sql(&db, "INSERT INTO t VALUES (1), (2), (3)");
  Sql(&db, "CREATE INDEX idx_upd ON t (a)");
  Sql(&db, "ANALYZE");
  Sql(&db, "UPDATE t SET a = 99 WHERE a = 2");
  // Point queries go through the index; both old and new keys must be right.
  EXPECT_TRUE(Sql(&db, "SELECT a FROM t WHERE a = 2").rows.empty());
  EXPECT_EQ(Sql(&db, "SELECT a FROM t WHERE a = 99").rows.size(), 1u);
  IndexInfo* idx = *db.catalog()->GetIndex("idx_upd");
  EXPECT_EQ(*idx->tree->NumEntries(), 3u);
}

TEST(DatabaseTest, UpdateErrors) {
  Database db;
  Sql(&db, "CREATE TABLE t (a INT)");
  Sql(&db, "INSERT INTO t VALUES (1)");
  EXPECT_FALSE(db.Execute("UPDATE missing SET a = 1").ok());
  EXPECT_FALSE(db.Execute("UPDATE t SET nope = 1").ok());
  EXPECT_FALSE(db.Execute("UPDATE t SET a = 'not an int' WHERE a = 1").ok());
  // The failed update must not have clobbered the row.
  EXPECT_EQ(Sql(&db, "SELECT a FROM t").rows[0].At(0).AsInt(), 1);
}

TEST(DatabaseTest, UpdateCastsToColumnType) {
  Database db;
  Sql(&db, "CREATE TABLE t (d DOUBLE)");
  Sql(&db, "INSERT INTO t VALUES (1.5)");
  Sql(&db, "UPDATE t SET d = 3");
  QueryResult r = Sql(&db, "SELECT d FROM t");
  EXPECT_DOUBLE_EQ(r.rows[0].At(0).AsDouble(), 3.0);
}

TEST(DatabaseTest, SelfJoinWithAliases) {
  Database db;
  Sql(&db, "CREATE TABLE t (id INT, boss INT)");
  Sql(&db, "INSERT INTO t VALUES (1, 3), (2, 3), (3, 0)");
  QueryResult r = Sql(&db,
                      "SELECT e.id, m.id FROM t e, t m WHERE e.boss = m.id ORDER BY e.id");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].At(1).AsInt(), 3);
}

}  // namespace
}  // namespace relopt
