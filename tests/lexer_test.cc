#include <gtest/gtest.h>

#include "parser/lexer.h"

namespace relopt {
namespace {

std::vector<Token> Lex(const std::string& sql) {
  Result<std::vector<Token>> r = Tokenize(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.MoveValue() : std::vector<Token>{};
}

TEST(LexerTest, Identifiers) {
  auto tokens = Lex("select Foo _bar x1");
  ASSERT_EQ(tokens.size(), 5u);  // 4 + end
  EXPECT_TRUE(tokens[0].IsWord("SELECT"));
  EXPECT_EQ(tokens[1].text, "Foo");  // case preserved
  EXPECT_EQ(tokens[2].text, "_bar");
  EXPECT_EQ(tokens[3].text, "x1");
  EXPECT_TRUE(tokens[4].Is(TokenKind::kEnd));
}

TEST(LexerTest, IntegerLiterals) {
  auto tokens = Lex("0 42 9999999999");
  EXPECT_EQ(tokens[0].int_value, 0);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, 9999999999LL);
}

TEST(LexerTest, DoubleLiterals) {
  auto tokens = Lex("3.5 .25 1e3 2.5E-2");
  EXPECT_TRUE(tokens[0].Is(TokenKind::kDoubleLiteral));
  EXPECT_DOUBLE_EQ(tokens[0].double_value, 3.5);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 0.25);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 0.025);
}

TEST(LexerTest, StringLiterals) {
  auto tokens = Lex("'hello' 'it''s' ''");
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
  EXPECT_EQ(tokens[2].text, "");
}

TEST(LexerTest, UnterminatedStringIsError) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, Operators) {
  auto tokens = Lex("= <> != < <= > >= ( ) , ; . * + - / %");
  EXPECT_TRUE(tokens[0].IsSymbol("="));
  EXPECT_TRUE(tokens[1].IsSymbol("<>"));
  EXPECT_TRUE(tokens[2].IsSymbol("<>"));  // != normalizes
  EXPECT_TRUE(tokens[3].IsSymbol("<"));
  EXPECT_TRUE(tokens[4].IsSymbol("<="));
  EXPECT_TRUE(tokens[5].IsSymbol(">"));
  EXPECT_TRUE(tokens[6].IsSymbol(">="));
  EXPECT_TRUE(tokens[16].IsSymbol("%"));
}

TEST(LexerTest, LineComments) {
  auto tokens = Lex("select -- this is a comment\n 1");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_TRUE(tokens[0].IsWord("select"));
  EXPECT_EQ(tokens[1].int_value, 1);
}

TEST(LexerTest, MinusVsComment) {
  auto tokens = Lex("1 - 2");
  EXPECT_TRUE(tokens[1].IsSymbol("-"));
  EXPECT_EQ(tokens[2].int_value, 2);
}

TEST(LexerTest, UnexpectedCharacterIsError) {
  Result<std::vector<Token>> r = Tokenize("select @");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, PositionsTracked) {
  auto tokens = Lex("ab cd");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 3u);
}

TEST(LexerTest, MalformedExponentIsError) {
  EXPECT_FALSE(Tokenize("1e").ok());
  EXPECT_FALSE(Tokenize("1e+").ok());
}

}  // namespace
}  // namespace relopt
