// SQL-surfaced introspection: the relopt_metrics() / relopt_query_log() /
// relopt_operator_stats() table functions through ordinary SQL, and the
// acceptance matrix — the global MetricsRegistry page-I/O counters must match
// the per-statement counters and the summed EXPLAIN ANALYZE attribution
// exactly, across the differential corpus at row/batch x parallelism 1/2/4/8.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "differential_queries.h"
#include "engine/table_functions.h"
#include "test_util.h"
#include "util/metrics.h"

namespace relopt {
namespace {

using tu::IntCell;
using tu::Sql;

TEST(IntrospectionTest, MetricsTableFunctionThroughSql) {
  // A tiny pool under a multi-page table forces real page reads.
  SessionOptions opts;
  opts.buffer_pool_pages = 8;
  Database db(opts);
  tu::LoadEmpDept(&db, 3000, 10);
  Sql(&db, "SELECT * FROM emp WHERE salary > 2000");

  // Filter on an alias-qualified column; exactly one row per metric name.
  QueryResult r = Sql(&db,
                      "SELECT m.name, m.kind, m.value FROM relopt_metrics() AS m "
                      "WHERE m.name = 'relopt.disk.page_reads'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].At(0).AsString(), "relopt.disk.page_reads");
  EXPECT_EQ(r.rows[0].At(1).AsString(), "counter");
  EXPECT_GT(r.rows[0].At(2).AsDouble(), 0.0);

  // Aggregates and ORDER BY compose like any other relation.
  EXPECT_GT(IntCell(Sql(&db, "SELECT count(*) FROM relopt_metrics()")), 10);
  QueryResult ordered =
      Sql(&db, "SELECT name FROM relopt_metrics() ORDER BY name LIMIT 3");
  ASSERT_EQ(ordered.rows.size(), 3u);
  EXPECT_LE(ordered.rows[0].At(0).AsString(), ordered.rows[1].At(0).AsString());

  // Function names are case-insensitive like table names.
  EXPECT_GT(IntCell(Sql(&db, "SELECT count(*) FROM RELOPT_METRICS()")), 0);
}

TEST(IntrospectionTest, QueryLogTableFunctionThroughSql) {
  Database db;
  tu::LoadEmpDept(&db, 100, 5);
  Sql(&db, "SELECT count(*) FROM emp WHERE salary > 3000");

  QueryResult r = Sql(&db,
                      "SELECT q.verb, q.sql, q.rows FROM relopt_query_log() AS q "
                      "WHERE q.verb = 'select'");
  ASSERT_FALSE(r.rows.empty());
  bool found = false;
  for (const Tuple& row : r.rows) {
    EXPECT_EQ(row.At(0).AsString(), "select");
    if (row.At(1).AsString() == "select count(*) from emp where salary > ?") {
      found = true;
      EXPECT_EQ(row.At(2).AsInt(), 1);
    }
    // The snapshot is taken at executor Init: a statement never sees itself.
    EXPECT_EQ(row.At(1).AsString().find("relopt_query_log"), std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST(IntrospectionTest, OperatorStatsTableFunctionThroughSql) {
  Database db;
  tu::LoadEmpDept(&db, 100, 5);
  Sql(&db, "SELECT dept_id, count(*) FROM emp GROUP BY dept_id");

  QueryResult r = Sql(&db,
                      "SELECT op, actual_rows, q_error FROM relopt_operator_stats() "
                      "WHERE query_id > 0");
  ASSERT_FALSE(r.rows.empty());
  bool has_scan = false;
  for (const Tuple& row : r.rows) {
    if (row.At(0).AsString() == "SeqScan" || row.At(0).AsString() == "IndexScan") {
      has_scan = true;
      EXPECT_GT(row.At(1).AsInt(), 0);
    }
    if (!row.At(2).is_null()) {
      EXPECT_GE(row.At(2).AsDouble(), 1.0);
    }
  }
  EXPECT_TRUE(has_scan);
}

TEST(IntrospectionTest, TableFunctionErrorCases) {
  Database db;
  tu::LoadEmpDept(&db, 10, 2);

  // Table functions must be the sole FROM item (no joins).
  Result<QueryResult> joined =
      db.Execute("SELECT * FROM relopt_metrics() AS m, emp");
  ASSERT_FALSE(joined.ok());
  EXPECT_NE(joined.status().message().find("only FROM item"), std::string::npos)
      << joined.status().ToString();

  // Unknown function names are a bind error, not a missing table.
  Result<QueryResult> unknown = db.Execute("SELECT * FROM nosuch_fn()");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("unknown table function"), std::string::npos)
      << unknown.status().ToString();

  // Arguments are rejected at parse time.
  Result<QueryResult> args = db.Execute("SELECT * FROM relopt_metrics(1)");
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.status().message().find("no arguments"), std::string::npos)
      << args.status().ToString();
}

TEST(IntrospectionTest, PrometheusEndpointRenders) {
  Database db;
  tu::LoadEmpDept(&db, 50, 5);
  Sql(&db, "SELECT * FROM emp");
  std::string prom = MetricsRegistry::Global().RenderPrometheus();
  EXPECT_NE(prom.find("# TYPE relopt_disk_page_reads counter"), std::string::npos);
  EXPECT_NE(prom.find("relopt_engine_statement_us_bucket"), std::string::npos);
}

// ---- acceptance matrix ------------------------------------------------------
//
// For every corpus query, three independently-maintained page-read counts must
// agree exactly:
//   1. the global MetricsRegistry counter delta (disk-manager instrumentation),
//   2. the per-statement ExecutionMetrics delta (DiskManager::stats delta), and
//   3. the summed EXPLAIN ANALYZE per-operator attribution (PlanProfile).
// Checked at parallelism 1/2/4/8, each in both row-at-a-time and vectorized
// drive modes.
class IntrospectionMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(IntrospectionMatrixTest, RegistryMatchesProfileAttribution) {
  const int parallelism = GetParam();
  const EngineMetrics& em = EngineMetrics::Get();
  // Small pool: the corpus must actually hit the disk, so a counter that
  // silently stopped advancing cannot pass as "0 == 0" across the board.
  SessionOptions opts;
  opts.buffer_pool_pages = 16;
  Database db(opts);
  tu::LoadDifferentialFixture(&db);
  // Grow emp past the pool (~100 rows per 4K page vs 16 frames) so scans do
  // real disk reads; only counter agreement is checked, not results.
  std::string extra = "INSERT INTO emp VALUES ";
  for (int i = 300; i < 3000; ++i) {
    if (i > 300) extra += ", ";
    extra += "(" + std::to_string(i) + ", 'e" + std::to_string(i) + "', " +
             std::to_string(i % 10) + ", " + std::to_string(1000 + (i * 37) % 5000) + ")";
  }
  Sql(&db, extra);
  Sql(&db, "ANALYZE");
  db.set_parallelism(parallelism);
  uint64_t total_reads = 0;

  for (bool vectorized : {false, true}) {
    db.set_vectorized(vectorized);
    for (const char* q : tu::kDifferentialQueries) {
      const std::string mode = std::string(q) + " @ parallelism " +
                               std::to_string(parallelism) +
                               (vectorized ? " vectorized" : " row");
      const uint64_t reads_before = em.disk_page_reads->value();
      const uint64_t writes_before = em.disk_page_writes->value();
      Sql(&db, q);
      const uint64_t reads_delta = em.disk_page_reads->value() - reads_before;
      const uint64_t writes_delta = em.disk_page_writes->value() - writes_before;

      const ExecutionMetrics& m = db.last_metrics();
      EXPECT_EQ(reads_delta, m.io.page_reads) << mode;
      EXPECT_EQ(writes_delta, m.io.page_writes) << mode;
      ASSERT_TRUE(db.last_profile().valid) << mode;
      EXPECT_EQ(db.last_profile().TotalPageReads(), m.io.page_reads) << mode;
      EXPECT_EQ(db.last_profile().TotalPageWrites(), m.io.page_writes) << mode;
      total_reads += reads_delta;
    }
  }
  // The corpus as a whole did real I/O; the agreement above was not vacuous.
  EXPECT_GT(total_reads, 0u);
}

INSTANTIATE_TEST_SUITE_P(Parallelism, IntrospectionMatrixTest,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace relopt
