// Plan-cache correctness: hits return the cached plan (no re-optimization)
// with identical results; DDL, ANALYZE, and catalog-version changes
// invalidate; the LRU evicts at capacity; and a cached plan never outlives
// the table it scans.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "engine/plan_cache.h"
#include "engine/session.h"
#include "test_util.h"
#include "util/metrics.h"

namespace relopt {
namespace {

using tu::IntCell;
using tu::LoadEmpDept;
using tu::Sql;

std::vector<std::string> RenderedRows(const QueryResult& result) {
  std::vector<std::string> rows;
  for (const Tuple& row : result.rows) {
    std::string s;
    for (size_t i = 0; i < row.NumValues(); ++i) {
      s += row.At(i).ToString();
      s += '|';
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(PlanCacheKeyTest, NormalizesWhitespaceAndCasePreservingLiterals) {
  OptimizerOptions options;
  EXPECT_EQ(PlanCacheKey("SELECT  *   FROM emp", options),
            PlanCacheKey("select * from emp", options));
  // Distinct literals are distinct plans: constant folding and selectivity
  // estimation both depend on the value.
  EXPECT_NE(PlanCacheKey("SELECT * FROM emp WHERE id = 1", options),
            PlanCacheKey("SELECT * FROM emp WHERE id = 2", options));
  // String literals keep their case even though keywords are lowered.
  EXPECT_NE(PlanCacheKey("SELECT * FROM emp WHERE name = 'Ann'", options),
            PlanCacheKey("SELECT * FROM emp WHERE name = 'ann'", options));
  // Optimizer options that change plan choice change the key.
  OptimizerOptions no_hash = options;
  no_hash.join.enable_hash = false;
  EXPECT_NE(PlanCacheKey("SELECT * FROM emp", options),
            PlanCacheKey("SELECT * FROM emp", no_hash));
}

// The acceptance criterion for the serving layer: the second execution of an
// identical SELECT is served from the cache and performs ZERO optimizer
// work — the global optimization counter must not move — while returning
// bag-identical rows.
TEST(PlanCacheTest, HitSkipsOptimizationEntirely) {
  Database db;
  LoadEmpDept(&db);
  const std::string sql = "SELECT dept_id, count(*) FROM emp WHERE salary > 2000 GROUP BY dept_id";

  QueryResult first = Sql(&db, sql);
  EXPECT_FALSE(db.last_metrics().plan_cache_hit);
  const uint64_t optimizations_before = EngineMetrics::Get().optimizer_optimizations->value();
  const uint64_t hits_before = db.plan_cache()->stats().hits;

  QueryResult second = Sql(&db, sql);
  EXPECT_TRUE(db.last_metrics().plan_cache_hit);
  EXPECT_EQ(db.last_metrics().opt_nanos, 0u);
  EXPECT_EQ(EngineMetrics::Get().optimizer_optimizations->value(), optimizations_before)
      << "cache hit must not re-run the optimizer";
  EXPECT_EQ(db.plan_cache()->stats().hits, hits_before + 1);
  EXPECT_EQ(RenderedRows(first), RenderedRows(second));
}

TEST(PlanCacheTest, HitServesTheSamePlan) {
  Database db;
  LoadEmpDept(&db);
  const std::string sql =
      "SELECT emp.name, dept.dname FROM emp, dept WHERE emp.dept_id = dept.id AND emp.id < 25";
  Sql(&db, sql);
  ASSERT_TRUE(db.last_profile().valid);
  const std::string first_plan = db.last_profile().root.describe;
  Sql(&db, sql);
  EXPECT_TRUE(db.last_metrics().plan_cache_hit);
  EXPECT_EQ(db.last_profile().root.describe, first_plan);

  // The entry's per-entry hit counter is visible through the snapshot.
  bool found = false;
  for (const PlanCache::EntryInfo& e : db.plan_cache()->Snapshot()) {
    if (e.key.find("emp.dept_id = dept.id") != std::string::npos ||
        e.key.find("dept_id = dept.id") != std::string::npos) {
      found = true;
      EXPECT_GE(e.hits, 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(PlanCacheTest, DdlAndAnalyzeInvalidate) {
  Database db;
  LoadEmpDept(&db);
  const std::string sql = "SELECT count(*) FROM emp WHERE salary > 3000";

  for (const char* ddl : {"CREATE TABLE other1 (x INT)", "ANALYZE", "DROP TABLE other1",
                          "CREATE INDEX other_idx ON emp (id)"}) {
    Sql(&db, sql);  // populate (or repopulate) the entry
    Sql(&db, sql);
    ASSERT_TRUE(db.last_metrics().plan_cache_hit) << ddl;
    const uint64_t invalidations_before = db.plan_cache()->stats().invalidations;
    Sql(&db, ddl);
    EXPECT_GT(db.plan_cache()->stats().invalidations, invalidations_before)
        << ddl << " must invalidate cached plans";
    Sql(&db, sql);
    EXPECT_FALSE(db.last_metrics().plan_cache_hit) << "stale plan served after " << ddl;
  }
}

TEST(PlanCacheTest, CachedPlanNeverOutlivesDroppedTable) {
  Database db;
  Sql(&db, "CREATE TABLE t (a INT, b INT)");
  Sql(&db, "INSERT INTO t VALUES (1, 10), (2, 20)");
  EXPECT_EQ(IntCell(Sql(&db, "SELECT count(*) FROM t")), 2);

  Sql(&db, "DROP TABLE t");
  Result<QueryResult> gone = db.Execute("SELECT count(*) FROM t");
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(db.plan_cache()->size(), 0u) << "drop must leave no plan over t";

  // Re-creating the table with a different shape must plan fresh against the
  // new schema, not resurrect anything.
  Sql(&db, "CREATE TABLE t (a INT, b INT, c INT)");
  Sql(&db, "INSERT INTO t VALUES (1, 10, 100), (2, 20, 200), (3, 30, 300)");
  QueryResult result = Sql(&db, "SELECT count(*) FROM t");
  EXPECT_FALSE(db.last_metrics().plan_cache_hit);
  EXPECT_EQ(IntCell(result), 3);
}

TEST(PlanCacheTest, LruEvictsOldestAndHitsRefresh) {
  PlanCache cache(/*capacity=*/2);
  struct Dummy : PhysicalNode {
    Dummy() : PhysicalNode(PhysicalNodeKind::kSeqScan, Schema()) {}
    std::string Describe() const override { return "dummy"; }
  };
  auto make = [] { return std::shared_ptr<const PhysicalNode>(new Dummy()); };

  cache.Insert("a", 1, make());
  cache.Insert("b", 1, make());
  ASSERT_EQ(cache.size(), 2u);

  // Touch "a" so it is most-recent; inserting "c" must evict "b".
  EXPECT_NE(cache.Lookup("a", 1), nullptr);
  cache.Insert("c", 1, make());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.Lookup("a", 1), nullptr);
  EXPECT_NE(cache.Lookup("c", 1), nullptr);
  EXPECT_EQ(cache.Lookup("b", 1), nullptr) << "LRU entry must have been evicted";
}

TEST(PlanCacheTest, VersionMismatchDropsEntry) {
  PlanCache cache(4);
  struct Dummy : PhysicalNode {
    Dummy() : PhysicalNode(PhysicalNodeKind::kSeqScan, Schema()) {}
    std::string Describe() const override { return "dummy"; }
  };
  cache.Insert("k", /*catalog_version=*/1, std::shared_ptr<const PhysicalNode>(new Dummy()));
  EXPECT_EQ(cache.Lookup("k", /*catalog_version=*/2), nullptr);
  EXPECT_EQ(cache.size(), 0u) << "stale entry must be dropped, not retained";
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PlanCacheTest, DisabledCacheNeverHits) {
  Database db;
  LoadEmpDept(&db);
  db.plan_cache()->set_enabled(false);
  const std::string sql = "SELECT count(*) FROM emp";
  Sql(&db, sql);
  Sql(&db, sql);
  EXPECT_FALSE(db.last_metrics().plan_cache_hit);
  EXPECT_EQ(db.plan_cache()->size(), 0u);
  db.plan_cache()->set_enabled(true);
  Sql(&db, sql);  // miss, populates
  Sql(&db, sql);
  EXPECT_TRUE(db.last_metrics().plan_cache_hit);
}

TEST(PlanCacheTest, TraceModeBypassesCache) {
  Database db;
  LoadEmpDept(&db);
  const std::string sql = "SELECT count(*) FROM emp WHERE id < 100";
  Sql(&db, sql);
  Sql(&db, sql);
  ASSERT_TRUE(db.last_metrics().plan_cache_hit);

  db.set_trace_optimizer(true);
  Sql(&db, sql);
  EXPECT_FALSE(db.last_metrics().plan_cache_hit) << "tracing must re-run the optimizer";
  EXPECT_NE(db.last_trace(), nullptr);
  db.set_trace_optimizer(false);
}

TEST(PlanCacheTest, TableFunctionExposesEntries) {
  Database db;
  LoadEmpDept(&db);
  Sql(&db, "SELECT count(*) FROM emp");
  QueryResult rows = Sql(&db, "SELECT key, hits FROM relopt_plan_cache()");
  EXPECT_GE(rows.rows.size(), 1u);
  bool found = false;
  for (const Tuple& row : rows.rows) {
    if (row.At(0).ToString().find("count(*) from emp") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << "cached SELECT must appear in relopt_plan_cache()";
}

}  // namespace
}  // namespace relopt
