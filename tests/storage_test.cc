// DiskManager, BufferPool, SlottedPage, HeapFile tests.
#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "storage/slotted_page.h"
#include "util/rng.h"

namespace relopt {
namespace {

// ------------------------------------------------------------ DiskManager --

TEST(DiskManagerTest, CreateAllocateReadWrite) {
  DiskManager disk;
  FileId f = disk.CreateFile();
  EXPECT_TRUE(disk.FileExists(f));
  EXPECT_EQ(disk.NumPages(f), 0u);

  PageNo p = *disk.AllocatePage(f);
  EXPECT_EQ(p, 0u);
  EXPECT_EQ(disk.NumPages(f), 1u);

  char out[kPageSize];
  ASSERT_TRUE(disk.ReadPage({f, p}, out).ok());
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(out[i], 0) << i;

  char data[kPageSize];
  for (size_t i = 0; i < kPageSize; ++i) data[i] = static_cast<char>(i % 251);
  ASSERT_TRUE(disk.WritePage({f, p}, data).ok());
  ASSERT_TRUE(disk.ReadPage({f, p}, out).ok());
  EXPECT_EQ(memcmp(out, data, kPageSize), 0);
}

TEST(DiskManagerTest, CountsIo) {
  DiskManager disk;
  FileId f = disk.CreateFile();
  PageNo p = *disk.AllocatePage(f);
  char buf[kPageSize] = {0};
  ASSERT_TRUE(disk.ReadPage({f, p}, buf).ok());
  ASSERT_TRUE(disk.ReadPage({f, p}, buf).ok());
  ASSERT_TRUE(disk.WritePage({f, p}, buf).ok());
  EXPECT_EQ(disk.stats().page_reads, 2u);
  EXPECT_EQ(disk.stats().page_writes, 1u);
  EXPECT_EQ(disk.stats().pages_allocated, 1u);
  EXPECT_EQ(disk.FileStats(f).page_reads, 2u);
  disk.ResetStats();
  EXPECT_EQ(disk.stats().page_reads, 0u);
  EXPECT_EQ(disk.FileStats(f).page_reads, 0u);
}

TEST(DiskManagerTest, ErrorsOnBadAccess) {
  DiskManager disk;
  char buf[kPageSize];
  EXPECT_EQ(disk.ReadPage({999, 0}, buf).code(), StatusCode::kNotFound);
  FileId f = disk.CreateFile();
  EXPECT_EQ(disk.ReadPage({f, 5}, buf).code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(disk.AllocatePage(12345).ok());
}

TEST(DiskManagerTest, DeleteFileFreesIt) {
  DiskManager disk;
  FileId f = disk.CreateFile();
  disk.DeleteFile(f);
  EXPECT_FALSE(disk.FileExists(f));
  disk.DeleteFile(f);  // idempotent
}

// ------------------------------------------------------------- BufferPool --

TEST(BufferPoolTest, FetchHitsAfterMiss) {
  DiskManager disk;
  BufferPool pool(&disk, 4);
  FileId f = disk.CreateFile();
  PageFrame* frame = *pool.NewPage(f);
  PageId pid = frame->page_id();
  ASSERT_TRUE(pool.UnpinPage(pid, true).ok());
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(pool.EvictAll().ok());

  uint64_t reads_before = disk.stats().page_reads;
  ASSERT_TRUE(pool.FetchPage(pid).ok());
  EXPECT_EQ(disk.stats().page_reads, reads_before + 1);  // miss
  ASSERT_TRUE(pool.UnpinPage(pid, false).ok());
  ASSERT_TRUE(pool.FetchPage(pid).ok());
  EXPECT_EQ(disk.stats().page_reads, reads_before + 1);  // hit
  ASSERT_TRUE(pool.UnpinPage(pid, false).ok());
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  DiskManager disk;
  BufferPool pool(&disk, 2);
  FileId f = disk.CreateFile();
  PageId p0 = (*pool.NewPage(f))->page_id();
  ASSERT_TRUE(pool.UnpinPage(p0, true).ok());
  PageId p1 = (*pool.NewPage(f))->page_id();
  ASSERT_TRUE(pool.UnpinPage(p1, true).ok());
  // Touch p0 so p1 is LRU.
  ASSERT_TRUE(pool.FetchPage(p0).ok());
  ASSERT_TRUE(pool.UnpinPage(p0, false).ok());
  // New page evicts p1.
  PageId p2 = (*pool.NewPage(f))->page_id();
  ASSERT_TRUE(pool.UnpinPage(p2, true).ok());
  EXPECT_EQ(pool.stats().evictions, 1u);
  // Re-fetching p1 is a miss; p0 is still cached.
  uint64_t misses = pool.stats().misses;
  ASSERT_TRUE(pool.FetchPage(p0).ok());
  ASSERT_TRUE(pool.UnpinPage(p0, false).ok());
  EXPECT_EQ(pool.stats().misses, misses);
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  DiskManager disk;
  BufferPool pool(&disk, 2);
  FileId f = disk.CreateFile();
  PageFrame* f0 = *pool.NewPage(f);
  PageFrame* f1 = *pool.NewPage(f);
  (void)f0;
  (void)f1;
  // Both pinned; a third page cannot be placed.
  Result<PageFrame*> r = pool.NewPage(f);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(BufferPoolTest, DirtyPageWrittenBackOnEviction) {
  DiskManager disk;
  BufferPool pool(&disk, 1);
  FileId f = disk.CreateFile();
  PageFrame* frame = *pool.NewPage(f);
  PageId pid = frame->page_id();
  frame->data()[0] = 'X';
  ASSERT_TRUE(pool.UnpinPage(pid, true).ok());
  // Force eviction by allocating another page.
  PageId p2 = (*pool.NewPage(f))->page_id();
  ASSERT_TRUE(pool.UnpinPage(p2, true).ok());
  char buf[kPageSize];
  ASSERT_TRUE(disk.ReadPage(pid, buf).ok());
  EXPECT_EQ(buf[0], 'X');
  EXPECT_GE(pool.stats().dirty_writebacks, 1u);
}

TEST(BufferPoolTest, DropFilePagesDiscardsWithoutWriteback) {
  DiskManager disk;
  BufferPool pool(&disk, 4);
  FileId f = disk.CreateFile();
  PageFrame* frame = *pool.NewPage(f);
  frame->data()[0] = 'Z';
  ASSERT_TRUE(pool.UnpinPage(frame->page_id(), true).ok());
  uint64_t writes = disk.stats().page_writes;
  ASSERT_TRUE(pool.DropFilePages(f).ok());
  EXPECT_EQ(disk.stats().page_writes, writes);
  EXPECT_EQ(pool.NumCached(), 0u);
}

TEST(BufferPoolTest, UnpinErrors) {
  DiskManager disk;
  BufferPool pool(&disk, 2);
  FileId f = disk.CreateFile();
  EXPECT_EQ(pool.UnpinPage({f, 7}, false).code(), StatusCode::kNotFound);
  PageId pid = (*pool.NewPage(f))->page_id();
  ASSERT_TRUE(pool.UnpinPage(pid, false).ok());
  EXPECT_EQ(pool.UnpinPage(pid, false).code(), StatusCode::kInternal);
}

// ------------------------------------------------------------ SlottedPage --

TEST(SlottedPageTest, InsertGetDelete) {
  char buf[kPageSize];
  SlottedPage page(buf);
  page.Init();
  EXPECT_EQ(page.NumSlots(), 0u);

  uint16_t s0 = *page.Insert("hello");
  uint16_t s1 = *page.Insert("world!");
  EXPECT_EQ(s0, 0u);
  EXPECT_EQ(s1, 1u);
  EXPECT_EQ(*page.Get(s0), "hello");
  EXPECT_EQ(*page.Get(s1), "world!");
  EXPECT_EQ(page.NumLive(), 2u);

  ASSERT_TRUE(page.Delete(s0).ok());
  EXPECT_FALSE(page.IsLive(s0));
  EXPECT_FALSE(page.Get(s0).ok());
  EXPECT_EQ(*page.Get(s1), "world!");  // s1 unaffected (stable slots)
  EXPECT_EQ(page.NumLive(), 1u);
  EXPECT_EQ(page.Delete(s0).code(), StatusCode::kNotFound);
}

TEST(SlottedPageTest, FillsUntilFull) {
  char buf[kPageSize];
  SlottedPage page(buf);
  page.Init();
  std::string record(100, 'r');
  int inserted = 0;
  while (page.HasRoomFor(record.size())) {
    ASSERT_TRUE(page.Insert(record).ok());
    ++inserted;
  }
  // 100-byte records + 4-byte slots into ~4092 usable bytes: ~39 fit.
  EXPECT_GT(inserted, 30);
  EXPECT_LT(inserted, 45);
  Result<uint16_t> r = page.Insert(record);
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(SlottedPageTest, OversizeRecordRejected) {
  char buf[kPageSize];
  SlottedPage page(buf);
  page.Init();
  std::string record(kPageSize, 'x');
  EXPECT_EQ(page.Insert(record).status().code(), StatusCode::kInvalidArgument);
}

TEST(SlottedPageTest, EmptyRecordAllowed) {
  char buf[kPageSize];
  SlottedPage page(buf);
  page.Init();
  uint16_t s = *page.Insert("");
  EXPECT_EQ(page.Get(s)->size(), 0u);
}

// --------------------------------------------------------------- HeapFile --

TEST(HeapFileTest, InsertGetAcrossPages) {
  DiskManager disk;
  BufferPool pool(&disk, 16);
  HeapFile heap = *HeapFile::Create(&pool);

  std::vector<Rid> rids;
  std::string record(500, 'a');
  for (int i = 0; i < 50; ++i) {
    record[0] = static_cast<char>('a' + i % 26);
    rids.push_back(*heap.Insert(record));
  }
  EXPECT_GT(heap.NumPages(), 5u);  // ~7 records per page

  for (int i = 0; i < 50; ++i) {
    std::string got = *heap.Get(rids[i]);
    EXPECT_EQ(got[0], static_cast<char>('a' + i % 26));
    EXPECT_EQ(got.size(), 500u);
  }
}

TEST(HeapFileTest, IteratorSeesAllLiveRecords) {
  DiskManager disk;
  BufferPool pool(&disk, 16);
  HeapFile heap = *HeapFile::Create(&pool);
  std::vector<Rid> rids;
  for (int i = 0; i < 30; ++i) {
    rids.push_back(*heap.Insert("rec" + std::to_string(i)));
  }
  ASSERT_TRUE(heap.Delete(rids[3]).ok());
  ASSERT_TRUE(heap.Delete(rids[17]).ok());

  HeapFile::Iterator it(&heap);
  Rid rid;
  std::string record;
  int count = 0;
  while (*it.Next(&rid, &record)) {
    EXPECT_NE(record, "rec3");
    EXPECT_NE(record, "rec17");
    ++count;
  }
  EXPECT_EQ(count, 28);

  it.Reset();
  count = 0;
  while (*it.Next(&rid, &record)) ++count;
  EXPECT_EQ(count, 28);
}

TEST(HeapFileTest, GetDeletedRecordFails) {
  DiskManager disk;
  BufferPool pool(&disk, 4);
  HeapFile heap = *HeapFile::Create(&pool);
  Rid rid = *heap.Insert("x");
  ASSERT_TRUE(heap.Delete(rid).ok());
  EXPECT_FALSE(heap.Get(rid).ok());
  EXPECT_FALSE(heap.Delete(rid).ok());
}

TEST(HeapFileTest, ScanCountsOnePhysicalReadPerPage) {
  DiskManager disk;
  BufferPool pool(&disk, 64);
  HeapFile heap = *HeapFile::Create(&pool);
  std::string record(400, 'b');
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(heap.Insert(record).ok());
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(pool.EvictAll().ok());
  disk.ResetStats();

  HeapFile::Iterator it(&heap);
  Rid rid;
  std::string rec;
  while (*it.Next(&rid, &rec)) {
  }
  EXPECT_EQ(disk.stats().page_reads, heap.NumPages());
}

}  // namespace
}  // namespace relopt
