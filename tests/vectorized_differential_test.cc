// Row-vs-vectorized differential harness: every query must return the same
// bag of rows in row-at-a-time and batch-at-a-time mode at any batch size,
// fail with the same error when it fails, keep EXPLAIN ANALYZE row/page-I/O
// accounting identical, and compose with morsel-driven parallelism.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "differential_queries.h"
#include "exec/plan_profile.h"
#include "test_util.h"
#include "util/metrics.h"

namespace relopt {
namespace {

using tu::Sql;

std::vector<std::string> Canon(const QueryResult& r) {
  std::vector<std::string> rows;
  for (const Tuple& t : r.rows) rows.push_back(t.ToString());
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<std::string> ColumnNames(const Schema& s) {
  std::vector<std::string> names;
  for (size_t i = 0; i < s.NumColumns(); ++i) names.push_back(s.ColumnAt(i).QualifiedName());
  return names;
}

// The corpus lives in differential_queries.h, shared with the
// serial-vs-parallel suite so both harnesses cover the same queries.
using tu::kDifferentialFailingQueries;
using tu::kDifferentialQueries;

const size_t kBatchSizes[] = {1, 7, 1024};

class VectorizedDifferentialTest : public ::testing::Test {
 protected:
  VectorizedDifferentialTest() { tu::LoadDifferentialFixture(&db_); }

  QueryResult RunRowMode(const std::string& sql) {
    db_.set_vectorized(false);
    QueryResult r = Sql(&db_, sql);
    db_.set_vectorized(true);
    return r;
  }

  QueryResult RunVectorized(const std::string& sql, size_t batch_size) {
    db_.set_vectorized(true);
    db_.set_batch_size(batch_size);
    return Sql(&db_, sql);
  }

  void CheckRowVsVectorized(const std::string& sql, size_t batch_size) {
    QueryResult row = RunRowMode(sql);
    QueryResult vec = RunVectorized(sql, batch_size);
    EXPECT_EQ(ColumnNames(row.schema), ColumnNames(vec.schema)) << sql;
    EXPECT_EQ(Canon(row), Canon(vec)) << sql << " @ batch_size " << batch_size;
  }

  Database db_;
};

TEST_F(VectorizedDifferentialTest, EveryQueryAgreesAtEveryBatchSize) {
  for (const char* q : kDifferentialQueries) {
    for (size_t bs : kBatchSizes) CheckRowVsVectorized(q, bs);
  }
}

TEST_F(VectorizedDifferentialTest, ErrorsAreIdenticalAcrossModes) {
  for (const char* q : kDifferentialFailingQueries) {
    db_.set_vectorized(false);
    Result<QueryResult> row = db_.Execute(q);
    db_.set_vectorized(true);
    for (size_t bs : kBatchSizes) {
      db_.set_batch_size(bs);
      Result<QueryResult> vec = db_.Execute(q);
      EXPECT_FALSE(row.ok()) << q;
      EXPECT_FALSE(vec.ok()) << q;
      EXPECT_EQ(row.status().ToString(), vec.status().ToString())
          << q << " @ batch_size " << bs;
    }
  }
}

/// Flattens a profile tree into (op, rows_produced) in pre-order.
void FlattenRows(const OperatorProfile& p, std::vector<std::pair<std::string, uint64_t>>* out) {
  out->emplace_back(p.op, p.stats.rows_produced);
  for (const OperatorProfile& c : p.children) FlattenRows(c, out);
}

TEST_F(VectorizedDifferentialTest, PerOperatorRowCountsMatchRowMode) {
  // LIMIT queries are excluded: batch mode legitimately reads ahead below a
  // LIMIT (a child fills a whole batch before the LIMIT truncates), so
  // per-operator row counts under LIMIT differ by design. Every fully
  // consumed plan must account identically.
  for (const char* q : kDifferentialQueries) {
    if (std::string(q).find("LIMIT") != std::string::npos) continue;
    RunRowMode(q);
    ASSERT_TRUE(db_.last_profile().valid) << q;
    std::vector<std::pair<std::string, uint64_t>> row_rows;
    FlattenRows(db_.last_profile().root, &row_rows);

    for (size_t bs : kBatchSizes) {
      RunVectorized(q, bs);
      ASSERT_TRUE(db_.last_profile().valid) << q;
      std::vector<std::pair<std::string, uint64_t>> vec_rows;
      FlattenRows(db_.last_profile().root, &vec_rows);
      EXPECT_EQ(row_rows, vec_rows) << q << " @ batch_size " << bs;
    }
  }
}

TEST_F(VectorizedDifferentialTest, PageIoIdenticalColdCache) {
  // Both drive modes pin one page at a time through the same view iterators,
  // so an identical cold-cache read count is a hard requirement — vectorized
  // execution saves CPU, not I/O. (LIMIT read-ahead would break this, so the
  // corpus here is full-consumption queries.)
  const char* const io_queries[] = {
      "SELECT * FROM emp",
      "SELECT id, salary * 2 + 1 FROM emp WHERE id < 50",
      "SELECT count(*), sum(emp.salary) FROM emp, dept WHERE emp.dept_id = dept.id",
      "SELECT dept_id, count(*) FROM emp WHERE salary > 2000 GROUP BY dept_id ORDER BY dept_id",
      "SELECT dept_id, avg(salary) FROM emp GROUP BY dept_id",
      "SELECT b, count(*), sum(a), avg(a) FROM nulls_t GROUP BY b",
  };
  for (const char* q : io_queries) {
    PhysicalPtr plan;
    {
      Result<PhysicalPtr> p = db_.PlanQuery(q);
      ASSERT_TRUE(p.ok()) << p.status().ToString();
      plan = p.MoveValue();
    }

    db_.set_vectorized(false);
    ASSERT_OK(db_.pool()->FlushAll());
    ASSERT_OK(db_.pool()->EvictAll());
    Result<QueryResult> row = db_.ExecutePlan(*plan);
    ASSERT_TRUE(row.ok()) << row.status().ToString();
    uint64_t row_reads = db_.last_metrics().io.page_reads;
    uint64_t row_writes = db_.last_metrics().io.page_writes;
    ASSERT_TRUE(db_.last_profile().valid);
    uint64_t row_profile_reads = db_.last_profile().TotalPageReads();

    db_.set_vectorized(true);
    for (size_t bs : kBatchSizes) {
      db_.set_batch_size(bs);
      ASSERT_OK(db_.pool()->FlushAll());
      ASSERT_OK(db_.pool()->EvictAll());
      Result<QueryResult> vec = db_.ExecutePlan(*plan);
      ASSERT_TRUE(vec.ok()) << vec.status().ToString();
      EXPECT_EQ(db_.last_metrics().io.page_reads, row_reads) << q << " @ batch_size " << bs;
      EXPECT_EQ(db_.last_metrics().io.page_writes, row_writes) << q << " @ batch_size " << bs;
      // Per-operator attribution still sums exactly to the query totals.
      ASSERT_TRUE(db_.last_profile().valid);
      EXPECT_EQ(db_.last_profile().TotalPageReads(), db_.last_metrics().io.page_reads) << q;
      EXPECT_EQ(db_.last_profile().TotalPageReads(), row_profile_reads) << q;
    }
  }
}

TEST_F(VectorizedDifferentialTest, ComposesWithParallelism) {
  // Vectorized + morsel parallelism stacked: workers drive their fragments
  // through NextBatch and the Gather adopts whole batches. Reference is
  // serial row mode.
  for (const char* q : kDifferentialQueries) {
    QueryResult reference = RunRowMode(q);
    for (size_t parallelism : {2u, 4u}) {
      db_.set_parallelism(parallelism);
      for (size_t bs : {size_t{7}, size_t{1024}}) {
        QueryResult vec = RunVectorized(q, bs);
        EXPECT_EQ(Canon(reference), Canon(vec))
            << q << " @ parallelism " << parallelism << " batch_size " << bs;
      }
      db_.set_parallelism(1);
    }
  }
}

/// Recursively finds the first profile node whose op matches.
const OperatorProfile* FindOp(const OperatorProfile& p, const std::string& op) {
  if (p.op == op) return &p;
  for (const OperatorProfile& c : p.children) {
    if (const OperatorProfile* hit = FindOp(c, op)) return hit;
  }
  return nullptr;
}

TEST_F(VectorizedDifferentialTest, ScanStatsExactUnderVectorizedParallelism) {
  db_.set_parallelism(4);
  db_.set_batch_size(64);
  Sql(&db_, "SELECT count(*) FROM emp");
  db_.set_parallelism(1);
  const PlanProfile& profile = db_.last_profile();
  ASSERT_TRUE(profile.valid);
  const OperatorProfile* scan = FindOp(profile.root, "SeqScan");
  ASSERT_NE(scan, nullptr);
  // One MorselScan clone per worker; merged stats still show one Init per
  // worker and the exact row count, now with batch accounting on top.
  EXPECT_EQ(scan->stats.init_calls, 4u);
  EXPECT_EQ(scan->stats.rows_produced, 300u);
  EXPECT_GT(scan->stats.batches_produced, 0u);
}

TEST_F(VectorizedDifferentialTest, BatchesProducedCountsBatchCalls) {
  db_.set_batch_size(64);
  QueryResult r = Sql(&db_, "SELECT * FROM emp");
  EXPECT_EQ(r.rows.size(), 300u);
  const PlanProfile& profile = db_.last_profile();
  ASSERT_TRUE(profile.valid);
  const OperatorProfile* scan = FindOp(profile.root, "SeqScan");
  ASSERT_NE(scan, nullptr);
  // 300 rows at 64/batch: four full batches then a final partial batch on
  // the end-of-stream call.
  EXPECT_EQ(scan->stats.batches_produced, 5u);
  EXPECT_EQ(scan->stats.next_calls, 5u);
  EXPECT_EQ(scan->stats.rows_produced, 300u);
  // EXPLAIN ANALYZE text renders the batch counter.
  EXPECT_NE(profile.ToText().find("batches="), std::string::npos);
  EXPECT_NE(profile.ToJson().find("\"batches_produced\":"), std::string::npos);
}

// --- selection-vector edge cases, end to end -------------------------------

TEST_F(VectorizedDifferentialTest, AllRowsFilteredBatches) {
  // Every batch survives the scan but dies in the filter: NextBatch returns
  // true with zero selected rows and the driver keeps pulling.
  for (size_t bs : kBatchSizes) {
    QueryResult r = RunVectorized("SELECT id FROM emp WHERE id < 0", bs);
    EXPECT_TRUE(r.rows.empty());
  }
  CheckRowVsVectorized("SELECT id FROM emp WHERE id < 0", 7);
}

TEST_F(VectorizedDifferentialTest, EmptyTableProducesNoBatches) {
  for (size_t bs : kBatchSizes) {
    QueryResult r = RunVectorized("SELECT * FROM empty_t", bs);
    EXPECT_TRUE(r.rows.empty());
  }
}

TEST_F(VectorizedDifferentialTest, LimitExactlyAtBatchBoundary) {
  // LIMIT == batch size: the truncation path runs with zero rows to cut and
  // the next NextBatch call must return false without touching the child.
  for (int64_t limit : {5, 50, 300}) {
    std::string q = "SELECT id FROM emp LIMIT " + std::to_string(limit);
    QueryResult row = RunRowMode(q);
    // Batch size equal to, just below, and just above the limit.
    for (size_t bs :
         {static_cast<size_t>(limit), static_cast<size_t>(limit) - 1,
          static_cast<size_t>(limit) + 1}) {
      if (bs == 0) continue;
      QueryResult vec = RunVectorized(q, bs);
      EXPECT_EQ(row.rows.size(), vec.rows.size()) << q << " @ batch_size " << bs;
      EXPECT_EQ(Canon(row), Canon(vec)) << q << " @ batch_size " << bs;
    }
  }
}

TEST_F(VectorizedDifferentialTest, NullHeavyPredicates) {
  // Two thirds of nulls_t.b is NULL: the conjunct-wise batch filter must
  // reject NULL like false (three-valued logic), and IS NULL must keep it.
  const char* const null_queries[] = {
      "SELECT a FROM nulls_t WHERE b > 100",
      "SELECT a FROM nulls_t WHERE b IS NULL",
      "SELECT a FROM nulls_t WHERE b IS NOT NULL AND b > 100",
      "SELECT count(*) FROM nulls_t WHERE b > 100 OR b IS NULL",
      "SELECT a, b FROM nulls_t WHERE b > 100 AND a < 60",
  };
  for (const char* q : null_queries) {
    for (size_t bs : kBatchSizes) CheckRowVsVectorized(q, bs);
  }
}

// --- batch fallback accounting ---------------------------------------------

/// Flattens a profile tree into (op, fallback_rows) in pre-order.
void FlattenFallback(const OperatorProfile& p,
                     std::vector<std::pair<std::string, uint64_t>>* out) {
  out->emplace_back(p.op, p.stats.fallback_rows);
  for (const OperatorProfile& c : p.children) FlattenFallback(c, out);
}

TEST_F(VectorizedDifferentialTest, ConvertedOperatorsNeverFallBackAcrossCorpus) {
  // Every operator with a native batch implementation must process the whole
  // corpus through compiled kernels: zero rows through the row-loop adapter
  // or a compiled-tree FallbackNode, at every batch size and parallelism.
  const char* const converted[] = {"SeqScan", "Filter",    "Project",
                                   "HashJoin", "Sort",     "Aggregate"};
  for (const char* q : kDifferentialQueries) {
    for (size_t parallelism : {1u, 2u, 4u, 8u}) {
      db_.set_parallelism(parallelism);
      for (size_t bs : {size_t{7}, size_t{1024}}) {
        RunVectorized(q, bs);
        ASSERT_TRUE(db_.last_profile().valid) << q;
        std::vector<std::pair<std::string, uint64_t>> ops;
        FlattenFallback(db_.last_profile().root, &ops);
        for (const auto& [op, fallback] : ops) {
          for (const char* c : converted) {
            if (op == c) {
              EXPECT_EQ(fallback, 0u) << op << " fell back on: " << q << " @ parallelism "
                                      << parallelism << " batch_size " << bs;
            }
          }
        }
      }
      db_.set_parallelism(1);
    }
  }
}

TEST_F(VectorizedDifferentialTest, FallbackRowsSurfaceInProfileAndMetric) {
  // A non-equi self join has no hash/merge path; the nested-loop join keeps
  // its row implementation, so batch drive routes it through the counting
  // adapter: the per-operator profile and the engine-wide counter both move.
  const uint64_t before = EngineMetrics::Get().exec_batch_fallback_rows->value();
  RunVectorized(
      "SELECT e.id, e2.id FROM emp e, emp e2 "
      "WHERE e.id < 12 AND e2.id < 12 AND e.salary < e2.salary",
      64);
  ASSERT_TRUE(db_.last_profile().valid);
  std::vector<std::pair<std::string, uint64_t>> ops;
  FlattenFallback(db_.last_profile().root, &ops);
  uint64_t total_fallback = 0;
  for (const auto& [op, fallback] : ops) total_fallback += fallback;
  EXPECT_GT(total_fallback, 0u);
  EXPECT_GT(EngineMetrics::Get().exec_batch_fallback_rows->value(), before);
  // EXPLAIN ANALYZE renders the counter in both formats.
  EXPECT_NE(db_.last_profile().ToText().find("fallback="), std::string::npos);
  EXPECT_NE(db_.last_profile().ToJson().find("\"fallback_rows\":"), std::string::npos);
}

TEST_F(VectorizedDifferentialTest, SetVectorizedIsReversible) {
  const std::string q = "SELECT count(*) FROM emp";
  EXPECT_TRUE(db_.vectorized());  // on by default
  QueryResult vec = Sql(&db_, q);
  db_.set_vectorized(false);
  EXPECT_FALSE(db_.vectorized());
  QueryResult row = Sql(&db_, q);
  db_.set_vectorized(true);
  EXPECT_EQ(Canon(vec), Canon(row));
  db_.set_batch_size(0);  // clamps to 1
  EXPECT_EQ(db_.batch_size(), 1u);
  QueryResult one = Sql(&db_, q);
  EXPECT_EQ(Canon(vec), Canon(one));
}

}  // namespace
}  // namespace relopt
