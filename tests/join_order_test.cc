// DPccp join enumeration: cost parity with subset DP on every connected
// topology, the budget fallback ladder, disconnected-graph routing, metrics
// export, and the pinned generated-workload corpus.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "differential_queries.h"
#include "engine/plan_cache.h"
#include "test_util.h"
#include "util/metrics.h"
#include "workload/queries.h"

namespace relopt {
namespace {

const JoinTopology kAllTopologies[] = {JoinTopology::kChain, JoinTopology::kStar,
                                       JoinTopology::kCycle, JoinTopology::kClique,
                                       JoinTopology::kRandom};

std::string BuildWorkload(Database* db, JoinTopology topology, int n, double skew = 0.0) {
  JoinWorkloadSpec spec;
  spec.num_relations = n;
  spec.base_rows = 40;
  spec.growth = 1.7;
  spec.dim_rows = 15;
  spec.fk_skew = skew;
  Result<std::string> q = BuildJoinWorkload(db, topology, spec);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return q.ok() ? *q : "";
}

double PlanCost(Database* db, const std::string& query, JoinEnumAlgorithm algorithm,
                OptimizeInfo* info = nullptr) {
  db->options().optimizer.join.algorithm = algorithm;
  Result<PhysicalPtr> plan = db->PlanQuery(query, info);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.ok() ? (*plan)->est_cost().Total() : -1;
}

// Equal-cost plans of different shape accumulate their cost sums in
// different orders; compare with a tight relative tolerance, not bits.
void ExpectCostEqual(double a, double b, const std::string& label) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  EXPECT_NEAR(a, b, 1e-9 * scale) << label;
}

// The tentpole property: on every connected query graph up to 8 relations,
// DPccp finds a plan costing exactly what exhaustive subset DP finds, while
// never visiting more subsets.
TEST(JoinOrderTest, DpCcpCostMatchesDpBushyOnAllTopologies) {
  for (JoinTopology topology : kAllTopologies) {
    const int min_n = topology == JoinTopology::kCycle ? 3 : 2;
    for (int n = min_n; n <= 8; ++n) {
      Database db;
      std::string query = BuildWorkload(&db, topology, n);
      OptimizeInfo ccp_info, bushy_info;
      double ccp = PlanCost(&db, query, JoinEnumAlgorithm::kDpCcp, &ccp_info);
      double bushy = PlanCost(&db, query, JoinEnumAlgorithm::kDpBushy, &bushy_info);
      std::string label =
          std::string(JoinTopologyToString(topology)) + " n=" + std::to_string(n);
      ExpectCostEqual(ccp, bushy, label);
      EXPECT_EQ(ccp_info.enum_stats.strategy_used, JoinEnumAlgorithm::kDpCcp) << label;
      EXPECT_FALSE(ccp_info.enum_stats.budget_fallback) << label;
      EXPECT_GT(ccp_info.enum_stats.csg_cmp_pairs, 0u) << label;
      EXPECT_LE(ccp_info.enum_stats.subsets_visited, bushy_info.enum_stats.subsets_visited)
          << label;
    }
  }
}

// Zipf-skewed foreign keys change the statistics but not the parity
// property.
TEST(JoinOrderTest, DpCcpCostMatchesDpBushyUnderSkew) {
  for (JoinTopology topology : {JoinTopology::kChain, JoinTopology::kStar}) {
    Database db;
    std::string query = BuildWorkload(&db, topology, 5, /*skew=*/1.1);
    OptimizeInfo info;
    double ccp = PlanCost(&db, query, JoinEnumAlgorithm::kDpCcp, &info);
    double bushy = PlanCost(&db, query, JoinEnumAlgorithm::kDpBushy);
    ExpectCostEqual(ccp, bushy, JoinTopologyToString(topology));
    EXPECT_EQ(info.enum_stats.strategy_used, JoinEnumAlgorithm::kDpCcp);
  }
}

// A query graph in two components has no csg-cmp cover; the ladder must
// route to subset DP and match its plan.
TEST(JoinOrderTest, DisconnectedGraphRoutesToDpBushy) {
  Database db;
  BuildWorkload(&db, JoinTopology::kChain, 4);
  // r0-r1 and r2-r3 joined, no edge between the pairs.
  const std::string query =
      "SELECT count(*) FROM r0, r1, r2, r3 WHERE r0.fk = r1.id AND r2.fk = r3.id";
  OptimizeInfo info;
  double ccp = PlanCost(&db, query, JoinEnumAlgorithm::kDpCcp, &info);
  double bushy = PlanCost(&db, query, JoinEnumAlgorithm::kDpBushy);
  ExpectCostEqual(ccp, bushy, "disconnected");
  EXPECT_EQ(info.enum_stats.strategy_used, JoinEnumAlgorithm::kDpBushy);
  EXPECT_FALSE(info.enum_stats.budget_fallback);
  EXPECT_EQ(info.enum_stats.csg_cmp_pairs, 0u);

  db.options().optimizer.join.algorithm = JoinEnumAlgorithm::kDpCcp;
  QueryResult ccp_rows = tu::Sql(&db, query);
  db.options().optimizer.join.algorithm = JoinEnumAlgorithm::kDpBushy;
  QueryResult bushy_rows = tu::Sql(&db, query);
  EXPECT_EQ(ccp_rows.rows[0].At(0).AsInt(), bushy_rows.rows[0].At(0).AsInt());
}

// Single-relation statements never enter enumeration; kDpCcp must behave
// exactly like every other algorithm setting there.
TEST(JoinOrderTest, SingleRelationUnaffected) {
  Database db;
  tu::LoadEmpDept(&db, 100, 5);
  OptimizeInfo info;
  double ccp = PlanCost(&db, "SELECT * FROM emp WHERE id < 5", JoinEnumAlgorithm::kDpCcp, &info);
  double bushy = PlanCost(&db, "SELECT * FROM emp WHERE id < 5", JoinEnumAlgorithm::kDpBushy);
  ExpectCostEqual(ccp, bushy, "single relation");
  EXPECT_FALSE(info.enum_stats.enumerated);
  EXPECT_EQ(info.enum_stats.csg_cmp_pairs, 0u);
}

// With a budget too small for the pair count, the ladder falls back to
// greedy and still plans (and executes) correctly.
TEST(JoinOrderTest, TinyBudgetFallsBackToGreedy) {
  Database db;
  std::string query = BuildWorkload(&db, JoinTopology::kChain, 6);
  db.options().optimizer.join.dp_budget = 5;
  OptimizeInfo info;
  double ccp = PlanCost(&db, query, JoinEnumAlgorithm::kDpCcp, &info);
  EXPECT_TRUE(info.enum_stats.budget_fallback);
  EXPECT_EQ(info.enum_stats.strategy_used, JoinEnumAlgorithm::kGreedy);
  double greedy = PlanCost(&db, query, JoinEnumAlgorithm::kGreedy);
  ExpectCostEqual(ccp, greedy, "budget fallback");

  db.options().optimizer.join.algorithm = JoinEnumAlgorithm::kDpCcp;
  QueryResult fallback_rows = tu::Sql(&db, query);
  db.options().optimizer.join.dp_budget = 100000;
  QueryResult full_rows = tu::Sql(&db, query);
  EXPECT_EQ(fallback_rows.rows[0].At(0).AsInt(), full_rows.rows[0].At(0).AsInt());
}

// Satellite: subset DP now skips internally disconnected subsets up front
// on connected graphs instead of discovering emptiness split by split.
TEST(JoinOrderTest, DpBushySkipsDisconnectedSubsets) {
  Database db;
  std::string query = BuildWorkload(&db, JoinTopology::kChain, 5);
  OptimizeInfo info;
  PlanCost(&db, query, JoinEnumAlgorithm::kDpBushy, &info);
  // A 5-chain has 26 multi-relation subsets, only 10 of them connected.
  EXPECT_EQ(info.enum_stats.disconnected_subsets_skipped, 16u);
  EXPECT_EQ(info.enum_stats.subsets_visited, 26u);
}

// The chosen strategy and ladder decisions surface in the optimizer trace.
TEST(JoinOrderTest, StrategyAppearsInTrace) {
  Database db;
  std::string query = BuildWorkload(&db, JoinTopology::kChain, 4);
  db.options().optimizer.join.algorithm = JoinEnumAlgorithm::kDpCcp;
  db.set_trace_optimizer(true);
  tu::Sql(&db, query);
  const PlanTrace* trace = db.last_trace();
  ASSERT_NE(trace, nullptr);
  bool saw_strategy = false;
  for (const PlanTraceEvent& e : trace->events()) {
    if (e.phase == "strategy") {
      saw_strategy = true;
      EXPECT_EQ(e.candidate, "dpccp");
    }
  }
  EXPECT_TRUE(saw_strategy);
}

// Satellite: enumeration statistics flow into the global metrics registry.
TEST(JoinOrderTest, EnumStatsExportedAsMetrics) {
  const EngineMetrics& em = EngineMetrics::Get();
  Database db;
  std::string query = BuildWorkload(&db, JoinTopology::kChain, 5);

  uint64_t pairs0 = em.join_enum_csg_cmp_pairs->value();
  uint64_t subsets0 = em.join_enum_subsets_visited->value();
  uint64_t joins0 = em.join_enum_joins_costed->value();
  uint64_t dpccp0 =
      em.join_enum_strategy[static_cast<size_t>(JoinEnumAlgorithm::kDpCcp)]->value();
  PlanCost(&db, query, JoinEnumAlgorithm::kDpCcp);
  EXPECT_GT(em.join_enum_csg_cmp_pairs->value(), pairs0);
  EXPECT_GT(em.join_enum_subsets_visited->value(), subsets0);
  EXPECT_GT(em.join_enum_joins_costed->value(), joins0);
  EXPECT_EQ(em.join_enum_strategy[static_cast<size_t>(JoinEnumAlgorithm::kDpCcp)]->value(),
            dpccp0 + 1);

  uint64_t skips0 = em.join_enum_disconnected_skips->value();
  PlanCost(&db, query, JoinEnumAlgorithm::kDpBushy);
  EXPECT_GT(em.join_enum_disconnected_skips->value(), skips0);

  uint64_t fallbacks0 = em.join_enum_budget_fallbacks->value();
  uint64_t greedy0 =
      em.join_enum_strategy[static_cast<size_t>(JoinEnumAlgorithm::kGreedy)]->value();
  db.options().optimizer.join.dp_budget = 1;
  PlanCost(&db, query, JoinEnumAlgorithm::kDpCcp);
  EXPECT_EQ(em.join_enum_budget_fallbacks->value(), fallbacks0 + 1);
  EXPECT_EQ(em.join_enum_strategy[static_cast<size_t>(JoinEnumAlgorithm::kGreedy)]->value(),
            greedy0 + 1);

  // And the counters are visible through SQL introspection ('/' is the
  // character after '.', so the range is a prefix match).
  QueryResult r = tu::Sql(&db,
                          "SELECT count(*) FROM relopt_metrics() AS m "
                          "WHERE m.name >= 'relopt.optimizer.join_enum.' "
                          "AND m.name < 'relopt.optimizer.join_enum/'");
  EXPECT_GE(r.rows[0].At(0).AsInt(), 6);
}

// dp_budget participates in the plan-cache fingerprint: the same SQL under a
// different budget must not reuse the cached plan.
TEST(JoinOrderTest, DpBudgetInPlanCacheFingerprint) {
  OptimizerOptions a, b;
  b.join.dp_budget = 7;
  EXPECT_NE(PlanCacheKey("SELECT 1", a), PlanCacheKey("SELECT 1", b));
}

// Drift guard: the literals pinned in differential_queries.h are exactly
// what the builders generate under DifferentialJoinSpec.
TEST(JoinOrderTest, DifferentialCorpusMatchesBuilders) {
  struct {
    JoinTopology topology;
    const char* prefix;
    const char* expected;
  } cases[] = {{JoinTopology::kChain, "jw_c", tu::kJwChainQuery},
               {JoinTopology::kStar, "jw_s", tu::kJwStarQuery},
               {JoinTopology::kCycle, "jw_y", tu::kJwCycleQuery},
               {JoinTopology::kClique, "jw_q", tu::kJwCliqueQuery},
               {JoinTopology::kRandom, "jw_r", tu::kJwRandomQuery}};
  for (const auto& c : cases) {
    Database db;
    Result<std::string> q =
        BuildJoinWorkload(&db, c.topology, tu::DifferentialJoinSpec(c.prefix));
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_EQ(*q, c.expected) << JoinTopologyToString(c.topology);
  }
}

// End-to-end: every topology's generated query returns identical results
// under DPccp and under subset DP.
TEST(JoinOrderTest, GeneratedWorkloadsExecuteIdentically) {
  for (JoinTopology topology : kAllTopologies) {
    Database db;
    std::string query = BuildWorkload(&db, topology, 4);
    db.options().optimizer.join.algorithm = JoinEnumAlgorithm::kDpCcp;
    QueryResult ccp = tu::Sql(&db, query);
    db.options().optimizer.join.algorithm = JoinEnumAlgorithm::kDpBushy;
    QueryResult bushy = tu::Sql(&db, query);
    ASSERT_FALSE(ccp.rows.empty());
    EXPECT_EQ(ccp.rows[0].At(0).AsInt(), bushy.rows[0].At(0).AsInt())
        << JoinTopologyToString(topology);
  }
}

}  // namespace
}  // namespace relopt
