// Optimizer trace tests: the decision log records candidates, prune reasons,
// and the chosen plan, and survives the EXPLAIN TRACE round trip.
#include <gtest/gtest.h>

#include "optimizer/plan_trace.h"
#include "test_util.h"

namespace relopt {
namespace {

using tu::Sql;

void LoadFourWay(Database* db) {
  Sql(db, "CREATE TABLE a (id INT, v INT)");
  Sql(db, "CREATE TABLE b (id INT, a_id INT)");
  Sql(db, "CREATE TABLE c (id INT, b_id INT)");
  Sql(db, "CREATE TABLE d (id INT, c_id INT)");
  auto fill = [db](const std::string& table, int rows, int fk_mod) {
    std::string ins = "INSERT INTO " + table + " VALUES ";
    for (int i = 0; i < rows; ++i) {
      if (i > 0) ins += ", ";
      ins += "(" + std::to_string(i) + ", " + std::to_string(i % fk_mod) + ")";
    }
    Sql(db, ins);
  };
  fill("a", 40, 7);
  fill("b", 80, 40);
  fill("c", 160, 80);
  fill("d", 320, 160);
  Sql(db, "ANALYZE");
}

constexpr char kFourWayJoin[] =
    "SELECT a.v FROM a, b, c, d "
    "WHERE a.id = b.a_id AND b.id = c.b_id AND c.id = d.c_id";

TEST(PlanTraceTest, FourWayJoinRecordsPrunedCandidatesWithReasons) {
  Database db;
  LoadFourWay(&db);
  db.set_trace_optimizer(true);
  Sql(&db, kFourWayJoin);

  const PlanTrace* trace = db.last_trace();
  ASSERT_NE(trace, nullptr);
  EXPECT_GE(trace->CountKept(), 4u);    // at least one kept path per relation
  EXPECT_GE(trace->CountPruned(), 1u);  // DP must discard dominated plans
  for (const PlanTraceEvent& e : trace->events()) {
    if (e.action == "pruned") {
      EXPECT_FALSE(e.reason.empty()) << e.candidate;
    } else {
      EXPECT_TRUE(e.action == "kept" || e.action == "chosen") << e.action;
    }
  }
}

TEST(PlanTraceTest, TraceEndsWithOneChosenPlan) {
  Database db;
  LoadFourWay(&db);
  db.set_trace_optimizer(true);
  Sql(&db, kFourWayJoin);

  const PlanTrace* trace = db.last_trace();
  ASSERT_NE(trace, nullptr);
  size_t chosen = 0;
  for (const PlanTraceEvent& e : trace->events()) {
    if (e.action == "chosen") {
      ++chosen;
      EXPECT_EQ(e.phase, "final");
      EXPECT_EQ(e.target, "{a,b,c,d}");
    }
  }
  EXPECT_EQ(chosen, 1u);
}

TEST(PlanTraceTest, JoinPhaseCandidatesNameBothSides) {
  Database db;
  LoadFourWay(&db);
  db.set_trace_optimizer(true);
  Sql(&db, kFourWayJoin);

  const PlanTrace* trace = db.last_trace();
  ASSERT_NE(trace, nullptr);
  bool saw_join = false;
  for (const PlanTraceEvent& e : trace->events()) {
    if (e.phase != "join") continue;
    saw_join = true;
    EXPECT_NE(e.candidate.find(" x "), std::string::npos) << e.candidate;
    EXPECT_GE(e.total_cost, 0.0);
  }
  EXPECT_TRUE(saw_join);
}

TEST(PlanTraceTest, JsonDumpListsEvents) {
  Database db;
  LoadFourWay(&db);
  db.set_trace_optimizer(true);
  Sql(&db, kFourWayJoin);

  const PlanTrace* trace = db.last_trace();
  ASSERT_NE(trace, nullptr);
  std::string json = trace->ToJson();
  EXPECT_EQ(json.find("{\"events\":["), 0u);
  EXPECT_NE(json.find("\"action\":\"pruned\""), std::string::npos);
  EXPECT_NE(json.find("\"action\":\"chosen\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\":"), std::string::npos);
}

TEST(PlanTraceTest, ExplainTraceStatementAppendsDecisionLog) {
  Database db;
  LoadFourWay(&db);
  QueryResult r = Sql(&db, std::string("EXPLAIN TRACE ") + kFourWayJoin);
  ASSERT_FALSE(r.rows.empty());
  bool saw_header = false, saw_pruned = false;
  for (const Tuple& row : r.rows) {
    std::string line = row.At(0).AsString();
    if (line.find("optimizer trace") != std::string::npos) saw_header = true;
    if (line.find("pruned") != std::string::npos) saw_pruned = true;
  }
  EXPECT_TRUE(saw_header);
  EXPECT_TRUE(saw_pruned);
}

TEST(PlanTraceTest, TracingOffRecordsNothingNew) {
  Database db;
  LoadFourWay(&db);
  Sql(&db, kFourWayJoin);
  EXPECT_EQ(db.last_trace(), nullptr);
}

}  // namespace
}  // namespace relopt
