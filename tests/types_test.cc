#include <gtest/gtest.h>

#include "types/schema.h"
#include "types/tuple.h"
#include "types/type.h"
#include "types/value.h"

namespace relopt {
namespace {

// ------------------------------------------------------------------ types --

TEST(TypeTest, ParseTypeNames) {
  TypeId t;
  EXPECT_TRUE(ParseTypeName("INT", &t));
  EXPECT_EQ(t, TypeId::kInt64);
  EXPECT_TRUE(ParseTypeName("double", &t));
  EXPECT_EQ(t, TypeId::kDouble);
  EXPECT_TRUE(ParseTypeName("Text", &t));
  EXPECT_EQ(t, TypeId::kString);
  EXPECT_TRUE(ParseTypeName("BOOLEAN", &t));
  EXPECT_EQ(t, TypeId::kBool);
  EXPECT_FALSE(ParseTypeName("blob", &t));
}

TEST(TypeTest, Comparability) {
  EXPECT_TRUE(AreComparable(TypeId::kInt64, TypeId::kDouble));
  EXPECT_TRUE(AreComparable(TypeId::kString, TypeId::kString));
  EXPECT_FALSE(AreComparable(TypeId::kString, TypeId::kInt64));
  EXPECT_FALSE(AreComparable(TypeId::kBool, TypeId::kInt64));
}

// ----------------------------------------------------------------- values --

TEST(ValueTest, ConstructorsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(5).AsInt(), 5);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("x").AsString(), "x");
  EXPECT_TRUE(Value::Bool(true).AsBool());
}

TEST(ValueTest, CompareSameType) {
  EXPECT_EQ(*Value::Int(1).Compare(Value::Int(2)), -1);
  EXPECT_EQ(*Value::Int(2).Compare(Value::Int(2)), 0);
  EXPECT_EQ(*Value::String("b").Compare(Value::String("a")), 1);
}

TEST(ValueTest, CompareMixedNumeric) {
  EXPECT_EQ(*Value::Int(2).Compare(Value::Double(2.5)), -1);
  EXPECT_EQ(*Value::Double(2.0).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, CompareIncompatibleTypesIsError) {
  Result<int> r = Value::Int(1).Compare(Value::String("a"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST(ValueTest, NullsSortFirst) {
  EXPECT_EQ(*Value::Null().Compare(Value::Int(-100)), -1);
  EXPECT_EQ(*Value::Int(0).Compare(Value::Null()), 1);
  EXPECT_EQ(*Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, HashConsistentForEqualNumerics) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Double(1.25).ToString(), "1.25");
  EXPECT_EQ(Value::String("o'x").ToString(), "'o''x'");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
}

TEST(ValueTest, CastNumeric) {
  EXPECT_EQ(Value::Double(3.9).CastTo(TypeId::kInt64)->AsInt(), 3);
  EXPECT_DOUBLE_EQ(Value::Int(3).CastTo(TypeId::kDouble)->AsDouble(), 3.0);
}

TEST(ValueTest, CastStringToNumber) {
  EXPECT_EQ(Value::String("42").CastTo(TypeId::kInt64)->AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::String("2.5").CastTo(TypeId::kDouble)->AsDouble(), 2.5);
  EXPECT_FALSE(Value::String("xyz").CastTo(TypeId::kInt64).ok());
}

TEST(ValueTest, CastNullKeepsNullWithTargetType) {
  Result<Value> v = Value::Null(TypeId::kInt64).CastTo(TypeId::kString);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
  EXPECT_EQ(v->type(), TypeId::kString);
}

TEST(ValueTest, SerializeRoundTripAllTypes) {
  std::vector<Value> values = {Value::Null(TypeId::kString),
                               Value::Bool(true),
                               Value::Int(-123456789),
                               Value::Double(3.14159),
                               Value::String("hello world"),
                               Value::String(std::string("a\0b", 3))};
  for (const Value& v : values) {
    std::string buf;
    v.SerializeTo(&buf);
    size_t offset = 0;
    Result<Value> back = Value::DeserializeFrom(buf, &offset);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(offset, buf.size());
    EXPECT_EQ(back->is_null(), v.is_null());
    if (!v.is_null()) EXPECT_TRUE(back->Equals(v));
  }
}

TEST(ValueTest, DeserializePastEndFails) {
  std::string buf;
  Value::Int(1).SerializeTo(&buf);
  buf.resize(buf.size() - 2);
  size_t offset = 0;
  EXPECT_FALSE(Value::DeserializeFrom(buf, &offset).ok());
}

// ----------------------------------------------------------------- schema --

Schema TwoTableSchema() {
  Schema s;
  s.AddColumn(Column("id", TypeId::kInt64, "t"));
  s.AddColumn(Column("name", TypeId::kString, "t"));
  s.AddColumn(Column("id", TypeId::kInt64, "u"));
  return s;
}

TEST(SchemaTest, QualifiedLookup) {
  Schema s = TwoTableSchema();
  EXPECT_EQ(*s.IndexOf("t", "id"), 0u);
  EXPECT_EQ(*s.IndexOf("u", "id"), 2u);
  EXPECT_EQ(*s.IndexOf("name"), 1u);
}

TEST(SchemaTest, UnqualifiedAmbiguousIsError) {
  Schema s = TwoTableSchema();
  Result<size_t> r = s.IndexOf("id");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST(SchemaTest, MissingColumnIsError) {
  Schema s = TwoTableSchema();
  EXPECT_FALSE(s.IndexOf("zzz").ok());
  EXPECT_FALSE(s.IndexOf("v", "id").ok());
}

TEST(SchemaTest, LookupIsCaseInsensitive) {
  Schema s = TwoTableSchema();
  EXPECT_EQ(*s.IndexOf("T", "ID"), 0u);
  EXPECT_EQ(*s.IndexOf("NAME"), 1u);
}

TEST(SchemaTest, ConcatAndQualify) {
  Schema a;
  a.AddColumn(Column("x", TypeId::kInt64, "a"));
  Schema b;
  b.AddColumn(Column("y", TypeId::kString, "b"));
  Schema c = Schema::Concat(a, b);
  EXPECT_EQ(c.NumColumns(), 2u);
  EXPECT_EQ(c.ColumnAt(1).QualifiedName(), "b.y");

  Schema q = c.WithQualifier("z");
  EXPECT_EQ(q.ColumnAt(0).QualifiedName(), "z.x");
  EXPECT_EQ(q.ColumnAt(1).QualifiedName(), "z.y");
}

TEST(SchemaTest, Equals) {
  Schema a = TwoTableSchema();
  Schema b = TwoTableSchema();
  EXPECT_TRUE(a.Equals(b));
  b.AddColumn(Column("extra", TypeId::kBool));
  EXPECT_FALSE(a.Equals(b));
}

// ----------------------------------------------------------------- tuples --

TEST(TupleTest, SerializeRoundTrip) {
  Tuple t({Value::Int(1), Value::String("ab"), Value::Null(), Value::Double(0.5)});
  std::string bytes = t.Serialize();
  Result<Tuple> back = Tuple::Deserialize(bytes, 4);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
}

TEST(TupleTest, DeserializeWrongCountFails) {
  Tuple t({Value::Int(1), Value::Int(2)});
  EXPECT_FALSE(Tuple::Deserialize(t.Serialize(), 3).ok());
  EXPECT_FALSE(Tuple::Deserialize(t.Serialize(), 1).ok());  // trailing bytes
}

TEST(TupleTest, Concat) {
  Tuple a({Value::Int(1)});
  Tuple b({Value::String("x"), Value::Bool(true)});
  Tuple c = Tuple::Concat(a, b);
  EXPECT_EQ(c.NumValues(), 3u);
  EXPECT_EQ(c.At(2).AsBool(), true);
}

TEST(TupleTest, CompareTuplesMultiKeyWithDirections) {
  Tuple a({Value::Int(1), Value::String("b")});
  Tuple b({Value::Int(1), Value::String("a")});
  // Ascending on both: a > b due to second key.
  EXPECT_GT(*CompareTuples(a, b, {0, 1}, {false, false}), 0);
  // Descending second key flips it.
  EXPECT_LT(*CompareTuples(a, b, {0, 1}, {false, true}), 0);
}

TEST(TupleTest, ToString) {
  Tuple t({Value::Int(1), Value::Null()});
  EXPECT_EQ(t.ToString(), "(1, NULL)");
}

}  // namespace
}  // namespace relopt
