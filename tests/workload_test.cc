// Workload generator tests: distributions, determinism, topology builders.
#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/generator.h"
#include "workload/queries.h"

namespace relopt {
namespace {

TEST(GeneratorTest, RowCountAndSchema) {
  Database db;
  TableSpec spec;
  spec.name = "g";
  spec.num_rows = 1234;
  spec.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("u", 5, 9)};
  ASSERT_TRUE(GenerateTable(&db, spec).ok());
  QueryResult r = tu::Sql(&db, "SELECT count(*), min(u), max(u), min(id), max(id) FROM g");
  EXPECT_EQ(r.rows[0].At(0).AsInt(), 1234);
  EXPECT_GE(r.rows[0].At(1).AsInt(), 5);
  EXPECT_LE(r.rows[0].At(2).AsInt(), 9);
  EXPECT_EQ(r.rows[0].At(3).AsInt(), 0);
  EXPECT_EQ(r.rows[0].At(4).AsInt(), 1233);
}

TEST(GeneratorTest, AnalyzeRanWhenRequested) {
  Database db;
  TableSpec spec;
  spec.name = "g";
  spec.num_rows = 100;
  spec.columns = {ColumnSpec::Serial("id")};
  spec.analyze = true;
  ASSERT_TRUE(GenerateTable(&db, spec).ok());
  EXPECT_TRUE((*db.catalog()->GetTable("g"))->has_stats());

  TableSpec no_stats = spec;
  no_stats.name = "g2";
  no_stats.analyze = false;
  ASSERT_TRUE(GenerateTable(&db, no_stats).ok());
  EXPECT_FALSE((*db.catalog()->GetTable("g2"))->has_stats());
}

TEST(GeneratorTest, DeterministicAcrossRuns) {
  auto load = [](Database* db) {
    TableSpec spec;
    spec.name = "g";
    spec.num_rows = 500;
    spec.seed = 99;
    spec.columns = {ColumnSpec::Uniform("u", 0, 1000), ColumnSpec::Zipf("z", 50, 1.0)};
    EXPECT_TRUE(GenerateTable(db, spec).ok());
    return tu::Sql(db, "SELECT sum(u), sum(z) FROM g");
  };
  Database db1, db2;
  QueryResult r1 = load(&db1);
  QueryResult r2 = load(&db2);
  EXPECT_EQ(r1.rows[0].At(0).AsInt(), r2.rows[0].At(0).AsInt());
  EXPECT_EQ(r1.rows[0].At(1).AsInt(), r2.rows[0].At(1).AsInt());
}

TEST(GeneratorTest, SortByLoadsPhysicallySorted) {
  Database db;
  TableSpec spec;
  spec.name = "g";
  spec.num_rows = 300;
  spec.columns = {ColumnSpec::Uniform("k", 0, 100), ColumnSpec::Serial("id")};
  spec.sort_by = "k";
  spec.analyze = false;
  ASSERT_TRUE(GenerateTable(&db, spec).ok());
  // Heap scan order == physical order: k must be non-decreasing.
  QueryResult r = tu::Sql(&db, "SELECT k FROM g");
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_LE(r.rows[i - 1].At(0).AsInt(), r.rows[i].At(0).AsInt());
  }
}

TEST(GeneratorTest, NullFractionRespected) {
  Database db;
  TableSpec spec;
  spec.name = "g";
  spec.num_rows = 2000;
  ColumnSpec col = ColumnSpec::Uniform("x", 0, 9);
  col.null_fraction = 0.25;
  spec.columns = {col};
  ASSERT_TRUE(GenerateTable(&db, spec).ok());
  QueryResult r = tu::Sql(&db, "SELECT count(*) FROM g WHERE x IS NULL");
  EXPECT_NEAR(static_cast<double>(r.rows[0].At(0).AsInt()), 500.0, 60.0);
}

TEST(GeneratorTest, ZipfSkewShowsInCounts) {
  Database db;
  TableSpec spec;
  spec.name = "g";
  spec.num_rows = 5000;
  spec.columns = {ColumnSpec::Zipf("z", 100, 1.1)};
  ASSERT_TRUE(GenerateTable(&db, spec).ok());
  QueryResult head = tu::Sql(&db, "SELECT count(*) FROM g WHERE z = 1");
  QueryResult tail = tu::Sql(&db, "SELECT count(*) FROM g WHERE z = 90");
  EXPECT_GT(head.rows[0].At(0).AsInt(), 10 * std::max<int64_t>(1, tail.rows[0].At(0).AsInt()));
}

TEST(QueriesTest, ChainWorkloadBuildsAndRuns) {
  Database db;
  JoinWorkloadSpec spec;
  spec.num_relations = 3;
  spec.base_rows = 100;
  Result<std::string> q = BuildChainWorkload(&db, spec);
  ASSERT_TRUE(q.ok());
  EXPECT_NE(q->find("r0.fk = r1.id"), std::string::npos);
  QueryResult r = tu::Sql(&db, *q);
  EXPECT_GT(r.rows[0].At(0).AsInt(), 0);
}

TEST(QueriesTest, StarWorkloadBuildsAndRuns) {
  Database db;
  JoinWorkloadSpec spec;
  spec.num_relations = 4;  // fact + 3 dims
  spec.base_rows = 200;
  spec.dim_rows = 50;
  Result<std::string> q = BuildStarWorkload(&db, spec);
  ASSERT_TRUE(q.ok());
  QueryResult r = tu::Sql(&db, *q);
  // Every fact row matches exactly one row per dimension.
  EXPECT_EQ(r.rows[0].At(0).AsInt(), 200);
}

TEST(QueriesTest, CliqueWorkloadBuildsAndRuns) {
  Database db;
  JoinWorkloadSpec spec;
  spec.num_relations = 3;
  spec.base_rows = 60;
  Result<std::string> q = BuildCliqueWorkload(&db, spec);
  ASSERT_TRUE(q.ok());
  // All pairwise predicates present: 3 choose 2 = 3 "=" signs.
  size_t count = 0;
  for (size_t pos = q->find(".k ="); pos != std::string::npos; pos = q->find(".k =", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
  QueryResult r = tu::Sql(&db, *q);
  EXPECT_GE(r.rows[0].At(0).AsInt(), 0);
}

TEST(QueriesTest, WithIndexesCreatesThem) {
  Database db;
  JoinWorkloadSpec spec;
  spec.num_relations = 2;
  spec.base_rows = 50;
  spec.with_indexes = true;
  ASSERT_TRUE(BuildChainWorkload(&db, spec).ok());
  EXPECT_TRUE(db.catalog()->GetIndex("idx_r0_id").ok());
  EXPECT_TRUE(db.catalog()->GetIndex("idx_r1_id").ok());
}

}  // namespace
}  // namespace relopt
