// Selectivity estimation: System-R defaults vs histogram mode.
#include <gtest/gtest.h>

#include "optimizer/selectivity.h"
#include "parser/parser.h"
#include "test_util.h"
#include "workload/generator.h"

namespace relopt {
namespace {

class SelectivityTest : public ::testing::Test {
 protected:
  SelectivityTest() {
    // t: 10000 rows, id serial (ndv 10000), k uniform in [0, 99] (ndv ~100),
    // z Zipf-skewed over 100 values.
    TableSpec spec;
    spec.name = "t";
    spec.num_rows = 10000;
    spec.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("k", 0, 99),
                    ColumnSpec::Zipf("z", 100, 1.1)};
    EXPECT_TRUE(GenerateTable(&db_, spec).ok());
    TableSpec other;
    other.name = "u";
    other.num_rows = 500;
    other.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("k", 0, 9)};
    EXPECT_TRUE(GenerateTable(&db_, other).ok());

    aliases_["t"] = *db_.catalog()->GetTable("t");
    aliases_["u"] = *db_.catalog()->GetTable("u");
  }

  /// Parses a WHERE expression, binds it against t (as the engine would),
  /// and estimates its selectivity.
  double Estimate(const std::string& pred_sql, StatsMode mode) {
    Result<StatementPtr> stmt = ParseStatement("SELECT 1 FROM t WHERE " + pred_sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    auto* select = static_cast<SelectStmt*>(stmt->get());
    TableInfo* t = *db_.catalog()->GetTable("t");
    Status bind = select->where->Bind(t->schema().WithQualifier("t"));
    EXPECT_TRUE(bind.ok()) << bind.ToString();
    SelectivityEstimator est(&aliases_, mode);
    return est.EstimatePredicate(*select->where);
  }

  Database db_;
  AliasMap aliases_;
};

TEST_F(SelectivityTest, EqualityUsesNdv) {
  double sel = Estimate("k = 50", StatsMode::kSystemR);
  EXPECT_NEAR(sel, 0.01, 0.003);  // ndv ~100
}

TEST_F(SelectivityTest, EqualityOutsideRangeFloorsAtOneRow) {
  // Out-of-range constants used to estimate exactly 0, which collapses whole
  // AND-chains and join cardinalities to zero-cost degenerate plans. The
  // floor is one expected row: 1/10000.
  EXPECT_DOUBLE_EQ(Estimate("k = 500", StatsMode::kSystemR), 1.0 / 10000);
  EXPECT_DOUBLE_EQ(Estimate("k = -1", StatsMode::kSystemR), 1.0 / 10000);
}

TEST_F(SelectivityTest, SargableSelectivityNeverZero) {
  // Every sargable estimate is floored at one expected row, in every mode
  // that has stats to estimate with.
  for (StatsMode mode : {StatsMode::kSystemR, StatsMode::kHistogram}) {
    for (const char* pred : {"k = 12345", "k < -50", "k > 1000", "id = 999999"}) {
      EXPECT_GE(Estimate(pred, mode), 1.0 / 10000) << pred;
    }
  }
}

TEST_F(SelectivityTest, RangeInterpolatesMinMax) {
  EXPECT_NEAR(Estimate("k < 50", StatsMode::kSystemR), 0.5, 0.05);
  EXPECT_NEAR(Estimate("k >= 75", StatsMode::kSystemR), 0.25, 0.05);
  EXPECT_NEAR(Estimate("id < 1000", StatsMode::kSystemR), 0.1, 0.02);
}

TEST_F(SelectivityTest, NoStatsModeUsesMagicConstants) {
  EXPECT_DOUBLE_EQ(Estimate("k = 50", StatsMode::kNoStats), SelectivityEstimator::kDefaultEq);
  EXPECT_DOUBLE_EQ(Estimate("k < 50", StatsMode::kNoStats), SelectivityEstimator::kDefaultRange);
}

TEST_F(SelectivityTest, ConjunctionMultiplies) {
  double sel = Estimate("k = 50 AND id < 1000", StatsMode::kSystemR);
  EXPECT_NEAR(sel, 0.01 * 0.1, 0.005);
}

TEST_F(SelectivityTest, DisjunctionInclusionExclusion) {
  double a = Estimate("k < 50", StatsMode::kSystemR);
  double b = Estimate("k >= 75", StatsMode::kSystemR);
  double both = Estimate("k < 50 OR k >= 75", StatsMode::kSystemR);
  EXPECT_NEAR(both, a + b - a * b, 0.01);
}

TEST_F(SelectivityTest, NotComplements) {
  double sel = Estimate("NOT (k < 50)", StatsMode::kSystemR);
  EXPECT_NEAR(sel, 0.5, 0.05);
}

TEST_F(SelectivityTest, NeComplementsEq) {
  // k has no NULLs, so != is the exact complement of = (within 1e-9).
  double eq = Estimate("k = 50", StatsMode::kSystemR);
  double ne = Estimate("k <> 50", StatsMode::kSystemR);
  EXPECT_NEAR(eq + ne, 1.0, 1e-9);
}

TEST_F(SelectivityTest, NeExcludesNulls) {
  // NULLs satisfy neither `=` nor `!=`. With 30% NULLs, `x != c` selects the
  // non-NULL fraction minus the equality fraction — NOT 1 - eq, which would
  // wrongly count the NULL rows as matching.
  TableSpec spec;
  spec.name = "nn";
  spec.num_rows = 1000;
  ColumnSpec col = ColumnSpec::Uniform("x", 0, 9);
  col.null_fraction = 0.3;
  spec.columns = {col};
  ASSERT_TRUE(GenerateTable(&db_, spec).ok());
  aliases_["nn"] = *db_.catalog()->GetTable("nn");

  Result<StatementPtr> stmt = ParseStatement("SELECT 1 FROM nn WHERE x <> 5");
  ASSERT_TRUE(stmt.ok());
  auto* select = static_cast<SelectStmt*>(stmt->get());
  TableInfo* nn = *db_.catalog()->GetTable("nn");
  ASSERT_TRUE(select->where->Bind(nn->schema().WithQualifier("nn")).ok());
  SelectivityEstimator est(&aliases_, StatsMode::kSystemR);
  double ne = est.EstimatePredicate(*select->where);

  // Ground truth from the engine itself.
  QueryResult r = tu::Sql(&db_, "SELECT count(*) FROM nn WHERE x <> 5");
  double truth = static_cast<double>(r.rows[0].At(0).AsInt()) / 1000.0;
  EXPECT_NEAR(ne, truth, 0.05);
  // And decisively below the NULL-blind 1 - eq ~ 0.97.
  EXPECT_LT(ne, 0.8);
}

TEST_F(SelectivityTest, HistogramBeatsUniformOnSkew) {
  // True frequency of the Zipf head (rank 1).
  QueryResult r = tu::Sql(&db_, "SELECT count(*) FROM t WHERE z = 1");
  double truth = static_cast<double>(r.rows[0].At(0).AsInt()) / 10000.0;
  ASSERT_GT(truth, 0.0);

  double hist = Estimate("z = 1", StatsMode::kHistogram);
  double uniform = Estimate("z = 1", StatsMode::kSystemR);

  double hist_err = std::max(hist / truth, truth / hist);
  double uniform_err = std::max(uniform / truth, truth / uniform);
  EXPECT_LT(hist_err, uniform_err);  // histograms strictly better here
  EXPECT_LT(hist_err, 2.0);          // and within 2x of truth
  EXPECT_GT(uniform_err, 5.0);       // uniform is way off on the head
}

TEST_F(SelectivityTest, EquiJoinUsesMaxNdv) {
  SelectivityEstimator est(&aliases_, StatsMode::kSystemR);
  // t.k ndv ~100, u.k ndv ~10 -> 1/100.
  double sel = est.EstimateEquiJoin("t", "k", "u", "k");
  EXPECT_NEAR(sel, 0.01, 0.004);
  // id columns: ndv 10000 vs 500 -> 1/10000.
  EXPECT_NEAR(est.EstimateEquiJoin("t", "id", "u", "id"), 1.0 / 10000, 1e-5);
}

TEST_F(SelectivityTest, EquiJoinScalesByNonNullFractions) {
  // Join keys that are NULL never match: with 50% NULLs on one side the join
  // selectivity must halve relative to the all-non-NULL containment estimate.
  TableSpec spec;
  spec.name = "half";
  spec.num_rows = 1000;
  ColumnSpec col = ColumnSpec::Uniform("k", 0, 9);
  col.null_fraction = 0.5;
  spec.columns = {col};
  ASSERT_TRUE(GenerateTable(&db_, spec).ok());
  aliases_["half"] = *db_.catalog()->GetTable("half");

  SelectivityEstimator est(&aliases_, StatsMode::kSystemR);
  double with_nulls = est.EstimateEquiJoin("half", "k", "u", "k");
  // Analytical value: nn_half * nn_u / max(ndv) = 0.5 * 1.0 / 10.
  EXPECT_NEAR(with_nulls, 0.5 / 10.0, 0.02);
  // Strictly below the all-non-NULL containment estimate for the same pair.
  EXPECT_LT(with_nulls, 1.0 / 10.0 - 0.02);
}

TEST_F(SelectivityTest, ColumnNdv) {
  SelectivityEstimator est(&aliases_, StatsMode::kSystemR);
  EXPECT_NEAR(est.ColumnNdv("t", "id"), 10000, 1);
  EXPECT_NEAR(est.ColumnNdv("t", "k"), 100, 5);
}

TEST_F(SelectivityTest, IsNullUsesNullFraction) {
  TableSpec spec;
  spec.name = "n";
  spec.num_rows = 1000;
  ColumnSpec col = ColumnSpec::Uniform("x", 0, 9);
  col.null_fraction = 0.3;
  spec.columns = {col};
  ASSERT_TRUE(GenerateTable(&db_, spec).ok());
  aliases_["n"] = *db_.catalog()->GetTable("n");

  Result<StatementPtr> stmt = ParseStatement("SELECT 1 FROM n WHERE x IS NULL");
  auto* select = static_cast<SelectStmt*>(stmt->get());
  SelectivityEstimator est(&aliases_, StatsMode::kSystemR);
  EXPECT_NEAR(est.EstimatePredicate(*select->where), 0.3, 0.05);

  Result<StatementPtr> stmt2 = ParseStatement("SELECT 1 FROM n WHERE x IS NOT NULL");
  auto* select2 = static_cast<SelectStmt*>(stmt2->get());
  EXPECT_NEAR(est.EstimatePredicate(*select2->where), 0.7, 0.05);
}

TEST_F(SelectivityTest, UnknownShapesDefault) {
  double sel = Estimate("k + id < 500", StatsMode::kSystemR);
  EXPECT_DOUBLE_EQ(sel, SelectivityEstimator::kDefaultRange);
}

TEST_F(SelectivityTest, ConstantPredicates) {
  EXPECT_DOUBLE_EQ(Estimate("true", StatsMode::kSystemR), 1.0);
  EXPECT_DOUBLE_EQ(Estimate("false", StatsMode::kSystemR), 0.0);
}

TEST_F(SelectivityTest, GroupCountUsesColumnNdv) {
  std::vector<ExprPtr> group_by;
  group_by.push_back(std::make_unique<ColumnRefExpr>("t", "k"));
  SelectivityEstimator est(&aliases_, StatsMode::kSystemR);
  EXPECT_NEAR(est.EstimateGroupCount(group_by, 10000.0), 100.0, 5.0);  // k ndv ~100
}

TEST_F(SelectivityTest, GroupCountScalarAggregateIsOneGroup) {
  SelectivityEstimator est(&aliases_, StatsMode::kHistogram);
  EXPECT_DOUBLE_EQ(est.EstimateGroupCount({}, 10000.0), 1.0);
}

TEST_F(SelectivityTest, GroupCountMultiColumnProductCappedByInput) {
  std::vector<ExprPtr> group_by;
  group_by.push_back(std::make_unique<ColumnRefExpr>("t", "id"));
  group_by.push_back(std::make_unique<ColumnRefExpr>("t", "k"));
  SelectivityEstimator est(&aliases_, StatsMode::kSystemR);
  // id alone is unique per row; the independence product must clamp to input.
  EXPECT_DOUBLE_EQ(est.EstimateGroupCount(group_by, 10000.0), 10000.0);
}

TEST_F(SelectivityTest, GroupCountAddsNullGroup) {
  tu::Sql(&db_, "CREATE TABLE gn (a INT, b INT)");
  tu::Sql(&db_, "INSERT INTO gn VALUES (1, 1), (2, 1), (3, NULL), (4, NULL)");
  tu::Sql(&db_, "ANALYZE");
  aliases_["gn"] = *db_.catalog()->GetTable("gn");
  std::vector<ExprPtr> group_by;
  group_by.push_back(std::make_unique<ColumnRefExpr>("gn", "b"));
  SelectivityEstimator est(&aliases_, StatsMode::kSystemR);
  // One non-null distinct value plus the NULL group.
  EXPECT_DOUBLE_EQ(est.EstimateGroupCount(group_by, 4.0), 2.0);
}

TEST_F(SelectivityTest, GroupCountNonColumnExprUsesDefault) {
  std::vector<ExprPtr> group_by;
  group_by.push_back(std::make_unique<LiteralExpr>(Value::Int(7)));
  SelectivityEstimator est(&aliases_, StatsMode::kSystemR);
  EXPECT_DOUBLE_EQ(est.EstimateGroupCount(group_by, 10000.0),
                   SelectivityEstimator::kDefaultExprNdv);
}

TEST_F(SelectivityTest, GroupCountHistogramModeUsesBucketNdvs) {
  std::vector<ExprPtr> group_by;
  group_by.push_back(std::make_unique<ColumnRefExpr>("t", "z"));
  SelectivityEstimator hist(&aliases_, StatsMode::kHistogram);
  SelectivityEstimator sysr(&aliases_, StatsMode::kSystemR);
  // Bucket distinct counts sum to the column NDV, so both modes land near
  // the true distinct count; histogram mode must stay a sane group count.
  double h = hist.EstimateGroupCount(group_by, 10000.0);
  double s = sysr.EstimateGroupCount(group_by, 10000.0);
  EXPECT_GE(h, 1.0);
  EXPECT_LE(h, 10000.0);
  EXPECT_NEAR(h, s, s);  // within 2x of the NDV-based estimate
}

}  // namespace
}  // namespace relopt
