// Feedback-on-vs-off differential harness: cardinality feedback may only ever
// change PLANS, never RESULTS. Every corpus query must return the same bag of
// rows with the store cold, warm (second run, observed cardinalities active),
// and off — across row/batch drive modes and parallelism 1/2/4/8 — and the
// exact page-I/O accounting identity must hold for feedback-driven plans too.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "differential_queries.h"
#include "exec/plan_profile.h"
#include "test_util.h"
#include "util/metrics.h"

namespace relopt {
namespace {

using tu::kDifferentialQueries;
using tu::Sql;

std::vector<std::string> Canon(const QueryResult& r) {
  std::vector<std::string> rows;
  for (const Tuple& t : r.rows) rows.push_back(t.ToString());
  std::sort(rows.begin(), rows.end());
  return rows;
}

class FeedbackDifferentialTest : public ::testing::TestWithParam<int> {
 protected:
  FeedbackDifferentialTest() {
    tu::LoadDifferentialFixture(&baseline_);
    tu::LoadDifferentialFixture(&feedback_);
    feedback_.set_cardinality_feedback(true);
  }

  Database baseline_;   // feedback off: pure statistical estimates
  Database feedback_;   // feedback on: harvested actuals override estimates
};

TEST_P(FeedbackDifferentialTest, ResultsAgreeColdAndWarm) {
  const int parallelism = GetParam();
  baseline_.set_parallelism(parallelism);
  feedback_.set_parallelism(parallelism);
  for (bool vectorized : {false, true}) {
    baseline_.set_vectorized(vectorized);
    feedback_.set_vectorized(vectorized);
    for (const char* q : kDifferentialQueries) {
      const std::string mode = std::string(q) + " @ parallelism " +
                               std::to_string(parallelism) +
                               (vectorized ? " vectorized" : " row");
      std::vector<std::string> expected = Canon(Sql(&baseline_, q));
      // Cold: the store may harvest but has nothing (relevant) to apply yet.
      EXPECT_EQ(Canon(Sql(&feedback_, q)), expected) << mode << " (cold)";
      // Warm: this optimization consults the actuals the cold run recorded.
      EXPECT_EQ(Canon(Sql(&feedback_, q)), expected) << mode << " (warm)";
    }
  }
  // The corpus actually populated the store: the warm runs were not vacuous.
  EXPECT_GT(feedback_.feedback()->size(), 0u);
}

TEST_P(FeedbackDifferentialTest, PageIoAccountingStaysExact) {
  // Same identity introspection_test checks, but with feedback-driven plans:
  // the global registry delta, the per-statement counters, and the summed
  // EXPLAIN ANALYZE attribution must agree exactly.
  const int parallelism = GetParam();
  const EngineMetrics& em = EngineMetrics::Get();
  feedback_.set_parallelism(parallelism);
  for (const char* q : kDifferentialQueries) {
    const std::string mode =
        std::string(q) + " @ parallelism " + std::to_string(parallelism);
    const uint64_t reads_before = em.disk_page_reads->value();
    const uint64_t writes_before = em.disk_page_writes->value();
    Sql(&feedback_, q);
    const uint64_t reads_delta = em.disk_page_reads->value() - reads_before;
    const uint64_t writes_delta = em.disk_page_writes->value() - writes_before;

    const ExecutionMetrics& m = feedback_.last_metrics();
    EXPECT_EQ(reads_delta, m.io.page_reads) << mode;
    EXPECT_EQ(writes_delta, m.io.page_writes) << mode;
    ASSERT_TRUE(feedback_.last_profile().valid) << mode;
    EXPECT_EQ(feedback_.last_profile().TotalPageReads(), m.io.page_reads) << mode;
    EXPECT_EQ(feedback_.last_profile().TotalPageWrites(), m.io.page_writes) << mode;
  }
}

INSTANTIATE_TEST_SUITE_P(Parallelism, FeedbackDifferentialTest,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace relopt
