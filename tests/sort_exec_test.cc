// External sort executor: in-memory path, spill path, multi-pass merges,
// descending keys, stability of results.
#include <gtest/gtest.h>

#include <algorithm>

#include "exec/external_sort.h"
#include "exec/seq_scan.h"
#include "exec/values_exec.h"
#include "util/rng.h"

namespace relopt {
namespace {

class SortExecTest : public ::testing::Test {
 protected:
  SortExecTest() : pool_(&disk_, 16), catalog_(&pool_), ctx_(&catalog_, &pool_) {}

  /// Builds a one-column int64 Values input from `data` (schema alias "v").
  ExecutorPtr ValuesOf(const std::vector<int64_t>& data) {
    rows_.clear();
    for (int64_t v : data) rows_.push_back(Tuple({Value::Int(v)}));
    Schema schema;
    schema.AddColumn(Column("x", TypeId::kInt64, "v"));
    return std::make_unique<ValuesExecutor>(&ctx_, schema, &rows_);
  }

  std::vector<int64_t> SortInts(const std::vector<int64_t>& data, bool desc) {
    ExecutorPtr input = ValuesOf(data);
    key_expr_ = MakeColumnRef("v", "x");
    EXPECT_TRUE(key_expr_->Bind(input->schema()).ok());
    std::vector<SortKeySpec> keys = {{key_expr_.get(), desc}};
    last_sort_ = std::make_unique<ExternalSortExecutor>(&ctx_, std::move(input), keys);
    EXPECT_TRUE(last_sort_->Init().ok());
    std::vector<int64_t> out;
    Tuple t;
    while (true) {
      Result<bool> has = last_sort_->Next(&t);
      EXPECT_TRUE(has.ok()) << has.status().ToString();
      if (!has.ok() || !*has) break;
      out.push_back(t.At(0).AsInt());
    }
    return out;
  }

  DiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
  ExecContext ctx_;
  std::vector<Tuple> rows_;
  ExprPtr key_expr_;
  std::unique_ptr<ExternalSortExecutor> last_sort_;
};

TEST_F(SortExecTest, SmallInputSortsInMemory) {
  std::vector<int64_t> out = SortInts({5, 3, 9, 1, 1, 7}, false);
  EXPECT_EQ(out, (std::vector<int64_t>{1, 1, 3, 5, 7, 9}));
  EXPECT_EQ(last_sort_->num_spilled_runs(), 0u);
}

TEST_F(SortExecTest, DescendingSort) {
  std::vector<int64_t> out = SortInts({5, 3, 9, 1}, true);
  EXPECT_EQ(out, (std::vector<int64_t>{9, 5, 3, 1}));
}

TEST_F(SortExecTest, EmptyInput) {
  EXPECT_TRUE(SortInts({}, false).empty());
}

TEST_F(SortExecTest, LargeInputSpillsAndMerges) {
  Rng rng(4);
  std::vector<int64_t> data;
  for (int i = 0; i < 30000; ++i) data.push_back(rng.UniformInt(0, 1000000));
  std::vector<int64_t> expected = data;
  std::sort(expected.begin(), expected.end());
  std::vector<int64_t> out = SortInts(data, false);
  EXPECT_EQ(out, expected);
  EXPECT_GT(last_sort_->num_spilled_runs(), 1u);
  // Spill I/O really happened.
  EXPECT_GT(disk_.stats().page_writes, 0u);
}

TEST_F(SortExecTest, VeryLargeInputNeedsMergePasses) {
  // Tiny pool -> operator memory 8 pages, fan-in 7; enough data to force
  // more runs than the fan-in.
  Rng rng(5);
  std::vector<int64_t> data;
  for (int i = 0; i < 120000; ++i) data.push_back(rng.UniformInt(0, 1000000));
  std::vector<int64_t> expected = data;
  std::sort(expected.begin(), expected.end());
  std::vector<int64_t> out = SortInts(data, false);
  ASSERT_EQ(out.size(), expected.size());
  EXPECT_EQ(out, expected);
  EXPECT_GT(last_sort_->num_spilled_runs(), 7u);
  EXPECT_GE(last_sort_->merge_passes(), 1u);
}

TEST_F(SortExecTest, ReInitResorts) {
  std::vector<int64_t> out1 = SortInts({3, 1, 2}, false);
  ASSERT_TRUE(last_sort_->Init().ok());
  std::vector<int64_t> out2;
  Tuple t;
  while (*last_sort_->Next(&t)) out2.push_back(t.At(0).AsInt());
  EXPECT_EQ(out1, out2);
}

TEST_F(SortExecTest, MultiKeySortFromTable) {
  Schema schema;
  schema.AddColumn(Column("a", TypeId::kInt64, "t"));
  schema.AddColumn(Column("b", TypeId::kString, "t"));
  TableInfo* table = *catalog_.CreateTable("t", schema);
  ASSERT_TRUE(catalog_.InsertTuple(table, Tuple({Value::Int(2), Value::String("x")})).ok());
  ASSERT_TRUE(catalog_.InsertTuple(table, Tuple({Value::Int(1), Value::String("z")})).ok());
  ASSERT_TRUE(catalog_.InsertTuple(table, Tuple({Value::Int(1), Value::String("a")})).ok());
  auto scan = std::make_unique<SeqScanExecutor>(&ctx_, table->schema(), table);
  ExprPtr ka = MakeColumnRef("t", "a");
  ExprPtr kb = MakeColumnRef("t", "b");
  ASSERT_TRUE(ka->Bind(table->schema()).ok());
  ASSERT_TRUE(kb->Bind(table->schema()).ok());
  // a ASC, b DESC.
  std::vector<SortKeySpec> keys = {{ka.get(), false}, {kb.get(), true}};
  ExternalSortExecutor sort(&ctx_, std::move(scan), keys);
  ASSERT_TRUE(sort.Init().ok());
  std::vector<std::string> got;
  Tuple t;
  while (*sort.Next(&t)) {
    got.push_back(std::to_string(t.At(0).AsInt()) + t.At(1).AsString());
  }
  EXPECT_EQ(got, (std::vector<std::string>{"1z", "1a", "2x"}));
}

TEST_F(SortExecTest, NullsSortFirst) {
  rows_.clear();
  rows_.push_back(Tuple({Value::Int(5)}));
  rows_.push_back(Tuple({Value::Null(TypeId::kInt64)}));
  rows_.push_back(Tuple({Value::Int(1)}));
  Schema schema;
  schema.AddColumn(Column("x", TypeId::kInt64, "v"));
  auto input = std::make_unique<ValuesExecutor>(&ctx_, schema, &rows_);
  key_expr_ = MakeColumnRef("v", "x");
  ASSERT_TRUE(key_expr_->Bind(input->schema()).ok());
  std::vector<SortKeySpec> keys = {{key_expr_.get(), false}};
  ExternalSortExecutor sort(&ctx_, std::move(input), keys);
  ASSERT_TRUE(sort.Init().ok());
  Tuple t;
  ASSERT_TRUE(*sort.Next(&t));
  EXPECT_TRUE(t.At(0).is_null());
  ASSERT_TRUE(*sort.Next(&t));
  EXPECT_EQ(t.At(0).AsInt(), 1);
}

}  // namespace
}  // namespace relopt
