// BufferPool concurrency stress: many threads hammering a pool smaller than
// the working set must lose no writes, never underflow a pin count, and keep
// the hit/miss counters consistent.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "test_util.h"

namespace relopt {
namespace {

uint64_t ReadCounter(const PageFrame* frame) {
  uint64_t v;
  std::memcpy(&v, frame->data(), sizeof(v));
  return v;
}

void WriteCounter(PageFrame* frame, uint64_t v) { std::memcpy(frame->data(), &v, sizeof(v)); }

class BufferPoolStressTest : public ::testing::Test {
 protected:
  static constexpr size_t kPoolPages = 16;  // much smaller than the working set
  static constexpr size_t kFilePages = 64;

  void SetUp() override {
    pool_ = std::make_unique<BufferPool>(&disk_, kPoolPages);
    file_id_ = disk_.CreateFile();
    for (size_t i = 0; i < kFilePages; ++i) {
      Result<PageFrame*> frame = pool_->NewPage(file_id_);
      ASSERT_TRUE(frame.ok()) << frame.status().ToString();
      ASSERT_OK(pool_->UnpinPage((*frame)->page_id(), /*dirty=*/true));
    }
    ASSERT_OK(pool_->FlushAll());
    ASSERT_OK(pool_->EvictAll());
  }

  DiskManager disk_;
  std::unique_ptr<BufferPool> pool_;
  FileId file_id_ = 0;
};

TEST_F(BufferPoolStressTest, ConcurrentIncrementsLoseNoWrites) {
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 2000;
  std::atomic<int> errors{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Deterministic per-thread page walk; co-prime stride spreads threads
      // over the file so every page sees contention from several threads.
      uint64_t state = static_cast<uint64_t>(t) * 2654435761u + 1;
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        PageNo page = static_cast<PageNo>((state >> 33) % kFilePages);
        Result<PageFrame*> frame = pool_->FetchPage(PageId{file_id_, page});
        if (!frame.ok()) {
          ++errors;
          continue;
        }
        {
          std::unique_lock<std::shared_mutex> latch((*frame)->latch());
          WriteCounter(*frame, ReadCounter(*frame) + 1);
        }
        if (!pool_->UnpinPage((*frame)->page_id(), /*dirty=*/true).ok()) ++errors;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);

  // Evict everything so the sum below reads what actually hit the frames
  // (and, transitively, survived write-back + re-fault round trips).
  ASSERT_OK(pool_->FlushAll());
  ASSERT_OK(pool_->EvictAll());
  uint64_t total = 0;
  for (size_t p = 0; p < kFilePages; ++p) {
    Result<PageFrame*> frame = pool_->FetchPage(PageId{file_id_, static_cast<PageNo>(p)});
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    total += ReadCounter(*frame);
    ASSERT_OK(pool_->UnpinPage((*frame)->page_id(), false));
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST_F(BufferPoolStressTest, StatsAreConsistentUnderConcurrency) {
  constexpr int kThreads = 6;
  constexpr int kFetchesPerThread = 3000;
  pool_->ResetStats();
  disk_.ResetStats();

  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kFetchesPerThread; ++i) {
        PageNo page = static_cast<PageNo>((t * 13 + i * 7) % kFilePages);
        Result<PageFrame*> frame = pool_->FetchPage(PageId{file_id_, page});
        if (!frame.ok()) {
          ++errors;
          continue;
        }
        std::shared_lock<std::shared_mutex> latch((*frame)->latch());
        (void)ReadCounter(*frame);
        latch.unlock();
        if (!pool_->UnpinPage((*frame)->page_id(), false).ok()) ++errors;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);

  BufferPoolStats stats = pool_->stats();
  // Every fetch is exactly one hit or one miss — no drops, no double counts.
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kFetchesPerThread);
  // Every miss faulted from disk; clean pages evict without write-back.
  EXPECT_EQ(disk_.stats().page_reads, stats.misses);
  EXPECT_EQ(disk_.stats().page_writes, 0u);
  // The pool never exceeds capacity.
  EXPECT_LE(pool_->NumCached(), kPoolPages);
}

TEST_F(BufferPoolStressTest, PinCountsNeverUnderflowOrLeak) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 1000; ++i) {
        PageId pid{file_id_, static_cast<PageNo>((t + i) % kFilePages)};
        Result<PageFrame*> frame = pool_->FetchPage(pid);
        if (!frame.ok()) {
          ++errors;
          continue;
        }
        // Double-unpin must fail loudly instead of corrupting the count.
        if (!pool_->UnpinPage(pid, false).ok()) ++errors;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  // All pins released: EvictAll succeeds only if nothing is still pinned.
  ASSERT_OK(pool_->EvictAll());
  EXPECT_EQ(pool_->NumCached(), 0u);
  // And a stray extra unpin is rejected, not wrapped around.
  Result<PageFrame*> frame = pool_->FetchPage(PageId{file_id_, 0});
  ASSERT_TRUE(frame.ok());
  ASSERT_OK(pool_->UnpinPage(PageId{file_id_, 0}, false));
  EXPECT_FALSE(pool_->UnpinPage(PageId{file_id_, 0}, false).ok());
}

TEST_F(BufferPoolStressTest, ConcurrentHeapInsertsAllSurvive) {
  // End-to-end storage check: concurrent HeapFile::Insert through the pool
  // must persist every record exactly once.
  Result<HeapFile> heap_r = HeapFile::Create(pool_.get());
  ASSERT_TRUE(heap_r.ok());
  HeapFile heap = heap_r.MoveValue();

  constexpr int kThreads = 6;
  constexpr int kRowsPerThread = 500;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRowsPerThread; ++i) {
        std::string record = "t" + std::to_string(t) + "-r" + std::to_string(i);
        if (!heap.Insert(record).ok()) ++errors;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);

  size_t count = 0;
  HeapFile::Iterator it(&heap);
  Rid rid;
  std::string bytes;
  while (true) {
    Result<bool> has = it.Next(&rid, &bytes);
    ASSERT_TRUE(has.ok()) << has.status().ToString();
    if (!*has) break;
    ++count;
  }
  EXPECT_EQ(count, static_cast<size_t>(kThreads) * kRowsPerThread);
}

}  // namespace
}  // namespace relopt
