// Shared helpers for relopt tests.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/database.h"

namespace relopt {
namespace tu {

/// Unwraps a Result in tests with a readable failure.
#define ASSERT_OK(expr)                                    \
  do {                                                     \
    ::relopt::Status _st = (expr);                         \
    ASSERT_TRUE(_st.ok()) << _st.ToString();               \
  } while (0)

#define EXPECT_OK(expr)                                    \
  do {                                                     \
    ::relopt::Status _st = (expr);                         \
    EXPECT_TRUE(_st.ok()) << _st.ToString();               \
  } while (0)

/// Runs SQL on `db`, asserting success; returns the result.
inline QueryResult Sql(Database* db, const std::string& sql) {
  Result<QueryResult> r = db->Execute(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  return r.ok() ? r.MoveValue() : QueryResult{};
}

/// Extracts a column of int64s from a result.
inline std::vector<int64_t> IntColumn(const QueryResult& result, size_t col) {
  std::vector<int64_t> out;
  for (const Tuple& row : result.rows) {
    EXPECT_FALSE(row.At(col).is_null());
    out.push_back(row.At(col).AsInt());
  }
  return out;
}

/// Single int64 cell helper (e.g. for SELECT count(*)).
inline int64_t IntCell(const QueryResult& result) {
  EXPECT_EQ(result.rows.size(), 1u);
  EXPECT_GE(result.rows[0].NumValues(), 1u);
  return result.rows.empty() ? -1 : result.rows[0].At(0).AsInt();
}

/// Loads a small standard test schema:
///   emp(id, name, dept_id, salary)   — 1000 rows
///   dept(id, dname)                  — 20 rows
/// with stats analyzed.
inline void LoadEmpDept(Database* db, int emp_rows = 1000, int dept_rows = 20) {
  Sql(db, "CREATE TABLE emp (id INT, name TEXT, dept_id INT, salary INT)");
  Sql(db, "CREATE TABLE dept (id INT, dname TEXT)");
  std::string insert = "INSERT INTO emp VALUES ";
  for (int i = 0; i < emp_rows; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i) + ", 'e" + std::to_string(i) + "', " +
              std::to_string(i % dept_rows) + ", " + std::to_string(1000 + (i * 37) % 5000) + ")";
  }
  Sql(db, insert);
  std::string insert_dept = "INSERT INTO dept VALUES ";
  for (int i = 0; i < dept_rows; ++i) {
    if (i > 0) insert_dept += ", ";
    insert_dept += "(" + std::to_string(i) + ", 'd" + std::to_string(i) + "')";
  }
  Sql(db, insert_dept);
  Sql(db, "ANALYZE");
}

}  // namespace tu
}  // namespace relopt
