#include <gtest/gtest.h>

#include "parser/parser.h"

namespace relopt {
namespace {

StatementPtr Parse(const std::string& sql) {
  Result<StatementPtr> r = ParseStatement(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  return r.ok() ? r.MoveValue() : nullptr;
}

// Keeps parsed statements alive for the duration of a test so AsSelect's raw
// pointer stays valid.
std::vector<StatementPtr>& Arena() {
  static std::vector<StatementPtr> arena;
  return arena;
}

SelectStmt* AsSelect(StatementPtr stmt) {
  EXPECT_EQ(stmt->kind, StatementKind::kSelect);
  SelectStmt* raw = static_cast<SelectStmt*>(stmt.get());
  Arena().push_back(std::move(stmt));
  return raw;
}

TEST(ParserTest, CreateTable) {
  StatementPtr stmt = Parse("CREATE TABLE t (a INT, b TEXT, c DOUBLE, d BOOL)");
  auto* create = static_cast<CreateTableStmt*>(stmt.get());
  EXPECT_EQ(create->table_name, "t");
  ASSERT_EQ(create->columns.size(), 4u);
  EXPECT_EQ(create->columns[0].type, TypeId::kInt64);
  EXPECT_EQ(create->columns[1].type, TypeId::kString);
  EXPECT_EQ(create->columns[2].type, TypeId::kDouble);
  EXPECT_EQ(create->columns[3].type, TypeId::kBool);
}

TEST(ParserTest, CreateTableErrors) {
  EXPECT_FALSE(ParseStatement("CREATE TABLE t (a BLOB)").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE t a INT").ok());
  EXPECT_FALSE(ParseStatement("CREATE CLUSTERED TABLE t (a INT)").ok());
}

TEST(ParserTest, CreateIndex) {
  StatementPtr stmt = Parse("CREATE INDEX idx ON t (a, b)");
  auto* create = static_cast<CreateIndexStmt*>(stmt.get());
  EXPECT_EQ(create->index_name, "idx");
  EXPECT_EQ(create->table_name, "t");
  EXPECT_EQ(create->columns, (std::vector<std::string>{"a", "b"}));
  EXPECT_FALSE(create->clustered);

  StatementPtr c = Parse("CREATE CLUSTERED INDEX cidx ON t (a)");
  EXPECT_TRUE(static_cast<CreateIndexStmt*>(c.get())->clustered);
}

TEST(ParserTest, InsertValues) {
  StatementPtr stmt = Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  auto* insert = static_cast<InsertStmt*>(stmt.get());
  EXPECT_EQ(insert->table_name, "t");
  EXPECT_EQ(insert->columns, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(insert->rows.size(), 2u);
  ASSERT_EQ(insert->rows[0].size(), 2u);
}

TEST(ParserTest, InsertWithoutColumnList) {
  StatementPtr stmt = Parse("INSERT INTO t VALUES (1, 2.5, NULL)");
  auto* insert = static_cast<InsertStmt*>(stmt.get());
  EXPECT_TRUE(insert->columns.empty());
  ASSERT_EQ(insert->rows[0].size(), 3u);
}

TEST(ParserTest, SimpleSelect) {
  SelectStmt* s = AsSelect(Parse("SELECT a, b FROM t WHERE a > 5"));
  EXPECT_EQ(s->items.size(), 2u);
  ASSERT_EQ(s->from.size(), 1u);
  EXPECT_EQ(s->from[0].table_name, "t");
  ASSERT_NE(s->where, nullptr);
}

TEST(ParserTest, SelectStar) {
  SelectStmt* s = AsSelect(Parse("SELECT * FROM t"));
  ASSERT_EQ(s->items.size(), 1u);
  EXPECT_TRUE(s->items[0].is_star);
}

TEST(ParserTest, Aliases) {
  SelectStmt* s = AsSelect(Parse("SELECT a AS x, b y FROM t AS t1, u u2"));
  EXPECT_EQ(s->items[0].alias, "x");
  EXPECT_EQ(s->items[1].alias, "y");
  EXPECT_EQ(s->from[0].alias, "t1");
  EXPECT_EQ(s->from[1].alias, "u2");
  EXPECT_EQ(s->from[1].EffectiveName(), "u2");
}

TEST(ParserTest, JoinOnBecomesWhereConjunct) {
  SelectStmt* s = AsSelect(Parse("SELECT * FROM a JOIN b ON a.x = b.y WHERE a.z > 1"));
  ASSERT_EQ(s->from.size(), 2u);
  ASSERT_NE(s->where, nullptr);
  // WHERE AND the join condition are both present in the predicate.
  std::string where = s->where->ToString();
  EXPECT_NE(where.find("a.x = b.y"), std::string::npos);
  EXPECT_NE(where.find("a.z > 1"), std::string::npos);
}

TEST(ParserTest, MultiJoinChain) {
  SelectStmt* s =
      AsSelect(Parse("SELECT * FROM a JOIN b ON a.x = b.x INNER JOIN c ON b.y = c.y"));
  EXPECT_EQ(s->from.size(), 3u);
}

TEST(ParserTest, CrossJoin) {
  SelectStmt* s = AsSelect(Parse("SELECT * FROM a CROSS JOIN b"));
  EXPECT_EQ(s->from.size(), 2u);
  EXPECT_EQ(s->where, nullptr);
}

TEST(ParserTest, GroupByHavingOrderLimit) {
  SelectStmt* s = AsSelect(
      Parse("SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 2 "
            "ORDER BY a DESC, b ASC LIMIT 10"));
  EXPECT_EQ(s->group_by.size(), 1u);
  ASSERT_NE(s->having, nullptr);
  ASSERT_EQ(s->order_by.size(), 2u);
  EXPECT_TRUE(s->order_by[0].desc);
  EXPECT_FALSE(s->order_by[1].desc);
  EXPECT_EQ(*s->limit, 10);
}

TEST(ParserTest, ExpressionPrecedence) {
  SelectStmt* s = AsSelect(Parse("SELECT 1 + 2 * 3 - 4 / 2"));
  EXPECT_EQ(s->items[0].expr->ToString(), "((1 + (2 * 3)) - (4 / 2))");
}

TEST(ParserTest, BooleanPrecedence) {
  SelectStmt* s = AsSelect(Parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3"));
  // AND binds tighter than OR.
  EXPECT_EQ(s->where->ToString(), "((a = 1) OR ((b = 2) AND (c = 3)))");
}

TEST(ParserTest, NotPrecedence) {
  SelectStmt* s = AsSelect(Parse("SELECT * FROM t WHERE NOT a = 1 AND b = 2"));
  EXPECT_EQ(s->where->ToString(), "((NOT (a = 1)) AND (b = 2))");
}

TEST(ParserTest, BetweenDesugarsToRange) {
  SelectStmt* s = AsSelect(Parse("SELECT * FROM t WHERE a BETWEEN 1 AND 5"));
  EXPECT_EQ(s->where->ToString(), "((a >= 1) AND (a <= 5))");
}

TEST(ParserTest, NotBetween) {
  SelectStmt* s = AsSelect(Parse("SELECT * FROM t WHERE a NOT BETWEEN 1 AND 5"));
  EXPECT_EQ(s->where->ToString(), "(NOT ((a >= 1) AND (a <= 5)))");
}

TEST(ParserTest, InListDesugarsToOrs) {
  SelectStmt* s = AsSelect(Parse("SELECT * FROM t WHERE a IN (1, 2, 3)"));
  EXPECT_EQ(s->where->ToString(), "(((a = 1) OR (a = 2)) OR (a = 3))");
}

TEST(ParserTest, IsNull) {
  SelectStmt* s = AsSelect(Parse("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL"));
  EXPECT_EQ(s->where->ToString(), "((a IS NULL) AND (b IS NOT NULL))");
}

TEST(ParserTest, QualifiedColumnsAndLiterals) {
  SelectStmt* s = AsSelect(Parse("SELECT t.a, 'str', 2.5, true, NULL FROM t"));
  EXPECT_EQ(s->items[0].expr->ToString(), "t.a");
  EXPECT_EQ(s->items[1].expr->ToString(), "'str'");
  EXPECT_EQ(s->items[2].expr->ToString(), "2.5");
  EXPECT_EQ(s->items[3].expr->ToString(), "true");
  EXPECT_EQ(s->items[4].expr->ToString(), "NULL");
}

TEST(ParserTest, UnaryMinusFoldsLiterals) {
  SelectStmt* s = AsSelect(Parse("SELECT -5, -2.5, -a"));
  EXPECT_EQ(s->items[0].expr->ToString(), "-5");
  EXPECT_EQ(s->items[1].expr->ToString(), "-2.5");
  EXPECT_EQ(s->items[2].expr->ToString(), "(0 - a)");
}

TEST(ParserTest, AggregateCalls) {
  SelectStmt* s = AsSelect(Parse("SELECT count(*), sum(a), min(b), max(c), avg(d), count(e)"));
  EXPECT_EQ(s->items[0].expr->ToString(), "count(*)");
  EXPECT_EQ(s->items[1].expr->ToString(), "sum(a)");
  EXPECT_EQ(s->items[5].expr->ToString(), "count(e)");
}

TEST(ParserTest, ExplainVariants) {
  StatementPtr stmt = Parse("EXPLAIN SELECT * FROM t");
  auto* explain = static_cast<ExplainStmt*>(stmt.get());
  EXPECT_FALSE(explain->analyze);
  StatementPtr stmt2 = Parse("EXPLAIN ANALYZE SELECT 1");
  EXPECT_TRUE(static_cast<ExplainStmt*>(stmt2.get())->analyze);
}

TEST(ParserTest, AnalyzeStatement) {
  StatementPtr one = Parse("ANALYZE t");
  EXPECT_EQ(static_cast<AnalyzeStmt*>(one.get())->table_name, "t");
  StatementPtr all = Parse("ANALYZE");
  EXPECT_TRUE(static_cast<AnalyzeStmt*>(all.get())->table_name.empty());
}

TEST(ParserTest, DeleteStatement) {
  StatementPtr stmt = Parse("DELETE FROM t WHERE a = 1");
  auto* del = static_cast<DeleteStmt*>(stmt.get());
  EXPECT_EQ(del->table_name, "t");
  ASSERT_NE(del->where, nullptr);
  StatementPtr all = Parse("DELETE FROM t");
  EXPECT_EQ(static_cast<DeleteStmt*>(all.get())->where, nullptr);
}

TEST(ParserTest, ScriptWithMultipleStatements) {
  Result<std::vector<StatementPtr>> r =
      ParseScript("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseStatement("SELECT FROM t").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO t VALUES 1").ok());
  EXPECT_FALSE(ParseStatement("FROB x").ok());
  EXPECT_FALSE(ParseStatement("SELECT (1 + 2").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t JOIN u").ok());  // missing ON
}

TEST(ParserTest, ParseStatementRejectsMultiple) {
  EXPECT_FALSE(ParseStatement("SELECT 1; SELECT 2").ok());
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  EXPECT_TRUE(ParseStatement("select * from t where a = 1 order by a limit 5").ok());
  EXPECT_TRUE(ParseStatement("SeLeCt * FrOm t").ok());
}

}  // namespace
}  // namespace relopt
