// Binder tests: logical plan construction, aggregate lifting, errors.
#include <gtest/gtest.h>

#include "expr/binder.h"
#include "parser/parser.h"

namespace relopt {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  BinderTest() : pool_(&disk_, 64), catalog_(&pool_) {
    Schema t;
    t.AddColumn(Column("a", TypeId::kInt64, "t"));
    t.AddColumn(Column("b", TypeId::kString, "t"));
    EXPECT_TRUE(catalog_.CreateTable("t", std::move(t)).ok());
    Schema u;
    u.AddColumn(Column("id", TypeId::kInt64, "u"));
    u.AddColumn(Column("x", TypeId::kInt64, "u"));
    EXPECT_TRUE(catalog_.CreateTable("u", std::move(u)).ok());
  }

  Result<LogicalPtr> Bind(const std::string& sql) {
    RELOPT_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
    Binder binder(&catalog_);
    return binder.BindSelect(static_cast<SelectStmt*>(stmt.get()));
  }

  LogicalPtr BindOk(const std::string& sql) {
    Result<LogicalPtr> r = Bind(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? r.MoveValue() : nullptr;
  }

  DiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
};

TEST_F(BinderTest, SimpleSelectShape) {
  LogicalPtr plan = BindOk("SELECT a FROM t");
  // Project over Scan.
  ASSERT_EQ(plan->kind(), LogicalNodeKind::kProject);
  EXPECT_EQ(plan->child(0)->kind(), LogicalNodeKind::kScan);
  EXPECT_EQ(plan->schema().NumColumns(), 1u);
  EXPECT_EQ(plan->schema().ColumnAt(0).name, "a");
  EXPECT_EQ(plan->schema().ColumnAt(0).type, TypeId::kInt64);
}

TEST_F(BinderTest, StarExpandsAllColumns) {
  LogicalPtr plan = BindOk("SELECT * FROM t");
  EXPECT_EQ(plan->schema().NumColumns(), 2u);
  EXPECT_EQ(plan->schema().ColumnAt(0).QualifiedName(), "t.a");
  EXPECT_EQ(plan->schema().ColumnAt(1).QualifiedName(), "t.b");
}

TEST_F(BinderTest, WhereBecomesFilter) {
  LogicalPtr plan = BindOk("SELECT a FROM t WHERE a > 3");
  ASSERT_EQ(plan->kind(), LogicalNodeKind::kProject);
  ASSERT_EQ(plan->child(0)->kind(), LogicalNodeKind::kFilter);
  EXPECT_EQ(plan->child(0)->child(0)->kind(), LogicalNodeKind::kScan);
}

TEST_F(BinderTest, TwoTablesMakeCrossJoin) {
  LogicalPtr plan = BindOk("SELECT t.a, u.x FROM t, u");
  ASSERT_EQ(plan->kind(), LogicalNodeKind::kProject);
  EXPECT_EQ(plan->child(0)->kind(), LogicalNodeKind::kJoin);
  EXPECT_EQ(plan->child(0)->schema().NumColumns(), 4u);
}

TEST_F(BinderTest, AliasesQualifySchema) {
  LogicalPtr plan = BindOk("SELECT t1.a, t2.a FROM t t1, t t2");
  EXPECT_EQ(plan->schema().ColumnAt(0).QualifiedName(), "t1.a");
  EXPECT_EQ(plan->schema().ColumnAt(1).QualifiedName(), "t2.a");
}

TEST_F(BinderTest, DuplicateAliasRejected) {
  EXPECT_EQ(Bind("SELECT * FROM t, t").status().code(), StatusCode::kBindError);
  EXPECT_EQ(Bind("SELECT * FROM t x, u x").status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, UnknownTableAndColumn) {
  EXPECT_EQ(Bind("SELECT * FROM nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(Bind("SELECT zzz FROM t").status().code(), StatusCode::kBindError);
  EXPECT_EQ(Bind("SELECT u.a FROM t").status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, AmbiguousColumnRejected) {
  EXPECT_EQ(Bind("SELECT a FROM t t1, t t2").status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, NonBooleanWhereRejected) {
  EXPECT_EQ(Bind("SELECT a FROM t WHERE a + 1").status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, AggregateLifting) {
  LogicalPtr plan = BindOk("SELECT count(*), sum(a) FROM t");
  // Project over Aggregate.
  ASSERT_EQ(plan->kind(), LogicalNodeKind::kProject);
  ASSERT_EQ(plan->child(0)->kind(), LogicalNodeKind::kAggregate);
  const auto* agg = static_cast<const LogicalAggregate*>(plan->child(0));
  EXPECT_EQ(agg->aggs().size(), 2u);
  EXPECT_TRUE(agg->group_by().empty());
  EXPECT_EQ(plan->schema().ColumnAt(0).type, TypeId::kInt64);
}

TEST_F(BinderTest, GroupByColumnsInOutput) {
  LogicalPtr plan = BindOk("SELECT b, count(*) FROM t GROUP BY b");
  const LogicalNode* agg = plan->child(0);
  ASSERT_EQ(agg->kind(), LogicalNodeKind::kAggregate);
  EXPECT_EQ(agg->schema().NumColumns(), 2u);
  EXPECT_EQ(agg->schema().ColumnAt(0).name, "b");
  EXPECT_EQ(agg->schema().ColumnAt(1).name, "count(*)");
}

TEST_F(BinderTest, DuplicateAggregatesDeduplicated) {
  LogicalPtr plan = BindOk("SELECT sum(a), sum(a) + 1 FROM t");
  const auto* agg = static_cast<const LogicalAggregate*>(plan->child(0));
  EXPECT_EQ(agg->aggs().size(), 1u);
}

TEST_F(BinderTest, HavingBecomesFilterAboveAggregate) {
  LogicalPtr plan = BindOk("SELECT b FROM t GROUP BY b HAVING count(*) > 1");
  ASSERT_EQ(plan->kind(), LogicalNodeKind::kProject);
  ASSERT_EQ(plan->child(0)->kind(), LogicalNodeKind::kFilter);
  EXPECT_EQ(plan->child(0)->child(0)->kind(), LogicalNodeKind::kAggregate);
  // HAVING's count(*) is still computed even though not projected.
  const auto* agg = static_cast<const LogicalAggregate*>(plan->child(0)->child(0));
  EXPECT_EQ(agg->aggs().size(), 1u);
}

TEST_F(BinderTest, SelectStarWithGroupByRejected) {
  EXPECT_EQ(Bind("SELECT * FROM t GROUP BY a").status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, HavingWithoutAggregateRejected) {
  // HAVING forces an aggregate context; bare column b is then unresolvable.
  EXPECT_FALSE(Bind("SELECT b FROM t HAVING b > 'x'").ok());
}

TEST_F(BinderTest, AggregateInWhereRejected) {
  EXPECT_EQ(Bind("SELECT a FROM t WHERE sum(a) > 1").status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, NonGroupedColumnInSelectRejected) {
  EXPECT_EQ(Bind("SELECT a, count(*) FROM t GROUP BY b").status().code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, OrderBySortsBelowProject) {
  LogicalPtr plan = BindOk("SELECT a FROM t ORDER BY b DESC");
  ASSERT_EQ(plan->kind(), LogicalNodeKind::kProject);
  ASSERT_EQ(plan->child(0)->kind(), LogicalNodeKind::kSort);
  const auto* sort = static_cast<const LogicalSort*>(plan->child(0));
  ASSERT_EQ(sort->keys().size(), 1u);
  EXPECT_TRUE(sort->keys()[0].desc);
}

TEST_F(BinderTest, OrderByAliasSubstitutes) {
  LogicalPtr plan = BindOk("SELECT a + 1 AS s FROM t ORDER BY s");
  ASSERT_EQ(plan->child(0)->kind(), LogicalNodeKind::kSort);
  const auto* sort = static_cast<const LogicalSort*>(plan->child(0));
  // Binding backfills qualifiers, so the substituted alias renders resolved.
  EXPECT_EQ(sort->keys()[0].expr->ToString(), "(t.a + 1)");
}

TEST_F(BinderTest, OrderByAggregate) {
  LogicalPtr plan = BindOk("SELECT b, count(*) FROM t GROUP BY b ORDER BY count(*) DESC");
  ASSERT_EQ(plan->child(0)->kind(), LogicalNodeKind::kSort);
  EXPECT_EQ(plan->child(0)->child(0)->kind(), LogicalNodeKind::kAggregate);
}

TEST_F(BinderTest, LimitOnTop) {
  LogicalPtr plan = BindOk("SELECT a FROM t LIMIT 5");
  ASSERT_EQ(plan->kind(), LogicalNodeKind::kLimit);
  EXPECT_EQ(static_cast<const LogicalLimit*>(plan.get())->limit(), 5);
}

TEST_F(BinderTest, FromlessSelect) {
  LogicalPtr plan = BindOk("SELECT 1 + 1 AS two");
  ASSERT_EQ(plan->kind(), LogicalNodeKind::kProject);
  EXPECT_EQ(plan->child(0)->kind(), LogicalNodeKind::kValues);
  EXPECT_EQ(plan->schema().ColumnAt(0).name, "two");
}

TEST_F(BinderTest, JoinOnConditionLandsInFilter) {
  LogicalPtr plan = BindOk("SELECT t.a FROM t JOIN u ON t.a = u.id");
  ASSERT_EQ(plan->kind(), LogicalNodeKind::kProject);
  EXPECT_EQ(plan->child(0)->kind(), LogicalNodeKind::kFilter);
}

TEST_F(BinderTest, ProjectionNamesComputedColumns) {
  LogicalPtr plan = BindOk("SELECT a + 1, b FROM t");
  EXPECT_EQ(plan->schema().ColumnAt(0).name, "(t.a + 1)");
  EXPECT_EQ(plan->schema().ColumnAt(1).name, "b");
  // Binding backfills the qualifier of the unqualified reference.
  EXPECT_EQ(plan->schema().ColumnAt(1).table, "t");
}

TEST_F(BinderTest, AvgIsDouble) {
  LogicalPtr plan = BindOk("SELECT avg(a) FROM t");
  EXPECT_EQ(plan->schema().ColumnAt(0).type, TypeId::kDouble);
}

TEST_F(BinderTest, SumOfStringRejected) {
  EXPECT_EQ(Bind("SELECT sum(b) FROM t").status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, NegativeLimitRejected) {
  EXPECT_FALSE(Bind("SELECT a FROM t LIMIT -1").ok());
}

}  // namespace
}  // namespace relopt
