// Multi-session concurrency: N sessions driving the differential corpus
// against one Database concurrently must reproduce the serial results
// exactly — same row bags, same errors, and the same deterministic
// per-statement metrics (rows, tuples processed, logical pool accesses),
// because per-statement attribution comes from each execution's own
// operators, never from global counter deltas another session could bleed
// into. Also: DDL/ANALYZE racing readers (plan-cache invalidation under
// load), and per-session query-history attribution.
//
// Run under TSan by scripts/check.sh.
#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "differential_queries.h"
#include "engine/plan_cache.h"
#include "engine/session.h"
#include "test_util.h"
#include "workload/serving.h"

namespace relopt {
namespace {

using tu::LoadDifferentialFixture;
using tu::Sql;
using tu::kDifferentialFailingQueries;
using tu::kDifferentialQueries;

std::vector<std::string> RenderedRows(const QueryResult& result) {
  std::vector<std::string> rows;
  for (const Tuple& row : result.rows) {
    std::string s;
    for (size_t i = 0; i < row.NumValues(); ++i) {
      s += row.At(i).ToString();
      s += '|';
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// What one statement execution must reproduce regardless of concurrency.
struct Observed {
  std::vector<std::string> rows;  ///< sorted rendered rows (empty on error)
  std::string status;             ///< "OK" or the error message
  uint64_t tuples_processed = 0;
  uint64_t pool_accesses = 0;     ///< logical accesses: hits + misses
};

Observed RunObserved(Session* session, const std::string& sql) {
  Observed out;
  Result<QueryResult> result = session->Execute(sql);
  if (result.ok()) {
    out.rows = RenderedRows(*result);
    out.status = "OK";
    out.tuples_processed = session->last_metrics().tuples_processed;
    out.pool_accesses = session->last_metrics().pool.hits + session->last_metrics().pool.misses;
  } else {
    out.status = result.status().ToString();
  }
  return out;
}

constexpr size_t kNumQueries = sizeof(kDifferentialQueries) / sizeof(kDifferentialQueries[0]);
constexpr size_t kNumFailing =
    sizeof(kDifferentialFailingQueries) / sizeof(kDifferentialFailingQueries[0]);

void RunConcurrentDifferential(size_t num_sessions) {
  Database db;
  LoadDifferentialFixture(&db);

  // Serial baseline on the default session.
  std::vector<Observed> baseline(kNumQueries);
  for (size_t q = 0; q < kNumQueries; ++q) {
    baseline[q] = RunObserved(db.default_session(), kDifferentialQueries[q]);
    ASSERT_EQ(baseline[q].status, "OK") << kDifferentialQueries[q];
  }
  std::vector<Observed> failing_baseline(kNumFailing);
  for (size_t q = 0; q < kNumFailing; ++q) {
    failing_baseline[q] = RunObserved(db.default_session(), kDifferentialFailingQueries[q]);
    ASSERT_NE(failing_baseline[q].status, "OK") << kDifferentialFailingQueries[q];
  }

  // N sessions run the whole corpus concurrently, each starting at its own
  // offset so different queries overlap in time.
  std::vector<Session*> sessions;
  for (size_t s = 0; s < num_sessions; ++s) sessions.push_back(db.CreateSession());
  std::vector<std::vector<Observed>> per_session(num_sessions,
                                                 std::vector<Observed>(kNumQueries));
  std::vector<std::vector<Observed>> per_session_failing(num_sessions,
                                                         std::vector<Observed>(kNumFailing));
  std::vector<std::thread> threads;
  for (size_t s = 0; s < num_sessions; ++s) {
    threads.emplace_back([&, s]() {
      for (size_t i = 0; i < kNumQueries; ++i) {
        const size_t q = (i + s * 7) % kNumQueries;
        per_session[s][q] = RunObserved(sessions[s], kDifferentialQueries[q]);
      }
      for (size_t q = 0; q < kNumFailing; ++q) {
        per_session_failing[s][q] = RunObserved(sessions[s], kDifferentialFailingQueries[q]);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (size_t s = 0; s < num_sessions; ++s) {
    for (size_t q = 0; q < kNumQueries; ++q) {
      const Observed& got = per_session[s][q];
      const Observed& want = baseline[q];
      ASSERT_EQ(got.status, "OK") << "session " << s << ": " << kDifferentialQueries[q];
      EXPECT_EQ(got.rows, want.rows) << "session " << s << ": " << kDifferentialQueries[q];
      EXPECT_EQ(got.tuples_processed, want.tuples_processed)
          << "session " << s << ": " << kDifferentialQueries[q];
      EXPECT_EQ(got.pool_accesses, want.pool_accesses)
          << "session " << s << " leaked another session's pool accesses into "
          << kDifferentialQueries[q];
    }
    for (size_t q = 0; q < kNumFailing; ++q) {
      EXPECT_EQ(per_session_failing[s][q].status, failing_baseline[q].status)
          << "session " << s << ": " << kDifferentialFailingQueries[q];
    }
  }
}

TEST(SessionConcurrencyTest, DifferentialTwoSessions) { RunConcurrentDifferential(2); }
TEST(SessionConcurrencyTest, DifferentialFourSessions) { RunConcurrentDifferential(4); }
TEST(SessionConcurrencyTest, DifferentialEightSessions) { RunConcurrentDifferential(8); }

// Sessions in different execution modes (row/vectorized x serial/parallel)
// run concurrently and still agree with the serial row baseline.
TEST(SessionConcurrencyTest, MixedModeSessionsAgree) {
  Database db;
  LoadDifferentialFixture(&db);

  std::vector<std::vector<std::string>> baseline(kNumQueries);
  for (size_t q = 0; q < kNumQueries; ++q) {
    baseline[q] = RenderedRows(Sql(&db, kDifferentialQueries[q]));
  }

  constexpr size_t kNumModes = 4;
  std::vector<Session*> sessions;
  for (size_t s = 0; s < kNumModes; ++s) {
    Session* session = db.CreateSession();
    session->set_vectorized(s % 2 == 1);
    session->set_batch_size(128);
    session->set_parallelism(s >= 2 ? 2 : 1);
    sessions.push_back(session);
  }
  std::vector<std::vector<std::vector<std::string>>> got(
      kNumModes, std::vector<std::vector<std::string>>(kNumQueries));
  std::vector<std::vector<std::string>> errors(kNumModes);
  std::vector<std::thread> threads;
  for (size_t s = 0; s < kNumModes; ++s) {
    threads.emplace_back([&, s]() {
      for (size_t i = 0; i < kNumQueries; ++i) {
        const size_t q = (i + s * 11) % kNumQueries;
        Result<QueryResult> r = sessions[s]->Execute(kDifferentialQueries[q]);
        if (r.ok()) {
          got[s][q] = RenderedRows(*r);
        } else {
          errors[s].push_back(std::string(kDifferentialQueries[q]) + " -> " +
                              r.status().ToString());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (size_t s = 0; s < kNumModes; ++s) {
    ASSERT_TRUE(errors[s].empty()) << "mode " << s << ": " << errors[s][0];
    for (size_t q = 0; q < kNumQueries; ++q) {
      EXPECT_EQ(got[s][q], baseline[q]) << "mode " << s << ": " << kDifferentialQueries[q];
    }
  }
}

// Readers race DDL and ANALYZE: SELECTs must keep returning correct rows
// while CREATE/DROP/ANALYZE bump the catalog version and invalidate cached
// plans out from under them.
TEST(SessionConcurrencyTest, ReadersRaceDdlInvalidation) {
  Database db;
  LoadDifferentialFixture(&db);
  const std::vector<std::string> reads = {
      "SELECT count(*) FROM emp",
      "SELECT dept_id, count(*) FROM emp GROUP BY dept_id",
      "SELECT count(*) FROM emp, dept WHERE emp.dept_id = dept.id",
  };
  // Serial baseline: the rows each read must keep returning mid-DDL.
  std::vector<std::vector<std::string>> expected;
  for (const std::string& sql : reads) expected.push_back(RenderedRows(Sql(&db, sql)));

  constexpr size_t kReaders = 4;
  constexpr int kRounds = 25;
  std::vector<Session*> sessions;
  for (size_t s = 0; s < kReaders; ++s) sessions.push_back(db.CreateSession());
  std::vector<std::string> failures[kReaders];

  std::thread writer([&]() {
    Session* session = db.CreateSession();
    for (int i = 0; i < kRounds; ++i) {
      ASSERT_TRUE(session->Execute("CREATE TABLE scratch (x INT)").ok());
      ASSERT_TRUE(session->Execute("INSERT INTO scratch VALUES (1), (2)").ok());
      ASSERT_TRUE(session->Execute("ANALYZE scratch").ok());
      ASSERT_TRUE(session->Execute("DROP TABLE scratch").ok());
    }
  });
  std::vector<std::thread> readers;
  for (size_t s = 0; s < kReaders; ++s) {
    readers.emplace_back([&, s]() {
      for (int i = 0; i < kRounds; ++i) {
        for (size_t q = 0; q < reads.size(); ++q) {
          Result<QueryResult> r = sessions[s]->Execute(reads[q]);
          if (!r.ok()) {
            failures[s].push_back(r.status().ToString());
          } else if (RenderedRows(*r) != expected[q]) {
            failures[s].push_back(reads[q] + " -> wrong rows");
          }
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  for (size_t s = 0; s < kReaders; ++s) {
    EXPECT_TRUE(failures[s].empty()) << "reader " << s << ": " << failures[s][0];
  }
  // The DDL churn actually exercised invalidation.
  EXPECT_GT(db.plan_cache()->stats().invalidations, 0u);
}

// The serving workload harness end-to-end, small: cache-on and cache-off
// runs of the same deterministic workload must produce identical result
// checksums and zero errors, and the enabled cache must actually serve hits.
TEST(SessionConcurrencyTest, ServingWorkloadCacheOnOffAgree) {
  Database db;
  ASSERT_TRUE(LoadServingFixture(&db, /*emp_rows=*/200).ok());
  const std::vector<ServingQueryTemplate> mix = DefaultServingMix();
  ServingWorkloadOptions options;
  options.num_threads = 4;
  options.queries_per_thread = 30;

  db.plan_cache()->set_enabled(false);
  Result<ServingWorkloadResult> off = RunServingWorkload(&db, mix, options);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  EXPECT_EQ(off->errors, 0u);
  EXPECT_EQ(off->cache_hits, 0u);

  db.plan_cache()->set_enabled(true);
  Result<ServingWorkloadResult> on = RunServingWorkload(&db, mix, options);
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  EXPECT_EQ(on->errors, 0u);
  EXPECT_GT(on->cache_hits, 0u);
  EXPECT_EQ(on->result_checksum, off->result_checksum)
      << "caching must not change any result row";

  // Text mode (literals rendered into SQL, no prepared statements) returns
  // the same rows and shares the same text-keyed cache entries.
  options.use_prepared = false;
  Result<ServingWorkloadResult> text = RunServingWorkload(&db, mix, options);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_EQ(text->errors, 0u);
  EXPECT_EQ(text->result_checksum, off->result_checksum);
}

// Regression for the single-statement-in-flight assumption the pre-session
// QueryHistoryStore made: two sessions appending concurrently must each get
// records attributed to their own session id, carrying their own statement's
// row counts — not a blend of whatever was in flight.
TEST(SessionHistoryTest, TwoSessionsAttributeRecordsIndependently) {
  Database db;
  LoadDifferentialFixture(&db);
  db.history()->Clear();

  Session* s1 = db.CreateSession();
  Session* s2 = db.CreateSession();
  constexpr int kPerSession = 40;
  // Structurally different statements with different result cardinalities:
  // any cross-attribution shows up as a wrong rows_returned or session_id.
  const std::string sql1 = "SELECT id FROM emp WHERE id < 10";        // 10 rows
  const std::string sql2 = "SELECT id FROM dept WHERE id < 5";        // 5 rows

  // Serial pre-runs pin down the deterministic per-statement tuple counts
  // the concurrent records must reproduce exactly.
  ASSERT_TRUE(s1->Execute(sql1).ok());
  const uint64_t tuples1 = s1->last_metrics().tuples_processed;
  ASSERT_TRUE(s2->Execute(sql2).ok());
  const uint64_t tuples2 = s2->last_metrics().tuples_processed;
  db.history()->Clear();

  std::thread t1([&]() {
    for (int i = 0; i < kPerSession; ++i) ASSERT_TRUE(s1->Execute(sql1).ok());
  });
  std::thread t2([&]() {
    for (int i = 0; i < kPerSession; ++i) ASSERT_TRUE(s2->Execute(sql2).ok());
  });
  t1.join();
  t2.join();

  int s1_records = 0, s2_records = 0;
  for (const QueryRecord& rec : db.history()->Snapshot()) {
    if (rec.session_id == s1->id()) {
      ++s1_records;
      EXPECT_NE(rec.sql.find("emp"), std::string::npos) << rec.sql;
      EXPECT_EQ(rec.rows_returned, 10u);
      EXPECT_EQ(rec.tuples_processed, tuples1);
    } else if (rec.session_id == s2->id()) {
      ++s2_records;
      EXPECT_NE(rec.sql.find("dept"), std::string::npos) << rec.sql;
      EXPECT_EQ(rec.rows_returned, 5u);
      EXPECT_EQ(rec.tuples_processed, tuples2);
    }
  }
  EXPECT_EQ(s1_records, kPerSession);
  EXPECT_EQ(s2_records, kPerSession);

  // The query-log table function carries the attribution through SQL.
  QueryResult log = Sql(&db, "SELECT session_id, rows FROM relopt_query_log()");
  int matching = 0;
  for (const Tuple& row : log.rows) {
    if (row.At(0).AsInt() == static_cast<int64_t>(s1->id())) {
      if (row.At(1).AsInt() == 10) ++matching;
    }
  }
  EXPECT_EQ(matching, kPerSession);
}

}  // namespace
}  // namespace relopt
