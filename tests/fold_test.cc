#include <gtest/gtest.h>

#include "expr/fold.h"
#include "parser/parser.h"

namespace relopt {
namespace {

/// Parses a SELECT-list expression and folds it.
std::string FoldOf(const std::string& expr_sql) {
  Result<StatementPtr> stmt = ParseStatement("SELECT " + expr_sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto* select = static_cast<SelectStmt*>(stmt->get());
  ExprPtr folded = FoldConstants(std::move(select->items[0].expr));
  return folded->ToString();
}

TEST(FoldTest, Arithmetic) {
  EXPECT_EQ(FoldOf("1 + 2 * 3"), "7");
  EXPECT_EQ(FoldOf("10 / 4"), "2");
  EXPECT_EQ(FoldOf("10.0 / 4"), "2.5");
  EXPECT_EQ(FoldOf("1 / 0"), "NULL");
}

TEST(FoldTest, Comparisons) {
  EXPECT_EQ(FoldOf("1 < 2"), "true");
  EXPECT_EQ(FoldOf("'a' = 'b'"), "false");
  EXPECT_EQ(FoldOf("NULL = 1"), "NULL");
}

TEST(FoldTest, PartialFoldKeepsColumns) {
  EXPECT_EQ(FoldOf("a + (2 * 3)"), "(a + 6)");
  EXPECT_EQ(FoldOf("a < 1 + 1"), "(a < 2)");
}

TEST(FoldTest, AndSimplification) {
  EXPECT_EQ(FoldOf("a = 1 AND true"), "(a = 1)");
  EXPECT_EQ(FoldOf("a = 1 AND false"), "false");
  EXPECT_EQ(FoldOf("true AND true"), "true");
}

TEST(FoldTest, OrSimplification) {
  EXPECT_EQ(FoldOf("a = 1 OR false"), "(a = 1)");
  EXPECT_EQ(FoldOf("a = 1 OR true"), "true");
  EXPECT_EQ(FoldOf("false OR false"), "false");
}

TEST(FoldTest, NotFolding) {
  EXPECT_EQ(FoldOf("NOT true"), "false");
  EXPECT_EQ(FoldOf("NOT (1 > 2)"), "true");
  EXPECT_EQ(FoldOf("NOT a"), "(NOT a)");
}

TEST(FoldTest, IsNullFolding) {
  EXPECT_EQ(FoldOf("NULL IS NULL"), "true");
  EXPECT_EQ(FoldOf("1 IS NULL"), "false");
  EXPECT_EQ(FoldOf("1 IS NOT NULL"), "true");
  EXPECT_EQ(FoldOf("a IS NULL"), "(a IS NULL)");
}

TEST(FoldTest, NullPropagationThroughArithmetic) {
  EXPECT_EQ(FoldOf("NULL + 1"), "NULL");
}

TEST(FoldTest, NestedSimplification) {
  // (a AND true) AND (false OR b) -> (a AND b)
  EXPECT_EQ(FoldOf("(a AND true) AND (false OR b)"), "(a AND b)");
}

TEST(FoldTest, BetweenFolds) {
  EXPECT_EQ(FoldOf("5 BETWEEN 1 AND 10"), "true");
  EXPECT_EQ(FoldOf("0 BETWEEN 1 AND 10"), "false");
}

TEST(FoldTest, DoesNotTouchAggregates) {
  EXPECT_EQ(FoldOf("sum(a)"), "sum(a)");
}

}  // namespace
}  // namespace relopt
