// ThreadPool + Barrier unit tests.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

namespace relopt {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4u);
    for (int i = 0; i < 1000; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  // N tasks that all wait for each other can only finish if the pool really
  // runs N tasks at once.
  constexpr size_t kN = 4;
  ThreadPool pool(kN);
  Barrier barrier(kN);
  std::atomic<int> done{0};
  std::mutex mu;
  std::condition_variable cv;
  for (size_t i = 0; i < kN; ++i) {
    pool.Submit([&] {
      barrier.ArriveAndWait();
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == static_cast<int>(kN); });
  EXPECT_EQ(done, static_cast<int>(kN));
}

TEST(ThreadPoolTest, BarrierIsReusableAcrossRounds) {
  constexpr size_t kN = 3;
  constexpr int kRounds = 50;
  ThreadPool pool(kN);
  Barrier barrier(kN);
  // Each round, every worker increments; the barrier makes rounds lock-step,
  // so no worker can be more than one round ahead of another.
  std::atomic<int> counter{0};
  std::atomic<bool> torn{false};
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<int> finished{0};
  for (size_t i = 0; i < kN; ++i) {
    pool.Submit([&] {
      for (int r = 0; r < kRounds; ++r) {
        counter.fetch_add(1);
        barrier.ArriveAndWait();
        // Between barriers the counter must be exactly (r+1)*kN for everyone.
        if (counter.load() != (r + 1) * static_cast<int>(kN)) torn = true;
        barrier.ArriveAndWait();
      }
      std::lock_guard<std::mutex> lock(mu);
      ++finished;
      cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return finished == static_cast<int>(kN); });
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(counter.load(), kRounds * static_cast<int>(kN));
}

TEST(ThreadPoolTest, SubmitFromWorkerThreadDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::mutex mu;
  std::condition_variable cv;
  pool.Submit([&] {
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_all();
    });
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == 1; });
  EXPECT_EQ(done, 1);
}

}  // namespace
}  // namespace relopt
