// ThreadPool + Barrier unit tests.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace relopt {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4u);
    for (int i = 0; i < 1000; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  // N tasks that all wait for each other can only finish if the pool really
  // runs N tasks at once.
  constexpr size_t kN = 4;
  ThreadPool pool(kN);
  Barrier barrier(kN);
  std::atomic<int> done{0};
  std::mutex mu;
  std::condition_variable cv;
  for (size_t i = 0; i < kN; ++i) {
    pool.Submit([&] {
      barrier.ArriveAndWait();
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == static_cast<int>(kN); });
  EXPECT_EQ(done, static_cast<int>(kN));
}

TEST(ThreadPoolTest, BarrierIsReusableAcrossRounds) {
  constexpr size_t kN = 3;
  constexpr int kRounds = 50;
  ThreadPool pool(kN);
  Barrier barrier(kN);
  // Each round, every worker increments; the barrier makes rounds lock-step,
  // so no worker can be more than one round ahead of another.
  std::atomic<int> counter{0};
  std::atomic<bool> torn{false};
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<int> finished{0};
  for (size_t i = 0; i < kN; ++i) {
    pool.Submit([&] {
      for (int r = 0; r < kRounds; ++r) {
        counter.fetch_add(1);
        barrier.ArriveAndWait();
        // Between barriers the counter must be exactly (r+1)*kN for everyone.
        if (counter.load() != (r + 1) * static_cast<int>(kN)) torn = true;
        barrier.ArriveAndWait();
      }
      std::lock_guard<std::mutex> lock(mu);
      ++finished;
      cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return finished == static_cast<int>(kN); });
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(counter.load(), kRounds * static_cast<int>(kN));
}

TEST(ThreadPoolTest, ConcurrentGangsOfBarrierTasksNeverDeadlock) {
  // Two coordinators race to run barrier-coordinated 2-task gangs on a pool
  // of 2. With plain Submit the queues interleave (A1, B1 running and blocked
  // at their barriers; A2, B2 queued behind them — deadlock); SubmitGang's
  // all-or-nothing admission guarantees each gang runs alone and completes.
  // This is the multi-session serving regression: concurrent parallel
  // queries share one pool.
  constexpr size_t kPoolThreads = 2;
  constexpr int kRoundsPerCoordinator = 50;
  ThreadPool pool(kPoolThreads);
  std::atomic<int> completed{0};
  auto coordinator = [&] {
    for (int r = 0; r < kRoundsPerCoordinator; ++r) {
      auto barrier = std::make_shared<Barrier>(kPoolThreads);
      std::vector<std::function<void()>> gang;
      for (size_t i = 0; i < kPoolThreads; ++i) {
        gang.push_back([&, barrier] {
          barrier->ArriveAndWait();  // hangs forever unless the gang is whole
          completed.fetch_add(1, std::memory_order_relaxed);
        });
      }
      pool.SubmitGang(std::move(gang));
    }
  };
  std::thread a(coordinator);
  std::thread b(coordinator);
  a.join();
  b.join();
  // Coordinators return once their gangs are admitted, not completed.
  const int expected = 2 * kRoundsPerCoordinator * static_cast<int>(kPoolThreads);
  while (completed.load() < expected) std::this_thread::yield();
  EXPECT_EQ(completed.load(), expected);
}

TEST(ThreadPoolTest, SubmitFromWorkerThreadDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::mutex mu;
  std::condition_variable cv;
  pool.Submit([&] {
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_all();
    });
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == 1; });
  EXPECT_EQ(done, 1);
}

}  // namespace
}  // namespace relopt
