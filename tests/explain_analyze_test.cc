// EXPLAIN ANALYZE / per-operator instrumentation tests: actual rows, Q-error,
// I/O attribution, and the chrome trace export.
#include <gtest/gtest.h>

#include "exec/plan_profile.h"
#include "test_util.h"

namespace relopt {
namespace {

using tu::Sql;

void LoadThreeWay(Database* db) {
  Sql(db, "CREATE TABLE c (id INT, name TEXT)");
  Sql(db, "CREATE TABLE o (id INT, c_id INT)");
  Sql(db, "CREATE TABLE l (id INT, o_id INT, qty INT)");
  std::string ci = "INSERT INTO c VALUES ";
  for (int i = 0; i < 50; ++i) {
    if (i > 0) ci += ", ";
    ci += "(" + std::to_string(i) + ", 'c" + std::to_string(i) + "')";
  }
  Sql(db, ci);
  std::string oi = "INSERT INTO o VALUES ";
  for (int i = 0; i < 200; ++i) {
    if (i > 0) oi += ", ";
    oi += "(" + std::to_string(i) + ", " + std::to_string(i % 50) + ")";
  }
  Sql(db, oi);
  std::string li = "INSERT INTO l VALUES ";
  for (int i = 0; i < 600; ++i) {
    if (i > 0) li += ", ";
    li += "(" + std::to_string(i) + ", " + std::to_string(i % 200) + ", " +
          std::to_string(i % 7) + ")";
  }
  Sql(db, li);
  Sql(db, "ANALYZE");
}

constexpr char kThreeWayJoin[] =
    "SELECT c.name, l.qty FROM c, o, l WHERE c.id = o.c_id AND o.id = l.o_id";

TEST(ExplainAnalyzeTest, EveryOperatorLineHasActuals) {
  Database db;
  LoadThreeWay(&db);
  QueryResult r = Sql(&db, std::string("EXPLAIN ANALYZE ") + kThreeWayJoin);
  ASSERT_FALSE(r.rows.empty());
  size_t operator_lines = 0;
  for (const Tuple& row : r.rows) {
    std::string line = row.At(0).AsString();
    if (line.find("actual:") != std::string::npos) continue;  // totals footer
    ++operator_lines;
    EXPECT_NE(line.find("est_rows="), std::string::npos) << line;
    EXPECT_NE(line.find("actual_rows="), std::string::npos) << line;
    EXPECT_NE(line.find("q_err="), std::string::npos) << line;
    EXPECT_NE(line.find("reads="), std::string::npos) << line;
    EXPECT_NE(line.find("time="), std::string::npos) << line;
  }
  // A 3-way join plan has at least 2 joins + 3 scans.
  EXPECT_GE(operator_lines, 5u);
}

TEST(ExplainAnalyzeTest, RootActualRowsMatchesResultSize) {
  Database db;
  LoadThreeWay(&db);
  QueryResult r = Sql(&db, kThreeWayJoin);
  const PlanProfile& profile = db.last_profile();
  ASSERT_TRUE(profile.valid);
  EXPECT_EQ(profile.root.stats.rows_produced, r.rows.size());
  EXPECT_EQ(r.rows.size(), 600u);  // every lineitem joins through
}

TEST(ExplainAnalyzeTest, PerNodeIoSumsToQueryMetrics) {
  Database db;
  LoadThreeWay(&db);
  PhysicalPtr plan;
  {
    Result<PhysicalPtr> p = db.PlanQuery(kThreeWayJoin);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    plan = p.MoveValue();
  }
  // Cold cache so the scans do real page reads.
  ASSERT_OK(db.pool()->FlushAll());
  ASSERT_OK(db.pool()->EvictAll());
  Result<QueryResult> r = db.ExecutePlan(*plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  const ExecutionMetrics& m = db.last_metrics();
  const PlanProfile& profile = db.last_profile();
  ASSERT_TRUE(profile.valid);
  EXPECT_GT(m.io.page_reads, 0u);
  // I/O attribution is exclusive per operator, so it must sum exactly.
  EXPECT_EQ(profile.TotalPageReads(), m.io.page_reads);
  EXPECT_EQ(profile.TotalPageWrites(), m.io.page_writes);
}

TEST(ExplainAnalyzeTest, QErrorReflectsStaleStatistics) {
  Database db;
  Sql(&db, "CREATE TABLE t (a INT)");
  std::string ins = "INSERT INTO t VALUES ";
  for (int i = 0; i < 100; ++i) {
    if (i > 0) ins += ", ";
    ins += "(" + std::to_string(i) + ")";
  }
  Sql(&db, ins);
  Sql(&db, "ANALYZE");  // stats now say 100 rows
  for (int batch = 0; batch < 9; ++batch) {  // grow to 1000 without re-analyzing
    std::string more = "INSERT INTO t VALUES ";
    for (int i = 0; i < 100; ++i) {
      if (i > 0) more += ", ";
      more += "(" + std::to_string(1000 + batch * 100 + i) + ")";
    }
    Sql(&db, more);
  }
  QueryResult r = Sql(&db, "SELECT a FROM t");
  ASSERT_EQ(r.rows.size(), 1000u);
  const PlanProfile& profile = db.last_profile();
  ASSERT_TRUE(profile.valid);
  // est 100 vs actual 1000: Q-error ~10 at the scan.
  EXPECT_GT(profile.root.q_error(), 5.0);
  EXPECT_LT(profile.root.q_error(), 20.0);
}

TEST(ExplainAnalyzeTest, QErrorHelperIsSymmetricAndClamped) {
  EXPECT_DOUBLE_EQ(QError(10, 100), 10.0);
  EXPECT_DOUBLE_EQ(QError(100, 10), 10.0);
  EXPECT_DOUBLE_EQ(QError(50, 50), 1.0);
  EXPECT_DOUBLE_EQ(QError(0, 0), 1.0);  // both clamped to 1
  EXPECT_DOUBLE_EQ(QError(0, 10), 10.0);
}

TEST(ExplainAnalyzeTest, ChromeTraceIsWellFormedEventArray) {
  Database db;
  LoadThreeWay(&db);
  Sql(&db, kThreeWayJoin);
  const PlanProfile& profile = db.last_profile();
  ASSERT_TRUE(profile.valid);
  std::string trace = profile.ToChromeTrace();
  EXPECT_EQ(trace.front(), '[');
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ts\":"), std::string::npos);
  EXPECT_NE(trace.find("\"dur\":"), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(trace.find("\"tid\":"), std::string::npos);
  // One event per operator.
  size_t events = 0;
  for (size_t pos = 0; (pos = trace.find("\"name\":", pos)) != std::string::npos; ++pos) ++events;
  EXPECT_EQ(events, profile.NumOperators());
}

TEST(ExplainAnalyzeTest, ProfileJsonNestsChildren) {
  Database db;
  LoadThreeWay(&db);
  Sql(&db, kThreeWayJoin);
  std::string json = db.last_profile().ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"children\":["), std::string::npos);
  EXPECT_NE(json.find("\"actual_rows\":"), std::string::npos);
  EXPECT_NE(json.find("\"q_error\":"), std::string::npos);
}

TEST(ExplainAnalyzeTest, DmlStatementsReportTheirOwnDeltas) {
  Database db;
  Sql(&db, "CREATE TABLE t (a INT)");
  Sql(&db, "INSERT INTO t VALUES (1), (2), (3)");
  const ExecutionMetrics& after_insert = db.last_metrics();
  EXPECT_GT(after_insert.pool.hits + after_insert.pool.misses, 0u);
  // A later SELECT's metrics must not include the insert's pool traffic
  // compounded — each statement resets the deltas.
  Sql(&db, "SELECT a FROM t");
  const ExecutionMetrics& after_select = db.last_metrics();
  EXPECT_EQ(after_select.actual_rows, 3u);
}

}  // namespace
}  // namespace relopt
