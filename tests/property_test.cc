// Property-based tests over randomized workloads: every optimizer
// configuration must return identical result sets, estimates must behave
// sanely, and invariants (B+tree integrity after mixed workloads; sort
// output order) must hold under randomized inputs.
#include <gtest/gtest.h>

#include <algorithm>

#include "storage/btree.h"
#include "test_util.h"
#include "types/key_codec.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/queries.h"

namespace relopt {
namespace {

std::vector<std::string> Canon(const QueryResult& r) {
  std::vector<std::string> rows;
  for (const Tuple& t : r.rows) rows.push_back(t.ToString());
  std::sort(rows.begin(), rows.end());
  return rows;
}

// ---- Parameterized: join topology x optimizer algorithm agreement ---------

struct TopoParam {
  const char* topology;
  int num_relations;
};

class TopologyAgreementTest : public ::testing::TestWithParam<TopoParam> {};

TEST_P(TopologyAgreementTest, AllAlgorithmsAgree) {
  const TopoParam& param = GetParam();
  Database db;
  JoinWorkloadSpec spec;
  spec.num_relations = param.num_relations;
  spec.base_rows = 120;
  spec.growth = 2.0;
  spec.seed = 7;
  Result<std::string> q = [&]() -> Result<std::string> {
    if (std::string(param.topology) == "chain") return BuildChainWorkload(&db, spec);
    if (std::string(param.topology) == "star") return BuildStarWorkload(&db, spec);
    spec.base_rows = 40;
    return BuildCliqueWorkload(&db, spec);
  }();
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  db.options().optimizer.join.algorithm = JoinEnumAlgorithm::kDpBushy;
  QueryResult reference = tu::Sql(&db, *q);

  for (JoinEnumAlgorithm a :
       {JoinEnumAlgorithm::kDpLeftDeep, JoinEnumAlgorithm::kGreedy,
        JoinEnumAlgorithm::kExhaustive, JoinEnumAlgorithm::kRandom, JoinEnumAlgorithm::kWorst,
        JoinEnumAlgorithm::kDpCcp}) {
    db.options().optimizer.join.algorithm = a;
    // The worst-case baseline can legitimately produce cross-product plans
    // with astronomically many intermediate tuples (that is its purpose);
    // only execute plans whose estimated work is sane.
    Result<PhysicalPtr> plan = db.PlanQuery(*q);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    if ((*plan)->est_cost().cpu_tuples > 5e6) continue;
    Result<QueryResult> r = db.ExecutePlan(**plan);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(Canon(reference), Canon(*r))
        << param.topology << "/" << param.num_relations << " with "
        << JoinEnumAlgorithmToString(a);
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, TopologyAgreementTest,
                         ::testing::Values(TopoParam{"chain", 3}, TopoParam{"chain", 5},
                                           TopoParam{"star", 4}, TopoParam{"star", 5},
                                           TopoParam{"clique", 3}, TopoParam{"clique", 4}),
                         [](const ::testing::TestParamInfo<TopoParam>& info) {
                           return std::string(info.param.topology) + "_" +
                                  std::to_string(info.param.num_relations);
                         });

// ---- Parameterized: buffer pool size must never change results -------------

class BufferSizeInvarianceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BufferSizeInvarianceTest, ResultsIdenticalAcrossPoolSizes) {
  SessionOptions options;
  options.buffer_pool_pages = GetParam();
  Database db(options);
  tu::LoadEmpDept(&db, 400, 8);
  QueryResult r = tu::Sql(
      &db,
      "SELECT dept_id, count(*), sum(salary) FROM emp GROUP BY dept_id ORDER BY dept_id");
  ASSERT_EQ(r.rows.size(), 8u);
  int64_t total = 0;
  for (const Tuple& row : r.rows) total += row.At(1).AsInt();
  EXPECT_EQ(total, 400);
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, BufferSizeInvarianceTest,
                         ::testing::Values(10, 16, 32, 64, 256, 1024));

// ---- Randomized predicate estimation sanity --------------------------------

TEST(EstimationPropertyTest, SelectivityEstimatesStayInUnitInterval) {
  Database db;
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 2000;
  spec.columns = {ColumnSpec::Serial("id"), ColumnSpec::Uniform("a", -50, 50),
                  ColumnSpec::Zipf("z", 30, 0.9)};
  ASSERT_TRUE(GenerateTable(&db, spec).ok());

  Rng rng(21);
  const char* cols[] = {"id", "a", "z"};
  const char* ops[] = {"=", "<", "<=", ">", ">=", "<>"};
  for (int i = 0; i < 200; ++i) {
    std::string col = cols[rng.UniformInt(0, 2)];
    std::string op = ops[rng.UniformInt(0, 5)];
    int64_t v = rng.UniformInt(-100, 2100);
    std::string sql = "SELECT count(*) FROM t WHERE " + col + " " + op + " " +
                      std::to_string(v);
    Result<PhysicalPtr> plan = db.PlanQuery(sql);
    ASSERT_TRUE(plan.ok()) << sql;
    // Root estimate within [0, num_rows].
    EXPECT_GE((*plan)->child(0)->est_rows(), 0.0) << sql;
    const PhysicalNode* scan = plan->get();
    while (!scan->children().empty()) scan = scan->child(0);
    EXPECT_LE(scan->est_rows(), 2000.0 * 1.01) << sql;
  }
}

// ---- Randomized queries: estimates vs actuals are finite & plans execute ---

TEST(RandomQueryPropertyTest, RandomConjunctionsExecuteAndMatchNaive) {
  Database db;
  tu::LoadEmpDept(&db, 250, 10);
  Rng rng(31);
  for (int i = 0; i < 40; ++i) {
    // Random conjunction of 1-3 predicates over emp columns.
    std::string where;
    int terms = static_cast<int>(rng.UniformInt(1, 3));
    for (int t = 0; t < terms; ++t) {
      if (t > 0) where += " AND ";
      switch (rng.UniformInt(0, 2)) {
        case 0:
          where += "salary > " + std::to_string(rng.UniformInt(500, 6500));
          break;
        case 1:
          where += "dept_id = " + std::to_string(rng.UniformInt(0, 12));
          break;
        default:
          where += "id < " + std::to_string(rng.UniformInt(0, 300));
      }
    }
    std::string sql = "SELECT count(*) FROM emp WHERE " + where;
    db.options().optimizer.naive = false;
    QueryResult optimized = tu::Sql(&db, sql);
    db.options().optimizer.naive = true;
    QueryResult naive = tu::Sql(&db, sql);
    db.options().optimizer.naive = false;
    EXPECT_EQ(optimized.rows[0].At(0).AsInt(), naive.rows[0].At(0).AsInt()) << sql;
  }
}

// ---- B+tree invariants under a randomized mixed workload -------------------

TEST(BTreePropertyTest, IntegrityHoldsUnderRandomInsertDelete) {
  DiskManager disk;
  BufferPool pool(&disk, 128);
  Result<BTree> tree_result = BTree::Create(&pool);
  ASSERT_TRUE(tree_result.ok());
  BTree tree = tree_result.MoveValue();

  Rng rng(77);
  std::vector<std::pair<std::string, Rid>> live;
  for (int step = 0; step < 5000; ++step) {
    if (live.empty() || rng.UniformDouble() < 0.65) {
      int64_t k = rng.UniformInt(0, 500);
      std::string key = EncodeKey({Value::Int(k)});
      Rid rid{static_cast<PageNo>(step), static_cast<uint16_t>(step % 7)};
      ASSERT_TRUE(tree.Insert(key, rid).ok());
      live.push_back({key, rid});
    } else {
      size_t pick = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      ASSERT_TRUE(tree.Delete(live[pick].first, live[pick].second).ok());
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    }
    if (step % 500 == 0) {
      ASSERT_TRUE(tree.CheckIntegrity().ok()) << "at step " << step;
    }
  }
  ASSERT_TRUE(tree.CheckIntegrity().ok());
  Result<size_t> entries = tree.NumEntries();
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(*entries, live.size());
}

// ---- Sort order property under random data ---------------------------------

TEST(SortPropertyTest, OrderByAlwaysSorted) {
  Database db;
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 3000;
  spec.columns = {ColumnSpec::Uniform("a", 0, 100), ColumnSpec::Uniform("b", 0, 1000)};
  ASSERT_TRUE(GenerateTable(&db, spec).ok());
  QueryResult r = tu::Sql(&db, "SELECT a, b FROM t ORDER BY a, b DESC");
  ASSERT_EQ(r.rows.size(), 3000u);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    int64_t a_prev = r.rows[i - 1].At(0).AsInt(), a = r.rows[i].At(0).AsInt();
    ASSERT_LE(a_prev, a);
    if (a_prev == a) {
      ASSERT_GE(r.rows[i - 1].At(1).AsInt(), r.rows[i].At(1).AsInt());
    }
  }
}

}  // namespace
}  // namespace relopt
