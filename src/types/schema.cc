#include "types/schema.h"

#include "util/str_util.h"

namespace relopt {

Result<size_t> Schema::IndexOf(const std::string& table, const std::string& name) const {
  std::optional<size_t> found;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Column& c = columns_[i];
    if (!EqualsIgnoreCase(c.name, name)) continue;
    if (!table.empty() && !EqualsIgnoreCase(c.table, table)) continue;
    if (found.has_value()) {
      return Status::BindError("ambiguous column reference '" +
                               (table.empty() ? name : table + "." + name) + "'");
    }
    found = i;
  }
  if (!found.has_value()) {
    return Status::BindError("column '" + (table.empty() ? name : table + "." + name) +
                             "' not found");
  }
  return *found;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns_;
  cols.insert(cols.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(cols));
}

Schema Schema::WithQualifier(const std::string& alias) const {
  std::vector<Column> cols = columns_;
  for (Column& c : cols) c.table = alias;
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].QualifiedName();
    out += " ";
    out += TypeIdToString(columns_[i].type);
  }
  out += ")";
  return out;
}

bool Schema::Equals(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type ||
        columns_[i].table != other.columns_[i].table) {
      return false;
    }
  }
  return true;
}

}  // namespace relopt
