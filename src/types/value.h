// Value: a single nullable scalar datum.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "types/type.h"
#include "util/result.h"
#include "util/status.h"

namespace relopt {

/// \brief A nullable scalar value: NULL, bool, int64, double, or string.
///
/// Values are small, copyable, and carry their own runtime type. Comparison
/// between int64 and double coerces to double (SQL numeric comparison).
class Value {
 public:
  /// NULL value (typed as int64 by default; see MakeNull to carry a type).
  Value() : type_(TypeId::kInt64), repr_(std::monostate{}) {}

  static Value Null(TypeId type = TypeId::kInt64) {
    Value v;
    v.type_ = type;
    return v;
  }
  static Value Bool(bool b) { return Value(TypeId::kBool, b); }
  static Value Int(int64_t i) { return Value(TypeId::kInt64, i); }
  static Value Double(double d) { return Value(TypeId::kDouble, d); }
  static Value String(std::string s) { return Value(TypeId::kString, std::move(s)); }

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  TypeId type() const { return type_; }

  /// Typed accessors; must match type() and be non-null.
  bool AsBool() const { return std::get<bool>(repr_); }
  int64_t AsInt() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  /// Numeric value as double (int64 is widened). Must be numeric, non-null.
  double NumericAsDouble() const {
    return type_ == TypeId::kInt64 ? static_cast<double>(AsInt()) : AsDouble();
  }

  /// \brief Three-way comparison. NULLs sort before all non-nulls (used by
  /// sorting); SQL NULL semantics for predicates are handled in the
  /// expression evaluator, not here.
  ///
  /// Returns TypeError for incomparable types (e.g. string vs int).
  Result<int> Compare(const Value& other) const;

  /// Equality under Compare()==0; incomparable types are unequal.
  bool Equals(const Value& other) const;

  /// Stable hash; equal values hash equal (int64/double with the same numeric
  /// value hash alike so hash joins can match across numeric types).
  size_t Hash() const;

  /// SQL-literal-ish rendering: NULL, true, 42, 3.5, 'abc'.
  std::string ToString() const;

  /// Casts to `target`; numeric widening/narrowing and string parsing.
  Result<Value> CastTo(TypeId target) const;

  /// Serialization into a byte buffer (appends). Format: 1-byte tag then
  /// fixed or length-prefixed payload.
  void SerializeTo(std::string* out) const;

  /// Deserializes one value from `data` at `*offset`, advancing it.
  static Result<Value> DeserializeFrom(std::string_view data, size_t* offset);

  bool operator==(const Value& other) const { return Equals(other); }

 private:
  template <typename T>
  Value(TypeId type, T v) : type_(type), repr_(std::move(v)) {}

  TypeId type_;
  std::variant<std::monostate, bool, int64_t, double, std::string> repr_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace relopt
