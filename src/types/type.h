// Scalar type system for the engine.
#pragma once

#include <cstdint>
#include <string>

namespace relopt {

/// Scalar column types supported by the engine. NULL is a property of a
/// Value, not a type.
enum class TypeId : uint8_t {
  kBool = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

/// Stable lower-case name ("int64", "double", ...).
const char* TypeIdToString(TypeId type);

/// Parses a SQL type name (INT/INTEGER/BIGINT -> int64, FLOAT/DOUBLE/REAL ->
/// double, TEXT/VARCHAR/STRING -> string, BOOL/BOOLEAN -> bool).
/// Returns false if unknown.
bool ParseTypeName(const std::string& name, TypeId* out);

/// True if the type is int64 or double.
inline bool IsNumeric(TypeId t) { return t == TypeId::kInt64 || t == TypeId::kDouble; }

/// True if values of `a` and `b` can be compared (same type, or both numeric).
inline bool AreComparable(TypeId a, TypeId b) {
  return a == b || (IsNumeric(a) && IsNumeric(b));
}

}  // namespace relopt
