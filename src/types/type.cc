#include "types/type.h"

#include "util/str_util.h"

namespace relopt {

const char* TypeIdToString(TypeId type) {
  switch (type) {
    case TypeId::kBool:
      return "bool";
    case TypeId::kInt64:
      return "int64";
    case TypeId::kDouble:
      return "double";
    case TypeId::kString:
      return "string";
  }
  return "?";
}

bool ParseTypeName(const std::string& name, TypeId* out) {
  std::string n = ToLower(name);
  if (n == "int" || n == "integer" || n == "bigint" || n == "int64") {
    *out = TypeId::kInt64;
    return true;
  }
  if (n == "float" || n == "double" || n == "real" || n == "float64") {
    *out = TypeId::kDouble;
    return true;
  }
  if (n == "text" || n == "varchar" || n == "string" || n == "char") {
    *out = TypeId::kString;
    return true;
  }
  if (n == "bool" || n == "boolean") {
    *out = TypeId::kBool;
    return true;
  }
  return false;
}

}  // namespace relopt
