// Tuple: one row of values, with page serialization.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "types/schema.h"
#include "types/value.h"
#include "util/result.h"

namespace relopt {

/// \brief A row: an ordered vector of Values matching some Schema.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t NumValues() const { return values_.size(); }
  const Value& At(size_t i) const { return values_[i]; }
  Value& MutableAt(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Drops all values but keeps the vector's capacity, so a recycled Tuple
  /// refills without reallocating (the batch-execution hot path).
  void Clear() { values_.clear(); }

  /// Concatenation (left row ++ right row), used by joins.
  static Tuple Concat(const Tuple& left, const Tuple& right);

  /// Serializes all values (self-describing tags; schema not required).
  std::string Serialize() const;

  /// Parses a tuple with `num_values` values from `data`.
  static Result<Tuple> Deserialize(std::string_view data, size_t num_values);

  /// Clear-and-refill deserialization into an existing Tuple, reusing its
  /// value storage. Equivalent to `*this = *Deserialize(data, n)` without
  /// the vector reconstruction.
  Status FillFrom(std::string_view data, size_t num_values);

  /// "(1, 'x', NULL)".
  std::string ToString() const;

  bool operator==(const Tuple& other) const;

 private:
  std::vector<Value> values_;
};

/// Lexicographic three-way comparison of two tuples over the given column
/// indices and sort directions (true = descending).
Result<int> CompareTuples(const Tuple& a, const Tuple& b, const std::vector<size_t>& keys,
                          const std::vector<bool>& desc);

}  // namespace relopt
