#include "types/key_codec.h"

#include <cstring>

namespace relopt {

namespace {
constexpr char kNullTag = 0x00;
constexpr char kBoolTag = 0x01;
constexpr char kNumTag = 0x02;
constexpr char kStrTag = 0x03;

/// Maps a double to a uint64 whose unsigned big-endian byte order matches the
/// double's numeric order (IEEE-754 total-order trick; NaNs map above +inf).
uint64_t DoubleToRank(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  if (bits & (uint64_t{1} << 63)) {
    return ~bits;  // negative: flip all bits
  }
  return bits | (uint64_t{1} << 63);  // positive: set sign bit
}

void AppendBigEndian64(uint64_t v, std::string* out) {
  for (int i = 7; i >= 0; --i) {
    out->push_back(static_cast<char>((v >> (i * 8)) & 0xFF));
  }
}
}  // namespace

void EncodeKeyValue(const Value& v, std::string* out) {
  if (v.is_null()) {
    out->push_back(kNullTag);
    return;
  }
  switch (v.type()) {
    case TypeId::kBool:
      out->push_back(kBoolTag);
      out->push_back(v.AsBool() ? 1 : 0);
      return;
    case TypeId::kInt64:
    case TypeId::kDouble: {
      out->push_back(kNumTag);
      AppendBigEndian64(DoubleToRank(v.NumericAsDouble()), out);
      return;
    }
    case TypeId::kString: {
      out->push_back(kStrTag);
      for (char c : v.AsString()) {
        if (c == '\0') {
          out->push_back('\0');
          out->push_back(static_cast<char>(0xFF));
        } else {
          out->push_back(c);
        }
      }
      out->push_back('\0');
      out->push_back('\0');
      return;
    }
  }
}

std::string EncodeKey(const std::vector<Value>& values) {
  std::string out;
  for (const Value& v : values) EncodeKeyValue(v, &out);
  return out;
}

std::string EncodeKeyFromTuple(const Tuple& tuple, const std::vector<size_t>& key_columns) {
  std::string out;
  for (size_t c : key_columns) EncodeKeyValue(tuple.At(c), &out);
  return out;
}

std::string PrefixSuccessor(std::string prefix) {
  while (!prefix.empty()) {
    unsigned char last = static_cast<unsigned char>(prefix.back());
    if (last != 0xFF) {
      prefix.back() = static_cast<char>(last + 1);
      return prefix;
    }
    prefix.pop_back();
  }
  return prefix;  // empty: no successor (scan to end)
}

}  // namespace relopt
