#include "types/tuple.h"

namespace relopt {

Tuple Tuple::Concat(const Tuple& left, const Tuple& right) {
  std::vector<Value> vals = left.values_;
  vals.insert(vals.end(), right.values_.begin(), right.values_.end());
  return Tuple(std::move(vals));
}

std::string Tuple::Serialize() const {
  std::string out;
  for (const Value& v : values_) v.SerializeTo(&out);
  return out;
}

Result<Tuple> Tuple::Deserialize(std::string_view data, size_t num_values) {
  Tuple t;
  RELOPT_RETURN_NOT_OK(t.FillFrom(data, num_values));
  return t;
}

Status Tuple::FillFrom(std::string_view data, size_t num_values) {
  values_.clear();
  if (values_.capacity() < num_values) values_.reserve(num_values);
  size_t offset = 0;
  for (size_t i = 0; i < num_values; ++i) {
    RELOPT_ASSIGN_OR_RETURN(Value v, Value::DeserializeFrom(data, &offset));
    values_.push_back(std::move(v));
  }
  if (offset != data.size()) {
    return Status::Internal("trailing bytes after tuple deserialize");
  }
  return Status::OK();
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

bool Tuple::operator==(const Tuple& other) const {
  if (values_.size() != other.values_.size()) return false;
  for (size_t i = 0; i < values_.size(); ++i) {
    // NULL == NULL here (row identity, not SQL predicate semantics).
    if (values_[i].is_null() != other.values_[i].is_null()) return false;
    if (!values_[i].is_null() && !values_[i].Equals(other.values_[i])) return false;
  }
  return true;
}

Result<int> CompareTuples(const Tuple& a, const Tuple& b, const std::vector<size_t>& keys,
                          const std::vector<bool>& desc) {
  for (size_t k = 0; k < keys.size(); ++k) {
    RELOPT_ASSIGN_OR_RETURN(int c, a.At(keys[k]).Compare(b.At(keys[k])));
    if (c != 0) return (k < desc.size() && desc[k]) ? -c : c;
  }
  return 0;
}

}  // namespace relopt
