#include "types/value.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <functional>

#include "util/str_util.h"

namespace relopt {

namespace {
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagBool = 1;
constexpr uint8_t kTagInt = 2;
constexpr uint8_t kTagDouble = 3;
constexpr uint8_t kTagString = 4;

void AppendFixed(std::string* out, const void* p, size_t n) {
  out->append(reinterpret_cast<const char*>(p), n);
}
}  // namespace

Result<int> Value::Compare(const Value& other) const {
  // NULLs sort first; two NULLs are equal for ordering purposes.
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  if (IsNumeric(type_) && IsNumeric(other.type_)) {
    if (type_ == TypeId::kInt64 && other.type_ == TypeId::kInt64) {
      int64_t a = AsInt(), b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = NumericAsDouble(), b = other.NumericAsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type_ != other.type_) {
    return Status::TypeError(std::string("cannot compare ") + TypeIdToString(type_) + " with " +
                             TypeIdToString(other.type_));
  }
  switch (type_) {
    case TypeId::kBool: {
      int a = AsBool() ? 1 : 0, b = other.AsBool() ? 1 : 0;
      return a - b;
    }
    case TypeId::kString: {
      int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return Status::Internal("unreachable compare");
  }
}

bool Value::Equals(const Value& other) const {
  Result<int> c = Compare(other);
  return c.ok() && *c == 0;
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b9;
  switch (type_) {
    case TypeId::kBool:
      return AsBool() ? 0x1234567 : 0x89abcdef;
    case TypeId::kInt64:
      return std::hash<double>()(static_cast<double>(AsInt()));
    case TypeId::kDouble:
      return std::hash<double>()(AsDouble());
    case TypeId::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  switch (type_) {
    case TypeId::kBool:
      return AsBool() ? "true" : "false";
    case TypeId::kInt64:
      return std::to_string(AsInt());
    case TypeId::kDouble:
      return FormatDouble(AsDouble());
    case TypeId::kString:
      return "'" + EscapeSqlString(AsString()) + "'";
  }
  return "?";
}

Result<Value> Value::CastTo(TypeId target) const {
  if (is_null()) return Value::Null(target);
  if (type_ == target) return *this;
  switch (target) {
    case TypeId::kInt64:
      if (type_ == TypeId::kDouble) return Value::Int(static_cast<int64_t>(AsDouble()));
      if (type_ == TypeId::kBool) return Value::Int(AsBool() ? 1 : 0);
      if (type_ == TypeId::kString) {
        errno = 0;
        char* end = nullptr;
        long long v = std::strtoll(AsString().c_str(), &end, 10);
        if (end == AsString().c_str() || *end != '\0' || errno == ERANGE) {
          return Status::TypeError("cannot cast '" + AsString() + "' to int64");
        }
        return Value::Int(v);
      }
      break;
    case TypeId::kDouble:
      if (type_ == TypeId::kInt64) return Value::Double(static_cast<double>(AsInt()));
      if (type_ == TypeId::kBool) return Value::Double(AsBool() ? 1.0 : 0.0);
      if (type_ == TypeId::kString) {
        errno = 0;
        char* end = nullptr;
        double v = std::strtod(AsString().c_str(), &end);
        if (end == AsString().c_str() || *end != '\0' || errno == ERANGE) {
          return Status::TypeError("cannot cast '" + AsString() + "' to double");
        }
        return Value::Double(v);
      }
      break;
    case TypeId::kString:
      if (type_ == TypeId::kInt64) return Value::String(std::to_string(AsInt()));
      if (type_ == TypeId::kDouble) return Value::String(FormatDouble(AsDouble()));
      if (type_ == TypeId::kBool) return Value::String(AsBool() ? "true" : "false");
      break;
    case TypeId::kBool:
      if (type_ == TypeId::kInt64) return Value::Bool(AsInt() != 0);
      if (type_ == TypeId::kDouble) return Value::Bool(AsDouble() != 0.0);
      break;
  }
  return Status::TypeError(std::string("unsupported cast ") + TypeIdToString(type_) + " -> " +
                           TypeIdToString(target));
}

void Value::SerializeTo(std::string* out) const {
  if (is_null()) {
    out->push_back(static_cast<char>(kTagNull));
    out->push_back(static_cast<char>(type_));
    return;
  }
  switch (type_) {
    case TypeId::kBool:
      out->push_back(static_cast<char>(kTagBool));
      out->push_back(AsBool() ? 1 : 0);
      break;
    case TypeId::kInt64: {
      out->push_back(static_cast<char>(kTagInt));
      int64_t v = AsInt();
      AppendFixed(out, &v, sizeof(v));
      break;
    }
    case TypeId::kDouble: {
      out->push_back(static_cast<char>(kTagDouble));
      double v = AsDouble();
      AppendFixed(out, &v, sizeof(v));
      break;
    }
    case TypeId::kString: {
      out->push_back(static_cast<char>(kTagString));
      uint32_t len = static_cast<uint32_t>(AsString().size());
      AppendFixed(out, &len, sizeof(len));
      out->append(AsString());
      break;
    }
  }
}

Result<Value> Value::DeserializeFrom(std::string_view data, size_t* offset) {
  if (*offset >= data.size()) return Status::OutOfRange("value deserialize past end");
  uint8_t tag = static_cast<uint8_t>(data[(*offset)++]);
  auto need = [&](size_t n) -> Status {
    if (*offset + n > data.size()) return Status::OutOfRange("value deserialize past end");
    return Status::OK();
  };
  switch (tag) {
    case kTagNull: {
      RELOPT_RETURN_NOT_OK(need(1));
      TypeId t = static_cast<TypeId>(data[(*offset)++]);
      return Value::Null(t);
    }
    case kTagBool: {
      RELOPT_RETURN_NOT_OK(need(1));
      return Value::Bool(data[(*offset)++] != 0);
    }
    case kTagInt: {
      RELOPT_RETURN_NOT_OK(need(sizeof(int64_t)));
      int64_t v;
      std::memcpy(&v, data.data() + *offset, sizeof(v));
      *offset += sizeof(v);
      return Value::Int(v);
    }
    case kTagDouble: {
      RELOPT_RETURN_NOT_OK(need(sizeof(double)));
      double v;
      std::memcpy(&v, data.data() + *offset, sizeof(v));
      *offset += sizeof(v);
      return Value::Double(v);
    }
    case kTagString: {
      RELOPT_RETURN_NOT_OK(need(sizeof(uint32_t)));
      uint32_t len;
      std::memcpy(&len, data.data() + *offset, sizeof(len));
      *offset += sizeof(len);
      RELOPT_RETURN_NOT_OK(need(len));
      Value v = Value::String(std::string(data.substr(*offset, len)));
      *offset += len;
      return v;
    }
    default:
      return Status::Internal("bad value tag " + std::to_string(tag));
  }
}

}  // namespace relopt
