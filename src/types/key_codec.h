// Order-preserving key encoding: Values -> memcmp-comparable byte strings.
//
// This lets the B+tree (and external sort's run merger) compare composite
// keys of any type with plain memcmp, the classic technique used by storage
// engines (e.g. MyRocks, CockroachDB key encodings).
//
// Encoding per value:
//   NULL    -> 0x00
//   bool    -> 0x01 then 0x00/0x01
//   numeric -> 0x02 then 8-byte big-endian "rank" of the double value
//              (int64 encodes as the same rank as its double value, so mixed
//               int/double composite keys order correctly; exact int ordering
//               beyond 2^53 is not needed by the toy engine and is documented)
//   string  -> 0x03 then bytes with 0x00 escaped as 0x00 0xFF, terminated by
//              0x00 0x00 (standard escape so 'a' < 'ab' and embedded NULs work)
//
// NULL sorts before everything, matching Value::Compare.
#pragma once

#include <string>
#include <vector>

#include "types/tuple.h"
#include "types/value.h"

namespace relopt {

/// Appends the order-preserving encoding of `v` to `out`.
void EncodeKeyValue(const Value& v, std::string* out);

/// Encodes a composite key.
std::string EncodeKey(const std::vector<Value>& values);

/// Encodes a composite key from selected columns of a tuple.
std::string EncodeKeyFromTuple(const Tuple& tuple, const std::vector<size_t>& key_columns);

/// Successor of a key prefix: smallest string strictly greater than every
/// string having `prefix` as a prefix (appends 0xFF... semantics via
/// increment). Used for prefix range scans.
std::string PrefixSuccessor(std::string prefix);

}  // namespace relopt
