// TupleBatch: a column of rows moved through the executor tree at once.
//
// The batch owns a fixed-capacity vector of reusable Tuples plus a selection
// vector of indices into it. Operators that produce rows append into slots
// recycled across batches (clear-and-refill, no per-row vector allocation);
// operators that eliminate rows (Filter, Limit) compact the selection vector
// and leave the row storage untouched. Consumers iterate the selection only.
#pragma once

#include <cstdint>
#include <vector>

#include "types/tuple.h"

namespace relopt {

/// \brief A batch of rows with a selection vector.
///
/// Invariants: `selection()` holds strictly increasing indices < NumRows();
/// freshly appended rows are selected. Row storage is reused across Clear()
/// calls, so a steady-state pipeline allocates nothing per batch.
class TupleBatch {
 public:
  /// Default rows per batch; large enough to amortize per-call overhead,
  /// small enough to stay cache-resident for narrow tuples.
  static constexpr size_t kDefaultCapacity = 1024;

  explicit TupleBatch(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    sel_.reserve(capacity_);
  }

  size_t capacity() const { return capacity_; }

  /// Re-caps how many rows fit before Full(). LIMIT shrinks the batch it
  /// hands its child to the rows it still needs, so a producer that does
  /// real work per row (external-sort merge, scan) stops at the limit
  /// instead of filling a whole batch that gets truncated — keeping page
  /// I/O identical to the row-at-a-time loop. Shrinking below NumRows()
  /// only stops further appends; existing rows stay.
  void SetCapacity(size_t capacity) { capacity_ = capacity == 0 ? 1 : capacity; }
  /// Rows physically stored (selected or not).
  size_t NumRows() const { return num_rows_; }
  /// Rows surviving the selection vector.
  size_t NumSelected() const { return sel_.size(); }
  bool Empty() const { return sel_.empty(); }
  bool Full() const { return num_rows_ >= capacity_; }

  /// Forgets all rows and the selection; per-row storage is kept for reuse.
  void Clear() {
    num_rows_ = 0;
    sel_.clear();
  }

  /// Appends (and selects) one row slot, returning the reusable Tuple to
  /// fill. The slot is already cleared. Caller must check !Full() first.
  Tuple* AppendRow() {
    if (num_rows_ == rows_.size()) rows_.emplace_back();
    Tuple* t = &rows_[num_rows_];
    t->Clear();
    sel_.push_back(static_cast<uint32_t>(num_rows_));
    ++num_rows_;
    return t;
  }

  /// Appends (and selects) a row by move — the Gather adoption path.
  void AppendTuple(Tuple&& t) {
    if (num_rows_ == rows_.size()) rows_.emplace_back();
    rows_[num_rows_] = std::move(t);
    sel_.push_back(static_cast<uint32_t>(num_rows_));
    ++num_rows_;
  }

  /// Undoes the most recent AppendRow (row-adapter hit end-of-stream).
  void DropLastRow() {
    sel_.pop_back();
    --num_rows_;
  }

  const Tuple& RowAt(size_t i) const { return rows_[i]; }
  Tuple* MutableRowAt(size_t i) { return &rows_[i]; }
  /// The k-th *selected* row.
  const Tuple& SelectedRow(size_t k) const { return rows_[sel_[k]]; }

  /// Selection vector: ascending indices into the row storage.
  const std::vector<uint32_t>& selection() const { return sel_; }
  /// Mutable selection for compacting operators (Filter). Entries must stay
  /// ascending indices into the existing rows.
  std::vector<uint32_t>* mutable_selection() { return &sel_; }

  /// Keeps only the first `n` selected rows (LIMIT at a batch boundary).
  void TruncateSelection(size_t n) {
    if (n < sel_.size()) sel_.resize(n);
  }

 private:
  size_t capacity_;
  size_t num_rows_ = 0;
  std::vector<Tuple> rows_;  ///< grows to capacity once, then recycled
  std::vector<uint32_t> sel_;
};

}  // namespace relopt
