// Schema: ordered, named, typed columns of a relation.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "types/type.h"
#include "util/result.h"

namespace relopt {

/// One column of a schema. `table` is the binding qualifier (table name or
/// alias) used to resolve `t.c` references; it may be empty for derived
/// columns.
struct Column {
  std::string name;
  TypeId type;
  std::string table;  // qualifier; empty for computed columns

  Column(std::string name_in, TypeId type_in, std::string table_in = "")
      : name(std::move(name_in)), type(type_in), table(std::move(table_in)) {}

  /// "t.c" or "c".
  std::string QualifiedName() const { return table.empty() ? name : table + "." + name; }
};

/// \brief Ordered list of columns describing tuples of a relation.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t NumColumns() const { return columns_.size(); }
  const Column& ColumnAt(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  /// \brief Resolves a possibly-qualified column reference.
  ///
  /// `table` empty matches any qualifier; ambiguous unqualified references
  /// (same name under two qualifiers) are a BindError. Name matching is
  /// case-insensitive.
  Result<size_t> IndexOf(const std::string& table, const std::string& name) const;

  /// Convenience for unqualified lookup.
  Result<size_t> IndexOf(const std::string& name) const { return IndexOf("", name); }

  /// Concatenation (left ++ right), used by joins.
  static Schema Concat(const Schema& left, const Schema& right);

  /// Re-qualifies every column with a new table alias (for FROM t AS a).
  Schema WithQualifier(const std::string& alias) const;

  /// "(t.a int64, t.b string)".
  std::string ToString() const;

  bool Equals(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

}  // namespace relopt
