// The optimizer facade: logical plan -> physical plan.
#pragma once

#include "catalog/catalog.h"
#include "optimizer/cost_model.h"
#include "optimizer/join_enum.h"
#include "optimizer/rewriter.h"
#include "optimizer/selectivity.h"
#include "plan/logical_plan.h"
#include "plan/physical_plan.h"

namespace relopt {

struct OptimizerOptions {
  JoinEnumOptions join;
  StatsMode stats_mode = StatsMode::kHistogram;
  double cpu_weight = Cost::kDefaultCpuWeight;
  /// Buffer pool pages the cost model assumes (should match the real pool).
  size_t buffer_pages = 256;
  /// Cost for vectorized (batch) execution: scales the per-tuple CPU weight
  /// by Cost::kVectorizedCpuFactor. Set from the session's execution mode so
  /// estimates track the engine the plan will actually run on.
  bool vectorized = false;

  /// The CPU weight the cost model should use, execution mode applied.
  double effective_cpu_weight() const {
    return vectorized ? cpu_weight * Cost::kVectorizedCpuFactor : cpu_weight;
  }
  /// Bypass all optimization: translate the binder's plan 1:1 (SeqScans,
  /// NLJs in FROM order, WHERE evaluated on top). The rewrite-ablation
  /// baseline.
  bool naive = false;
  /// Cardinality-feedback store to consult (not owned; nullptr = feedback
  /// off). Observed scan cardinalities and join selectivities override the
  /// statistical estimates for signatures the store has seen.
  const FeedbackStore* feedback = nullptr;
};

/// What the optimizer did (for EXPLAIN and the enumeration benchmarks).
struct OptimizeInfo {
  JoinEnumStats enum_stats;
  double est_rows = 0;
  Cost est_cost;
  bool order_from_plan = false;  ///< ORDER BY satisfied without a Sort node
  /// Optional decision log (not owned); when set, enumeration records every
  /// candidate considered and why losers were discarded.
  PlanTrace* trace = nullptr;
};

/// \brief Cost-based optimizer in the System-R architecture:
/// normalize -> query graph -> access paths -> join enumeration -> top
/// operators (aggregate / sort via interesting orders / project / limit).
class Optimizer {
 public:
  Optimizer(const Catalog* catalog, OptimizerOptions options)
      : catalog_(catalog),
        options_(std::move(options)),
        cost_model_(options_.buffer_pages, options_.effective_cpu_weight()) {}

  /// Consumes the logical plan.
  Result<PhysicalPtr> Optimize(LogicalPtr plan, OptimizeInfo* info = nullptr);

  const CostModel& cost_model() const { return cost_model_; }

 private:
  struct Translated {
    PhysicalPtr plan;
    OrderSpec order;  ///< known output order
  };

  /// True if `node` roots a join block (Scan / Join / Filter-over-those).
  static bool IsJoinBlock(const LogicalNode& node);

  Result<Translated> Translate(LogicalPtr node, const OrderSpec& required_order,
                               OptimizeInfo* info);
  Result<Translated> TranslateJoinBlock(LogicalPtr node, const OrderSpec& required_order,
                                        OptimizeInfo* info);
  Result<PhysicalPtr> TranslateNaive(LogicalPtr node);

  const Catalog* catalog_;
  OptimizerOptions options_;
  CostModel cost_model_;
  AliasMap aliases_;  // rebuilt per Optimize() call
};

}  // namespace relopt
