#include "optimizer/join_graph.h"

#include "expr/fold.h"
#include "util/str_util.h"

namespace relopt {

int QueryGraph::RelIndex(const std::string& alias) const {
  for (size_t i = 0; i < relations.size(); ++i) {
    if (EqualsIgnoreCase(relations[i].alias, alias)) return static_cast<int>(i);
  }
  return -1;
}

Result<JoinSet> QueryGraph::RelationsOf(const Expression& expr) const {
  JoinSet set;
  std::vector<const ColumnRefExpr*> refs;
  expr.CollectColumnRefs(&refs);
  for (const ColumnRefExpr* ref : refs) {
    if (!ref->table().empty()) {
      int idx = RelIndex(ref->table());
      if (idx < 0) {
        return Status::BindError("unknown qualifier '" + ref->table() + "' in predicate");
      }
      set = set.With(idx);
      continue;
    }
    // Unqualified: find the unique relation with this column.
    int found = -1;
    for (size_t i = 0; i < relations.size(); ++i) {
      if (relations[i].schema.IndexOf(ref->name()).ok()) {
        if (found >= 0) {
          return Status::BindError("ambiguous column '" + ref->name() + "' in predicate");
        }
        found = static_cast<int>(i);
      }
    }
    if (found < 0) {
      return Status::BindError("column '" + ref->name() + "' not found in any relation");
    }
    set = set.With(found);
  }
  return set;
}

bool QueryGraph::Connected(JoinSet a, JoinSet b) const {
  for (const JoinEdge& e : edges) {
    if ((a.Contains(e.left_rel) && b.Contains(e.right_rel)) ||
        (a.Contains(e.right_rel) && b.Contains(e.left_rel))) {
      return true;
    }
  }
  return false;
}

bool QueryGraph::FullyConnected() const {
  if (relations.empty()) return true;
  JoinSet reached = JoinSet::Single(0);
  bool grew = true;
  while (grew) {
    grew = false;
    for (const JoinEdge& e : edges) {
      bool l = reached.Contains(e.left_rel);
      bool r = reached.Contains(e.right_rel);
      if (l != r) {
        reached = reached.With(l ? e.right_rel : e.left_rel);
        grew = true;
      }
    }
  }
  return reached.Count() == static_cast<int>(relations.size());
}

namespace {

/// Walks the join block, collecting scans and predicates.
Status Collect(LogicalPtr node, const Catalog* catalog, QueryGraph* graph,
               std::vector<ExprPtr>* predicates) {
  switch (node->kind()) {
    case LogicalNodeKind::kScan: {
      auto* scan = static_cast<LogicalScan*>(node.get());
      BaseRelation rel;
      rel.alias = scan->alias();
      RELOPT_ASSIGN_OR_RETURN(rel.table, catalog->GetTable(scan->table_name()));
      rel.schema = scan->schema();
      graph->relations.push_back(std::move(rel));
      return Status::OK();
    }
    case LogicalNodeKind::kFilter: {
      auto* filter = static_cast<LogicalFilter*>(node.get());
      std::vector<ExprPtr> conjuncts = SplitConjuncts(filter->TakePredicate());
      for (ExprPtr& c : conjuncts) predicates->push_back(std::move(c));
      return Collect(node->TakeChild(0), catalog, graph, predicates);
    }
    case LogicalNodeKind::kJoin: {
      auto* join = static_cast<LogicalJoin*>(node.get());
      ExprPtr pred = join->TakePredicate();
      if (pred) {
        std::vector<ExprPtr> conjuncts = SplitConjuncts(std::move(pred));
        for (ExprPtr& c : conjuncts) predicates->push_back(std::move(c));
      }
      LogicalPtr left = node->TakeChild(0);
      LogicalPtr right = node->TakeChild(1);
      RELOPT_RETURN_NOT_OK(Collect(std::move(left), catalog, graph, predicates));
      return Collect(std::move(right), catalog, graph, predicates);
    }
    default:
      return Status::Internal("unexpected node kind in join block: " +
                              std::string(node->Describe()));
  }
}

}  // namespace

Result<QueryGraph> BuildQueryGraph(LogicalPtr join_block, const Catalog* catalog) {
  QueryGraph graph;
  std::vector<ExprPtr> predicates;
  RELOPT_RETURN_NOT_OK(Collect(std::move(join_block), catalog, &graph, &predicates));

  for (ExprPtr& pred : predicates) {
    ExprPtr expr = FoldConstants(std::move(pred));
    RELOPT_ASSIGN_OR_RETURN(JoinSet rels, graph.RelationsOf(*expr));
    if (rels.Count() <= 1) {
      if (rels.Count() == 1) {
        graph.relations[rels.Lowest()].conjuncts.push_back(std::move(expr));
      } else {
        // Constant predicate: keep it with the first relation (or drop a
        // constant TRUE).
        if (expr->kind() == ExprKind::kLiteral) {
          const Value& v = static_cast<LiteralExpr*>(expr.get())->value();
          if (!v.is_null() && v.type() == TypeId::kBool && v.AsBool()) continue;
        }
        if (!graph.relations.empty()) {
          graph.relations[0].conjuncts.push_back(std::move(expr));
        }
      }
      continue;
    }
    if (rels.Count() == 2) {
      std::optional<EquiJoinPred> equi = MatchEquiJoin(*expr);
      if (equi.has_value()) {
        JoinEdge edge;
        edge.left_rel = graph.RelIndex(equi->left_table);
        edge.right_rel = graph.RelIndex(equi->right_table);
        edge.left_column = equi->left_column;
        edge.right_column = equi->right_column;
        if (edge.left_rel >= 0 && edge.right_rel >= 0) {
          graph.edges.push_back(std::move(edge));
          continue;
        }
      }
    }
    graph.other_conjuncts.push_back(std::move(expr));
  }
  return graph;
}

}  // namespace relopt
