// Cardinality feedback (LEO-style): the engine observing its own estimation
// errors and correcting them on the next optimization.
//
// After each successful query (when SessionOptions::cardinality_feedback is
// on), the session harvests per-operator actuals from the PlanProfile into
// the Database's shared FeedbackStore, keyed on normalized signatures:
//
//   scan entries  s|<table>|<conjuncts>       -> actual output rows
//   join entries  j|<relations>|<edges>|<..>  -> observed join selectivity
//
// On the next optimization the SelectivityEstimator consults the store and
// overrides its statistical estimates with the observed values. The store's
// version participates in the plan-cache key, so a feedback update forces a
// re-optimization instead of replaying the stale cached plan; once the
// observed values stop moving, the version stops moving and cached plans are
// reused again.
//
// Invalidation: ANALYZE and DDL clear the whole store (new statistics or a
// new schema retire old observations); successful DML invalidates only the
// entries that mention the written table.
//
// Thread-safety: the store is shared by every session of a Database; all
// methods take an internal mutex. Lookups during optimization run under the
// shared statement lock, writes (harvest) also run under the shared lock —
// the mutex, not the statement lock, is what makes concurrent readers and
// writers safe.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "expr/expression.h"

namespace relopt {

struct PlanProfile;
class PhysicalNode;

/// \brief Shared per-Database store of observed cardinalities.
class FeedbackStore {
 public:
  /// A relative change below this threshold does not bump the version (so
  /// re-running a converged workload keeps hitting the plan cache).
  static constexpr double kVersionBumpThreshold = 0.01;

  /// One entry, snapshot form (relopt_feedback() rows).
  struct EntryInfo {
    std::string kind;       ///< "scan" or "join"
    std::string tables;     ///< comma-separated base tables the entry covers
    std::string signature;  ///< full normalized key
    double value = 0;       ///< observed rows (scan) or selectivity (join)
    uint64_t updates = 0;   ///< times recorded
    uint64_t hits = 0;      ///< times an optimization used it
  };

  // --- signature construction (pure; shared by harvest and lookup) ---------

  /// Normalized rendering of one predicate for a signature: qualifiers
  /// stripped when `strip_qualifiers` (single-table conjuncts), identifiers
  /// lower-cased outside string literals, literals preserved.
  static std::string RenderConjunct(const Expression& expr, bool strip_qualifiers);

  /// Scan key: `s|<table>|<conjuncts sorted and AND-joined>`. Conjuncts are
  /// rendered with bare column names so the same predicate under different
  /// aliases shares an entry.
  static std::string ScanSignature(const std::string& table,
                                   std::vector<std::string> conjunct_sigs);

  /// Join key: `j|<alias:table tags sorted>|<edge sigs sorted>|<other
  /// conjunct sigs sorted>`. Tags keep the alias so self-joins stay distinct.
  static std::string JoinSignature(std::vector<std::string> rel_tags,
                                   std::vector<std::string> edge_sigs,
                                   std::vector<std::string> other_sigs);

  // --- recording (harvest path) --------------------------------------------

  /// Records the observed output cardinality of a scan signature. `tables`
  /// lists the base tables the entry depends on (for DML invalidation).
  void RecordScanRows(const std::string& signature, const std::vector<std::string>& tables,
                      double actual_rows);
  /// Records the observed selectivity of a join signature (output rows
  /// divided by the product of input rows, clamped to [0, 1]).
  void RecordJoinSelectivity(const std::string& signature,
                             const std::vector<std::string>& tables, double selectivity);

  // --- lookup (optimization path) ------------------------------------------

  std::optional<double> LookupScanRows(const std::string& signature) const;
  std::optional<double> LookupJoinSelectivity(const std::string& signature) const;

  // --- invalidation ---------------------------------------------------------

  /// Drops every entry (ANALYZE / DDL: the statistical world changed).
  void Clear();
  /// Drops entries that mention `table` (successful DML). Returns the number
  /// dropped.
  size_t InvalidateTable(const std::string& table);

  // --- introspection --------------------------------------------------------

  /// Monotonic version: bumped whenever an entry materially changes or is
  /// invalidated. Participates in the plan-cache key.
  uint64_t version() const;
  size_t size() const;
  std::vector<EntryInfo> Snapshot() const;

 private:
  struct Entry {
    std::vector<std::string> tables;
    double value = 0;
    uint64_t updates = 0;
    mutable uint64_t hits = 0;
  };

  void RecordLocked(const std::string& signature, const std::vector<std::string>& tables,
                    double value);

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  uint64_t version_ = 0;
};

/// \brief Walks `plan` and `profile` in lockstep (the profile mirrors the
/// plan tree 1:1) and records actuals for every node carrying a feedback key.
/// Skipped entirely when the plan contains a LIMIT: partially consumed
/// operators report partial actuals that would poison the store.
void HarvestFeedback(const PhysicalNode& plan, const PlanProfile& profile, FeedbackStore* store);

}  // namespace relopt
