// Query graph extraction: base relations, attached predicates, join edges.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "expr/conjuncts.h"
#include "plan/logical_plan.h"
#include "util/bitset.h"
#include "util/result.h"

namespace relopt {

/// One base relation of a join block.
struct BaseRelation {
  std::string alias;       ///< FROM alias (qualifier of its columns)
  TableInfo* table;
  Schema schema;           ///< alias-qualified table schema
  std::vector<ExprPtr> conjuncts;  ///< single-table predicates on this relation
};

/// An equi-join edge `rel[left].left_column = rel[right].right_column`.
struct JoinEdge {
  int left_rel;
  std::string left_column;
  int right_rel;
  std::string right_column;
};

/// \brief The optimizer's view of a SELECT's join block: relations,
/// per-relation filters, equi-join edges, and everything else.
struct QueryGraph {
  std::vector<BaseRelation> relations;
  std::vector<JoinEdge> edges;
  /// Conjuncts referencing 2+ relations that are not simple equi-joins
  /// (non-equi joins, 3-table predicates, OR-of-joins, ...). Applied at the
  /// first join where all referenced relations are available.
  std::vector<ExprPtr> other_conjuncts;

  /// Index of a relation by alias; -1 if absent.
  int RelIndex(const std::string& alias) const;

  /// Set of relations referenced by `expr` (by alias); empty-qualifier refs
  /// map to the unique relation holding that column, or return an error.
  Result<JoinSet> RelationsOf(const Expression& expr) const;

  /// True if some edge connects `a` to `b`.
  bool Connected(JoinSet a, JoinSet b) const;

  /// True if the whole graph is connected (no cross product required).
  bool FullyConnected() const;
};

/// \brief Extracts a QueryGraph from a binder-produced join block: a subtree
/// of Filter / Join(inner, predicate folded into WHERE) / Scan nodes.
///
/// All predicates are split into conjuncts and classified: single-relation
/// conjuncts attach to their relation; two-relation equality of bare columns
/// becomes a JoinEdge; everything else lands in `other_conjuncts`.
Result<QueryGraph> BuildQueryGraph(LogicalPtr join_block, const Catalog* catalog);

}  // namespace relopt
