#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>

#include "util/metrics.h"
#include "util/str_util.h"
#include "util/timer.h"

namespace relopt {

bool Optimizer::IsJoinBlock(const LogicalNode& node) {
  switch (node.kind()) {
    case LogicalNodeKind::kScan:
      return true;
    case LogicalNodeKind::kJoin:
      return true;
    case LogicalNodeKind::kFilter:
      return IsJoinBlock(*node.child(0));
    default:
      return false;
  }
}

Result<PhysicalPtr> Optimizer::Optimize(LogicalPtr plan, OptimizeInfo* info) {
  OptimizeInfo local_info;
  if (info == nullptr) info = &local_info;

  // Engine-wide optimizer metrics: every optimization (traced or not) counts
  // its enumeration work and wall time into the global registry.
  const EngineMetrics& metrics = EngineMetrics::Get();
  const uint64_t start_nanos = MonotonicNanos();
  auto record = [&metrics, start_nanos, info]() {
    metrics.optimizer_optimizations->Add(1);
    metrics.optimizer_joins_costed->Add(info->enum_stats.joins_costed);
    metrics.optimizer_plans_kept->Add(info->enum_stats.dp_entries);
    metrics.optimizer_optimize_us->Observe(
        static_cast<double>(MonotonicNanos() - start_nanos) / 1000.0);
    // Join-enumeration counters only when a join search actually ran, so
    // single-table and non-join statements don't skew strategy counts.
    const JoinEnumStats& es = info->enum_stats;
    if (es.enumerated) {
      metrics.join_enum_joins_costed->Add(es.joins_costed);
      metrics.join_enum_dp_entries->Add(es.dp_entries);
      metrics.join_enum_subsets_visited->Add(es.subsets_visited);
      metrics.join_enum_csg_cmp_pairs->Add(es.csg_cmp_pairs);
      metrics.join_enum_disconnected_skips->Add(es.disconnected_subsets_skipped);
      if (es.budget_fallback) metrics.join_enum_budget_fallbacks->Add(1);
      const size_t strategy = static_cast<size_t>(es.strategy_used);
      if (strategy < EngineMetrics::kJoinEnumStrategies) {
        metrics.join_enum_strategy[strategy]->Add(1);
      }
    }
  };

  RELOPT_ASSIGN_OR_RETURN(plan, NormalizeLogicalPlan(std::move(plan)));
  aliases_.clear();

  if (options_.naive) {
    RELOPT_ASSIGN_OR_RETURN(PhysicalPtr phys, TranslateNaive(std::move(plan)));
    info->est_rows = phys->est_rows();
    info->est_cost = phys->est_cost();
    record();
    return phys;
  }

  RELOPT_ASSIGN_OR_RETURN(Translated t, Translate(std::move(plan), OrderSpec{}, info));
  info->est_rows = t.plan->est_rows();
  info->est_cost = t.plan->est_cost();
  record();
  return std::move(t.plan);
}

Result<Optimizer::Translated> Optimizer::TranslateJoinBlock(LogicalPtr node,
                                                            const OrderSpec& required_order,
                                                            OptimizeInfo* info) {
  RELOPT_ASSIGN_OR_RETURN(QueryGraph graph, BuildQueryGraph(std::move(node), catalog_));
  for (const BaseRelation& rel : graph.relations) {
    aliases_[ToLower(rel.alias)] = rel.table;
  }
  SelectivityEstimator estimator(&aliases_, options_.stats_mode, options_.feedback);
  JoinEnumOptions join_options = options_.join;
  join_options.trace = info->trace;
  JoinEnumerator enumerator(&graph, &estimator, &cost_model_, join_options);
  RELOPT_ASSIGN_OR_RETURN(JoinEnumResult result, enumerator.Run(required_order));
  info->enum_stats = enumerator.stats();
  Translated t;
  t.plan = std::move(result.plan);
  t.order = result.order_satisfied && !required_order.empty() ? required_order : result.order;
  return t;
}

Result<Optimizer::Translated> Optimizer::Translate(LogicalPtr node,
                                                   const OrderSpec& required_order,
                                                   OptimizeInfo* info) {
  if (IsJoinBlock(*node)) {
    return TranslateJoinBlock(std::move(node), required_order, info);
  }

  switch (node->kind()) {
    case LogicalNodeKind::kValues: {
      auto* values = static_cast<LogicalValues*>(node.get());
      Translated t;
      auto phys = std::make_unique<PhysValues>(values->rows(), values->schema());
      phys->SetEstimates(static_cast<double>(values->rows().size()), Cost{});
      t.plan = std::move(phys);
      return t;
    }
    case LogicalNodeKind::kTableFunction: {
      auto* fn = static_cast<LogicalTableFunction*>(node.get());
      Translated t;
      auto phys = std::make_unique<PhysTableFunctionScan>(fn->function_name(), fn->alias(),
                                                          fn->schema());
      // Snapshot size is unknown until execution; a nominal in-memory guess.
      phys->SetEstimates(64.0, Cost{});
      t.plan = std::move(phys);
      return t;
    }
    case LogicalNodeKind::kLimit: {
      auto* limit = static_cast<LogicalLimit*>(node.get());
      int64_t n = limit->limit();
      RELOPT_ASSIGN_OR_RETURN(Translated child,
                              Translate(node->TakeChild(0), required_order, info));
      double rows = std::min<double>(static_cast<double>(n), child.plan->est_rows());
      Cost cost = child.plan->est_cost();
      auto phys = std::make_unique<PhysLimit>(std::move(child.plan), n);
      phys->SetEstimates(rows, cost);
      Translated t;
      t.plan = std::move(phys);
      t.order = child.order;
      return t;
    }
    case LogicalNodeKind::kProject: {
      auto* project = static_cast<LogicalProject*>(node.get());
      std::vector<ExprPtr> exprs = std::move(project->mutable_exprs());
      Schema out_schema = project->schema();
      RELOPT_ASSIGN_OR_RETURN(Translated child,
                              Translate(node->TakeChild(0), required_order, info));
      // Re-bind: join reordering may have permuted the child's column order.
      for (ExprPtr& e : exprs) {
        RELOPT_RETURN_NOT_OK(e->Bind(child.plan->schema()));
      }
      double rows = child.plan->est_rows();
      Cost cost = child.plan->est_cost() + cost_model_.Project(rows);
      auto phys = std::make_unique<PhysProject>(std::move(child.plan), std::move(exprs),
                                                std::move(out_schema));
      phys->SetEstimates(rows, cost);
      Translated t;
      t.plan = std::move(phys);
      t.order = child.order;  // projection preserves row order
      return t;
    }
    case LogicalNodeKind::kFilter: {
      // A filter above a non-join-block child (e.g. HAVING over Aggregate).
      auto* filter = static_cast<LogicalFilter*>(node.get());
      ExprPtr pred = filter->TakePredicate();
      RELOPT_ASSIGN_OR_RETURN(Translated child,
                              Translate(node->TakeChild(0), required_order, info));
      RELOPT_RETURN_NOT_OK(pred->Bind(child.plan->schema()));
      SelectivityEstimator estimator(&aliases_, options_.stats_mode, options_.feedback);
      double sel = estimator.EstimatePredicate(*pred);
      double rows = child.plan->est_rows() * sel;
      Cost cost = child.plan->est_cost() + cost_model_.Filter(child.plan->est_rows());
      auto phys = std::make_unique<PhysFilter>(std::move(child.plan), std::move(pred));
      phys->SetEstimates(rows, cost);
      Translated t;
      t.plan = std::move(phys);
      t.order = child.order;
      return t;
    }
    case LogicalNodeKind::kAggregate: {
      auto* agg = static_cast<LogicalAggregate*>(node.get());
      std::vector<ExprPtr> group_by = std::move(agg->mutable_group_by());
      std::vector<PhysAggregate::Agg> aggs;
      for (AggregateSpec& spec : agg->mutable_aggs()) {
        aggs.push_back(PhysAggregate::Agg{spec.func, std::move(spec.arg)});
      }
      Schema out_schema = agg->schema();
      // Aggregation consumes its input unordered (hash aggregate).
      RELOPT_ASSIGN_OR_RETURN(Translated child, Translate(node->TakeChild(0), OrderSpec{}, info));
      for (ExprPtr& g : group_by) {
        RELOPT_RETURN_NOT_OK(g->Bind(child.plan->schema()));
      }
      for (PhysAggregate::Agg& a : aggs) {
        if (a.arg) {
          RELOPT_RETURN_NOT_OK(a.arg->Bind(child.plan->schema()));
        }
      }
      // Group count from catalog stats (NDVs, histograms, NULL groups).
      SelectivityEstimator estimator(&aliases_, options_.stats_mode, options_.feedback);
      double input_rows = std::max(child.plan->est_rows(), 1.0);
      double groups = estimator.EstimateGroupCount(group_by, input_rows);
      Cost cost = child.plan->est_cost() + cost_model_.Aggregate(input_rows, groups);
      auto phys = std::make_unique<PhysAggregate>(std::move(child.plan), std::move(group_by),
                                                  std::move(aggs), std::move(out_schema));
      phys->SetEstimates(groups, cost);
      Translated t;
      t.plan = std::move(phys);
      // Output is ordered by the encoded group key, but that ordering is not
      // expressible as a column OrderSpec here; report none.
      return t;
    }
    case LogicalNodeKind::kSort: {
      auto* sort = static_cast<LogicalSort*>(node.get());
      std::vector<SortKey> keys = std::move(sort->mutable_keys());
      // Derive the required order for the child when every key is a bare
      // column — that lets the join enumeration satisfy it for free.
      OrderSpec want;
      bool expressible = true;
      for (const SortKey& k : keys) {
        if (k.expr->kind() == ExprKind::kColumnRef) {
          const auto* ref = static_cast<const ColumnRefExpr*>(k.expr.get());
          want.push_back(OrderColumn{ref->table(), ref->name(), k.desc});
        } else {
          expressible = false;
          break;
        }
      }
      if (!expressible) want.clear();

      RELOPT_ASSIGN_OR_RETURN(Translated child, Translate(node->TakeChild(0), want, info));
      if (!want.empty() && OrderSatisfies(child.order, want)) {
        // Interesting order delivered: no Sort node needed.
        info->order_from_plan = true;
        return child;
      }
      std::vector<PhysSort::Key> phys_keys;
      for (SortKey& k : keys) {
        RELOPT_RETURN_NOT_OK(k.expr->Bind(child.plan->schema()));
        phys_keys.push_back(PhysSort::Key{std::move(k.expr), k.desc});
      }
      double rows = child.plan->est_rows();
      double pages = CostModel::EstimatePages(std::max(rows, 1.0), 64.0);
      Cost cost = child.plan->est_cost() + cost_model_.Sort(rows, pages);
      auto phys = std::make_unique<PhysSort>(std::move(child.plan), std::move(phys_keys));
      phys->SetEstimates(rows, cost);
      Translated t;
      t.plan = std::move(phys);
      t.order = want;
      return t;
    }
    default:
      return Status::Internal("unexpected logical node in Translate: " + node->Describe());
  }
}

Result<PhysicalPtr> Optimizer::TranslateNaive(LogicalPtr node) {
  switch (node->kind()) {
    case LogicalNodeKind::kScan: {
      auto* scan = static_cast<LogicalScan*>(node.get());
      RELOPT_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(scan->table_name()));
      double rows = table->has_stats() ? static_cast<double>(table->stats().num_rows)
                                       : static_cast<double>(table->live_rows());
      double pages = static_cast<double>(table->heap()->NumPages());
      auto phys = std::make_unique<PhysSeqScan>(table->name(), scan->alias(), scan->schema());
      phys->SetEstimates(rows, cost_model_.SeqScan(rows, pages));
      return PhysicalPtr(std::move(phys));
    }
    case LogicalNodeKind::kJoin: {
      auto* join = static_cast<LogicalJoin*>(node.get());
      ExprPtr pred = join->TakePredicate();
      RELOPT_ASSIGN_OR_RETURN(PhysicalPtr left, TranslateNaive(node->TakeChild(0)));
      RELOPT_ASSIGN_OR_RETURN(PhysicalPtr right, TranslateNaive(node->TakeChild(1)));
      double rows = left->est_rows() * right->est_rows();
      Cost cost = left->est_cost() + cost_model_.NestedLoop(left->est_rows(), right->est_cost(),
                                                            right->est_rows());
      if (pred) {
        Schema concat = Schema::Concat(left->schema(), right->schema());
        RELOPT_RETURN_NOT_OK(pred->Bind(concat));
        rows *= 1.0 / 3.0;
      }
      auto phys = std::make_unique<PhysNestedLoopJoin>(std::move(left), std::move(right),
                                                       std::move(pred));
      phys->SetEstimates(rows, cost);
      return PhysicalPtr(std::move(phys));
    }
    case LogicalNodeKind::kFilter: {
      auto* filter = static_cast<LogicalFilter*>(node.get());
      ExprPtr pred = filter->TakePredicate();
      RELOPT_ASSIGN_OR_RETURN(PhysicalPtr child, TranslateNaive(node->TakeChild(0)));
      RELOPT_RETURN_NOT_OK(pred->Bind(child->schema()));
      double rows = child->est_rows() / 3.0;
      Cost cost = child->est_cost() + cost_model_.Filter(child->est_rows());
      auto phys = std::make_unique<PhysFilter>(std::move(child), std::move(pred));
      phys->SetEstimates(rows, cost);
      return PhysicalPtr(std::move(phys));
    }
    case LogicalNodeKind::kProject: {
      auto* project = static_cast<LogicalProject*>(node.get());
      std::vector<ExprPtr> exprs = std::move(project->mutable_exprs());
      Schema out_schema = project->schema();
      RELOPT_ASSIGN_OR_RETURN(PhysicalPtr child, TranslateNaive(node->TakeChild(0)));
      for (ExprPtr& e : exprs) {
        RELOPT_RETURN_NOT_OK(e->Bind(child->schema()));
      }
      double rows = child->est_rows();
      Cost cost = child->est_cost() + cost_model_.Project(rows);
      auto phys = std::make_unique<PhysProject>(std::move(child), std::move(exprs),
                                                std::move(out_schema));
      phys->SetEstimates(rows, cost);
      return PhysicalPtr(std::move(phys));
    }
    case LogicalNodeKind::kAggregate: {
      auto* agg = static_cast<LogicalAggregate*>(node.get());
      std::vector<ExprPtr> group_by = std::move(agg->mutable_group_by());
      std::vector<PhysAggregate::Agg> aggs;
      for (AggregateSpec& spec : agg->mutable_aggs()) {
        aggs.push_back(PhysAggregate::Agg{spec.func, std::move(spec.arg)});
      }
      Schema out_schema = agg->schema();
      RELOPT_ASSIGN_OR_RETURN(PhysicalPtr child, TranslateNaive(node->TakeChild(0)));
      for (ExprPtr& g : group_by) {
        RELOPT_RETURN_NOT_OK(g->Bind(child->schema()));
      }
      for (PhysAggregate::Agg& a : aggs) {
        if (a.arg) {
          RELOPT_RETURN_NOT_OK(a.arg->Bind(child->schema()));
        }
      }
      double rows = std::max(1.0, child->est_rows() / 10.0);
      Cost cost = child->est_cost() + cost_model_.Aggregate(child->est_rows(), rows);
      auto phys = std::make_unique<PhysAggregate>(std::move(child), std::move(group_by),
                                                  std::move(aggs), std::move(out_schema));
      phys->SetEstimates(rows, cost);
      return PhysicalPtr(std::move(phys));
    }
    case LogicalNodeKind::kSort: {
      auto* sort = static_cast<LogicalSort*>(node.get());
      std::vector<SortKey> keys = std::move(sort->mutable_keys());
      RELOPT_ASSIGN_OR_RETURN(PhysicalPtr child, TranslateNaive(node->TakeChild(0)));
      std::vector<PhysSort::Key> phys_keys;
      for (SortKey& k : keys) {
        RELOPT_RETURN_NOT_OK(k.expr->Bind(child->schema()));
        phys_keys.push_back(PhysSort::Key{std::move(k.expr), k.desc});
      }
      double rows = child->est_rows();
      Cost cost = child->est_cost() +
                  cost_model_.Sort(rows, CostModel::EstimatePages(std::max(rows, 1.0), 64.0));
      auto phys = std::make_unique<PhysSort>(std::move(child), std::move(phys_keys));
      phys->SetEstimates(rows, cost);
      return PhysicalPtr(std::move(phys));
    }
    case LogicalNodeKind::kLimit: {
      auto* limit = static_cast<LogicalLimit*>(node.get());
      int64_t n = limit->limit();
      RELOPT_ASSIGN_OR_RETURN(PhysicalPtr child, TranslateNaive(node->TakeChild(0)));
      double rows = std::min<double>(static_cast<double>(n), child->est_rows());
      Cost cost = child->est_cost();
      auto phys = std::make_unique<PhysLimit>(std::move(child), n);
      phys->SetEstimates(rows, cost);
      return PhysicalPtr(std::move(phys));
    }
    case LogicalNodeKind::kValues: {
      auto* values = static_cast<LogicalValues*>(node.get());
      auto phys = std::make_unique<PhysValues>(values->rows(), values->schema());
      phys->SetEstimates(static_cast<double>(values->rows().size()), Cost{});
      return PhysicalPtr(std::move(phys));
    }
    case LogicalNodeKind::kTableFunction: {
      auto* fn = static_cast<LogicalTableFunction*>(node.get());
      auto phys = std::make_unique<PhysTableFunctionScan>(fn->function_name(), fn->alias(),
                                                          fn->schema());
      phys->SetEstimates(64.0, Cost{});
      return PhysicalPtr(std::move(phys));
    }
  }
  return Status::Internal("unknown logical node kind");
}

}  // namespace relopt
