// Selectivity estimation: System-R uniform defaults vs histograms.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "catalog/catalog.h"
#include "expr/conjuncts.h"
#include "expr/expression.h"
#include "optimizer/feedback.h"
#include "util/result.h"

namespace relopt {

/// How column statistics are used for estimation. The estimation-error
/// experiment (T5) toggles this.
enum class StatsMode {
  /// No statistics at all: the fixed magic constants of the earliest
  /// optimizers (1/10 for equality, 1/3 for ranges).
  kNoStats,
  /// System-R style: uniform-distribution assumption using NDV and min/max
  /// interpolation.
  kSystemR,
  /// Equi-depth histograms when available (falls back to kSystemR).
  kHistogram,
};

const char* StatsModeToString(StatsMode mode);

/// Maps FROM aliases to their base tables (the estimator's name context).
using AliasMap = std::map<std::string, TableInfo*>;

/// \brief Estimates predicate and join selectivities from catalog statistics.
class SelectivityEstimator {
 public:
  SelectivityEstimator(const AliasMap* aliases, StatsMode mode,
                       const FeedbackStore* feedback = nullptr)
      : aliases_(aliases), mode_(mode), feedback_(feedback) {}

  StatsMode mode() const { return mode_; }

  /// The cardinality-feedback store to consult, or nullptr (feedback off).
  const FeedbackStore* feedback() const { return feedback_; }
  /// Observed output rows for a scan signature, if the store has seen it.
  std::optional<double> FeedbackScanRows(const std::string& signature) const {
    return feedback_ == nullptr ? std::nullopt : feedback_->LookupScanRows(signature);
  }
  /// Observed selectivity for a join signature, if the store has seen it.
  std::optional<double> FeedbackJoinSelectivity(const std::string& signature) const {
    return feedback_ == nullptr ? std::nullopt : feedback_->LookupJoinSelectivity(signature);
  }

  /// Fraction of rows satisfying `expr` (a predicate over one or more
  /// relations; column refs are resolved through the alias map). Unknown
  /// shapes fall back to the classic default 1/3.
  double EstimatePredicate(const Expression& expr) const;

  /// Join selectivity of `left_alias.left_col = right_alias.right_col`:
  /// 1 / max(ndv_left, ndv_right), the System-R containment assumption.
  double EstimateEquiJoin(const std::string& left_alias, const std::string& left_col,
                          const std::string& right_alias, const std::string& right_col) const;

  /// Distinct values of a column (>=1); falls back to a tenth of the rows.
  double ColumnNdv(const std::string& alias, const std::string& column) const;

  /// \brief Estimated GROUP BY output cardinality over `input_rows` rows.
  ///
  /// Per grouping column: catalog NDV (histogram bucket distinct counts when
  /// in histogram mode), plus one extra group when the column has NULLs
  /// (NULLs group together). Non-column grouping expressions use
  /// kDefaultExprNdv. Multi-column keys multiply under the independence
  /// assumption; the product is clamped to [1, input_rows]. No GROUP BY
  /// (scalar aggregate) is exactly one group.
  double EstimateGroupCount(const std::vector<ExprPtr>& group_by, double input_rows) const;

  /// Column stats lookup; nullptr if the table has no stats or no column.
  const ColumnStats* FindColumn(const std::string& alias, const std::string& column) const;

  /// Defaults used when nothing better is known (exposed for tests).
  static constexpr double kDefaultEq = 0.1;
  static constexpr double kDefaultRange = 1.0 / 3.0;
  static constexpr double kDefaultUnknown = 1.0 / 3.0;
  /// Distinct values assumed for a non-column grouping expression.
  static constexpr double kDefaultExprNdv = 10.0;
  /// Selectivity floor when the table's row count is unknown. With stats the
  /// floor is one expected row (1 / num_rows): an exactly-zero selectivity
  /// multiplies through AND-chains and join cardinalities into degenerate
  /// zero-cost plans that win every comparison.
  static constexpr double kMinSelectivity = 1e-6;

 private:
  double EstimateSargable(const SargablePred& pred) const;
  /// Raw (unfloored) estimate; kNe needs the unfloored equality term.
  double EstimateSargableRaw(const SargablePred& pred) const;
  /// One-expected-row floor for the column's table; kMinSelectivity when the
  /// row count is unknown.
  double FloorFor(const SargablePred& pred) const;

  const AliasMap* aliases_;
  StatsMode mode_;
  const FeedbackStore* feedback_;
};

}  // namespace relopt
