#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

#include "storage/page.h"

namespace relopt {

double CostModel::EstimatePages(double rows, double row_bytes) {
  if (rows <= 0) return 0;
  double per_page = std::max(1.0, std::floor(static_cast<double>(kPageSize) / row_bytes));
  return std::ceil(rows / per_page);
}

double CostModel::YaoPagesTouched(double k, double pages) {
  if (pages <= 0 || k <= 0) return 0;
  if (k >= pages * 32) return pages;  // saturated
  return pages * (1.0 - std::pow(1.0 - 1.0 / pages, k));
}

size_t CostModel::OperatorMemoryPages() const {
  return buffer_pages_ > 8 ? buffer_pages_ - 8 : 1;
}

size_t CostModel::MergeFanIn() const { return std::max<size_t>(2, OperatorMemoryPages() - 1); }

Cost CostModel::SeqScan(double rows, double pages) const { return Cost{pages, rows}; }

Cost CostModel::IndexScan(double matching_rows, double selected_frac, double table_rows,
                          double pages, int height, double leaf_pages, bool clustered) const {
  (void)table_rows;
  Cost c;
  c.page_ios = static_cast<double>(height);
  c.page_ios += std::max(1.0, selected_frac * leaf_pages);
  if (clustered) {
    c.page_ios += std::max(matching_rows > 0 ? 1.0 : 0.0, selected_frac * pages);
  } else {
    // Random heap fetches, capped by Yao's formula (re-fetches of a cached
    // page still cost a buffer hit, but distinct pages dominate at the scale
    // the model cares about).
    c.page_ios += YaoPagesTouched(matching_rows, pages);
  }
  c.cpu_tuples = matching_rows;
  return c;
}

Cost CostModel::Filter(double input_rows) const { return Cost{0, input_rows}; }
Cost CostModel::Project(double input_rows) const { return Cost{0, input_rows}; }

Cost CostModel::Aggregate(double input_rows, double groups) const {
  return Cost{0, input_rows + groups};
}

Cost CostModel::Sort(double rows, double pages, double* runs_out, double* passes_out) const {
  const double memory = static_cast<double>(OperatorMemoryPages());
  if (runs_out) *runs_out = 0;
  if (passes_out) *passes_out = 0;
  if (pages <= memory) {
    // In-memory: CPU only.
    double cmp = rows > 1 ? rows * std::log2(rows) : rows;
    return Cost{0, cmp};
  }
  double runs = std::ceil(pages / memory);
  const double fanin = static_cast<double>(MergeFanIn());
  double passes = 0;
  double r = runs;
  while (r > fanin) {
    r = std::ceil(r / fanin);
    passes += 1;
  }
  if (runs_out) *runs_out = runs;
  if (passes_out) *passes_out = passes;
  // Run generation: write all pages. Each intermediate pass: read + write.
  // Final merge: read. Total = 2*pages*(1 + passes).
  double ios = 2.0 * pages * (1.0 + passes);
  double cmp = rows > 1 ? rows * std::log2(rows) : rows;
  return Cost{ios, cmp + rows * passes};
}

Cost CostModel::Materialize(double rows, double pages, double rescans) const {
  return Cost{pages * (1.0 + rescans), rows * rescans};
}

Cost CostModel::NestedLoop(double outer_rows, Cost inner_rerun_cost, double inner_rows) const {
  Cost c;
  c.page_ios = outer_rows * inner_rerun_cost.page_ios;
  c.cpu_tuples = outer_rows * std::max(inner_rows, 1.0);
  return c;
}

Cost CostModel::BlockNestedLoop(double outer_rows, double outer_pages, Cost inner_rerun_cost,
                                double inner_rows) const {
  double block = std::max(1.0, static_cast<double>(OperatorMemoryPages()) - 2.0);
  double blocks = std::max(1.0, std::ceil(outer_pages / block));
  Cost c;
  c.page_ios = blocks * inner_rerun_cost.page_ios;
  c.cpu_tuples = outer_rows * std::max(inner_rows, 1.0);
  return c;
}

Cost CostModel::IndexNestedLoop(double outer_rows, int inner_index_height,
                                double matches_per_probe, double inner_pages, double inner_rows,
                                bool clustered) const {
  (void)inner_rows;
  Cost c;
  // Clustered: matching rows are contiguous; approximate one page per ~64
  // rows (typical fill), minimum one page when anything matches.
  double fetch_pages =
      clustered ? std::max(matches_per_probe > 0 ? 1.0 : 0.0, std::ceil(matches_per_probe / 64.0))
                : YaoPagesTouched(matches_per_probe, inner_pages);
  c.page_ios = outer_rows * (static_cast<double>(inner_index_height) + fetch_pages);
  c.cpu_tuples = outer_rows * std::max(matches_per_probe, 1.0);
  return c;
}

Cost CostModel::MergeJoin(double left_rows, double right_rows, double output_rows) const {
  return Cost{0, left_rows + right_rows + output_rows};
}

bool CostModel::HashBuildFits(double build_pages) const {
  return build_pages <= static_cast<double>(OperatorMemoryPages());
}

Cost CostModel::HashJoin(double build_rows, double build_pages, double probe_rows,
                         double probe_pages) const {
  Cost c;
  c.cpu_tuples = build_rows + probe_rows;
  if (!HashBuildFits(build_pages)) {
    // Grace: write both sides to partitions, read them back.
    c.page_ios += 2.0 * (build_pages + probe_pages);
    c.cpu_tuples += build_rows + probe_rows;
  }
  return c;
}

}  // namespace relopt
