#include "optimizer/rewriter.h"

#include "expr/fold.h"

namespace relopt {

namespace {

/// True / false / null constant classification for folded predicates.
enum class PredConst { kTrue, kFalseOrNull, kOther };

PredConst Classify(const Expression& e) {
  if (e.kind() != ExprKind::kLiteral) return PredConst::kOther;
  const Value& v = static_cast<const LiteralExpr&>(e).value();
  if (v.is_null()) return PredConst::kFalseOrNull;
  if (v.type() == TypeId::kBool) return v.AsBool() ? PredConst::kTrue : PredConst::kFalseOrNull;
  return PredConst::kOther;
}

}  // namespace

Result<LogicalPtr> NormalizeLogicalPlan(LogicalPtr plan) {
  // Recurse into children first.
  for (size_t i = 0; i < plan->children().size(); ++i) {
    RELOPT_ASSIGN_OR_RETURN(LogicalPtr child, NormalizeLogicalPlan(plan->TakeChild(i)));
    plan->mutable_children()[i] = std::move(child);
  }

  if (plan->kind() == LogicalNodeKind::kFilter) {
    auto* filter = static_cast<LogicalFilter*>(plan.get());
    ExprPtr pred = FoldConstants(filter->TakePredicate());
    switch (Classify(*pred)) {
      case PredConst::kTrue:
        return plan->TakeChild(0);
      case PredConst::kFalseOrNull: {
        Schema schema = plan->schema();
        return LogicalPtr(std::make_unique<LogicalValues>(std::vector<Tuple>{}, std::move(schema)));
      }
      case PredConst::kOther:
        filter->SetPredicate(std::move(pred));
        return plan;
    }
  }
  return plan;
}

}  // namespace relopt
