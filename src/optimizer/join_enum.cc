#include "optimizer/join_enum.h"

#include <algorithm>
#include <cmath>

#include "expr/conjuncts.h"
#include "util/logging.h"
#include "util/str_util.h"

namespace relopt {

const char* JoinMethodToString(JoinMethod method) {
  switch (method) {
    case JoinMethod::kNestedLoop:
      return "nlj";
    case JoinMethod::kBlockNestedLoop:
      return "bnlj";
    case JoinMethod::kIndexNestedLoop:
      return "inlj";
    case JoinMethod::kSortMerge:
      return "smj";
    case JoinMethod::kHash:
      return "hash";
  }
  return "?";
}

const char* JoinEnumAlgorithmToString(JoinEnumAlgorithm algorithm) {
  switch (algorithm) {
    case JoinEnumAlgorithm::kDpBushy:
      return "dp-bushy";
    case JoinEnumAlgorithm::kDpLeftDeep:
      return "dp-leftdeep";
    case JoinEnumAlgorithm::kGreedy:
      return "greedy";
    case JoinEnumAlgorithm::kExhaustive:
      return "exhaustive";
    case JoinEnumAlgorithm::kRandom:
      return "random";
    case JoinEnumAlgorithm::kWorst:
      return "worst";
    case JoinEnumAlgorithm::kSimpliSquared:
      return "simpli2";
    case JoinEnumAlgorithm::kDpCcp:
      return "dpccp";
  }
  return "?";
}

namespace {

/// Per-edge selectivities and other-conjunct metadata are precomputed once.
struct EdgeSide {
  std::string alias;
  std::string column;
};

}  // namespace

JoinEnumerator::JoinEnumerator(const QueryGraph* graph, const SelectivityEstimator* estimator,
                               const CostModel* cost_model, JoinEnumOptions options)
    : graph_(graph),
      estimator_(estimator),
      cost_model_(cost_model),
      options_(options),
      rng_(options.random_seed) {}

int JoinEnumerator::Intern(Candidate cand) {
  arena_.push_back(std::move(cand));
  return static_cast<int>(arena_.size() - 1);
}

std::string JoinEnumerator::SetName(JoinSet set) const {
  std::string out = "{";
  bool first = true;
  set.ForEach([&](int r) {
    if (!first) out += ",";
    first = false;
    out += graph_->relations[r].alias;
  });
  out += "}";
  return out;
}

std::string JoinEnumerator::CandidateName(const Candidate& cand) const {
  if (cand.is_scan) {
    const AccessPath& path = access_paths_[cand.rel_index][cand.path_index];
    const BaseRelation& rel = graph_->relations[cand.rel_index];
    return path.index == nullptr ? "SeqScan(" + rel.alias + ")"
                                 : "IndexScan(" + rel.alias + " via " + path.index->name + ")";
  }
  return std::string(JoinMethodToString(cand.method)) + "(" + SetName(arena_[cand.left].set) +
         " x " + SetName(arena_[cand.right].set) + ")";
}

void JoinEnumerator::TraceCandidate(JoinSet set, const Candidate& cand, const char* action,
                                    const char* reason, const char* phase) const {
  if (options_.trace == nullptr || maximize_) return;
  PlanTraceEvent ev;
  ev.phase = phase != nullptr ? phase : (cand.is_scan ? "access_path" : "join");
  ev.target = SetName(set);
  ev.candidate = CandidateName(cand);
  ev.rows = cand.rows;
  ev.cost = cand.cost;
  ev.total_cost = cost_model_->Total(cand.cost);
  ev.action = action;
  ev.reason = reason;
  options_.trace->Add(std::move(ev));
}

Status JoinEnumerator::SeedBaseRelations() {
  access_paths_.clear();
  for (size_t i = 0; i < graph_->relations.size(); ++i) {
    RELOPT_ASSIGN_OR_RETURN(
        std::vector<AccessPath> paths,
        EnumerateAccessPaths(*graph_, static_cast<int>(i), *estimator_, *cost_model_,
                             options_.enable_index_scans, maximize_ ? nullptr : options_.trace));
    const BaseRelation& rel = graph_->relations[i];
    double base_rows = 1, base_pages = 1;
    if (rel.table->has_stats()) {
      base_rows = std::max<double>(1, static_cast<double>(rel.table->stats().num_rows));
      base_pages = std::max<double>(1, static_cast<double>(rel.table->stats().num_pages));
    } else {
      base_rows = std::max<double>(1, static_cast<double>(rel.table->live_rows()));
      base_pages = std::max<double>(1, static_cast<double>(rel.table->heap()->NumPages()));
    }
    double row_bytes = base_pages * static_cast<double>(kPageSize) / base_rows;

    std::vector<Candidate> cands;
    for (size_t p = 0; p < paths.size(); ++p) {
      Candidate c;
      c.set = JoinSet::Single(static_cast<int>(i));
      c.rows = std::max(paths[p].out_rows, 0.0);
      c.row_bytes = row_bytes;
      c.pages = CostModel::EstimatePages(std::max(c.rows, 1.0), row_bytes);
      c.cost = paths[p].cost;
      c.order = paths[p].order;
      c.is_scan = true;
      c.rel_index = static_cast<int>(i);
      c.path_index = static_cast<int>(p);
      cands.push_back(std::move(c));
    }
    access_paths_.push_back(std::move(paths));
    KeepCandidates(JoinSet::Single(static_cast<int>(i)), std::move(cands));
  }
  return Status::OK();
}

std::vector<int> JoinEnumerator::EdgesBetween(JoinSet left, JoinSet right) const {
  std::vector<int> out;
  for (size_t e = 0; e < graph_->edges.size(); ++e) {
    const JoinEdge& edge = graph_->edges[e];
    if ((left.Contains(edge.left_rel) && right.Contains(edge.right_rel)) ||
        (left.Contains(edge.right_rel) && right.Contains(edge.left_rel))) {
      out.push_back(static_cast<int>(e));
    }
  }
  return out;
}

std::vector<int> JoinEnumerator::NewOtherConjuncts(JoinSet left, JoinSet right) const {
  std::vector<int> out;
  JoinSet both = left.Union(right);
  for (size_t i = 0; i < graph_->other_conjuncts.size(); ++i) {
    Result<JoinSet> rels = graph_->RelationsOf(*graph_->other_conjuncts[i]);
    if (!rels.ok()) continue;
    if (rels->IsSubsetOf(both) && !rels->IsSubsetOf(left) && !rels->IsSubsetOf(right)) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::string JoinEnumerator::FeedbackJoinSignature(JoinSet left, JoinSet right,
                                                  const std::vector<int>& edges,
                                                  const std::vector<int>& others) const {
  std::vector<std::string> tags;
  left.Union(right).ForEach([&](int r) {
    const BaseRelation& rel = graph_->relations[r];
    tags.push_back(ToLower(rel.alias) + ":" + ToLower(rel.table->name()));
  });
  std::vector<std::string> edge_sigs;
  for (int e : edges) {
    const JoinEdge& edge = graph_->edges[e];
    std::string a =
        ToLower(graph_->relations[edge.left_rel].alias) + "." + ToLower(edge.left_column);
    std::string b =
        ToLower(graph_->relations[edge.right_rel].alias) + "." + ToLower(edge.right_column);
    if (b < a) std::swap(a, b);  // `a=b` and `b=a` are the same predicate
    edge_sigs.push_back(a + "=" + b);
  }
  std::vector<std::string> other_sigs;
  for (int o : others) {
    other_sigs.push_back(
        FeedbackStore::RenderConjunct(*graph_->other_conjuncts[o], /*strip_qualifiers=*/false));
  }
  return FeedbackStore::JoinSignature(std::move(tags), std::move(edge_sigs),
                                      std::move(other_sigs));
}

double JoinEnumerator::JoinRows(const Candidate& l, const Candidate& r,
                                const std::vector<int>& edges,
                                const std::vector<int>& others) const {
  // Cardinality feedback: an earlier execution measured this exact join's
  // selectivity — trust it over the containment/independence model.
  if (estimator_->feedback() != nullptr) {
    std::optional<double> sel =
        estimator_->FeedbackJoinSelectivity(FeedbackJoinSignature(l.set, r.set, edges, others));
    if (sel.has_value()) return std::max(l.rows * r.rows * *sel, 1.0);
  }
  double rows = l.rows * r.rows;
  for (int e : edges) {
    const JoinEdge& edge = graph_->edges[e];
    rows *= estimator_->EstimateEquiJoin(graph_->relations[edge.left_rel].alias, edge.left_column,
                                         graph_->relations[edge.right_rel].alias,
                                         edge.right_column);
  }
  for (int o : others) {
    rows *= estimator_->EstimatePredicate(*graph_->other_conjuncts[o]);
  }
  return std::max(rows, 0.0);
}

void JoinEnumerator::EdgeOrders(const std::vector<int>& edges, JoinSet left_set,
                                OrderSpec* left_order, OrderSpec* right_order) const {
  for (int e : edges) {
    const JoinEdge& edge = graph_->edges[e];
    bool left_is_left = left_set.Contains(edge.left_rel);
    const std::string& l_alias =
        graph_->relations[left_is_left ? edge.left_rel : edge.right_rel].alias;
    const std::string& l_col = left_is_left ? edge.left_column : edge.right_column;
    const std::string& r_alias =
        graph_->relations[left_is_left ? edge.right_rel : edge.left_rel].alias;
    const std::string& r_col = left_is_left ? edge.right_column : edge.left_column;
    left_order->push_back(OrderColumn{l_alias, l_col, false});
    right_order->push_back(OrderColumn{r_alias, r_col, false});
  }
}

void JoinEnumerator::EmitJoinCandidates(int left_id, int right_id, std::vector<Candidate>* out) {
  const Candidate& l = arena_[left_id];
  const Candidate& r = arena_[right_id];
  std::vector<int> edges = EdgesBetween(l.set, r.set);
  std::vector<int> others = NewOtherConjuncts(l.set, r.set);

  double rows = JoinRows(l, r, edges, others);
  double row_bytes = l.row_bytes + r.row_bytes;
  double pages = CostModel::EstimatePages(std::max(rows, 1.0), row_bytes);

  auto base = [&](JoinMethod method) {
    Candidate c;
    c.set = l.set.Union(r.set);
    c.rows = rows;
    c.row_bytes = row_bytes;
    c.pages = pages;
    c.is_scan = false;
    c.method = method;
    c.left = left_id;
    c.right = right_id;
    return c;
  };

  std::vector<Candidate> emitted;

  if (options_.enable_nlj) {
    Candidate c = base(JoinMethod::kNestedLoop);
    c.cost = l.cost + cost_model_->NestedLoop(l.rows, r.cost, r.rows) + Cost{0, rows};
    c.order = l.order;
    emitted.push_back(std::move(c));
  }
  if (options_.enable_bnlj) {
    Candidate c = base(JoinMethod::kBlockNestedLoop);
    c.cost = l.cost + cost_model_->BlockNestedLoop(l.rows, l.pages, r.cost, r.rows) + Cost{0, rows};
    c.order.clear();
    emitted.push_back(std::move(c));
  }
  if (options_.enable_inlj && r.is_scan && r.path_index == 0 && !edges.empty()) {
    // Probe an index on the inner base relation; emitted once per left
    // candidate (anchored to the inner's seq-scan candidate).
    const BaseRelation& inner = graph_->relations[r.rel_index];
    for (IndexInfo* index : inner.table->indexes()) {
      // Match the index key prefix against available edge columns.
      std::vector<int> probe_edges;
      for (size_t kp = 0; kp < index->key_columns.size(); ++kp) {
        const std::string& key_col = inner.table->schema().ColumnAt(index->key_columns[kp]).name;
        int found = -1;
        for (int e : edges) {
          const JoinEdge& edge = graph_->edges[e];
          bool inner_is_left = edge.left_rel == r.rel_index;
          const std::string& inner_col = inner_is_left ? edge.left_column : edge.right_column;
          if (EqualsIgnoreCase(inner_col, key_col) &&
              std::find(probe_edges.begin(), probe_edges.end(), e) == probe_edges.end()) {
            found = e;
            break;
          }
        }
        if (found < 0) break;
        probe_edges.push_back(found);
      }
      if (probe_edges.empty()) continue;

      double base_rows = inner.table->has_stats()
                             ? std::max<double>(1, inner.table->stats().num_rows)
                             : std::max<double>(1, inner.table->live_rows());
      double inner_pages = inner.table->has_stats()
                               ? std::max<double>(1, inner.table->stats().num_pages)
                               : std::max<double>(1, inner.table->heap()->NumPages());
      double matches = base_rows;
      for (int e : probe_edges) {
        const JoinEdge& edge = graph_->edges[e];
        bool inner_is_left = edge.left_rel == r.rel_index;
        const std::string& inner_col = inner_is_left ? edge.left_column : edge.right_column;
        matches /= std::max(1.0, estimator_->ColumnNdv(inner.alias, inner_col));
      }
      Result<int> height = index->tree->Height();
      if (!height.ok()) continue;

      Candidate c = base(JoinMethod::kIndexNestedLoop);
      c.probe_edges = probe_edges;
      // Store the index by remembering which of the relation's indexes it
      // is via the path-like rel_index/probe mechanism: keep pointer via
      // rel_index + index name in BuildJoinPlan (recomputed). To stay exact,
      // remember the index by its position in the inner table's index list.
      c.path_index = -1;
      for (size_t ii = 0; ii < inner.table->indexes().size(); ++ii) {
        if (inner.table->indexes()[ii] == index) c.path_index = static_cast<int>(ii);
      }
      c.rel_index = r.rel_index;
      c.cost = l.cost +
               cost_model_->IndexNestedLoop(l.rows, *height, matches, inner_pages, r.rows,
                                            index->clustered) +
               Cost{0, rows};
      bool has_residual = probe_edges.size() < edges.size() || !others.empty() ||
                          !inner.conjuncts.empty();
      if (has_residual) c.cost += cost_model_->Filter(l.rows * std::max(matches, 1.0));
      c.order = l.order;
      emitted.push_back(std::move(c));
    }
  }
  if (options_.enable_smj && !edges.empty()) {
    OrderSpec left_order, right_order;
    EdgeOrders(edges, l.set, &left_order, &right_order);
    Candidate c = base(JoinMethod::kSortMerge);
    c.sort_left = !OrderSatisfies(l.order, left_order);
    c.sort_right = !OrderSatisfies(r.order, right_order);
    c.cost = l.cost + r.cost + cost_model_->MergeJoin(l.rows, r.rows, rows);
    if (c.sort_left) c.cost += cost_model_->Sort(l.rows, l.pages);
    if (c.sort_right) c.cost += cost_model_->Sort(r.rows, r.pages);
    c.order = left_order;
    emitted.push_back(std::move(c));
  }
  if (options_.enable_hash && !edges.empty()) {
    Candidate c = base(JoinMethod::kHash);
    c.build_left = l.pages <= r.pages;
    double build_rows = c.build_left ? l.rows : r.rows;
    double build_pages = c.build_left ? l.pages : r.pages;
    double probe_rows = c.build_left ? r.rows : l.rows;
    double probe_pages = c.build_left ? r.pages : l.pages;
    c.cost = l.cost + r.cost +
             cost_model_->HashJoin(build_rows, build_pages, probe_rows, probe_pages) +
             Cost{0, rows};
    c.order.clear();
    emitted.push_back(std::move(c));
  }

  stats_.joins_costed += emitted.size();

  if (maximize_ && !emitted.empty()) {
    // Worst-order search: the plan still uses the cheapest method per join,
    // so the metric isolates join-order quality.
    size_t best = 0;
    for (size_t i = 1; i < emitted.size(); ++i) {
      if (cost_model_->Total(emitted[i].cost) < cost_model_->Total(emitted[best].cost)) best = i;
    }
    out->push_back(std::move(emitted[best]));
    return;
  }
  for (Candidate& c : emitted) out->push_back(std::move(c));
}

void JoinEnumerator::KeepCandidates(JoinSet set, std::vector<Candidate> candidates) {
  if (candidates.empty()) return;
  // Trim orders to interesting ones so useless orders don't clog the table.
  for (Candidate& c : candidates) {
    if (!options_.use_interesting_orders) {
      c.order.clear();
      continue;
    }
    OrderSpec best_trim;
    for (const OrderSpec& want : interesting_orders_) {
      if (want.size() > best_trim.size() && OrderSatisfies(c.order, want)) best_trim = want;
    }
    c.order = best_trim;
  }

  if (maximize_) {
    // Worst-order search: base relations still use their best access path
    // (the metric isolates join-order quality, not access-path quality).
    bool pick_cheapest = candidates.front().is_scan;
    size_t worst = 0;
    for (size_t i = 1; i < candidates.size(); ++i) {
      bool better = cost_model_->Total(candidates[i].cost) > cost_model_->Total(candidates[worst].cost);
      if (pick_cheapest) better = !better;
      if (better) worst = i;
    }
    std::vector<int>& slot = dp_[set];
    if (slot.empty()) {
      slot.push_back(Intern(std::move(candidates[worst])));
      stats_.dp_entries++;
    } else if (cost_model_->Total(candidates[worst].cost) >
               cost_model_->Total(arena_[slot[0]].cost)) {
      slot[0] = Intern(std::move(candidates[worst]));
    }
    return;
  }

  std::sort(candidates.begin(), candidates.end(), [&](const Candidate& a, const Candidate& b) {
    return cost_model_->Total(a.cost) < cost_model_->Total(b.cost);
  });

  std::vector<int>& slot = dp_[set];
  // Merge with existing entries under dominance.
  std::vector<Candidate> merged;
  for (int id : slot) merged.push_back(arena_[id]);
  for (Candidate& c : candidates) merged.push_back(std::move(c));
  std::sort(merged.begin(), merged.end(), [&](const Candidate& a, const Candidate& b) {
    return cost_model_->Total(a.cost) < cost_model_->Total(b.cost);
  });
  std::vector<Candidate> kept;
  for (Candidate& c : merged) {
    bool dominated = false;
    for (const Candidate& k : kept) {
      if (cost_model_->Total(k.cost) <= cost_model_->Total(c.cost) &&
          OrderSatisfies(k.order, c.order)) {
        dominated = true;
        break;
      }
    }
    if (dominated) {
      TraceCandidate(set, c, "pruned", "dominated by a cheaper candidate with compatible order");
      continue;
    }
    if (kept.size() >= options_.max_candidates_per_set) {
      TraceCandidate(set, c, "pruned", "exceeds max_candidates_per_set");
      continue;
    }
    TraceCandidate(set, c, "kept", "");
    kept.push_back(std::move(c));
  }
  slot.clear();
  for (Candidate& c : kept) {
    slot.push_back(Intern(std::move(c)));
  }
  stats_.dp_entries += slot.size();
}

Result<int> JoinEnumerator::PickFinal(const std::vector<int>& full_set_candidates,
                                      const OrderSpec& required_order,
                                      bool* order_satisfied) const {
  if (full_set_candidates.empty()) {
    return Status::Internal("join enumeration produced no plan for the full relation set");
  }
  int best = -1;
  double best_total = 0;
  bool best_satisfied = false;
  for (int id : full_set_candidates) {
    const Candidate& c = arena_[id];
    bool satisfied = required_order.empty() || OrderSatisfies(c.order, required_order);
    double total = cost_model_->Total(c.cost);
    if (!satisfied && !required_order.empty()) {
      total += cost_model_->Total(cost_model_->Sort(c.rows, c.pages));
    }
    if (best < 0 || total < best_total) {
      best = id;
      best_total = total;
      best_satisfied = satisfied;
    }
  }
  *order_satisfied = best_satisfied;
  return best;
}

Result<int> JoinEnumerator::RunDp(bool left_deep_only, bool maximize) {
  maximize_ = maximize;
  RELOPT_RETURN_NOT_OK(SeedBaseRelations());
  BuildAdjacency();
  const int n = static_cast<int>(graph_->relations.size());
  const uint64_t full = JoinSet::AllUpTo(n).bits();

  // Fast path for avoid_cross_products on a connected graph: a subset whose
  // induced join graph is disconnected can only be built by a cross-product
  // join, and (the graph being connected) the full set is always reachable
  // through connected subsets alone — so disconnected subsets are skipped
  // before any split gathering or candidate generation. On a disconnected
  // graph cross products are forced somewhere, so the old late split
  // filtering is kept as-is.
  const bool skip_disconnected =
      options_.avoid_cross_products && SubsetConnected(JoinSet(full));

  for (uint64_t mask = 1; mask <= full; ++mask) {
    JoinSet set(mask);
    if (!set.IsSubsetOf(JoinSet(full))) continue;
    if (set.Count() < 2) continue;
    stats_.subsets_visited++;
    if (skip_disconnected && !SubsetConnected(set)) {
      stats_.disconnected_subsets_skipped++;
      continue;
    }

    // Gather splits: (L, R) ordered pairs.
    std::vector<std::pair<JoinSet, JoinSet>> splits;
    if (left_deep_only) {
      set.ForEach([&](int r) {
        JoinSet right = JoinSet::Single(r);
        splits.push_back({set.Minus(right), right});
      });
    } else {
      for (SubsetIterator it(set); it.Valid(); it.Next()) {
        JoinSet sub = it.Current();
        splits.push_back({sub, set.Minus(sub)});
      }
    }

    auto connected = [&](const std::pair<JoinSet, JoinSet>& s) {
      return !EdgesBetween(s.first, s.second).empty() ||
             !NewOtherConjuncts(s.first, s.second).empty();
    };

    bool any_connected = false;
    if (options_.avoid_cross_products) {
      for (const auto& s : splits) {
        if (connected(s)) {
          any_connected = true;
          break;
        }
      }
    }

    std::vector<Candidate> candidates;
    for (const auto& [left_set, right_set] : splits) {
      auto lit = dp_.find(left_set);
      auto rit = dp_.find(right_set);
      if (lit == dp_.end() || rit == dp_.end()) continue;
      if (options_.avoid_cross_products && any_connected && !connected({left_set, right_set})) {
        continue;
      }
      for (int lid : lit->second) {
        for (int rid : rit->second) {
          EmitJoinCandidates(lid, rid, &candidates);
        }
      }
    }
    KeepCandidates(set, std::move(candidates));
  }

  auto it = dp_.find(JoinSet(full));
  if (it == dp_.end()) return Status::Internal("DP reached no full-set plan");
  return it->second.empty() ? Status::Internal("DP kept no full-set candidate")
                            : Result<int>(it->second.front());
}

Result<int> JoinEnumerator::RunGreedy() {
  RELOPT_RETURN_NOT_OK(SeedBaseRelations());
  const int n = static_cast<int>(graph_->relations.size());

  // Component list: cheapest candidate per relation to start.
  std::vector<int> components;
  for (int i = 0; i < n; ++i) {
    const std::vector<int>& cands = dp_[JoinSet::Single(i)];
    int best = cands.front();
    for (int id : cands) {
      if (cost_model_->Total(arena_[id].cost) < cost_model_->Total(arena_[best].cost)) best = id;
    }
    components.push_back(best);
  }

  while (components.size() > 1) {
    int best_i = -1, best_j = -1;
    Candidate best_cand;
    bool have = false;
    bool any_connected = false;
    for (size_t i = 0; i < components.size(); ++i) {
      for (size_t j = 0; j < components.size(); ++j) {
        if (i == j) continue;
        if (!EdgesBetween(arena_[components[i]].set, arena_[components[j]].set).empty() ||
            !NewOtherConjuncts(arena_[components[i]].set, arena_[components[j]].set).empty()) {
          any_connected = true;
        }
      }
    }
    for (size_t i = 0; i < components.size(); ++i) {
      for (size_t j = 0; j < components.size(); ++j) {
        if (i == j) continue;
        bool conn =
            !EdgesBetween(arena_[components[i]].set, arena_[components[j]].set).empty() ||
            !NewOtherConjuncts(arena_[components[i]].set, arena_[components[j]].set).empty();
        if (any_connected && !conn) continue;
        std::vector<Candidate> cands;
        EmitJoinCandidates(components[i], components[j], &cands);
        for (Candidate& c : cands) {
          if (!have || cost_model_->Total(c.cost) < cost_model_->Total(best_cand.cost)) {
            best_cand = std::move(c);
            best_i = static_cast<int>(i);
            best_j = static_cast<int>(j);
            have = true;
          }
        }
      }
    }
    if (!have) return Status::Internal("greedy enumeration found no joinable pair");
    int merged = Intern(std::move(best_cand));
    // Remove the higher index first.
    if (best_i < best_j) std::swap(best_i, best_j);
    components.erase(components.begin() + best_i);
    components.erase(components.begin() + best_j);
    components.push_back(merged);
  }
  return components.front();
}

Result<int> JoinEnumerator::RunExhaustive() {
  RELOPT_RETURN_NOT_OK(SeedBaseRelations());
  const int n = static_cast<int>(graph_->relations.size());
  const JoinSet full = JoinSet::AllUpTo(n);

  std::vector<int> finals;

  // Depth-first over left-deep permutations, cheapest method at each step.
  struct Frame {
    int cand;
    JoinSet remaining;
  };
  std::vector<Frame> stack;
  for (int i = 0; i < n; ++i) {
    const std::vector<int>& cands = dp_[JoinSet::Single(i)];
    int best = cands.front();
    for (int id : cands) {
      if (cost_model_->Total(arena_[id].cost) < cost_model_->Total(arena_[best].cost)) best = id;
    }
    stack.push_back(Frame{best, full.Minus(JoinSet::Single(i))});
  }
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    if (frame.remaining.Empty()) {
      finals.push_back(frame.cand);
      continue;
    }
    bool any_connected = false;
    frame.remaining.ForEach([&](int r) {
      if (!EdgesBetween(arena_[frame.cand].set, JoinSet::Single(r)).empty()) any_connected = true;
    });
    frame.remaining.ForEach([&](int r) {
      if (options_.avoid_cross_products && any_connected &&
          EdgesBetween(arena_[frame.cand].set, JoinSet::Single(r)).empty()) {
        return;
      }
      const std::vector<int>& rcands = dp_[JoinSet::Single(r)];
      std::vector<Candidate> cands;
      for (int rid : rcands) EmitJoinCandidates(frame.cand, rid, &cands);
      if (cands.empty()) return;
      size_t best = 0;
      for (size_t i = 1; i < cands.size(); ++i) {
        if (cost_model_->Total(cands[i].cost) < cost_model_->Total(cands[best].cost)) best = i;
      }
      int id = Intern(std::move(cands[best]));
      stack.push_back(Frame{id, frame.remaining.Minus(JoinSet::Single(r))});
    });
  }
  if (finals.empty()) return Status::Internal("exhaustive enumeration found no plan");
  int best = finals.front();
  for (int id : finals) {
    if (cost_model_->Total(arena_[id].cost) < cost_model_->Total(arena_[best].cost)) best = id;
  }
  return best;
}

Result<int> JoinEnumerator::RunRandom() {
  RELOPT_RETURN_NOT_OK(SeedBaseRelations());
  const int n = static_cast<int>(graph_->relations.size());

  int start = static_cast<int>(rng_.UniformInt(0, n - 1));
  const std::vector<int>& scands = dp_[JoinSet::Single(start)];
  int current = scands[static_cast<size_t>(rng_.UniformInt(0, static_cast<int64_t>(scands.size()) - 1))];
  JoinSet remaining = JoinSet::AllUpTo(n).Minus(JoinSet::Single(start));

  while (!remaining.Empty()) {
    // Prefer relations connected to the current set (random valid order).
    std::vector<int> connected_rels, all_rels;
    remaining.ForEach([&](int r) {
      all_rels.push_back(r);
      if (!EdgesBetween(arena_[current].set, JoinSet::Single(r)).empty()) {
        connected_rels.push_back(r);
      }
    });
    std::vector<int>& pool = connected_rels.empty() ? all_rels : connected_rels;
    int r = pool[static_cast<size_t>(rng_.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];

    const std::vector<int>& rcands = dp_[JoinSet::Single(r)];
    std::vector<Candidate> cands;
    for (int rid : rcands) EmitJoinCandidates(current, rid, &cands);
    if (cands.empty()) return Status::Internal("random enumeration found no join");
    size_t best = 0;
    for (size_t i = 1; i < cands.size(); ++i) {
      if (cost_model_->Total(cands[i].cost) < cost_model_->Total(cands[best].cost)) best = i;
    }
    current = Intern(std::move(cands[best]));
    remaining = remaining.Minus(JoinSet::Single(r));
  }
  return current;
}

Result<int> JoinEnumerator::RunSimpliSquared() {
  RELOPT_RETURN_NOT_OK(SeedBaseRelations());
  const int n = static_cast<int>(graph_->relations.size());

  // The only "statistic" this strategy reads: base-table row counts, which
  // are physical facts — no selectivity estimation anywhere in the ordering.
  auto base_rows = [&](int r) {
    const BaseRelation& rel = graph_->relations[r];
    return rel.table->has_stats()
               ? std::max<double>(1, static_cast<double>(rel.table->stats().num_rows))
               : std::max<double>(1, static_cast<double>(rel.table->live_rows()));
  };

  int start = 0;
  for (int i = 1; i < n; ++i) {
    if (base_rows(i) < base_rows(start)) start = i;
  }
  const std::vector<int>& scands = dp_[JoinSet::Single(start)];
  int current = scands.front();
  for (int id : scands) {
    if (cost_model_->Total(arena_[id].cost) < cost_model_->Total(arena_[current].cost)) {
      current = id;
    }
  }
  JoinSet remaining = JoinSet::AllUpTo(n).Minus(JoinSet::Single(start));

  while (!remaining.Empty()) {
    // Next: the smallest connected relation (cross products only when forced).
    std::vector<int> connected_rels, all_rels;
    remaining.ForEach([&](int r) {
      all_rels.push_back(r);
      if (!EdgesBetween(arena_[current].set, JoinSet::Single(r)).empty()) {
        connected_rels.push_back(r);
      }
    });
    std::vector<int>& pool = connected_rels.empty() ? all_rels : connected_rels;
    int next = pool.front();
    for (int r : pool) {
      if (base_rows(r) < base_rows(next)) next = r;
    }

    const std::vector<int>& rcands = dp_[JoinSet::Single(next)];
    std::vector<Candidate> cands;
    for (int rid : rcands) EmitJoinCandidates(current, rid, &cands);
    if (cands.empty()) return Status::Internal("simpli-squared enumeration found no join");
    size_t best = 0;
    for (size_t i = 1; i < cands.size(); ++i) {
      if (cost_model_->Total(cands[i].cost) < cost_model_->Total(cands[best].cost)) best = i;
    }
    current = Intern(std::move(cands[best]));
    remaining = remaining.Minus(JoinSet::Single(next));
  }
  return current;
}

// --- DPccp -----------------------------------------------------------------

void JoinEnumerator::BuildAdjacency() {
  const size_t n = graph_->relations.size();
  adjacency_.assign(n, 0);
  for (const JoinEdge& e : graph_->edges) {
    adjacency_[e.left_rel] |= uint64_t{1} << e.right_rel;
    adjacency_[e.right_rel] |= uint64_t{1} << e.left_rel;
  }
  // Hyperedge relaxation: an other_conjunct's relation set becomes a clique.
  // This may connect relations whose predicate is not applicable at a given
  // union (it needs all of the set); the costing pass re-checks and treats
  // predicate-free cuts as forced cross products, matching RunDp.
  for (const ExprPtr& c : graph_->other_conjuncts) {
    Result<JoinSet> rels = graph_->RelationsOf(*c);
    if (!rels.ok()) continue;
    uint64_t bits = rels->bits();
    rels->ForEach([&](int i) { adjacency_[i] |= bits & ~(uint64_t{1} << i); });
  }
}

uint64_t JoinEnumerator::Neighborhood(uint64_t set, uint64_t excluded) const {
  uint64_t nbr = 0;
  JoinSet(set).ForEach([&](int i) { nbr |= adjacency_[i]; });
  return nbr & ~set & ~excluded;
}

bool JoinEnumerator::SubsetConnected(JoinSet set) const {
  if (set.Empty()) return false;
  const uint64_t target = set.bits();
  uint64_t reached = uint64_t{1} << set.Lowest();
  while (true) {
    uint64_t grown = reached;
    JoinSet(reached).ForEach([&](int i) { grown |= adjacency_[i] & target; });
    if (grown == reached) break;
    reached = grown;
  }
  return reached == target;
}

namespace {
/// Non-empty subsets of `mask` in increasing numeric order: start with
/// FirstSubset, stop when NextSubset wraps to zero.
inline uint64_t FirstSubset(uint64_t mask) { return mask & (~mask + 1); }
inline uint64_t NextSubset(uint64_t sub, uint64_t mask) { return (sub - mask) & mask; }
}  // namespace

bool JoinEnumerator::EnumerateCsgCmpPairs(std::vector<CsgCmpPair>* out) {
  const int n = static_cast<int>(graph_->relations.size());
  bool over_budget = false;
  // Start nodes descending; each start only grows into higher-numbered
  // relations (the B_i prohibited sets), which is what makes every csg —
  // and every csg-cmp pair — come out exactly once.
  for (int i = n - 1; i >= 0 && !over_budget; --i) {
    const uint64_t single = uint64_t{1} << i;
    EmitCsg(single, out, &over_budget);
    if (over_budget) break;
    const uint64_t prohibited = (single - 1) | single;  // {0..i}
    EnumerateCsgRec(single, prohibited, out, &over_budget);
  }
  return !over_budget;
}

void JoinEnumerator::EnumerateCsgRec(uint64_t set, uint64_t excluded,
                                     std::vector<CsgCmpPair>* out, bool* over_budget) {
  const uint64_t nbr = Neighborhood(set, excluded);
  if (nbr == 0) return;
  for (uint64_t sub = FirstSubset(nbr); sub != 0; sub = NextSubset(sub, nbr)) {
    EmitCsg(set | sub, out, over_budget);
    if (*over_budget) return;
  }
  for (uint64_t sub = FirstSubset(nbr); sub != 0; sub = NextSubset(sub, nbr)) {
    EnumerateCsgRec(set | sub, excluded | nbr, out, over_budget);
    if (*over_budget) return;
  }
}

void JoinEnumerator::EmitCsg(uint64_t csg, std::vector<CsgCmpPair>* out, bool* over_budget) {
  const int min_rel = JoinSet(csg).Lowest();
  const uint64_t single_min = uint64_t{1} << min_rel;
  // Complements only grow from relations above min(csg); the symmetric pairs
  // are covered when the roles are reversed.
  const uint64_t prohibited = csg | (single_min - 1) | single_min;
  const uint64_t nbr = Neighborhood(csg, prohibited);
  if (nbr == 0) return;
  std::vector<int> starts;
  JoinSet(nbr).ForEach([&](int i) { starts.push_back(i); });
  for (size_t s = starts.size(); s-- > 0;) {
    const int i = starts[s];
    const uint64_t single = uint64_t{1} << i;
    stats_.csg_cmp_pairs++;
    out->push_back(CsgCmpPair{csg, single});
    if (out->size() > options_.dp_budget) {
      *over_budget = true;
      return;
    }
    // Lower-numbered neighbors get their own start iteration; prohibit them
    // here so each complement is enumerated from its minimal start node.
    const uint64_t lower_neighbors = nbr & ((single - 1) | single);
    EnumerateCmpRec(csg, single, prohibited | lower_neighbors, out, over_budget);
    if (*over_budget) return;
  }
}

void JoinEnumerator::EnumerateCmpRec(uint64_t csg, uint64_t cmp, uint64_t excluded,
                                     std::vector<CsgCmpPair>* out, bool* over_budget) {
  const uint64_t nbr = Neighborhood(cmp, excluded);
  if (nbr == 0) return;
  for (uint64_t sub = FirstSubset(nbr); sub != 0; sub = NextSubset(sub, nbr)) {
    stats_.csg_cmp_pairs++;
    out->push_back(CsgCmpPair{csg, cmp | sub});
    if (out->size() > options_.dp_budget) {
      *over_budget = true;
      return;
    }
  }
  for (uint64_t sub = FirstSubset(nbr); sub != 0; sub = NextSubset(sub, nbr)) {
    EnumerateCmpRec(csg, cmp | sub, excluded | nbr, out, over_budget);
    if (*over_budget) return;
  }
}

Result<int> JoinEnumerator::RunDpCcp(std::vector<CsgCmpPair> pairs) {
  maximize_ = false;
  RELOPT_RETURN_NOT_OK(SeedBaseRelations());

  // Process pairs grouped by union, smaller unions first: both sides of a
  // partition are strictly smaller than the union, so every group only reads
  // DP slots that are already final — emission order of the enumeration
  // itself becomes irrelevant.
  std::sort(pairs.begin(), pairs.end(), [](const CsgCmpPair& a, const CsgCmpPair& b) {
    const uint64_t ua = a.csg | a.cmp, ub = b.csg | b.cmp;
    const int ca = __builtin_popcountll(ua), cb = __builtin_popcountll(ub);
    if (ca != cb) return ca < cb;
    return ua < ub;
  });

  for (size_t i = 0; i < pairs.size();) {
    const uint64_t union_bits = pairs[i].csg | pairs[i].cmp;
    size_t end = i;
    while (end < pairs.size() && (pairs[end].csg | pairs[end].cmp) == union_bits) ++end;
    stats_.subsets_visited++;

    // Same cross-product rule as RunDp: if no cut of this union applies a
    // predicate (possible when connectivity came from the hyperedge
    // relaxation), all cuts are admitted as forced cross products; otherwise
    // only predicate-connected cuts are costed.
    auto connected = [&](const CsgCmpPair& p) {
      return !EdgesBetween(JoinSet(p.csg), JoinSet(p.cmp)).empty() ||
             !NewOtherConjuncts(JoinSet(p.csg), JoinSet(p.cmp)).empty();
    };
    bool any_connected = false;
    if (options_.avoid_cross_products) {
      for (size_t k = i; k < end && !any_connected; ++k) any_connected = connected(pairs[k]);
    }

    // One KeepCandidates call per union (exactly like RunDp) so dp_entries
    // and trace events stay comparable; both join orders of each pair are
    // costed, mirroring RunDp's ordered splits.
    std::vector<Candidate> candidates;
    for (size_t k = i; k < end; ++k) {
      if (options_.avoid_cross_products && any_connected && !connected(pairs[k])) continue;
      auto lit = dp_.find(JoinSet(pairs[k].csg));
      auto rit = dp_.find(JoinSet(pairs[k].cmp));
      if (lit == dp_.end() || rit == dp_.end()) continue;
      for (int lid : lit->second) {
        for (int rid : rit->second) {
          EmitJoinCandidates(lid, rid, &candidates);
          EmitJoinCandidates(rid, lid, &candidates);
        }
      }
    }
    KeepCandidates(JoinSet(union_bits), std::move(candidates));
    i = end;
  }

  const uint64_t full = JoinSet::AllUpTo(static_cast<int>(graph_->relations.size())).bits();
  auto it = dp_.find(JoinSet(full));
  if (it == dp_.end() || it->second.empty()) {
    return Status::Internal("DPccp reached no full-set plan");
  }
  return it->second.front();
}

void JoinEnumerator::ResetSearchState() {
  arena_.clear();
  dp_.clear();
}

void JoinEnumerator::TraceStrategy(JoinEnumAlgorithm strategy, const std::string& reason) const {
  if (options_.trace == nullptr) return;
  PlanTraceEvent ev;
  ev.phase = "strategy";
  ev.target = SetName(JoinSet::AllUpTo(static_cast<int>(graph_->relations.size())));
  ev.candidate = JoinEnumAlgorithmToString(strategy);
  ev.action = "chosen";
  ev.reason = reason;
  options_.trace->Add(std::move(ev));
}

Result<JoinEnumResult> JoinEnumerator::Run(const OrderSpec& required_order) {
  if (graph_->relations.empty()) {
    return Status::InvalidArgument("join enumeration needs at least one relation");
  }
  arena_.clear();
  dp_.clear();
  stats_ = JoinEnumStats{};
  stats_.strategy_used = options_.algorithm;
  maximize_ = false;

  // Interesting orders: the required order plus single-column join-key
  // orders on both sides of every edge.
  interesting_orders_.clear();
  if (options_.use_interesting_orders) {
    if (!required_order.empty()) interesting_orders_.push_back(required_order);
    for (const JoinEdge& e : graph_->edges) {
      interesting_orders_.push_back(
          {OrderColumn{graph_->relations[e.left_rel].alias, e.left_column, false}});
      interesting_orders_.push_back(
          {OrderColumn{graph_->relations[e.right_rel].alias, e.right_column, false}});
    }
  }

  int final_id = -1;
  bool order_satisfied = false;

  if (graph_->relations.size() == 1) {
    RELOPT_RETURN_NOT_OK(SeedBaseRelations());
    RELOPT_ASSIGN_OR_RETURN(final_id,
                            PickFinal(dp_[JoinSet::Single(0)], required_order, &order_satisfied));
  } else {
    stats_.enumerated = true;
    switch (options_.algorithm) {
      case JoinEnumAlgorithm::kDpBushy: {
        RELOPT_ASSIGN_OR_RETURN(int id, RunDp(false, false));
        (void)id;
        uint64_t full = JoinSet::AllUpTo(static_cast<int>(graph_->relations.size())).bits();
        RELOPT_ASSIGN_OR_RETURN(final_id,
                                PickFinal(dp_[JoinSet(full)], required_order, &order_satisfied));
        break;
      }
      case JoinEnumAlgorithm::kDpLeftDeep: {
        RELOPT_ASSIGN_OR_RETURN(int id, RunDp(true, false));
        (void)id;
        uint64_t full = JoinSet::AllUpTo(static_cast<int>(graph_->relations.size())).bits();
        RELOPT_ASSIGN_OR_RETURN(final_id,
                                PickFinal(dp_[JoinSet(full)], required_order, &order_satisfied));
        break;
      }
      case JoinEnumAlgorithm::kWorst: {
        RELOPT_ASSIGN_OR_RETURN(final_id, RunDp(true, true));
        order_satisfied = required_order.empty();
        break;
      }
      case JoinEnumAlgorithm::kGreedy: {
        RELOPT_ASSIGN_OR_RETURN(final_id, RunGreedy());
        order_satisfied =
            required_order.empty() || OrderSatisfies(arena_[final_id].order, required_order);
        break;
      }
      case JoinEnumAlgorithm::kExhaustive: {
        RELOPT_ASSIGN_OR_RETURN(final_id, RunExhaustive());
        order_satisfied =
            required_order.empty() || OrderSatisfies(arena_[final_id].order, required_order);
        break;
      }
      case JoinEnumAlgorithm::kRandom: {
        RELOPT_ASSIGN_OR_RETURN(final_id, RunRandom());
        order_satisfied =
            required_order.empty() || OrderSatisfies(arena_[final_id].order, required_order);
        break;
      }
      case JoinEnumAlgorithm::kSimpliSquared: {
        RELOPT_ASSIGN_OR_RETURN(final_id, RunSimpliSquared());
        order_satisfied =
            required_order.empty() || OrderSatisfies(arena_[final_id].order, required_order);
        break;
      }
      case JoinEnumAlgorithm::kDpCcp: {
        // The budgeted strategy ladder. DPccp itself only handles connected
        // graphs (the full set must be a connected subgraph); disconnected
        // graphs route to the cross-product-capable DP at small n, greedy
        // beyond. When the csg-cmp pair count blows past dp_budget the
        // search degrades to greedy-GOO, then Simpli-Squared.
        BuildAdjacency();
        const int n = static_cast<int>(graph_->relations.size());
        const uint64_t full = JoinSet::AllUpTo(n).bits();
        bool dp_table_final = false;  // PickFinal over dp_[full] afterwards

        if (!SubsetConnected(JoinSet(full))) {
          if (n <= 12) {
            stats_.strategy_used = JoinEnumAlgorithm::kDpBushy;
            TraceStrategy(JoinEnumAlgorithm::kDpBushy,
                          "join graph disconnected; cross products required");
            RELOPT_ASSIGN_OR_RETURN(int id, RunDp(false, false));
            (void)id;
            dp_table_final = true;
          } else {
            stats_.strategy_used = JoinEnumAlgorithm::kGreedy;
            TraceStrategy(JoinEnumAlgorithm::kGreedy,
                          "join graph disconnected and too large for DP");
            RELOPT_ASSIGN_OR_RETURN(final_id, RunGreedy());
          }
        } else {
          std::vector<CsgCmpPair> pairs;
          if (EnumerateCsgCmpPairs(&pairs)) {
            TraceStrategy(JoinEnumAlgorithm::kDpCcp,
                          StringPrintf("%zu csg-cmp pairs within dp_budget=%llu", pairs.size(),
                                       static_cast<unsigned long long>(options_.dp_budget)));
            RELOPT_ASSIGN_OR_RETURN(int id, RunDpCcp(std::move(pairs)));
            (void)id;
            dp_table_final = true;
          } else {
            stats_.budget_fallback = true;
            stats_.strategy_used = JoinEnumAlgorithm::kGreedy;
            TraceStrategy(JoinEnumAlgorithm::kGreedy,
                          StringPrintf("csg-cmp pairs exceed dp_budget=%llu; degrading",
                                       static_cast<unsigned long long>(options_.dp_budget)));
            ResetSearchState();
            Result<int> greedy = RunGreedy();
            if (greedy.ok()) {
              final_id = *greedy;
            } else {
              stats_.strategy_used = JoinEnumAlgorithm::kSimpliSquared;
              TraceStrategy(JoinEnumAlgorithm::kSimpliSquared,
                            "greedy failed: " + greedy.status().ToString());
              ResetSearchState();
              RELOPT_ASSIGN_OR_RETURN(final_id, RunSimpliSquared());
            }
          }
        }
        if (dp_table_final) {
          RELOPT_ASSIGN_OR_RETURN(final_id,
                                  PickFinal(dp_[JoinSet(full)], required_order, &order_satisfied));
        } else {
          order_satisfied =
              required_order.empty() || OrderSatisfies(arena_[final_id].order, required_order);
        }
        break;
      }
    }
  }

  TraceCandidate(arena_[final_id].set, arena_[final_id], "chosen", "", "final");

  JoinEnumResult result;
  RELOPT_ASSIGN_OR_RETURN(result.plan, BuildPlan(final_id));
  result.rows = arena_[final_id].rows;
  result.cost = arena_[final_id].cost;
  result.order = arena_[final_id].order;
  result.order_satisfied = order_satisfied;
  return result;
}

Result<PhysicalPtr> JoinEnumerator::BuildPlan(int cand_id) const {
  const Candidate& cand = arena_[cand_id];
  if (cand.is_scan) {
    return BuildAccessPathPlan(*graph_, access_paths_[cand.rel_index][cand.path_index]);
  }
  return BuildJoinPlan(cand);
}

Result<PhysicalPtr> JoinEnumerator::BuildJoinPlan(const Candidate& cand) const {
  const Candidate& l = arena_[cand.left];
  const Candidate& r = arena_[cand.right];
  std::vector<int> edges = EdgesBetween(l.set, r.set);
  std::vector<int> others = NewOtherConjuncts(l.set, r.set);

  // Every two-child join node is stamped with its feedback signature so the
  // harvester can attribute measured selectivity (out / (l x r)) to it. INLJ
  // is excluded: with only one child in the plan tree, the inner actuals are
  // not observable.
  std::string feedback_key = FeedbackJoinSignature(l.set, r.set, edges, others);

  RELOPT_ASSIGN_OR_RETURN(PhysicalPtr left_plan, BuildPlan(cand.left));

  auto edge_expr = [&](int e) {
    const JoinEdge& edge = graph_->edges[e];
    return MakeComparison(CompareOp::kEq,
                          MakeColumnRef(graph_->relations[edge.left_rel].alias, edge.left_column),
                          MakeColumnRef(graph_->relations[edge.right_rel].alias,
                                        edge.right_column));
  };

  // --- INLJ: no right child plan; the inner is (table, index). -----------
  if (cand.method == JoinMethod::kIndexNestedLoop) {
    const BaseRelation& inner = graph_->relations[cand.rel_index];
    IndexInfo* index = inner.table->indexes()[cand.path_index];

    std::vector<ExprPtr> key_exprs;
    for (int e : cand.probe_edges) {
      const JoinEdge& edge = graph_->edges[e];
      bool inner_is_left = edge.left_rel == cand.rel_index;
      const std::string& outer_alias =
          graph_->relations[inner_is_left ? edge.right_rel : edge.left_rel].alias;
      const std::string& outer_col = inner_is_left ? edge.right_column : edge.left_column;
      ExprPtr ref = MakeColumnRef(outer_alias, outer_col);
      RELOPT_RETURN_NOT_OK(ref->Bind(left_plan->schema()));
      key_exprs.push_back(std::move(ref));
    }

    // Residual: unused edges + other conjuncts + the inner's own filters.
    std::vector<ExprPtr> residual;
    for (int e : edges) {
      if (std::find(cand.probe_edges.begin(), cand.probe_edges.end(), e) !=
          cand.probe_edges.end()) {
        continue;
      }
      residual.push_back(edge_expr(e));
    }
    for (int o : others) residual.push_back(graph_->other_conjuncts[o]->Clone());
    for (const ExprPtr& c : inner.conjuncts) residual.push_back(c->Clone());
    ExprPtr residual_expr = CombineConjuncts(std::move(residual));

    auto node = std::make_unique<PhysIndexNestedLoopJoin>(
        std::move(left_plan), inner.table->name(), inner.alias, index->name, inner.schema,
        std::move(key_exprs), std::move(residual_expr));
    if (node->residual() != nullptr) {
      RELOPT_RETURN_NOT_OK(const_cast<Expression*>(node->residual())->Bind(node->schema()));
    }
    node->SetEstimates(cand.rows, cand.cost);
    return PhysicalPtr(std::move(node));
  }

  RELOPT_ASSIGN_OR_RETURN(PhysicalPtr right_plan, BuildPlan(cand.right));

  // SMJ sort enforcers.
  OrderSpec left_order, right_order;
  EdgeOrders(edges, l.set, &left_order, &right_order);
  auto add_sort = [&](PhysicalPtr plan, const OrderSpec& order, double rows,
                      double pages) -> Result<PhysicalPtr> {
    std::vector<PhysSort::Key> keys;
    for (const OrderColumn& oc : order) {
      ExprPtr ref = MakeColumnRef(oc.alias, oc.column);
      RELOPT_RETURN_NOT_OK(ref->Bind(plan->schema()));
      keys.push_back(PhysSort::Key{std::move(ref), oc.desc});
    }
    Cost child_cost = plan->est_cost();
    auto sort = std::make_unique<PhysSort>(std::move(plan), std::move(keys));
    sort->SetEstimates(rows, child_cost + cost_model_->Sort(rows, pages));
    return PhysicalPtr(std::move(sort));
  };

  switch (cand.method) {
    case JoinMethod::kNestedLoop:
    case JoinMethod::kBlockNestedLoop: {
      std::vector<ExprPtr> preds;
      for (int e : edges) preds.push_back(edge_expr(e));
      for (int o : others) preds.push_back(graph_->other_conjuncts[o]->Clone());
      ExprPtr pred = CombineConjuncts(std::move(preds));
      Schema concat = Schema::Concat(left_plan->schema(), right_plan->schema());
      if (pred) {
        RELOPT_RETURN_NOT_OK(pred->Bind(concat));
      }
      PhysicalPtr node;
      if (cand.method == JoinMethod::kNestedLoop) {
        node = std::make_unique<PhysNestedLoopJoin>(std::move(left_plan), std::move(right_plan),
                                                    std::move(pred));
      } else {
        node = std::make_unique<PhysBlockNestedLoopJoin>(
            std::move(left_plan), std::move(right_plan), std::move(pred),
            std::max<size_t>(1, cost_model_->OperatorMemoryPages() - 2));
      }
      node->SetEstimates(cand.rows, cand.cost);
      node->set_feedback_key(std::move(feedback_key));
      return node;
    }
    case JoinMethod::kSortMerge: {
      if (cand.sort_left) {
        RELOPT_ASSIGN_OR_RETURN(left_plan,
                                add_sort(std::move(left_plan), left_order, l.rows, l.pages));
      }
      if (cand.sort_right) {
        RELOPT_ASSIGN_OR_RETURN(right_plan,
                                add_sort(std::move(right_plan), right_order, r.rows, r.pages));
      }
      std::vector<size_t> left_keys, right_keys;
      for (const OrderColumn& oc : left_order) {
        RELOPT_ASSIGN_OR_RETURN(size_t idx, left_plan->schema().IndexOf(oc.alias, oc.column));
        left_keys.push_back(idx);
      }
      for (const OrderColumn& oc : right_order) {
        RELOPT_ASSIGN_OR_RETURN(size_t idx, right_plan->schema().IndexOf(oc.alias, oc.column));
        right_keys.push_back(idx);
      }
      std::vector<ExprPtr> residual;
      for (int o : others) residual.push_back(graph_->other_conjuncts[o]->Clone());
      ExprPtr residual_expr = CombineConjuncts(std::move(residual));
      Schema concat = Schema::Concat(left_plan->schema(), right_plan->schema());
      if (residual_expr) {
        RELOPT_RETURN_NOT_OK(residual_expr->Bind(concat));
      }
      auto node = std::make_unique<PhysSortMergeJoin>(std::move(left_plan), std::move(right_plan),
                                                      std::move(left_keys), std::move(right_keys),
                                                      std::move(residual_expr));
      node->SetEstimates(cand.rows, cand.cost);
      node->set_feedback_key(std::move(feedback_key));
      return PhysicalPtr(std::move(node));
    }
    case JoinMethod::kHash: {
      // Keys per side.
      std::vector<size_t> left_keys, right_keys;
      for (const OrderColumn& oc : left_order) {
        RELOPT_ASSIGN_OR_RETURN(size_t idx, left_plan->schema().IndexOf(oc.alias, oc.column));
        left_keys.push_back(idx);
      }
      for (const OrderColumn& oc : right_order) {
        RELOPT_ASSIGN_OR_RETURN(size_t idx, right_plan->schema().IndexOf(oc.alias, oc.column));
        right_keys.push_back(idx);
      }
      std::vector<ExprPtr> residual;
      for (int o : others) residual.push_back(graph_->other_conjuncts[o]->Clone());
      ExprPtr residual_expr = CombineConjuncts(std::move(residual));
      Schema concat = Schema::Concat(left_plan->schema(), right_plan->schema());
      if (residual_expr) {
        RELOPT_RETURN_NOT_OK(residual_expr->Bind(concat));
      }
      PhysicalPtr build_plan;
      PhysicalPtr probe_plan;
      std::vector<size_t> build_keys, probe_keys;
      bool output_probe_first;
      if (cand.build_left) {
        build_plan = std::move(left_plan);
        probe_plan = std::move(right_plan);
        build_keys = left_keys;
        probe_keys = right_keys;
        output_probe_first = false;
      } else {
        build_plan = std::move(right_plan);
        probe_plan = std::move(left_plan);
        build_keys = right_keys;
        probe_keys = left_keys;
        output_probe_first = true;
      }
      auto node = std::make_unique<PhysHashJoin>(std::move(build_plan), std::move(probe_plan),
                                                 std::move(build_keys), std::move(probe_keys),
                                                 std::move(residual_expr), output_probe_first);
      node->SetEstimates(cand.rows, cand.cost);
      node->set_feedback_key(std::move(feedback_key));
      return PhysicalPtr(std::move(node));
    }
    default:
      return Status::Internal("unexpected join method in BuildJoinPlan");
  }
}

}  // namespace relopt
