// Access path selection: seq scan vs index scans per base relation.
#pragma once

#include "optimizer/cost_model.h"
#include "optimizer/join_graph.h"
#include "optimizer/order_spec.h"
#include "optimizer/plan_trace.h"
#include "optimizer/selectivity.h"
#include "plan/physical_plan.h"

namespace relopt {

/// One candidate way to read a base relation with its predicates applied.
struct AccessPath {
  int rel_index = -1;
  IndexInfo* index = nullptr;     ///< nullptr = sequential scan
  std::vector<Value> lo_values;   ///< composite prefix bounds (index paths)
  bool lo_inclusive = true;
  std::vector<Value> hi_values;
  bool hi_inclusive = true;
  /// Positions into the relation's conjunct list consumed as index bounds;
  /// the rest become residual/filter predicates.
  std::vector<size_t> consumed;

  double out_rows = 0;   ///< rows after ALL conjuncts
  Cost cost;             ///< total cost of producing them
  OrderSpec order;       ///< output ordering (index key order, if any)

  std::string ToString(const QueryGraph& graph) const;
};

/// \brief Enumerates access paths for one relation: always the sequential
/// scan, plus — per index — the bounded scan derived from sargable conjuncts
/// (leading-column equalities then one range) and, when the index key order
/// could be interesting, the unbounded index scan.
/// `trace` (optional) receives one "access_path" event per candidate
/// considered, including indexes rejected before costing.
Result<std::vector<AccessPath>> EnumerateAccessPaths(const QueryGraph& graph, int rel_index,
                                                     const SelectivityEstimator& estimator,
                                                     const CostModel& cost_model,
                                                     bool enable_index_scans,
                                                     PlanTrace* trace = nullptr);

/// Builds the physical subplan for one access path (scan node, residual
/// filter attached), with estimates filled in.
Result<PhysicalPtr> BuildAccessPathPlan(const QueryGraph& graph, const AccessPath& path);

}  // namespace relopt
