#include "optimizer/plan_trace.h"

#include "util/str_util.h"

namespace relopt {

size_t PlanTrace::CountPruned() const {
  size_t n = 0;
  for (const PlanTraceEvent& e : events_) {
    if (e.action == "pruned") ++n;
  }
  return n;
}

size_t PlanTrace::CountKept() const {
  size_t n = 0;
  for (const PlanTraceEvent& e : events_) {
    if (e.action == "kept" || e.action == "chosen") ++n;
  }
  return n;
}

std::string PlanTrace::ToText() const {
  std::string out;
  for (const PlanTraceEvent& e : events_) {
    out += StringPrintf("[%s] %s %s: rows=%.1f io=%.1f cpu=%.0f total=%.2f %s", e.phase.c_str(),
                        e.target.c_str(), e.candidate.c_str(), e.rows, e.cost.page_ios,
                        e.cost.cpu_tuples, e.total_cost, e.action.c_str());
    if (!e.reason.empty()) out += " (" + e.reason + ")";
    out += "\n";
  }
  return out;
}

std::string PlanTrace::ToJson() const {
  std::string out = "{\"events\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const PlanTraceEvent& e = events_[i];
    if (i > 0) out += ",";
    out += StringPrintf(
        "{\"phase\":\"%s\",\"target\":\"%s\",\"candidate\":\"%s\",\"rows\":%.2f,"
        "\"io\":%.2f,\"cpu\":%.2f,\"total\":%.4f,\"action\":\"%s\",\"reason\":\"%s\"}",
        JsonEscape(e.phase).c_str(), JsonEscape(e.target).c_str(), JsonEscape(e.candidate).c_str(),
        e.rows, e.cost.page_ios, e.cost.cpu_tuples, e.total_cost, JsonEscape(e.action).c_str(),
        JsonEscape(e.reason).c_str());
  }
  out += "]}";
  return out;
}

}  // namespace relopt
