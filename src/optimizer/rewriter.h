// Logical rewrites that run before cost-based optimization.
#pragma once

#include "plan/logical_plan.h"
#include "util/result.h"

namespace relopt {

/// \brief Normalizes a bound logical plan:
///  * constant-folds every Filter/Join predicate,
///  * removes Filters that folded to constant TRUE,
///  * replaces Filters that folded to FALSE/NULL with an empty Values node.
///
/// Conjunct splitting and predicate pushdown happen structurally inside the
/// query-graph extraction (optimizer/join_graph.h) — single-relation
/// conjuncts are applied at the access path, which *is* pushdown in the
/// System-R architecture. The `naive` planner skips all of this, giving the
/// rewrite-ablation baseline.
Result<LogicalPtr> NormalizeLogicalPlan(LogicalPtr plan);

}  // namespace relopt
