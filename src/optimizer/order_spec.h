// Physical ordering property used for interesting orders.
#pragma once

#include <string>
#include <vector>

#include "util/str_util.h"

namespace relopt {

/// One column of a physical ordering, identified by (alias, column).
struct OrderColumn {
  std::string alias;
  std::string column;
  bool desc = false;

  bool operator==(const OrderColumn& other) const {
    return EqualsIgnoreCase(alias, other.alias) && EqualsIgnoreCase(column, other.column) &&
           desc == other.desc;
  }
};

/// A physical ordering: major-to-minor columns.
using OrderSpec = std::vector<OrderColumn>;

/// True if data ordered by `have` is also ordered by `want` (i.e. `want` is a
/// prefix of `have`). The empty `want` is always satisfied.
inline bool OrderSatisfies(const OrderSpec& have, const OrderSpec& want) {
  if (want.size() > have.size()) return false;
  for (size_t i = 0; i < want.size(); ++i) {
    if (!(have[i] == want[i])) return false;
  }
  return true;
}

inline std::string OrderSpecToString(const OrderSpec& spec) {
  std::string out = "[";
  for (size_t i = 0; i < spec.size(); ++i) {
    if (i > 0) out += ", ";
    out += spec[i].alias + "." + spec[i].column;
    if (spec[i].desc) out += " DESC";
  }
  return out + "]";
}

}  // namespace relopt
