// PlanTrace: an optimizer decision log.
//
// A sink threaded through access-path enumeration and join enumeration that
// records every candidate considered — its estimated rows and cost — and, for
// candidates that lost, why they were discarded (dominated, over the
// candidate cap, no usable index bounds). Dumpable as aligned text or as
// structured JSON (schema in DESIGN.md "Observability").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "plan/physical_plan.h"

namespace relopt {

/// One optimizer decision about one candidate.
struct PlanTraceEvent {
  /// Enumeration stage: "access_path" | "join" | "final".
  std::string phase;
  /// The relation set being planned, e.g. "{o}" or "{c,o,l}".
  std::string target;
  /// Candidate description, e.g. "IndexScan(o via o_pk)" or
  /// "hash({c,o} ⨝ {l})".
  std::string candidate;
  double rows = 0;
  Cost cost;
  double total_cost = 0;  ///< weighted total the comparison used
  /// "kept" | "pruned" | "chosen".
  std::string action;
  /// Non-empty iff action == "pruned": the stated reason.
  std::string reason;
};

/// \brief Collects PlanTraceEvents during one Optimize() call.
class PlanTrace {
 public:
  void Add(PlanTraceEvent event) { events_.push_back(std::move(event)); }

  const std::vector<PlanTraceEvent>& events() const { return events_; }
  size_t CountPruned() const;
  size_t CountKept() const;

  /// Aligned text dump, one event per line.
  std::string ToText() const;
  /// {"events":[{phase,target,candidate,rows,io,cpu,total,action,reason}...]}
  std::string ToJson() const;

 private:
  std::vector<PlanTraceEvent> events_;
};

}  // namespace relopt
