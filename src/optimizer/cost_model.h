// The System-R-lineage cost model: page fetches + W * tuples.
//
// Every formula here is the classic one from the foundational evaluations:
//   SeqScan        P
//   IndexScan      H + s*L + (clustered ? s*P : Yao(N*s, P))
//   NLJ            C(outer) + N_outer * C(inner)
//   BNLJ           C(outer) + ceil(P_outer/(B-2)) * C(inner)
//   INLJ           C(outer) + N_outer * (H + match fetches)
//   Sort           0 if P <= B, else 2*P*(1 + merge passes)
//   SMJ            sorts (if unsorted) + merge CPU
//   Hash           C(build)+C(probe) if fits, else + 2*(P_b+P_p) (Grace)
// where B is the operator memory in pages, H index height, L leaf pages.
#pragma once

#include <cstddef>
#include <cstdint>

#include "plan/physical_plan.h"

namespace relopt {

/// \brief Pure cost formulas; stateless apart from tuning parameters.
class CostModel {
 public:
  CostModel(size_t buffer_pages, double cpu_weight = Cost::kDefaultCpuWeight)
      : buffer_pages_(buffer_pages < 3 ? 3 : buffer_pages), cpu_weight_(cpu_weight) {}

  size_t buffer_pages() const { return buffer_pages_; }
  double cpu_weight() const { return cpu_weight_; }
  double Total(const Cost& c) const { return c.Total(cpu_weight_); }

  /// Pages needed to hold `rows` rows of `row_bytes` bytes each.
  static double EstimatePages(double rows, double row_bytes);

  /// Yao's approximation for distinct pages touched when fetching `k` rows
  /// at random from a table of `pages` pages: pages * (1 - (1 - 1/pages)^k).
  static double YaoPagesTouched(double k, double pages);

  // ---- scans ----
  Cost SeqScan(double rows, double pages) const;

  /// `matching_rows` rows selected through an index of height `height` with
  /// `leaf_pages` leaves, over a heap of `pages`; `selected_frac` is the
  /// fraction of the index scanned.
  Cost IndexScan(double matching_rows, double selected_frac, double table_rows, double pages,
                 int height, double leaf_pages, bool clustered) const;

  // ---- unary ----
  Cost Filter(double input_rows) const;
  Cost Project(double input_rows) const;
  Cost Aggregate(double input_rows, double groups) const;

  /// External sort of `rows`/`pages`; `runs_out`/`passes_out` (optional)
  /// report the predicted run count and merge passes.
  Cost Sort(double rows, double pages, double* runs_out = nullptr,
            double* passes_out = nullptr) const;

  /// Materialize child result once (write) + `rescans` re-reads.
  Cost Materialize(double rows, double pages, double rescans) const;

  // ---- joins (costs EXCLUDE child costs; the enumerator adds those) ----

  /// Tuple nested loop: outer re-runs the inner per row.
  /// `inner_rerun_cost` = cost of one full inner execution.
  Cost NestedLoop(double outer_rows, Cost inner_rerun_cost, double inner_rows) const;

  /// Block nested loop with `outer_pages` of outer input.
  Cost BlockNestedLoop(double outer_rows, double outer_pages, Cost inner_rerun_cost,
                       double inner_rows) const;

  /// Index nested loop probing an index on the inner base table.
  /// `matches_per_probe` = expected inner rows per outer row.
  Cost IndexNestedLoop(double outer_rows, int inner_index_height, double matches_per_probe,
                       double inner_pages, double inner_rows, bool clustered) const;

  /// Merge phase of sort-merge join (children already sorted).
  Cost MergeJoin(double left_rows, double right_rows, double output_rows) const;

  /// Hash join; Grace I/O added when the build side exceeds memory.
  Cost HashJoin(double build_rows, double build_pages, double probe_rows,
                double probe_pages) const;

  /// True if a hash build of `build_pages` fits in operator memory.
  bool HashBuildFits(double build_pages) const;

  /// Merge fan-in used by Sort (matches the executor).
  size_t MergeFanIn() const;
  /// Operator memory in pages (matches ExecContext::operator_memory_pages).
  size_t OperatorMemoryPages() const;

 private:
  size_t buffer_pages_;
  double cpu_weight_;
};

}  // namespace relopt
