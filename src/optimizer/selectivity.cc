#include "optimizer/selectivity.h"

#include <algorithm>
#include <cmath>

#include "util/str_util.h"

namespace relopt {

const char* StatsModeToString(StatsMode mode) {
  switch (mode) {
    case StatsMode::kNoStats:
      return "nostats";
    case StatsMode::kSystemR:
      return "systemr";
    case StatsMode::kHistogram:
      return "histogram";
  }
  return "?";
}

const ColumnStats* SelectivityEstimator::FindColumn(const std::string& alias,
                                                    const std::string& column) const {
  if (mode_ == StatsMode::kNoStats) return nullptr;
  TableInfo* table = nullptr;
  if (!alias.empty()) {
    auto it = aliases_->find(ToLower(alias));
    if (it == aliases_->end()) return nullptr;
    table = it->second;
  } else {
    // Unqualified reference: resolve to the unique relation holding the
    // column (binder guarantees uniqueness for valid queries).
    for (const auto& [name, candidate] : *aliases_) {
      if (candidate->schema().IndexOf(column).ok()) {
        if (table != nullptr) return nullptr;  // ambiguous
        table = candidate;
      }
    }
    if (table == nullptr) return nullptr;
  }
  if (!table->has_stats()) return nullptr;
  Result<size_t> idx = table->schema().IndexOf(column);
  if (!idx.ok()) return nullptr;
  if (*idx >= table->stats().columns.size()) return nullptr;
  return &table->stats().columns[*idx];
}

double SelectivityEstimator::ColumnNdv(const std::string& alias, const std::string& column) const {
  const ColumnStats* stats = FindColumn(alias, column);
  if (stats != nullptr && stats->ndv > 0) return static_cast<double>(stats->ndv);
  // Fallback: a tenth of the rows, at least 10 (the classic guess).
  if (!alias.empty()) {
    auto it = aliases_->find(ToLower(alias));
    if (it != aliases_->end() && it->second->has_stats()) {
      return std::max(10.0, static_cast<double>(it->second->stats().num_rows) / 10.0);
    }
  }
  return 10.0;
}

double SelectivityEstimator::EstimateGroupCount(const std::vector<ExprPtr>& group_by,
                                                double input_rows) const {
  if (group_by.empty()) return 1.0;
  input_rows = std::max(input_rows, 1.0);
  double groups = 1.0;
  for (const ExprPtr& g : group_by) {
    double d = kDefaultExprNdv;
    if (g->kind() == ExprKind::kColumnRef) {
      const auto* ref = static_cast<const ColumnRefExpr*>(g.get());
      const ColumnStats* stats = FindColumn(ref->table(), ref->name());
      if (stats != nullptr && stats->ndv > 0) {
        d = static_cast<double>(stats->ndv);
        if (mode_ == StatsMode::kHistogram && !stats->histogram.Empty()) {
          // Per-bucket distinct counts sum to the column's NDV at ANALYZE
          // time; prefer them so the estimate tracks the histogram's view.
          double hist_ndv = 0.0;
          for (const EquiDepthHistogram::Bucket& b : stats->histogram.buckets()) {
            hist_ndv += static_cast<double>(b.ndv);
          }
          if (hist_ndv > 0.0) d = hist_ndv;
        }
        if (stats->num_null > 0) d += 1.0;  // NULLs form one extra group
      } else {
        d = ColumnNdv(ref->table(), ref->name());
      }
    }
    groups *= std::max(1.0, d);
  }
  return std::clamp(groups, 1.0, input_rows);
}

double SelectivityEstimator::EstimateEquiJoin(const std::string& left_alias,
                                              const std::string& left_col,
                                              const std::string& right_alias,
                                              const std::string& right_col) const {
  double ndv_l = ColumnNdv(left_alias, left_col);
  double ndv_r = ColumnNdv(right_alias, right_col);
  // NULL keys never join: only the non-NULL fraction of each side
  // participates in the containment assumption.
  const ColumnStats* stats_l = FindColumn(left_alias, left_col);
  const ColumnStats* stats_r = FindColumn(right_alias, right_col);
  double nn_l = stats_l != nullptr ? 1.0 - stats_l->null_fraction() : 1.0;
  double nn_r = stats_r != nullptr ? 1.0 - stats_r->null_fraction() : 1.0;
  double sel = nn_l * nn_r / std::max(1.0, std::max(ndv_l, ndv_r));
  return std::clamp(sel, kMinSelectivity, 1.0);
}

double SelectivityEstimator::FloorFor(const SargablePred& pred) const {
  const ColumnStats* stats = FindColumn(pred.table, pred.column);
  if (stats != nullptr) {
    double total = static_cast<double>(stats->num_non_null + stats->num_null);
    if (total > 0) return std::min(1.0 / total, 1.0);
  }
  return kMinSelectivity;
}

double SelectivityEstimator::EstimateSargable(const SargablePred& pred) const {
  // Floor every estimate at one expected row: exactly-zero selectivities
  // collapse whole AND-chains and join cardinalities to zero and produce
  // degenerate zero-cost plans.
  return std::clamp(EstimateSargableRaw(pred), FloorFor(pred), 1.0);
}

double SelectivityEstimator::EstimateSargableRaw(const SargablePred& pred) const {
  const ColumnStats* stats = FindColumn(pred.table, pred.column);
  const bool have_hist =
      mode_ == StatsMode::kHistogram && stats != nullptr && !stats->histogram.Empty();

  double non_null_frac = stats != nullptr ? 1.0 - stats->null_fraction() : 1.0;

  switch (pred.op) {
    case CompareOp::kEq: {
      if (have_hist) return non_null_frac * stats->histogram.EstimateEq(pred.constant);
      if (stats != nullptr && stats->ndv > 0) {
        // Uniform over distinct values — but 0 outside [min, max] (the
        // caller floors this to one expected row).
        if (stats->min.has_value() && stats->max.has_value()) {
          Result<int> clo = pred.constant.Compare(*stats->min);
          Result<int> chi = pred.constant.Compare(*stats->max);
          if (clo.ok() && chi.ok() && (*clo < 0 || *chi > 0)) return 0.0;
        }
        return non_null_frac / static_cast<double>(stats->ndv);
      }
      return kDefaultEq;
    }
    case CompareOp::kNe: {
      // NULLs satisfy neither `=` nor `!=`: the complement of the equality
      // selectivity within the non-NULL fraction, not within all rows.
      SargablePred eq = pred;
      eq.op = CompareOp::kEq;
      return std::clamp(non_null_frac - EstimateSargableRaw(eq), 0.0, 1.0);
    }
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kGt:
    case CompareOp::kGe: {
      bool lower_side = pred.op == CompareOp::kLt || pred.op == CompareOp::kLe;
      bool inclusive = pred.op == CompareOp::kLe || pred.op == CompareOp::kGe;
      if (have_hist) {
        // EstimateLess(v, incl) = fraction of rows with col < v (or <= v).
        double frac = lower_side ? stats->histogram.EstimateLess(pred.constant, inclusive)
                                 : 1.0 - stats->histogram.EstimateLess(pred.constant, !inclusive);
        return non_null_frac * std::clamp(frac, 0.0, 1.0);
      }
      if (stats != nullptr && stats->min.has_value() && stats->max.has_value() &&
          IsNumeric(stats->min->type()) && IsNumeric(pred.constant.type())) {
        double lo = stats->min->NumericAsDouble();
        double hi = stats->max->NumericAsDouble();
        double v = pred.constant.NumericAsDouble();
        if (hi <= lo) return kDefaultRange;
        double below = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
        return non_null_frac * (lower_side ? below : 1.0 - below);
      }
      return kDefaultRange;
    }
  }
  return kDefaultUnknown;
}

double SelectivityEstimator::EstimatePredicate(const Expression& expr) const {
  // Constant predicates.
  if (expr.kind() == ExprKind::kLiteral) {
    const Value& v = static_cast<const LiteralExpr&>(expr).value();
    if (v.is_null()) return 0.0;
    if (v.type() == TypeId::kBool) return v.AsBool() ? 1.0 : 0.0;
    return kDefaultUnknown;
  }

  if (expr.kind() == ExprKind::kLogical) {
    const auto& logical = static_cast<const LogicalExpr&>(expr);
    switch (logical.op()) {
      case LogicalOp::kAnd: {
        // Independence assumption: product.
        double s = 1.0;
        for (const ExprPtr& c : logical.children()) s *= EstimatePredicate(*c);
        return s;
      }
      case LogicalOp::kOr: {
        // Inclusion-exclusion under independence.
        double s = 0.0;
        for (const ExprPtr& c : logical.children()) {
          double cs = EstimatePredicate(*c);
          s = s + cs - s * cs;
        }
        return s;
      }
      case LogicalOp::kNot:
        return std::clamp(1.0 - EstimatePredicate(*logical.children()[0]), 0.0, 1.0);
    }
  }

  if (expr.kind() == ExprKind::kIsNull) {
    const auto& isnull = static_cast<const IsNullExpr&>(expr);
    double null_frac = 0.0;
    if (isnull.child()->kind() == ExprKind::kColumnRef) {
      const auto* ref = static_cast<const ColumnRefExpr*>(isnull.child());
      const ColumnStats* stats = FindColumn(ref->table(), ref->name());
      null_frac = stats != nullptr ? stats->null_fraction() : 0.1;
    } else {
      null_frac = 0.1;
    }
    return isnull.negated() ? 1.0 - null_frac : null_frac;
  }

  if (expr.kind() == ExprKind::kComparison) {
    std::optional<SargablePred> sarg = MatchSargable(expr);
    if (sarg.has_value()) return EstimateSargable(*sarg);
    std::optional<EquiJoinPred> join = MatchEquiJoin(expr);
    if (join.has_value()) {
      return EstimateEquiJoin(join->left_table, join->left_column, join->right_table,
                              join->right_column);
    }
    const auto& cmp = static_cast<const ComparisonExpr&>(expr);
    // col1 <op> col2 on the same table, or complex operands.
    return cmp.op() == CompareOp::kEq ? kDefaultEq : kDefaultRange;
  }

  return kDefaultUnknown;
}

}  // namespace relopt
