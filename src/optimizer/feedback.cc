#include "optimizer/feedback.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "exec/plan_profile.h"
#include "plan/physical_plan.h"
#include "util/metrics.h"
#include "util/str_util.h"

namespace relopt {

namespace {

/// Lower-cases everything outside single-quoted string literals, so
/// identifier case never splits a signature but literal values are kept
/// verbatim (same discipline as the plan-cache key normalization).
std::string LowerOutsideLiterals(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  bool in_literal = false;
  for (char c : in) {
    if (c == '\'') {
      in_literal = !in_literal;
      out += c;
    } else {
      out += in_literal ? c : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  return out;
}

}  // namespace

std::string FeedbackStore::RenderConjunct(const Expression& expr, bool strip_qualifiers) {
  ExprPtr clone = expr.Clone();
  if (strip_qualifiers) {
    std::vector<ColumnRefExpr*> refs;
    clone->CollectColumnRefsMutable(&refs);
    for (ColumnRefExpr* ref : refs) ref->set_table("");
  }
  return LowerOutsideLiterals(clone->ToString());
}

std::string FeedbackStore::ScanSignature(const std::string& table,
                                         std::vector<std::string> conjunct_sigs) {
  std::sort(conjunct_sigs.begin(), conjunct_sigs.end());
  std::string out = "s|" + ToLower(table) + "|";
  for (size_t i = 0; i < conjunct_sigs.size(); ++i) {
    if (i > 0) out += " AND ";
    out += conjunct_sigs[i];
  }
  return out;
}

std::string FeedbackStore::JoinSignature(std::vector<std::string> rel_tags,
                                         std::vector<std::string> edge_sigs,
                                         std::vector<std::string> other_sigs) {
  std::sort(rel_tags.begin(), rel_tags.end());
  std::sort(edge_sigs.begin(), edge_sigs.end());
  std::sort(other_sigs.begin(), other_sigs.end());
  auto join = [](const std::vector<std::string>& parts, const char* sep) {
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (i > 0) out += sep;
      out += parts[i];
    }
    return out;
  };
  return "j|" + join(rel_tags, ",") + "|" + join(edge_sigs, "&") + "|" + join(other_sigs, "&");
}

void FeedbackStore::RecordLocked(const std::string& signature,
                                 const std::vector<std::string>& tables, double value) {
  Entry& e = entries_[signature];
  const bool fresh = e.updates == 0;
  const double old = e.value;
  if (fresh) {
    for (const std::string& t : tables) e.tables.push_back(ToLower(t));
  }
  e.value = value;
  ++e.updates;
  // Bump the version only on a material change: a converged workload must
  // converge back to plan-cache hits, not re-optimize forever.
  const double denom = std::max(std::abs(old), 1.0);
  if (fresh || std::abs(value - old) / denom > kVersionBumpThreshold) {
    ++version_;
  }
  EngineMetrics::Get().optimizer_feedback_records->Add(1);
}

void FeedbackStore::RecordScanRows(const std::string& signature,
                                   const std::vector<std::string>& tables, double actual_rows) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordLocked(signature, tables, std::max(actual_rows, 0.0));
}

void FeedbackStore::RecordJoinSelectivity(const std::string& signature,
                                          const std::vector<std::string>& tables,
                                          double selectivity) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordLocked(signature, tables, std::clamp(selectivity, 0.0, 1.0));
}

std::optional<double> FeedbackStore::LookupScanRows(const std::string& signature) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(signature);
  if (it == entries_.end()) return std::nullopt;
  ++it->second.hits;
  EngineMetrics::Get().optimizer_feedback_overrides->Add(1);
  return it->second.value;
}

std::optional<double> FeedbackStore::LookupJoinSelectivity(const std::string& signature) const {
  return LookupScanRows(signature);  // same map, same semantics
}

void FeedbackStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.empty()) return;
  EngineMetrics::Get().optimizer_feedback_invalidations->Add(entries_.size());
  entries_.clear();
  ++version_;
}

size_t FeedbackStore::InvalidateTable(const std::string& table) {
  const std::string needle = ToLower(table);
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const std::vector<std::string>& tables = it->second.tables;
    if (std::find(tables.begin(), tables.end(), needle) != tables.end()) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped > 0) {
    EngineMetrics::Get().optimizer_feedback_invalidations->Add(dropped);
    ++version_;
  }
  return dropped;
}

uint64_t FeedbackStore::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

size_t FeedbackStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<FeedbackStore::EntryInfo> FeedbackStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EntryInfo> out;
  out.reserve(entries_.size());
  for (const auto& [sig, e] : entries_) {
    EntryInfo info;
    info.kind = sig.rfind("s|", 0) == 0 ? "scan" : "join";
    for (size_t i = 0; i < e.tables.size(); ++i) {
      if (i > 0) info.tables += ",";
      info.tables += e.tables[i];
    }
    info.signature = sig;
    info.value = e.value;
    info.updates = e.updates;
    info.hits = e.hits;
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const EntryInfo& a, const EntryInfo& b) { return a.signature < b.signature; });
  return out;
}

namespace {

bool ContainsLimit(const PhysicalNode& node) {
  if (node.kind() == PhysicalNodeKind::kLimit) return true;
  for (const PhysicalPtr& child : node.children()) {
    if (ContainsLimit(*child)) return true;
  }
  return false;
}

/// Base tables a feedback key mentions: scan keys name one table, join keys
/// carry alias:table tags.
std::vector<std::string> TablesOfKey(const std::string& key) {
  std::vector<std::string> tables;
  size_t first = key.find('|');
  if (first == std::string::npos) return tables;
  size_t second = key.find('|', first + 1);
  std::string field = key.substr(first + 1, second == std::string::npos
                                                ? std::string::npos
                                                : second - first - 1);
  if (key.rfind("s|", 0) == 0) {
    tables.push_back(field);
    return tables;
  }
  for (const std::string& tag : Split(field, ',')) {
    size_t colon = tag.find(':');
    std::string table = colon == std::string::npos ? tag : tag.substr(colon + 1);
    if (std::find(tables.begin(), tables.end(), table) == tables.end()) {
      tables.push_back(std::move(table));
    }
  }
  return tables;
}

void HarvestNode(const PhysicalNode& plan, const OperatorProfile& profile,
                 FeedbackStore* store) {
  const std::string& key = plan.feedback_key();
  if (!key.empty()) {
    const double actual = static_cast<double>(profile.stats.rows_produced);
    if (key.rfind("s|", 0) == 0) {
      store->RecordScanRows(key, TablesOfKey(key), actual);
    } else if (plan.children().size() == 2 && profile.children.size() == 2) {
      // Observed join selectivity: output over the input cross product. Only
      // meaningful when both inputs actually produced rows.
      const double l = static_cast<double>(profile.children[0].stats.rows_produced);
      const double r = static_cast<double>(profile.children[1].stats.rows_produced);
      if (l > 0 && r > 0) {
        store->RecordJoinSelectivity(key, TablesOfKey(key), actual / (l * r));
      }
    }
  }
  for (size_t i = 0; i < plan.children().size() && i < profile.children.size(); ++i) {
    HarvestNode(*plan.children()[i], profile.children[i], store);
  }
}

}  // namespace

void HarvestFeedback(const PhysicalNode& plan, const PlanProfile& profile,
                     FeedbackStore* store) {
  if (store == nullptr || !profile.valid) return;
  // A LIMIT stops consuming mid-stream: every operator below it reports the
  // rows produced so far, not the relation's true cardinality.
  if (ContainsLimit(plan)) return;
  HarvestNode(plan, profile.root, store);
}

}  // namespace relopt
