// Join-order enumeration: Selinger DP (bushy & left-deep) with interesting
// orders, plus the baseline strategies the evaluation compares against
// (exhaustive, greedy, random, worst-case).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "optimizer/access_path.h"
#include "optimizer/cost_model.h"
#include "optimizer/join_graph.h"
#include "optimizer/order_spec.h"
#include "optimizer/selectivity.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace relopt {

enum class JoinMethod {
  kNestedLoop,
  kBlockNestedLoop,
  kIndexNestedLoop,
  kSortMerge,
  kHash,
};

const char* JoinMethodToString(JoinMethod method);

/// Which enumeration strategy to run.
enum class JoinEnumAlgorithm {
  kDpBushy,     ///< Selinger DP over all connected splits (bushy trees)
  kDpLeftDeep,  ///< Selinger DP restricted to left-deep trees
  kGreedy,      ///< greedy pairwise (GOO-style): repeatedly merge cheapest
  kExhaustive,  ///< all left-deep permutations, cheapest method per step
  kRandom,      ///< one random left-deep permutation (cheapest methods)
  kWorst,       ///< DP maximizing cost over orders (methods still cheapest)
  /// Simpli-Squared: estimate-free ordering. Left-deep, smallest base-table
  /// row count first, then repeatedly add the connected relation with the
  /// smallest base row count (cheapest method per step). The baseline that
  /// shows how far plain table sizes get without any selectivity model.
  kSimpliSquared,
  /// DPccp (Moerkotte & Neumann): DP over connected-subgraph/complement
  /// pairs of the join graph only. Same candidate lists, interesting orders,
  /// and dominance pruning as kDpBushy — cost-equal plans on connected
  /// graphs — but the enumeration is output-sensitive in the number of
  /// csg-cmp pairs instead of 3^n splits. Wrapped in a budgeted ladder:
  /// above `dp_budget` csg-cmp pairs it degrades to greedy-GOO, then
  /// kSimpliSquared; disconnected graphs route to kDpBushy (small n) or
  /// greedy.
  kDpCcp,
};

const char* JoinEnumAlgorithmToString(JoinEnumAlgorithm algorithm);

struct JoinEnumOptions {
  JoinEnumAlgorithm algorithm = JoinEnumAlgorithm::kDpBushy;
  bool use_interesting_orders = true;
  bool avoid_cross_products = true;
  bool enable_nlj = true;
  bool enable_bnlj = true;
  bool enable_inlj = true;
  bool enable_smj = true;
  bool enable_hash = true;
  bool enable_index_scans = true;
  uint64_t random_seed = 42;
  /// Cap on kept candidates per DP subset (dominance-pruned first).
  size_t max_candidates_per_set = 8;
  /// kDpCcp ladder: maximum csg-cmp pairs the DP may cost before degrading
  /// to greedy (then Simpli-Squared). ~100k pairs keeps a 20-relation chain
  /// exact and a 20-relation clique bounded.
  uint64_t dp_budget = 100000;
  /// Optional decision log (not owned). When set, every candidate considered
  /// is recorded with its cost and — for losers — the prune reason. The
  /// worst-case strategy never traces (its "pruning" is inverted on purpose).
  PlanTrace* trace = nullptr;
};

struct JoinEnumResult {
  PhysicalPtr plan;
  double rows = 0;
  Cost cost;
  OrderSpec order;          ///< delivered output order
  bool order_satisfied = false;  ///< true if `required_order` was delivered
};

struct JoinEnumStats {
  uint64_t joins_costed = 0;    ///< (left cand, right cand, method) combos
  uint64_t dp_entries = 0;      ///< candidates kept across all subsets
  uint64_t subsets_visited = 0;
  /// DPccp: csg-cmp pairs enumerated (also counts pairs seen before a
  /// budget abort).
  uint64_t csg_cmp_pairs = 0;
  /// Selinger DP: subsets skipped before candidate generation because their
  /// induced join graph is disconnected (avoid_cross_products fast path).
  uint64_t disconnected_subsets_skipped = 0;
  /// True iff a join search actually ran (>= 2 relations in the block);
  /// metric export keys off this so non-join statements don't skew counters.
  bool enumerated = false;
  /// True iff kDpCcp aborted because the csg-cmp pair count exceeded
  /// dp_budget and a cheaper strategy planned instead.
  bool budget_fallback = false;
  /// The strategy that produced the final plan (== the configured algorithm
  /// except when the kDpCcp ladder degraded).
  JoinEnumAlgorithm strategy_used = JoinEnumAlgorithm::kDpBushy;
};

/// \brief Enumerates join orders/methods for a QueryGraph and returns the
/// chosen physical plan with estimates.
class JoinEnumerator {
 public:
  JoinEnumerator(const QueryGraph* graph, const SelectivityEstimator* estimator,
                 const CostModel* cost_model, JoinEnumOptions options);

  /// `required_order` (possibly empty) is the ORDER BY the consumer wants;
  /// with interesting orders enabled the DP may deliver it sort-free.
  Result<JoinEnumResult> Run(const OrderSpec& required_order);

  const JoinEnumStats& stats() const { return stats_; }

 private:
  /// A DP candidate: estimates plus the recipe to rebuild its plan.
  struct Candidate {
    JoinSet set;
    double rows = 0;
    double row_bytes = 0;
    double pages = 0;
    Cost cost;
    OrderSpec order;

    bool is_scan = false;
    int rel_index = -1;
    int path_index = -1;

    JoinMethod method = JoinMethod::kNestedLoop;
    int left = -1;   // arena ids
    int right = -1;
    bool build_left = true;       // hash: which side builds
    bool sort_left = false;       // smj enforcers
    bool sort_right = false;
    std::vector<int> probe_edges;  // inlj: edges used as probe keys
  };

  // --- shared helpers -----------------------------------------------------
  Status SeedBaseRelations();
  /// Edges joining `left` to `right`.
  std::vector<int> EdgesBetween(JoinSet left, JoinSet right) const;
  /// other_conjuncts newly applicable at `left` ∪ `right`.
  std::vector<int> NewOtherConjuncts(JoinSet left, JoinSet right) const;
  /// Estimated output rows of joining two candidate sets.
  double JoinRows(const Candidate& l, const Candidate& r, const std::vector<int>& edges,
                  const std::vector<int>& others) const;

  /// Generates every enabled method's candidate for (l, r); appends to out.
  void EmitJoinCandidates(int left_id, int right_id, std::vector<Candidate>* out);

  /// Dominance-prunes and stores candidates for a subset.
  void KeepCandidates(JoinSet set, std::vector<Candidate> candidates);

  /// Adds `cand` to the arena, returns its id.
  int Intern(Candidate cand);

  /// "{a,b,c}" from the aliases in `set`.
  std::string SetName(JoinSet set) const;
  /// Human-readable candidate label, e.g. "IndexScan(o via o_pk)" or
  /// "hash({c,o} x {l})".
  std::string CandidateName(const Candidate& cand) const;
  /// Records one decision in options_.trace (no-op when tracing is off or
  /// during worst-case search). `phase` overrides the default
  /// scan→"access_path" / join→"join" classification.
  void TraceCandidate(JoinSet set, const Candidate& cand, const char* action, const char* reason,
                      const char* phase = nullptr) const;

  Result<int> RunDp(bool left_deep_only, bool maximize);
  Result<int> RunGreedy();
  Result<int> RunExhaustive();
  Result<int> RunRandom();
  Result<int> RunSimpliSquared();

  // --- DPccp ---------------------------------------------------------------
  /// A connected subgraph and a connected complement adjacent to it; the DP
  /// costs both join orders of each pair.
  struct CsgCmpPair {
    uint64_t csg;
    uint64_t cmp;
  };

  /// Per-relation adjacency masks of the join graph: plain equi-join edges
  /// plus every other_conjunct's relation set treated as a clique (the
  /// hyperedge relaxation — connectivity may hold without an applicable
  /// predicate; the costing pass re-checks).
  void BuildAdjacency();
  /// Neighbors of `set` (members excluded), under `adjacency_`.
  uint64_t Neighborhood(uint64_t set, uint64_t excluded) const;
  /// True if `set` induces a connected subgraph under `adjacency_`.
  bool SubsetConnected(JoinSet set) const;

  /// Emits every csg-cmp pair of the join graph (Moerkotte & Neumann
  /// enumeration). Stops early and returns false once more than
  /// `options_.dp_budget` pairs exist; stats_.csg_cmp_pairs counts either
  /// way.
  bool EnumerateCsgCmpPairs(std::vector<CsgCmpPair>* out);
  void EnumerateCsgRec(uint64_t set, uint64_t excluded, std::vector<CsgCmpPair>* out,
                       bool* over_budget);
  void EmitCsg(uint64_t csg, std::vector<CsgCmpPair>* out, bool* over_budget);
  void EnumerateCmpRec(uint64_t csg, uint64_t cmp, uint64_t excluded,
                       std::vector<CsgCmpPair>* out, bool* over_budget);

  /// The DPccp search proper: assumes a connected graph and an in-budget
  /// pair list; same KeepCandidates discipline as RunDp.
  Result<int> RunDpCcp(std::vector<CsgCmpPair> pairs);

  /// Drops all DP state (arena, memo table) so a ladder fallback re-runs
  /// from scratch without double-seeded base relations.
  void ResetSearchState();
  /// Records a "strategy" PlanTrace event (kDpCcp ladder decisions).
  void TraceStrategy(JoinEnumAlgorithm strategy, const std::string& reason) const;

  /// Cardinality-feedback signature of joining `left` x `right` over the
  /// given edges and freshly applicable other-conjuncts.
  std::string FeedbackJoinSignature(JoinSet left, JoinSet right, const std::vector<int>& edges,
                                    const std::vector<int>& others) const;

  /// Best arena id for the full relation set honoring `required_order`
  /// (adds a Sort at materialization if unmet and `order_satisfied=false`).
  Result<int> PickFinal(const std::vector<int>& full_set_candidates,
                        const OrderSpec& required_order, bool* order_satisfied) const;

  /// Materializes the physical plan for an arena candidate.
  Result<PhysicalPtr> BuildPlan(int cand_id) const;
  Result<PhysicalPtr> BuildJoinPlan(const Candidate& cand) const;

  /// Key columns of `edges` on each side, as OrderSpecs (ascending).
  void EdgeOrders(const std::vector<int>& edges, JoinSet left_set, OrderSpec* left_order,
                  OrderSpec* right_order) const;

  const QueryGraph* graph_;
  const SelectivityEstimator* estimator_;
  const CostModel* cost_model_;
  JoinEnumOptions options_;
  Rng rng_;

  std::vector<std::vector<AccessPath>> access_paths_;  // per relation
  std::vector<Candidate> arena_;
  std::unordered_map<JoinSet, std::vector<int>, JoinSetHash> dp_;
  std::vector<OrderSpec> interesting_orders_;
  std::vector<uint64_t> adjacency_;  // per relation, see BuildAdjacency()
  JoinEnumStats stats_;
  bool maximize_ = false;
};

}  // namespace relopt
