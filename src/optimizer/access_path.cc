#include "optimizer/access_path.h"

#include <algorithm>

#include "expr/conjuncts.h"
#include "util/str_util.h"

namespace relopt {

std::string AccessPath::ToString(const QueryGraph& graph) const {
  const BaseRelation& rel = graph.relations[rel_index];
  std::string out = index == nullptr ? "SeqScan(" + rel.alias + ")"
                                     : "IndexScan(" + rel.alias + " via " + index->name + ")";
  out += StringPrintf(" rows=%.1f io=%.1f cpu=%.0f", out_rows, cost.page_ios, cost.cpu_tuples);
  if (!order.empty()) out += " order=" + OrderSpecToString(order);
  return out;
}

namespace {

/// Cached table-level numbers used by every path of a relation.
struct RelStats {
  double rows;
  double pages;
};

/// Records one access-path decision if tracing is on.
void TracePath(PlanTrace* trace, const std::string& alias, std::string candidate, double rows,
               const Cost& cost, const char* action, std::string reason) {
  if (trace == nullptr) return;
  PlanTraceEvent ev;
  ev.phase = "access_path";
  ev.target = "{" + alias + "}";
  ev.candidate = std::move(candidate);
  ev.rows = rows;
  ev.cost = cost;
  ev.total_cost = cost.Total();
  ev.action = action;
  ev.reason = std::move(reason);
  trace->Add(std::move(ev));
}

/// The relation's cardinality-feedback signature: base table plus its
/// single-table conjuncts rendered with bare column names (alias-free, so
/// `fact f` and plain `fact` share observations).
std::string ScanSignatureOf(const BaseRelation& rel) {
  std::vector<std::string> sigs;
  sigs.reserve(rel.conjuncts.size());
  for (const ExprPtr& c : rel.conjuncts) {
    sigs.push_back(FeedbackStore::RenderConjunct(*c, /*strip_qualifiers=*/true));
  }
  return FeedbackStore::ScanSignature(rel.table->name(), std::move(sigs));
}

RelStats StatsOf(const BaseRelation& rel) {
  RelStats s;
  if (rel.table->has_stats()) {
    s.rows = static_cast<double>(rel.table->stats().num_rows);
    s.pages = static_cast<double>(rel.table->stats().num_pages);
  } else {
    // Without ANALYZE, fall back to physical facts the system always knows.
    s.rows = static_cast<double>(rel.table->live_rows());
    s.pages = static_cast<double>(rel.table->heap()->NumPages());
  }
  s.rows = std::max(s.rows, 1.0);
  s.pages = std::max(s.pages, 1.0);
  return s;
}

}  // namespace

Result<std::vector<AccessPath>> EnumerateAccessPaths(const QueryGraph& graph, int rel_index,
                                                     const SelectivityEstimator& estimator,
                                                     const CostModel& cost_model,
                                                     bool enable_index_scans,
                                                     PlanTrace* trace) {
  const BaseRelation& rel = graph.relations[rel_index];
  RelStats table = StatsOf(rel);

  // Selectivity of every conjunct (shared across paths).
  std::vector<double> conj_sel;
  double total_sel = 1.0;
  for (const ExprPtr& c : rel.conjuncts) {
    double s = estimator.EstimatePredicate(*c);
    conj_sel.push_back(s);
    total_sel *= s;
  }
  double out_rows = std::max(table.rows * total_sel, 0.0);

  // Cardinality feedback: a previous execution observed this exact (table,
  // conjuncts) combination — trust the measurement over the model, floored
  // at one expected row like every estimate.
  if (estimator.feedback() != nullptr) {
    std::optional<double> observed = estimator.FeedbackScanRows(ScanSignatureOf(rel));
    if (observed.has_value()) out_rows = std::max(*observed, 1.0);
  }

  std::vector<AccessPath> paths;

  // --- Sequential scan (always available). -------------------------------
  {
    AccessPath p;
    p.rel_index = rel_index;
    p.out_rows = out_rows;
    p.cost = cost_model.SeqScan(table.rows, table.pages);
    TracePath(trace, rel.alias, "SeqScan(" + rel.alias + ")", p.out_rows, p.cost, "kept", "");
    paths.push_back(std::move(p));
  }
  if (!enable_index_scans) return paths;

  // --- One bounded path per index. ----------------------------------------
  for (IndexInfo* index : rel.table->indexes()) {
    AccessPath p;
    p.rel_index = rel_index;
    p.index = index;

    // Match leading equalities, then one range.
    double bounded_sel = 1.0;
    std::vector<bool> used(rel.conjuncts.size(), false);
    bool open = true;  // still extending the equality prefix
    for (size_t key_pos = 0; key_pos < index->key_columns.size() && open; ++key_pos) {
      const std::string& key_col = rel.table->schema().ColumnAt(index->key_columns[key_pos]).name;
      // Equality on this key column?
      bool matched_eq = false;
      for (size_t ci = 0; ci < rel.conjuncts.size(); ++ci) {
        if (used[ci]) continue;
        std::optional<SargablePred> sarg = MatchSargable(*rel.conjuncts[ci]);
        if (!sarg.has_value() || !EqualsIgnoreCase(sarg->column, key_col)) continue;
        if (sarg->op == CompareOp::kEq) {
          p.lo_values.push_back(sarg->constant);
          p.hi_values.push_back(sarg->constant);
          used[ci] = true;
          p.consumed.push_back(ci);
          bounded_sel *= conj_sel[ci];
          matched_eq = true;
          break;
        }
      }
      if (matched_eq) continue;
      // Range bounds on this key column terminate the prefix.
      open = false;
      Value lo_v, hi_v;
      bool have_lo = false, have_hi = false;
      for (size_t ci = 0; ci < rel.conjuncts.size(); ++ci) {
        if (used[ci]) continue;
        std::optional<SargablePred> sarg = MatchSargable(*rel.conjuncts[ci]);
        if (!sarg.has_value() || !EqualsIgnoreCase(sarg->column, key_col)) continue;
        if ((sarg->op == CompareOp::kGt || sarg->op == CompareOp::kGe) && !have_lo) {
          lo_v = sarg->constant;
          p.lo_inclusive = sarg->op == CompareOp::kGe;
          have_lo = true;
          used[ci] = true;
          p.consumed.push_back(ci);
          bounded_sel *= conj_sel[ci];
        } else if ((sarg->op == CompareOp::kLt || sarg->op == CompareOp::kLe) && !have_hi) {
          hi_v = sarg->constant;
          p.hi_inclusive = sarg->op == CompareOp::kLe;
          have_hi = true;
          used[ci] = true;
          p.consumed.push_back(ci);
          bounded_sel *= conj_sel[ci];
        }
      }
      if (have_lo) p.lo_values.push_back(lo_v);
      if (have_hi) p.hi_values.push_back(hi_v);
    }

    // Output order = index key columns, ascending.
    for (size_t kc : index->key_columns) {
      p.order.push_back(OrderColumn{rel.alias, rel.table->schema().ColumnAt(kc).name, false});
    }

    bool has_bounds = !p.lo_values.empty() || !p.hi_values.empty();
    if (!has_bounds && p.order.empty()) {
      TracePath(trace, rel.alias, "IndexScan(" + rel.alias + " via " + index->name + ")", out_rows,
                Cost{}, "pruned", "no sargable bounds and no interesting key order");
      continue;
    }

    double matching = std::max(1.0, table.rows * bounded_sel);
    Result<int> height = index->tree->Height();
    Result<size_t> leaves = index->tree->NumLeafPages();
    if (!height.ok() || !leaves.ok()) {
      TracePath(trace, rel.alias, "IndexScan(" + rel.alias + " via " + index->name + ")", out_rows,
                Cost{}, "pruned", "index tree statistics unavailable");
      continue;
    }
    p.cost = cost_model.IndexScan(matching, bounded_sel, table.rows, table.pages, *height,
                                  static_cast<double>(*leaves), index->clustered);
    // Residual predicate CPU for non-consumed conjuncts.
    if (p.consumed.size() < rel.conjuncts.size()) {
      p.cost += cost_model.Filter(matching);
    }
    p.out_rows = out_rows;
    TracePath(trace, rel.alias, "IndexScan(" + rel.alias + " via " + index->name + ")", p.out_rows,
              p.cost, "kept", "");
    paths.push_back(std::move(p));
  }
  return paths;
}

Result<PhysicalPtr> BuildAccessPathPlan(const QueryGraph& graph, const AccessPath& path) {
  const BaseRelation& rel = graph.relations[path.rel_index];

  // Residual: every conjunct not consumed as an index bound.
  std::vector<ExprPtr> residual;
  for (size_t ci = 0; ci < rel.conjuncts.size(); ++ci) {
    if (std::find(path.consumed.begin(), path.consumed.end(), ci) != path.consumed.end()) {
      continue;
    }
    residual.push_back(rel.conjuncts[ci]->Clone());
  }
  ExprPtr residual_expr = CombineConjuncts(std::move(residual));
  if (residual_expr) {
    RELOPT_RETURN_NOT_OK(residual_expr->Bind(rel.schema));
  }

  // The node whose actual output feeds the feedback store is the one that
  // has applied ALL conjuncts: the Filter when one exists, else the scan.
  std::string feedback_key = ScanSignatureOf(rel);

  if (path.index == nullptr) {
    PhysicalPtr scan =
        std::make_unique<PhysSeqScan>(rel.table->name(), rel.alias, rel.schema);
    scan->SetEstimates(path.out_rows, path.cost);
    if (residual_expr) {
      PhysicalPtr filter =
          std::make_unique<PhysFilter>(std::move(scan), std::move(residual_expr));
      filter->SetEstimates(path.out_rows, path.cost);
      filter->set_feedback_key(std::move(feedback_key));
      return filter;
    }
    scan->set_feedback_key(std::move(feedback_key));
    return scan;
  }

  auto scan = std::make_unique<PhysIndexScan>(rel.table->name(), rel.alias, path.index->name,
                                              rel.schema);
  scan->lo_values = path.lo_values;
  scan->lo_inclusive = path.lo_inclusive;
  scan->hi_values = path.hi_values;
  scan->hi_inclusive = path.hi_inclusive;
  scan->residual = std::move(residual_expr);
  scan->SetEstimates(path.out_rows, path.cost);
  scan->set_feedback_key(std::move(feedback_key));
  return PhysicalPtr(std::move(scan));
}

}  // namespace relopt
