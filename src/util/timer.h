// Monotonic wall-clock helpers for runtime instrumentation.
#pragma once

#include <chrono>
#include <cstdint>

namespace relopt {

/// Nanoseconds on the monotonic (steady) clock. Only differences are
/// meaningful; the epoch is unspecified.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

/// \brief RAII stopwatch: adds the scope's elapsed wall time to `*sink` on
/// destruction. Cheap enough for per-Next() instrumentation; the engine is
/// single-threaded so plain accumulation suffices.
class ScopedTimer {
 public:
  explicit ScopedTimer(uint64_t* sink) : sink_(sink), start_(MonotonicNanos()) {}
  ~ScopedTimer() { *sink_ += MonotonicNanos() - start_; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  uint64_t* sink_;
  uint64_t start_;
};

}  // namespace relopt
