// Minimal leveled logging + assertion macros.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace relopt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kFatal = 4 };

/// Global log threshold; messages below it are dropped. Default kWarn so
/// library users are not spammed.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Receives one fully-formatted log line (including the trailing newline).
/// Sinks are invoked under a global mutex, so emission is atomic per line
/// even when instrumentation code logs from timer/attribution scopes.
using LogSink = std::function<void(LogLevel, const std::string& line)>;

/// Replaces the log sink; a null sink restores the default (stderr).
/// Returns nothing; tests install a capturing sink and restore with
/// `SetLogSink(nullptr)`.
void SetLogSink(LogSink sink);

namespace internal {

/// Stream-style log line; emits on destruction. kFatal aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define RELOPT_LOG(level)                                                        \
  (::relopt::LogLevel::level < ::relopt::GetLogLevel())                          \
      ? (void)0                                                                  \
      : ::relopt::internal::Voidify() &                                          \
            ::relopt::internal::LogMessage(::relopt::LogLevel::level, __FILE__,  \
                                           __LINE__)                             \
                .stream()

#define RELOPT_DCHECK(cond)                                                        \
  (cond) ? (void)0                                                                \
         : ::relopt::internal::Voidify() &                                        \
               ::relopt::internal::LogMessage(::relopt::LogLevel::kFatal,         \
                                              __FILE__, __LINE__)                 \
                   .stream()                                                      \
               << "Check failed: " #cond " "

}  // namespace relopt
