#include "util/bitset.h"

namespace relopt {

std::string JoinSet::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEach([&](int i) {
    if (!first) out += ",";
    out += std::to_string(i);
    first = false;
  });
  out += "}";
  return out;
}

}  // namespace relopt
