// Engine-wide metrics: a process-global registry of atomic counters, gauges,
// and fixed-bucket histograms.
//
// Design goals (see DESIGN.md "Engine-wide observability"):
//  - Hot-path updates are single relaxed atomic operations — no locks, no
//    allocation. Registration (name lookup) is mutex-guarded but happens once
//    per call site: instrumented components cache the returned pointers,
//    which stay valid for the registry's lifetime.
//  - Snapshots are taken while worker threads run; per-metric reads are
//    relaxed atomic loads, so a snapshot is a consistent-enough view for
//    monitoring (each individual value is exact at some instant).
//  - The whole subsystem compiles to no-ops under -DRELOPT_DISABLE_METRICS
//    (CMake option RELOPT_DISABLE_METRICS), for overhead A/B benchmarks.
//
// Rendering: RenderPrometheus() emits the Prometheus text exposition format
// for a future serving layer's /metrics endpoint; Snapshot() feeds the
// relopt_metrics() SQL table function; ToJson() backs benchmark dumps.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace relopt {

/// Monotonically increasing count (relaxed atomic).
class MetricCounter {
 public:
  void Add(uint64_t n = 1) {
#ifndef RELOPT_DISABLE_METRICS
    v_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Instantaneous level that can move both ways (queue depths, live objects).
class MetricGauge {
 public:
  void Add(int64_t n) {
#ifndef RELOPT_DISABLE_METRICS
    v_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  void Sub(int64_t n) { Add(-n); }
  void Set(int64_t n) {
#ifndef RELOPT_DISABLE_METRICS
    v_.store(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// \brief Fixed-bucket histogram for latencies and sizes.
///
/// Bucket upper bounds are set at registration and never change; Observe()
/// does one binary search plus three relaxed atomic adds. Percentiles are
/// computed from a snapshot by linear interpolation inside the owning bucket;
/// samples above the last bound land in an overflow bucket whose percentile
/// reports the maximum observed value (tracked exactly).
class MetricHistogram {
 public:
  /// `bounds` must be strictly increasing upper bounds (at least one).
  explicit MetricHistogram(std::vector<double> bounds);

  void Observe(double value);

  /// Exponential defaults for microsecond latencies: 1us .. 10s.
  static std::vector<double> LatencyBucketsUs();
  /// Exponential defaults for row/byte counts: 1 .. 1e9.
  static std::vector<double> SizeBuckets();

  /// A point-in-time copy of the histogram state.
  struct Snapshot {
    std::vector<double> bounds;         ///< per-bucket upper bounds
    std::vector<uint64_t> counts;       ///< bounds.size() + 1 (last = overflow)
    uint64_t total_count = 0;
    double sum = 0;
    double max_value = 0;  ///< largest observation (0 when empty)

    /// Percentile in [0, 1]; 0 when the histogram is empty. Exact for the
    /// single-sample case (returns the mean of the owning bucket's range or
    /// max_value for the overflow bucket), monotone in q.
    double Percentile(double q) const;
  };
  Snapshot snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  ///< bounds_.size() + 1
  std::atomic<uint64_t> total_count_{0};
  /// Sum and max stored as bit-cast doubles (CAS loops); values must be >= 0.
  std::atomic<uint64_t> sum_bits_{0};
  std::atomic<uint64_t> max_bits_{0};
};

/// One row of a registry snapshot (the relopt_metrics() row format).
struct MetricSample {
  std::string name;
  std::string kind;  ///< "counter" | "gauge" | "histogram"
  double value = 0;  ///< counter/gauge value; histogram sum
  uint64_t count = 0;  ///< histogram observation count (0 otherwise)
  double p50 = 0, p95 = 0, p99 = 0;  ///< histograms only
};

/// \brief Name -> metric registry. Metric objects are never deleted, so the
/// pointers handed out are stable for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates. Names use dotted lower-case segments
  /// ("relopt.pool.hits"); RenderPrometheus maps '.' to '_'.
  MetricCounter* counter(const std::string& name);
  MetricGauge* gauge(const std::string& name);
  /// `bounds` applies only on first creation.
  MetricHistogram* histogram(const std::string& name, std::vector<double> bounds);

  /// Flat snapshot of every registered metric, sorted by name.
  std::vector<MetricSample> Snapshot() const;

  /// Prometheus text exposition format (# TYPE lines + samples; histograms
  /// as cumulative _bucket/_sum/_count series).
  std::string RenderPrometheus() const;

  /// JSON object {"name": {...}, ...} for benchmark snapshot dumps.
  std::string ToJson() const;

  /// The process-wide registry the engine instruments.
  static MetricsRegistry& Global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<MetricCounter> counter;
    std::unique_ptr<MetricGauge> gauge;
    std::unique_ptr<MetricHistogram> histogram;
  };

  mutable std::mutex mu_;  ///< guards entries_ (not metric updates)
  // Sorted name -> entry; insertion-only.
  std::vector<std::pair<std::string, Entry>> entries_;

  Entry* FindLocked(const std::string& name);
};

/// \brief Cached pointers to the engine's standard instrumentation metrics in
/// the global registry. `Get()` resolves them once per process; hot paths pay
/// only the atomic bump.
struct EngineMetrics {
  // storage
  MetricCounter* disk_page_reads;
  MetricCounter* disk_page_writes;
  MetricCounter* disk_pages_allocated;
  MetricCounter* pool_hits;
  MetricCounter* pool_misses;
  MetricCounter* pool_evictions;
  MetricCounter* pool_dirty_writebacks;
  MetricCounter* pool_latch_waits;  ///< contended pool-mutex acquisitions
  // thread pool
  MetricCounter* threadpool_tasks_queued;
  MetricCounter* threadpool_tasks_run;
  MetricCounter* threadpool_busy_nanos;
  MetricGauge* threadpool_queue_depth;
  // optimizer
  MetricCounter* optimizer_optimizations;
  MetricCounter* optimizer_joins_costed;
  MetricCounter* optimizer_plans_kept;
  MetricCounter* optimizer_plan_cache_hits;
  MetricCounter* optimizer_plan_cache_misses;
  MetricCounter* optimizer_plan_cache_evictions;
  MetricCounter* optimizer_plan_cache_invalidations;
  MetricCounter* optimizer_feedback_records;        ///< actuals harvested into the store
  MetricCounter* optimizer_feedback_overrides;      ///< estimates replaced by observations
  MetricCounter* optimizer_feedback_invalidations;  ///< entries dropped (DDL/ANALYZE/DML)
  // join enumeration (bumped once per optimized join block; see
  // JoinEnumStats for the per-optimization counterparts)
  MetricCounter* join_enum_joins_costed;
  MetricCounter* join_enum_dp_entries;
  MetricCounter* join_enum_subsets_visited;
  MetricCounter* join_enum_csg_cmp_pairs;
  MetricCounter* join_enum_disconnected_skips;
  MetricCounter* join_enum_budget_fallbacks;
  /// One counter per JoinEnumAlgorithm value (same order as the enum),
  /// counting join blocks whose final plan that strategy produced.
  static constexpr size_t kJoinEnumStrategies = 8;
  MetricCounter* join_enum_strategy[kJoinEnumStrategies];
  // serving layer
  MetricCounter* engine_sessions_opened;
  MetricCounter* engine_statements_prepared;
  MetricCounter* engine_prepared_executions;
  MetricHistogram* optimizer_optimize_us;
  // executor / engine
  MetricCounter* exec_rows_produced;
  MetricCounter* exec_batches_produced;
  MetricCounter* exec_batch_fallback_rows;
  MetricCounter* exec_statements_failed;
  MetricHistogram* engine_statement_us;
  MetricHistogram* engine_statement_rows;

  static const EngineMetrics& Get();
};

}  // namespace relopt
