// Result<T>: a Status or a value, in the Arrow idiom.
#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace relopt {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Use `RELOPT_ASSIGN_OR_RETURN(auto v, Foo())` to unwrap in functions that
/// themselves return Status/Result.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, like Arrow).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Constructs from a non-OK status. Constructing from an OK status is a
  /// programming error and asserts.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// The held value; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  /// Arrow-style accessors.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value out; must only be called when ok().
  T MoveValue() {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

 private:
  std::variant<Status, T> repr_;
};

#define RELOPT_CONCAT_IMPL(a, b) a##b
#define RELOPT_CONCAT(a, b) RELOPT_CONCAT_IMPL(a, b)

/// Assigns the value of a Result expression to `lhs`, or returns its Status.
#define RELOPT_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  auto RELOPT_CONCAT(_res_, __LINE__) = (rexpr);                     \
  if (!RELOPT_CONCAT(_res_, __LINE__).ok())                          \
    return RELOPT_CONCAT(_res_, __LINE__).status();                  \
  lhs = RELOPT_CONCAT(_res_, __LINE__).MoveValue()

}  // namespace relopt
