#include "util/thread_pool.h"

#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace relopt {

ThreadPool::ThreadPool(size_t num_threads) : uncommitted_threads_(num_threads) {
  RELOPT_DCHECK(num_threads >= 1);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  const EngineMetrics& m = EngineMetrics::Get();
  m.threadpool_tasks_queued->Add(1);
  m.threadpool_queue_depth->Add(1);
  cv_.notify_one();
}

void ThreadPool::SubmitGang(std::vector<std::function<void()>> tasks) {
  const size_t k = tasks.size();
  if (k == 0) return;
  RELOPT_DCHECK(k <= threads_.size());
  {
    std::unique_lock<std::mutex> lock(mu_);
    // All-or-nothing admission: wait until k threads are free of gang
    // commitments, then reserve them and enqueue the gang contiguously under
    // the same lock, so no other gang can interleave with it. Wakeups are not
    // FIFO — a smaller gang may overtake a larger waiting one — but every
    // admitted gang finishes independently, so every waiter is admitted
    // eventually.
    gang_cv_.wait(lock, [&] { return stop_ || uncommitted_threads_ >= k; });
    // On shutdown the wait releases unconditionally; skip the reservation
    // bookkeeping (the destructor still drains the queue).
    const bool reserved = uncommitted_threads_ >= k;
    if (reserved) uncommitted_threads_ -= k;
    for (std::function<void()>& task : tasks) {
      tasks_.push_back([this, reserved, task = std::move(task)]() mutable {
        task();
        if (reserved) {
          {
            std::lock_guard<std::mutex> inner(mu_);
            ++uncommitted_threads_;
          }
          gang_cv_.notify_all();
        }
      });
    }
  }
  const EngineMetrics& m = EngineMetrics::Get();
  m.threadpool_tasks_queued->Add(k);
  m.threadpool_queue_depth->Add(k);
  cv_.notify_all();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    const EngineMetrics& m = EngineMetrics::Get();
    m.threadpool_queue_depth->Sub(1);
    uint64_t busy_nanos = 0;
    {
      ScopedTimer timer(&busy_nanos);
      task();
    }
    m.threadpool_busy_nanos->Add(busy_nanos);
    m.threadpool_tasks_run->Add(1);
  }
}

void Barrier::ArriveAndWait() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t gen = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [this, gen] { return generation_ != gen; });
}

}  // namespace relopt
