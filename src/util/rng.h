// Deterministic random number generation for workloads and tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace relopt {

/// \brief Deterministic 64-bit PRNG (xorshift128+) with distribution helpers.
///
/// Used by the workload generators and property tests so every experiment is
/// reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial with probability p of true.
  bool Bernoulli(double p);

  /// Random ASCII lower-case string of the given length.
  std::string RandomString(size_t length);

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<size_t> Permutation(size_t n);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// \brief Zipf-distributed integer generator over [1, n].
///
/// Uses the standard inverse-CDF-over-precomputed-prefix method; skew = 0 is
/// uniform, skew ~1 is classic Zipf. Deterministic given the Rng.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double skew);

  /// Draws a value in [1, n]; rank 1 is most frequent.
  uint64_t Next(Rng* rng) const;

  uint64_t n() const { return n_; }
  double skew() const { return skew_; }

 private:
  uint64_t n_;
  double skew_;
  std::vector<double> cdf_;  // cumulative probabilities, size n
};

}  // namespace relopt
