#include "util/str_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace relopt {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int needed = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string FormatDouble(double v) {
  std::string s = StringPrintf("%.6f", v);
  // Trim trailing zeros and a trailing dot.
  size_t dot = s.find('.');
  if (dot != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (last == dot) last = dot - 1;
    s.erase(last + 1);
  }
  return s;
}

std::string EscapeSqlString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\'') out += "''";
    else out += c;
  }
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Repeat(std::string_view s, size_t n) {
  std::string out;
  out.reserve(s.size() * n);
  for (size_t i = 0; i < n; ++i) out += s;
  return out;
}

}  // namespace relopt
