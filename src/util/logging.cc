#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

namespace relopt {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Guards the sink pointer and serializes emission, so concurrent (or
// re-entrant) log lines never interleave mid-line.
std::mutex& SinkMutex() {
  static std::mutex m;
  return m;
}

LogSink& SinkSlot() {
  static LogSink sink;  // empty = default stderr sink
  return sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

void Emit(LogLevel level, const std::string& line) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  LogSink& sink = SinkSlot();
  if (sink) {
    sink(level, line);
  } else {
    // One fwrite per line keeps stderr output whole even when interleaved
    // with other writers.
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkSlot() = std::move(sink);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  Emit(level_, stream_.str());
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace relopt
