#include "util/status.h"

namespace relopt {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kTypeError:
      return "TypeError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(state_->code);
  result += ": ";
  result += state_->message;
  return result;
}

}  // namespace relopt
