#include "util/metrics.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"
#include "util/str_util.h"

namespace relopt {

namespace {

double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

uint64_t DoubleToBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// Relaxed CAS-add on a double stored in an atomic<uint64_t>.
void AtomicAddDouble(std::atomic<uint64_t>* slot, double delta) {
  uint64_t old_bits = slot->load(std::memory_order_relaxed);
  while (true) {
    double next = BitsToDouble(old_bits) + delta;
    if (slot->compare_exchange_weak(old_bits, DoubleToBits(next),
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

/// Relaxed CAS-max on a non-negative double stored in an atomic<uint64_t>.
/// (For non-negative doubles the bit patterns order like the values.)
void AtomicMaxDouble(std::atomic<uint64_t>* slot, double value) {
  uint64_t candidate = DoubleToBits(value);
  uint64_t old_bits = slot->load(std::memory_order_relaxed);
  while (BitsToDouble(old_bits) < value) {
    if (slot->compare_exchange_weak(old_bits, candidate, std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

// --------------------------------------------------------------- histogram

MetricHistogram::MetricHistogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  RELOPT_DCHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    RELOPT_DCHECK(bounds_[i] > bounds_[i - 1]) << "histogram bounds must increase";
  }
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0, std::memory_order_relaxed);
}

void MetricHistogram::Observe(double value) {
#ifndef RELOPT_DISABLE_METRICS
  if (value < 0) value = 0;
  // Bucket i holds values in (bounds_[i-1], bounds_[i]] (Prometheus "le"
  // semantics); values above the last bound land in the overflow bucket.
  size_t idx = std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  total_count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_bits_, value);
  AtomicMaxDouble(&max_bits_, value);
#else
  (void)value;
#endif
}

std::vector<double> MetricHistogram::LatencyBucketsUs() {
  std::vector<double> b;
  for (double base = 1; base <= 1e6; base *= 10) {
    b.push_back(base);
    b.push_back(base * 2);
    b.push_back(base * 5);
  }
  b.push_back(1e7);  // 10 s
  return b;
}

std::vector<double> MetricHistogram::SizeBuckets() {
  std::vector<double> b;
  for (double base = 1; base <= 1e9; base *= 10) {
    b.push_back(base);
  }
  return b;
}

MetricHistogram::Snapshot MetricHistogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  s.total_count = total_count_.load(std::memory_order_relaxed);
  s.sum = BitsToDouble(sum_bits_.load(std::memory_order_relaxed));
  s.max_value = BitsToDouble(max_bits_.load(std::memory_order_relaxed));
  return s;
}

double MetricHistogram::Snapshot::Percentile(double q) const {
  // Concurrent snapshots can see per-bucket counts whose sum differs slightly
  // from total_count; rank against the summed counts for internal consistency.
  uint64_t n = 0;
  for (uint64_t c : counts) n += c;
  if (n == 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  // 1-based rank of the target sample.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (cumulative + counts[i] >= rank) {
      if (i == bounds.size()) {
        // Overflow bucket: every sample here exceeded the last bound; the max
        // observation is the only honest summary.
        return max_value;
      }
      double lo = i == 0 ? 0 : bounds[i - 1];
      double hi = bounds[i];
      // Never report beyond the largest observed value (exact for the
      // single-sample and bucket-boundary cases where max is in this bucket).
      hi = std::min(hi, std::max(max_value, lo));
      // Linear interpolation by rank position inside the bucket.
      double frac = static_cast<double>(rank - cumulative) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * frac;
    }
    cumulative += counts[i];
  }
  return max_value;
}

// ---------------------------------------------------------------- registry

MetricsRegistry::Entry* MetricsRegistry::FindLocked(const std::string& name) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const std::pair<std::string, Entry>& e, const std::string& n) { return e.first < n; });
  if (it != entries_.end() && it->first == name) return &it->second;
  return nullptr;
}

MetricCounter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = FindLocked(name)) {
    RELOPT_DCHECK(e->kind == Kind::kCounter) << "metric " << name << " registered with another kind";
    return e->counter.get();
  }
  Entry e;
  e.kind = Kind::kCounter;
  e.counter = std::make_unique<MetricCounter>();
  MetricCounter* out = e.counter.get();
  entries_.emplace_back(name, std::move(e));
  std::sort(entries_.begin(), entries_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

MetricGauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = FindLocked(name)) {
    RELOPT_DCHECK(e->kind == Kind::kGauge) << "metric " << name << " registered with another kind";
    return e->gauge.get();
  }
  Entry e;
  e.kind = Kind::kGauge;
  e.gauge = std::make_unique<MetricGauge>();
  MetricGauge* out = e.gauge.get();
  entries_.emplace_back(name, std::move(e));
  std::sort(entries_.begin(), entries_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

MetricHistogram* MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = FindLocked(name)) {
    RELOPT_DCHECK(e->kind == Kind::kHistogram)
        << "metric " << name << " registered with another kind";
    return e->histogram.get();
  }
  Entry e;
  e.kind = Kind::kHistogram;
  e.histogram = std::make_unique<MetricHistogram>(std::move(bounds));
  MetricHistogram* out = e.histogram.get();
  entries_.emplace_back(name, std::move(e));
  std::sort(entries_.begin(), entries_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricSample s;
    s.name = name;
    switch (entry.kind) {
      case Kind::kCounter:
        s.kind = "counter";
        s.value = static_cast<double>(entry.counter->value());
        break;
      case Kind::kGauge:
        s.kind = "gauge";
        s.value = static_cast<double>(entry.gauge->value());
        break;
      case Kind::kHistogram: {
        s.kind = "histogram";
        MetricHistogram::Snapshot h = entry.histogram->snapshot();
        s.value = h.sum;
        s.count = h.total_count;
        s.p50 = h.Percentile(0.50);
        s.p95 = h.Percentile(0.95);
        s.p99 = h.Percentile(0.99);
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

namespace {
/// "relopt.pool.hits" -> "relopt_pool_hits" (Prometheus metric name charset).
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-' || c == ' ') c = '_';
  }
  return out;
}
}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    std::string prom = PromName(name);
    switch (entry.kind) {
      case Kind::kCounter:
        out += "# TYPE " + prom + " counter\n";
        out += prom + " " + std::to_string(entry.counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + prom + " gauge\n";
        out += prom + " " + std::to_string(entry.gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        MetricHistogram::Snapshot h = entry.histogram->snapshot();
        out += "# TYPE " + prom + " histogram\n";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds.size(); ++i) {
          cumulative += h.counts[i];
          out += prom + "_bucket{le=\"" + FormatDouble(h.bounds[i]) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        cumulative += h.counts[h.bounds.size()];
        out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
        out += prom + "_sum " + FormatDouble(h.sum) + "\n";
        out += prom + "_count " + std::to_string(h.total_count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::vector<MetricSample> samples = Snapshot();
  std::string out = "{";
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) out += ",";
    first = false;
    out += "\n  \"" + JsonEscape(s.name) + "\": {\"kind\": \"" + s.kind + "\", \"value\": " +
           FormatDouble(s.value);
    if (s.kind == "histogram") {
      out += ", \"count\": " + std::to_string(s.count) + ", \"p50\": " + FormatDouble(s.p50) +
             ", \"p95\": " + FormatDouble(s.p95) + ", \"p99\": " + FormatDouble(s.p99);
    }
    out += "}";
  }
  out += "\n}\n";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

const EngineMetrics& EngineMetrics::Get() {
  static const EngineMetrics metrics = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    EngineMetrics m;
    m.disk_page_reads = r.counter("relopt.disk.page_reads");
    m.disk_page_writes = r.counter("relopt.disk.page_writes");
    m.disk_pages_allocated = r.counter("relopt.disk.pages_allocated");
    m.pool_hits = r.counter("relopt.pool.hits");
    m.pool_misses = r.counter("relopt.pool.misses");
    m.pool_evictions = r.counter("relopt.pool.evictions");
    m.pool_dirty_writebacks = r.counter("relopt.pool.dirty_writebacks");
    m.pool_latch_waits = r.counter("relopt.pool.latch_waits");
    m.threadpool_tasks_queued = r.counter("relopt.threadpool.tasks_queued");
    m.threadpool_tasks_run = r.counter("relopt.threadpool.tasks_run");
    m.threadpool_busy_nanos = r.counter("relopt.threadpool.busy_nanos");
    m.threadpool_queue_depth = r.gauge("relopt.threadpool.queue_depth");
    m.optimizer_optimizations = r.counter("relopt.optimizer.optimizations");
    m.optimizer_joins_costed = r.counter("relopt.optimizer.joins_costed");
    m.optimizer_plans_kept = r.counter("relopt.optimizer.plans_kept");
    m.optimizer_plan_cache_hits = r.counter("relopt.optimizer.plan_cache.hits");
    m.optimizer_plan_cache_misses = r.counter("relopt.optimizer.plan_cache.misses");
    m.optimizer_plan_cache_evictions = r.counter("relopt.optimizer.plan_cache.evictions");
    m.optimizer_plan_cache_invalidations = r.counter("relopt.optimizer.plan_cache.invalidations");
    m.optimizer_feedback_records = r.counter("relopt.optimizer.feedback.records");
    m.optimizer_feedback_overrides = r.counter("relopt.optimizer.feedback.overrides");
    m.optimizer_feedback_invalidations = r.counter("relopt.optimizer.feedback.invalidations");
    m.join_enum_joins_costed = r.counter("relopt.optimizer.join_enum.joins_costed");
    m.join_enum_dp_entries = r.counter("relopt.optimizer.join_enum.dp_entries");
    m.join_enum_subsets_visited = r.counter("relopt.optimizer.join_enum.subsets_visited");
    m.join_enum_csg_cmp_pairs = r.counter("relopt.optimizer.join_enum.csg_cmp_pairs");
    m.join_enum_disconnected_skips =
        r.counter("relopt.optimizer.join_enum.disconnected_subsets_skipped");
    m.join_enum_budget_fallbacks = r.counter("relopt.optimizer.join_enum.budget_fallbacks");
    // Metric-name tokens for the JoinEnumAlgorithm values, in enum order
    // (JoinEnumAlgorithmToString uses '-', which Prometheus names reject).
    static const char* const kStrategyTokens[EngineMetrics::kJoinEnumStrategies] = {
        "dp_bushy", "dp_leftdeep", "greedy", "exhaustive",
        "random",   "worst",       "simpli2", "dpccp",
    };
    for (size_t i = 0; i < EngineMetrics::kJoinEnumStrategies; ++i) {
      m.join_enum_strategy[i] =
          r.counter(std::string("relopt.optimizer.join_enum.strategy.") + kStrategyTokens[i]);
    }
    m.engine_sessions_opened = r.counter("relopt.engine.sessions_opened");
    m.engine_statements_prepared = r.counter("relopt.engine.statements_prepared");
    m.engine_prepared_executions = r.counter("relopt.engine.prepared_executions");
    m.optimizer_optimize_us =
        r.histogram("relopt.optimizer.optimize_us", MetricHistogram::LatencyBucketsUs());
    m.exec_rows_produced = r.counter("relopt.exec.rows_produced");
    m.exec_batches_produced = r.counter("relopt.exec.batches_produced");
    m.exec_batch_fallback_rows = r.counter("relopt.exec.batch_fallback_rows");
    m.exec_statements_failed = r.counter("relopt.exec.statements_failed");
    m.engine_statement_us =
        r.histogram("relopt.engine.statement_us", MetricHistogram::LatencyBucketsUs());
    m.engine_statement_rows =
        r.histogram("relopt.engine.statement_rows", MetricHistogram::SizeBuckets());
    return m;
  }();
  return metrics;
}

}  // namespace relopt
