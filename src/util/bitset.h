// JoinSet: a small fixed-capacity bitset identifying a set of base relations.
#pragma once

#include <cstdint>
#include <string>

namespace relopt {

/// \brief Set of base-relation indices, used as the DP key in join
/// enumeration. Supports up to 64 relations, far above any practical
/// enumeration size.
class JoinSet {
 public:
  JoinSet() : bits_(0) {}
  explicit JoinSet(uint64_t bits) : bits_(bits) {}

  /// Singleton set {i}.
  static JoinSet Single(int i) { return JoinSet(uint64_t{1} << i); }
  /// Set {0, 1, ..., n-1}.
  static JoinSet AllUpTo(int n) {
    return JoinSet(n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1);
  }

  bool Contains(int i) const { return (bits_ >> i) & 1; }
  bool Empty() const { return bits_ == 0; }
  int Count() const { return __builtin_popcountll(bits_); }
  uint64_t bits() const { return bits_; }

  JoinSet Union(JoinSet other) const { return JoinSet(bits_ | other.bits_); }
  JoinSet Intersect(JoinSet other) const { return JoinSet(bits_ & other.bits_); }
  JoinSet Minus(JoinSet other) const { return JoinSet(bits_ & ~other.bits_); }
  bool Intersects(JoinSet other) const { return (bits_ & other.bits_) != 0; }
  bool IsSubsetOf(JoinSet other) const { return (bits_ & other.bits_) == bits_; }

  JoinSet With(int i) const { return JoinSet(bits_ | (uint64_t{1} << i)); }
  JoinSet Without(int i) const { return JoinSet(bits_ & ~(uint64_t{1} << i)); }

  /// Index of the lowest set bit; undefined on the empty set.
  int Lowest() const { return __builtin_ctzll(bits_); }

  /// Returns the set members as indices, ascending.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    uint64_t b = bits_;
    while (b) {
      int i = __builtin_ctzll(b);
      fn(i);
      b &= b - 1;
    }
  }

  bool operator==(const JoinSet& other) const { return bits_ == other.bits_; }
  bool operator!=(const JoinSet& other) const { return bits_ != other.bits_; }
  bool operator<(const JoinSet& other) const { return bits_ < other.bits_; }

  /// "{0,2,5}" for debugging.
  std::string ToString() const;

 private:
  uint64_t bits_;
};

/// Iterates all non-empty proper subsets of `set` (for bushy DP splits).
/// Standard submask enumeration: O(3^n) total across all sets.
class SubsetIterator {
 public:
  explicit SubsetIterator(JoinSet set) : set_(set.bits()), sub_(set.bits() & (set.bits() - 1)) {}

  /// False once exhausted. The full set itself is not produced.
  bool Valid() const { return sub_ != 0; }
  JoinSet Current() const { return JoinSet(sub_); }
  void Next() { sub_ = (sub_ - 1) & set_; }

 private:
  uint64_t set_;
  uint64_t sub_;
};

struct JoinSetHash {
  size_t operator()(const JoinSet& s) const {
    uint64_t x = s.bits();
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }
};

}  // namespace relopt
