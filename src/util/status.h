// Status: error propagation without exceptions, in the Arrow/RocksDB idiom.
#pragma once

#include <string>
#include <utility>

namespace relopt {

/// Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kInternal,
  kResourceExhausted,
  kParseError,
  kBindError,
  kTypeError,
};

/// Returns a stable human-readable name for a StatusCode (e.g. "NotFound").
const char* StatusCodeToString(StatusCode code);

/// \brief Result of an operation that can fail.
///
/// A Status is either OK (the common, cheap case: a single null pointer) or an
/// error carrying a code and a message. All fallible public APIs in relopt
/// return Status or Result<T>; exceptions are not used across module
/// boundaries.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : state_(nullptr) {}
  ~Status() { delete state_; }

  Status(const Status& other) : state_(other.state_ ? new State(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      delete state_;
      state_ = other.state_ ? new State(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&& other) noexcept : state_(other.state_) { other.state_ = nullptr; }
  Status& operator=(Status&& other) noexcept {
    if (this != &other) {
      delete state_;
      state_ = other.state_;
      other.state_ = nullptr;
    }
    return *this;
  }

  /// True iff the status is OK.
  bool ok() const { return state_ == nullptr; }
  /// The status code; kOk for an OK status.
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  /// The error message; empty for an OK status.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }
  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Factory helpers -------------------------------------------------------
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) { return Status(StatusCode::kBindError, std::move(msg)); }
  static Status TypeError(std::string msg) { return Status(StatusCode::kTypeError, std::move(msg)); }

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  Status(StatusCode code, std::string msg) : state_(new State{code, std::move(msg)}) {}

  struct State {
    StatusCode code;
    std::string message;
  };
  State* state_;  // nullptr means OK
};

/// Propagates a non-OK Status to the caller.
#define RELOPT_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::relopt::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace relopt
