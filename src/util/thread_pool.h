// ThreadPool: fixed-size worker pool for intra-query parallelism, plus a
// reusable Barrier for phase synchronization (e.g. hash-join build/probe).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace relopt {

/// \brief A fixed set of worker threads draining a FIFO task queue.
///
/// Tasks must not block waiting for *other tasks that have not started yet*:
/// the pool runs at most `num_threads` tasks concurrently, so a morsel-driven
/// pipeline submits exactly `num_threads` worker loops and coordinates them
/// with Barrier (every worker is running before any barrier is reached).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();  ///< Drains the queue, then joins all workers.

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues `task` for execution on some worker thread.
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// \brief Reusable barrier: ArriveAndWait blocks until `parties` threads have
/// arrived, then releases all of them and resets for the next round.
class Barrier {
 public:
  explicit Barrier(size_t parties) : parties_(parties) {}

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  void ArriveAndWait();

 private:
  const size_t parties_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t waiting_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace relopt
