// ThreadPool: fixed-size worker pool for intra-query parallelism, plus a
// reusable Barrier for phase synchronization (e.g. hash-join build/probe).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace relopt {

/// \brief A fixed set of worker threads draining a FIFO task queue.
///
/// Tasks must not block waiting for *other tasks that have not started yet*:
/// the pool runs at most `num_threads` tasks concurrently. A morsel-driven
/// pipeline's worker loops coordinate with Barrier, so they must all run
/// concurrently — submit them through SubmitGang, which admits the whole set
/// only once enough threads are uncommitted to run it. With concurrent
/// sessions, plain Submit would interleave two queries' barrier-coordinated
/// loops in the queue (A's worker blocked at a barrier while its sibling sits
/// queued behind B's equally blocked worker) and deadlock the pool.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();  ///< Drains the queue, then joins all workers.

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues `task` for execution on some worker thread. The task must
  /// terminate without waiting on any not-yet-started task.
  void Submit(std::function<void()> task);

  /// Enqueues a set of tasks that may block waiting on each other (e.g. via
  /// Barrier), guaranteeing they all run concurrently: blocks the caller
  /// until `tasks.size()` pool threads are not committed to another gang,
  /// reserves them, then enqueues the whole gang atomically. Admission is
  /// all-or-nothing, so two gangs never interleave. Requires tasks.size() <=
  /// num_threads(); must not be called from inside a gang task (a gang that
  /// waits for its own child gang can self-deadlock).
  void SubmitGang(std::vector<std::function<void()>> tasks);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  /// Threads not reserved for a gang currently admitted (running or queued).
  /// Plain Submit tasks don't reserve: they may delay a gang's start, but
  /// they terminate independently, so the gang still reaches concurrency.
  size_t uncommitted_threads_;
  std::condition_variable gang_cv_;
  bool stop_ = false;
};

/// \brief Reusable barrier: ArriveAndWait blocks until `parties` threads have
/// arrived, then releases all of them and resets for the next round.
class Barrier {
 public:
  explicit Barrier(size_t parties) : parties_(parties) {}

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  void ArriveAndWait();

 private:
  const size_t parties_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t waiting_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace relopt
