// Small string helpers shared across modules.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace relopt {

/// Lower-cases ASCII characters of `s`.
std::string ToLower(std::string_view s);
/// Upper-cases ASCII characters of `s`.
std::string ToUpper(std::string_view s);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// True if `s` starts with / ends with `prefix`/`suffix`.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable double: trims trailing zeros ("3.5", "2", "0.001").
std::string FormatDouble(double v);

/// Escapes a string for display inside single quotes (doubling quotes).
std::string EscapeSqlString(std::string_view s);

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(std::string_view s);

/// Repeats `s` `n` times.
std::string Repeat(std::string_view s, size_t n);

}  // namespace relopt
