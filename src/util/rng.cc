#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace relopt {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  s0_ = SplitMix64(&s);
  s1_ = SplitMix64(&s);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Rng::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % range);
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

std::string Rng::RandomString(size_t length) {
  std::string out(length, 'a');
  for (char& c : out) c = static_cast<char>('a' + (Next() % 26));
  return out;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  for (size_t i = n; i > 1; --i) {
    size_t j = static_cast<size_t>(Next() % i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double skew) : n_(n), skew_(skew) {
  assert(n >= 1);
  cdf_.resize(n);
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), skew);
    cdf_[i - 1] = sum;
  }
  for (double& v : cdf_) v /= sum;
  cdf_.back() = 1.0;
}

uint64_t ZipfGenerator::Next(Rng* rng) const {
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

}  // namespace relopt
