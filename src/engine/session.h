// Session: one client's connection to a shared Database.
//
// A Database owns the process-wide resources — disk, buffer pool, catalog,
// thread pool, query history, and the shared PlanCache — while each Session
// carries the per-client state: execution options (parallelism, vectorized
// mode, batch size, optimizer knobs), prepared statements, and the
// last-statement metrics/profile/trace that used to live on the Database.
//
// Concurrency model: a Session is single-threaded (one client), but any
// number of Sessions may execute against the same Database concurrently.
// Statements synchronize on the Database's statement lock: SELECT and
// EXPLAIN run under a shared lock (readers run concurrently), while DML,
// DDL, and ANALYZE take it exclusively (writers serialize, and never overlap
// a reader). Per-statement I/O metrics come from the execution's own
// per-operator attribution, not global counter deltas, so concurrent
// sessions never bleed into each other's numbers.
//
// Prepared statements: Session::Prepare parses once and retains the
// statement template; Execute(params) clones the template, replaces each
// positional `?` (ParameterExpr) with the supplied value, and runs the
// result through the normal statement path — so parameter type mismatches
// surface at bind time, and plan-cache keys incorporate the rendered
// parameter values.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"

namespace relopt {

class Session;

/// \brief A parsed, retained statement template with `?` placeholders.
/// Owned by the Session that prepared it; stable address for its lifetime.
class PreparedStatement {
 public:
  /// Executes with `params` bound positionally ($1 = params[0], ...).
  /// Errors if params.size() != num_parameters(). Each execution re-binds
  /// against the current catalog, so DDL between executions surfaces as a
  /// bind error (re-Prepare after changing the schema shape).
  Result<QueryResult> Execute(const std::vector<Value>& params = {});

  size_t num_parameters() const { return template_->num_parameters; }
  const std::string& sql() const { return sql_; }

 private:
  friend class Session;
  PreparedStatement(Session* session, std::string sql, StatementPtr template_stmt)
      : session_(session), sql_(std::move(sql)), template_(std::move(template_stmt)) {}

  Session* session_;
  std::string sql_;
  StatementPtr template_;
};

/// \brief One client's view of a Database. Create via Database::CreateSession.
class Session {
 public:
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t id() const { return id_; }
  Database* database() { return db_; }

  // --- SQL entry points ---------------------------------------------------

  /// Runs a script (semicolon-separated); see Database::Execute.
  Result<QueryResult> Execute(const std::string& sql);

  /// The optimized physical plan as text.
  Result<std::string> Explain(const std::string& select_sql);

  /// Parses `sql` (one statement) into a reusable prepared statement with
  /// positional `?` parameters. The returned pointer is owned by this
  /// Session and valid for the Session's lifetime.
  Result<PreparedStatement*> Prepare(const std::string& sql);

  // --- programmatic API ----------------------------------------------------

  Result<PhysicalPtr> PlanQuery(const std::string& select_sql, OptimizeInfo* info = nullptr);
  Result<LogicalPtr> BindQuery(const std::string& select_sql);
  Result<QueryResult> ExecutePlan(const PhysicalNode& plan);

  // --- per-session options & introspection ---------------------------------

  SessionOptions& options() { return options_; }

  const ExecutionMetrics& last_metrics() const { return metrics_; }
  const PlanProfile& last_profile() const { return profile_; }
  const PlanTrace* last_trace() const { return last_trace_.get(); }
  /// When on, every optimization records its decision log; also bypasses the
  /// plan cache (a cache hit runs no optimization to trace).
  void set_trace_optimizer(bool on) { trace_optimizer_ = on; }

  /// Intra-query parallelism for this session's statements. Grows the shared
  /// thread pool if needed (never shrinks it; other sessions may be using
  /// it). Do not call while this session has a statement in flight.
  void set_parallelism(size_t n);
  size_t parallelism() const { return options_.parallelism; }

  void set_vectorized(bool on) { options_.vectorized = on; }
  bool vectorized() const { return options_.vectorized; }
  void set_batch_size(size_t n) { options_.batch_size = n == 0 ? 1 : n; }
  size_t batch_size() const { return options_.batch_size; }
  /// Cardinality feedback for this session (consults and feeds the shared
  /// Database store; see SessionOptions::cardinality_feedback).
  void set_cardinality_feedback(bool on) { options_.cardinality_feedback = on; }
  bool cardinality_feedback() const { return options_.cardinality_feedback; }

 private:
  friend class Database;
  friend class PreparedStatement;

  Session(Database* db, uint64_t id, SessionOptions options)
      : db_(db), id_(id), options_(std::move(options)) {}

  /// Locks (shared for SELECT/EXPLAIN, exclusive otherwise), runs, and
  /// records one statement. `cache_suffix`, when set, is appended to the
  /// plan-cache key (prepared statements encode their parameter values).
  Result<QueryResult> ExecuteStatement(Statement* stmt, bool* produced_rows,
                                       const std::string* cache_suffix);
  /// Dispatch on statement kind. Caller holds the statement lock.
  Result<QueryResult> RunStatement(Statement* stmt, bool* produced_rows,
                                   const std::string* cache_suffix);
  Result<QueryResult> RunSelect(SelectStmt* stmt, const std::string* cache_suffix);
  Result<std::string> RunExplain(ExplainStmt* stmt);
  Status RunInsert(InsertStmt* stmt);
  Status RunDelete(DeleteStmt* stmt);
  Status RunUpdate(UpdateStmt* stmt);
  /// Shared optimize step: syncs buffer_pages, wires up tracing.
  Result<PhysicalPtr> OptimizeLogical(LogicalPtr logical, OptimizeInfo* info, bool want_trace);
  /// Executes a plan. Caller holds the statement lock (ExecutePlan's public
  /// overload takes it shared). Per-statement I/O metrics are summed from
  /// the profile's per-operator attribution.
  Result<QueryResult> ExecutePlanInternal(const PhysicalNode& plan);
  void RecordStatement(const Statement& stmt, const Status& status, uint64_t rows_returned,
                       uint64_t wall_nanos);

  Database* db_;
  const uint64_t id_;
  SessionOptions options_;
  ExecutionMetrics metrics_;
  uint64_t last_opt_nanos_ = 0;  ///< most recent OptimizeLogical duration
  PlanProfile profile_;
  std::unique_ptr<PlanTrace> last_trace_;
  bool trace_optimizer_ = false;
  std::vector<std::unique_ptr<PreparedStatement>> prepared_;
};

}  // namespace relopt
