#include "engine/plan_cache.h"

#include <cctype>

#include "util/metrics.h"
#include "util/str_util.h"

namespace relopt {

namespace {

/// Literal-preserving SQL normalization: collapses whitespace runs to one
/// space and lower-cases text OUTSIDE string literals, so formatting
/// variants of the same statement share a cache entry but distinct literal
/// values never do. (Contrast query_history's NormalizeSql, which replaces
/// literals with '?' for shape-grouping — unusable as a cache key.)
std::string NormalizeKeepingLiterals(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  size_t i = 0;
  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!out.empty() && out.back() != ' ') out += ' ';
      ++i;
      continue;
    }
    if (c == '\'') {
      // Copy the string literal verbatim, '' escapes included.
      out += c;
      ++i;
      while (i < sql.size()) {
        out += sql[i];
        if (sql[i] == '\'') {
          if (i + 1 < sql.size() && sql[i + 1] == '\'') {
            out += sql[++i];
            ++i;
            continue;
          }
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    ++i;
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

}  // namespace

std::string PlanCacheKey(const std::string& sql, const OptimizerOptions& options) {
  // Every option that can change which plan the optimizer picks goes into
  // the fingerprint; sessions with different knobs never share entries.
  const JoinEnumOptions& j = options.join;
  std::string fp = StringPrintf(
      "a%dio%dxp%dnlj%dbnlj%dinlj%dsmj%dh%dix%dmc%zu|db%llu|sm%d|w%g|bp%zu|n%d|v%d",
      static_cast<int>(j.algorithm), j.use_interesting_orders ? 1 : 0,
      j.avoid_cross_products ? 1 : 0, j.enable_nlj ? 1 : 0, j.enable_bnlj ? 1 : 0,
      j.enable_inlj ? 1 : 0, j.enable_smj ? 1 : 0, j.enable_hash ? 1 : 0,
      j.enable_index_scans ? 1 : 0, j.max_candidates_per_set,
      static_cast<unsigned long long>(j.dp_budget), static_cast<int>(options.stats_mode),
      options.cpu_weight, options.buffer_pages, options.naive ? 1 : 0,
      options.vectorized ? 1 : 0);
  // The feedback-store version participates so cached plans optimized against
  // stale observations miss and re-optimize (0 when feedback is off).
  fp += StringPrintf("|fb%llu", options.feedback != nullptr
                                    ? static_cast<unsigned long long>(options.feedback->version())
                                    : 0ULL);
  return fp + "|" + NormalizeKeepingLiterals(sql);
}

PlanCache::PlanCache(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void PlanCache::EraseLocked(std::list<Entry>::iterator it) {
  index_.erase(it->key);
  lru_.erase(it);
}

std::shared_ptr<const PhysicalNode> PlanCache::Lookup(const std::string& key,
                                                      uint64_t catalog_version) {
  const EngineMetrics& em = EngineMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled()) {
    ++stats_.misses;
    em.optimizer_plan_cache_misses->Add(1);
    return nullptr;
  }
  auto it = index_.find(key);
  if (it != index_.end() && it->second->catalog_version != catalog_version) {
    // Optimized under an older catalog: a schema or statistics change made
    // this plan untrustworthy.
    EraseLocked(it->second);
    ++stats_.invalidations;
    em.optimizer_plan_cache_invalidations->Add(1);
    it = index_.end();
  }
  if (it == index_.end()) {
    ++stats_.misses;
    em.optimizer_plan_cache_misses->Add(1);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++it->second->hits;
  ++stats_.hits;
  em.optimizer_plan_cache_hits->Add(1);
  return it->second->plan;
}

void PlanCache::Insert(const std::string& key, uint64_t catalog_version,
                       std::shared_ptr<const PhysicalNode> plan) {
  if (plan == nullptr) return;
  const EngineMetrics& em = EngineMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled()) return;
  auto it = index_.find(key);
  if (it != index_.end()) EraseLocked(it->second);
  while (lru_.size() >= capacity_) {
    EraseLocked(std::prev(lru_.end()));
    ++stats_.evictions;
    em.optimizer_plan_cache_evictions->Add(1);
  }
  lru_.push_front(Entry{key, catalog_version, 0, std::move(plan)});
  index_[key] = lru_.begin();
}

size_t PlanCache::InvalidateStale(uint64_t current_version) {
  const EngineMetrics& em = EngineMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->catalog_version != current_version) {
      auto victim = it++;
      EraseLocked(victim);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.invalidations += dropped;
  em.optimizer_plan_cache_invalidations->Add(dropped);
  return dropped;
}

void PlanCache::Clear() {
  const EngineMetrics& em = EngineMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  stats_.invalidations += lru_.size();
  em.optimizer_plan_cache_invalidations->Add(lru_.size());
  lru_.clear();
  index_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<PlanCache::EntryInfo> PlanCache::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EntryInfo> out;
  out.reserve(lru_.size());
  for (const Entry& e : lru_) {
    EntryInfo info;
    info.key = e.key;
    info.catalog_version = e.catalog_version;
    info.hits = e.hits;
    info.est_cost = e.plan->est_cost().Total();
    info.est_rows = e.plan->est_rows();
    info.plan_root = e.plan->Describe();
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace relopt
