#include "engine/query_history.h"

#include <cctype>

#include "util/logging.h"
#include "util/str_util.h"

namespace relopt {

std::string QueryRecord::ToJson() const {
  std::string out = "{";
  out += "\"event\": \"slow_query\"";
  out += ", \"id\": " + std::to_string(id);
  out += ", \"session\": " + std::to_string(session_id);
  out += ", \"verb\": \"" + JsonEscape(verb) + "\"";
  out += ", \"status\": \"" + JsonEscape(status) + "\"";
  if (!error.empty()) out += ", \"error\": \"" + JsonEscape(error) + "\"";
  out += ", \"sql\": \"" + JsonEscape(sql) + "\"";
  out += ", \"wall_us\": " + std::to_string(wall_micros);
  out += ", \"opt_us\": " + std::to_string(opt_micros);
  out += ", \"exec_us\": " + std::to_string(exec_micros);
  out += ", \"rows\": " + std::to_string(rows_returned);
  out += ", \"tuples\": " + std::to_string(tuples_processed);
  out += ", \"page_reads\": " + std::to_string(page_reads);
  out += ", \"page_writes\": " + std::to_string(page_writes);
  out += ", \"pool_hits\": " + std::to_string(pool_hits);
  out += ", \"pool_misses\": " + std::to_string(pool_misses);
  out += ", \"parallelism\": " + std::to_string(parallelism);
  out += ", \"batch_size\": " + std::to_string(batch_size);
  out += std::string(", \"vectorized\": ") + (vectorized ? "true" : "false");
  out += std::string(", \"plan_cache_hit\": ") + (plan_cache_hit ? "true" : "false");
  if (!operators.empty()) {
    out += ", \"operators\": [";
    for (size_t i = 0; i < operators.size(); ++i) {
      const OperatorRecord& op = operators[i];
      if (i > 0) out += ", ";
      out += "{\"op\": \"" + JsonEscape(op.op) + "\", \"est_rows\": " + FormatDouble(op.est_rows) +
             ", \"actual_rows\": " + std::to_string(op.actual_rows) +
             ", \"q_error\": " + FormatDouble(op.q_error) + "}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

QueryHistoryStore::QueryHistoryStore(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

uint64_t QueryHistoryStore::Append(QueryRecord record) {
  int64_t slow_us = slow_query_micros_.load();
  bool slow = slow_us >= 0 && record.wall_micros >= static_cast<uint64_t>(slow_us);
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    record.id = id;
    if (slow) {
      // Emit under the lock so concurrent appends produce ordered lines; the
      // log sink serializes emission anyway (logging.cc).
      RELOPT_LOG(kWarn) << record.ToJson();
    }
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(record));
    } else {
      // Full: overwrite the oldest slot and advance the head.
      ring_[head_] = std::move(record);
      head_ = (head_ + 1) % capacity_;
    }
  }
  return id;
}

std::vector<QueryRecord> QueryHistoryStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryRecord> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

size_t QueryHistoryStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t QueryHistoryStore::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_ - 1;
}

void QueryHistoryStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
}

std::string NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  size_t i = 0;
  auto last_out_nonspace = [&out]() -> char {
    return out.empty() ? '\0' : out.back();
  };
  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      // Collapse any whitespace run to one space (dropped again if leading
      // or trailing).
      if (!out.empty() && out.back() != ' ') out += ' ';
      ++i;
      continue;
    }
    if (c == '\'') {
      // String literal (with '' escapes) -> '?'.
      ++i;
      while (i < sql.size()) {
        if (sql[i] == '\'' && i + 1 < sql.size() && sql[i + 1] == '\'') {
          i += 2;
          continue;
        }
        if (sql[i] == '\'') {
          ++i;
          break;
        }
        ++i;
      }
      out += '?';
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) &&
        !std::isalnum(static_cast<unsigned char>(last_out_nonspace())) &&
        last_out_nonspace() != '_') {
      // Numeric literal (integer or decimal, possibly exponent) -> '?'.
      // A digit following an identifier character is part of a name ("emp2").
      ++i;
      while (i < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[i])) || sql[i] == '.' ||
              sql[i] == 'e' || sql[i] == 'E' ||
              ((sql[i] == '+' || sql[i] == '-') && (sql[i - 1] == 'e' || sql[i - 1] == 'E')))) {
        ++i;
      }
      out += '?';
      continue;
    }
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    ++i;
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

}  // namespace relopt
