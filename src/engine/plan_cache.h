// PlanCache: a thread-safe LRU cache of optimized physical plans, shared by
// every Session of one Database.
//
// A cache hit skips parsing, binding, and optimization entirely: the cached
// plan is a `shared_ptr<const PhysicalNode>` that concurrent executions share
// by reference. That is safe because executors treat plan trees as read-only
// (expressions are evaluated const; binding happens before a plan is ever
// cached), and in-flight executions keep their shared_ptr alive even if the
// entry is evicted or invalidated mid-query.
//
// Keys are produced by PlanCacheKey(): a literal-PRESERVING normalization of
// the statement text (query-history's NormalizeSql strips literals, which
// would alias `WHERE x = 1` and `WHERE x = 2` to one plan — wrong results)
// plus a fingerprint of the optimizer options that can change plan choice.
// Each entry also records the catalog version it was optimized under; DDL
// (CREATE/DROP TABLE, CREATE INDEX) and ANALYZE bump the version, so a stale
// entry can never serve a plan that predates a schema or statistics change.
// Lookup drops stale entries lazily; Database additionally calls
// InvalidateStale() after every DDL/ANALYZE so the snapshot (and the
// relopt_plan_cache() table function) reflects invalidation eagerly.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "optimizer/optimizer.h"
#include "plan/physical_plan.h"

namespace relopt {

/// Cache key for one (statement text, optimizer options) combination.
/// Literal-preserving: distinct literals produce distinct keys.
std::string PlanCacheKey(const std::string& sql, const OptimizerOptions& options);

/// \brief Thread-safe LRU plan cache. All methods may be called concurrently.
class PlanCache {
 public:
  static constexpr size_t kDefaultCapacity = 128;

  explicit PlanCache(size_t capacity = kDefaultCapacity);

  /// The cached plan for `key` if present and optimized under
  /// `catalog_version`, else nullptr. A version mismatch drops the stale
  /// entry (counted as an invalidation AND a miss). Hits move the entry to
  /// the LRU front. Counts into both local stats and the global
  /// relopt.optimizer.plan_cache.* metrics.
  std::shared_ptr<const PhysicalNode> Lookup(const std::string& key, uint64_t catalog_version);

  /// Caches `plan` under `key`, evicting the least-recently-used entry at
  /// capacity. Replaces an existing entry for the same key.
  void Insert(const std::string& key, uint64_t catalog_version,
              std::shared_ptr<const PhysicalNode> plan);

  /// Drops every entry whose catalog version != `current_version`.
  /// Called after DDL and ANALYZE; returns the number dropped.
  size_t InvalidateStale(uint64_t current_version);

  /// Drops everything (counted as invalidations).
  void Clear();

  /// Disabled caches miss every Lookup and drop every Insert (the workload
  /// harness A/Bs cache-on vs cache-off through this).
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  size_t size() const;
  size_t capacity() const { return capacity_; }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;      ///< LRU capacity evictions only
    uint64_t invalidations = 0;  ///< stale-version drops + Clear()
  };
  Stats stats() const;

  /// One row of the relopt_plan_cache() table function, most recent first.
  struct EntryInfo {
    std::string key;           ///< normalized SQL + options fingerprint
    uint64_t catalog_version = 0;
    uint64_t hits = 0;         ///< lookups served by this entry
    double est_cost = 0;       ///< plan's total estimated cost
    double est_rows = 0;
    std::string plan_root;     ///< root operator description
  };
  std::vector<EntryInfo> Snapshot() const;

 private:
  struct Entry {
    std::string key;
    uint64_t catalog_version = 0;
    uint64_t hits = 0;
    std::shared_ptr<const PhysicalNode> plan;
  };

  /// Removes `it` from the LRU + map. Caller holds mu_ and counts the drop.
  void EraseLocked(std::list<Entry>::iterator it);

  const size_t capacity_;
  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;  ///< guards lru_, index_, stats_
  std::list<Entry> lru_;   ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace relopt
