#include "engine/table_functions.h"

#include "engine/plan_cache.h"
#include "engine/query_history.h"
#include "optimizer/feedback.h"
#include "util/metrics.h"
#include "util/str_util.h"

namespace relopt {

namespace {

constexpr const char* kMetricsFn = "relopt_metrics";
constexpr const char* kQueryLogFn = "relopt_query_log";
constexpr const char* kOperatorStatsFn = "relopt_operator_stats";
constexpr const char* kPlanCacheFn = "relopt_plan_cache";
constexpr const char* kFeedbackFn = "relopt_feedback";

Schema MetricsSchema() {
  Schema s;
  s.AddColumn(Column("name", TypeId::kString));
  s.AddColumn(Column("kind", TypeId::kString));
  s.AddColumn(Column("value", TypeId::kDouble));
  s.AddColumn(Column("count", TypeId::kInt64));
  s.AddColumn(Column("p50", TypeId::kDouble));
  s.AddColumn(Column("p95", TypeId::kDouble));
  s.AddColumn(Column("p99", TypeId::kDouble));
  return s;
}

Schema QueryLogSchema() {
  Schema s;
  s.AddColumn(Column("id", TypeId::kInt64));
  s.AddColumn(Column("session_id", TypeId::kInt64));
  s.AddColumn(Column("verb", TypeId::kString));
  s.AddColumn(Column("status", TypeId::kString));
  s.AddColumn(Column("error", TypeId::kString));
  s.AddColumn(Column("sql", TypeId::kString));
  s.AddColumn(Column("wall_us", TypeId::kInt64));
  s.AddColumn(Column("opt_us", TypeId::kInt64));
  s.AddColumn(Column("exec_us", TypeId::kInt64));
  s.AddColumn(Column("rows", TypeId::kInt64));
  s.AddColumn(Column("tuples", TypeId::kInt64));
  s.AddColumn(Column("page_reads", TypeId::kInt64));
  s.AddColumn(Column("page_writes", TypeId::kInt64));
  s.AddColumn(Column("pool_hits", TypeId::kInt64));
  s.AddColumn(Column("pool_misses", TypeId::kInt64));
  s.AddColumn(Column("parallelism", TypeId::kInt64));
  s.AddColumn(Column("batch_size", TypeId::kInt64));
  s.AddColumn(Column("vectorized", TypeId::kBool));
  s.AddColumn(Column("plan_cache_hit", TypeId::kBool));
  return s;
}

Schema PlanCacheSchema() {
  Schema s;
  s.AddColumn(Column("key", TypeId::kString));
  s.AddColumn(Column("catalog_version", TypeId::kInt64));
  s.AddColumn(Column("hits", TypeId::kInt64));
  s.AddColumn(Column("est_cost", TypeId::kDouble));
  s.AddColumn(Column("est_rows", TypeId::kDouble));
  s.AddColumn(Column("plan_root", TypeId::kString));
  return s;
}

Schema FeedbackSchema() {
  Schema s;
  s.AddColumn(Column("kind", TypeId::kString));       // "scan" or "join"
  s.AddColumn(Column("tables", TypeId::kString));     // comma-joined table names
  s.AddColumn(Column("signature", TypeId::kString));
  s.AddColumn(Column("value", TypeId::kDouble));      // rows (scan) / selectivity (join)
  s.AddColumn(Column("updates", TypeId::kInt64));
  s.AddColumn(Column("hits", TypeId::kInt64));
  return s;
}

Schema OperatorStatsSchema() {
  Schema s;
  s.AddColumn(Column("query_id", TypeId::kInt64));
  s.AddColumn(Column("op", TypeId::kString));
  s.AddColumn(Column("detail", TypeId::kString));
  s.AddColumn(Column("est_rows", TypeId::kDouble));
  s.AddColumn(Column("actual_rows", TypeId::kInt64));
  s.AddColumn(Column("q_error", TypeId::kDouble));
  s.AddColumn(Column("page_reads", TypeId::kInt64));
  s.AddColumn(Column("page_writes", TypeId::kInt64));
  s.AddColumn(Column("wall_us", TypeId::kInt64));
  s.AddColumn(Column("batches", TypeId::kInt64));
  return s;
}

int64_t ToI64(uint64_t v) { return static_cast<int64_t>(v); }

std::vector<Tuple> MetricsRows(const MetricsRegistry& registry) {
  std::vector<Tuple> rows;
  for (const MetricSample& s : registry.Snapshot()) {
    rows.push_back(Tuple({Value::String(s.name), Value::String(s.kind), Value::Double(s.value),
                          Value::Int(ToI64(s.count)), Value::Double(s.p50), Value::Double(s.p95),
                          Value::Double(s.p99)}));
  }
  return rows;
}

std::vector<Tuple> QueryLogRows(const QueryHistoryStore* history) {
  std::vector<Tuple> rows;
  if (history == nullptr) return rows;
  for (const QueryRecord& r : history->Snapshot()) {
    rows.push_back(Tuple({Value::Int(ToI64(r.id)), Value::Int(ToI64(r.session_id)),
                          Value::String(r.verb), Value::String(r.status),
                          Value::String(r.error), Value::String(r.sql),
                          Value::Int(ToI64(r.wall_micros)), Value::Int(ToI64(r.opt_micros)),
                          Value::Int(ToI64(r.exec_micros)), Value::Int(ToI64(r.rows_returned)),
                          Value::Int(ToI64(r.tuples_processed)), Value::Int(ToI64(r.page_reads)),
                          Value::Int(ToI64(r.page_writes)), Value::Int(ToI64(r.pool_hits)),
                          Value::Int(ToI64(r.pool_misses)),
                          Value::Int(static_cast<int64_t>(r.parallelism)),
                          Value::Int(static_cast<int64_t>(r.batch_size)),
                          Value::Bool(r.vectorized), Value::Bool(r.plan_cache_hit)}));
  }
  return rows;
}

std::vector<Tuple> PlanCacheRows(const PlanCache* plan_cache) {
  std::vector<Tuple> rows;
  if (plan_cache == nullptr) return rows;
  for (const PlanCache::EntryInfo& e : plan_cache->Snapshot()) {
    rows.push_back(Tuple({Value::String(e.key), Value::Int(ToI64(e.catalog_version)),
                          Value::Int(ToI64(e.hits)), Value::Double(e.est_cost),
                          Value::Double(e.est_rows), Value::String(e.plan_root)}));
  }
  return rows;
}

std::vector<Tuple> FeedbackRows(const FeedbackStore* feedback) {
  std::vector<Tuple> rows;
  if (feedback == nullptr) return rows;
  for (const FeedbackStore::EntryInfo& e : feedback->Snapshot()) {
    rows.push_back(Tuple({Value::String(e.kind), Value::String(e.tables),
                          Value::String(e.signature), Value::Double(e.value),
                          Value::Int(ToI64(e.updates)), Value::Int(ToI64(e.hits))}));
  }
  return rows;
}

std::vector<Tuple> OperatorStatsRows(const QueryHistoryStore* history) {
  std::vector<Tuple> rows;
  if (history == nullptr) return rows;
  for (const QueryRecord& r : history->Snapshot()) {
    for (const OperatorRecord& op : r.operators) {
      rows.push_back(Tuple({Value::Int(ToI64(r.id)), Value::String(op.op),
                            Value::String(op.describe), Value::Double(op.est_rows),
                            Value::Int(ToI64(op.actual_rows)), Value::Double(op.q_error),
                            Value::Int(ToI64(op.page_reads)), Value::Int(ToI64(op.page_writes)),
                            Value::Int(ToI64(op.wall_nanos / 1000)),
                            Value::Int(ToI64(op.batches))}));
    }
  }
  return rows;
}

}  // namespace

bool IsTableFunction(const std::string& name) {
  std::string lower = ToLower(name);
  return lower == kMetricsFn || lower == kQueryLogFn || lower == kOperatorStatsFn ||
         lower == kPlanCacheFn || lower == kFeedbackFn;
}

Result<Schema> TableFunctionSchema(const std::string& name, const std::string& alias) {
  std::string lower = ToLower(name);
  Schema s;
  if (lower == kMetricsFn) {
    s = MetricsSchema();
  } else if (lower == kQueryLogFn) {
    s = QueryLogSchema();
  } else if (lower == kOperatorStatsFn) {
    s = OperatorStatsSchema();
  } else if (lower == kPlanCacheFn) {
    s = PlanCacheSchema();
  } else if (lower == kFeedbackFn) {
    s = FeedbackSchema();
  } else {
    return Status::NotFound("unknown table function '" + name + "'");
  }
  return s.WithQualifier(alias);
}

Result<std::vector<Tuple>> EvalTableFunction(const std::string& name,
                                             const MetricsRegistry* metrics,
                                             const QueryHistoryStore* history,
                                             const PlanCache* plan_cache,
                                             const FeedbackStore* feedback) {
  std::string lower = ToLower(name);
  if (lower == kMetricsFn) {
    if (metrics == nullptr) return Status::Internal("no metrics registry in execution context");
    return MetricsRows(*metrics);
  }
  if (lower == kQueryLogFn) return QueryLogRows(history);
  if (lower == kOperatorStatsFn) return OperatorStatsRows(history);
  if (lower == kPlanCacheFn) return PlanCacheRows(plan_cache);
  if (lower == kFeedbackFn) return FeedbackRows(feedback);
  return Status::NotFound("unknown table function '" + name + "'");
}

}  // namespace relopt
