#include "engine/database.h"

#include <algorithm>

#include "expr/fold.h"
#include "util/metrics.h"
#include "util/str_util.h"
#include "util/timer.h"

namespace relopt {

std::string QueryResult::ToString() const {
  // Column widths.
  std::vector<std::string> headers;
  for (size_t i = 0; i < schema.NumColumns(); ++i) {
    headers.push_back(schema.ColumnAt(i).QualifiedName());
  }
  std::vector<size_t> widths;
  for (const std::string& h : headers) widths.push_back(h.size());
  std::vector<std::vector<std::string>> cells;
  for (const Tuple& row : rows) {
    std::vector<std::string> line;
    for (size_t i = 0; i < row.NumValues(); ++i) {
      std::string s = row.At(i).ToString();
      if (i < widths.size()) widths[i] = std::max(widths[i], s.size());
      line.push_back(std::move(s));
    }
    cells.push_back(std::move(line));
  }
  std::string out;
  for (size_t i = 0; i < headers.size(); ++i) {
    if (i > 0) out += " | ";
    out += headers[i];
    out += std::string(widths[i] - headers[i].size(), ' ');
  }
  out += "\n";
  for (size_t i = 0; i < headers.size(); ++i) {
    if (i > 0) out += "-+-";
    out += std::string(widths[i], '-');
  }
  out += "\n";
  for (const std::vector<std::string>& line : cells) {
    for (size_t i = 0; i < line.size(); ++i) {
      if (i > 0) out += " | ";
      out += line[i];
      if (i < widths.size() && widths[i] > line[i].size()) {
        out += std::string(widths[i] - line[i].size(), ' ');
      }
    }
    out += "\n";
  }
  out += "(" + std::to_string(rows.size()) + " rows)\n";
  return out;
}

Database::Database(SessionOptions options)
    : options_(std::move(options)),
      disk_(std::make_unique<DiskManager>()),
      pool_(std::make_unique<BufferPool>(disk_.get(), options_.buffer_pool_pages)),
      catalog_(std::make_unique<Catalog>(pool_.get())) {
  options_.optimizer.buffer_pages = options_.buffer_pool_pages;
}

void Database::ResetCounters() {
  disk_->ResetStats();
  pool_->ResetStats();
}

void Database::set_parallelism(size_t n) {
  if (n <= 1) {
    parallelism_ = 1;
    thread_pool_.reset();
    return;
  }
  if (thread_pool_ == nullptr || thread_pool_->num_threads() != n) {
    thread_pool_ = std::make_unique<ThreadPool>(n);
  }
  parallelism_ = n;
}

Result<LogicalPtr> Database::BindQuery(const std::string& select_sql) {
  RELOPT_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(select_sql));
  if (stmt->kind != StatementKind::kSelect) {
    return Status::InvalidArgument("expected a SELECT statement");
  }
  Binder binder(catalog_.get());
  return binder.BindSelect(static_cast<SelectStmt*>(stmt.get()));
}

Result<PhysicalPtr> Database::OptimizeLogical(LogicalPtr logical, OptimizeInfo* info,
                                              bool want_trace) {
  const uint64_t start_nanos = MonotonicNanos();
  options_.optimizer.buffer_pages = pool_->capacity();
  if (trace_optimizer_ || want_trace) {
    last_trace_ = std::make_unique<PlanTrace>();
    info->trace = last_trace_.get();
  }
  Optimizer optimizer(catalog_.get(), options_.optimizer);
  Result<PhysicalPtr> plan = optimizer.Optimize(std::move(logical), info);
  last_opt_nanos_ = MonotonicNanos() - start_nanos;
  return plan;
}

Result<PhysicalPtr> Database::PlanQuery(const std::string& select_sql, OptimizeInfo* info) {
  RELOPT_ASSIGN_OR_RETURN(LogicalPtr logical, BindQuery(select_sql));
  OptimizeInfo local_info;
  if (info == nullptr) info = &local_info;
  return OptimizeLogical(std::move(logical), info, /*want_trace=*/false);
}

Result<QueryResult> Database::ExecutePlan(const PhysicalNode& plan) {
  metrics_ = ExecutionMetrics{};
  IoStats io_before = disk_->stats();
  BufferPoolStats pool_before = pool_->stats();
  const uint64_t exec_start_nanos = MonotonicNanos();

  ExecContext ctx(catalog_.get(), pool_.get(), thread_pool_.get(), parallelism_,
                  options_.vectorized ? options_.batch_size : 0);
  ctx.set_introspection(&MetricsRegistry::Global(), &history_);
  QueryResult result;
  result.schema = plan.schema();
  uint64_t batches = 0;
  ExecutorPtr root;  // must outlive Quiesce() and BuildPlanProfile below
  // Drive the plan to completion. Runs as a lambda so the error path falls
  // through to the same counter/profile capture as success: a statement that
  // fails mid-execution reports exactly the work it did, exactly once.
  auto drive = [&]() -> Status {
    RELOPT_ASSIGN_OR_RETURN(root, BuildExecutor(&ctx, &plan));
    RELOPT_RETURN_NOT_OK(root->Init());
    if (ctx.batch_size() > 0) {
      // Vectorized drive: pull batches through the root; a false return can
      // still carry the stream's final rows.
      TupleBatch batch(ctx.batch_size());
      while (true) {
        RELOPT_ASSIGN_OR_RETURN(bool has, root->NextBatch(&batch));
        ++batches;
        for (uint32_t i : batch.selection()) {
          result.rows.push_back(std::move(*batch.MutableRowAt(i)));
        }
        if (!has) break;
      }
    } else {
      Tuple t;
      while (true) {
        RELOPT_ASSIGN_OR_RETURN(bool has, root->Next(&t));
        if (!has) break;
        result.rows.push_back(std::move(t));
      }
    }
    return Status::OK();
  };
  Status status = drive();
  // Stop any still-running parallel workers (a LIMIT can abandon a Gather
  // mid-stream, and an error can leave them producing) before snapshotting
  // counters and per-operator stats.
  ctx.Quiesce();

  IoStats io_after = disk_->stats();
  BufferPoolStats pool_after = pool_->stats();
  metrics_.io.page_reads = io_after.page_reads - io_before.page_reads;
  metrics_.io.page_writes = io_after.page_writes - io_before.page_writes;
  metrics_.io.pages_allocated = io_after.pages_allocated - io_before.pages_allocated;
  metrics_.pool.hits = pool_after.hits - pool_before.hits;
  metrics_.pool.misses = pool_after.misses - pool_before.misses;
  metrics_.pool.evictions = pool_after.evictions - pool_before.evictions;
  metrics_.pool.dirty_writebacks = pool_after.dirty_writebacks - pool_before.dirty_writebacks;
  metrics_.tuples_processed = ctx.tuples_processed;
  metrics_.est_rows = plan.est_rows();
  metrics_.est_cost = plan.est_cost();
  metrics_.actual_rows = result.rows.size();
  metrics_.exec_nanos = MonotonicNanos() - exec_start_nanos;
  metrics_.executed_plan = true;
  profile_ = BuildPlanProfile(plan, ctx);

  const EngineMetrics& em = EngineMetrics::Get();
  em.exec_rows_produced->Add(result.rows.size());
  em.exec_batches_produced->Add(batches);

  RELOPT_RETURN_NOT_OK(status);
  return result;
}

Result<QueryResult> Database::RunSelect(SelectStmt* stmt) {
  Binder binder(catalog_.get());
  RELOPT_ASSIGN_OR_RETURN(LogicalPtr logical, binder.BindSelect(stmt));
  OptimizeInfo info;
  RELOPT_ASSIGN_OR_RETURN(PhysicalPtr plan,
                          OptimizeLogical(std::move(logical), &info, /*want_trace=*/false));
  RELOPT_ASSIGN_OR_RETURN(QueryResult result, ExecutePlan(*plan));
  metrics_.enum_stats = info.enum_stats;
  metrics_.order_from_plan = info.order_from_plan;
  metrics_.opt_nanos = last_opt_nanos_;
  return result;
}

Result<std::string> Database::RunExplain(ExplainStmt* stmt) {
  Binder binder(catalog_.get());
  RELOPT_ASSIGN_OR_RETURN(LogicalPtr logical,
                          binder.BindSelect(static_cast<SelectStmt*>(stmt->inner.get())));
  OptimizeInfo info;
  RELOPT_ASSIGN_OR_RETURN(PhysicalPtr plan, OptimizeLogical(std::move(logical), &info, stmt->trace));
  std::string out;
  if (stmt->analyze) {
    RELOPT_ASSIGN_OR_RETURN(QueryResult result, ExecutePlan(*plan));
    metrics_.opt_nanos = last_opt_nanos_;
    // The profile replaces the plain plan text: same tree, annotated with
    // actuals per operator.
    out = profile_.valid ? profile_.ToText() : plan->ToString();
    out += StringPrintf(
        "actual: rows=%zu page_reads=%llu page_writes=%llu pool_hits=%llu pool_misses=%llu "
        "tuples=%llu\n",
        result.rows.size(), static_cast<unsigned long long>(metrics_.io.page_reads),
        static_cast<unsigned long long>(metrics_.io.page_writes),
        static_cast<unsigned long long>(metrics_.pool.hits),
        static_cast<unsigned long long>(metrics_.pool.misses),
        static_cast<unsigned long long>(metrics_.tuples_processed));
  } else {
    out = plan->ToString();
  }
  if (stmt->trace && last_trace_ != nullptr) {
    out += "-- optimizer trace --\n";
    out += last_trace_->ToText();
  }
  return out;
}

Result<std::string> Database::Explain(const std::string& select_sql) {
  RELOPT_ASSIGN_OR_RETURN(PhysicalPtr plan, PlanQuery(select_sql));
  return plan->ToString();
}

Status Database::RunInsert(InsertStmt* stmt) {
  RELOPT_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(stmt->table_name));
  const Schema& schema = table->schema();

  // Map the statement's columns to schema positions.
  std::vector<size_t> positions;
  if (stmt->columns.empty()) {
    for (size_t i = 0; i < schema.NumColumns(); ++i) positions.push_back(i);
  } else {
    for (const std::string& name : stmt->columns) {
      RELOPT_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(name));
      positions.push_back(idx);
    }
  }

  for (std::vector<ExprPtr>& row : stmt->rows) {
    if (row.size() != positions.size()) {
      return Status::InvalidArgument("INSERT row has " + std::to_string(row.size()) +
                                     " values, expected " + std::to_string(positions.size()));
    }
    std::vector<Value> values(schema.NumColumns(), Value::Null());
    for (size_t i = 0; i < schema.NumColumns(); ++i) {
      values[i] = Value::Null(schema.ColumnAt(i).type);
    }
    for (size_t i = 0; i < row.size(); ++i) {
      ExprPtr folded = FoldConstants(std::move(row[i]));
      RELOPT_ASSIGN_OR_RETURN(Value v, folded->Eval(Tuple()));
      RELOPT_ASSIGN_OR_RETURN(Value cast, v.CastTo(schema.ColumnAt(positions[i]).type));
      values[positions[i]] = std::move(cast);
    }
    RELOPT_ASSIGN_OR_RETURN(Rid rid, catalog_->InsertTuple(table, Tuple(std::move(values))));
    (void)rid;
  }
  return Status::OK();
}

Status Database::RunDelete(DeleteStmt* stmt) {
  RELOPT_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(stmt->table_name));
  ExprPtr pred;
  if (stmt->where) {
    pred = FoldConstants(std::move(stmt->where));
    RELOPT_RETURN_NOT_OK(pred->Bind(table->schema().WithQualifier(table->name())));
  }
  // Collect matching RIDs first, then delete (no iterator invalidation).
  std::vector<Rid> to_delete;
  HeapFile::Iterator it(table->heap());
  Rid rid;
  std::string bytes;
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(bool has, it.Next(&rid, &bytes));
    if (!has) break;
    RELOPT_ASSIGN_OR_RETURN(Tuple tuple, Tuple::Deserialize(bytes, table->schema().NumColumns()));
    bool matches = true;
    if (pred) {
      RELOPT_ASSIGN_OR_RETURN(Value v, pred->Eval(tuple));
      matches = !v.is_null() && v.AsBool();
    }
    if (matches) to_delete.push_back(rid);
  }
  for (Rid r : to_delete) {
    RELOPT_RETURN_NOT_OK(catalog_->DeleteTuple(table, r));
  }
  return Status::OK();
}

Status Database::RunUpdate(UpdateStmt* stmt) {
  RELOPT_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(stmt->table_name));
  const Schema qualified = table->schema().WithQualifier(table->name());

  // Resolve assignment targets and bind value expressions (they may read the
  // row's old values).
  std::vector<std::pair<size_t, ExprPtr>> assignments;
  for (auto& [col_name, value_expr] : stmt->assignments) {
    RELOPT_ASSIGN_OR_RETURN(size_t idx, table->schema().IndexOf(col_name));
    ExprPtr expr = FoldConstants(std::move(value_expr));
    RELOPT_RETURN_NOT_OK(expr->Bind(qualified));
    assignments.emplace_back(idx, std::move(expr));
  }
  ExprPtr pred;
  if (stmt->where) {
    pred = FoldConstants(std::move(stmt->where));
    RELOPT_RETURN_NOT_OK(pred->Bind(qualified));
  }

  // Collect the new images first (no iterator invalidation, and the scan
  // never sees its own updates).
  std::vector<std::pair<Rid, Tuple>> updates;
  HeapFile::Iterator it(table->heap());
  Rid rid;
  std::string bytes;
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(bool has, it.Next(&rid, &bytes));
    if (!has) break;
    RELOPT_ASSIGN_OR_RETURN(Tuple tuple, Tuple::Deserialize(bytes, table->schema().NumColumns()));
    if (pred) {
      RELOPT_ASSIGN_OR_RETURN(Value v, pred->Eval(tuple));
      if (v.is_null() || !v.AsBool()) continue;
    }
    Tuple updated = tuple;
    for (const auto& [idx, expr] : assignments) {
      RELOPT_ASSIGN_OR_RETURN(Value v, expr->Eval(tuple));
      RELOPT_ASSIGN_OR_RETURN(Value cast, v.CastTo(table->schema().ColumnAt(idx).type));
      updated.MutableAt(idx) = std::move(cast);
    }
    updates.emplace_back(rid, std::move(updated));
  }
  // Apply as delete + insert so every index stays consistent.
  for (auto& [old_rid, new_tuple] : updates) {
    RELOPT_RETURN_NOT_OK(catalog_->DeleteTuple(table, old_rid));
    RELOPT_ASSIGN_OR_RETURN(Rid new_rid, catalog_->InsertTuple(table, new_tuple));
    (void)new_rid;
  }
  return Status::OK();
}

Result<QueryResult> Database::RunStatement(Statement* stmt, bool* produced_rows) {
  *produced_rows = false;
  // Each statement reports only its own deltas. SELECT/EXPLAIN re-zero and
  // capture inside ExecutePlan; DML/DDL capture here via `capture`.
  metrics_ = ExecutionMetrics{};
  last_opt_nanos_ = 0;  // only SELECT/EXPLAIN set it; others must not inherit
  IoStats io_before = disk_->stats();
  BufferPoolStats pool_before = pool_->stats();
  auto capture = [&]() {
    IoStats io_after = disk_->stats();
    BufferPoolStats pool_after = pool_->stats();
    metrics_.io.page_reads = io_after.page_reads - io_before.page_reads;
    metrics_.io.page_writes = io_after.page_writes - io_before.page_writes;
    metrics_.io.pages_allocated = io_after.pages_allocated - io_before.pages_allocated;
    metrics_.pool.hits = pool_after.hits - pool_before.hits;
    metrics_.pool.misses = pool_after.misses - pool_before.misses;
    metrics_.pool.evictions = pool_after.evictions - pool_before.evictions;
    metrics_.pool.dirty_writebacks = pool_after.dirty_writebacks - pool_before.dirty_writebacks;
  };
  // DML/DDL run through `finish` so counters are captured exactly once on
  // both the success and the error path (a failed UPDATE still reports the
  // pages it scanned, and never leaks them into the next statement).
  auto finish = [&](Status s) -> Result<QueryResult> {
    capture();
    RELOPT_RETURN_NOT_OK(s);
    return QueryResult{};
  };
  switch (stmt->kind) {
    case StatementKind::kCreateTable: {
      auto* create = static_cast<CreateTableStmt*>(stmt);
      Schema schema;
      for (const ColumnDef& def : create->columns) {
        schema.AddColumn(Column(def.name, def.type, create->table_name));
      }
      return finish(catalog_->CreateTable(create->table_name, std::move(schema)).status());
    }
    case StatementKind::kCreateIndex: {
      auto* create = static_cast<CreateIndexStmt*>(stmt);
      return finish(catalog_->CreateIndex(create->index_name, create->table_name,
                                          create->columns, create->clustered)
                        .status());
    }
    case StatementKind::kInsert:
      return finish(RunInsert(static_cast<InsertStmt*>(stmt)));
    case StatementKind::kAnalyze: {
      auto* analyze = static_cast<AnalyzeStmt*>(stmt);
      auto run = [&]() -> Status {
        if (!analyze->table_name.empty()) {
          return catalog_->AnalyzeTable(analyze->table_name, options_.analyze_buckets);
        }
        for (const std::string& name : catalog_->TableNames()) {
          RELOPT_RETURN_NOT_OK(catalog_->AnalyzeTable(name, options_.analyze_buckets));
        }
        return Status::OK();
      };
      return finish(run());
    }
    case StatementKind::kDelete:
      return finish(RunDelete(static_cast<DeleteStmt*>(stmt)));
    case StatementKind::kUpdate:
      return finish(RunUpdate(static_cast<UpdateStmt*>(stmt)));
    case StatementKind::kSelect: {
      *produced_rows = true;
      return RunSelect(static_cast<SelectStmt*>(stmt));
    }
    case StatementKind::kExplain: {
      *produced_rows = true;
      RELOPT_ASSIGN_OR_RETURN(std::string text, RunExplain(static_cast<ExplainStmt*>(stmt)));
      QueryResult result;
      result.schema.AddColumn(Column("plan", TypeId::kString));
      for (const std::string& line : Split(text, '\n')) {
        if (line.empty()) continue;
        result.rows.push_back(Tuple({Value::String(line)}));
      }
      return result;
    }
  }
  return Status::Internal("unknown statement kind");
}

namespace {

const char* StatementVerb(StatementKind kind) {
  switch (kind) {
    case StatementKind::kCreateTable: return "create_table";
    case StatementKind::kCreateIndex: return "create_index";
    case StatementKind::kInsert: return "insert";
    case StatementKind::kSelect: return "select";
    case StatementKind::kExplain: return "explain";
    case StatementKind::kAnalyze: return "analyze";
    case StatementKind::kDelete: return "delete";
    case StatementKind::kUpdate: return "update";
  }
  return "unknown";
}

void FlattenOperators(const OperatorProfile& node, std::vector<OperatorRecord>* out) {
  OperatorRecord rec;
  rec.op = node.op;
  rec.describe = node.describe;
  rec.est_rows = node.est_rows;
  rec.actual_rows = node.stats.rows_produced;
  rec.q_error = node.q_error();
  rec.page_reads = node.stats.page_reads;
  rec.page_writes = node.stats.page_writes;
  rec.wall_nanos = node.stats.wall_nanos;
  rec.batches = node.stats.batches_produced;
  out->push_back(std::move(rec));
  for (const OperatorProfile& child : node.children) FlattenOperators(child, out);
}

}  // namespace

void Database::RecordStatement(const Statement& stmt, const Status& status,
                               uint64_t rows_returned, uint64_t wall_nanos) {
  const char* verb = StatementVerb(stmt.kind);
  const EngineMetrics& em = EngineMetrics::Get();
  em.engine_statement_us->Observe(static_cast<double>(wall_nanos) / 1000.0);
  MetricsRegistry::Global().counter(std::string("relopt.engine.statements.") + verb)->Add(1);
  if (status.ok()) {
    em.engine_statement_rows->Observe(static_cast<double>(rows_returned));
  } else {
    em.exec_statements_failed->Add(1);
    MetricsRegistry::Global()
        .counter("relopt.engine.errors." + ToLower(StatusCodeToString(status.code())))
        ->Add(1);
  }

  QueryRecord rec;
  rec.verb = verb;
  rec.status = status.ok() ? "OK" : StatusCodeToString(status.code());
  rec.error = status.ok() ? "" : status.message();
  rec.sql = NormalizeSql(stmt.text);
  rec.wall_micros = wall_nanos / 1000;
  rec.opt_micros = last_opt_nanos_ / 1000;
  rec.exec_micros = metrics_.exec_nanos / 1000;
  rec.rows_returned = rows_returned;
  rec.tuples_processed = metrics_.tuples_processed;
  rec.page_reads = metrics_.io.page_reads;
  rec.page_writes = metrics_.io.page_writes;
  rec.pool_hits = metrics_.pool.hits;
  rec.pool_misses = metrics_.pool.misses;
  rec.parallelism = parallelism_;
  rec.batch_size = options_.vectorized ? options_.batch_size : 0;
  rec.vectorized = options_.vectorized;
  if (metrics_.executed_plan && profile_.valid) {
    FlattenOperators(profile_.root, &rec.operators);
  }
  history_.Append(std::move(rec));
}

Result<QueryResult> Database::Execute(const std::string& sql) {
  RELOPT_ASSIGN_OR_RETURN(std::vector<StatementPtr> stmts, ParseScript(sql));
  QueryResult last;
  for (StatementPtr& stmt : stmts) {
    bool produced = false;
    const uint64_t start_nanos = MonotonicNanos();
    Result<QueryResult> result = RunStatement(stmt.get(), &produced);
    const uint64_t wall_nanos = MonotonicNanos() - start_nanos;
    RecordStatement(*stmt, result.status(), result.ok() ? result->rows.size() : 0, wall_nanos);
    RELOPT_RETURN_NOT_OK(result.status());
    if (produced) last = result.MoveValue();
  }
  return last;
}

}  // namespace relopt
