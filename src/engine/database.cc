#include "engine/database.h"

#include <algorithm>

#include "engine/session.h"
#include "util/metrics.h"

namespace relopt {

std::string QueryResult::ToString() const {
  // Column widths.
  std::vector<std::string> headers;
  for (size_t i = 0; i < schema.NumColumns(); ++i) {
    headers.push_back(schema.ColumnAt(i).QualifiedName());
  }
  std::vector<size_t> widths;
  for (const std::string& h : headers) widths.push_back(h.size());
  std::vector<std::vector<std::string>> cells;
  for (const Tuple& row : rows) {
    std::vector<std::string> line;
    for (size_t i = 0; i < row.NumValues(); ++i) {
      std::string s = row.At(i).ToString();
      if (i < widths.size()) widths[i] = std::max(widths[i], s.size());
      line.push_back(std::move(s));
    }
    cells.push_back(std::move(line));
  }
  std::string out;
  for (size_t i = 0; i < headers.size(); ++i) {
    if (i > 0) out += " | ";
    out += headers[i];
    out += std::string(widths[i] - headers[i].size(), ' ');
  }
  out += "\n";
  for (size_t i = 0; i < headers.size(); ++i) {
    if (i > 0) out += "-+-";
    out += std::string(widths[i], '-');
  }
  out += "\n";
  for (const std::vector<std::string>& line : cells) {
    for (size_t i = 0; i < line.size(); ++i) {
      if (i > 0) out += " | ";
      out += line[i];
      if (i < widths.size() && widths[i] > line[i].size()) {
        out += std::string(widths[i] - line[i].size(), ' ');
      }
    }
    out += "\n";
  }
  out += "(" + std::to_string(rows.size()) + " rows)\n";
  return out;
}

Database::Database(SessionOptions options)
    : disk_(std::make_unique<DiskManager>()),
      pool_(std::make_unique<BufferPool>(disk_.get(), options.buffer_pool_pages)),
      catalog_(std::make_unique<Catalog>(pool_.get())),
      default_options_(std::move(options)) {
  default_options_.optimizer.buffer_pages = default_options_.buffer_pool_pages;
  default_session_ = CreateSession(default_options_);
}

Database::~Database() = default;

Session* Database::CreateSession() { return CreateSession(default_options_); }

Session* Database::CreateSession(SessionOptions options) {
  options.optimizer.buffer_pages = pool_->capacity();
  if (options.parallelism > 1) EnsureThreadPool(options.parallelism);
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.push_back(
      std::unique_ptr<Session>(new Session(this, next_session_id_++, std::move(options))));
  EngineMetrics::Get().engine_sessions_opened->Add(1);
  return sessions_.back().get();
}

void Database::EnsureThreadPool(size_t n) {
  if (n <= 1) return;
  // Exclusive statement lock: no executor may hold a pointer to the old pool
  // while it is replaced. Growing is rare (session setup); the pool never
  // shrinks because other sessions may still be sized for it.
  std::unique_lock<std::shared_mutex> lock(statement_mu_);
  if (thread_pool_ == nullptr || thread_pool_->num_threads() < n) {
    thread_pool_ = std::make_unique<ThreadPool>(n);
  }
}

void Database::ResetCounters() {
  disk_->ResetStats();
  pool_->ResetStats();
}

// --- default-session delegation ---------------------------------------------

Result<QueryResult> Database::Execute(const std::string& sql) {
  return default_session_->Execute(sql);
}

Result<std::string> Database::Explain(const std::string& select_sql) {
  return default_session_->Explain(select_sql);
}

Result<PhysicalPtr> Database::PlanQuery(const std::string& select_sql, OptimizeInfo* info) {
  return default_session_->PlanQuery(select_sql, info);
}

Result<LogicalPtr> Database::BindQuery(const std::string& select_sql) {
  return default_session_->BindQuery(select_sql);
}

Result<QueryResult> Database::ExecutePlan(const PhysicalNode& plan) {
  return default_session_->ExecutePlan(plan);
}

SessionOptions& Database::options() { return default_session_->options(); }

const ExecutionMetrics& Database::last_metrics() const { return default_session_->last_metrics(); }

const PlanProfile& Database::last_profile() const { return default_session_->last_profile(); }

void Database::set_trace_optimizer(bool on) { default_session_->set_trace_optimizer(on); }

const PlanTrace* Database::last_trace() const { return default_session_->last_trace(); }

void Database::set_parallelism(size_t n) { default_session_->set_parallelism(n); }

size_t Database::parallelism() const { return default_session_->parallelism(); }

void Database::set_vectorized(bool on) { default_session_->set_vectorized(on); }

bool Database::vectorized() const { return default_session_->vectorized(); }

void Database::set_cardinality_feedback(bool on) {
  default_session_->set_cardinality_feedback(on);
}

bool Database::cardinality_feedback() const {
  return default_session_->cardinality_feedback();
}

void Database::set_batch_size(size_t n) { default_session_->set_batch_size(n); }

size_t Database::batch_size() const { return default_session_->batch_size(); }

}  // namespace relopt
