// QueryHistoryStore: a bounded ring buffer of per-statement execution records.
//
// Every statement Database::Execute runs — including failing ones — appends
// one QueryRecord: the normalized SQL, timing split (wall / optimize /
// execute), result and I/O counters, the execution-mode settings it ran
// under, and (for statements that drove an executor tree) the per-operator
// estimated-vs-actual cardinalities + Q-error lifted from the PlanProfile.
// The retained Q-error records are the substrate for the cardinality
// feedback loop (ROADMAP item 2); the relopt_query_log() and
// relopt_operator_stats() table functions expose the store through SQL.
//
// Statements whose wall time reaches the configurable slow-query threshold
// additionally emit a structured one-line JSON record through the logging
// sink (util/logging.h), so an operator tailing the log sees them live.
//
// Thread-safe: appends and snapshots are mutex-guarded (the store is shared
// by future concurrent sessions; the differential tests exercise concurrent
// appends).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace relopt {

/// One operator's retained estimate-vs-actual record.
struct OperatorRecord {
  std::string op;        ///< physical operator kind name, e.g. "HashJoin"
  std::string describe;  ///< PhysicalNode::Describe() text
  double est_rows = 0;
  uint64_t actual_rows = 0;
  double q_error = 1;    ///< max(est/actual, actual/est), clamped >= 1
  uint64_t page_reads = 0;   ///< self-attributed
  uint64_t page_writes = 0;  ///< self-attributed
  uint64_t wall_nanos = 0;   ///< inclusive
  uint64_t batches = 0;
};

/// One statement's retained execution record.
struct QueryRecord {
  uint64_t id = 0;           ///< monotonically increasing, never reused
  uint64_t session_id = 0;   ///< the Session that ran the statement
  std::string verb;          ///< "select", "insert", "explain", ...
  std::string status;        ///< "OK" or the StatusCode name
  std::string error;         ///< error message (empty on success)
  std::string sql;           ///< normalized statement text
  uint64_t wall_micros = 0;  ///< whole statement (parse excluded; see Database)
  uint64_t opt_micros = 0;   ///< bind + optimize time (SELECT/EXPLAIN only)
  uint64_t exec_micros = 0;  ///< executor drive time (plan executions only)
  uint64_t rows_returned = 0;
  uint64_t tuples_processed = 0;
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  size_t parallelism = 1;
  size_t batch_size = 0;  ///< 0 = row-at-a-time
  bool vectorized = false;
  bool plan_cache_hit = false;  ///< SELECT served from the shared plan cache
  std::vector<OperatorRecord> operators;  ///< empty when no plan was executed

  /// The slow-query log line: a one-line JSON object.
  std::string ToJson() const;
};

/// \brief Bounded ring buffer of the most recent `capacity` QueryRecords.
class QueryHistoryStore {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit QueryHistoryStore(size_t capacity = kDefaultCapacity);

  /// Assigns the record's id and retains it, evicting the oldest record when
  /// full. Emits the slow-query JSON log line when the record's wall time
  /// reaches the threshold. Thread-safe. Returns the assigned id.
  uint64_t Append(QueryRecord record);

  /// The retained records, oldest first. Thread-safe.
  std::vector<QueryRecord> Snapshot() const;

  /// Statements with wall time >= this emit a WARN-level JSON log line;
  /// negative disables (the default). Thread-safe.
  void set_slow_query_micros(int64_t micros) { slow_query_micros_.store(micros); }
  int64_t slow_query_micros() const { return slow_query_micros_.load(); }

  size_t capacity() const { return capacity_; }
  /// Number of records currently retained (<= capacity). Thread-safe.
  size_t size() const;
  /// Total records ever appended (ids run 1..total). Thread-safe.
  uint64_t total_appended() const;

  /// Drops all retained records (ids keep increasing). Thread-safe.
  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;  ///< guards ring_, head_, next_id_
  std::vector<QueryRecord> ring_;
  size_t head_ = 0;  ///< index of the oldest record once the ring is full
  uint64_t next_id_ = 1;
  std::atomic<int64_t> slow_query_micros_{-1};
};

/// \brief Normalizes SQL for retention/grouping: collapses whitespace,
/// lower-cases text outside quoted strings, and replaces numeric and string
/// literals with '?' so records group by query shape and retain no data
/// values ("SELECT * FROM emp WHERE id = 7" -> "select * from emp where
/// id = ?").
std::string NormalizeSql(const std::string& sql);

}  // namespace relopt
