// Introspection table functions: the engine observing itself through SQL.
//
//   SELECT * FROM relopt_metrics()         -- global MetricsRegistry snapshot
//   SELECT * FROM relopt_query_log()       -- retained QueryHistoryStore rows
//   SELECT * FROM relopt_operator_stats()  -- per-operator est-vs-actual rows
//   SELECT * FROM relopt_plan_cache()      -- shared plan-cache entries
//   SELECT * FROM relopt_feedback()        -- cardinality-feedback entries
//
// A table function is a leaf scan over snapshot data: the binder resolves
// the name to a fixed schema, the optimizer lowers it to a
// PhysTableFunctionScan, and the executor materializes the snapshot at
// Init() — so one statement sees one consistent snapshot, and a statement
// never sees itself in the query log (records append after completion).
// Table functions cannot be joined with other FROM items (they are
// snapshot-sized leaves, not stored relations); filters, projections,
// aggregates, ORDER BY, and LIMIT above them all work.
#pragma once

#include <string>
#include <vector>

#include "types/schema.h"
#include "types/tuple.h"
#include "util/result.h"

namespace relopt {

class FeedbackStore;
class MetricsRegistry;
class PlanCache;
class QueryHistoryStore;

/// True if `name` (case-insensitive) is a known introspection table function.
bool IsTableFunction(const std::string& name);

/// The function's output schema, qualified with `alias` (so `m.name` works
/// under FROM relopt_metrics() AS m). NotFound for unknown names.
Result<Schema> TableFunctionSchema(const std::string& name, const std::string& alias);

/// Materializes the function's rows from the current snapshots. `metrics`
/// must be non-null for relopt_metrics(); `history`, `plan_cache`, and
/// `feedback` may be null (their functions then return no rows).
Result<std::vector<Tuple>> EvalTableFunction(const std::string& name,
                                             const MetricsRegistry* metrics,
                                             const QueryHistoryStore* history,
                                             const PlanCache* plan_cache,
                                             const FeedbackStore* feedback);

}  // namespace relopt
