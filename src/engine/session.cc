#include "engine/session.h"

#include <shared_mutex>

#include "expr/fold.h"
#include "util/metrics.h"
#include "util/str_util.h"
#include "util/timer.h"

namespace relopt {

namespace {

const char* StatementVerb(StatementKind kind) {
  switch (kind) {
    case StatementKind::kCreateTable: return "create_table";
    case StatementKind::kCreateIndex: return "create_index";
    case StatementKind::kDropTable: return "drop_table";
    case StatementKind::kInsert: return "insert";
    case StatementKind::kSelect: return "select";
    case StatementKind::kExplain: return "explain";
    case StatementKind::kAnalyze: return "analyze";
    case StatementKind::kDelete: return "delete";
    case StatementKind::kUpdate: return "update";
  }
  return "unknown";
}

bool IsReadStatement(StatementKind kind) {
  return kind == StatementKind::kSelect || kind == StatementKind::kExplain;
}

bool InvalidatesPlans(StatementKind kind) {
  // Schema changes and new statistics both retire cached plans.
  return kind == StatementKind::kCreateTable || kind == StatementKind::kCreateIndex ||
         kind == StatementKind::kDropTable || kind == StatementKind::kAnalyze;
}

void FlattenOperators(const OperatorProfile& node, std::vector<OperatorRecord>* out) {
  OperatorRecord rec;
  rec.op = node.op;
  rec.describe = node.describe;
  rec.est_rows = node.est_rows;
  rec.actual_rows = node.stats.rows_produced;
  rec.q_error = node.q_error();
  rec.page_reads = node.stats.page_reads;
  rec.page_writes = node.stats.page_writes;
  rec.wall_nanos = node.stats.wall_nanos;
  rec.batches = node.stats.batches_produced;
  out->push_back(std::move(rec));
  for (const OperatorProfile& child : node.children) FlattenOperators(child, out);
}

// --- statement cloning (prepared statements re-execute from a template) -----
//
// Execution is destructive (RunInsert folds VALUES expressions in place;
// binding mutates expression trees), so every prepared execution runs
// against a deep copy of the parsed template.

ExprPtr CloneExpr(const ExprPtr& e) { return e == nullptr ? nullptr : e->Clone(); }

StatementPtr CloneStatement(const Statement& stmt);

std::unique_ptr<SelectStmt> CloneSelect(const SelectStmt& s) {
  auto out = std::make_unique<SelectStmt>();
  out->distinct = s.distinct;
  for (const SelectItem& item : s.items) {
    SelectItem copy;
    copy.expr = CloneExpr(item.expr);
    copy.alias = item.alias;
    copy.is_star = item.is_star;
    out->items.push_back(std::move(copy));
  }
  out->from = s.from;
  out->where = CloneExpr(s.where);
  for (const ExprPtr& g : s.group_by) out->group_by.push_back(CloneExpr(g));
  out->having = CloneExpr(s.having);
  for (const OrderByItem& o : s.order_by) {
    OrderByItem copy;
    copy.expr = CloneExpr(o.expr);
    copy.desc = o.desc;
    out->order_by.push_back(std::move(copy));
  }
  out->limit = s.limit;
  return out;
}

StatementPtr CloneStatement(const Statement& stmt) {
  StatementPtr out;
  switch (stmt.kind) {
    case StatementKind::kCreateTable:
      out = std::make_unique<CreateTableStmt>(static_cast<const CreateTableStmt&>(stmt));
      break;
    case StatementKind::kCreateIndex:
      out = std::make_unique<CreateIndexStmt>(static_cast<const CreateIndexStmt&>(stmt));
      break;
    case StatementKind::kDropTable:
      out = std::make_unique<DropTableStmt>(static_cast<const DropTableStmt&>(stmt));
      break;
    case StatementKind::kAnalyze:
      out = std::make_unique<AnalyzeStmt>(static_cast<const AnalyzeStmt&>(stmt));
      break;
    case StatementKind::kInsert: {
      const auto& s = static_cast<const InsertStmt&>(stmt);
      auto copy = std::make_unique<InsertStmt>();
      copy->table_name = s.table_name;
      copy->columns = s.columns;
      for (const std::vector<ExprPtr>& row : s.rows) {
        std::vector<ExprPtr> row_copy;
        for (const ExprPtr& e : row) row_copy.push_back(CloneExpr(e));
        copy->rows.push_back(std::move(row_copy));
      }
      out = std::move(copy);
      break;
    }
    case StatementKind::kSelect:
      out = CloneSelect(static_cast<const SelectStmt&>(stmt));
      break;
    case StatementKind::kExplain: {
      const auto& s = static_cast<const ExplainStmt&>(stmt);
      auto copy = std::make_unique<ExplainStmt>();
      copy->inner = CloneStatement(*s.inner);
      copy->analyze = s.analyze;
      copy->trace = s.trace;
      out = std::move(copy);
      break;
    }
    case StatementKind::kDelete: {
      const auto& s = static_cast<const DeleteStmt&>(stmt);
      auto copy = std::make_unique<DeleteStmt>();
      copy->table_name = s.table_name;
      copy->where = CloneExpr(s.where);
      out = std::move(copy);
      break;
    }
    case StatementKind::kUpdate: {
      const auto& s = static_cast<const UpdateStmt&>(stmt);
      auto copy = std::make_unique<UpdateStmt>();
      copy->table_name = s.table_name;
      for (const auto& [name, expr] : s.assignments) {
        copy->assignments.emplace_back(name, CloneExpr(expr));
      }
      copy->where = CloneExpr(s.where);
      out = std::move(copy);
      break;
    }
  }
  out->text = stmt.text;
  out->num_parameters = stmt.num_parameters;
  return out;
}

/// Appends the owning slots of every ParameterExpr in the statement.
void CollectStatementParameterSlots(Statement* stmt, std::vector<ExprPtr*>* out) {
  switch (stmt->kind) {
    case StatementKind::kSelect: {
      auto* s = static_cast<SelectStmt*>(stmt);
      for (SelectItem& item : s->items) CollectParameterSlots(&item.expr, out);
      CollectParameterSlots(&s->where, out);
      for (ExprPtr& g : s->group_by) CollectParameterSlots(&g, out);
      CollectParameterSlots(&s->having, out);
      for (OrderByItem& o : s->order_by) CollectParameterSlots(&o.expr, out);
      break;
    }
    case StatementKind::kInsert: {
      auto* s = static_cast<InsertStmt*>(stmt);
      for (std::vector<ExprPtr>& row : s->rows) {
        for (ExprPtr& e : row) CollectParameterSlots(&e, out);
      }
      break;
    }
    case StatementKind::kDelete:
      CollectParameterSlots(&static_cast<DeleteStmt*>(stmt)->where, out);
      break;
    case StatementKind::kUpdate: {
      auto* s = static_cast<UpdateStmt*>(stmt);
      for (auto& [name, expr] : s->assignments) CollectParameterSlots(&expr, out);
      CollectParameterSlots(&s->where, out);
      break;
    }
    case StatementKind::kExplain:
      CollectStatementParameterSlots(static_cast<ExplainStmt*>(stmt)->inner.get(), out);
      break;
    default:
      break;  // DDL/ANALYZE carry no expressions
  }
}

}  // namespace

// --- PreparedStatement ------------------------------------------------------

Result<QueryResult> PreparedStatement::Execute(const std::vector<Value>& params) {
  if (params.size() != num_parameters()) {
    return Status::InvalidArgument("prepared statement takes " +
                                   std::to_string(num_parameters()) + " parameter(s), got " +
                                   std::to_string(params.size()));
  }
  EngineMetrics::Get().engine_prepared_executions->Add(1);
  StatementPtr stmt = CloneStatement(*template_);
  std::vector<ExprPtr*> slots;
  CollectStatementParameterSlots(stmt.get(), &slots);
  for (ExprPtr* slot : slots) {
    auto* param = static_cast<ParameterExpr*>(slot->get());
    if (param->ordinal() >= params.size()) {
      return Status::Internal("parameter ordinal out of range");
    }
    *slot = std::make_unique<LiteralExpr>(params[param->ordinal()]);
  }
  // Plan-cache entries are per parameter binding: the template text alone
  // would alias different literals to one (wrong) plan.
  std::string suffix;
  if (!params.empty()) {
    suffix = "|args:";
    for (const Value& v : params) {
      suffix += std::to_string(static_cast<int>(v.type())) + ":" + v.ToString() + ";";
    }
  }
  bool produced = false;
  return session_->ExecuteStatement(stmt.get(), &produced, suffix.empty() ? nullptr : &suffix);
}

// --- Session ----------------------------------------------------------------

Result<QueryResult> Session::Execute(const std::string& sql) {
  RELOPT_ASSIGN_OR_RETURN(std::vector<StatementPtr> stmts, ParseScript(sql));
  QueryResult last;
  for (StatementPtr& stmt : stmts) {
    bool produced = false;
    RELOPT_ASSIGN_OR_RETURN(QueryResult result, ExecuteStatement(stmt.get(), &produced, nullptr));
    if (produced) last = std::move(result);
  }
  return last;
}

Result<std::string> Session::Explain(const std::string& select_sql) {
  RELOPT_ASSIGN_OR_RETURN(PhysicalPtr plan, PlanQuery(select_sql));
  return plan->ToString();
}

Result<PreparedStatement*> Session::Prepare(const std::string& sql) {
  RELOPT_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  EngineMetrics::Get().engine_statements_prepared->Add(1);
  prepared_.push_back(
      std::unique_ptr<PreparedStatement>(new PreparedStatement(this, sql, std::move(stmt))));
  return prepared_.back().get();
}

Result<LogicalPtr> Session::BindQuery(const std::string& select_sql) {
  RELOPT_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(select_sql));
  if (stmt->kind != StatementKind::kSelect) {
    return Status::InvalidArgument("expected a SELECT statement");
  }
  std::shared_lock<std::shared_mutex> lock(db_->statement_mu_);
  Binder binder(db_->catalog_.get());
  return binder.BindSelect(static_cast<SelectStmt*>(stmt.get()));
}

Result<PhysicalPtr> Session::PlanQuery(const std::string& select_sql, OptimizeInfo* info) {
  RELOPT_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(select_sql));
  if (stmt->kind != StatementKind::kSelect) {
    return Status::InvalidArgument("expected a SELECT statement");
  }
  std::shared_lock<std::shared_mutex> lock(db_->statement_mu_);
  Binder binder(db_->catalog_.get());
  RELOPT_ASSIGN_OR_RETURN(LogicalPtr logical,
                          binder.BindSelect(static_cast<SelectStmt*>(stmt.get())));
  OptimizeInfo local_info;
  if (info == nullptr) info = &local_info;
  return OptimizeLogical(std::move(logical), info, /*want_trace=*/false);
}

Result<QueryResult> Session::ExecutePlan(const PhysicalNode& plan) {
  std::shared_lock<std::shared_mutex> lock(db_->statement_mu_);
  return ExecutePlanInternal(plan);
}

void Session::set_parallelism(size_t n) {
  options_.parallelism = n <= 1 ? 1 : n;
  db_->EnsureThreadPool(options_.parallelism);
}

Result<PhysicalPtr> Session::OptimizeLogical(LogicalPtr logical, OptimizeInfo* info,
                                             bool want_trace) {
  const uint64_t start_nanos = MonotonicNanos();
  options_.optimizer.buffer_pages = db_->pool_->capacity();
  options_.optimizer.vectorized = options_.vectorized;
  options_.optimizer.feedback = options_.cardinality_feedback ? &db_->feedback_ : nullptr;
  if (trace_optimizer_ || want_trace) {
    last_trace_ = std::make_unique<PlanTrace>();
    info->trace = last_trace_.get();
  }
  Optimizer optimizer(db_->catalog_.get(), options_.optimizer);
  Result<PhysicalPtr> plan = optimizer.Optimize(std::move(logical), info);
  last_opt_nanos_ = MonotonicNanos() - start_nanos;
  return plan;
}

Result<QueryResult> Session::ExecutePlanInternal(const PhysicalNode& plan) {
  metrics_ = ExecutionMetrics{};
  const uint64_t exec_start_nanos = MonotonicNanos();

  ThreadPool* pool = options_.parallelism > 1 ? db_->thread_pool_.get() : nullptr;
  ExecContext ctx(db_->catalog_.get(), db_->pool_.get(), pool, options_.parallelism,
                  options_.vectorized ? options_.batch_size : 0);
  ctx.set_introspection(&MetricsRegistry::Global(), &db_->history_, &db_->plan_cache_,
                        &db_->feedback_);
  QueryResult result;
  result.schema = plan.schema();
  uint64_t batches = 0;
  ExecutorPtr root;  // must outlive Quiesce() and BuildPlanProfile below
  // Drive the plan to completion. Runs as a lambda so the error path falls
  // through to the same counter/profile capture as success: a statement that
  // fails mid-execution reports exactly the work it did, exactly once.
  auto drive = [&]() -> Status {
    RELOPT_ASSIGN_OR_RETURN(root, BuildExecutor(&ctx, &plan));
    RELOPT_RETURN_NOT_OK(root->Init());
    if (ctx.batch_size() > 0) {
      // Vectorized drive: pull batches through the root; a false return can
      // still carry the stream's final rows.
      TupleBatch batch(ctx.batch_size());
      while (true) {
        RELOPT_ASSIGN_OR_RETURN(bool has, root->NextBatch(&batch));
        ++batches;
        for (uint32_t i : batch.selection()) {
          result.rows.push_back(std::move(*batch.MutableRowAt(i)));
        }
        if (!has) break;
      }
    } else {
      Tuple t;
      while (true) {
        RELOPT_ASSIGN_OR_RETURN(bool has, root->Next(&t));
        if (!has) break;
        result.rows.push_back(std::move(t));
      }
    }
    return Status::OK();
  };
  Status status = drive();
  // Stop any still-running parallel workers (a LIMIT can abandon a Gather
  // mid-stream, and an error can leave them producing) before snapshotting
  // per-operator stats.
  ctx.Quiesce();

  profile_ = BuildPlanProfile(plan, ctx);
  // Per-statement I/O from this execution's own operator attribution: global
  // counter deltas would absorb whatever other sessions did concurrently.
  // (Pool evictions/writebacks and page allocations are engine-global with
  // no per-operator attribution, so they stay zero here.)
  metrics_.io.page_reads = profile_.TotalPageReads();
  metrics_.io.page_writes = profile_.TotalPageWrites();
  metrics_.pool.hits = profile_.TotalPoolHits();
  metrics_.pool.misses = profile_.TotalPoolMisses();
  metrics_.tuples_processed = ctx.tuples_processed;
  metrics_.est_rows = plan.est_rows();
  metrics_.est_cost = plan.est_cost();
  metrics_.actual_rows = result.rows.size();
  metrics_.exec_nanos = MonotonicNanos() - exec_start_nanos;
  metrics_.executed_plan = true;

  const EngineMetrics& em = EngineMetrics::Get();
  em.exec_rows_produced->Add(result.rows.size());
  em.exec_batches_produced->Add(batches);

  // Close the loop: per-operator actuals flow back into the shared store so
  // the NEXT optimization of matching signatures uses measurements. Only
  // complete executions feed back (an error mid-stream means partial counts).
  if (options_.cardinality_feedback && status.ok() && profile_.valid) {
    HarvestFeedback(plan, profile_, &db_->feedback_);
  }

  RELOPT_RETURN_NOT_OK(status);
  return result;
}

Result<QueryResult> Session::RunSelect(SelectStmt* stmt, const std::string* cache_suffix) {
  PlanCache& cache = db_->plan_cache_;
  options_.optimizer.buffer_pages = db_->pool_->capacity();
  options_.optimizer.vectorized = options_.vectorized;
  options_.optimizer.feedback = options_.cardinality_feedback ? &db_->feedback_ : nullptr;
  const uint64_t catalog_version = db_->catalog_->version();
  // The key embeds the feedback version: a harvested observation that
  // materially changed the store makes every affected SELECT miss and
  // re-optimize against the corrected cardinalities.
  std::string key = PlanCacheKey(stmt->text, options_.optimizer);
  if (cache_suffix != nullptr) key += *cache_suffix;

  // Tracing needs an actual optimization to record; bypass the cache then.
  std::shared_ptr<const PhysicalNode> plan =
      trace_optimizer_ ? nullptr : cache.Lookup(key, catalog_version);
  const bool cache_hit = plan != nullptr;
  OptimizeInfo info;
  if (plan == nullptr) {
    Binder binder(db_->catalog_.get());
    RELOPT_ASSIGN_OR_RETURN(LogicalPtr logical, binder.BindSelect(stmt));
    RELOPT_ASSIGN_OR_RETURN(PhysicalPtr optimized,
                            OptimizeLogical(std::move(logical), &info, /*want_trace=*/false));
    plan = std::shared_ptr<const PhysicalNode>(std::move(optimized));
    if (!trace_optimizer_) cache.Insert(key, catalog_version, plan);
  } else {
    last_opt_nanos_ = 0;  // the whole point of a hit: no bind, no optimize
  }
  RELOPT_ASSIGN_OR_RETURN(QueryResult result, ExecutePlanInternal(*plan));
  metrics_.enum_stats = info.enum_stats;
  metrics_.order_from_plan = info.order_from_plan;
  metrics_.opt_nanos = last_opt_nanos_;
  metrics_.plan_cache_hit = cache_hit;
  return result;
}

Result<std::string> Session::RunExplain(ExplainStmt* stmt) {
  Binder binder(db_->catalog_.get());
  RELOPT_ASSIGN_OR_RETURN(LogicalPtr logical,
                          binder.BindSelect(static_cast<SelectStmt*>(stmt->inner.get())));
  OptimizeInfo info;
  RELOPT_ASSIGN_OR_RETURN(PhysicalPtr plan, OptimizeLogical(std::move(logical), &info, stmt->trace));
  std::string out;
  if (stmt->analyze) {
    RELOPT_ASSIGN_OR_RETURN(QueryResult result, ExecutePlanInternal(*plan));
    metrics_.opt_nanos = last_opt_nanos_;
    // The profile replaces the plain plan text: same tree, annotated with
    // actuals per operator.
    out = profile_.valid ? profile_.ToText() : plan->ToString();
    out += StringPrintf(
        "actual: rows=%zu page_reads=%llu page_writes=%llu pool_hits=%llu pool_misses=%llu "
        "tuples=%llu\n",
        result.rows.size(), static_cast<unsigned long long>(metrics_.io.page_reads),
        static_cast<unsigned long long>(metrics_.io.page_writes),
        static_cast<unsigned long long>(metrics_.pool.hits),
        static_cast<unsigned long long>(metrics_.pool.misses),
        static_cast<unsigned long long>(metrics_.tuples_processed));
  } else {
    out = plan->ToString();
  }
  if (stmt->trace && last_trace_ != nullptr) {
    out += "-- optimizer trace --\n";
    out += last_trace_->ToText();
  }
  return out;
}

Status Session::RunInsert(InsertStmt* stmt) {
  Catalog* catalog = db_->catalog_.get();
  RELOPT_ASSIGN_OR_RETURN(TableInfo * table, catalog->GetTable(stmt->table_name));
  const Schema& schema = table->schema();

  // Map the statement's columns to schema positions.
  std::vector<size_t> positions;
  if (stmt->columns.empty()) {
    for (size_t i = 0; i < schema.NumColumns(); ++i) positions.push_back(i);
  } else {
    for (const std::string& name : stmt->columns) {
      RELOPT_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(name));
      positions.push_back(idx);
    }
  }

  for (std::vector<ExprPtr>& row : stmt->rows) {
    if (row.size() != positions.size()) {
      return Status::InvalidArgument("INSERT row has " + std::to_string(row.size()) +
                                     " values, expected " + std::to_string(positions.size()));
    }
    std::vector<Value> values(schema.NumColumns(), Value::Null());
    for (size_t i = 0; i < schema.NumColumns(); ++i) {
      values[i] = Value::Null(schema.ColumnAt(i).type);
    }
    for (size_t i = 0; i < row.size(); ++i) {
      ExprPtr folded = FoldConstants(std::move(row[i]));
      RELOPT_ASSIGN_OR_RETURN(Value v, folded->Eval(Tuple()));
      RELOPT_ASSIGN_OR_RETURN(Value cast, v.CastTo(schema.ColumnAt(positions[i]).type));
      values[positions[i]] = std::move(cast);
    }
    RELOPT_ASSIGN_OR_RETURN(Rid rid, catalog->InsertTuple(table, Tuple(std::move(values))));
    (void)rid;
  }
  return Status::OK();
}

Status Session::RunDelete(DeleteStmt* stmt) {
  Catalog* catalog = db_->catalog_.get();
  RELOPT_ASSIGN_OR_RETURN(TableInfo * table, catalog->GetTable(stmt->table_name));
  ExprPtr pred;
  if (stmt->where) {
    pred = FoldConstants(std::move(stmt->where));
    RELOPT_RETURN_NOT_OK(pred->Bind(table->schema().WithQualifier(table->name())));
  }
  // Collect matching RIDs first, then delete (no iterator invalidation).
  std::vector<Rid> to_delete;
  HeapFile::Iterator it(table->heap());
  Rid rid;
  std::string bytes;
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(bool has, it.Next(&rid, &bytes));
    if (!has) break;
    RELOPT_ASSIGN_OR_RETURN(Tuple tuple, Tuple::Deserialize(bytes, table->schema().NumColumns()));
    bool matches = true;
    if (pred) {
      RELOPT_ASSIGN_OR_RETURN(Value v, pred->Eval(tuple));
      matches = !v.is_null() && v.AsBool();
    }
    if (matches) to_delete.push_back(rid);
  }
  for (Rid r : to_delete) {
    RELOPT_RETURN_NOT_OK(catalog->DeleteTuple(table, r));
  }
  return Status::OK();
}

Status Session::RunUpdate(UpdateStmt* stmt) {
  Catalog* catalog = db_->catalog_.get();
  RELOPT_ASSIGN_OR_RETURN(TableInfo * table, catalog->GetTable(stmt->table_name));
  const Schema qualified = table->schema().WithQualifier(table->name());

  // Resolve assignment targets and bind value expressions (they may read the
  // row's old values).
  std::vector<std::pair<size_t, ExprPtr>> assignments;
  for (auto& [col_name, value_expr] : stmt->assignments) {
    RELOPT_ASSIGN_OR_RETURN(size_t idx, table->schema().IndexOf(col_name));
    ExprPtr expr = FoldConstants(std::move(value_expr));
    RELOPT_RETURN_NOT_OK(expr->Bind(qualified));
    assignments.emplace_back(idx, std::move(expr));
  }
  ExprPtr pred;
  if (stmt->where) {
    pred = FoldConstants(std::move(stmt->where));
    RELOPT_RETURN_NOT_OK(pred->Bind(qualified));
  }

  // Collect the new images first (no iterator invalidation, and the scan
  // never sees its own updates).
  std::vector<std::pair<Rid, Tuple>> updates;
  HeapFile::Iterator it(table->heap());
  Rid rid;
  std::string bytes;
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(bool has, it.Next(&rid, &bytes));
    if (!has) break;
    RELOPT_ASSIGN_OR_RETURN(Tuple tuple, Tuple::Deserialize(bytes, table->schema().NumColumns()));
    if (pred) {
      RELOPT_ASSIGN_OR_RETURN(Value v, pred->Eval(tuple));
      if (v.is_null() || !v.AsBool()) continue;
    }
    Tuple updated = tuple;
    for (const auto& [idx, expr] : assignments) {
      RELOPT_ASSIGN_OR_RETURN(Value v, expr->Eval(tuple));
      RELOPT_ASSIGN_OR_RETURN(Value cast, v.CastTo(table->schema().ColumnAt(idx).type));
      updated.MutableAt(idx) = std::move(cast);
    }
    updates.emplace_back(rid, std::move(updated));
  }
  // Apply as delete + insert so every index stays consistent.
  for (auto& [old_rid, new_tuple] : updates) {
    RELOPT_RETURN_NOT_OK(catalog->DeleteTuple(table, old_rid));
    RELOPT_ASSIGN_OR_RETURN(Rid new_rid, catalog->InsertTuple(table, new_tuple));
    (void)new_rid;
  }
  return Status::OK();
}

Result<QueryResult> Session::RunStatement(Statement* stmt, bool* produced_rows,
                                          const std::string* cache_suffix) {
  *produced_rows = false;
  // Each statement reports only its own deltas. SELECT/EXPLAIN re-zero and
  // capture inside ExecutePlanInternal from per-operator attribution;
  // DML/DDL run under the exclusive statement lock, so the global-delta
  // capture below sees only this statement's work.
  metrics_ = ExecutionMetrics{};
  last_opt_nanos_ = 0;  // only SELECT/EXPLAIN set it; others must not inherit
  Catalog* catalog = db_->catalog_.get();
  IoStats io_before = db_->disk_->stats();
  BufferPoolStats pool_before = db_->pool_->stats();
  auto capture = [&]() {
    IoStats io_after = db_->disk_->stats();
    BufferPoolStats pool_after = db_->pool_->stats();
    metrics_.io.page_reads = io_after.page_reads - io_before.page_reads;
    metrics_.io.page_writes = io_after.page_writes - io_before.page_writes;
    metrics_.io.pages_allocated = io_after.pages_allocated - io_before.pages_allocated;
    metrics_.pool.hits = pool_after.hits - pool_before.hits;
    metrics_.pool.misses = pool_after.misses - pool_before.misses;
    metrics_.pool.evictions = pool_after.evictions - pool_before.evictions;
    metrics_.pool.dirty_writebacks = pool_after.dirty_writebacks - pool_before.dirty_writebacks;
  };
  // DML/DDL run through `finish` so counters are captured exactly once on
  // both the success and the error path (a failed UPDATE still reports the
  // pages it scanned, and never leaks them into the next statement).
  auto finish = [&](Status s) -> Result<QueryResult> {
    capture();
    RELOPT_RETURN_NOT_OK(s);
    return QueryResult{};
  };
  switch (stmt->kind) {
    case StatementKind::kCreateTable: {
      auto* create = static_cast<CreateTableStmt*>(stmt);
      Schema schema;
      for (const ColumnDef& def : create->columns) {
        schema.AddColumn(Column(def.name, def.type, create->table_name));
      }
      return finish(catalog->CreateTable(create->table_name, std::move(schema)).status());
    }
    case StatementKind::kCreateIndex: {
      auto* create = static_cast<CreateIndexStmt*>(stmt);
      return finish(catalog->CreateIndex(create->index_name, create->table_name, create->columns,
                                         create->clustered)
                        .status());
    }
    case StatementKind::kDropTable: {
      auto* drop = static_cast<DropTableStmt*>(stmt);
      if (drop->if_exists && !catalog->HasTable(drop->table_name)) {
        return finish(Status::OK());
      }
      return finish(catalog->DropTable(drop->table_name));
    }
    case StatementKind::kInsert:
      return finish(RunInsert(static_cast<InsertStmt*>(stmt)));
    case StatementKind::kAnalyze: {
      auto* analyze = static_cast<AnalyzeStmt*>(stmt);
      auto run = [&]() -> Status {
        if (!analyze->table_name.empty()) {
          return catalog->AnalyzeTable(analyze->table_name, options_.analyze_buckets);
        }
        for (const std::string& name : catalog->TableNames()) {
          RELOPT_RETURN_NOT_OK(catalog->AnalyzeTable(name, options_.analyze_buckets));
        }
        return Status::OK();
      };
      return finish(run());
    }
    case StatementKind::kDelete:
      return finish(RunDelete(static_cast<DeleteStmt*>(stmt)));
    case StatementKind::kUpdate:
      return finish(RunUpdate(static_cast<UpdateStmt*>(stmt)));
    case StatementKind::kSelect: {
      *produced_rows = true;
      return RunSelect(static_cast<SelectStmt*>(stmt), cache_suffix);
    }
    case StatementKind::kExplain: {
      *produced_rows = true;
      RELOPT_ASSIGN_OR_RETURN(std::string text, RunExplain(static_cast<ExplainStmt*>(stmt)));
      QueryResult result;
      result.schema.AddColumn(Column("plan", TypeId::kString));
      for (const std::string& line : Split(text, '\n')) {
        if (line.empty()) continue;
        result.rows.push_back(Tuple({Value::String(line)}));
      }
      return result;
    }
  }
  return Status::Internal("unknown statement kind");
}

Result<QueryResult> Session::ExecuteStatement(Statement* stmt, bool* produced_rows,
                                              const std::string* cache_suffix) {
  const uint64_t start_nanos = MonotonicNanos();
  Result<QueryResult> result = Status::Internal("statement did not run");
  if (IsReadStatement(stmt->kind)) {
    // Readers share the lock: SELECT/EXPLAIN from different sessions run
    // concurrently (plans, catalog entries, and the buffer pool are all
    // safe for concurrent readers).
    std::shared_lock<std::shared_mutex> lock(db_->statement_mu_);
    result = RunStatement(stmt, produced_rows, cache_suffix);
  } else {
    // Writers serialize, and never overlap any reader.
    std::unique_lock<std::shared_mutex> lock(db_->statement_mu_);
    result = RunStatement(stmt, produced_rows, cache_suffix);
    if (result.ok() && InvalidatesPlans(stmt->kind)) {
      db_->plan_cache_.InvalidateStale(db_->catalog_->version());
      // Schema changes and fresh statistics retire feedback wholesale: old
      // observations may describe dropped columns or superseded data.
      db_->feedback_.Clear();
    }
    if (result.ok()) {
      // DML changes the data the observations were measured on; drop only
      // the affected table's entries.
      switch (stmt->kind) {
        case StatementKind::kInsert:
          db_->feedback_.InvalidateTable(static_cast<InsertStmt*>(stmt)->table_name);
          break;
        case StatementKind::kDelete:
          db_->feedback_.InvalidateTable(static_cast<DeleteStmt*>(stmt)->table_name);
          break;
        case StatementKind::kUpdate:
          db_->feedback_.InvalidateTable(static_cast<UpdateStmt*>(stmt)->table_name);
          break;
        default:
          break;
      }
    }
  }
  const uint64_t wall_nanos = MonotonicNanos() - start_nanos;
  RecordStatement(*stmt, result.status(), result.ok() ? result->rows.size() : 0, wall_nanos);
  return result;
}

void Session::RecordStatement(const Statement& stmt, const Status& status,
                              uint64_t rows_returned, uint64_t wall_nanos) {
  const char* verb = StatementVerb(stmt.kind);
  const EngineMetrics& em = EngineMetrics::Get();
  em.engine_statement_us->Observe(static_cast<double>(wall_nanos) / 1000.0);
  MetricsRegistry::Global().counter(std::string("relopt.engine.statements.") + verb)->Add(1);
  if (status.ok()) {
    em.engine_statement_rows->Observe(static_cast<double>(rows_returned));
  } else {
    em.exec_statements_failed->Add(1);
    MetricsRegistry::Global()
        .counter("relopt.engine.errors." + ToLower(StatusCodeToString(status.code())))
        ->Add(1);
  }

  QueryRecord rec;
  rec.session_id = id_;
  rec.verb = verb;
  rec.status = status.ok() ? "OK" : StatusCodeToString(status.code());
  rec.error = status.ok() ? "" : status.message();
  rec.sql = NormalizeSql(stmt.text);
  rec.wall_micros = wall_nanos / 1000;
  rec.opt_micros = last_opt_nanos_ / 1000;
  rec.exec_micros = metrics_.exec_nanos / 1000;
  rec.rows_returned = rows_returned;
  rec.tuples_processed = metrics_.tuples_processed;
  rec.page_reads = metrics_.io.page_reads;
  rec.page_writes = metrics_.io.page_writes;
  rec.pool_hits = metrics_.pool.hits;
  rec.pool_misses = metrics_.pool.misses;
  rec.parallelism = options_.parallelism;
  rec.batch_size = options_.vectorized ? options_.batch_size : 0;
  rec.vectorized = options_.vectorized;
  rec.plan_cache_hit = metrics_.plan_cache_hit;
  if (metrics_.executed_plan && profile_.valid) {
    FlattenOperators(profile_.root, &rec.operators);
  }
  db_->history_.Append(std::move(rec));
}

}  // namespace relopt
