// Database: the top-level facade tying parser, binder, optimizer, executor,
// storage, and catalog together.
//
// A Database owns the shared engine state — storage, catalog, thread pool,
// plan cache, query history — and hands out Sessions (engine/session.h) for
// clients. The Database's own SQL entry points route through an implicit
// default session, so single-caller code keeps working unchanged; concurrent
// callers create one Session each via CreateSession().
#pragma once

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "engine/plan_cache.h"
#include "engine/query_history.h"
#include "exec/executor_factory.h"
#include "exec/plan_profile.h"
#include "expr/binder.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_trace.h"
#include "parser/parser.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "util/thread_pool.h"

namespace relopt {

class Session;

/// Per-session knobs. `optimizer.buffer_pages` is kept in sync with the real
/// buffer pool automatically. `buffer_pool_pages` applies only at Database
/// construction (the pool is shared engine state).
struct SessionOptions {
  size_t buffer_pool_pages = 256;
  OptimizerOptions optimizer;
  size_t analyze_buckets = 32;
  /// Vectorized (batch-at-a-time) execution. When on, queries are driven
  /// through Executor::NextBatch with `batch_size`-row TupleBatches;
  /// operators without a native batch implementation fall back to an
  /// internal row loop, so the two modes always agree on results.
  bool vectorized = true;
  size_t batch_size = TupleBatch::kDefaultCapacity;
  /// Intra-query parallelism for this session's statements (1 = serial).
  size_t parallelism = 1;
  /// Cardinality feedback (LEO-style): harvest per-operator actuals after
  /// each successful SELECT into the Database's shared FeedbackStore and let
  /// them override the statistical estimates on the next optimization of a
  /// matching (table, conjuncts) or join signature. Off by default.
  bool cardinality_feedback = false;
};

/// A fully materialized query result.
struct QueryResult {
  Schema schema;
  std::vector<Tuple> rows;

  /// Pretty-printed table.
  std::string ToString() const;
};

/// Counters captured around one statement's execution. Captured exactly once
/// per statement, on the success AND error paths, so a statement that fails
/// mid-execution still reports (only) the work it actually did.
///
/// For statements that drive an executor tree, the I/O and pool counters are
/// summed from the plan's per-operator attribution (thread-local, so they
/// stay exact when other sessions execute concurrently); DML/DDL run under
/// the exclusive statement lock and use global counter deltas.
struct ExecutionMetrics {
  IoStats io;                 ///< page reads/writes during execution
  BufferPoolStats pool;       ///< hits/misses during execution
  uint64_t tuples_processed = 0;
  double est_rows = 0;        ///< optimizer's cardinality estimate
  Cost est_cost;              ///< optimizer's cost estimate
  uint64_t actual_rows = 0;
  JoinEnumStats enum_stats;
  bool order_from_plan = false;
  uint64_t opt_nanos = 0;     ///< bind + optimize time (SELECT/EXPLAIN)
  uint64_t exec_nanos = 0;    ///< executor build + drive time
  bool executed_plan = false; ///< true if this statement drove an executor tree
  bool plan_cache_hit = false;  ///< SELECT served from the shared plan cache
};

/// \brief An embedded relational engine with a cost-based optimizer.
///
/// Thread-safety: the Database is safe to share across threads when each
/// thread drives its own Session (CreateSession). The Database's own SQL
/// methods route through the implicit default session, which — like every
/// Session — is single-threaded.
class Database {
 public:
  explicit Database(SessionOptions options = SessionOptions{});
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- sessions -------------------------------------------------------------

  /// Opens a new session with the given options (defaults to the options the
  /// Database was constructed with). The returned Session is owned by the
  /// Database and lives until the Database is destroyed. Thread-safe.
  Session* CreateSession();
  Session* CreateSession(SessionOptions options);

  /// The implicit session behind Database::Execute and friends.
  Session* default_session() { return default_session_; }

  // --- SQL entry points (implicit default session) --------------------------

  /// Runs a script (semicolon-separated). Returns the result of the LAST
  /// statement that produces rows (SELECT/EXPLAIN), or an empty result.
  Result<QueryResult> Execute(const std::string& sql);

  /// EXPLAIN convenience: the optimized physical plan as text.
  Result<std::string> Explain(const std::string& select_sql);

  // --- programmatic API (benchmarks drive these directly) ------------------

  /// Parses + binds + optimizes one SELECT, without executing.
  Result<PhysicalPtr> PlanQuery(const std::string& select_sql, OptimizeInfo* info = nullptr);

  /// Binds one parsed SELECT into a logical plan.
  Result<LogicalPtr> BindQuery(const std::string& select_sql);

  /// Executes a physical plan to completion.
  Result<QueryResult> ExecutePlan(const PhysicalNode& plan);

  // --- components -----------------------------------------------------------
  Catalog* catalog() { return catalog_.get(); }
  BufferPool* pool() { return pool_.get(); }
  DiskManager* disk() { return disk_.get(); }
  /// The default session's options (per-session; see Session::options()).
  SessionOptions& options();

  /// The plan cache shared by every session (SELECT plans, keyed on
  /// normalized SQL + optimizer options + catalog version).
  PlanCache* plan_cache() { return &plan_cache_; }

  /// Counters from the default session's most recent Execute/ExecutePlan.
  const ExecutionMetrics& last_metrics() const;

  /// Per-statement history of every session's statements (a bounded ring;
  /// also exposed through SELECT * FROM relopt_query_log()). Configure the
  /// slow-query log threshold via history()->set_slow_query_micros(us).
  QueryHistoryStore* history() { return &history_; }
  const QueryHistoryStore* history() const { return &history_; }

  /// Per-operator stats of the default session's most recent ExecutePlan.
  const PlanProfile& last_profile() const;

  /// When on, the default session traces every optimization (and bypasses
  /// the plan cache); EXPLAIN TRACE enables it for one statement.
  void set_trace_optimizer(bool on);
  /// Decision log of the default session's most recent traced optimization.
  const PlanTrace* last_trace() const;

  /// Sets the default session's intra-query parallelism degree. `n <= 1`
  /// means fully serial execution (the default); `n > 1` runs parallelizable
  /// plan subtrees as `n` worker fragments under a Gather. The backing
  /// thread pool is shared by all sessions and only ever grows.
  void set_parallelism(size_t n);
  size_t parallelism() const;

  /// Toggles the default session's vectorized execution.
  void set_vectorized(bool on);
  bool vectorized() const;
  /// Toggles the default session's cardinality feedback. The store itself is
  /// shared by all sessions; this only controls whether the default session
  /// consults and feeds it.
  void set_cardinality_feedback(bool on);
  bool cardinality_feedback() const;
  /// The cardinality-feedback store shared by every session (also exposed
  /// through SELECT * FROM relopt_feedback()).
  FeedbackStore* feedback() { return &feedback_; }
  const FeedbackStore* feedback() const { return &feedback_; }
  /// Default session's rows per batch under vectorized execution (>= 1).
  void set_batch_size(size_t n);
  size_t batch_size() const;

  /// Zeroes disk + pool counters (benchmarks call between phases).
  void ResetCounters();

 private:
  friend class Session;
  friend class PreparedStatement;

  /// Grows the shared thread pool to at least `n` threads (no-op for n<=1 or
  /// when already big enough). Takes the statement lock exclusively, so it
  /// must not be called with a statement in flight on the calling thread.
  void EnsureThreadPool(size_t n);

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<ThreadPool> thread_pool_;
  PlanCache plan_cache_;
  QueryHistoryStore history_;
  FeedbackStore feedback_;

  /// Statement-level reader/writer lock: SELECT/EXPLAIN shared, DML/DDL/
  /// ANALYZE exclusive. See the concurrency model in engine/session.h.
  std::shared_mutex statement_mu_;

  mutable std::mutex sessions_mu_;  ///< guards sessions_, next_session_id_
  std::vector<std::unique_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;
  SessionOptions default_options_;  ///< construction-time session defaults
  Session* default_session_ = nullptr;
};

}  // namespace relopt
