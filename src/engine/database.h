// Database: the top-level facade tying parser, binder, optimizer, executor,
// storage, and catalog together.
#pragma once

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "engine/query_history.h"
#include "exec/executor_factory.h"
#include "exec/plan_profile.h"
#include "expr/binder.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_trace.h"
#include "parser/parser.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "util/thread_pool.h"

namespace relopt {

/// Per-session knobs. `optimizer.buffer_pages` is kept in sync with the real
/// buffer pool automatically.
struct SessionOptions {
  size_t buffer_pool_pages = 256;
  OptimizerOptions optimizer;
  size_t analyze_buckets = 32;
  /// Vectorized (batch-at-a-time) execution. When on, queries are driven
  /// through Executor::NextBatch with `batch_size`-row TupleBatches;
  /// operators without a native batch implementation fall back to an
  /// internal row loop, so the two modes always agree on results.
  bool vectorized = true;
  size_t batch_size = TupleBatch::kDefaultCapacity;
};

/// A fully materialized query result.
struct QueryResult {
  Schema schema;
  std::vector<Tuple> rows;

  /// Pretty-printed table.
  std::string ToString() const;
};

/// Counters captured around one statement's execution. Captured exactly once
/// per statement, on the success AND error paths, so a statement that fails
/// mid-execution still reports (only) the work it actually did.
struct ExecutionMetrics {
  IoStats io;                 ///< page reads/writes during execution
  BufferPoolStats pool;       ///< hits/misses during execution
  uint64_t tuples_processed = 0;
  double est_rows = 0;        ///< optimizer's cardinality estimate
  Cost est_cost;              ///< optimizer's cost estimate
  uint64_t actual_rows = 0;
  JoinEnumStats enum_stats;
  bool order_from_plan = false;
  uint64_t opt_nanos = 0;     ///< bind + optimize time (SELECT/EXPLAIN)
  uint64_t exec_nanos = 0;    ///< executor build + drive time
  bool executed_plan = false; ///< true if this statement drove an executor tree
};

/// \brief An embedded relational engine with a cost-based optimizer. Queries
/// run serially by default; set_parallelism(n) turns on morsel-driven
/// intra-query parallelism (see DESIGN.md). See README.md for the quickstart.
class Database {
 public:
  explicit Database(SessionOptions options = SessionOptions{});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- SQL entry points ---------------------------------------------------

  /// Runs a script (semicolon-separated). Returns the result of the LAST
  /// statement that produces rows (SELECT/EXPLAIN), or an empty result.
  Result<QueryResult> Execute(const std::string& sql);

  /// EXPLAIN convenience: the optimized physical plan as text.
  Result<std::string> Explain(const std::string& select_sql);

  // --- programmatic API (benchmarks drive these directly) ------------------

  /// Parses + binds + optimizes one SELECT, without executing.
  Result<PhysicalPtr> PlanQuery(const std::string& select_sql, OptimizeInfo* info = nullptr);

  /// Binds one parsed SELECT into a logical plan.
  Result<LogicalPtr> BindQuery(const std::string& select_sql);

  /// Executes a physical plan to completion.
  Result<QueryResult> ExecutePlan(const PhysicalNode& plan);

  // --- components -----------------------------------------------------------
  Catalog* catalog() { return catalog_.get(); }
  BufferPool* pool() { return pool_.get(); }
  DiskManager* disk() { return disk_.get(); }
  SessionOptions& options() { return options_; }

  /// Counters from the most recent Execute/ExecutePlan.
  const ExecutionMetrics& last_metrics() const { return metrics_; }

  /// Per-statement history of this session's Execute() calls (a bounded ring;
  /// also exposed through SELECT * FROM relopt_query_log()). Configure the
  /// slow-query log threshold via history()->set_slow_query_micros(us).
  QueryHistoryStore* history() { return &history_; }
  const QueryHistoryStore* history() const { return &history_; }

  /// Per-operator stats of the most recent ExecutePlan (valid=false before
  /// the first execution). Renders as EXPLAIN ANALYZE text, JSON, or a
  /// chrome://tracing event array.
  const PlanProfile& last_profile() const { return profile_; }

  /// When on, every optimization records its decision log; EXPLAIN TRACE
  /// enables it for one statement regardless of this flag.
  void set_trace_optimizer(bool on) { trace_optimizer_ = on; }
  /// Decision log of the most recent traced optimization (null if tracing
  /// has never been on).
  const PlanTrace* last_trace() const { return last_trace_.get(); }

  /// Sets the intra-query parallelism degree. `n <= 1` reverts to fully
  /// serial execution (the default) with no thread pool at all; `n > 1`
  /// creates an `n`-thread pool and parallelizable plan subtrees run as `n`
  /// worker fragments under a Gather. Plans themselves are unchanged —
  /// parallelism is decided at executor-build time. Not thread-safe against
  /// concurrent Execute calls; the Database itself is a single-session object.
  void set_parallelism(size_t n);
  size_t parallelism() const { return parallelism_; }

  /// Toggles vectorized execution (see SessionOptions::vectorized).
  void set_vectorized(bool on) { options_.vectorized = on; }
  bool vectorized() const { return options_.vectorized; }
  /// Rows per batch under vectorized execution (>= 1).
  void set_batch_size(size_t n) { options_.batch_size = n == 0 ? 1 : n; }
  size_t batch_size() const { return options_.batch_size; }

  /// Zeroes disk + pool counters (benchmarks call between phases).
  void ResetCounters();

 private:
  /// Shared optimize step: syncs buffer_pages, wires up tracing.
  Result<PhysicalPtr> OptimizeLogical(LogicalPtr logical, OptimizeInfo* info, bool want_trace);

  Result<QueryResult> RunStatement(Statement* stmt, bool* produced_rows);
  /// Appends one QueryRecord for a completed (possibly failed) statement and
  /// bumps the per-verb / per-error-code engine metrics.
  void RecordStatement(const Statement& stmt, const Status& status, uint64_t rows_returned,
                       uint64_t wall_nanos);
  Result<QueryResult> RunSelect(SelectStmt* stmt);
  Result<std::string> RunExplain(ExplainStmt* stmt);
  Status RunInsert(InsertStmt* stmt);
  Status RunDelete(DeleteStmt* stmt);
  Status RunUpdate(UpdateStmt* stmt);

  SessionOptions options_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<ThreadPool> thread_pool_;
  size_t parallelism_ = 1;
  ExecutionMetrics metrics_;
  QueryHistoryStore history_;
  uint64_t last_opt_nanos_ = 0;  ///< most recent OptimizeLogical duration
  PlanProfile profile_;
  std::unique_ptr<PlanTrace> last_trace_;
  bool trace_optimizer_ = false;
};

}  // namespace relopt
