// Synthetic table generation — the substitute for the paper-era workload.
//
// Distributions, cardinalities, NDVs, and physical ordering are all
// controllable and seeded, so every experiment in bench/ is reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/database.h"
#include "util/rng.h"

namespace relopt {

/// How a generated column's values are drawn.
enum class ColumnDist {
  kSerial,        ///< 0, 1, 2, ... (a primary key)
  kUniformInt,    ///< uniform over [min_value, max_value]
  kZipfInt,       ///< Zipf(skew) over [1, ndv]; rank 1 most frequent
  kUniformDouble, ///< uniform double in [min_value, max_value)
  kRandomString,  ///< random lower-case string of `string_length`
};

struct ColumnSpec {
  std::string name;
  TypeId type = TypeId::kInt64;
  ColumnDist dist = ColumnDist::kUniformInt;
  int64_t min_value = 0;
  int64_t max_value = 0;
  uint64_t ndv = 100;          ///< for kZipfInt
  double skew = 0.0;           ///< for kZipfInt (0 = uniform)
  size_t string_length = 16;   ///< for kRandomString
  double null_fraction = 0.0;

  static ColumnSpec Serial(std::string name_in) {
    ColumnSpec s;
    s.name = std::move(name_in);
    s.dist = ColumnDist::kSerial;
    return s;
  }
  static ColumnSpec Uniform(std::string name_in, int64_t lo, int64_t hi) {
    ColumnSpec s;
    s.name = std::move(name_in);
    s.dist = ColumnDist::kUniformInt;
    s.min_value = lo;
    s.max_value = hi;
    return s;
  }
  static ColumnSpec Zipf(std::string name_in, uint64_t ndv_in, double skew_in) {
    ColumnSpec s;
    s.name = std::move(name_in);
    s.dist = ColumnDist::kZipfInt;
    s.ndv = ndv_in;
    s.skew = skew_in;
    return s;
  }
};

struct TableSpec {
  std::string name;
  uint64_t num_rows = 1000;
  std::vector<ColumnSpec> columns;
  /// If non-empty, rows are loaded physically sorted by this column
  /// (a clustered index on it is then honest).
  std::string sort_by;
  uint64_t seed = 42;
  bool analyze = true;          ///< run ANALYZE after loading
  size_t analyze_buckets = 32;
};

/// Creates and loads the table described by `spec` into `db`.
Status GenerateTable(Database* db, const TableSpec& spec);

}  // namespace relopt
