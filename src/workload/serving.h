// Multi-session serving workload harness.
//
// Drives one shared Database from N client threads, each with its own
// Session, over a mixed template workload with `?` parameters drawn from
// small deterministic domains (so plan-cache keys repeat). Reports
// throughput (queries/sec), latency percentiles, error counts, plan-cache
// hit/miss deltas, and an order-independent checksum of every result row —
// the checksum is invariant under thread interleaving, so cache-on and
// cache-off runs of the same workload must produce the same value.
//
// Determinism: the template choice and parameter values for query i of
// thread t depend only on (options.seed, t, i), never on scheduling, so two
// runs execute exactly the same bag of statements.
//
// Used by bench/bench_serving.cc (throughput A/B, smoke-checked in CI) and
// by the concurrency tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/database.h"

namespace relopt {

/// One workload query shape: SQL with `?` placeholders and an inclusive
/// integer domain per parameter.
struct ServingQueryTemplate {
  std::string sql;
  std::vector<std::pair<int64_t, int64_t>> param_domains;
};

struct ServingWorkloadOptions {
  size_t num_threads = 4;         ///< client sessions driven concurrently
  size_t queries_per_thread = 200;
  /// true: Prepare once per template per session, execute with bound values.
  /// false: render literals into the SQL text and go through Session::Execute.
  bool use_prepared = true;
  uint64_t seed = 42;
};

struct ServingWorkloadResult {
  uint64_t total_queries = 0;
  uint64_t errors = 0;
  double wall_seconds = 0;
  double queries_per_second = 0;
  double p50_micros = 0;
  double p99_micros = 0;
  /// Order-independent checksum over every result row of every query.
  uint64_t result_checksum = 0;
  /// Plan-cache counter deltas over the run (this Database's cache).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

/// The default mix over the emp/dept fixture: point and range filters,
/// 2-way and 3-way joins, and grouped aggregates — a few shapes repeated
/// with varying parameters, like a serving workload.
std::vector<ServingQueryTemplate> DefaultServingMix();

/// Loads the fixture DefaultServingMix() queries run against:
///   emp(id, name, dept_id, salary), dept(id, dname)
/// with stats analyzed. Same data layout as the test fixtures.
Status LoadServingFixture(Database* db, int emp_rows = 1000, int dept_rows = 20);

/// Runs the workload: N threads x queries_per_thread over `mix`.
/// The Database must already hold the tables the mix references.
Result<ServingWorkloadResult> RunServingWorkload(Database* db,
                                                 const std::vector<ServingQueryTemplate>& mix,
                                                 const ServingWorkloadOptions& options);

}  // namespace relopt
