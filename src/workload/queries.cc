#include "workload/queries.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/rng.h"
#include "workload/generator.h"

namespace relopt {

namespace {

/// An FK column into a serial-id domain of `target_rows` rows: uniform over
/// [0, target_rows-1], or Zipf over [1, target_rows-1] when skewed (rank 1 —
/// the hottest id — is 1; every drawn value is a live id either way).
ColumnSpec FkColumn(std::string name, uint64_t target_rows, double skew) {
  if (skew > 0.0) {
    return ColumnSpec::Zipf(std::move(name), target_rows > 1 ? target_rows - 1 : 1, skew);
  }
  return ColumnSpec::Uniform(std::move(name), 0, static_cast<int64_t>(target_rows) - 1);
}

/// Geometric size ladder r0..r{n-1} starting at base_rows.
std::vector<uint64_t> GeometricSizes(const JoinWorkloadSpec& spec) {
  std::vector<uint64_t> sizes;
  double rows = static_cast<double>(spec.base_rows);
  for (int i = 0; i < spec.num_relations; ++i) {
    sizes.push_back(static_cast<uint64_t>(std::max(1.0, rows)));
    rows *= spec.growth;
  }
  return sizes;
}

}  // namespace

const char* JoinTopologyToString(JoinTopology topology) {
  switch (topology) {
    case JoinTopology::kChain:
      return "chain";
    case JoinTopology::kStar:
      return "star";
    case JoinTopology::kCycle:
      return "cycle";
    case JoinTopology::kClique:
      return "clique";
    case JoinTopology::kRandom:
      return "random";
  }
  return "?";
}

Result<std::string> BuildJoinWorkload(Database* db, JoinTopology topology,
                                      const JoinWorkloadSpec& spec) {
  switch (topology) {
    case JoinTopology::kChain:
      return BuildChainWorkload(db, spec);
    case JoinTopology::kStar:
      return BuildStarWorkload(db, spec);
    case JoinTopology::kCycle:
      return BuildCycleWorkload(db, spec);
    case JoinTopology::kClique:
      return BuildCliqueWorkload(db, spec);
    case JoinTopology::kRandom:
      return BuildRandomWorkload(db, spec);
  }
  return Status::InvalidArgument("unknown join topology");
}

Result<std::string> BuildChainWorkload(Database* db, const JoinWorkloadSpec& spec) {
  const int n = spec.num_relations;
  // Sizes vary geometrically so join order matters.
  std::vector<uint64_t> sizes = GeometricSizes(spec);

  for (int i = 0; i < n; ++i) {
    TableSpec t;
    t.name = spec.prefix + std::to_string(i);
    t.num_rows = sizes[i];
    t.seed = spec.seed + static_cast<uint64_t>(i);
    t.columns.push_back(ColumnSpec::Serial("id"));
    if (i + 1 < n) {
      // FK into the next relation's serial id domain.
      t.columns.push_back(FkColumn("fk", sizes[i + 1], spec.fk_skew));
    } else {
      t.columns.push_back(ColumnSpec::Uniform("fk", 0, 99));
    }
    t.columns.push_back(ColumnSpec::Uniform("val", 0, 999));
    RELOPT_RETURN_NOT_OK(GenerateTable(db, t));
    if (spec.with_indexes) {
      RELOPT_ASSIGN_OR_RETURN(
          IndexInfo * idx,
          db->catalog()->CreateIndex("idx_" + t.name + "_id", t.name, {"id"}, false));
      (void)idx;
    }
  }

  std::string sql = "SELECT count(*) FROM ";
  for (int i = 0; i < n; ++i) {
    if (i > 0) sql += ", ";
    sql += spec.prefix + std::to_string(i);
  }
  sql += " WHERE ";
  for (int i = 0; i + 1 < n; ++i) {
    if (i > 0) sql += " AND ";
    sql += spec.prefix + std::to_string(i) + ".fk = " + spec.prefix + std::to_string(i + 1) +
           ".id";
  }
  return sql;
}

Result<std::string> BuildStarWorkload(Database* db, const JoinWorkloadSpec& spec) {
  const int dims = spec.num_relations - 1;
  // Dimensions of varying size.
  std::vector<uint64_t> dim_sizes;
  double rows = static_cast<double>(spec.dim_rows);
  for (int i = 0; i < dims; ++i) {
    dim_sizes.push_back(static_cast<uint64_t>(std::max(1.0, rows)));
    rows *= spec.growth;
  }

  TableSpec fact;
  fact.name = spec.prefix + "_fact";
  fact.num_rows = spec.base_rows;
  fact.seed = spec.seed;
  fact.columns.push_back(ColumnSpec::Serial("id"));
  for (int i = 0; i < dims; ++i) {
    fact.columns.push_back(FkColumn("d" + std::to_string(i), dim_sizes[i], spec.fk_skew));
  }
  fact.columns.push_back(ColumnSpec::Uniform("val", 0, 999));
  RELOPT_RETURN_NOT_OK(GenerateTable(db, fact));

  for (int i = 0; i < dims; ++i) {
    TableSpec dim;
    dim.name = spec.prefix + "_dim" + std::to_string(i);
    dim.num_rows = dim_sizes[i];
    dim.seed = spec.seed + 100 + static_cast<uint64_t>(i);
    dim.columns.push_back(ColumnSpec::Serial("id"));
    dim.columns.push_back(ColumnSpec::Uniform("attr", 0, 99));
    RELOPT_RETURN_NOT_OK(GenerateTable(db, dim));
    if (spec.with_indexes) {
      RELOPT_ASSIGN_OR_RETURN(
          IndexInfo * idx,
          db->catalog()->CreateIndex("idx_" + dim.name + "_id", dim.name, {"id"}, false));
      (void)idx;
    }
  }

  std::string sql = "SELECT count(*) FROM " + fact.name;
  for (int i = 0; i < dims; ++i) {
    sql += ", " + spec.prefix + "_dim" + std::to_string(i);
  }
  sql += " WHERE ";
  for (int i = 0; i < dims; ++i) {
    if (i > 0) sql += " AND ";
    sql += fact.name + ".d" + std::to_string(i) + " = " + spec.prefix + "_dim" +
           std::to_string(i) + ".id";
  }
  return sql;
}

Result<std::string> BuildCliqueWorkload(Database* db, const JoinWorkloadSpec& spec) {
  const int n = spec.num_relations;
  std::vector<uint64_t> sizes = GeometricSizes(spec);
  const int64_t domain = 200;  // shared join-key domain

  for (int i = 0; i < n; ++i) {
    TableSpec t;
    t.name = spec.prefix + std::to_string(i);
    t.num_rows = sizes[i];
    t.seed = spec.seed + static_cast<uint64_t>(i);
    t.columns.push_back(ColumnSpec::Serial("id"));
    t.columns.push_back(spec.fk_skew > 0.0
                            ? ColumnSpec::Zipf("k", static_cast<uint64_t>(domain), spec.fk_skew)
                            : ColumnSpec::Uniform("k", 0, domain - 1));
    t.columns.push_back(ColumnSpec::Uniform("val", 0, 999));
    RELOPT_RETURN_NOT_OK(GenerateTable(db, t));
  }

  std::string sql = "SELECT count(*) FROM ";
  for (int i = 0; i < n; ++i) {
    if (i > 0) sql += ", ";
    sql += spec.prefix + std::to_string(i);
  }
  sql += " WHERE ";
  bool first = true;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (!first) sql += " AND ";
      sql += spec.prefix + std::to_string(i) + ".k = " + spec.prefix + std::to_string(j) + ".k";
      first = false;
    }
  }
  return sql;
}

Result<std::string> BuildCycleWorkload(Database* db, const JoinWorkloadSpec& spec) {
  const int n = spec.num_relations;
  if (n < 3) return Status::InvalidArgument("cycle topology needs at least 3 relations");
  std::vector<uint64_t> sizes = GeometricSizes(spec);

  for (int i = 0; i < n; ++i) {
    TableSpec t;
    t.name = spec.prefix + std::to_string(i);
    t.num_rows = sizes[i];
    t.seed = spec.seed + static_cast<uint64_t>(i);
    t.columns.push_back(ColumnSpec::Serial("id"));
    // The last relation's fk closes the cycle back into r0's id domain.
    const uint64_t target = (i + 1 < n) ? sizes[i + 1] : sizes[0];
    t.columns.push_back(FkColumn("fk", target, spec.fk_skew));
    t.columns.push_back(ColumnSpec::Uniform("val", 0, 999));
    RELOPT_RETURN_NOT_OK(GenerateTable(db, t));
    if (spec.with_indexes) {
      RELOPT_ASSIGN_OR_RETURN(
          IndexInfo * idx,
          db->catalog()->CreateIndex("idx_" + t.name + "_id", t.name, {"id"}, false));
      (void)idx;
    }
  }

  std::string sql = "SELECT count(*) FROM ";
  for (int i = 0; i < n; ++i) {
    if (i > 0) sql += ", ";
    sql += spec.prefix + std::to_string(i);
  }
  sql += " WHERE ";
  for (int i = 0; i + 1 < n; ++i) {
    if (i > 0) sql += " AND ";
    sql += spec.prefix + std::to_string(i) + ".fk = " + spec.prefix + std::to_string(i + 1) +
           ".id";
  }
  sql += " AND " + spec.prefix + std::to_string(n - 1) + ".fk = " + spec.prefix + "0.id";
  return sql;
}

Result<std::string> BuildRandomWorkload(Database* db, const JoinWorkloadSpec& spec) {
  const int n = spec.num_relations;
  std::vector<uint64_t> sizes = GeometricSizes(spec);

  // Deterministic connected graph: a random spanning tree (each relation
  // joins a random earlier one) plus ~n/3 extra edges. Edges are kept as
  // (i, j) with i > j; the fk column lives on the higher-numbered side.
  Rng rng(spec.seed);
  std::vector<std::pair<int, int>> edges;
  for (int i = 1; i < n; ++i) {
    edges.emplace_back(i, static_cast<int>(rng.UniformInt(0, i - 1)));
  }
  const int extra = n / 3;
  for (int e = 0; e < extra && n >= 2; ++e) {
    int i = static_cast<int>(rng.UniformInt(1, n - 1));
    int j = static_cast<int>(rng.UniformInt(0, i - 1));
    if (std::find(edges.begin(), edges.end(), std::make_pair(i, j)) == edges.end()) {
      edges.emplace_back(i, j);
    }
  }

  for (int i = 0; i < n; ++i) {
    TableSpec t;
    t.name = spec.prefix + std::to_string(i);
    t.num_rows = sizes[i];
    t.seed = spec.seed + static_cast<uint64_t>(i);
    t.columns.push_back(ColumnSpec::Serial("id"));
    for (const auto& [hi, lo] : edges) {
      if (hi == i) {
        t.columns.push_back(FkColumn("fk" + std::to_string(lo), sizes[lo], spec.fk_skew));
      }
    }
    t.columns.push_back(ColumnSpec::Uniform("val", 0, 999));
    RELOPT_RETURN_NOT_OK(GenerateTable(db, t));
    if (spec.with_indexes) {
      RELOPT_ASSIGN_OR_RETURN(
          IndexInfo * idx,
          db->catalog()->CreateIndex("idx_" + t.name + "_id", t.name, {"id"}, false));
      (void)idx;
    }
  }

  std::string sql = "SELECT count(*) FROM ";
  for (int i = 0; i < n; ++i) {
    if (i > 0) sql += ", ";
    sql += spec.prefix + std::to_string(i);
  }
  sql += " WHERE ";
  for (size_t e = 0; e < edges.size(); ++e) {
    if (e > 0) sql += " AND ";
    sql += spec.prefix + std::to_string(edges[e].first) + ".fk" +
           std::to_string(edges[e].second) + " = " + spec.prefix +
           std::to_string(edges[e].second) + ".id";
  }
  return sql;
}

}  // namespace relopt
