#include "workload/queries.h"

#include <cmath>

#include "workload/generator.h"

namespace relopt {

Result<std::string> BuildChainWorkload(Database* db, const JoinWorkloadSpec& spec) {
  const int n = spec.num_relations;
  // Sizes vary geometrically so join order matters.
  std::vector<uint64_t> sizes;
  double rows = static_cast<double>(spec.base_rows);
  for (int i = 0; i < n; ++i) {
    sizes.push_back(static_cast<uint64_t>(std::max(1.0, rows)));
    rows *= spec.growth;
  }

  for (int i = 0; i < n; ++i) {
    TableSpec t;
    t.name = spec.prefix + std::to_string(i);
    t.num_rows = sizes[i];
    t.seed = spec.seed + static_cast<uint64_t>(i);
    t.columns.push_back(ColumnSpec::Serial("id"));
    if (i + 1 < n) {
      // FK into the next relation's serial id domain.
      t.columns.push_back(
          ColumnSpec::Uniform("fk", 0, static_cast<int64_t>(sizes[i + 1]) - 1));
    } else {
      t.columns.push_back(ColumnSpec::Uniform("fk", 0, 99));
    }
    t.columns.push_back(ColumnSpec::Uniform("val", 0, 999));
    RELOPT_RETURN_NOT_OK(GenerateTable(db, t));
    if (spec.with_indexes) {
      RELOPT_ASSIGN_OR_RETURN(
          IndexInfo * idx,
          db->catalog()->CreateIndex("idx_" + t.name + "_id", t.name, {"id"}, false));
      (void)idx;
    }
  }

  std::string sql = "SELECT count(*) FROM ";
  for (int i = 0; i < n; ++i) {
    if (i > 0) sql += ", ";
    sql += spec.prefix + std::to_string(i);
  }
  sql += " WHERE ";
  for (int i = 0; i + 1 < n; ++i) {
    if (i > 0) sql += " AND ";
    sql += spec.prefix + std::to_string(i) + ".fk = " + spec.prefix + std::to_string(i + 1) +
           ".id";
  }
  return sql;
}

Result<std::string> BuildStarWorkload(Database* db, const JoinWorkloadSpec& spec) {
  const int dims = spec.num_relations - 1;
  // Dimensions of varying size.
  std::vector<uint64_t> dim_sizes;
  double rows = static_cast<double>(spec.dim_rows);
  for (int i = 0; i < dims; ++i) {
    dim_sizes.push_back(static_cast<uint64_t>(std::max(1.0, rows)));
    rows *= spec.growth;
  }

  TableSpec fact;
  fact.name = spec.prefix + "_fact";
  fact.num_rows = spec.base_rows;
  fact.seed = spec.seed;
  fact.columns.push_back(ColumnSpec::Serial("id"));
  for (int i = 0; i < dims; ++i) {
    fact.columns.push_back(ColumnSpec::Uniform("d" + std::to_string(i), 0,
                                               static_cast<int64_t>(dim_sizes[i]) - 1));
  }
  fact.columns.push_back(ColumnSpec::Uniform("val", 0, 999));
  RELOPT_RETURN_NOT_OK(GenerateTable(db, fact));

  for (int i = 0; i < dims; ++i) {
    TableSpec dim;
    dim.name = spec.prefix + "_dim" + std::to_string(i);
    dim.num_rows = dim_sizes[i];
    dim.seed = spec.seed + 100 + static_cast<uint64_t>(i);
    dim.columns.push_back(ColumnSpec::Serial("id"));
    dim.columns.push_back(ColumnSpec::Uniform("attr", 0, 99));
    RELOPT_RETURN_NOT_OK(GenerateTable(db, dim));
    if (spec.with_indexes) {
      RELOPT_ASSIGN_OR_RETURN(
          IndexInfo * idx,
          db->catalog()->CreateIndex("idx_" + dim.name + "_id", dim.name, {"id"}, false));
      (void)idx;
    }
  }

  std::string sql = "SELECT count(*) FROM " + fact.name;
  for (int i = 0; i < dims; ++i) {
    sql += ", " + spec.prefix + "_dim" + std::to_string(i);
  }
  sql += " WHERE ";
  for (int i = 0; i < dims; ++i) {
    if (i > 0) sql += " AND ";
    sql += fact.name + ".d" + std::to_string(i) + " = " + spec.prefix + "_dim" +
           std::to_string(i) + ".id";
  }
  return sql;
}

Result<std::string> BuildCliqueWorkload(Database* db, const JoinWorkloadSpec& spec) {
  const int n = spec.num_relations;
  std::vector<uint64_t> sizes;
  double rows = static_cast<double>(spec.base_rows);
  for (int i = 0; i < n; ++i) {
    sizes.push_back(static_cast<uint64_t>(std::max(1.0, rows)));
    rows *= spec.growth;
  }
  const int64_t domain = 200;  // shared join-key domain

  for (int i = 0; i < n; ++i) {
    TableSpec t;
    t.name = spec.prefix + std::to_string(i);
    t.num_rows = sizes[i];
    t.seed = spec.seed + static_cast<uint64_t>(i);
    t.columns.push_back(ColumnSpec::Serial("id"));
    t.columns.push_back(ColumnSpec::Uniform("k", 0, domain - 1));
    t.columns.push_back(ColumnSpec::Uniform("val", 0, 999));
    RELOPT_RETURN_NOT_OK(GenerateTable(db, t));
  }

  std::string sql = "SELECT count(*) FROM ";
  for (int i = 0; i < n; ++i) {
    if (i > 0) sql += ", ";
    sql += spec.prefix + std::to_string(i);
  }
  sql += " WHERE ";
  bool first = true;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (!first) sql += " AND ";
      sql += spec.prefix + std::to_string(i) + ".k = " + spec.prefix + std::to_string(j) + ".k";
      first = false;
    }
  }
  return sql;
}

}  // namespace relopt
