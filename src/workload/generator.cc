#include "workload/generator.h"

#include <algorithm>

namespace relopt {

Status GenerateTable(Database* db, const TableSpec& spec) {
  Schema schema;
  for (const ColumnSpec& col : spec.columns) {
    schema.AddColumn(Column(col.name, col.type, spec.name));
  }
  RELOPT_ASSIGN_OR_RETURN(TableInfo * table, db->catalog()->CreateTable(spec.name, schema));

  Rng rng(spec.seed);
  std::vector<std::unique_ptr<ZipfGenerator>> zipfs(spec.columns.size());
  for (size_t c = 0; c < spec.columns.size(); ++c) {
    if (spec.columns[c].dist == ColumnDist::kZipfInt) {
      zipfs[c] = std::make_unique<ZipfGenerator>(std::max<uint64_t>(1, spec.columns[c].ndv),
                                                 spec.columns[c].skew);
    }
  }

  std::vector<Tuple> rows;
  rows.reserve(spec.num_rows);
  for (uint64_t r = 0; r < spec.num_rows; ++r) {
    std::vector<Value> values;
    values.reserve(spec.columns.size());
    for (size_t c = 0; c < spec.columns.size(); ++c) {
      const ColumnSpec& col = spec.columns[c];
      if (col.null_fraction > 0 && rng.Bernoulli(col.null_fraction)) {
        values.push_back(Value::Null(col.type));
        continue;
      }
      switch (col.dist) {
        case ColumnDist::kSerial:
          values.push_back(Value::Int(static_cast<int64_t>(r)));
          break;
        case ColumnDist::kUniformInt:
          values.push_back(Value::Int(rng.UniformInt(col.min_value, col.max_value)));
          break;
        case ColumnDist::kZipfInt:
          values.push_back(Value::Int(static_cast<int64_t>(zipfs[c]->Next(&rng))));
          break;
        case ColumnDist::kUniformDouble: {
          double lo = static_cast<double>(col.min_value);
          double hi = static_cast<double>(col.max_value);
          values.push_back(Value::Double(lo + rng.UniformDouble() * (hi - lo)));
          break;
        }
        case ColumnDist::kRandomString:
          values.push_back(Value::String(rng.RandomString(col.string_length)));
          break;
      }
    }
    rows.emplace_back(std::move(values));
  }

  if (!spec.sort_by.empty()) {
    RELOPT_ASSIGN_OR_RETURN(size_t key, schema.IndexOf(spec.sort_by));
    Status sort_status = Status::OK();
    std::stable_sort(rows.begin(), rows.end(), [&](const Tuple& a, const Tuple& b) {
      Result<int> c = a.At(key).Compare(b.At(key));
      if (!c.ok()) {
        sort_status = c.status();
        return false;
      }
      return *c < 0;
    });
    RELOPT_RETURN_NOT_OK(sort_status);
  }

  for (const Tuple& row : rows) {
    RELOPT_ASSIGN_OR_RETURN(Rid rid, db->catalog()->InsertTuple(table, row));
    (void)rid;
  }

  if (spec.analyze) {
    RELOPT_RETURN_NOT_OK(db->catalog()->AnalyzeTable(spec.name, spec.analyze_buckets));
  }
  return Status::OK();
}

}  // namespace relopt
