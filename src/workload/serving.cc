#include "workload/serving.h"

#include <algorithm>
#include <random>
#include <thread>

#include "engine/session.h"
#include "util/timer.h"

namespace relopt {

namespace {

/// Order-independent row digest: per-row hashes are summed (mod 2^64), so
/// the total is invariant under row order, query order, and thread
/// interleaving — but any changed cell changes the sum.
uint64_t ResultChecksum(const QueryResult& result) {
  uint64_t sum = 0;
  std::hash<std::string> hasher;
  for (const Tuple& row : result.rows) {
    std::string rendered;
    for (size_t i = 0; i < row.NumValues(); ++i) {
      rendered += row.At(i).ToString();
      rendered += '|';
    }
    sum += hasher(rendered);
  }
  return sum;
}

/// Renders `sql`'s `?` placeholders with the given integer values, for the
/// non-prepared (plain Execute) drive mode.
std::string RenderTemplate(const std::string& sql, const std::vector<int64_t>& params) {
  std::string out;
  out.reserve(sql.size() + params.size() * 8);
  size_t next = 0;
  for (char c : sql) {
    if (c == '?' && next < params.size()) {
      out += std::to_string(params[next++]);
    } else {
      out += c;
    }
  }
  return out;
}

struct ThreadResult {
  std::vector<uint64_t> latencies_nanos;
  uint64_t checksum = 0;
  uint64_t errors = 0;
};

}  // namespace

std::vector<ServingQueryTemplate> DefaultServingMix() {
  // Domains are deliberately small (~100 distinct parameter combinations in
  // total): a serving workload's hot statements repeat, and the whole
  // working set must fit the 128-entry plan cache for the cache-on/off A/B
  // to measure steady-state hits rather than LRU thrash.
  return {
      {"SELECT id, name, salary FROM emp WHERE id = ?", {{0, 19}}},
      // The optimizer-heavy shape: three-way join enumeration is the work a
      // cache hit saves, while the point predicates keep execution cheap.
      {"SELECT e.name, d.dname, e2.name FROM emp e, dept d, emp e2 "
       "WHERE e.dept_id = d.id AND e2.dept_id = d.id AND e.id = ? AND e2.id = ?",
       {{0, 4}, {5, 9}}},
      {"SELECT id, salary FROM emp WHERE salary > ? AND salary < ?",
       {{2000, 2004}, {4000, 4003}}},
      {"SELECT count(*) FROM emp WHERE dept_id = ?", {{0, 19}}},
      {"SELECT emp.name, dept.dname FROM emp, dept "
       "WHERE emp.dept_id = dept.id AND emp.salary > ?",
       {{3000, 3009}}},
      {"SELECT dept_id, count(*), sum(salary) FROM emp WHERE salary > ? GROUP BY dept_id",
       {{2500, 2509}}},
  };
}

Status LoadServingFixture(Database* db, int emp_rows, int dept_rows) {
  RELOPT_RETURN_NOT_OK(
      db->Execute("CREATE TABLE emp (id INT, name TEXT, dept_id INT, salary INT)").status());
  RELOPT_RETURN_NOT_OK(db->Execute("CREATE TABLE dept (id INT, dname TEXT)").status());
  std::string insert = "INSERT INTO emp VALUES ";
  for (int i = 0; i < emp_rows; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i) + ", 'e" + std::to_string(i) + "', " +
              std::to_string(i % dept_rows) + ", " + std::to_string(1000 + (i * 37) % 5000) + ")";
  }
  RELOPT_RETURN_NOT_OK(db->Execute(insert).status());
  std::string insert_dept = "INSERT INTO dept VALUES ";
  for (int i = 0; i < dept_rows; ++i) {
    if (i > 0) insert_dept += ", ";
    insert_dept += "(" + std::to_string(i) + ", 'd" + std::to_string(i) + "')";
  }
  RELOPT_RETURN_NOT_OK(db->Execute(insert_dept).status());
  return db->Execute("ANALYZE").status();
}

Result<ServingWorkloadResult> RunServingWorkload(Database* db,
                                                 const std::vector<ServingQueryTemplate>& mix,
                                                 const ServingWorkloadOptions& options) {
  if (mix.empty()) return Status::InvalidArgument("empty workload mix");
  const size_t threads = options.num_threads == 0 ? 1 : options.num_threads;

  // Open sessions and prepare statements up front, so the measured window is
  // pure query execution.
  std::vector<Session*> sessions;
  std::vector<std::vector<PreparedStatement*>> prepared(threads);
  for (size_t t = 0; t < threads; ++t) {
    Session* session = db->CreateSession();
    sessions.push_back(session);
    if (options.use_prepared) {
      for (const ServingQueryTemplate& tmpl : mix) {
        RELOPT_ASSIGN_OR_RETURN(PreparedStatement * stmt, session->Prepare(tmpl.sql));
        prepared[t].push_back(stmt);
      }
    }
  }

  const PlanCache::Stats cache_before = db->plan_cache()->stats();
  std::vector<ThreadResult> per_thread(threads);
  const uint64_t wall_start = MonotonicNanos();

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      Session* session = sessions[t];
      ThreadResult& out = per_thread[t];
      out.latencies_nanos.reserve(options.queries_per_thread);
      for (size_t i = 0; i < options.queries_per_thread; ++i) {
        // Seed per (thread, query): the statement sequence is a pure
        // function of the options, never of scheduling.
        std::mt19937_64 rng(options.seed * 1000003 + t * 131071 + i);
        const ServingQueryTemplate& tmpl = mix[rng() % mix.size()];
        std::vector<int64_t> ints;
        for (const auto& [lo, hi] : tmpl.param_domains) {
          ints.push_back(lo + static_cast<int64_t>(rng() % static_cast<uint64_t>(hi - lo + 1)));
        }
        const uint64_t start = MonotonicNanos();
        Result<QueryResult> result = Status::OK();
        if (options.use_prepared) {
          std::vector<Value> params;
          for (int64_t v : ints) params.push_back(Value::Int(v));
          size_t tmpl_index = &tmpl - mix.data();
          result = prepared[t][tmpl_index]->Execute(params);
        } else {
          result = session->Execute(RenderTemplate(tmpl.sql, ints));
        }
        out.latencies_nanos.push_back(MonotonicNanos() - start);
        if (result.ok()) {
          out.checksum += ResultChecksum(*result);
        } else {
          ++out.errors;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const uint64_t wall_nanos = MonotonicNanos() - wall_start;
  const PlanCache::Stats cache_after = db->plan_cache()->stats();

  ServingWorkloadResult result;
  result.total_queries = threads * options.queries_per_thread;
  std::vector<uint64_t> latencies;
  latencies.reserve(result.total_queries);
  for (const ThreadResult& tr : per_thread) {
    result.errors += tr.errors;
    result.result_checksum += tr.checksum;
    latencies.insert(latencies.end(), tr.latencies_nanos.begin(), tr.latencies_nanos.end());
  }
  std::sort(latencies.begin(), latencies.end());
  auto percentile = [&](double q) -> double {
    if (latencies.empty()) return 0;
    size_t idx = static_cast<size_t>(q * static_cast<double>(latencies.size() - 1));
    return static_cast<double>(latencies[idx]) / 1000.0;
  };
  result.p50_micros = percentile(0.50);
  result.p99_micros = percentile(0.99);
  result.wall_seconds = static_cast<double>(wall_nanos) / 1e9;
  result.queries_per_second =
      result.wall_seconds > 0 ? static_cast<double>(result.total_queries) / result.wall_seconds : 0;
  result.cache_hits = cache_after.hits - cache_before.hits;
  result.cache_misses = cache_after.misses - cache_before.misses;
  return result;
}

}  // namespace relopt
