// Join query/topology families for the optimizer experiments:
// chain, star, cycle, clique, and random join graphs, sized by a single
// parameter n — the generated Join-Order-Benchmark-style workload.
#pragma once

#include <cstdint>
#include <string>

#include "engine/database.h"

namespace relopt {

/// Parameters shared by the topology builders.
struct JoinWorkloadSpec {
  int num_relations = 4;
  uint64_t base_rows = 1000;   ///< rows of the first/fact relation
  /// Each subsequent relation's size = previous * growth (chain) or the
  /// dimension size (star). Varying sizes are what make join order matter.
  double growth = 2.0;
  uint64_t dim_rows = 100;     ///< star: dimension table size
  uint64_t seed = 42;
  bool with_indexes = false;   ///< secondary index on every join column
  std::string prefix = "r";    ///< table name prefix
  /// Zipf skew of every FK / join-key column (0 = uniform). Skewed FK
  /// distributions concentrate matches on a few hot ids — the regime where
  /// misestimated join orders hurt the most.
  double fk_skew = 0.0;
};

/// The topology families, for sweeping code (bench/tests).
enum class JoinTopology { kChain, kStar, kCycle, kClique, kRandom };

const char* JoinTopologyToString(JoinTopology topology);

/// Dispatches to the matching Build*Workload below.
Result<std::string> BuildJoinWorkload(Database* db, JoinTopology topology,
                                      const JoinWorkloadSpec& spec);

/// Builds tables r0..r{n-1}: r_i(id serial, fk uniform over r_{i+1}.id, pad)
/// and returns the chain query
///   SELECT count(*) FROM r0, r1, ... WHERE r0.fk = r1.id AND r1.fk = r2.id ...
Result<std::string> BuildChainWorkload(Database* db, const JoinWorkloadSpec& spec);

/// Builds one fact table f(id, d0, .., d{n-2}, val) and n-1 dimensions
/// dim_i(id serial, attr) and returns the star query joining all of them.
Result<std::string> BuildStarWorkload(Database* db, const JoinWorkloadSpec& spec);

/// Builds n tables that all share a join column k (uniform over a small
/// domain) and returns the clique query with all pairwise equi-joins.
Result<std::string> BuildCliqueWorkload(Database* db, const JoinWorkloadSpec& spec);

/// Chain plus the closing edge: r{n-1}.fk points back into r0's id domain,
/// so the query graph is a single cycle. Needs num_relations >= 3.
Result<std::string> BuildCycleWorkload(Database* db, const JoinWorkloadSpec& spec);

/// A random connected graph, deterministic from `seed`: a random spanning
/// tree (each r_i, i >= 1, joins a random earlier relation) plus ~n/3 extra
/// edges. Each edge (i, j), i > j, is a column fk{j} on r_i drawn from
/// r_j's id domain with the predicate r{i}.fk{j} = r{j}.id.
Result<std::string> BuildRandomWorkload(Database* db, const JoinWorkloadSpec& spec);

}  // namespace relopt
