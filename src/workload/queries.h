// Join query/topology families for the optimizer experiments:
// chain, star, and clique join graphs, sized by a single parameter n.
#pragma once

#include <cstdint>
#include <string>

#include "engine/database.h"

namespace relopt {

/// Parameters shared by the topology builders.
struct JoinWorkloadSpec {
  int num_relations = 4;
  uint64_t base_rows = 1000;   ///< rows of the first/fact relation
  /// Each subsequent relation's size = previous * growth (chain) or the
  /// dimension size (star). Varying sizes are what make join order matter.
  double growth = 2.0;
  uint64_t dim_rows = 100;     ///< star: dimension table size
  uint64_t seed = 42;
  bool with_indexes = false;   ///< secondary index on every join column
  std::string prefix = "r";    ///< table name prefix
};

/// Builds tables r0..r{n-1}: r_i(id serial, fk uniform over r_{i+1}.id, pad)
/// and returns the chain query
///   SELECT count(*) FROM r0, r1, ... WHERE r0.fk = r1.id AND r1.fk = r2.id ...
Result<std::string> BuildChainWorkload(Database* db, const JoinWorkloadSpec& spec);

/// Builds one fact table f(id, d0, .., d{n-2}, val) and n-1 dimensions
/// dim_i(id serial, attr) and returns the star query joining all of them.
Result<std::string> BuildStarWorkload(Database* db, const JoinWorkloadSpec& spec);

/// Builds n tables that all share a join column k (uniform over a small
/// domain) and returns the clique query with all pairwise equi-joins.
Result<std::string> BuildCliqueWorkload(Database* db, const JoinWorkloadSpec& spec);

}  // namespace relopt
