#include "parser/parser.h"

#include "util/str_util.h"

namespace relopt {

namespace {

/// Recursive-descent parser over a token stream.
class Parser {
 public:
  Parser(std::string sql, std::vector<Token> tokens)
      : sql_(std::move(sql)), tokens_(std::move(tokens)) {}

  Result<std::vector<StatementPtr>> ParseAll() {
    std::vector<StatementPtr> stmts;
    while (!Peek().Is(TokenKind::kEnd)) {
      if (Peek().IsSymbol(";")) {
        Advance();
        continue;
      }
      size_t start = Peek().position;
      RELOPT_ASSIGN_OR_RETURN(StatementPtr stmt, ParseOne());
      // The statement's source text runs to the next token (";" or end).
      stmt->text = std::string(
          Trim(std::string_view(sql_).substr(start, Peek().position - start)));
      stmts.push_back(std::move(stmt));
    }
    return stmts;
  }

  Result<StatementPtr> ParseOne() {
    param_count_ = 0;
    RELOPT_ASSIGN_OR_RETURN(StatementPtr stmt, ParseOneDispatch());
    stmt->num_parameters = param_count_;
    return stmt;
  }

  Result<StatementPtr> ParseOneDispatch() {
    const Token& t = Peek();
    if (t.IsWord("create")) return ParseCreate();
    if (t.IsWord("drop")) return ParseDrop();
    if (t.IsWord("insert")) return ParseInsert();
    if (t.IsWord("select")) return ParseSelect();
    if (t.IsWord("explain")) return ParseExplain();
    if (t.IsWord("analyze")) return ParseAnalyze();
    if (t.IsWord("delete")) return ParseDelete();
    if (t.IsWord("update")) return ParseUpdate();
    return Error("expected a statement, got '" + t.text + "'");
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool MatchWord(const char* word) {
    if (Peek().IsWord(word)) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchSymbol(const char* sym) {
    if (Peek().IsSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectWord(const char* word) {
    if (!MatchWord(word)) {
      return Status::ParseError(std::string("expected '") + word + "', got '" + Peek().text +
                                "' at offset " + std::to_string(Peek().position));
    }
    return Status::OK();
  }
  Status ExpectSymbol(const char* sym) {
    if (!MatchSymbol(sym)) {
      return Status::ParseError(std::string("expected '") + sym + "', got '" + Peek().text +
                                "' at offset " + std::to_string(Peek().position));
    }
    return Status::OK();
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(Peek().position));
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (!Peek().Is(TokenKind::kIdentifier)) {
      return Status::ParseError(std::string("expected ") + what + ", got '" + Peek().text +
                                "' at offset " + std::to_string(Peek().position));
    }
    return Advance().text;
  }

  /// True for identifiers that are reserved as clause keywords and therefore
  /// cannot start/continue an alias.
  static bool IsReservedWord(const Token& t) {
    static const char* kReserved[] = {"select", "from",  "where", "group", "having", "order",
                                      "limit",  "join",  "on",    "and",   "or",     "not",
                                      "as",     "inner", "by",    "asc",   "desc",   "values",
                                      "union",  "cross", "case",  "when",  "then",   "else",
                                      "end"};
    for (const char* w : kReserved) {
      if (t.IsWord(w)) return true;
    }
    return false;
  }

  // ------------------------------------------------------------ statements

  Result<StatementPtr> ParseCreate() {
    RELOPT_RETURN_NOT_OK(ExpectWord("create"));
    bool clustered = MatchWord("clustered");
    if (MatchWord("table")) {
      if (clustered) return Error("CLUSTERED applies to indexes, not tables");
      auto stmt = std::make_unique<CreateTableStmt>();
      RELOPT_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier("table name"));
      RELOPT_RETURN_NOT_OK(ExpectSymbol("("));
      do {
        ColumnDef def;
        RELOPT_ASSIGN_OR_RETURN(def.name, ExpectIdentifier("column name"));
        RELOPT_ASSIGN_OR_RETURN(std::string type_name, ExpectIdentifier("column type"));
        if (!ParseTypeName(type_name, &def.type)) {
          return Error("unknown type '" + type_name + "'");
        }
        stmt->columns.push_back(std::move(def));
      } while (MatchSymbol(","));
      RELOPT_RETURN_NOT_OK(ExpectSymbol(")"));
      return StatementPtr(std::move(stmt));
    }
    if (MatchWord("index")) {
      auto stmt = std::make_unique<CreateIndexStmt>();
      stmt->clustered = clustered;
      RELOPT_ASSIGN_OR_RETURN(stmt->index_name, ExpectIdentifier("index name"));
      RELOPT_RETURN_NOT_OK(ExpectWord("on"));
      RELOPT_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier("table name"));
      RELOPT_RETURN_NOT_OK(ExpectSymbol("("));
      do {
        RELOPT_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
        stmt->columns.push_back(std::move(col));
      } while (MatchSymbol(","));
      RELOPT_RETURN_NOT_OK(ExpectSymbol(")"));
      return StatementPtr(std::move(stmt));
    }
    return Error("expected TABLE or INDEX after CREATE");
  }

  Result<StatementPtr> ParseDrop() {
    RELOPT_RETURN_NOT_OK(ExpectWord("drop"));
    RELOPT_RETURN_NOT_OK(ExpectWord("table"));
    auto stmt = std::make_unique<DropTableStmt>();
    if (Peek().IsWord("if") && Peek(1).IsWord("exists")) {
      Advance();
      Advance();
      stmt->if_exists = true;
    }
    RELOPT_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier("table name"));
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseInsert() {
    RELOPT_RETURN_NOT_OK(ExpectWord("insert"));
    RELOPT_RETURN_NOT_OK(ExpectWord("into"));
    auto stmt = std::make_unique<InsertStmt>();
    RELOPT_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier("table name"));
    if (MatchSymbol("(")) {
      do {
        RELOPT_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
        stmt->columns.push_back(std::move(col));
      } while (MatchSymbol(","));
      RELOPT_RETURN_NOT_OK(ExpectSymbol(")"));
    }
    RELOPT_RETURN_NOT_OK(ExpectWord("values"));
    do {
      RELOPT_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<ExprPtr> row;
      do {
        RELOPT_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression());
        row.push_back(std::move(e));
      } while (MatchSymbol(","));
      RELOPT_RETURN_NOT_OK(ExpectSymbol(")"));
      stmt->rows.push_back(std::move(row));
    } while (MatchSymbol(","));
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseExplain() {
    RELOPT_RETURN_NOT_OK(ExpectWord("explain"));
    auto stmt = std::make_unique<ExplainStmt>();
    stmt->analyze = MatchWord("analyze");
    stmt->trace = MatchWord("trace");
    RELOPT_ASSIGN_OR_RETURN(stmt->inner, ParseSelect());
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseAnalyze() {
    RELOPT_RETURN_NOT_OK(ExpectWord("analyze"));
    auto stmt = std::make_unique<AnalyzeStmt>();
    if (Peek().Is(TokenKind::kIdentifier)) {
      stmt->table_name = Advance().text;
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseDelete() {
    RELOPT_RETURN_NOT_OK(ExpectWord("delete"));
    RELOPT_RETURN_NOT_OK(ExpectWord("from"));
    auto stmt = std::make_unique<DeleteStmt>();
    RELOPT_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier("table name"));
    if (MatchWord("where")) {
      RELOPT_ASSIGN_OR_RETURN(stmt->where, ParseExpression());
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseUpdate() {
    RELOPT_RETURN_NOT_OK(ExpectWord("update"));
    auto stmt = std::make_unique<UpdateStmt>();
    RELOPT_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier("table name"));
    RELOPT_RETURN_NOT_OK(ExpectWord("set"));
    do {
      RELOPT_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
      RELOPT_RETURN_NOT_OK(ExpectSymbol("="));
      RELOPT_ASSIGN_OR_RETURN(ExprPtr value, ParseExpression());
      stmt->assignments.emplace_back(std::move(col), std::move(value));
    } while (MatchSymbol(","));
    if (MatchWord("where")) {
      RELOPT_ASSIGN_OR_RETURN(stmt->where, ParseExpression());
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseSelect() {
    RELOPT_RETURN_NOT_OK(ExpectWord("select"));
    auto stmt = std::make_unique<SelectStmt>();
    if (MatchWord("distinct")) {
      stmt->distinct = true;
    } else {
      MatchWord("all");
    }

    // Select list.
    do {
      SelectItem item;
      if (Peek().IsSymbol("*")) {
        Advance();
        item.is_star = true;
      } else {
        RELOPT_ASSIGN_OR_RETURN(item.expr, ParseExpression());
        if (MatchWord("as")) {
          RELOPT_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
        } else if (Peek().Is(TokenKind::kIdentifier) && !IsReservedWord(Peek())) {
          item.alias = Advance().text;
        }
      }
      stmt->items.push_back(std::move(item));
    } while (MatchSymbol(","));

    // FROM with comma and JOIN ... ON forms.
    std::vector<ExprPtr> join_conds;
    if (MatchWord("from")) {
      RELOPT_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
      stmt->from.push_back(std::move(first));
      while (true) {
        if (MatchSymbol(",")) {
          RELOPT_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
          stmt->from.push_back(std::move(ref));
          continue;
        }
        bool cross = false;
        if (Peek().IsWord("cross") && Peek(1).IsWord("join")) {
          Advance();
          Advance();
          cross = true;
        } else if (Peek().IsWord("inner") && Peek(1).IsWord("join")) {
          Advance();
          Advance();
        } else if (Peek().IsWord("join")) {
          Advance();
        } else {
          break;
        }
        RELOPT_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
        stmt->from.push_back(std::move(ref));
        if (!cross) {
          RELOPT_RETURN_NOT_OK(ExpectWord("on"));
          RELOPT_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpression());
          join_conds.push_back(std::move(cond));
        }
      }
    }

    if (MatchWord("where")) {
      RELOPT_ASSIGN_OR_RETURN(stmt->where, ParseExpression());
    }
    // Fold ON conditions into WHERE (inner-join semantics).
    for (ExprPtr& cond : join_conds) {
      stmt->where = stmt->where ? MakeAnd(std::move(stmt->where), std::move(cond))
                                : std::move(cond);
    }

    if (MatchWord("group")) {
      RELOPT_RETURN_NOT_OK(ExpectWord("by"));
      do {
        RELOPT_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression());
        stmt->group_by.push_back(std::move(e));
      } while (MatchSymbol(","));
    }
    if (MatchWord("having")) {
      RELOPT_ASSIGN_OR_RETURN(stmt->having, ParseExpression());
    }
    if (MatchWord("order")) {
      RELOPT_RETURN_NOT_OK(ExpectWord("by"));
      do {
        OrderByItem item;
        RELOPT_ASSIGN_OR_RETURN(item.expr, ParseExpression());
        if (MatchWord("desc")) {
          item.desc = true;
        } else {
          MatchWord("asc");
        }
        stmt->order_by.push_back(std::move(item));
      } while (MatchSymbol(","));
    }
    if (MatchWord("limit")) {
      if (!Peek().Is(TokenKind::kIntLiteral)) return Error("expected integer after LIMIT");
      stmt->limit = Advance().int_value;
    }
    return StatementPtr(std::move(stmt));
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    RELOPT_ASSIGN_OR_RETURN(ref.table_name, ExpectIdentifier("table name"));
    if (MatchSymbol("(")) {
      // Table function: `name()` — introspection functions take no arguments.
      if (!MatchSymbol(")")) return Error("table functions take no arguments; expected ')'");
      ref.is_function = true;
    }
    if (MatchWord("as")) {
      RELOPT_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier("alias"));
    } else if (Peek().Is(TokenKind::kIdentifier) && !IsReservedWord(Peek())) {
      ref.alias = Advance().text;
    }
    if (ref.alias.empty()) ref.alias = ref.table_name;
    return ref;
  }

  // ----------------------------------------------------------- expressions

  Result<ExprPtr> ParseExpression() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    RELOPT_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (MatchWord("or")) {
      RELOPT_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = MakeOr(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    RELOPT_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (Peek().IsWord("and")) {
      Advance();
      RELOPT_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = MakeAnd(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (MatchWord("not")) {
      RELOPT_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
      return MakeNot(std::move(child));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    RELOPT_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());

    // IS [NOT] NULL
    if (Peek().IsWord("is")) {
      Advance();
      bool negated = MatchWord("not");
      RELOPT_RETURN_NOT_OK(ExpectWord("null"));
      return ExprPtr(std::make_unique<IsNullExpr>(std::move(left), negated));
    }

    // [NOT] BETWEEN a AND b / [NOT] IN (v, ...)
    bool negate = false;
    if (Peek().IsWord("not") && (Peek(1).IsWord("between") || Peek(1).IsWord("in"))) {
      Advance();
      negate = true;
    }
    if (MatchWord("between")) {
      RELOPT_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      RELOPT_RETURN_NOT_OK(ExpectWord("and"));
      RELOPT_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      ExprPtr ge = MakeComparison(CompareOp::kGe, left->Clone(), std::move(lo));
      ExprPtr le = MakeComparison(CompareOp::kLe, std::move(left), std::move(hi));
      ExprPtr both = MakeAnd(std::move(ge), std::move(le));
      return negate ? MakeNot(std::move(both)) : std::move(both);
    }
    if (MatchWord("in")) {
      RELOPT_RETURN_NOT_OK(ExpectSymbol("("));
      ExprPtr disjunction;
      do {
        RELOPT_ASSIGN_OR_RETURN(ExprPtr v, ParseAdditive());
        ExprPtr eq = MakeComparison(CompareOp::kEq, left->Clone(), std::move(v));
        disjunction = disjunction ? MakeOr(std::move(disjunction), std::move(eq)) : std::move(eq);
      } while (MatchSymbol(","));
      RELOPT_RETURN_NOT_OK(ExpectSymbol(")"));
      return negate ? MakeNot(std::move(disjunction)) : std::move(disjunction);
    }

    // Plain comparison operators.
    CompareOp op;
    if (MatchSymbol("=")) {
      op = CompareOp::kEq;
    } else if (MatchSymbol("<>")) {
      op = CompareOp::kNe;
    } else if (MatchSymbol("<=")) {
      op = CompareOp::kLe;
    } else if (MatchSymbol(">=")) {
      op = CompareOp::kGe;
    } else if (MatchSymbol("<")) {
      op = CompareOp::kLt;
    } else if (MatchSymbol(">")) {
      op = CompareOp::kGt;
    } else {
      return left;
    }
    RELOPT_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    return MakeComparison(op, std::move(left), std::move(right));
  }

  Result<ExprPtr> ParseAdditive() {
    RELOPT_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (true) {
      ArithOp op;
      if (MatchSymbol("+")) {
        op = ArithOp::kAdd;
      } else if (MatchSymbol("-")) {
        op = ArithOp::kSub;
      } else {
        return left;
      }
      RELOPT_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = std::make_unique<ArithmeticExpr>(op, std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    RELOPT_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (true) {
      ArithOp op;
      if (MatchSymbol("*")) {
        op = ArithOp::kMul;
      } else if (MatchSymbol("/")) {
        op = ArithOp::kDiv;
      } else if (MatchSymbol("%")) {
        op = ArithOp::kMod;
      } else {
        return left;
      }
      RELOPT_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = std::make_unique<ArithmeticExpr>(op, std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (MatchSymbol("-")) {
      RELOPT_ASSIGN_OR_RETURN(ExprPtr child, ParseUnary());
      // Fold -literal immediately so negative literals are simple.
      if (child->kind() == ExprKind::kLiteral) {
        const Value& v = static_cast<LiteralExpr*>(child.get())->value();
        if (!v.is_null() && v.type() == TypeId::kInt64) return MakeLiteral(Value::Int(-v.AsInt()));
        if (!v.is_null() && v.type() == TypeId::kDouble) {
          return MakeLiteral(Value::Double(-v.AsDouble()));
        }
      }
      return ExprPtr(std::make_unique<ArithmeticExpr>(ArithOp::kSub,
                                                      MakeLiteral(Value::Int(0)),
                                                      std::move(child)));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.Is(TokenKind::kIntLiteral)) {
      Advance();
      return MakeLiteral(Value::Int(t.int_value));
    }
    if (t.Is(TokenKind::kDoubleLiteral)) {
      Advance();
      return MakeLiteral(Value::Double(t.double_value));
    }
    if (t.Is(TokenKind::kStringLiteral)) {
      Advance();
      return MakeLiteral(Value::String(t.text));
    }
    if (t.IsSymbol("?")) {
      // Positional prepared-statement parameter, numbered in source order.
      Advance();
      return ExprPtr(std::make_unique<ParameterExpr>(param_count_++));
    }
    if (t.IsSymbol("(")) {
      Advance();
      RELOPT_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression());
      RELOPT_RETURN_NOT_OK(ExpectSymbol(")"));
      return e;
    }
    if (t.Is(TokenKind::kIdentifier)) {
      if (t.IsWord("null")) {
        Advance();
        return MakeLiteral(Value::Null());
      }
      if (t.IsWord("true")) {
        Advance();
        return MakeLiteral(Value::Bool(true));
      }
      if (t.IsWord("false")) {
        Advance();
        return MakeLiteral(Value::Bool(false));
      }
      if (t.IsWord("case")) {
        Advance();
        // Simple CASE carries an operand before the first WHEN; it is
        // lowered here into searched form (operand = value per arm) so the
        // binder and both evaluation engines see one CASE shape.
        ExprPtr operand;
        if (!Peek().IsWord("when")) {
          RELOPT_ASSIGN_OR_RETURN(operand, ParseExpression());
        }
        std::vector<ExprPtr> whens, thens;
        while (MatchWord("when")) {
          RELOPT_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpression());
          if (operand != nullptr) {
            cond = MakeComparison(CompareOp::kEq, operand->Clone(), std::move(cond));
          }
          RELOPT_RETURN_NOT_OK(ExpectWord("then"));
          RELOPT_ASSIGN_OR_RETURN(ExprPtr then, ParseExpression());
          whens.push_back(std::move(cond));
          thens.push_back(std::move(then));
        }
        if (whens.empty()) return Error("CASE needs at least one WHEN arm");
        ExprPtr else_expr;
        if (MatchWord("else")) {
          RELOPT_ASSIGN_OR_RETURN(else_expr, ParseExpression());
        }
        RELOPT_RETURN_NOT_OK(ExpectWord("end"));
        return ExprPtr(std::make_unique<CaseExpr>(std::move(whens), std::move(thens),
                                                  std::move(else_expr)));
      }
      // Aggregate call?
      std::optional<AggFunc> agg;
      if (t.IsWord("count")) agg = AggFunc::kCount;
      if (t.IsWord("sum")) agg = AggFunc::kSum;
      if (t.IsWord("min")) agg = AggFunc::kMin;
      if (t.IsWord("max")) agg = AggFunc::kMax;
      if (t.IsWord("avg")) agg = AggFunc::kAvg;
      if (agg.has_value() && Peek(1).IsSymbol("(")) {
        Advance();  // name
        Advance();  // (
        if (*agg == AggFunc::kCount && MatchSymbol("*")) {
          RELOPT_RETURN_NOT_OK(ExpectSymbol(")"));
          return ExprPtr(std::make_unique<AggregateCallExpr>(AggFunc::kCountStar, nullptr));
        }
        RELOPT_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpression());
        RELOPT_RETURN_NOT_OK(ExpectSymbol(")"));
        return ExprPtr(std::make_unique<AggregateCallExpr>(*agg, std::move(arg)));
      }
      // Scalar function call? Names are not reserved: only `ident(` forms a
      // call, so tables/columns may still shadow these names.
      if (Peek(1).IsSymbol("(")) {
        std::string fname = t.text;
        for (char& ch : fname) {
          if (ch >= 'A' && ch <= 'Z') ch = static_cast<char>(ch - 'A' + 'a');
        }
        ScalarFunc sf;
        if (LookupScalarFunc(fname, &sf)) {
          Advance();  // name
          Advance();  // (
          std::vector<ExprPtr> fargs;
          if (!Peek().IsSymbol(")")) {
            do {
              RELOPT_ASSIGN_OR_RETURN(ExprPtr a, ParseExpression());
              fargs.push_back(std::move(a));
            } while (MatchSymbol(","));
          }
          RELOPT_RETURN_NOT_OK(ExpectSymbol(")"));
          return ExprPtr(std::make_unique<FunctionCallExpr>(sf, std::move(fargs)));
        }
      }
      // Column reference: ident or ident.ident. Reserved clause keywords
      // cannot name columns (catches "SELECT FROM t" and friends).
      if (IsReservedWord(t)) {
        return Error("unexpected keyword '" + t.text + "' in expression");
      }
      Advance();
      if (Peek().IsSymbol(".")) {
        Advance();
        RELOPT_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
        return MakeColumnRef(t.text, std::move(col));
      }
      return MakeColumnRef("", t.text);
    }
    return Error("expected an expression, got '" + t.text + "'");
  }

  std::string sql_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  size_t param_count_ = 0;  ///< `?` placeholders seen in the current statement
};

}  // namespace

Result<std::vector<StatementPtr>> ParseScript(const std::string& sql) {
  RELOPT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(sql, std::move(tokens));
  return parser.ParseAll();
}

Result<StatementPtr> ParseStatement(const std::string& sql) {
  RELOPT_ASSIGN_OR_RETURN(std::vector<StatementPtr> stmts, ParseScript(sql));
  if (stmts.size() != 1) {
    return Status::ParseError("expected exactly one statement, got " +
                              std::to_string(stmts.size()));
  }
  return std::move(stmts[0]);
}

}  // namespace relopt
