#include "parser/lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "util/str_util.h"

namespace relopt {

bool Token::IsWord(const char* word) const {
  return kind == TokenKind::kIdentifier && EqualsIgnoreCase(text, word);
}

bool Token::IsSymbol(const char* sym) const {
  return kind == TokenKind::kSymbol && text == sym;
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) || sql[i] == '_')) ++i;
      tok.kind = TokenKind::kIdentifier;
      tok.text = sql.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        if (i >= n || !std::isdigit(static_cast<unsigned char>(sql[i]))) {
          return Status::ParseError("malformed number at offset " + std::to_string(start));
        }
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string text = sql.substr(start, i - start);
      if (is_double) {
        tok.kind = TokenKind::kDoubleLiteral;
        tok.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        errno = 0;
        char* end = nullptr;
        long long v = std::strtoll(text.c_str(), &end, 10);
        if (errno == ERANGE) {
          return Status::ParseError("integer literal out of range at offset " +
                                    std::to_string(start));
        }
        tok.kind = TokenKind::kIntLiteral;
        tok.int_value = v;
      }
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            value += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value += sql[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(tok.position));
      }
      tok.kind = TokenKind::kStringLiteral;
      tok.text = std::move(value);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-char operators first.
    auto two = [&](const char* op) {
      return i + 1 < n && sql[i] == op[0] && sql[i + 1] == op[1];
    };
    tok.kind = TokenKind::kSymbol;
    if (two("<>") || two("!=")) {
      tok.text = "<>";
      i += 2;
    } else if (two("<=")) {
      tok.text = "<=";
      i += 2;
    } else if (two(">=")) {
      tok.text = ">=";
      i += 2;
    } else {
      static const std::string kSingles = "=<>(),;.*+-/%?";
      if (kSingles.find(c) == std::string::npos) {
        return Status::ParseError(std::string("unexpected character '") + c + "' at offset " +
                                  std::to_string(i));
      }
      tok.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace relopt
