// Recursive-descent parser for the engine's SQL subset.
//
// Supported statements:
//   CREATE TABLE t (a INT, b DOUBLE, c TEXT, d BOOL);
//   CREATE [CLUSTERED] INDEX idx ON t (a [, b ...]);
//   INSERT INTO t [(a, b)] VALUES (1, 'x'), (2, 'y');
//   SELECT [*| expr [AS alias], ...] FROM t [AS] a [, u | JOIN u ON cond]
//     [WHERE cond] [GROUP BY e, ...] [HAVING cond]
//     [ORDER BY e [ASC|DESC], ...] [LIMIT n];
//   EXPLAIN [ANALYZE] SELECT ...;
//   ANALYZE [t];
//   DELETE FROM t [WHERE cond];
//
// Expression grammar (precedence low to high):
//   OR | AND | NOT | comparison / BETWEEN / IN / IS [NOT] NULL
//   | + - | * / % | unary - | literal, column, (expr), agg(...)
//
// Inner JOIN ... ON is normalized into the FROM list plus WHERE conjuncts
// (the optimizer re-derives the join graph; inner-join semantics are
// unchanged).
#pragma once

#include <vector>

#include "parser/ast.h"
#include "parser/lexer.h"
#include "util/result.h"

namespace relopt {

/// Parses a semicolon-separated script into statements.
Result<std::vector<StatementPtr>> ParseScript(const std::string& sql);

/// Parses exactly one statement (trailing semicolon optional).
Result<StatementPtr> ParseStatement(const std::string& sql);

}  // namespace relopt
