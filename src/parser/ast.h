// Parsed statement AST. Expressions reuse expr/Expression (unbound).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "expr/expression.h"
#include "types/type.h"

namespace relopt {

enum class StatementKind {
  kCreateTable,
  kCreateIndex,
  kDropTable,
  kInsert,
  kSelect,
  kExplain,
  kAnalyze,
  kDelete,
  kUpdate,
};

/// Base class of all parsed statements.
struct Statement {
  explicit Statement(StatementKind kind_in) : kind(kind_in) {}
  virtual ~Statement() = default;
  StatementKind kind;
  std::string text;  ///< this statement's source text (query-history records)
  /// Number of `?` parameter placeholders (positional, in source order).
  /// Non-zero only for statements prepared through Session::Prepare.
  size_t num_parameters = 0;
};

using StatementPtr = std::unique_ptr<Statement>;

struct ColumnDef {
  std::string name;
  TypeId type;
};

struct CreateTableStmt : Statement {
  CreateTableStmt() : Statement(StatementKind::kCreateTable) {}
  std::string table_name;
  std::vector<ColumnDef> columns;
};

struct CreateIndexStmt : Statement {
  CreateIndexStmt() : Statement(StatementKind::kCreateIndex) {}
  std::string index_name;
  std::string table_name;
  std::vector<std::string> columns;
  bool clustered = false;
};

struct DropTableStmt : Statement {
  DropTableStmt() : Statement(StatementKind::kDropTable) {}
  std::string table_name;
  bool if_exists = false;
};

struct InsertStmt : Statement {
  InsertStmt() : Statement(StatementKind::kInsert) {}
  std::string table_name;
  /// Optional explicit column list; empty = table order.
  std::vector<std::string> columns;
  /// One expression list per VALUES row (literals after folding).
  std::vector<std::vector<ExprPtr>> rows;
};

/// One item of the SELECT list. `is_star` covers the bare `*`.
struct SelectItem {
  ExprPtr expr;        // null when is_star
  std::string alias;   // empty unless AS given
  bool is_star = false;
};

/// A base-table or table-function reference in FROM, possibly aliased.
struct TableRef {
  std::string table_name;
  std::string alias;  // defaults to table_name
  bool is_function = false;  // true for `name()` (e.g. relopt_metrics())

  const std::string& EffectiveName() const { return alias.empty() ? table_name : alias; }
};

struct OrderByItem {
  ExprPtr expr;
  bool desc = false;
};

struct SelectStmt : Statement {
  SelectStmt() : Statement(StatementKind::kSelect) {}
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;          // empty = SELECT of constants
  ExprPtr where;                       // null if absent; JOIN ... ON folds in
  std::vector<ExprPtr> group_by;
  ExprPtr having;                      // null if absent
  std::vector<OrderByItem> order_by;
  std::optional<int64_t> limit;
};

struct ExplainStmt : Statement {
  ExplainStmt() : Statement(StatementKind::kExplain) {}
  StatementPtr inner;   // the SELECT being explained
  bool analyze = false; // EXPLAIN ANALYZE: run and report actual rows/IO
  bool trace = false;   // EXPLAIN TRACE: include the optimizer decision log
};

struct AnalyzeStmt : Statement {
  AnalyzeStmt() : Statement(StatementKind::kAnalyze) {}
  /// Empty = every table.
  std::string table_name;
};

struct DeleteStmt : Statement {
  DeleteStmt() : Statement(StatementKind::kDelete) {}
  std::string table_name;
  ExprPtr where;  // null = delete all rows
};

struct UpdateStmt : Statement {
  UpdateStmt() : Statement(StatementKind::kUpdate) {}
  std::string table_name;
  /// SET column = expression assignments; expressions may reference the
  /// row's old values.
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // null = update all rows
};

}  // namespace relopt
