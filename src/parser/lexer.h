// SQL lexer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace relopt {

enum class TokenKind {
  kIdentifier,   // foo, foo_bar (also keywords; the parser matches text)
  kIntLiteral,   // 42
  kDoubleLiteral,  // 3.5, 1e-3
  kStringLiteral,  // 'abc' (quotes stripped, '' unescaped)
  kSymbol,       // punctuation/operator, text holds it: = <> < <= > >= ( ) , ; . * + - / % ?
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;        // identifier/symbol text (identifiers keep case)
  int64_t int_value = 0;
  double double_value = 0;
  size_t position = 0;     // byte offset, for error messages

  bool Is(TokenKind k) const { return kind == k; }
  /// Case-insensitive keyword/identifier match.
  bool IsWord(const char* word) const;
  bool IsSymbol(const char* sym) const;
};

/// Tokenizes `sql`; the final token is always kEnd.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace relopt
