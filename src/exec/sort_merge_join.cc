#include "exec/sort_merge_join.h"

namespace relopt {

Status SortMergeJoinExecutor::InitImpl() {
  RELOPT_RETURN_NOT_OK(left_->Init());
  RELOPT_RETURN_NOT_OK(right_->Init());
  have_left_ = have_right_ = false;
  right_done_ = false;
  group_.clear();
  group_key_.clear();
  group_idx_ = 0;
  emitting_ = false;
  ResetCounters();
  // Prime both sides (skipping NULL-key rows).
  RELOPT_ASSIGN_OR_RETURN(have_left_, AdvanceLeft());
  RELOPT_ASSIGN_OR_RETURN(have_right_, AdvanceRight());
  return Status::OK();
}

Result<bool> SortMergeJoinExecutor::AdvanceLeft() {
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(bool has, left_->Next(&left_tuple_));
    if (!has) return false;
    if (!HasNullKey(left_tuple_, left_keys_)) return true;
  }
}

Result<bool> SortMergeJoinExecutor::AdvanceRight() {
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(bool has, right_->Next(&right_tuple_));
    if (!has) {
      right_done_ = true;
      return false;
    }
    if (!HasNullKey(right_tuple_, right_keys_)) return true;
  }
}

bool SortMergeJoinExecutor::HasNullKey(const Tuple& t, const std::vector<size_t>& keys) {
  for (size_t k : keys) {
    if (t.At(k).is_null()) return true;
  }
  return false;
}

Result<int> SortMergeJoinExecutor::CompareKeys(const Tuple& l, const Tuple& r) const {
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    RELOPT_ASSIGN_OR_RETURN(int c, l.At(left_keys_[i]).Compare(r.At(right_keys_[i])));
    if (c != 0) return c;
  }
  return 0;
}

Result<bool> SortMergeJoinExecutor::NextImpl(Tuple* out) {
  while (true) {
    if (emitting_) {
      // Emit left_tuple_ x group_ until the group is exhausted, then advance
      // the left side; if its key still equals the group key, replay.
      while (group_idx_ < group_.size()) {
        Tuple combined = Tuple::Concat(left_tuple_, group_[group_idx_++]);
        RELOPT_ASSIGN_OR_RETURN(bool pass, PredicatePasses(residual_, combined));
        if (pass) {
          *out = std::move(combined);
          CountRow();
          return true;
        }
      }
      RELOPT_ASSIGN_OR_RETURN(have_left_, AdvanceLeft());
      if (have_left_) {
        // Same key as the group? Replay the group for this left row.
        bool same = true;
        for (size_t i = 0; i < left_keys_.size() && same; ++i) {
          RELOPT_ASSIGN_OR_RETURN(int c, left_tuple_.At(left_keys_[i]).Compare(group_key_[i]));
          same = (c == 0);
        }
        if (same) {
          group_idx_ = 0;
          continue;
        }
      }
      emitting_ = false;
      group_.clear();
      group_key_.clear();
      continue;
    }

    if (!have_left_ || (!have_right_ && right_done_)) return false;
    if (!have_right_) return false;

    RELOPT_ASSIGN_OR_RETURN(int c, CompareKeys(left_tuple_, right_tuple_));
    if (c < 0) {
      RELOPT_ASSIGN_OR_RETURN(have_left_, AdvanceLeft());
      if (!have_left_) return false;
      continue;
    }
    if (c > 0) {
      RELOPT_ASSIGN_OR_RETURN(have_right_, AdvanceRight());
      if (!have_right_) return false;
      continue;
    }
    // Equal: buffer the whole right group with this key.
    group_.clear();
    group_key_.clear();
    for (size_t k : right_keys_) group_key_.push_back(right_tuple_.At(k));
    group_.push_back(right_tuple_);
    while (true) {
      RELOPT_ASSIGN_OR_RETURN(have_right_, AdvanceRight());
      if (!have_right_) break;
      RELOPT_ASSIGN_OR_RETURN(int same, CompareKeys(left_tuple_, right_tuple_));
      if (same != 0) break;
      group_.push_back(right_tuple_);
    }
    group_idx_ = 0;
    emitting_ = true;
  }
}

}  // namespace relopt
