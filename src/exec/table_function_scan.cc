#include "exec/table_function_scan.h"

#include "engine/table_functions.h"

namespace relopt {

Status TableFunctionScanExecutor::InitImpl() {
  RELOPT_ASSIGN_OR_RETURN(rows_,
                          EvalTableFunction(function_name_, ctx_->metrics_registry(),
                                            ctx_->query_history(), ctx_->plan_cache(),
                                            ctx_->feedback_store()));
  pos_ = 0;
  ResetCounters();
  return Status::OK();
}

Result<bool> TableFunctionScanExecutor::NextImpl(Tuple* out) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  CountRow();
  return true;
}

}  // namespace relopt
