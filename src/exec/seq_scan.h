// Sequential scan over a base table's heap.
#pragma once

#include "exec/executor.h"

namespace relopt {

class SeqScanExecutor : public Executor {
 public:
  /// `schema` is the alias-qualified output schema.
  SeqScanExecutor(ExecContext* ctx, Schema schema, TableInfo* table);

  Status InitImpl() override;
  Result<bool> NextImpl(Tuple* out) override;
  Result<bool> NextBatchImpl(TupleBatch* out) override;

 private:
  TableInfo* table_;
  // View-based iterator: one pool access + latch per page (held across Next
  // calls), records deserialized straight from the pinned frame with no
  // per-row byte-buffer copy. Both row and batch drive modes share it, so
  // their page I/O is identical.
  HeapFile::ViewIterator iter_;
};

}  // namespace relopt
