// Sequential scan over a base table's heap.
#pragma once

#include "exec/executor.h"

namespace relopt {

class SeqScanExecutor : public Executor {
 public:
  /// `schema` is the alias-qualified output schema.
  SeqScanExecutor(ExecContext* ctx, Schema schema, TableInfo* table);

  Status InitImpl() override;
  Result<bool> NextImpl(Tuple* out) override;

 private:
  TableInfo* table_;
  HeapFile::Iterator iter_;
};

}  // namespace relopt
