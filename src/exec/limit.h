// Limit executor.
#pragma once

#include "exec/executor.h"

namespace relopt {

class LimitExecutor : public Executor {
 public:
  LimitExecutor(ExecContext* ctx, ExecutorPtr child, int64_t limit)
      : Executor(ctx, child->schema()), child_(std::move(child)), limit_(limit) {}

  Status InitImpl() override {
    emitted_ = 0;
    ResetCounters();
    return child_->Init();
  }

  Result<bool> NextImpl(Tuple* out) override {
    if (emitted_ >= limit_) return false;
    RELOPT_ASSIGN_OR_RETURN(bool has, child_->Next(out));
    if (!has) return false;
    ++emitted_;
    CountRow();
    return true;
  }

  /// Batch path: pass the child batch through, truncating the selection when
  /// it crosses the limit (the batch-boundary case LIMIT must get right).
  /// Stops pulling the child once the limit is reached, like the row path.
  /// The batch handed down is capped to the remaining row count so producers
  /// that pay per appended row (external-sort merge) stop at the limit and
  /// page I/O stays identical to row mode; batch-capacity caps propagate
  /// through in-place operators (Filter) and batch-copying ones (Project).
  Result<bool> NextBatchImpl(TupleBatch* out) override {
    if (emitted_ >= limit_) return false;
    const size_t full_capacity = out->capacity();
    const int64_t remaining = limit_ - emitted_;
    if (remaining < static_cast<int64_t>(full_capacity)) {
      out->SetCapacity(static_cast<size_t>(remaining));
    }
    Result<bool> child_has = child_->NextBatch(out);
    out->SetCapacity(full_capacity);
    RELOPT_ASSIGN_OR_RETURN(bool has, std::move(child_has));
    if (static_cast<int64_t>(out->NumSelected()) > remaining) {
      out->TruncateSelection(static_cast<size_t>(remaining));
    }
    emitted_ += static_cast<int64_t>(out->NumSelected());
    CountRows(out->NumSelected());
    return has && emitted_ < limit_;
  }

 private:
  ExecutorPtr child_;
  int64_t limit_;
  int64_t emitted_ = 0;
};

}  // namespace relopt
