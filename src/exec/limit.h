// Limit executor.
#pragma once

#include "exec/executor.h"

namespace relopt {

class LimitExecutor : public Executor {
 public:
  LimitExecutor(ExecContext* ctx, ExecutorPtr child, int64_t limit)
      : Executor(ctx, child->schema()), child_(std::move(child)), limit_(limit) {}

  Status InitImpl() override {
    emitted_ = 0;
    ResetCounters();
    return child_->Init();
  }

  Result<bool> NextImpl(Tuple* out) override {
    if (emitted_ >= limit_) return false;
    RELOPT_ASSIGN_OR_RETURN(bool has, child_->Next(out));
    if (!has) return false;
    ++emitted_;
    CountRow();
    return true;
  }

 private:
  ExecutorPtr child_;
  int64_t limit_;
  int64_t emitted_ = 0;
};

}  // namespace relopt
