// Index range scan: B+tree iterator + heap fetch + residual predicate.
#pragma once

#include <optional>

#include "exec/executor.h"

namespace relopt {

class IndexScanExecutor : public Executor {
 public:
  /// Bounds are encoded composite key prefixes (see types/key_codec.h);
  /// nullopt = open. `residual` (optional, bound to `schema`) is re-checked
  /// on every fetched row.
  IndexScanExecutor(ExecContext* ctx, Schema schema, TableInfo* table, IndexInfo* index,
                    std::optional<std::string> lo, bool lo_inclusive,
                    std::optional<std::string> hi, bool hi_inclusive, const Expression* residual);

  Status InitImpl() override;
  Result<bool> NextImpl(Tuple* out) override;

 private:
  TableInfo* table_;
  IndexInfo* index_;
  std::optional<std::string> lo_;
  bool lo_inclusive_;
  std::optional<std::string> hi_;
  bool hi_inclusive_;
  const Expression* residual_;
  std::optional<BTree::Iterator> iter_;
};

}  // namespace relopt
