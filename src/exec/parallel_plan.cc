#include "exec/parallel_plan.h"

#include <unordered_map>

#include "exec/filter.h"
#include "exec/gather.h"
#include "exec/morsel_scan.h"
#include "exec/parallel_aggregate.h"
#include "exec/parallel_hash_join.h"
#include "exec/project.h"

namespace relopt {

bool SubtreeParallelizable(const PhysicalNode& plan) {
  switch (plan.kind()) {
    case PhysicalNodeKind::kSeqScan:
      return true;
    case PhysicalNodeKind::kFilter:
    case PhysicalNodeKind::kProject:
      return SubtreeParallelizable(*plan.child(0));
    case PhysicalNodeKind::kHashJoin:
      return SubtreeParallelizable(*plan.child(0)) && SubtreeParallelizable(*plan.child(1));
    case PhysicalNodeKind::kAggregate:
      return SubtreeParallelizable(*plan.child(0));
    default:
      return false;
  }
}

namespace {

/// Shared-state registry spanning the per-worker fragment builds: the first
/// worker to reach a plan node creates its shared state, later workers reuse
/// it, so all clones of one scan pull from one morsel cursor and all clones
/// of one join meet at one barrier.
struct FragmentBuildState {
  std::unordered_map<const PhysicalNode*, std::shared_ptr<MorselSource>> morsels;
  std::unordered_map<const PhysicalNode*, std::shared_ptr<SharedHashJoinState>> joins;
  std::unordered_map<const PhysicalNode*, std::shared_ptr<SharedAggregateState>> aggregates;
  std::vector<std::shared_ptr<ParallelSharedState>> all;
};

Result<ExecutorPtr> BuildFragment(ExecContext* ctx, const PhysicalNode* plan, size_t worker_idx,
                                  FragmentBuildState* state) {
  switch (plan->kind()) {
    case PhysicalNodeKind::kSeqScan: {
      const auto* node = static_cast<const PhysSeqScan*>(plan);
      std::shared_ptr<MorselSource>& src = state->morsels[plan];
      if (src == nullptr) {
        RELOPT_ASSIGN_OR_RETURN(TableInfo * table, ctx->catalog()->GetTable(node->table_name()));
        src = std::make_shared<MorselSource>(table->heap());
        state->all.push_back(src);
      }
      auto exec = std::make_unique<MorselScanExecutor>(ctx, node->schema(), src.get());
      ctx->RegisterExecutor(plan, exec.get());
      return ExecutorPtr(std::move(exec));
    }
    case PhysicalNodeKind::kFilter: {
      const auto* node = static_cast<const PhysFilter*>(plan);
      RELOPT_ASSIGN_OR_RETURN(ExecutorPtr child,
                              BuildFragment(ctx, node->child(0), worker_idx, state));
      auto exec = std::make_unique<FilterExecutor>(ctx, std::move(child), node->predicate());
      ctx->RegisterExecutor(plan, exec.get());
      return ExecutorPtr(std::move(exec));
    }
    case PhysicalNodeKind::kProject: {
      const auto* node = static_cast<const PhysProject*>(plan);
      RELOPT_ASSIGN_OR_RETURN(ExecutorPtr child,
                              BuildFragment(ctx, node->child(0), worker_idx, state));
      auto exec = std::make_unique<ProjectExecutor>(ctx, node->schema(), std::move(child),
                                                    &node->exprs());
      ctx->RegisterExecutor(plan, exec.get());
      return ExecutorPtr(std::move(exec));
    }
    case PhysicalNodeKind::kHashJoin: {
      const auto* node = static_cast<const PhysHashJoin*>(plan);
      RELOPT_ASSIGN_OR_RETURN(ExecutorPtr build,
                              BuildFragment(ctx, node->child(0), worker_idx, state));
      RELOPT_ASSIGN_OR_RETURN(ExecutorPtr probe,
                              BuildFragment(ctx, node->child(1), worker_idx, state));
      std::shared_ptr<SharedHashJoinState>& shared = state->joins[plan];
      if (shared == nullptr) {
        shared = std::make_shared<SharedHashJoinState>(ctx->parallelism());
        state->all.push_back(shared);
      }
      auto exec = std::make_unique<ParallelHashJoinWorker>(
          ctx, std::move(build), std::move(probe), node->build_keys(), node->probe_keys(),
          node->residual(), node->output_probe_first(), shared, worker_idx);
      ctx->RegisterExecutor(plan, exec.get());
      return ExecutorPtr(std::move(exec));
    }
    case PhysicalNodeKind::kAggregate: {
      const auto* node = static_cast<const PhysAggregate*>(plan);
      RELOPT_ASSIGN_OR_RETURN(ExecutorPtr child,
                              BuildFragment(ctx, node->child(0), worker_idx, state));
      std::shared_ptr<SharedAggregateState>& shared = state->aggregates[plan];
      if (shared == nullptr) {
        shared = std::make_shared<SharedAggregateState>(ctx->parallelism());
        state->all.push_back(shared);
      }
      std::vector<const Expression*> group_exprs;
      for (const ExprPtr& g : node->group_by()) group_exprs.push_back(g.get());
      std::vector<AggSpecExec> aggs;
      for (const PhysAggregate::Agg& a : node->aggs()) {
        aggs.push_back(AggSpecExec{a.func, a.arg.get()});
      }
      auto exec = std::make_unique<ParallelAggregateWorker>(
          ctx, node->schema(), std::move(child), std::move(group_exprs), std::move(aggs), shared,
          worker_idx);
      ctx->RegisterExecutor(plan, exec.get());
      return ExecutorPtr(std::move(exec));
    }
    default:
      return Status::Internal("BuildFragment: node kind is not parallelizable");
  }
}

}  // namespace

Result<ExecutorPtr> BuildGatherExecutor(ExecContext* ctx, const PhysicalNode* plan) {
  const size_t n = ctx->parallelism();
  FragmentBuildState state;
  std::vector<ExecutorPtr> workers;
  workers.reserve(n);
  for (size_t w = 0; w < n; ++w) {
    RELOPT_ASSIGN_OR_RETURN(ExecutorPtr frag, BuildFragment(ctx, plan, w, &state));
    workers.push_back(std::move(frag));
  }
  return ExecutorPtr(std::make_unique<GatherExecutor>(ctx, plan->schema(), std::move(workers),
                                                      std::move(state.all)));
}

}  // namespace relopt
