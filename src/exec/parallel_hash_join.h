// Partitioned parallel hash join: workers partition the build side into
// per-worker buckets, a barrier, each worker builds one partition's hash
// table, a barrier, then all workers probe the shared read-only tables.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/gather.h"
#include "exec/hash_join.h"
#include "util/thread_pool.h"

namespace relopt {

/// \brief State shared by the workers of one parallel hash join.
///
/// Layout: `partitions[w][p]` holds the (key, row) pairs worker `w` routed to
/// partition `p` while draining its build fragment; after the first barrier,
/// worker `k` folds column `k` of that matrix into `tables[k]`. After the
/// second barrier every table is read-only and safely probed lock-free. The
/// number of partitions equals the number of workers.
///
/// The parallel join is in-memory only: there is no Grace spill under
/// parallelism (the serial HashJoinExecutor still spills at parallelism 1).
class SharedHashJoinState : public ParallelSharedState {
 public:
  using KeyedRow = std::pair<std::string, Tuple>;
  using HashTable = std::unordered_multimap<std::string, Tuple>;

  explicit SharedHashJoinState(size_t num_workers)
      : num_workers_(num_workers), barrier_(num_workers) {}

  /// Clears partitions, tables, and the error slot. Called by the Gather on
  /// the coordinating thread; no worker may be running.
  void Reset() override {
    partitions_.assign(num_workers_, std::vector<std::vector<KeyedRow>>(num_workers_));
    tables_.assign(num_workers_, HashTable{});
    failed_.store(false, std::memory_order_relaxed);
    first_error_ = Status::OK();
  }

  size_t num_workers() const { return num_workers_; }
  Barrier& barrier() { return barrier_; }

  std::vector<std::vector<KeyedRow>>& worker_partitions(size_t w) { return partitions_[w]; }
  std::vector<KeyedRow>& partition(size_t w, size_t p) { return partitions_[w][p]; }
  HashTable& table(size_t p) { return tables_[p]; }

  /// Records the first error any worker hits; later errors are dropped.
  void RecordError(const Status& st) {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!failed_.load(std::memory_order_relaxed)) {
      first_error_ = st;
      failed_.store(true, std::memory_order_release);
    }
  }
  bool failed() const { return failed_.load(std::memory_order_acquire); }
  /// Only meaningful after a barrier following the RecordError calls.
  Status first_error() const {
    std::lock_guard<std::mutex> lock(error_mu_);
    return first_error_;
  }

 private:
  const size_t num_workers_;
  Barrier barrier_;
  std::vector<std::vector<std::vector<KeyedRow>>> partitions_;
  std::vector<HashTable> tables_;

  std::atomic<bool> failed_{false};
  mutable std::mutex error_mu_;
  Status first_error_;
};

/// \brief One worker of a partitioned parallel hash join.
///
/// Init is SPMD: every sibling must reach both barriers on every path
/// (including error paths), so errors are parked in the shared state and
/// re-raised after the second barrier. Exactly `num_workers` siblings must be
/// running concurrently — the fragment builder and Gather guarantee this.
class ParallelHashJoinWorker : public Executor {
 public:
  ParallelHashJoinWorker(ExecContext* ctx, ExecutorPtr build, ExecutorPtr probe,
                         std::vector<size_t> build_keys, std::vector<size_t> probe_keys,
                         const Expression* residual, bool output_probe_first,
                         std::shared_ptr<SharedHashJoinState> shared, size_t worker_idx);

  Status InitImpl() override;
  Result<bool> NextImpl(Tuple* out) override;
  Result<bool> NextBatchImpl(TupleBatch* out) override;

  void Abandon() override {
    build_->Abandon();
    probe_->Abandon();
  }

 private:
  /// Drains this worker's build fragment, routing rows into
  /// `shared_->partition(worker_idx_, hash(key) % P)`. Under batch drive the
  /// fragment is drained batch-at-a-time with batched key encoding.
  Status PartitionBuildSide();
  /// Folds partition column `worker_idx_` into `shared_->table(worker_idx_)`.
  void BuildTable();

  ExecutorPtr build_;
  ExecutorPtr probe_;
  std::vector<size_t> build_keys_;
  std::vector<size_t> probe_keys_;
  const Expression* residual_;
  bool output_probe_first_;
  std::shared_ptr<SharedHashJoinState> shared_;
  size_t worker_idx_;

  std::hash<std::string> hasher_;
  Tuple probe_tuple_;
  std::vector<const Tuple*> matches_;
  size_t match_idx_ = 0;

  // Batched probe state, mirroring the serial join: probe keys are encoded
  // for the whole batch up front, then each row's match list is drained.
  TupleBatch probe_batch_;
  std::vector<std::optional<std::string>> batch_keys_;
  size_t probe_pos_ = 0;
  bool probe_done_ = false;
  const Tuple* batch_probe_row_ = nullptr;
};

}  // namespace relopt
