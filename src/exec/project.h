// Projection executor: evaluates output expressions per row.
#pragma once

#include <algorithm>

#include "exec/executor.h"
#include "expr/vector_eval.h"

namespace relopt {

class ProjectExecutor : public Executor {
 public:
  ProjectExecutor(ExecContext* ctx, Schema out_schema, ExecutorPtr child,
                  const std::vector<ExprPtr>* exprs)
      : Executor(ctx, std::move(out_schema)),
        child_(std::move(child)),
        exprs_(exprs),
        projector_(exprs),
        in_batch_(ctx->batch_size()) {}

  Status InitImpl() override {
    ResetCounters();
    return child_->Init();
  }

  Result<bool> NextImpl(Tuple* out) override {
    Tuple in;
    RELOPT_ASSIGN_OR_RETURN(bool has, child_->Next(&in));
    if (!has) return false;
    std::vector<Value> values;
    values.reserve(exprs_->size());
    for (const ExprPtr& e : *exprs_) {
      RELOPT_ASSIGN_OR_RETURN(Value v, e->Eval(in));
      values.push_back(std::move(v));
    }
    *out = Tuple(std::move(values));
    CountRow();
    return true;
  }

  /// Batch path: pull one child batch and project its selected rows into
  /// reusable output slots. in_batch_ and out share the context batch size,
  /// so the projection always fits. When a parent (LIMIT) caps `out` below
  /// that, the cap is forwarded to the child so producers stop early too.
  Result<bool> NextBatchImpl(TupleBatch* out) override {
    in_batch_.SetCapacity(std::min(ctx_->batch_size(), out->capacity()));
    RELOPT_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&in_batch_));
    RELOPT_RETURN_NOT_OK(projector_.Project(in_batch_, out, &stats_.fallback_rows));
    CountRows(out->NumSelected());
    return has;
  }

  void Abandon() override { child_->Abandon(); }

 private:
  ExecutorPtr child_;
  const std::vector<ExprPtr>* exprs_;
  BatchProjector projector_;  ///< compiled column-wise kernels (batch drive)
  TupleBatch in_batch_;  ///< reusable child-output batch (batch drive only)
};

}  // namespace relopt
