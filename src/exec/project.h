// Projection executor: evaluates output expressions per row.
#pragma once

#include "exec/executor.h"

namespace relopt {

class ProjectExecutor : public Executor {
 public:
  ProjectExecutor(ExecContext* ctx, Schema out_schema, ExecutorPtr child,
                  const std::vector<ExprPtr>* exprs)
      : Executor(ctx, std::move(out_schema)), child_(std::move(child)), exprs_(exprs) {}

  Status InitImpl() override {
    ResetCounters();
    return child_->Init();
  }

  Result<bool> NextImpl(Tuple* out) override {
    Tuple in;
    RELOPT_ASSIGN_OR_RETURN(bool has, child_->Next(&in));
    if (!has) return false;
    std::vector<Value> values;
    values.reserve(exprs_->size());
    for (const ExprPtr& e : *exprs_) {
      RELOPT_ASSIGN_OR_RETURN(Value v, e->Eval(in));
      values.push_back(std::move(v));
    }
    *out = Tuple(std::move(values));
    CountRow();
    return true;
  }

 private:
  ExecutorPtr child_;
  const std::vector<ExprPtr>* exprs_;
};

}  // namespace relopt
