// Tuple-at-a-time nested loop join (the 1977 baseline join method).
#pragma once

#include "exec/executor.h"

namespace relopt {

/// For every outer row, re-initializes and scans the whole inner input. The
/// inner child's re-scan really re-reads pages, so measured I/O matches the
/// classic N_outer * P_inner cost shape.
class NestedLoopJoinExecutor : public Executor {
 public:
  NestedLoopJoinExecutor(ExecContext* ctx, ExecutorPtr outer, ExecutorPtr inner,
                         const Expression* predicate)
      : Executor(ctx, Schema::Concat(outer->schema(), inner->schema())),
        outer_(std::move(outer)),
        inner_(std::move(inner)),
        predicate_(predicate) {}

  Status InitImpl() override;
  Result<bool> NextImpl(Tuple* out) override;

 private:
  ExecutorPtr outer_;
  ExecutorPtr inner_;
  const Expression* predicate_;
  Tuple outer_tuple_;
  bool have_outer_ = false;
};

}  // namespace relopt
