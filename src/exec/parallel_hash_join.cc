#include "exec/parallel_hash_join.h"

namespace relopt {

ParallelHashJoinWorker::ParallelHashJoinWorker(ExecContext* ctx, ExecutorPtr build,
                                              ExecutorPtr probe, std::vector<size_t> build_keys,
                                              std::vector<size_t> probe_keys,
                                              const Expression* residual, bool output_probe_first,
                                              std::shared_ptr<SharedHashJoinState> shared,
                                              size_t worker_idx)
    : Executor(ctx, output_probe_first ? Schema::Concat(probe->schema(), build->schema())
                                       : Schema::Concat(build->schema(), probe->schema())),
      build_(std::move(build)),
      probe_(std::move(probe)),
      build_keys_(std::move(build_keys)),
      probe_keys_(std::move(probe_keys)),
      residual_(residual),
      output_probe_first_(output_probe_first),
      shared_(std::move(shared)),
      worker_idx_(worker_idx) {}

Status ParallelHashJoinWorker::PartitionBuildSide() {
  const size_t num_parts = shared_->num_workers();
  std::vector<std::vector<SharedHashJoinState::KeyedRow>>& mine =
      shared_->worker_partitions(worker_idx_);
  RELOPT_RETURN_NOT_OK(build_->Init());
  Tuple t;
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(bool has, build_->Next(&t));
    if (!has) break;
    RELOPT_ASSIGN_OR_RETURN(std::optional<std::string> key, JoinKeyOf(t, build_keys_));
    if (!key.has_value()) continue;  // NULL keys never match
    size_t p = hasher_(*key) % num_parts;
    mine[p].emplace_back(std::move(*key), std::move(t));
  }
  return Status::OK();
}

void ParallelHashJoinWorker::BuildTable() {
  SharedHashJoinState::HashTable& table = shared_->table(worker_idx_);
  size_t total = 0;
  for (size_t w = 0; w < shared_->num_workers(); ++w) {
    total += shared_->partition(w, worker_idx_).size();
  }
  table.reserve(total);
  for (size_t w = 0; w < shared_->num_workers(); ++w) {
    std::vector<SharedHashJoinState::KeyedRow>& rows = shared_->partition(w, worker_idx_);
    for (SharedHashJoinState::KeyedRow& kr : rows) {
      table.emplace(std::move(kr.first), std::move(kr.second));
    }
    rows.clear();
    rows.shrink_to_fit();
  }
}

Status ParallelHashJoinWorker::InitImpl() {
  matches_.clear();
  match_idx_ = 0;
  ResetCounters();

  // SPMD discipline: park errors in the shared state and hit both barriers
  // unconditionally, or a sibling deadlocks waiting for us.
  Status st = PartitionBuildSide();
  if (!st.ok()) shared_->RecordError(st);
  shared_->barrier().ArriveAndWait();  // all build rows partitioned

  if (!shared_->failed()) BuildTable();
  shared_->barrier().ArriveAndWait();  // all tables built; read-only from here

  if (shared_->failed()) return shared_->first_error();
  return probe_->Init();
}

Result<bool> ParallelHashJoinWorker::NextImpl(Tuple* out) {
  const size_t num_parts = shared_->num_workers();
  while (true) {
    while (match_idx_ < matches_.size()) {
      Tuple combined = output_probe_first_ ? Tuple::Concat(probe_tuple_, *matches_[match_idx_++])
                                           : Tuple::Concat(*matches_[match_idx_++], probe_tuple_);
      RELOPT_ASSIGN_OR_RETURN(bool pass, PredicatePasses(residual_, combined));
      if (pass) {
        *out = std::move(combined);
        CountRow();
        return true;
      }
    }
    RELOPT_ASSIGN_OR_RETURN(bool has, probe_->Next(&probe_tuple_));
    if (!has) return false;
    matches_.clear();
    match_idx_ = 0;
    RELOPT_ASSIGN_OR_RETURN(std::optional<std::string> key, JoinKeyOf(probe_tuple_, probe_keys_));
    if (!key.has_value()) continue;
    const SharedHashJoinState::HashTable& table = shared_->table(hasher_(*key) % num_parts);
    auto [lo, hi] = table.equal_range(*key);
    for (auto it = lo; it != hi; ++it) matches_.push_back(&it->second);
  }
}

}  // namespace relopt
