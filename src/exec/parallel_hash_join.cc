#include "exec/parallel_hash_join.h"

#include "expr/vector_eval.h"

namespace relopt {

ParallelHashJoinWorker::ParallelHashJoinWorker(ExecContext* ctx, ExecutorPtr build,
                                              ExecutorPtr probe, std::vector<size_t> build_keys,
                                              std::vector<size_t> probe_keys,
                                              const Expression* residual, bool output_probe_first,
                                              std::shared_ptr<SharedHashJoinState> shared,
                                              size_t worker_idx)
    : Executor(ctx, output_probe_first ? Schema::Concat(probe->schema(), build->schema())
                                       : Schema::Concat(build->schema(), probe->schema())),
      build_(std::move(build)),
      probe_(std::move(probe)),
      build_keys_(std::move(build_keys)),
      probe_keys_(std::move(probe_keys)),
      residual_(residual),
      output_probe_first_(output_probe_first),
      shared_(std::move(shared)),
      worker_idx_(worker_idx),
      probe_batch_(ctx->batch_size()) {}

Status ParallelHashJoinWorker::PartitionBuildSide() {
  const size_t num_parts = shared_->num_workers();
  std::vector<std::vector<SharedHashJoinState::KeyedRow>>& mine =
      shared_->worker_partitions(worker_idx_);
  RELOPT_RETURN_NOT_OK(build_->Init());
  if (ctx_->batch_size() > 0) {
    // Batch drain: one key-encoding loop per batch, then route rows.
    TupleBatch batch(ctx_->batch_size());
    std::vector<std::optional<std::string>> keys;
    while (true) {
      RELOPT_ASSIGN_OR_RETURN(bool has, build_->NextBatch(&batch));
      RELOPT_RETURN_NOT_OK(ComputeJoinKeys(batch, build_keys_, &keys));
      for (size_t k = 0; k < batch.NumSelected(); ++k) {
        if (!keys[k].has_value()) continue;  // NULL keys never match
        Tuple& row = *batch.MutableRowAt(batch.selection()[k]);
        size_t p = hasher_(*keys[k]) % num_parts;
        mine[p].emplace_back(std::move(*keys[k]), std::move(row));
      }
      if (!has) break;
    }
    return Status::OK();
  }
  Tuple t;
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(bool has, build_->Next(&t));
    if (!has) break;
    RELOPT_ASSIGN_OR_RETURN(std::optional<std::string> key, JoinKeyOf(t, build_keys_));
    if (!key.has_value()) continue;  // NULL keys never match
    size_t p = hasher_(*key) % num_parts;
    mine[p].emplace_back(std::move(*key), std::move(t));
  }
  return Status::OK();
}

void ParallelHashJoinWorker::BuildTable() {
  SharedHashJoinState::HashTable& table = shared_->table(worker_idx_);
  size_t total = 0;
  for (size_t w = 0; w < shared_->num_workers(); ++w) {
    total += shared_->partition(w, worker_idx_).size();
  }
  table.reserve(total);
  for (size_t w = 0; w < shared_->num_workers(); ++w) {
    std::vector<SharedHashJoinState::KeyedRow>& rows = shared_->partition(w, worker_idx_);
    for (SharedHashJoinState::KeyedRow& kr : rows) {
      table.emplace(std::move(kr.first), std::move(kr.second));
    }
    rows.clear();
    rows.shrink_to_fit();
  }
}

Status ParallelHashJoinWorker::InitImpl() {
  matches_.clear();
  match_idx_ = 0;
  probe_batch_.Clear();
  batch_keys_.clear();
  probe_pos_ = 0;
  probe_done_ = false;
  batch_probe_row_ = nullptr;
  ResetCounters();

  // SPMD discipline: park errors in the shared state and hit both barriers
  // unconditionally, or a sibling deadlocks waiting for us.
  Status st = PartitionBuildSide();
  if (!st.ok()) shared_->RecordError(st);
  shared_->barrier().ArriveAndWait();  // all build rows partitioned

  if (!shared_->failed()) BuildTable();
  shared_->barrier().ArriveAndWait();  // all tables built; read-only from here

  if (shared_->failed()) return shared_->first_error();
  return probe_->Init();
}

Result<bool> ParallelHashJoinWorker::NextImpl(Tuple* out) {
  const size_t num_parts = shared_->num_workers();
  while (true) {
    while (match_idx_ < matches_.size()) {
      Tuple combined = output_probe_first_ ? Tuple::Concat(probe_tuple_, *matches_[match_idx_++])
                                           : Tuple::Concat(*matches_[match_idx_++], probe_tuple_);
      RELOPT_ASSIGN_OR_RETURN(bool pass, PredicatePasses(residual_, combined));
      if (pass) {
        *out = std::move(combined);
        CountRow();
        return true;
      }
    }
    RELOPT_ASSIGN_OR_RETURN(bool has, probe_->Next(&probe_tuple_));
    if (!has) return false;
    matches_.clear();
    match_idx_ = 0;
    RELOPT_ASSIGN_OR_RETURN(std::optional<std::string> key, JoinKeyOf(probe_tuple_, probe_keys_));
    if (!key.has_value()) continue;
    const SharedHashJoinState::HashTable& table = shared_->table(hasher_(*key) % num_parts);
    auto [lo, hi] = table.equal_range(*key);
    for (auto it = lo; it != hi; ++it) matches_.push_back(&it->second);
  }
}

Result<bool> ParallelHashJoinWorker::NextBatchImpl(TupleBatch* out) {
  // Native batch probe, mirroring the serial join's in-memory batch path:
  // refill the probe batch, encode all its keys in one loop, then drain each
  // row's match list into the output batch.
  const size_t num_parts = shared_->num_workers();
  while (true) {
    while (match_idx_ < matches_.size()) {
      if (out->Full()) {
        CountRows(out->NumSelected());
        return true;
      }
      Tuple combined = output_probe_first_
                           ? Tuple::Concat(*batch_probe_row_, *matches_[match_idx_++])
                           : Tuple::Concat(*matches_[match_idx_++], *batch_probe_row_);
      RELOPT_ASSIGN_OR_RETURN(bool pass, PredicatePasses(residual_, combined));
      if (pass) *out->AppendRow() = std::move(combined);
    }
    if (probe_pos_ < probe_batch_.NumSelected()) {
      size_t k = probe_pos_++;
      matches_.clear();
      match_idx_ = 0;
      const std::optional<std::string>& key = batch_keys_[k];
      if (!key.has_value()) continue;  // NULL keys never match
      batch_probe_row_ = &probe_batch_.SelectedRow(k);
      const SharedHashJoinState::HashTable& table = shared_->table(hasher_(*key) % num_parts);
      auto [lo, hi] = table.equal_range(*key);
      for (auto it = lo; it != hi; ++it) matches_.push_back(&it->second);
      continue;
    }
    if (probe_done_) {
      CountRows(out->NumSelected());
      return false;
    }
    RELOPT_ASSIGN_OR_RETURN(bool has, probe_->NextBatch(&probe_batch_));
    if (!has) probe_done_ = true;
    probe_pos_ = 0;
    RELOPT_RETURN_NOT_OK(ComputeJoinKeys(probe_batch_, probe_keys_, &batch_keys_));
  }
}

}  // namespace relopt
