#include "exec/index_nested_loop_join.h"

#include "types/key_codec.h"

namespace relopt {

Status IndexNestedLoopJoinExecutor::InitImpl() {
  RELOPT_RETURN_NOT_OK(outer_->Init());
  have_outer_ = false;
  matches_.clear();
  match_idx_ = 0;
  ResetCounters();
  return Status::OK();
}

Result<bool> IndexNestedLoopJoinExecutor::NextImpl(Tuple* out) {
  while (true) {
    if (!have_outer_ || match_idx_ >= matches_.size()) {
      RELOPT_ASSIGN_OR_RETURN(bool has, outer_->Next(&outer_tuple_));
      if (!has) return false;
      have_outer_ = true;
      // Evaluate the probe key; NULL keys never match (SQL equi-join).
      std::vector<Value> key_values;
      bool null_key = false;
      for (const ExprPtr& e : *outer_key_exprs_) {
        RELOPT_ASSIGN_OR_RETURN(Value v, e->Eval(outer_tuple_));
        if (v.is_null()) {
          null_key = true;
          break;
        }
        key_values.push_back(std::move(v));
      }
      if (null_key) {
        matches_.clear();
        match_idx_ = 0;
        continue;
      }
      std::string enc = EncodeKey(key_values);
      // A probe on a prefix of the index key is a range scan over that
      // prefix; a full-key probe is a point scan.
      std::optional<std::string> hi;
      bool hi_inclusive;
      if (key_values.size() == index_->key_columns.size()) {
        hi = enc;
        hi_inclusive = true;
      } else {
        std::string succ = PrefixSuccessor(enc);
        hi = succ.empty() ? std::nullopt : std::optional<std::string>(std::move(succ));
        hi_inclusive = false;
      }
      RELOPT_ASSIGN_OR_RETURN(BTree::Iterator it,
                              BTree::Iterator::Seek(index_->tree.get(), enc, true, std::move(hi),
                                                    hi_inclusive));
      matches_.clear();
      match_idx_ = 0;
      std::string k;
      Rid rid;
      while (true) {
        RELOPT_ASSIGN_OR_RETURN(bool more, it.Next(&k, &rid));
        if (!more) break;
        matches_.push_back(rid);
      }
    }
    while (match_idx_ < matches_.size()) {
      Rid rid = matches_[match_idx_++];
      RELOPT_ASSIGN_OR_RETURN(Tuple inner_tuple, inner_table_->GetTuple(rid));
      Tuple combined = Tuple::Concat(outer_tuple_, inner_tuple);
      RELOPT_ASSIGN_OR_RETURN(bool pass, PredicatePasses(residual_, combined));
      if (pass) {
        *out = std::move(combined);
        CountRow();
        return true;
      }
    }
  }
}

}  // namespace relopt
