// Values executor: emits literal rows.
#pragma once

#include "exec/executor.h"

namespace relopt {

class ValuesExecutor : public Executor {
 public:
  ValuesExecutor(ExecContext* ctx, Schema schema, const std::vector<Tuple>* rows)
      : Executor(ctx, std::move(schema)), rows_(rows) {}

  Status InitImpl() override {
    pos_ = 0;
    ResetCounters();
    return Status::OK();
  }

  Result<bool> NextImpl(Tuple* out) override {
    if (pos_ >= rows_->size()) return false;
    *out = (*rows_)[pos_++];
    CountRow();
    return true;
  }

 private:
  const std::vector<Tuple>* rows_;
  size_t pos_ = 0;
};

}  // namespace relopt
