// PlanProfile: per-operator estimated-vs-actual snapshot of one execution.
//
// Built after a plan is drained, from the plan tree plus the OperatorStats
// the Executor base maintained (see exec/executor.h). Renders three ways:
//  - ToText(): the EXPLAIN ANALYZE tree (one line per operator, with
//    est_rows / actual_rows / Q-error / self page I/O / inclusive time);
//  - ToJson(): nested machine-readable profile (benchmark dumps);
//  - ToChromeTrace(): a chrome://tracing "trace event" JSON array of complete
//    ("ph":"X") spans, one per operator.
#pragma once

#include <string>
#include <vector>

#include "exec/executor.h"
#include "plan/physical_plan.h"

namespace relopt {

/// The Q-error of a cardinality estimate: max(est/actual, actual/est), with
/// both sides clamped to >= 1 so empty results stay finite. Always >= 1;
/// 1.0 means the estimate was exact.
double QError(double est_rows, double actual_rows);

/// One operator's slice of the profile (estimates + runtime counters).
struct OperatorProfile {
  std::string op;        ///< kind name, e.g. "HashJoin"
  std::string describe;  ///< PhysicalNode::Describe() text
  double est_rows = 0;
  Cost est_cost;
  OperatorStats stats;
  std::vector<OperatorProfile> children;

  double q_error() const { return QError(est_rows, static_cast<double>(stats.rows_produced)); }
};

/// \brief Whole-plan profile: the operator tree with stats snapshots.
struct PlanProfile {
  OperatorProfile root;
  bool valid = false;  ///< false until an execution populated it

  /// EXPLAIN ANALYZE rendering: indented tree, one line per operator.
  std::string ToText() const;
  /// Nested JSON (schema documented in DESIGN.md "Observability").
  std::string ToJson() const;
  /// Chrome trace_event JSON array ({name, ph, ts, dur, pid, tid} objects,
  /// microsecond timestamps) loadable in chrome://tracing.
  std::string ToChromeTrace() const;

  /// Sum of self-attributed page reads over all operators.
  uint64_t TotalPageReads() const;
  /// Sum of self-attributed page writes over all operators.
  uint64_t TotalPageWrites() const;
  /// Sum of self-attributed buffer-pool hits over all operators.
  uint64_t TotalPoolHits() const;
  /// Sum of self-attributed buffer-pool misses over all operators.
  uint64_t TotalPoolMisses() const;
  /// Number of operators in the tree.
  size_t NumOperators() const;
};

/// Snapshots `plan`'s executor stats out of `ctx` (which must still own the
/// executor tree built for `plan`). Nodes with no registered executor get
/// zeroed stats.
PlanProfile BuildPlanProfile(const PhysicalNode& plan, const ExecContext& ctx);

}  // namespace relopt
