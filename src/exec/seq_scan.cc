#include "exec/seq_scan.h"

namespace relopt {

SeqScanExecutor::SeqScanExecutor(ExecContext* ctx, Schema schema, TableInfo* table)
    : Executor(ctx, std::move(schema)), table_(table), iter_(table->heap()) {}

Status SeqScanExecutor::InitImpl() {
  iter_.Reset();
  ResetCounters();
  return Status::OK();
}

Result<bool> SeqScanExecutor::NextImpl(Tuple* out) {
  Rid rid;
  std::string bytes;
  RELOPT_ASSIGN_OR_RETURN(bool has, iter_.Next(&rid, &bytes));
  if (!has) return false;
  RELOPT_ASSIGN_OR_RETURN(*out, Tuple::Deserialize(bytes, schema_.NumColumns()));
  CountRow();
  return true;
}

}  // namespace relopt
