#include "exec/seq_scan.h"

namespace relopt {

SeqScanExecutor::SeqScanExecutor(ExecContext* ctx, Schema schema, TableInfo* table)
    : Executor(ctx, std::move(schema)), table_(table), iter_(table->heap()) {}

Status SeqScanExecutor::InitImpl() {
  RELOPT_RETURN_NOT_OK(iter_.Reset());
  ResetCounters();
  return Status::OK();
}

Result<bool> SeqScanExecutor::NextImpl(Tuple* out) {
  Rid rid;
  std::string_view bytes;
  RELOPT_ASSIGN_OR_RETURN(bool has, iter_.Next(&rid, &bytes));
  if (!has) return false;
  RELOPT_RETURN_NOT_OK(out->FillFrom(bytes, schema_.NumColumns()));
  CountRow();
  return true;
}

Result<bool> SeqScanExecutor::NextBatchImpl(TupleBatch* out) {
  Rid rid;
  std::string_view bytes;
  size_t num_cols = schema_.NumColumns();
  while (!out->Full()) {
    RELOPT_ASSIGN_OR_RETURN(bool has, iter_.Next(&rid, &bytes));
    if (!has) {
      CountRows(out->NumSelected());
      return false;
    }
    RELOPT_RETURN_NOT_OK(out->AppendRow()->FillFrom(bytes, num_cols));
  }
  CountRows(out->NumSelected());
  return true;
}

}  // namespace relopt
