// External merge sort with run generation and multi-pass merging.
#pragma once

#include <memory>

#include "exec/executor.h"
#include "expr/vector_eval.h"

namespace relopt {

/// One sort key: an expression over the input row plus direction.
struct SortKeySpec {
  const Expression* expr;
  bool desc;
};

/// \brief Sorts its input by encoded keys (types/key_codec.h; descending keys
/// are byte-inverted, which is order-reversing because the encodings are
/// prefix-free).
///
/// Runs are generated up to the operator memory budget and spilled to scratch
/// heaps; more runs than the merge fan-in trigger extra merge passes. All
/// spill I/O goes through the buffer pool, so measured cost follows the
/// classic 2·P·(1 + ceil(log_F(runs))) shape. An input that fits in memory
/// sorts without any I/O.
class ExternalSortExecutor : public Executor {
 public:
  ExternalSortExecutor(ExecContext* ctx, ExecutorPtr child, std::vector<SortKeySpec> keys);

  Status InitImpl() override;
  Result<bool> NextImpl(Tuple* out) override;
  Result<bool> NextBatchImpl(TupleBatch* out) override;

  /// Number of spilled runs in the last Init (after run generation, before
  /// merging); 0 means fully in-memory. For tests/benches.
  size_t num_spilled_runs() const { return num_spilled_runs_; }
  /// Merge passes performed (0 when in-memory or single run).
  size_t merge_passes() const { return merge_passes_; }

 private:
  /// Sorted (key, tuple) pair held during run generation / in-memory sort.
  struct Item {
    std::string key;
    Tuple tuple;
  };

  Status FlushRun(std::vector<Item>* items);
  /// Merges `inputs` (scratch heaps holding sorted records) into one new run.
  Result<HeapFile> MergeRuns(std::vector<HeapFile*> inputs);

  ExecutorPtr child_;
  std::vector<SortKeySpec> keys_;
  SortKeyEncoder key_encoder_;  ///< batch/row sort-key encoding (byte-identical)

  // In-memory path.
  std::vector<Item> memory_items_;
  size_t memory_pos_ = 0;
  bool in_memory_ = false;

  // External path: the final run set (<= merge fan-in) merged lazily in
  // Next() via per-run cursors.
  struct RunCursor {
    std::unique_ptr<HeapFile::Iterator> iter;
    std::string key;
    Tuple tuple;
    bool exhausted = false;
  };
  Status AdvanceCursor(RunCursor* cursor);

  std::vector<HeapFile> runs_;
  std::vector<RunCursor> cursors_;
  size_t num_cols_ = 0;
  size_t num_spilled_runs_ = 0;
  size_t merge_passes_ = 0;
};

}  // namespace relopt
