#include "exec/executor_factory.h"

#include "exec/aggregate.h"
#include "exec/block_nested_loop_join.h"
#include "exec/external_sort.h"
#include "exec/filter.h"
#include "exec/hash_join.h"
#include "exec/index_nested_loop_join.h"
#include "exec/index_scan.h"
#include "exec/limit.h"
#include "exec/materialize.h"
#include "exec/nested_loop_join.h"
#include "exec/project.h"
#include "exec/parallel_plan.h"
#include "exec/seq_scan.h"
#include "exec/sort_merge_join.h"
#include "exec/table_function_scan.h"
#include "exec/values_exec.h"
#include "types/key_codec.h"

namespace relopt {

namespace {
/// Records the node->executor mapping for plan profiling, then passes the
/// executor through.
ExecutorPtr Register(ExecContext* ctx, const PhysicalNode* node, ExecutorPtr exec) {
  ctx->RegisterExecutor(node, exec.get());
  return exec;
}
}  // namespace

Result<ExecutorPtr> BuildExecutor(ExecContext* ctx, const PhysicalNode* plan,
                                  bool allow_parallel) {
  if (allow_parallel && ctx->parallelism() > 1 && ctx->thread_pool() != nullptr &&
      SubtreeParallelizable(*plan)) {
    return BuildGatherExecutor(ctx, plan);
  }
  switch (plan->kind()) {
    case PhysicalNodeKind::kSeqScan: {
      const auto* node = static_cast<const PhysSeqScan*>(plan);
      RELOPT_ASSIGN_OR_RETURN(TableInfo * table, ctx->catalog()->GetTable(node->table_name()));
      return Register(ctx, plan, std::make_unique<SeqScanExecutor>(ctx, node->schema(), table));
    }
    case PhysicalNodeKind::kIndexScan: {
      const auto* node = static_cast<const PhysIndexScan*>(plan);
      RELOPT_ASSIGN_OR_RETURN(TableInfo * table, ctx->catalog()->GetTable(node->table_name()));
      RELOPT_ASSIGN_OR_RETURN(IndexInfo * index, ctx->catalog()->GetIndex(node->index_name()));
      std::optional<std::string> lo;
      std::optional<std::string> hi;
      bool lo_inclusive = node->lo_inclusive;
      bool hi_inclusive = node->hi_inclusive;
      if (!node->lo_values.empty()) lo = EncodeKey(node->lo_values);
      if (!node->hi_values.empty()) {
        std::string enc = EncodeKey(node->hi_values);
        if (node->hi_values.size() < index->key_columns.size()) {
          // Upper bound on a key prefix covers all longer keys with that
          // prefix: widen to the prefix successor.
          if (hi_inclusive) {
            std::string succ = PrefixSuccessor(enc);
            if (succ.empty()) {
              hi = std::nullopt;
            } else {
              hi = std::move(succ);
              hi_inclusive = false;
            }
          } else {
            hi = std::move(enc);
          }
        } else {
          hi = std::move(enc);
        }
      }
      return Register(ctx, plan, std::make_unique<IndexScanExecutor>(
          ctx, node->schema(), table, index, std::move(lo), lo_inclusive, std::move(hi),
          hi_inclusive, node->residual.get()));
    }
    case PhysicalNodeKind::kFilter: {
      const auto* node = static_cast<const PhysFilter*>(plan);
      RELOPT_ASSIGN_OR_RETURN(ExecutorPtr child, BuildExecutor(ctx, node->child(0), allow_parallel));
      return Register(ctx, plan,
          std::make_unique<FilterExecutor>(ctx, std::move(child), node->predicate()));
    }
    case PhysicalNodeKind::kProject: {
      const auto* node = static_cast<const PhysProject*>(plan);
      RELOPT_ASSIGN_OR_RETURN(ExecutorPtr child, BuildExecutor(ctx, node->child(0), allow_parallel));
      return Register(ctx, plan,
          std::make_unique<ProjectExecutor>(ctx, node->schema(), std::move(child), &node->exprs()));
    }
    case PhysicalNodeKind::kNestedLoopJoin: {
      const auto* node = static_cast<const PhysNestedLoopJoin*>(plan);
      RELOPT_ASSIGN_OR_RETURN(ExecutorPtr outer, BuildExecutor(ctx, node->child(0), allow_parallel));
      // The inner child is re-Init per outer row; never put a Gather there.
      RELOPT_ASSIGN_OR_RETURN(ExecutorPtr inner, BuildExecutor(ctx, node->child(1), false));
      return Register(ctx, plan, std::make_unique<NestedLoopJoinExecutor>(
          ctx, std::move(outer), std::move(inner), node->predicate()));
    }
    case PhysicalNodeKind::kBlockNestedLoopJoin: {
      const auto* node = static_cast<const PhysBlockNestedLoopJoin*>(plan);
      RELOPT_ASSIGN_OR_RETURN(ExecutorPtr outer, BuildExecutor(ctx, node->child(0), allow_parallel));
      // Re-scanned once per outer block; keep it serial.
      RELOPT_ASSIGN_OR_RETURN(ExecutorPtr inner, BuildExecutor(ctx, node->child(1), false));
      return Register(ctx, plan, std::make_unique<BlockNestedLoopJoinExecutor>(
          ctx, std::move(outer), std::move(inner), node->predicate(), node->block_pages()));
    }
    case PhysicalNodeKind::kIndexNestedLoopJoin: {
      const auto* node = static_cast<const PhysIndexNestedLoopJoin*>(plan);
      RELOPT_ASSIGN_OR_RETURN(ExecutorPtr outer, BuildExecutor(ctx, node->child(0), allow_parallel));
      RELOPT_ASSIGN_OR_RETURN(TableInfo * table, ctx->catalog()->GetTable(node->inner_table()));
      RELOPT_ASSIGN_OR_RETURN(IndexInfo * index, ctx->catalog()->GetIndex(node->index_name()));
      return Register(ctx, plan, std::make_unique<IndexNestedLoopJoinExecutor>(
          ctx, std::move(outer), table, index, node->inner_schema(), &node->outer_key_exprs(),
          node->residual()));
    }
    case PhysicalNodeKind::kSortMergeJoin: {
      const auto* node = static_cast<const PhysSortMergeJoin*>(plan);
      RELOPT_ASSIGN_OR_RETURN(ExecutorPtr left, BuildExecutor(ctx, node->child(0), allow_parallel));
      RELOPT_ASSIGN_OR_RETURN(ExecutorPtr right, BuildExecutor(ctx, node->child(1), allow_parallel));
      return Register(ctx, plan, std::make_unique<SortMergeJoinExecutor>(
          ctx, std::move(left), std::move(right), node->left_keys(), node->right_keys(),
          node->residual()));
    }
    case PhysicalNodeKind::kHashJoin: {
      const auto* node = static_cast<const PhysHashJoin*>(plan);
      RELOPT_ASSIGN_OR_RETURN(ExecutorPtr build, BuildExecutor(ctx, node->child(0), allow_parallel));
      RELOPT_ASSIGN_OR_RETURN(ExecutorPtr probe, BuildExecutor(ctx, node->child(1), allow_parallel));
      return Register(ctx, plan, std::make_unique<HashJoinExecutor>(
          ctx, std::move(build), std::move(probe), node->build_keys(), node->probe_keys(),
          node->residual(), node->output_probe_first()));
    }
    case PhysicalNodeKind::kSort: {
      const auto* node = static_cast<const PhysSort*>(plan);
      RELOPT_ASSIGN_OR_RETURN(ExecutorPtr child, BuildExecutor(ctx, node->child(0), allow_parallel));
      std::vector<SortKeySpec> keys;
      for (const PhysSort::Key& k : node->keys()) {
        keys.push_back(SortKeySpec{k.expr.get(), k.desc});
      }
      return Register(ctx, plan,
          std::make_unique<ExternalSortExecutor>(ctx, std::move(child), std::move(keys)));
    }
    case PhysicalNodeKind::kAggregate: {
      const auto* node = static_cast<const PhysAggregate*>(plan);
      RELOPT_ASSIGN_OR_RETURN(ExecutorPtr child, BuildExecutor(ctx, node->child(0), allow_parallel));
      std::vector<const Expression*> group_exprs;
      for (const ExprPtr& g : node->group_by()) group_exprs.push_back(g.get());
      std::vector<AggSpecExec> aggs;
      for (const PhysAggregate::Agg& a : node->aggs()) {
        aggs.push_back(AggSpecExec{a.func, a.arg.get()});
      }
      return Register(ctx, plan, std::make_unique<AggregateExecutor>(
          ctx, node->schema(), std::move(child), std::move(group_exprs), std::move(aggs)));
    }
    case PhysicalNodeKind::kLimit: {
      const auto* node = static_cast<const PhysLimit*>(plan);
      RELOPT_ASSIGN_OR_RETURN(ExecutorPtr child, BuildExecutor(ctx, node->child(0), allow_parallel));
      return Register(ctx, plan, std::make_unique<LimitExecutor>(ctx, std::move(child), node->limit()));
    }
    case PhysicalNodeKind::kValues: {
      const auto* node = static_cast<const PhysValues*>(plan);
      return Register(ctx, plan, std::make_unique<ValuesExecutor>(ctx, node->schema(), &node->rows()));
    }
    case PhysicalNodeKind::kMaterialize: {
      const auto* node = static_cast<const PhysMaterialize*>(plan);
      RELOPT_ASSIGN_OR_RETURN(ExecutorPtr child, BuildExecutor(ctx, node->child(0), allow_parallel));
      return Register(ctx, plan, std::make_unique<MaterializeExecutor>(ctx, std::move(child)));
    }
    case PhysicalNodeKind::kTableFunctionScan: {
      const auto* node = static_cast<const PhysTableFunctionScan*>(plan);
      return Register(ctx, plan, std::make_unique<TableFunctionScanExecutor>(
          ctx, node->schema(), node->function_name()));
    }
  }
  return Status::Internal("unknown physical node kind");
}

}  // namespace relopt
