#include "exec/plan_profile.h"

#include <algorithm>

#include "util/str_util.h"

namespace relopt {

double QError(double est_rows, double actual_rows) {
  double est = std::max(est_rows, 1.0);
  double act = std::max(actual_rows, 1.0);
  return std::max(est / act, act / est);
}

namespace {

OperatorProfile BuildNode(const PhysicalNode& node, const ExecContext& ctx) {
  OperatorProfile p;
  p.op = PhysicalNodeKindToString(node.kind());
  p.describe = node.Describe();
  p.est_rows = node.est_rows();
  p.est_cost = node.est_cost();
  // Under parallelism one plan node maps to several worker executors; merge
  // their stats so actual_rows/IO are totals across workers.
  if (const std::vector<const Executor*>* execs = ctx.FindExecutors(&node)) {
    for (const Executor* exec : *execs) p.stats.Merge(exec->stats());
  }
  for (const PhysicalPtr& child : node.children()) {
    p.children.push_back(BuildNode(*child, ctx));
  }
  return p;
}

void RenderText(const OperatorProfile& p, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += p.describe;
  *out += StringPrintf(
      "  (est_rows=%.0f actual_rows=%llu q_err=%.2f est_io=%.1f reads=%llu writes=%llu "
      "hits=%llu misses=%llu time=%.3fms loops=%llu batches=%llu fallback=%llu)",
      p.est_rows, static_cast<unsigned long long>(p.stats.rows_produced), p.q_error(),
      p.est_cost.page_ios, static_cast<unsigned long long>(p.stats.page_reads),
      static_cast<unsigned long long>(p.stats.page_writes),
      static_cast<unsigned long long>(p.stats.pool_hits),
      static_cast<unsigned long long>(p.stats.pool_misses),
      static_cast<double>(p.stats.wall_nanos) / 1e6,
      static_cast<unsigned long long>(p.stats.init_calls),
      static_cast<unsigned long long>(p.stats.batches_produced),
      static_cast<unsigned long long>(p.stats.fallback_rows));
  *out += "\n";
  for (const OperatorProfile& c : p.children) RenderText(c, depth + 1, out);
}

void RenderJson(const OperatorProfile& p, std::string* out) {
  *out += StringPrintf(
      "{\"op\":\"%s\",\"describe\":\"%s\",\"est_rows\":%.2f,\"est_io\":%.2f,"
      "\"est_cpu\":%.2f,\"actual_rows\":%llu,\"q_error\":%.4f,\"init_calls\":%llu,"
      "\"next_calls\":%llu,\"batches_produced\":%llu,\"fallback_rows\":%llu,\"wall_ms\":%.4f,"
      "\"page_reads\":%llu,\"page_writes\":%llu,"
      "\"pool_hits\":%llu,\"pool_misses\":%llu,\"children\":[",
      JsonEscape(p.op).c_str(), JsonEscape(p.describe).c_str(), p.est_rows, p.est_cost.page_ios,
      p.est_cost.cpu_tuples, static_cast<unsigned long long>(p.stats.rows_produced), p.q_error(),
      static_cast<unsigned long long>(p.stats.init_calls),
      static_cast<unsigned long long>(p.stats.next_calls),
      static_cast<unsigned long long>(p.stats.batches_produced),
      static_cast<unsigned long long>(p.stats.fallback_rows),
      static_cast<double>(p.stats.wall_nanos) / 1e6,
      static_cast<unsigned long long>(p.stats.page_reads),
      static_cast<unsigned long long>(p.stats.page_writes),
      static_cast<unsigned long long>(p.stats.pool_hits),
      static_cast<unsigned long long>(p.stats.pool_misses));
  for (size_t i = 0; i < p.children.size(); ++i) {
    if (i > 0) *out += ",";
    RenderJson(p.children[i], out);
  }
  *out += "]}";
}

void RenderTraceEvents(const OperatorProfile& p, int depth, bool* first, std::string* out) {
  if (!*first) *out += ",\n";
  *first = false;
  // Complete ("X") events; ts/dur in microseconds as chrome://tracing expects.
  *out += StringPrintf(
      "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,"
      "\"args\":{\"rows\":%llu,\"page_reads\":%llu}}",
      JsonEscape(p.describe).c_str(), static_cast<double>(p.stats.first_start_nanos) / 1e3,
      static_cast<double>(p.stats.wall_nanos) / 1e3, depth,
      static_cast<unsigned long long>(p.stats.rows_produced),
      static_cast<unsigned long long>(p.stats.page_reads));
  for (const OperatorProfile& c : p.children) RenderTraceEvents(c, depth + 1, first, out);
}

template <typename Fn>
void ForEach(const OperatorProfile& p, Fn fn) {
  fn(p);
  for (const OperatorProfile& c : p.children) ForEach(c, fn);
}

}  // namespace

std::string PlanProfile::ToText() const {
  std::string out;
  RenderText(root, 0, &out);
  return out;
}

std::string PlanProfile::ToJson() const {
  std::string out;
  RenderJson(root, &out);
  return out;
}

std::string PlanProfile::ToChromeTrace() const {
  std::string out = "[\n";
  bool first = true;
  RenderTraceEvents(root, 0, &first, &out);
  out += "\n]\n";
  return out;
}

uint64_t PlanProfile::TotalPageReads() const {
  uint64_t total = 0;
  ForEach(root, [&](const OperatorProfile& p) { total += p.stats.page_reads; });
  return total;
}

uint64_t PlanProfile::TotalPageWrites() const {
  uint64_t total = 0;
  ForEach(root, [&](const OperatorProfile& p) { total += p.stats.page_writes; });
  return total;
}

uint64_t PlanProfile::TotalPoolHits() const {
  uint64_t total = 0;
  ForEach(root, [&](const OperatorProfile& p) { total += p.stats.pool_hits; });
  return total;
}

uint64_t PlanProfile::TotalPoolMisses() const {
  uint64_t total = 0;
  ForEach(root, [&](const OperatorProfile& p) { total += p.stats.pool_misses; });
  return total;
}

size_t PlanProfile::NumOperators() const {
  size_t n = 0;
  ForEach(root, [&](const OperatorProfile&) { ++n; });
  return n;
}

PlanProfile BuildPlanProfile(const PhysicalNode& plan, const ExecContext& ctx) {
  PlanProfile profile;
  profile.root = BuildNode(plan, ctx);
  profile.valid = true;
  return profile;
}

}  // namespace relopt
