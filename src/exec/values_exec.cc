#include "exec/values_exec.h"

// Header-only implementation; this TU anchors the target in the build.
