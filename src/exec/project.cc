#include "exec/project.h"

// Header-only implementation; this TU anchors the target in the build.
