// Sort-merge join over already-sorted inputs.
#pragma once

#include "exec/executor.h"

namespace relopt {

/// Merges two inputs sorted ascending on their join keys. Rows with NULL
/// join keys never match (SQL equi-join) and are skipped. Duplicate key
/// groups on the right side are buffered in memory (standard SMJ; group size
/// is bounded by the key's duplication, not the input size).
class SortMergeJoinExecutor : public Executor {
 public:
  SortMergeJoinExecutor(ExecContext* ctx, ExecutorPtr left, ExecutorPtr right,
                        std::vector<size_t> left_keys, std::vector<size_t> right_keys,
                        const Expression* residual)
      : Executor(ctx, Schema::Concat(left->schema(), right->schema())),
        left_(std::move(left)),
        right_(std::move(right)),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        residual_(residual) {}

  Status InitImpl() override;
  Result<bool> NextImpl(Tuple* out) override;

 private:
  Result<bool> AdvanceLeft();
  Result<bool> AdvanceRight();
  /// True if any key column of `t` at `keys` is NULL.
  static bool HasNullKey(const Tuple& t, const std::vector<size_t>& keys);
  /// Compares current left vs right tuples on the join keys.
  Result<int> CompareKeys(const Tuple& l, const Tuple& r) const;

  ExecutorPtr left_;
  ExecutorPtr right_;
  std::vector<size_t> left_keys_;
  std::vector<size_t> right_keys_;
  const Expression* residual_;

  Tuple left_tuple_;
  Tuple right_tuple_;
  bool have_left_ = false;
  bool have_right_ = false;
  bool right_done_ = false;

  // Current equal-key group from the right side, replayed per matching left
  // row.
  std::vector<Tuple> group_;
  std::vector<Value> group_key_;
  size_t group_idx_ = 0;
  bool emitting_ = false;
};

}  // namespace relopt
