#include "exec/block_nested_loop_join.h"

namespace relopt {

Status BlockNestedLoopJoinExecutor::InitImpl() {
  RELOPT_RETURN_NOT_OK(outer_->Init());
  outer_done_ = false;
  block_active_ = false;
  have_inner_ = false;
  block_.clear();
  ResetCounters();
  return Status::OK();
}

Result<bool> BlockNestedLoopJoinExecutor::LoadBlock() {
  block_.clear();
  size_t bytes = 0;
  Tuple t;
  while (bytes < block_bytes_) {
    RELOPT_ASSIGN_OR_RETURN(bool has, outer_->Next(&t));
    if (!has) {
      outer_done_ = true;
      break;
    }
    bytes += t.Serialize().size() + 8;
    block_.push_back(std::move(t));
  }
  return !block_.empty();
}

Result<bool> BlockNestedLoopJoinExecutor::NextImpl(Tuple* out) {
  while (true) {
    if (!block_active_) {
      if (outer_done_) return false;
      RELOPT_ASSIGN_OR_RETURN(bool loaded, LoadBlock());
      if (!loaded) return false;
      RELOPT_RETURN_NOT_OK(inner_->Init());
      block_active_ = true;
      have_inner_ = false;
    }
    // Advance inner when the current inner tuple is exhausted against the
    // block.
    if (!have_inner_) {
      RELOPT_ASSIGN_OR_RETURN(bool has, inner_->Next(&inner_tuple_));
      if (!has) {
        block_active_ = false;  // next block
        continue;
      }
      have_inner_ = true;
      block_idx_ = 0;
    }
    while (block_idx_ < block_.size()) {
      Tuple combined = Tuple::Concat(block_[block_idx_++], inner_tuple_);
      RELOPT_ASSIGN_OR_RETURN(bool pass, PredicatePasses(predicate_, combined));
      if (pass) {
        *out = std::move(combined);
        CountRow();
        return true;
      }
    }
    have_inner_ = false;
  }
}

}  // namespace relopt
