// Filter executor.
#pragma once

#include "exec/executor.h"
#include "expr/vector_eval.h"

namespace relopt {

class FilterExecutor : public Executor {
 public:
  FilterExecutor(ExecContext* ctx, ExecutorPtr child, const Expression* predicate)
      : Executor(ctx, child->schema()),
        child_(std::move(child)),
        predicate_(predicate),
        batch_predicate_(predicate) {}

  Status InitImpl() override {
    ResetCounters();
    return child_->Init();
  }

  Result<bool> NextImpl(Tuple* out) override {
    while (true) {
      RELOPT_ASSIGN_OR_RETURN(bool has, child_->Next(out));
      if (!has) return false;
      RELOPT_ASSIGN_OR_RETURN(bool pass, PredicatePasses(predicate_, *out));
      if (pass) {
        CountRow();
        return true;
      }
    }
  }

  /// Batch path: pull one child batch into `out` and compact its selection
  /// conjunct by conjunct. May legitimately return true with zero survivors;
  /// the caller pulls again.
  Result<bool> NextBatchImpl(TupleBatch* out) override {
    RELOPT_ASSIGN_OR_RETURN(bool has, child_->NextBatch(out));
    RELOPT_RETURN_NOT_OK(batch_predicate_.Filter(out, &stats_.fallback_rows));
    CountRows(out->NumSelected());
    return has;
  }

  void Abandon() override { child_->Abandon(); }

 private:
  ExecutorPtr child_;
  const Expression* predicate_;
  BatchPredicate batch_predicate_;  ///< compiled conjunct kernels (batch drive)
};

}  // namespace relopt
