// Filter executor.
#pragma once

#include "exec/executor.h"

namespace relopt {

class FilterExecutor : public Executor {
 public:
  FilterExecutor(ExecContext* ctx, ExecutorPtr child, const Expression* predicate)
      : Executor(ctx, child->schema()), child_(std::move(child)), predicate_(predicate) {}

  Status InitImpl() override {
    ResetCounters();
    return child_->Init();
  }

  Result<bool> NextImpl(Tuple* out) override {
    while (true) {
      RELOPT_ASSIGN_OR_RETURN(bool has, child_->Next(out));
      if (!has) return false;
      RELOPT_ASSIGN_OR_RETURN(bool pass, PredicatePasses(predicate_, *out));
      if (pass) {
        CountRow();
        return true;
      }
    }
  }

 private:
  ExecutorPtr child_;
  const Expression* predicate_;
};

}  // namespace relopt
