#include "exec/aggregate.h"

#include "expr/vector_eval.h"
#include "types/key_codec.h"

namespace relopt {

namespace {

/// Checked int64 accumulation for SUM/AVG: SUM errors instead of wrapping,
/// AVG widens to double (lossy above 2^53, like every double AVG).
Status AccumulateIntSum(int64_t addend, AggFunc func, AggAccumulator* acc) {
  int64_t sum;
  if (!__builtin_add_overflow(acc->sum_i, addend, &sum)) {
    acc->sum_i = sum;
    return Status::OK();
  }
  if (func == AggFunc::kAvg) {
    acc->sum_d = static_cast<double>(acc->sum_i) + static_cast<double>(addend);
    acc->sum_is_int = false;
    return Status::OK();
  }
  return Status::OutOfRange("integer overflow in SUM aggregate");
}

}  // namespace

Status AccumulateTuple(const std::vector<AggSpecExec>& aggs, const Tuple& tuple, AggGroup* group) {
  for (size_t i = 0; i < aggs.size(); ++i) {
    AggAccumulator& acc = group->accs[i];
    const AggSpecExec& spec = aggs[i];
    if (spec.func == AggFunc::kCountStar) {
      acc.count++;
      acc.has_value = true;
      continue;
    }
    RELOPT_ASSIGN_OR_RETURN(Value v, spec.arg->Eval(tuple));
    if (v.is_null()) continue;  // aggregates ignore NULLs
    acc.count++;
    switch (spec.func) {
      case AggFunc::kCount:
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (v.type() == TypeId::kInt64 && acc.sum_is_int) {
          RELOPT_RETURN_NOT_OK(AccumulateIntSum(v.AsInt(), spec.func, &acc));
        } else {
          if (acc.sum_is_int) {
            acc.sum_d = static_cast<double>(acc.sum_i);
            acc.sum_is_int = false;
          }
          acc.sum_d += v.NumericAsDouble();
        }
        break;
      case AggFunc::kMin: {
        if (!acc.has_value) {
          acc.min = v;
        } else {
          RELOPT_ASSIGN_OR_RETURN(int c, v.Compare(acc.min));
          if (c < 0) acc.min = v;
        }
        break;
      }
      case AggFunc::kMax: {
        if (!acc.has_value) {
          acc.max = v;
        } else {
          RELOPT_ASSIGN_OR_RETURN(int c, v.Compare(acc.max));
          if (c > 0) acc.max = v;
        }
        break;
      }
      default:
        break;
    }
    acc.has_value = true;
  }
  return Status::OK();
}

Status MergeAggGroup(const std::vector<AggSpecExec>& aggs, const AggGroup& from, AggGroup* into) {
  for (size_t i = 0; i < aggs.size(); ++i) {
    const AggAccumulator& src = from.accs[i];
    AggAccumulator& dst = into->accs[i];
    const AggSpecExec& spec = aggs[i];
    dst.count += src.count;
    switch (spec.func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (src.sum_is_int && dst.sum_is_int) {
          RELOPT_RETURN_NOT_OK(AccumulateIntSum(src.sum_i, spec.func, &dst));
        } else {
          if (dst.sum_is_int) {
            dst.sum_d = static_cast<double>(dst.sum_i);
            dst.sum_is_int = false;
          }
          dst.sum_d += src.sum_is_int ? static_cast<double>(src.sum_i) : src.sum_d;
        }
        break;
      case AggFunc::kMin:
        if (src.has_value) {
          if (!dst.has_value) {
            dst.min = src.min;
          } else {
            RELOPT_ASSIGN_OR_RETURN(int c, src.min.Compare(dst.min));
            if (c < 0) dst.min = src.min;
          }
        }
        break;
      case AggFunc::kMax:
        if (src.has_value) {
          if (!dst.has_value) {
            dst.max = src.max;
          } else {
            RELOPT_ASSIGN_OR_RETURN(int c, src.max.Compare(dst.max));
            if (c > 0) dst.max = src.max;
          }
        }
        break;
    }
    dst.has_value = dst.has_value || src.has_value;
  }
  return Status::OK();
}

Result<Value> FinalizeAggregate(const AggSpecExec& spec, const AggAccumulator& acc) {
  switch (spec.func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Value::Int(acc.count);
    case AggFunc::kSum:
      if (acc.count == 0) return Value::Null();
      return acc.sum_is_int ? Value::Int(acc.sum_i) : Value::Double(acc.sum_d);
    case AggFunc::kAvg: {
      if (acc.count == 0) return Value::Null(TypeId::kDouble);
      double total = acc.sum_is_int ? static_cast<double>(acc.sum_i) : acc.sum_d;
      return Value::Double(total / static_cast<double>(acc.count));
    }
    case AggFunc::kMin:
      return acc.count == 0 ? Value::Null() : acc.min;
    case AggFunc::kMax:
      return acc.count == 0 ? Value::Null() : acc.max;
  }
  return Status::Internal("bad aggregate function");
}

Status EmitAggGroup(const std::vector<AggSpecExec>& aggs, const AggGroup& group, Tuple* out) {
  for (const Value& k : group.keys) out->Append(k);
  for (size_t i = 0; i < aggs.size(); ++i) {
    RELOPT_ASSIGN_OR_RETURN(Value v, FinalizeAggregate(aggs[i], group.accs[i]));
    out->Append(std::move(v));
  }
  return Status::OK();
}

AggregateExecutor::AggregateExecutor(ExecContext* ctx, Schema out_schema, ExecutorPtr child,
                                     std::vector<const Expression*> group_exprs,
                                     std::vector<AggSpecExec> aggs)
    : Executor(ctx, std::move(out_schema)),
      child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)),
      key_computer_(&group_exprs_) {}

Status AggregateExecutor::IngestRow(const std::string& enc, const Tuple& tuple) {
  return AccumulateKeyedRow(group_exprs_, aggs_, enc, tuple, &groups_);
}

Status AggregateExecutor::IngestRowStream() {
  Tuple t;
  std::string enc;
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(bool has, child_->Next(&t));
    if (!has) break;
    enc.clear();
    for (const Expression* g : group_exprs_) {
      RELOPT_ASSIGN_OR_RETURN(Value v, g->Eval(t));
      EncodeKeyValue(v, &enc);
    }
    RELOPT_RETURN_NOT_OK(IngestRow(enc, t));
  }
  return Status::OK();
}

Status AggregateExecutor::IngestBatchStream() {
  TupleBatch batch(ctx_->batch_size());
  std::vector<std::string> keys;
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&batch));
    RELOPT_RETURN_NOT_OK(key_computer_.Compute(batch, &keys, &stats_.fallback_rows));
    for (size_t k = 0; k < batch.NumSelected(); ++k) {
      // Map misses pull key values out of the computer's column vectors
      // instead of re-evaluating the group expressions.
      RELOPT_RETURN_NOT_OK(AccumulateKeyedRowWith(
          [&](size_t i) { return key_computer_.KeyValue(i, k); }, group_exprs_.size(), aggs_,
          keys[k], batch.SelectedRow(k), &groups_));
    }
    if (!has) break;
  }
  return Status::OK();
}

Status AggregateExecutor::InitImpl() {
  groups_.clear();
  done_build_ = false;
  ResetCounters();
  RELOPT_RETURN_NOT_OK(child_->Init());

  if (ctx_->batch_size() > 0) {
    RELOPT_RETURN_NOT_OK(IngestBatchStream());
  } else {
    RELOPT_RETURN_NOT_OK(IngestRowStream());
  }

  // Scalar aggregate over an empty input still yields one (default) row.
  if (groups_.empty() && group_exprs_.empty()) {
    AggGroup group;
    group.accs.resize(aggs_.size());
    groups_.emplace(std::string(), std::move(group));
  }
  out_iter_ = groups_.begin();
  done_build_ = true;
  return Status::OK();
}

Result<bool> AggregateExecutor::NextImpl(Tuple* out) {
  if (!done_build_ || out_iter_ == groups_.end()) return false;
  out->Clear();
  RELOPT_RETURN_NOT_OK(EmitAggGroup(aggs_, out_iter_->second, out));
  ++out_iter_;
  CountRow();
  return true;
}

Result<bool> AggregateExecutor::NextBatchImpl(TupleBatch* out) {
  if (!done_build_) return false;
  while (!out->Full() && out_iter_ != groups_.end()) {
    RELOPT_RETURN_NOT_OK(EmitAggGroup(aggs_, out_iter_->second, out->AppendRow()));
    ++out_iter_;
  }
  CountRows(out->NumSelected());
  return out_iter_ != groups_.end();
}

}  // namespace relopt
