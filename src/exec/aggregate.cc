#include "exec/aggregate.h"

#include "types/key_codec.h"

namespace relopt {

AggregateExecutor::AggregateExecutor(ExecContext* ctx, Schema out_schema, ExecutorPtr child,
                                     std::vector<const Expression*> group_exprs,
                                     std::vector<AggSpecExec> aggs)
    : Executor(ctx, std::move(out_schema)),
      child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)) {}

Status AggregateExecutor::Accumulate(Group* group, const Tuple& tuple) {
  for (size_t i = 0; i < aggs_.size(); ++i) {
    Accumulator& acc = group->accs[i];
    const AggSpecExec& spec = aggs_[i];
    if (spec.func == AggFunc::kCountStar) {
      acc.count++;
      acc.has_value = true;
      continue;
    }
    RELOPT_ASSIGN_OR_RETURN(Value v, spec.arg->Eval(tuple));
    if (v.is_null()) continue;  // aggregates ignore NULLs
    acc.count++;
    switch (spec.func) {
      case AggFunc::kCount:
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (v.type() == TypeId::kInt64 && acc.sum_is_int) {
          acc.sum_i += v.AsInt();
        } else {
          if (acc.sum_is_int) {
            acc.sum_d = static_cast<double>(acc.sum_i);
            acc.sum_is_int = false;
          }
          acc.sum_d += v.NumericAsDouble();
        }
        break;
      case AggFunc::kMin: {
        if (!acc.has_value) {
          acc.min = v;
        } else {
          RELOPT_ASSIGN_OR_RETURN(int c, v.Compare(acc.min));
          if (c < 0) acc.min = v;
        }
        break;
      }
      case AggFunc::kMax: {
        if (!acc.has_value) {
          acc.max = v;
        } else {
          RELOPT_ASSIGN_OR_RETURN(int c, v.Compare(acc.max));
          if (c > 0) acc.max = v;
        }
        break;
      }
      default:
        break;
    }
    acc.has_value = true;
  }
  return Status::OK();
}

Result<Value> AggregateExecutor::Finalize(const Accumulator& acc, const AggSpecExec& spec) const {
  switch (spec.func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Value::Int(acc.count);
    case AggFunc::kSum:
      if (acc.count == 0) return Value::Null();
      return acc.sum_is_int ? Value::Int(acc.sum_i) : Value::Double(acc.sum_d);
    case AggFunc::kAvg: {
      if (acc.count == 0) return Value::Null(TypeId::kDouble);
      double total = acc.sum_is_int ? static_cast<double>(acc.sum_i) : acc.sum_d;
      return Value::Double(total / static_cast<double>(acc.count));
    }
    case AggFunc::kMin:
      return acc.count == 0 ? Value::Null() : acc.min;
    case AggFunc::kMax:
      return acc.count == 0 ? Value::Null() : acc.max;
  }
  return Status::Internal("bad aggregate function");
}

Status AggregateExecutor::InitImpl() {
  groups_.clear();
  done_build_ = false;
  ResetCounters();
  RELOPT_RETURN_NOT_OK(child_->Init());

  Tuple t;
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(bool has, child_->Next(&t));
    if (!has) break;
    std::vector<Value> keys;
    keys.reserve(group_exprs_.size());
    for (const Expression* g : group_exprs_) {
      RELOPT_ASSIGN_OR_RETURN(Value v, g->Eval(t));
      keys.push_back(std::move(v));
    }
    std::string enc = EncodeKey(keys);
    auto it = groups_.find(enc);
    if (it == groups_.end()) {
      Group group;
      group.keys = std::move(keys);
      group.accs.resize(aggs_.size());
      it = groups_.emplace(std::move(enc), std::move(group)).first;
    }
    RELOPT_RETURN_NOT_OK(Accumulate(&it->second, t));
  }

  // Scalar aggregate over an empty input still yields one (default) row.
  if (groups_.empty() && group_exprs_.empty()) {
    Group group;
    group.accs.resize(aggs_.size());
    groups_.emplace(std::string(), std::move(group));
  }
  out_iter_ = groups_.begin();
  done_build_ = true;
  return Status::OK();
}

Result<bool> AggregateExecutor::NextImpl(Tuple* out) {
  if (!done_build_ || out_iter_ == groups_.end()) return false;
  const Group& group = out_iter_->second;
  std::vector<Value> values = group.keys;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    RELOPT_ASSIGN_OR_RETURN(Value v, Finalize(group.accs[i], aggs_[i]));
    values.push_back(std::move(v));
  }
  *out = Tuple(std::move(values));
  ++out_iter_;
  CountRow();
  return true;
}

}  // namespace relopt
