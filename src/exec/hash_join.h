// Hash join: in-memory when the build side fits, Grace partitioning when not.
#pragma once

#include <optional>
#include <unordered_map>

#include "exec/executor.h"

namespace relopt {

/// Encoded equi-join key for a row (memcmp-comparable, see EncodeKey);
/// empty optional if any key column is NULL — NULL keys never match.
/// Shared between the serial and parallel hash joins so both partition and
/// probe with byte-identical keys.
Result<std::optional<std::string>> JoinKeyOf(const Tuple& t, const std::vector<size_t>& keys);

/// \brief Equi-join by hashing. The first child is the build side.
///
/// If the build side exceeds the operator memory budget, both sides are
/// partitioned to scratch heaps by key hash (Grace hash join) and each
/// partition pair is joined in memory — the partition writes and re-reads go
/// through the buffer pool, so measured I/O matches the classic
/// 3(P_build + P_probe) shape. Rows with NULL keys never match.
class HashJoinExecutor : public Executor {
 public:
  HashJoinExecutor(ExecContext* ctx, ExecutorPtr build, ExecutorPtr probe,
                   std::vector<size_t> build_keys, std::vector<size_t> probe_keys,
                   const Expression* residual, bool output_probe_first);

  Status InitImpl() override;
  Result<bool> NextImpl(Tuple* out) override;
  Result<bool> NextBatchImpl(TupleBatch* out) override;

 private:
  static Schema MakeOutputSchema(const Executor& build, const Executor& probe,
                                 bool output_probe_first);

  /// Builds the in-memory table from a stream of build-side tuples.
  Status AddBuildRow(const Tuple& t);

  Result<bool> NextInMemory(Tuple* out, Executor* probe_source);
  Result<bool> NextGrace(Tuple* out);

  /// Loads partition `part_idx_`'s build rows into `table_` and opens the
  /// probe partition iterator.
  Status LoadPartition();

  Tuple MakeOutput(const Tuple& probe_row, const Tuple& build_row) const;

  ExecutorPtr build_;
  ExecutorPtr probe_;
  std::vector<size_t> build_keys_;
  std::vector<size_t> probe_keys_;
  const Expression* residual_;
  bool output_probe_first_;

  // In-memory join state.
  std::unordered_multimap<std::string, Tuple> table_;
  Tuple probe_tuple_;
  std::vector<const Tuple*> matches_;
  size_t match_idx_ = 0;
  bool have_probe_ = false;

  // Batched probe state (in-memory mode only; Grace falls back to the row
  // adapter). Probe keys are encoded for the whole batch up front, then each
  // probe row's match list is drained into the output batch.
  TupleBatch probe_batch_;
  std::vector<std::optional<std::string>> batch_keys_;
  size_t probe_pos_ = 0;        ///< next unprobed row in probe_batch_
  bool probe_done_ = false;
  const Tuple* batch_probe_row_ = nullptr;  ///< probe row owning matches_

  // Grace state.
  bool grace_ = false;
  size_t num_partitions_ = 0;
  std::vector<HeapFile> build_parts_;
  std::vector<HeapFile> probe_parts_;
  size_t part_idx_ = 0;
  std::unique_ptr<HeapFile::Iterator> part_probe_iter_;
  size_t build_cols_ = 0;
  size_t probe_cols_ = 0;
};

}  // namespace relopt
