#include "exec/index_scan.h"

namespace relopt {

IndexScanExecutor::IndexScanExecutor(ExecContext* ctx, Schema schema, TableInfo* table,
                                     IndexInfo* index, std::optional<std::string> lo,
                                     bool lo_inclusive, std::optional<std::string> hi,
                                     bool hi_inclusive, const Expression* residual)
    : Executor(ctx, std::move(schema)),
      table_(table),
      index_(index),
      lo_(std::move(lo)),
      lo_inclusive_(lo_inclusive),
      hi_(std::move(hi)),
      hi_inclusive_(hi_inclusive),
      residual_(residual) {}

Status IndexScanExecutor::InitImpl() {
  RELOPT_ASSIGN_OR_RETURN(BTree::Iterator it,
                          BTree::Iterator::Seek(index_->tree.get(), lo_, lo_inclusive_, hi_,
                                                hi_inclusive_));
  iter_ = std::move(it);
  ResetCounters();
  return Status::OK();
}

Result<bool> IndexScanExecutor::NextImpl(Tuple* out) {
  std::string key;
  Rid rid;
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(bool has, iter_->Next(&key, &rid));
    if (!has) return false;
    RELOPT_ASSIGN_OR_RETURN(Tuple tuple, table_->GetTuple(rid));
    RELOPT_ASSIGN_OR_RETURN(bool pass, PredicatePasses(residual_, tuple));
    if (!pass) continue;
    *out = std::move(tuple);
    CountRow();
    return true;
  }
}

}  // namespace relopt
