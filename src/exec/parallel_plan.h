// Parallel fragment planning: decides which physical subtrees can run as
// morsel-driven parallel fragments and builds the Gather + worker clones.
#pragma once

#include "exec/executor.h"
#include "plan/physical_plan.h"

namespace relopt {

/// \brief True if the subtree rooted at `plan` can run as a parallel
/// fragment: SeqScan (morsel-driven), Filter/Project over a parallelizable
/// child, HashJoin with both children parallelizable, and Aggregate
/// (partitioned hash aggregation, grouped or global) over a parallelizable
/// child. Everything else (index access, sorts, NLJ variants, Values,
/// Materialize) stays serial above the Gather.
bool SubtreeParallelizable(const PhysicalNode& plan);

/// \brief Builds a Gather over `ctx->parallelism()` worker fragments for a
/// parallelizable subtree. Each fragment executor is registered against its
/// plan node, so EXPLAIN ANALYZE merges per-worker stats per node; the Gather
/// itself is not registered (its row count would double-count the subtree
/// root). Requires `ctx->thread_pool()` with at least `parallelism` threads.
Result<ExecutorPtr> BuildGatherExecutor(ExecContext* ctx, const PhysicalNode* plan);

}  // namespace relopt
