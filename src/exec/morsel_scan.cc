#include "exec/morsel_scan.h"

namespace relopt {

MorselScanExecutor::MorselScanExecutor(ExecContext* ctx, Schema schema, MorselSource* source)
    : Executor(ctx, std::move(schema)), source_(source), cursor_(source->heap()) {}

Status MorselScanExecutor::InitImpl() {
  RELOPT_RETURN_NOT_OK(cursor_.Close());
  cur_page_ = 0;
  end_page_ = 0;
  done_ = false;
  ResetCounters();
  return Status::OK();
}

Result<bool> MorselScanExecutor::NextRecord(Rid* rid, std::string_view* record) {
  while (true) {
    if (cursor_.IsOpen()) {
      RELOPT_ASSIGN_OR_RETURN(bool has, cursor_.Next(rid, record));
      if (has) return true;
      RELOPT_RETURN_NOT_OK(cursor_.Close());
    }
    if (done_) return false;
    if (cur_page_ >= end_page_) {
      if (!source_->NextMorsel(&cur_page_, &end_page_)) {
        done_ = true;
        return false;
      }
    }
    RELOPT_RETURN_NOT_OK(cursor_.Open(cur_page_++));
  }
}

Result<bool> MorselScanExecutor::NextImpl(Tuple* out) {
  Rid rid;
  std::string_view bytes;
  RELOPT_ASSIGN_OR_RETURN(bool has, NextRecord(&rid, &bytes));
  if (!has) return false;
  RELOPT_RETURN_NOT_OK(out->FillFrom(bytes, schema_.NumColumns()));
  CountRow();
  return true;
}

Result<bool> MorselScanExecutor::NextBatchImpl(TupleBatch* out) {
  Rid rid;
  std::string_view bytes;
  size_t num_cols = schema_.NumColumns();
  while (!out->Full()) {
    RELOPT_ASSIGN_OR_RETURN(bool has, NextRecord(&rid, &bytes));
    if (!has) {
      CountRows(out->NumSelected());
      return false;
    }
    RELOPT_RETURN_NOT_OK(out->AppendRow()->FillFrom(bytes, num_cols));
  }
  CountRows(out->NumSelected());
  return true;
}

}  // namespace relopt
