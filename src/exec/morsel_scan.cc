#include "exec/morsel_scan.h"

#include <shared_mutex>

#include "storage/slotted_page.h"

namespace relopt {

MorselScanExecutor::MorselScanExecutor(ExecContext* ctx, Schema schema, MorselSource* source)
    : Executor(ctx, std::move(schema)), source_(source) {}

Status MorselScanExecutor::InitImpl() {
  buffer_.clear();
  buffer_idx_ = 0;
  cur_page_ = 0;
  end_page_ = 0;
  done_ = false;
  ResetCounters();
  return Status::OK();
}

Status MorselScanExecutor::FillBuffer() {
  buffer_.clear();
  buffer_idx_ = 0;
  while (true) {
    if (cur_page_ >= end_page_) {
      if (!source_->NextMorsel(&cur_page_, &end_page_)) {
        done_ = true;
        return Status::OK();
      }
    }
    const HeapFile* heap = source_->heap();
    PageId pid{heap->file_id(), cur_page_++};
    RELOPT_ASSIGN_OR_RETURN(PageFrame * frame, heap->pool()->FetchPage(pid));
    Status bad;
    {
      std::shared_lock<std::shared_mutex> latch(frame->latch());
      SlottedPage page(frame->data());
      uint16_t num_slots = page.NumSlots();
      for (uint16_t s = 0; s < num_slots; ++s) {
        if (!page.IsLive(s)) continue;
        Result<std::string_view> rec = page.Get(s);
        if (!rec.ok()) {
          bad = rec.status();
          break;
        }
        Result<Tuple> tuple = Tuple::Deserialize(std::string(*rec), schema_.NumColumns());
        if (!tuple.ok()) {
          bad = tuple.status();
          break;
        }
        buffer_.push_back(tuple.MoveValue());
      }
    }
    RELOPT_RETURN_NOT_OK(heap->pool()->UnpinPage(pid, false));
    RELOPT_RETURN_NOT_OK(bad);
    if (!buffer_.empty()) return Status::OK();
    // Page had no live records; keep going.
  }
}

Result<bool> MorselScanExecutor::NextImpl(Tuple* out) {
  while (buffer_idx_ >= buffer_.size()) {
    if (done_) return false;
    RELOPT_RETURN_NOT_OK(FillBuffer());
  }
  *out = std::move(buffer_[buffer_idx_++]);
  CountRow();
  return true;
}

}  // namespace relopt
