// Block nested loop join: buffer a block of outer rows, scan inner per block.
#pragma once

#include "exec/executor.h"

namespace relopt {

/// Buffers up to `block_pages * kPageSize` bytes of outer rows, then scans
/// the inner once per block — the classic fix that turns N_outer inner scans
/// into ceil(P_outer / B) of them.
class BlockNestedLoopJoinExecutor : public Executor {
 public:
  BlockNestedLoopJoinExecutor(ExecContext* ctx, ExecutorPtr outer, ExecutorPtr inner,
                              const Expression* predicate, size_t block_pages)
      : Executor(ctx, Schema::Concat(outer->schema(), inner->schema())),
        outer_(std::move(outer)),
        inner_(std::move(inner)),
        predicate_(predicate),
        block_bytes_(block_pages * kPageSize) {}

  Status InitImpl() override;
  Result<bool> NextImpl(Tuple* out) override;

 private:
  /// Fills `block_` from the outer child; false if the outer is exhausted
  /// and nothing was buffered.
  Result<bool> LoadBlock();

  ExecutorPtr outer_;
  ExecutorPtr inner_;
  const Expression* predicate_;
  size_t block_bytes_;

  std::vector<Tuple> block_;
  bool outer_done_ = false;
  bool block_active_ = false;  // a block is loaded and the inner scan is live
  Tuple inner_tuple_;
  bool have_inner_ = false;
  size_t block_idx_ = 0;
};

}  // namespace relopt
