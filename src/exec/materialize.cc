#include "exec/materialize.h"

namespace relopt {

Status MaterializeExecutor::InitImpl() {
  ResetCounters();
  if (!spool_) {
    RELOPT_ASSIGN_OR_RETURN(HeapFile heap, ctx_->CreateScratchHeap());
    spool_ = std::make_unique<HeapFile>(std::move(heap));
    RELOPT_RETURN_NOT_OK(child_->Init());
    if (ctx_->batch_size() > 0) {
      // Native batch ingest: spool whole batches, no row-adapter dispatch.
      TupleBatch batch(ctx_->batch_size());
      while (true) {
        RELOPT_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&batch));
        for (size_t k = 0; k < batch.NumSelected(); ++k) {
          RELOPT_ASSIGN_OR_RETURN(Rid rid, spool_->Insert(batch.SelectedRow(k).Serialize()));
          (void)rid;
        }
        if (!has) break;
      }
    } else {
      Tuple t;
      while (true) {
        RELOPT_ASSIGN_OR_RETURN(bool has, child_->Next(&t));
        if (!has) break;
        RELOPT_ASSIGN_OR_RETURN(Rid rid, spool_->Insert(t.Serialize()));
        (void)rid;
      }
    }
  }
  iter_ = std::make_unique<HeapFile::Iterator>(spool_.get());
  return Status::OK();
}

Result<bool> MaterializeExecutor::NextImpl(Tuple* out) {
  Rid rid;
  std::string bytes;
  RELOPT_ASSIGN_OR_RETURN(bool has, iter_->Next(&rid, &bytes));
  if (!has) return false;
  RELOPT_ASSIGN_OR_RETURN(*out, Tuple::Deserialize(bytes, schema_.NumColumns()));
  CountRow();
  return true;
}

}  // namespace relopt
