#include "exec/nested_loop_join.h"

namespace relopt {

Status NestedLoopJoinExecutor::InitImpl() {
  RELOPT_RETURN_NOT_OK(outer_->Init());
  have_outer_ = false;
  ResetCounters();
  return Status::OK();
}

Result<bool> NestedLoopJoinExecutor::NextImpl(Tuple* out) {
  while (true) {
    if (!have_outer_) {
      RELOPT_ASSIGN_OR_RETURN(bool has, outer_->Next(&outer_tuple_));
      if (!has) return false;
      RELOPT_RETURN_NOT_OK(inner_->Init());
      have_outer_ = true;
    }
    Tuple inner_tuple;
    while (true) {
      RELOPT_ASSIGN_OR_RETURN(bool has, inner_->Next(&inner_tuple));
      if (!has) break;
      Tuple combined = Tuple::Concat(outer_tuple_, inner_tuple);
      RELOPT_ASSIGN_OR_RETURN(bool pass, PredicatePasses(predicate_, combined));
      if (pass) {
        *out = std::move(combined);
        CountRow();
        return true;
      }
    }
    have_outer_ = false;
  }
}

}  // namespace relopt
