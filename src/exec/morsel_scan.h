// Morsel-driven parallel table scan: a shared MorselSource hands out
// page-range morsels over a heap file; one MorselScanExecutor per worker
// drains morsels until the source is exhausted (dynamic load balancing).
#pragma once

#include <atomic>

#include "exec/executor.h"
#include "exec/gather.h"
#include "storage/heap_file.h"

namespace relopt {

/// \brief Thread-safe dispenser of page ranges ("morsels") over one heap.
///
/// The page count is snapshotted at Reset() (called by the Gather on the
/// coordinating thread before workers launch), so a scan covers exactly the
/// pages that existed when the query started.
class MorselSource : public ParallelSharedState {
 public:
  /// Pages per morsel: large enough to amortize dispatch, small enough that
  /// the tail of a scan still spreads over all workers.
  static constexpr PageNo kDefaultMorselPages = 4;

  explicit MorselSource(const HeapFile* heap, PageNo morsel_pages = kDefaultMorselPages)
      : heap_(heap), morsel_pages_(morsel_pages) {}

  /// Snapshots the heap size and rewinds the cursor. Single-threaded.
  void Reset() override {
    num_pages_ = static_cast<PageNo>(heap_->NumPages());
    next_.store(0, std::memory_order_relaxed);
  }

  /// Claims the next morsel; false when the heap is exhausted.
  bool NextMorsel(PageNo* begin, PageNo* end) {
    PageNo b = next_.fetch_add(morsel_pages_, std::memory_order_relaxed);
    if (b >= num_pages_) return false;
    *begin = b;
    *end = std::min<PageNo>(b + morsel_pages_, num_pages_);
    return true;
  }

  const HeapFile* heap() const { return heap_; }

 private:
  const HeapFile* heap_;
  const PageNo morsel_pages_;
  std::atomic<PageNo> next_{0};
  PageNo num_pages_ = 0;
};

/// \brief One worker's share of a parallel sequential scan.
///
/// Walks its claimed morsels a page at a time through a HeapFile::PageCursor
/// (pin + shared-latch held across calls, one pool access per page) and
/// deserializes records straight from the pinned frame — no intermediate
/// per-page tuple buffer and no per-record byte copy.
class MorselScanExecutor : public Executor {
 public:
  /// `schema` is the alias-qualified output schema; `source` is shared with
  /// the sibling workers and must outlive the executor.
  MorselScanExecutor(ExecContext* ctx, Schema schema, MorselSource* source);

  Status InitImpl() override;
  Result<bool> NextImpl(Tuple* out) override;
  Result<bool> NextBatchImpl(TupleBatch* out) override;

  /// The cursor keeps the current page pinned (shared frame latch held)
  /// between calls; release it on the worker thread that acquired it.
  void Abandon() override { (void)cursor_.Close(); }

 private:
  /// Next live record across pages and morsels; false once the source is
  /// exhausted. The view stays valid until the next call.
  Result<bool> NextRecord(Rid* rid, std::string_view* record);

  MorselSource* source_;
  HeapFile::PageCursor cursor_;
  PageNo cur_page_ = 0;
  PageNo end_page_ = 0;  ///< current morsel is [cur_page_, end_page_)
  bool done_ = false;
};

}  // namespace relopt
