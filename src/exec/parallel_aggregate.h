// Partitioned parallel hash aggregation: workers accumulate their fragment's
// rows into per-worker hash partitions keyed by the encoded group key, a
// barrier, each worker merges one disjoint partition column, a barrier, then
// every worker emits its own merged partition lock-free.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/aggregate.h"
#include "exec/gather.h"
#include "util/thread_pool.h"

namespace relopt {

/// \brief State shared by the workers of one parallel aggregation.
///
/// Layout: `partitions[w][p]` holds the groups worker `w` accumulated for
/// partition `p` (p = hash(encoded key) % P) while draining its fragment;
/// after the first barrier, worker `k` folds column `k` of that matrix into
/// `merged[k]` with MergeAggGroup. After the second barrier each merged
/// partition is owned read-only by its worker, which emits it. Partition
/// count equals worker count, and a group key lands in exactly one partition,
/// so groups are never split across emitters.
class SharedAggregateState : public ParallelSharedState {
 public:
  using GroupMap = std::unordered_map<std::string, AggGroup>;

  explicit SharedAggregateState(size_t num_workers)
      : num_workers_(num_workers), barrier_(num_workers) {}

  /// Clears partitions, merged maps, and the error slot. Called by the Gather
  /// on the coordinating thread; no worker may be running.
  void Reset() override {
    partitions_.assign(num_workers_, std::vector<GroupMap>(num_workers_));
    merged_.assign(num_workers_, GroupMap{});
    failed_.store(false, std::memory_order_relaxed);
    first_error_ = Status::OK();
  }

  size_t num_workers() const { return num_workers_; }
  Barrier& barrier() { return barrier_; }

  std::vector<GroupMap>& worker_partitions(size_t w) { return partitions_[w]; }
  GroupMap& partition(size_t w, size_t p) { return partitions_[w][p]; }
  GroupMap& merged(size_t p) { return merged_[p]; }

  /// Records the first error any worker hits; later errors are dropped.
  void RecordError(const Status& st) {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!failed_.load(std::memory_order_relaxed)) {
      first_error_ = st;
      failed_.store(true, std::memory_order_release);
    }
  }
  bool failed() const { return failed_.load(std::memory_order_acquire); }
  /// Only meaningful after a barrier following the RecordError calls.
  Status first_error() const {
    std::lock_guard<std::mutex> lock(error_mu_);
    return first_error_;
  }

 private:
  const size_t num_workers_;
  Barrier barrier_;
  std::vector<std::vector<GroupMap>> partitions_;
  std::vector<GroupMap> merged_;

  std::atomic<bool> failed_{false};
  mutable std::mutex error_mu_;
  Status first_error_;
};

/// \brief One worker of a partitioned parallel hash aggregation.
///
/// Init is SPMD: every sibling must reach both barriers on every path
/// (including error paths), so errors are parked in the shared state and
/// re-raised after the second barrier. Exactly `num_workers` siblings must be
/// running concurrently — the fragment builder and Gather guarantee this.
///
/// Under vectorized drive the accumulate phase pulls TupleBatches from the
/// fragment and computes encoded group keys per batch (GroupKeyComputer);
/// emit is native batch too. A global aggregate routes every row to the empty
/// key's partition, whose owner also emits the one default row when the input
/// is empty (matching the serial executor).
class ParallelAggregateWorker : public Executor {
 public:
  ParallelAggregateWorker(ExecContext* ctx, Schema out_schema, ExecutorPtr child,
                          std::vector<const Expression*> group_exprs,
                          std::vector<AggSpecExec> aggs,
                          std::shared_ptr<SharedAggregateState> shared, size_t worker_idx);

  Status InitImpl() override;
  Result<bool> NextImpl(Tuple* out) override;
  Result<bool> NextBatchImpl(TupleBatch* out) override;

  void Abandon() override { child_->Abandon(); }

 private:
  /// Drains this worker's fragment, accumulating each row into
  /// `shared_->partition(worker_idx_, hash(encoded key) % P)`.
  Status AccumulatePhase();
  /// Folds partition column `worker_idx_` into `shared_->merged(worker_idx_)`.
  Status MergePhase();

  ExecutorPtr child_;
  std::vector<const Expression*> group_exprs_;
  std::vector<AggSpecExec> aggs_;
  std::shared_ptr<SharedAggregateState> shared_;
  size_t worker_idx_;

  std::hash<std::string> hasher_;
  /// This worker's merged partition; null until Init completes.
  SharedAggregateState::GroupMap* merged_ = nullptr;
  SharedAggregateState::GroupMap::const_iterator out_iter_;
};

}  // namespace relopt
