// Builds an executor tree from a physical plan.
#pragma once

#include "exec/executor.h"
#include "plan/physical_plan.h"

namespace relopt {

/// \brief Instantiates executors for `plan`. The plan must outlive the
/// executor tree: executors reference the plan's expressions and literal rows
/// rather than copying them.
///
/// When `ctx->parallelism() > 1`, maximal parallelizable subtrees (see
/// SubtreeParallelizable) become Gather-over-worker-fragments; the rest of
/// the tree is built serially. `allow_parallel = false` forbids Gathers in
/// this subtree — used for inner children of nested-loop joins, whose
/// repeated re-Inits would relaunch workers per outer row.
Result<ExecutorPtr> BuildExecutor(ExecContext* ctx, const PhysicalNode* plan,
                                  bool allow_parallel = true);

}  // namespace relopt
