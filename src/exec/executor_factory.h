// Builds an executor tree from a physical plan.
#pragma once

#include "exec/executor.h"
#include "plan/physical_plan.h"

namespace relopt {

/// \brief Instantiates executors for `plan`. The plan must outlive the
/// executor tree: executors reference the plan's expressions and literal rows
/// rather than copying them.
Result<ExecutorPtr> BuildExecutor(ExecContext* ctx, const PhysicalNode* plan);

}  // namespace relopt
