// Volcano-style executor interface and execution context.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "expr/expression.h"
#include "storage/buffer_pool.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/tuple_batch.h"
#include "util/result.h"
#include "util/timer.h"

namespace relopt {

class Executor;
class MetricsRegistry;
class PhysicalNode;
class FeedbackStore;
class PlanCache;
class QueryHistoryStore;
class ThreadPool;

/// \brief Per-operator runtime counters, maintained by the Executor base
/// around every Init()/Next() call.
///
/// `wall_nanos` is inclusive (children's time counts toward their ancestors,
/// as in Postgres EXPLAIN ANALYZE). The I/O fields are exclusive ("self"):
/// page and pool traffic is attributed to the innermost operator whose
/// Init/Next frame was active *on the executing thread* when it happened, so
/// per-node I/O sums to the query totals even under parallel execution
/// (attribution diffs thread-local counters; see storage/io_counters.h).
///
/// One Executor instance is driven by exactly one thread, so the fields are
/// plain integers; parallel plans run one executor clone per worker and merge
/// the clones' stats after the workers have been joined.
struct OperatorStats {
  uint64_t init_calls = 0;   ///< stream (re)starts; >1 under nested loops
  uint64_t next_calls = 0;   ///< Next() + NextBatch() calls
  uint64_t rows_produced = 0;  ///< total across all restarts
  uint64_t batches_produced = 0;  ///< NextBatch() calls (0 in row mode)
  uint64_t fallback_rows = 0;  ///< rows produced/evaluated via row-loop fallback
  uint64_t wall_nanos = 0;     ///< inclusive wall time in Init+Next
  uint64_t first_start_nanos = 0;  ///< first Init, relative to the query epoch
  bool started = false;

  // Self-attributed I/O (excludes children).
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;

  /// Accumulates `other` into this (parallel-worker merge). Wall time sums
  /// (total busy time across workers); first_start takes the earliest.
  void Merge(const OperatorStats& other);
};

/// \brief Per-query execution context: catalog + buffer pool + scratch-file
/// management + runtime counters.
///
/// Scratch heaps (sort runs, Grace partitions, materializations) are created
/// through the context and destroyed with it, so their page I/O is counted by
/// the same DiskManager the optimizer models.
class ExecContext {
 public:
  /// `thread_pool` (with `parallelism` > 1) enables parallel executor
  /// construction; the pool must have at least `parallelism` threads and must
  /// outlive the context. `batch_size` > 0 enables vectorized execution: the
  /// plan driver (and parallel workers) pull TupleBatches of that capacity
  /// through NextBatch(); 0 selects classic row-at-a-time Next().
  ExecContext(Catalog* catalog, BufferPool* pool, ThreadPool* thread_pool = nullptr,
              size_t parallelism = 1, size_t batch_size = TupleBatch::kDefaultCapacity);
  ~ExecContext();

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  Catalog* catalog() const { return catalog_; }
  BufferPool* pool() const { return pool_; }
  ThreadPool* thread_pool() const { return thread_pool_; }
  /// Worker count for parallel fragments (1 = serial execution).
  size_t parallelism() const { return parallelism_; }
  /// Rows per TupleBatch when the query is driven through NextBatch();
  /// 0 = row-at-a-time execution.
  size_t batch_size() const { return batch_size_; }

  /// Creates a scratch heap file (freed when the context dies). Thread-safe.
  Result<HeapFile> CreateScratchHeap();
  /// Frees one scratch heap early (e.g. merged sort runs). Thread-safe.
  void ReleaseScratchHeap(FileId file_id);

  /// Memory budget (in pages) for sort runs / hash tables / BNLJ blocks,
  /// derived from the buffer pool size: operators get roughly the pool minus
  /// a small reserve for pinned I/O pages.
  size_t operator_memory_pages() const;

  /// Total tuples passed through operators (the "RSI calls" actual).
  std::atomic<uint64_t> tuples_processed{0};

  // --- engine introspection (relopt_* table functions) ----------------------

  /// Installs the snapshot sources the introspection table functions read.
  /// Null pointers are allowed (the functions then error or return no rows);
  /// the Database facade wires both before building executors.
  void set_introspection(const MetricsRegistry* metrics, const QueryHistoryStore* history,
                         const PlanCache* plan_cache = nullptr,
                         const FeedbackStore* feedback = nullptr) {
    metrics_registry_ = metrics;
    query_history_ = history;
    plan_cache_ = plan_cache;
    feedback_store_ = feedback;
  }
  const MetricsRegistry* metrics_registry() const { return metrics_registry_; }
  const QueryHistoryStore* query_history() const { return query_history_; }
  const PlanCache* plan_cache() const { return plan_cache_; }
  const FeedbackStore* feedback_store() const { return feedback_store_; }

  // --- per-operator I/O attribution ---------------------------------------

  /// Flushes the calling thread's I/O-counter delta since the last switch
  /// into the thread's currently attributed stats (if any), then makes `next`
  /// the attribution target for this thread. Returns the previous target so
  /// scopes can nest. Attribution state is thread-local: each worker thread
  /// charges exactly the I/O it performed.
  OperatorStats* SwitchAttribution(OperatorStats* next);

  /// Nanoseconds since this context was created (Chrome-trace timestamps).
  uint64_t NanosSinceEpoch() const { return MonotonicNanos() - epoch_nanos_; }

  // --- executor registry (plan profiling) ----------------------------------

  /// Records that `exec` implements `node`; BuildExecutor calls this so
  /// EXPLAIN ANALYZE can map plan nodes to their runtime stats. A node may
  /// have several executors (one clone per parallel worker); the profile
  /// merges their stats. Executors are registered at build time (single
  /// threaded), never while workers run.
  void RegisterExecutor(const PhysicalNode* node, const Executor* exec) {
    executors_[node].push_back(exec);
  }
  /// The executors built for `node` (nullptr if none).
  const std::vector<const Executor*>* FindExecutors(const PhysicalNode* node) const {
    auto it = executors_.find(node);
    return it == executors_.end() ? nullptr : &it->second;
  }

  // --- parallel-work quiescing ---------------------------------------------

  /// Registers a hook that stops in-flight parallel work (a Gather cancelling
  /// its workers). Called at executor-build time, single threaded.
  void AddQuiesceHook(std::function<void()> hook) {
    quiesce_hooks_.push_back(std::move(hook));
  }
  /// Stops all parallel work. The caller (coordinating thread) MUST run this
  /// after the root iterator is abandoned and before reading executor stats
  /// or global I/O counters: an operator like LIMIT can stop consuming while
  /// workers are still producing. Idempotent; hooks outlive their executors
  /// only if this is called while the executor tree is alive.
  void Quiesce() {
    for (const std::function<void()>& hook : quiesce_hooks_) hook();
  }

 private:
  Catalog* catalog_;
  BufferPool* pool_;
  ThreadPool* thread_pool_;
  size_t parallelism_;
  size_t batch_size_;
  std::mutex scratch_mu_;  ///< guards scratch_files_
  std::vector<FileId> scratch_files_;
  std::unordered_map<const PhysicalNode*, std::vector<const Executor*>> executors_;
  std::vector<std::function<void()>> quiesce_hooks_;
  uint64_t epoch_nanos_ = 0;
  const MetricsRegistry* metrics_registry_ = nullptr;
  const QueryHistoryStore* query_history_ = nullptr;
  const PlanCache* plan_cache_ = nullptr;
  const FeedbackStore* feedback_store_ = nullptr;
};

/// RAII attribution frame: the enclosed I/O is charged to `stats`; nested
/// frames (child operators) take over and restore on exit.
class IoAttributionScope {
 public:
  IoAttributionScope(ExecContext* ctx, OperatorStats* stats)
      : ctx_(ctx), prev_(ctx->SwitchAttribution(stats)) {}
  ~IoAttributionScope() { ctx_->SwitchAttribution(prev_); }

  IoAttributionScope(const IoAttributionScope&) = delete;
  IoAttributionScope& operator=(const IoAttributionScope&) = delete;

 private:
  ExecContext* ctx_;
  OperatorStats* prev_;
};

/// \brief Base iterator. Usage: Init(), then Next() until it returns false.
/// Init() may be called again to restart the stream from the beginning
/// (used by nested-loop joins to re-scan their inner input).
///
/// Init/Next are instrumented non-virtual wrappers: they maintain the
/// OperatorStats block (call counts, rows, wall time, self-attributed I/O)
/// and delegate to the virtual InitImpl/NextImpl that operators implement.
class Executor {
 public:
  Executor(ExecContext* ctx, Schema schema) : ctx_(ctx), schema_(std::move(schema)) {}
  virtual ~Executor() = default;

  Status Init() {
    ScopedTimer timer(&stats_.wall_nanos);
    if (!stats_.started) {
      stats_.started = true;
      stats_.first_start_nanos = ctx_->NanosSinceEpoch();
    }
    ++stats_.init_calls;
    IoAttributionScope io(ctx_, &stats_);
    return InitImpl();
  }

  /// Produces the next tuple; false = exhausted.
  Result<bool> Next(Tuple* out) {
    ScopedTimer timer(&stats_.wall_nanos);
    ++stats_.next_calls;
    IoAttributionScope io(ctx_, &stats_);
    RELOPT_ASSIGN_OR_RETURN(bool has, NextImpl(out));
    if (has) ++stats_.rows_produced;
    return has;
  }

  /// Produces the next batch of tuples (vectorized path). Clears `out`, then
  /// fills it with up to out->capacity() rows. Returns false iff the stream
  /// is exhausted — any rows already in `out` are still valid and must be
  /// consumed. Returning true with zero selected rows is legal (e.g. a filter
  /// that rejected a whole input batch); callers just pull again.
  ///
  /// Operators without a native NextBatchImpl fall back to a row-loop adapter
  /// over their own NextImpl, so every operator works under either drive mode.
  /// A given executor instance is driven by exactly one mode per stream.
  Result<bool> NextBatch(TupleBatch* out) {
    ScopedTimer timer(&stats_.wall_nanos);
    ++stats_.next_calls;
    ++stats_.batches_produced;
    IoAttributionScope io(ctx_, &stats_);
    out->Clear();
    RELOPT_ASSIGN_OR_RETURN(bool has, NextBatchImpl(out));
    stats_.rows_produced += out->NumSelected();
    return has;
  }

  const Schema& schema() const { return schema_; }
  uint64_t rows_produced() const { return rows_produced_; }
  const OperatorStats& stats() const { return stats_; }

  /// Releases cross-call resources (pinned pages and their frame latches)
  /// held by this operator subtree, on the *calling* thread. Gather workers
  /// call this when a fragment stops mid-stream (cancellation under LIMIT,
  /// fail-fast on another worker's error): a frame latch acquired on the
  /// worker thread must be released by that same thread, not by the
  /// executor destructor on the session thread — pthread rwlocks make a
  /// cross-thread unlock undefined, and TSan's lock-order bookkeeping keeps
  /// the latch in the worker's held-set forever. Operators holding nothing
  /// across calls inherit the no-op; operators with children forward.
  virtual void Abandon() {}

 protected:
  virtual Status InitImpl() = 0;
  virtual Result<bool> NextImpl(Tuple* out) = 0;
  /// Default adapter: loops NextImpl into reusable batch slots. Native batch
  /// operators override this and must call CountRows() themselves (the
  /// adapter's NextImpl calls already CountRow per row, so it must not).
  virtual Result<bool> NextBatchImpl(TupleBatch* out);

  /// Bump shared + per-node counters when emitting a row.
  void CountRow() {
    ++rows_produced_;
    ctx_->tuples_processed.fetch_add(1, std::memory_order_relaxed);
  }
  /// Batch-mode counterpart of CountRow: charges `n` emitted rows at once.
  void CountRows(uint64_t n) {
    rows_produced_ += n;
    if (n > 0) ctx_->tuples_processed.fetch_add(n, std::memory_order_relaxed);
  }
  /// Reset per-node counters on Init (restarts recount).
  void ResetCounters() { rows_produced_ = 0; }

  ExecContext* ctx_;
  Schema schema_;
  uint64_t rows_produced_ = 0;
  OperatorStats stats_;
};

using ExecutorPtr = std::unique_ptr<Executor>;

/// Evaluates a predicate with SQL semantics: NULL and false both reject.
inline Result<bool> PredicatePasses(const Expression* pred, const Tuple& tuple) {
  if (pred == nullptr) return true;
  RELOPT_ASSIGN_OR_RETURN(Value v, pred->Eval(tuple));
  return !v.is_null() && v.AsBool();
}

}  // namespace relopt
