// Volcano-style executor interface and execution context.
#pragma once

#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "expr/expression.h"
#include "storage/buffer_pool.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "util/result.h"

namespace relopt {

/// \brief Per-query execution context: catalog + buffer pool + scratch-file
/// management + runtime counters.
///
/// Scratch heaps (sort runs, Grace partitions, materializations) are created
/// through the context and destroyed with it, so their page I/O is counted by
/// the same DiskManager the optimizer models.
class ExecContext {
 public:
  ExecContext(Catalog* catalog, BufferPool* pool)
      : catalog_(catalog), pool_(pool) {}
  ~ExecContext();

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  Catalog* catalog() const { return catalog_; }
  BufferPool* pool() const { return pool_; }

  /// Creates a scratch heap file (freed when the context dies).
  Result<HeapFile> CreateScratchHeap();
  /// Frees one scratch heap early (e.g. merged sort runs).
  void ReleaseScratchHeap(FileId file_id);

  /// Memory budget (in pages) for sort runs / hash tables / BNLJ blocks,
  /// derived from the buffer pool size: operators get roughly the pool minus
  /// a small reserve for pinned I/O pages.
  size_t operator_memory_pages() const;

  /// Total tuples passed through operators (the "RSI calls" actual).
  uint64_t tuples_processed = 0;

 private:
  Catalog* catalog_;
  BufferPool* pool_;
  std::vector<FileId> scratch_files_;
};

/// \brief Base iterator. Usage: Init(), then Next() until it returns false.
/// Init() may be called again to restart the stream from the beginning
/// (used by nested-loop joins to re-scan their inner input).
class Executor {
 public:
  Executor(ExecContext* ctx, Schema schema) : ctx_(ctx), schema_(std::move(schema)) {}
  virtual ~Executor() = default;

  virtual Status Init() = 0;
  /// Produces the next tuple; false = exhausted.
  virtual Result<bool> Next(Tuple* out) = 0;

  const Schema& schema() const { return schema_; }
  uint64_t rows_produced() const { return rows_produced_; }

 protected:
  /// Bump shared + per-node counters when emitting a row.
  void CountRow() {
    ++rows_produced_;
    ++ctx_->tuples_processed;
  }
  /// Reset per-node counters on Init (restarts recount).
  void ResetCounters() { rows_produced_ = 0; }

  ExecContext* ctx_;
  Schema schema_;
  uint64_t rows_produced_ = 0;
};

using ExecutorPtr = std::unique_ptr<Executor>;

/// Evaluates a predicate with SQL semantics: NULL and false both reject.
inline Result<bool> PredicatePasses(const Expression* pred, const Tuple& tuple) {
  if (pred == nullptr) return true;
  RELOPT_ASSIGN_OR_RETURN(Value v, pred->Eval(tuple));
  return !v.is_null() && v.AsBool();
}

}  // namespace relopt
