// Volcano-style executor interface and execution context.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "expr/expression.h"
#include "storage/buffer_pool.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "util/result.h"
#include "util/timer.h"

namespace relopt {

class Executor;
class PhysicalNode;

/// \brief Per-operator runtime counters, maintained by the Executor base
/// around every Init()/Next() call.
///
/// `wall_nanos` is inclusive (children's time counts toward their ancestors,
/// as in Postgres EXPLAIN ANALYZE). The I/O fields are exclusive ("self"):
/// page and pool traffic is attributed to the innermost operator whose
/// Init/Next frame was active when it happened, so per-node I/O sums to the
/// query totals.
struct OperatorStats {
  uint64_t init_calls = 0;   ///< stream (re)starts; >1 under nested loops
  uint64_t next_calls = 0;
  uint64_t rows_produced = 0;  ///< total across all restarts
  uint64_t wall_nanos = 0;     ///< inclusive wall time in Init+Next
  uint64_t first_start_nanos = 0;  ///< first Init, relative to the query epoch
  bool started = false;

  // Self-attributed I/O (excludes children).
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
};

/// \brief Per-query execution context: catalog + buffer pool + scratch-file
/// management + runtime counters.
///
/// Scratch heaps (sort runs, Grace partitions, materializations) are created
/// through the context and destroyed with it, so their page I/O is counted by
/// the same DiskManager the optimizer models.
class ExecContext {
 public:
  ExecContext(Catalog* catalog, BufferPool* pool);
  ~ExecContext();

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  Catalog* catalog() const { return catalog_; }
  BufferPool* pool() const { return pool_; }

  /// Creates a scratch heap file (freed when the context dies).
  Result<HeapFile> CreateScratchHeap();
  /// Frees one scratch heap early (e.g. merged sort runs).
  void ReleaseScratchHeap(FileId file_id);

  /// Memory budget (in pages) for sort runs / hash tables / BNLJ blocks,
  /// derived from the buffer pool size: operators get roughly the pool minus
  /// a small reserve for pinned I/O pages.
  size_t operator_memory_pages() const;

  /// Total tuples passed through operators (the "RSI calls" actual).
  uint64_t tuples_processed = 0;

  // --- per-operator I/O attribution ---------------------------------------

  /// Flushes the disk/pool counter delta since the last switch into the
  /// currently attributed stats (if any), then makes `next` the attribution
  /// target. Returns the previous target so scopes can nest.
  OperatorStats* SwitchAttribution(OperatorStats* next);

  /// Nanoseconds since this context was created (Chrome-trace timestamps).
  uint64_t NanosSinceEpoch() const { return MonotonicNanos() - epoch_nanos_; }

  // --- executor registry (plan profiling) ----------------------------------

  /// Records which executor implements `node`; BuildExecutor calls this so
  /// EXPLAIN ANALYZE can map plan nodes to their runtime stats.
  void RegisterExecutor(const PhysicalNode* node, const Executor* exec) {
    executors_[node] = exec;
  }
  /// The executor built for `node`, or nullptr.
  const Executor* FindExecutor(const PhysicalNode* node) const {
    auto it = executors_.find(node);
    return it == executors_.end() ? nullptr : it->second;
  }

 private:
  Catalog* catalog_;
  BufferPool* pool_;
  std::vector<FileId> scratch_files_;
  std::unordered_map<const PhysicalNode*, const Executor*> executors_;

  OperatorStats* io_owner_ = nullptr;  ///< current attribution target
  uint64_t cp_reads_ = 0, cp_writes_ = 0, cp_hits_ = 0, cp_misses_ = 0;
  uint64_t epoch_nanos_ = 0;
};

/// RAII attribution frame: the enclosed I/O is charged to `stats`; nested
/// frames (child operators) take over and restore on exit.
class IoAttributionScope {
 public:
  IoAttributionScope(ExecContext* ctx, OperatorStats* stats)
      : ctx_(ctx), prev_(ctx->SwitchAttribution(stats)) {}
  ~IoAttributionScope() { ctx_->SwitchAttribution(prev_); }

  IoAttributionScope(const IoAttributionScope&) = delete;
  IoAttributionScope& operator=(const IoAttributionScope&) = delete;

 private:
  ExecContext* ctx_;
  OperatorStats* prev_;
};

/// \brief Base iterator. Usage: Init(), then Next() until it returns false.
/// Init() may be called again to restart the stream from the beginning
/// (used by nested-loop joins to re-scan their inner input).
///
/// Init/Next are instrumented non-virtual wrappers: they maintain the
/// OperatorStats block (call counts, rows, wall time, self-attributed I/O)
/// and delegate to the virtual InitImpl/NextImpl that operators implement.
class Executor {
 public:
  Executor(ExecContext* ctx, Schema schema) : ctx_(ctx), schema_(std::move(schema)) {}
  virtual ~Executor() = default;

  Status Init() {
    ScopedTimer timer(&stats_.wall_nanos);
    if (!stats_.started) {
      stats_.started = true;
      stats_.first_start_nanos = ctx_->NanosSinceEpoch();
    }
    ++stats_.init_calls;
    IoAttributionScope io(ctx_, &stats_);
    return InitImpl();
  }

  /// Produces the next tuple; false = exhausted.
  Result<bool> Next(Tuple* out) {
    ScopedTimer timer(&stats_.wall_nanos);
    ++stats_.next_calls;
    IoAttributionScope io(ctx_, &stats_);
    RELOPT_ASSIGN_OR_RETURN(bool has, NextImpl(out));
    if (has) ++stats_.rows_produced;
    return has;
  }

  const Schema& schema() const { return schema_; }
  uint64_t rows_produced() const { return rows_produced_; }
  const OperatorStats& stats() const { return stats_; }

 protected:
  virtual Status InitImpl() = 0;
  virtual Result<bool> NextImpl(Tuple* out) = 0;

  /// Bump shared + per-node counters when emitting a row.
  void CountRow() {
    ++rows_produced_;
    ++ctx_->tuples_processed;
  }
  /// Reset per-node counters on Init (restarts recount).
  void ResetCounters() { rows_produced_ = 0; }

  ExecContext* ctx_;
  Schema schema_;
  uint64_t rows_produced_ = 0;
  OperatorStats stats_;
};

using ExecutorPtr = std::unique_ptr<Executor>;

/// Evaluates a predicate with SQL semantics: NULL and false both reject.
inline Result<bool> PredicatePasses(const Expression* pred, const Tuple& tuple) {
  if (pred == nullptr) return true;
  RELOPT_ASSIGN_OR_RETURN(Value v, pred->Eval(tuple));
  return !v.is_null() && v.AsBool();
}

}  // namespace relopt
