#include "exec/parallel_aggregate.h"

#include "expr/vector_eval.h"
#include "types/key_codec.h"

namespace relopt {

ParallelAggregateWorker::ParallelAggregateWorker(ExecContext* ctx, Schema out_schema,
                                                 ExecutorPtr child,
                                                 std::vector<const Expression*> group_exprs,
                                                 std::vector<AggSpecExec> aggs,
                                                 std::shared_ptr<SharedAggregateState> shared,
                                                 size_t worker_idx)
    : Executor(ctx, std::move(out_schema)),
      child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)),
      shared_(std::move(shared)),
      worker_idx_(worker_idx) {}

Status ParallelAggregateWorker::AccumulatePhase() {
  const size_t num_parts = shared_->num_workers();
  std::vector<SharedAggregateState::GroupMap>& mine = shared_->worker_partitions(worker_idx_);
  RELOPT_RETURN_NOT_OK(child_->Init());
  if (ctx_->batch_size() > 0) {
    GroupKeyComputer key_computer(&group_exprs_);
    TupleBatch batch(ctx_->batch_size());
    std::vector<std::string> keys;
    while (true) {
      RELOPT_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&batch));
      RELOPT_RETURN_NOT_OK(key_computer.Compute(batch, &keys, &stats_.fallback_rows));
      for (size_t k = 0; k < batch.NumSelected(); ++k) {
        RELOPT_RETURN_NOT_OK(AccumulateKeyedRowWith(
            [&](size_t i) { return key_computer.KeyValue(i, k); }, group_exprs_.size(), aggs_,
            keys[k], batch.SelectedRow(k), &mine[hasher_(keys[k]) % num_parts]));
      }
      if (!has) break;
    }
  } else {
    Tuple t;
    std::string enc;
    while (true) {
      RELOPT_ASSIGN_OR_RETURN(bool has, child_->Next(&t));
      if (!has) break;
      enc.clear();
      for (const Expression* g : group_exprs_) {
        RELOPT_ASSIGN_OR_RETURN(Value v, g->Eval(t));
        EncodeKeyValue(v, &enc);
      }
      RELOPT_RETURN_NOT_OK(
          AccumulateKeyedRow(group_exprs_, aggs_, enc, t, &mine[hasher_(enc) % num_parts]));
    }
  }
  return Status::OK();
}

Status ParallelAggregateWorker::MergePhase() {
  SharedAggregateState::GroupMap& merged = shared_->merged(worker_idx_);
  for (size_t w = 0; w < shared_->num_workers(); ++w) {
    SharedAggregateState::GroupMap& part = shared_->partition(w, worker_idx_);
    if (merged.empty()) {
      merged = std::move(part);
    } else {
      for (auto& kv : part) {
        auto it = merged.find(kv.first);
        if (it == merged.end()) {
          merged.emplace(kv.first, std::move(kv.second));
        } else {
          RELOPT_RETURN_NOT_OK(MergeAggGroup(aggs_, kv.second, &it->second));
        }
      }
    }
    part.clear();
  }
  // Scalar aggregate over an empty input still yields one (default) row,
  // emitted by the worker owning the empty key's partition.
  if (group_exprs_.empty() && merged.empty() &&
      hasher_(std::string()) % shared_->num_workers() == worker_idx_) {
    AggGroup group;
    group.accs.resize(aggs_.size());
    merged.emplace(std::string(), std::move(group));
  }
  return Status::OK();
}

Status ParallelAggregateWorker::InitImpl() {
  merged_ = nullptr;
  ResetCounters();

  // SPMD discipline: park errors in the shared state and hit both barriers
  // unconditionally, or a sibling deadlocks waiting for us.
  Status st = AccumulatePhase();
  if (!st.ok()) shared_->RecordError(st);
  shared_->barrier().ArriveAndWait();  // all fragment rows partitioned

  if (!shared_->failed()) {
    st = MergePhase();
    if (!st.ok()) shared_->RecordError(st);
  }
  shared_->barrier().ArriveAndWait();  // all partitions merged; errors settled

  if (shared_->failed()) return shared_->first_error();
  merged_ = &shared_->merged(worker_idx_);
  out_iter_ = merged_->begin();
  return Status::OK();
}

Result<bool> ParallelAggregateWorker::NextImpl(Tuple* out) {
  if (merged_ == nullptr || out_iter_ == merged_->end()) return false;
  out->Clear();
  RELOPT_RETURN_NOT_OK(EmitAggGroup(aggs_, out_iter_->second, out));
  ++out_iter_;
  CountRow();
  return true;
}

Result<bool> ParallelAggregateWorker::NextBatchImpl(TupleBatch* out) {
  if (merged_ == nullptr) return false;
  while (!out->Full() && out_iter_ != merged_->end()) {
    RELOPT_RETURN_NOT_OK(EmitAggGroup(aggs_, out_iter_->second, out->AppendRow()));
    ++out_iter_;
  }
  CountRows(out->NumSelected());
  return out_iter_ != merged_->end();
}

}  // namespace relopt
