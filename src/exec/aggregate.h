// Hash aggregation executor.
#pragma once

#include <map>

#include "exec/executor.h"

namespace relopt {

/// One aggregate to compute at execution time.
struct AggSpecExec {
  AggFunc func;
  const Expression* arg;  // null for COUNT(*)
};

/// \brief Hash (here: ordered-map) aggregation. Groups on the encoded group
/// key, so NULLs group together (SQL GROUP BY semantics) and output order is
/// deterministic (ascending group key).
///
/// SQL semantics: COUNT(*) counts rows; COUNT/SUM/MIN/MAX/AVG ignore NULL
/// arguments; SUM/MIN/MAX/AVG over zero non-null inputs yield NULL. With no
/// GROUP BY, an empty input still produces one row.
class AggregateExecutor : public Executor {
 public:
  AggregateExecutor(ExecContext* ctx, Schema out_schema, ExecutorPtr child,
                    std::vector<const Expression*> group_exprs, std::vector<AggSpecExec> aggs);

  Status InitImpl() override;
  Result<bool> NextImpl(Tuple* out) override;

 private:
  struct Accumulator {
    int64_t count = 0;        // COUNT(expr) / COUNT(*) and AVG denominator
    double sum_d = 0;
    int64_t sum_i = 0;
    bool sum_is_int = true;
    bool has_value = false;   // any non-null input seen
    Value min;
    Value max;
  };

  struct Group {
    std::vector<Value> keys;
    std::vector<Accumulator> accs;
  };

  Status Accumulate(Group* group, const Tuple& tuple);
  Result<Value> Finalize(const Accumulator& acc, const AggSpecExec& spec) const;

  ExecutorPtr child_;
  std::vector<const Expression*> group_exprs_;
  std::vector<AggSpecExec> aggs_;

  std::map<std::string, Group> groups_;
  std::map<std::string, Group>::const_iterator out_iter_;
  bool done_build_ = false;
};

}  // namespace relopt
