// Hash aggregation: the serial executor plus the accumulate/merge/finalize
// core shared with the parallel partitioned aggregation workers.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "expr/vector_eval.h"

namespace relopt {

/// One aggregate to compute at execution time.
struct AggSpecExec {
  AggFunc func;
  const Expression* arg;  // null for COUNT(*)
};

/// \brief Running state of one aggregate within one group.
///
/// Integer SUM/AVG accumulate into a checked int64: SUM reports OutOfRange
/// instead of wrapping on overflow, AVG widens to double (its result is a
/// double anyway). Any double input also switches the accumulator to `sum_d`.
struct AggAccumulator {
  int64_t count = 0;  // COUNT(expr) / COUNT(*) and AVG denominator
  double sum_d = 0;
  int64_t sum_i = 0;
  bool sum_is_int = true;
  bool has_value = false;  // any non-null input seen
  Value min;
  Value max;
};

/// One group: its key values plus one accumulator per aggregate.
struct AggGroup {
  std::vector<Value> keys;
  std::vector<AggAccumulator> accs;
};

/// Folds one input row into `group`. SQL semantics: COUNT(*) counts rows;
/// COUNT/SUM/MIN/MAX/AVG ignore NULL arguments.
Status AccumulateTuple(const std::vector<AggSpecExec>& aggs, const Tuple& tuple, AggGroup* group);

/// Merges the partial accumulators of `from` into `into` (same group key,
/// accumulated separately by different workers). Merge is associative and
/// commutative with AccumulateTuple — counts and sums add, min/max compare —
/// so partitioned parallel aggregation produces exactly the serial result.
Status MergeAggGroup(const std::vector<AggSpecExec>& aggs, const AggGroup& from, AggGroup* into);

/// Final value of one aggregate. SUM/MIN/MAX/AVG over zero non-null inputs
/// yield NULL; COUNT yields 0.
Result<Value> FinalizeAggregate(const AggSpecExec& spec, const AggAccumulator& acc);

/// Appends `group`'s key values and finalized aggregates to `out` — the
/// output row layout shared by the serial executor and the parallel workers.
/// `out` must be clear.
Status EmitAggGroup(const std::vector<AggSpecExec>& aggs, const AggGroup& group, Tuple* out);

/// Finds-or-creates the group for encoded key `enc` in `groups` and folds
/// `tuple` into it. Group key values are evaluated only on a miss (once per
/// group). Works over any map<string, AggGroup> (the serial executor's
/// ordered map, the parallel workers' unordered partitions).
template <typename GroupMap>
Status AccumulateKeyedRow(const std::vector<const Expression*>& group_exprs,
                          const std::vector<AggSpecExec>& aggs, const std::string& enc,
                          const Tuple& tuple, GroupMap* groups) {
  auto it = groups->find(enc);
  if (it == groups->end()) {
    AggGroup group;
    group.keys.reserve(group_exprs.size());
    for (const Expression* g : group_exprs) {
      RELOPT_ASSIGN_OR_RETURN(Value v, g->Eval(tuple));
      group.keys.push_back(std::move(v));
    }
    group.accs.resize(aggs.size());
    it = groups->emplace(enc, std::move(group)).first;
  }
  return AccumulateTuple(aggs, tuple, &it->second);
}

/// As AccumulateKeyedRow, but materializes group key values on a miss from
/// `key_value_fn(i)` (the value of group expression `i` for this row) instead
/// of re-evaluating the group expressions — the batch drive already has them
/// in the key computer's column vectors.
template <typename GroupMap, typename KeyValueFn>
Status AccumulateKeyedRowWith(KeyValueFn&& key_value_fn, size_t num_keys,
                              const std::vector<AggSpecExec>& aggs, const std::string& enc,
                              const Tuple& tuple, GroupMap* groups) {
  auto it = groups->find(enc);
  if (it == groups->end()) {
    AggGroup group;
    group.keys.reserve(num_keys);
    for (size_t i = 0; i < num_keys; ++i) group.keys.push_back(key_value_fn(i));
    group.accs.resize(aggs.size());
    it = groups->emplace(enc, std::move(group)).first;
  }
  return AccumulateTuple(aggs, tuple, &it->second);
}

/// \brief Hash (here: ordered-map) aggregation. Groups on the encoded group
/// key, so NULLs group together (SQL GROUP BY semantics) and output order is
/// deterministic (ascending group key).
///
/// SQL semantics: COUNT(*) counts rows; COUNT/SUM/MIN/MAX/AVG ignore NULL
/// arguments; SUM/MIN/MAX/AVG over zero non-null inputs yield NULL. With no
/// GROUP BY, an empty input still produces one row.
///
/// Under vectorized drive (ctx batch_size > 0) both sides are native batch:
/// ingest pulls TupleBatches from the child and computes encoded group keys
/// per batch (GroupKeyComputer), emit fills output batches a group row at a
/// time. Row drive is byte-identical to the pre-vectorized path.
class AggregateExecutor : public Executor {
 public:
  AggregateExecutor(ExecContext* ctx, Schema out_schema, ExecutorPtr child,
                    std::vector<const Expression*> group_exprs, std::vector<AggSpecExec> aggs);

  Status InitImpl() override;
  Result<bool> NextImpl(Tuple* out) override;
  Result<bool> NextBatchImpl(TupleBatch* out) override;

 private:
  /// Finds-or-creates the group for `enc` and accumulates `tuple` into it.
  /// Group key values are evaluated only on a miss (once per group).
  Status IngestRow(const std::string& enc, const Tuple& tuple);
  Status IngestRowStream();
  Status IngestBatchStream();

  ExecutorPtr child_;
  std::vector<const Expression*> group_exprs_;
  std::vector<AggSpecExec> aggs_;
  GroupKeyComputer key_computer_;  ///< batched group-key encoding (batch drive)

  std::map<std::string, AggGroup> groups_;
  std::map<std::string, AggGroup>::const_iterator out_iter_;
  bool done_build_ = false;
};

}  // namespace relopt
