// Gather: the exchange operator bridging parallel workers back into the
// serial Volcano protocol.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "exec/executor.h"

namespace relopt {

/// Shared state used by a parallel fragment (morsel cursors, join partition
/// tables). The Gather resets every piece of shared state on (re)Init, on the
/// coordinating thread, before any worker launches.
class ParallelSharedState {
 public:
  virtual ~ParallelSharedState() = default;
  virtual void Reset() = 0;
};

/// \brief Runs N worker executors on the thread pool and merges their output
/// streams into one iterator.
///
/// Protocol: InitImpl resets shared state and submits one task per worker;
/// each task runs its worker's Init, then drains it, pushing row batches into
/// a bounded queue. NextImpl pops batches. Errors from any worker surface
/// from Next (first error wins) after all workers have stopped. Row order is
/// nondeterministic; operators above (Sort, Aggregate) impose order.
///
/// Re-Init (e.g. under a restarted outer) joins the previous worker
/// generation, resets shared state, and relaunches. The destructor cancels
/// and joins, so abandoning a partially drained Gather (LIMIT) is safe.
class GatherExecutor : public Executor {
 public:
  /// `workers.size()` tasks run concurrently: the context's thread pool must
  /// have at least that many threads (BuildGatherExecutor sizes both from
  /// ExecContext::parallelism, workers never block on unstarted peers).
  GatherExecutor(ExecContext* ctx, Schema schema, std::vector<ExecutorPtr> workers,
                 std::vector<std::shared_ptr<ParallelSharedState>> shared_states);
  ~GatherExecutor() override;

  Status InitImpl() override;
  Result<bool> NextImpl(Tuple* out) override;
  /// Adopts one queue batch per call by moving its tuples into `out` —
  /// workers already ship row vectors, so the batch path stops re-flattening
  /// them into single rows.
  Result<bool> NextBatchImpl(TupleBatch* out) override;

 private:
  /// Rows per queue batch: amortizes queue locking without adding latency
  /// anyone can observe (the consumer only ever waits for the *first* batch).
  /// Row-drive mode only; in batch mode workers ship ctx batch_size rows.
  static constexpr size_t kBatchRows = 256;

  void WorkerMain(size_t worker_idx);
  /// Pops the next nonempty queue batch into `batch_`/`batch_idx_`. False at
  /// end of stream; surfaces the first worker error.
  Result<bool> PopBatch();
  /// Blocks while the queue is full; false if cancelled (stop producing).
  bool PushBatch(std::vector<Tuple>* batch);
  /// Cancels and waits until every launched worker has finished.
  void StopWorkers();

  std::vector<ExecutorPtr> workers_;
  std::vector<std::shared_ptr<ParallelSharedState>> shared_states_;

  std::mutex mu_;
  std::condition_variable producer_cv_;  ///< queue has room / cancelled
  std::condition_variable consumer_cv_;  ///< queue nonempty / workers done
  std::deque<std::vector<Tuple>> queue_;
  size_t running_workers_ = 0;
  bool cancelled_ = false;
  bool launched_ = false;
  bool has_error_ = false;
  std::vector<Status> worker_status_;

  // Consumer-side current batch (main thread only).
  std::vector<Tuple> batch_;
  size_t batch_idx_ = 0;
};

}  // namespace relopt
