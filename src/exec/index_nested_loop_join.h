// Index nested loop join: probe a B+tree on the inner table per outer row.
#pragma once

#include "exec/executor.h"

namespace relopt {

class IndexNestedLoopJoinExecutor : public Executor {
 public:
  /// `outer_key_exprs` (bound to the outer schema) produce the probe key;
  /// they must align with a prefix of `index`'s key columns. `residual` is
  /// bound to the concatenated schema.
  IndexNestedLoopJoinExecutor(ExecContext* ctx, ExecutorPtr outer, TableInfo* inner_table,
                              IndexInfo* index, Schema inner_schema,
                              const std::vector<ExprPtr>* outer_key_exprs,
                              const Expression* residual)
      : Executor(ctx, Schema::Concat(outer->schema(), inner_schema)),
        outer_(std::move(outer)),
        inner_table_(inner_table),
        index_(index),
        outer_key_exprs_(outer_key_exprs),
        residual_(residual) {}

  Status InitImpl() override;
  Result<bool> NextImpl(Tuple* out) override;

 private:
  ExecutorPtr outer_;
  TableInfo* inner_table_;
  IndexInfo* index_;
  const std::vector<ExprPtr>* outer_key_exprs_;
  const Expression* residual_;

  Tuple outer_tuple_;
  std::vector<Rid> matches_;
  size_t match_idx_ = 0;
  bool have_outer_ = false;
};

}  // namespace relopt
