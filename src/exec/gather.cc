#include "exec/gather.h"

#include "util/logging.h"
#include "util/thread_pool.h"

namespace relopt {

GatherExecutor::GatherExecutor(ExecContext* ctx, Schema schema, std::vector<ExecutorPtr> workers,
                               std::vector<std::shared_ptr<ParallelSharedState>> shared_states)
    : Executor(ctx, std::move(schema)),
      workers_(std::move(workers)),
      shared_states_(std::move(shared_states)) {
  // An abandoned Gather (e.g. under LIMIT) leaves workers producing;
  // ExecContext::Quiesce lets the coordinator stop them before it reads
  // stats or I/O counters.
  ctx->AddQuiesceHook([this] { StopWorkers(); });
}

GatherExecutor::~GatherExecutor() { StopWorkers(); }

void GatherExecutor::StopWorkers() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!launched_) return;
  cancelled_ = true;
  producer_cv_.notify_all();
  // Workers blocked on a full queue wake on cancelled_; workers inside a
  // barrier always reach it (build phases never touch the queue), so every
  // task terminates.
  consumer_cv_.wait(lock, [this] { return running_workers_ == 0; });
  queue_.clear();
  launched_ = false;
}

Status GatherExecutor::InitImpl() {
  StopWorkers();
  ResetCounters();
  batch_.clear();
  batch_idx_ = 0;
  for (const std::shared_ptr<ParallelSharedState>& s : shared_states_) s->Reset();

  ThreadPool* pool = ctx_->thread_pool();
  RELOPT_DCHECK(pool != nullptr && pool->num_threads() >= workers_.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = false;
    launched_ = true;
    has_error_ = false;
    worker_status_.assign(workers_.size(), Status::OK());
    running_workers_ = workers_.size();
  }
  // Worker loops coordinate with barriers (parallel build phases), so they
  // must all run concurrently. Gang admission blocks this coordinator — a
  // session thread, never a pool thread — until the pool can run the whole
  // set, so two sessions' gangs never interleave in the queue and deadlock.
  std::vector<std::function<void()>> gang;
  gang.reserve(workers_.size());
  for (size_t i = 0; i < workers_.size(); ++i) {
    gang.push_back([this, i] { WorkerMain(i); });
  }
  pool->SubmitGang(std::move(gang));
  return Status::OK();
}

bool GatherExecutor::PushBatch(std::vector<Tuple>* batch) {
  // Bound the queue so fast workers don't materialize the whole result:
  // a couple of batches in flight per worker keeps everyone busy.
  const size_t max_queue = 2 * workers_.size() + 2;
  std::unique_lock<std::mutex> lock(mu_);
  producer_cv_.wait(lock, [&] { return cancelled_ || queue_.size() < max_queue; });
  if (cancelled_) return false;
  queue_.push_back(std::move(*batch));
  batch->clear();
  consumer_cv_.notify_one();
  return true;
}

void GatherExecutor::WorkerMain(size_t worker_idx) {
  Executor* exec = workers_[worker_idx].get();
  Status st = exec->Init();
  if (st.ok() && ctx_->batch_size() > 0) {
    // Vectorized drive: pull batches through the fragment (so a native-batch
    // scan/filter/project subtree keeps its fast path) and ship each batch's
    // selected rows as one queue vector.
    TupleBatch batch(ctx_->batch_size());
    std::vector<Tuple> rows;
    while (true) {
      Result<bool> has = exec->NextBatch(&batch);
      if (!has.ok()) {
        st = has.status();
        break;
      }
      if (batch.NumSelected() > 0) {
        rows.reserve(batch.NumSelected());
        for (uint32_t i : batch.selection()) rows.push_back(std::move(*batch.MutableRowAt(i)));
        if (!PushBatch(&rows)) break;
      }
      if (!*has) break;
    }
  } else if (st.ok()) {
    std::vector<Tuple> batch;
    batch.reserve(kBatchRows);
    Tuple t;
    while (true) {
      Result<bool> has = exec->Next(&t);
      if (!has.ok()) {
        st = has.status();
        break;
      }
      if (!*has) break;
      batch.push_back(std::move(t));
      if (batch.size() >= kBatchRows && !PushBatch(&batch)) break;
    }
    if (st.ok() && !batch.empty()) PushBatch(&batch);
  }
  // Release any page still pinned by this fragment (cancelled or errored
  // mid-scan) on this thread — frame latches must be unlocked by the thread
  // that acquired them. No-op after a clean drain.
  exec->Abandon();
  std::lock_guard<std::mutex> lock(mu_);
  if (!st.ok()) {
    worker_status_[worker_idx] = std::move(st);
    has_error_ = true;
  }
  --running_workers_;
  consumer_cv_.notify_all();
}

Result<bool> GatherExecutor::PopBatch() {
  while (true) {
    std::unique_lock<std::mutex> lock(mu_);
    consumer_cv_.wait(lock,
                      [this] { return has_error_ || !queue_.empty() || running_workers_ == 0; });
    if (has_error_) {
      // Fail fast: cancel the remaining workers, then surface the first
      // (lowest worker index) error, matching serial fail-on-first-error.
      lock.unlock();
      StopWorkers();
      for (Status& st : worker_status_) {
        if (!st.ok()) return st;
      }
      return Status::Internal("gather error flag set without a worker status");
    }
    if (!queue_.empty()) {
      batch_ = std::move(queue_.front());
      queue_.pop_front();
      batch_idx_ = 0;
      producer_cv_.notify_all();
      if (batch_.empty()) continue;  // workers never push empty, but be safe
      return true;
    }
    // All workers finished and the queue is drained.
    launched_ = false;
    return false;
  }
}

Result<bool> GatherExecutor::NextImpl(Tuple* out) {
  while (batch_idx_ >= batch_.size()) {
    RELOPT_ASSIGN_OR_RETURN(bool has, PopBatch());
    if (!has) return false;
  }
  *out = std::move(batch_[batch_idx_++]);
  CountRow();
  return true;
}

Result<bool> GatherExecutor::NextBatchImpl(TupleBatch* out) {
  // One queue vector per call, adopted by move. Workers in batch mode ship at
  // most ctx batch_size rows per vector, so it always fits `out`. A stream is
  // driven in exactly one mode, so there are no row-path leftovers in batch_.
  RELOPT_ASSIGN_OR_RETURN(bool has, PopBatch());
  if (!has) return false;
  for (Tuple& t : batch_) out->AppendTuple(std::move(t));
  batch_.clear();
  batch_idx_ = 0;
  CountRows(out->NumSelected());
  return true;
}

}  // namespace relopt
