#include "exec/executor.h"

namespace relopt {

ExecContext::~ExecContext() {
  for (FileId id : scratch_files_) {
    (void)pool_->DropFilePages(id);
    pool_->disk()->DeleteFile(id);
  }
}

Result<HeapFile> ExecContext::CreateScratchHeap() {
  RELOPT_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Create(pool_));
  scratch_files_.push_back(heap.file_id());
  return heap;
}

void ExecContext::ReleaseScratchHeap(FileId file_id) {
  for (auto it = scratch_files_.begin(); it != scratch_files_.end(); ++it) {
    if (*it == file_id) {
      scratch_files_.erase(it);
      break;
    }
  }
  (void)pool_->DropFilePages(file_id);
  pool_->disk()->DeleteFile(file_id);
}

size_t ExecContext::operator_memory_pages() const {
  size_t cap = pool_->capacity();
  // Reserve a handful of frames for concurrently pinned I/O pages.
  return cap > 8 ? cap - 8 : 1;
}

}  // namespace relopt
