#include "exec/executor.h"

#include <algorithm>

#include "storage/io_counters.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace relopt {

namespace {

/// The calling thread's attribution frame: which OperatorStats is charged for
/// I/O on this thread, and the thread-local counter values at the last
/// switch. Thread-local so concurrent workers never race on checkpoints.
struct ThreadAttribution {
  OperatorStats* owner = nullptr;
  ThreadIoCounters checkpoint;
};

ThreadAttribution& LocalAttribution() {
  thread_local ThreadAttribution attribution;
  return attribution;
}

}  // namespace

void OperatorStats::Merge(const OperatorStats& other) {
  init_calls += other.init_calls;
  next_calls += other.next_calls;
  rows_produced += other.rows_produced;
  batches_produced += other.batches_produced;
  fallback_rows += other.fallback_rows;
  wall_nanos += other.wall_nanos;
  if (other.started) {
    first_start_nanos =
        started ? std::min(first_start_nanos, other.first_start_nanos) : other.first_start_nanos;
    started = true;
  }
  page_reads += other.page_reads;
  page_writes += other.page_writes;
  pool_hits += other.pool_hits;
  pool_misses += other.pool_misses;
}

ExecContext::ExecContext(Catalog* catalog, BufferPool* pool, ThreadPool* thread_pool,
                         size_t parallelism, size_t batch_size)
    : catalog_(catalog),
      pool_(pool),
      thread_pool_(thread_pool),
      parallelism_(thread_pool == nullptr ? 1 : std::max<size_t>(1, parallelism)),
      batch_size_(batch_size),
      epoch_nanos_(MonotonicNanos()) {}

ExecContext::~ExecContext() {
  for (FileId id : scratch_files_) {
    (void)pool_->DropFilePages(id);
    pool_->disk()->DeleteFile(id);
  }
}

OperatorStats* ExecContext::SwitchAttribution(OperatorStats* next) {
  ThreadAttribution& attr = LocalAttribution();
  const ThreadIoCounters& now = LocalIoCounters();
  if (attr.owner != nullptr) {
    attr.owner->page_reads += now.page_reads - attr.checkpoint.page_reads;
    attr.owner->page_writes += now.page_writes - attr.checkpoint.page_writes;
    attr.owner->pool_hits += now.pool_hits - attr.checkpoint.pool_hits;
    attr.owner->pool_misses += now.pool_misses - attr.checkpoint.pool_misses;
  }
  attr.checkpoint = now;
  OperatorStats* prev = attr.owner;
  attr.owner = next;
  return prev;
}

Result<HeapFile> ExecContext::CreateScratchHeap() {
  RELOPT_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Create(pool_));
  std::lock_guard<std::mutex> lock(scratch_mu_);
  scratch_files_.push_back(heap.file_id());
  return heap;
}

void ExecContext::ReleaseScratchHeap(FileId file_id) {
  {
    std::lock_guard<std::mutex> lock(scratch_mu_);
    for (auto it = scratch_files_.begin(); it != scratch_files_.end(); ++it) {
      if (*it == file_id) {
        scratch_files_.erase(it);
        break;
      }
    }
  }
  (void)pool_->DropFilePages(file_id);
  pool_->disk()->DeleteFile(file_id);
}

Result<bool> Executor::NextBatchImpl(TupleBatch* out) {
  // Row-loop adapter: fill reusable slots straight from this operator's own
  // NextImpl. Bypasses the instrumented Next() wrapper — the enclosing
  // NextBatch frame already owns timing, attribution, and row accounting.
  // Every row produced here is charged as a fallback row so row-at-a-time
  // islands under batch drive stay visible in EXPLAIN ANALYZE and metrics.
  uint64_t produced = 0;
  while (!out->Full()) {
    Tuple* slot = out->AppendRow();
    Result<bool> has = NextImpl(slot);
    if (!has.ok() || !*has) {
      out->DropLastRow();
      if (produced > 0) {
        stats_.fallback_rows += produced;
        EngineMetrics::Get().exec_batch_fallback_rows->Add(produced);
      }
      if (!has.ok()) return has.status();
      return false;
    }
    ++produced;
  }
  stats_.fallback_rows += produced;
  EngineMetrics::Get().exec_batch_fallback_rows->Add(produced);
  return true;
}

size_t ExecContext::operator_memory_pages() const {
  size_t cap = pool_->capacity();
  // Reserve a handful of frames for concurrently pinned I/O pages.
  return cap > 8 ? cap - 8 : 1;
}

}  // namespace relopt
