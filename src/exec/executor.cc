#include "exec/executor.h"

namespace relopt {

ExecContext::ExecContext(Catalog* catalog, BufferPool* pool)
    : catalog_(catalog), pool_(pool), epoch_nanos_(MonotonicNanos()) {
  const IoStats& io = pool_->disk()->stats();
  const BufferPoolStats& ps = pool_->stats();
  cp_reads_ = io.page_reads;
  cp_writes_ = io.page_writes;
  cp_hits_ = ps.hits;
  cp_misses_ = ps.misses;
}

ExecContext::~ExecContext() {
  for (FileId id : scratch_files_) {
    (void)pool_->DropFilePages(id);
    pool_->disk()->DeleteFile(id);
  }
}

OperatorStats* ExecContext::SwitchAttribution(OperatorStats* next) {
  const IoStats& io = pool_->disk()->stats();
  const BufferPoolStats& ps = pool_->stats();
  if (io_owner_ != nullptr) {
    io_owner_->page_reads += io.page_reads - cp_reads_;
    io_owner_->page_writes += io.page_writes - cp_writes_;
    io_owner_->pool_hits += ps.hits - cp_hits_;
    io_owner_->pool_misses += ps.misses - cp_misses_;
  }
  cp_reads_ = io.page_reads;
  cp_writes_ = io.page_writes;
  cp_hits_ = ps.hits;
  cp_misses_ = ps.misses;
  OperatorStats* prev = io_owner_;
  io_owner_ = next;
  return prev;
}

Result<HeapFile> ExecContext::CreateScratchHeap() {
  RELOPT_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Create(pool_));
  scratch_files_.push_back(heap.file_id());
  return heap;
}

void ExecContext::ReleaseScratchHeap(FileId file_id) {
  for (auto it = scratch_files_.begin(); it != scratch_files_.end(); ++it) {
    if (*it == file_id) {
      scratch_files_.erase(it);
      break;
    }
  }
  (void)pool_->DropFilePages(file_id);
  pool_->disk()->DeleteFile(file_id);
}

size_t ExecContext::operator_memory_pages() const {
  size_t cap = pool_->capacity();
  // Reserve a handful of frames for concurrently pinned I/O pages.
  return cap > 8 ? cap - 8 : 1;
}

}  // namespace relopt
