#include "exec/hash_join.h"

#include "expr/vector_eval.h"
#include "types/key_codec.h"

namespace relopt {

HashJoinExecutor::HashJoinExecutor(ExecContext* ctx, ExecutorPtr build, ExecutorPtr probe,
                                   std::vector<size_t> build_keys, std::vector<size_t> probe_keys,
                                   const Expression* residual, bool output_probe_first)
    : Executor(ctx, MakeOutputSchema(*build, *probe, output_probe_first)),
      build_(std::move(build)),
      probe_(std::move(probe)),
      build_keys_(std::move(build_keys)),
      probe_keys_(std::move(probe_keys)),
      residual_(residual),
      output_probe_first_(output_probe_first),
      probe_batch_(ctx->batch_size()) {}

Schema HashJoinExecutor::MakeOutputSchema(const Executor& build, const Executor& probe,
                                          bool output_probe_first) {
  return output_probe_first ? Schema::Concat(probe.schema(), build.schema())
                            : Schema::Concat(build.schema(), probe.schema());
}

Result<std::optional<std::string>> JoinKeyOf(const Tuple& t, const std::vector<size_t>& keys) {
  std::vector<Value> vals;
  vals.reserve(keys.size());
  for (size_t k : keys) {
    if (t.At(k).is_null()) return std::optional<std::string>();
    vals.push_back(t.At(k));
  }
  return std::optional<std::string>(EncodeKey(vals));
}

Tuple HashJoinExecutor::MakeOutput(const Tuple& probe_row, const Tuple& build_row) const {
  return output_probe_first_ ? Tuple::Concat(probe_row, build_row)
                             : Tuple::Concat(build_row, probe_row);
}

Status HashJoinExecutor::InitImpl() {
  table_.clear();
  matches_.clear();
  match_idx_ = 0;
  have_probe_ = false;
  grace_ = false;
  build_parts_.clear();
  probe_parts_.clear();
  part_probe_iter_.reset();
  part_idx_ = 0;
  probe_batch_.Clear();
  batch_keys_.clear();
  probe_pos_ = 0;
  probe_done_ = false;
  batch_probe_row_ = nullptr;
  ResetCounters();

  build_cols_ = build_->schema().NumColumns();
  probe_cols_ = probe_->schema().NumColumns();

  // Drain the build side, tracking size against the memory budget. Under
  // vectorized execution the build child is batch-driven and each batch's
  // join keys are encoded in one tight loop, so the hash-table build (and a
  // possible Grace partition pass) never re-derives keys row at a time.
  RELOPT_RETURN_NOT_OK(build_->Init());
  const size_t budget = ctx_->operator_memory_pages() * kPageSize;
  std::vector<Tuple> build_rows;
  std::vector<std::optional<std::string>> build_row_keys;
  size_t bytes = 0;
  Tuple t;
  if (ctx_->batch_size() > 0) {
    TupleBatch batch(ctx_->batch_size());
    std::vector<std::optional<std::string>> keys;
    while (true) {
      RELOPT_ASSIGN_OR_RETURN(bool has, build_->NextBatch(&batch));
      RELOPT_RETURN_NOT_OK(ComputeJoinKeys(batch, build_keys_, &keys));
      for (size_t k = 0; k < batch.NumSelected(); ++k) {
        Tuple& row = *batch.MutableRowAt(batch.selection()[k]);
        bytes += row.Serialize().size() + 16;
        build_rows.push_back(std::move(row));
        build_row_keys.push_back(std::move(keys[k]));
      }
      if (!has) break;
    }
  } else {
    while (true) {
      RELOPT_ASSIGN_OR_RETURN(bool has, build_->Next(&t));
      if (!has) break;
      bytes += t.Serialize().size() + 16;
      RELOPT_ASSIGN_OR_RETURN(std::optional<std::string> key, JoinKeyOf(t, build_keys_));
      build_rows.push_back(std::move(t));
      build_row_keys.push_back(std::move(key));
    }
  }

  if (bytes <= budget) {
    // Bulk insert: keys were already encoded batch-at-a-time above.
    table_.reserve(build_rows.size());
    for (size_t i = 0; i < build_rows.size(); ++i) {
      if (!build_row_keys[i].has_value()) continue;  // NULL keys never match
      table_.emplace(std::move(*build_row_keys[i]), std::move(build_rows[i]));
    }
    RELOPT_RETURN_NOT_OK(probe_->Init());
    return Status::OK();
  }

  // Grace: partition both sides to scratch heaps.
  grace_ = true;
  num_partitions_ = std::min<size_t>(64, bytes / budget + 2);
  for (size_t i = 0; i < num_partitions_; ++i) {
    RELOPT_ASSIGN_OR_RETURN(HeapFile bp, ctx_->CreateScratchHeap());
    build_parts_.push_back(std::move(bp));
    RELOPT_ASSIGN_OR_RETURN(HeapFile pp, ctx_->CreateScratchHeap());
    probe_parts_.push_back(std::move(pp));
  }
  std::hash<std::string> hasher;
  for (size_t i = 0; i < build_rows.size(); ++i) {
    const std::optional<std::string>& key = build_row_keys[i];
    if (!key.has_value()) continue;  // NULL keys never match
    size_t p = hasher(*key) % num_partitions_;
    RELOPT_ASSIGN_OR_RETURN(Rid rid, build_parts_[p].Insert(build_rows[i].Serialize()));
    (void)rid;
  }
  build_rows.clear();
  build_row_keys.clear();
  RELOPT_RETURN_NOT_OK(probe_->Init());
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(bool has, probe_->Next(&t));
    if (!has) break;
    RELOPT_ASSIGN_OR_RETURN(std::optional<std::string> key, JoinKeyOf(t, probe_keys_));
    if (!key.has_value()) continue;
    size_t p = hasher(*key) % num_partitions_;
    RELOPT_ASSIGN_OR_RETURN(Rid rid, probe_parts_[p].Insert(t.Serialize()));
    (void)rid;
  }
  part_idx_ = 0;
  return LoadPartition();
}

Status HashJoinExecutor::AddBuildRow(const Tuple& t) {
  RELOPT_ASSIGN_OR_RETURN(std::optional<std::string> key, JoinKeyOf(t, build_keys_));
  if (key.has_value()) {
    table_.emplace(std::move(*key), t);
  }
  return Status::OK();
}

Status HashJoinExecutor::LoadPartition() {
  table_.clear();
  part_probe_iter_.reset();
  while (part_idx_ < num_partitions_) {
    HeapFile& bp = build_parts_[part_idx_];
    HeapFile::Iterator it(&bp);
    Rid rid;
    std::string bytes;
    bool any = false;
    while (true) {
      RELOPT_ASSIGN_OR_RETURN(bool has, it.Next(&rid, &bytes));
      if (!has) break;
      RELOPT_ASSIGN_OR_RETURN(Tuple row, Tuple::Deserialize(bytes, build_cols_));
      RELOPT_RETURN_NOT_OK(AddBuildRow(row));
      any = true;
    }
    // Even an empty build partition must advance past its probe partition.
    if (any || probe_parts_[part_idx_].NumPages() > 0) {
      part_probe_iter_ = std::make_unique<HeapFile::Iterator>(&probe_parts_[part_idx_]);
      return Status::OK();
    }
    table_.clear();
    ++part_idx_;
  }
  return Status::OK();
}

Result<bool> HashJoinExecutor::NextInMemory(Tuple* out, Executor* probe_source) {
  while (true) {
    while (match_idx_ < matches_.size()) {
      Tuple combined = MakeOutput(probe_tuple_, *matches_[match_idx_++]);
      RELOPT_ASSIGN_OR_RETURN(bool pass, PredicatePasses(residual_, combined));
      if (pass) {
        *out = std::move(combined);
        CountRow();
        return true;
      }
    }
    RELOPT_ASSIGN_OR_RETURN(bool has, probe_source->Next(&probe_tuple_));
    if (!has) return false;
    matches_.clear();
    match_idx_ = 0;
    RELOPT_ASSIGN_OR_RETURN(std::optional<std::string> key, JoinKeyOf(probe_tuple_, probe_keys_));
    if (!key.has_value()) continue;
    auto [lo, hi] = table_.equal_range(*key);
    for (auto it = lo; it != hi; ++it) matches_.push_back(&it->second);
  }
}

Result<bool> HashJoinExecutor::NextGrace(Tuple* out) {
  while (part_idx_ < num_partitions_) {
    // Probe from the current partition's heap.
    while (true) {
      while (match_idx_ < matches_.size()) {
        Tuple combined = MakeOutput(probe_tuple_, *matches_[match_idx_++]);
        RELOPT_ASSIGN_OR_RETURN(bool pass, PredicatePasses(residual_, combined));
        if (pass) {
          *out = std::move(combined);
          CountRow();
          return true;
        }
      }
      if (!part_probe_iter_) break;
      Rid rid;
      std::string bytes;
      RELOPT_ASSIGN_OR_RETURN(bool has, part_probe_iter_->Next(&rid, &bytes));
      if (!has) break;
      RELOPT_ASSIGN_OR_RETURN(probe_tuple_, Tuple::Deserialize(bytes, probe_cols_));
      matches_.clear();
      match_idx_ = 0;
      RELOPT_ASSIGN_OR_RETURN(std::optional<std::string> key, JoinKeyOf(probe_tuple_, probe_keys_));
      if (!key.has_value()) continue;
      auto [lo, hi] = table_.equal_range(*key);
      for (auto it = lo; it != hi; ++it) matches_.push_back(&it->second);
    }
    ++part_idx_;
    RELOPT_RETURN_NOT_OK(LoadPartition());
  }
  return false;
}

Result<bool> HashJoinExecutor::NextImpl(Tuple* out) {
  if (grace_) return NextGrace(out);
  return NextInMemory(out, probe_.get());
}

Result<bool> HashJoinExecutor::NextBatchImpl(TupleBatch* out) {
  // Grace mode interleaves partition heap I/O with probing; keep it on the
  // proven row path via the base adapter.
  if (grace_) return Executor::NextBatchImpl(out);
  while (true) {
    // Drain the current probe row's match list into the output batch.
    while (match_idx_ < matches_.size()) {
      if (out->Full()) {
        CountRows(out->NumSelected());
        return true;
      }
      Tuple combined = MakeOutput(*batch_probe_row_, *matches_[match_idx_++]);
      RELOPT_ASSIGN_OR_RETURN(bool pass, PredicatePasses(residual_, combined));
      if (pass) *out->AppendRow() = std::move(combined);
    }
    // Advance to the next probe row with a precomputed key.
    if (probe_pos_ < probe_batch_.NumSelected()) {
      size_t k = probe_pos_++;
      matches_.clear();
      match_idx_ = 0;
      const std::optional<std::string>& key = batch_keys_[k];
      if (!key.has_value()) continue;  // NULL keys never match
      batch_probe_row_ = &probe_batch_.SelectedRow(k);
      auto [lo, hi] = table_.equal_range(*key);
      for (auto it = lo; it != hi; ++it) matches_.push_back(&it->second);
      continue;
    }
    if (probe_done_) {
      CountRows(out->NumSelected());
      return false;
    }
    // Refill the probe batch and encode all its keys up front (batched
    // hashing: one tight loop over the batch instead of per-probe bookwork).
    RELOPT_ASSIGN_OR_RETURN(bool has, probe_->NextBatch(&probe_batch_));
    if (!has) probe_done_ = true;
    probe_pos_ = 0;
    RELOPT_RETURN_NOT_OK(ComputeJoinKeys(probe_batch_, probe_keys_, &batch_keys_));
  }
}

}  // namespace relopt
