// Materialize: spool the child into a scratch heap so re-scans are cheap.
#pragma once

#include <memory>

#include "exec/executor.h"

namespace relopt {

class MaterializeExecutor : public Executor {
 public:
  MaterializeExecutor(ExecContext* ctx, ExecutorPtr child)
      : Executor(ctx, child->schema()), child_(std::move(child)) {}

  Status InitImpl() override;
  Result<bool> NextImpl(Tuple* out) override;

 private:
  ExecutorPtr child_;
  std::unique_ptr<HeapFile> spool_;
  std::unique_ptr<HeapFile::Iterator> iter_;
};

}  // namespace relopt
