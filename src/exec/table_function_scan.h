// Table-function scan executor: materializes an engine-introspection
// snapshot (relopt_metrics() etc.) at Init and streams the rows out.
#pragma once

#include <string>

#include "exec/executor.h"

namespace relopt {

/// \brief Leaf executor for PhysTableFunctionScan. The snapshot is taken
/// once per Init() from the context's introspection sources, so one stream
/// sees one consistent view; a restart (nested-loop rescan) re-snapshots.
class TableFunctionScanExecutor : public Executor {
 public:
  TableFunctionScanExecutor(ExecContext* ctx, Schema schema, std::string function_name)
      : Executor(ctx, std::move(schema)), function_name_(std::move(function_name)) {}

  Status InitImpl() override;
  Result<bool> NextImpl(Tuple* out) override;

 private:
  std::string function_name_;
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
};

}  // namespace relopt
