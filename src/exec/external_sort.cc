#include "exec/external_sort.h"

#include <algorithm>
#include <cstring>

#include "types/key_codec.h"

namespace relopt {

namespace {

/// Run record layout: u32 key_len | key bytes | tuple bytes.
std::string EncodeRecord(const std::string& key, const Tuple& tuple) {
  std::string out;
  uint32_t len = static_cast<uint32_t>(key.size());
  out.append(reinterpret_cast<char*>(&len), 4);
  out += key;
  out += tuple.Serialize();
  return out;
}

Status DecodeRecord(const std::string& rec, size_t num_cols, std::string* key, Tuple* tuple) {
  if (rec.size() < 4) return Status::Internal("short sort-run record");
  uint32_t len;
  std::memcpy(&len, rec.data(), 4);
  if (rec.size() < 4 + len) return Status::Internal("short sort-run record");
  key->assign(rec, 4, len);
  RELOPT_ASSIGN_OR_RETURN(*tuple, Tuple::Deserialize(rec.substr(4 + len), num_cols));
  return Status::OK();
}

std::vector<const Expression*> KeyExprs(const std::vector<SortKeySpec>& keys) {
  std::vector<const Expression*> exprs;
  exprs.reserve(keys.size());
  for (const SortKeySpec& k : keys) exprs.push_back(k.expr);
  return exprs;
}

std::vector<bool> KeyDescs(const std::vector<SortKeySpec>& keys) {
  std::vector<bool> desc;
  desc.reserve(keys.size());
  for (const SortKeySpec& k : keys) desc.push_back(k.desc);
  return desc;
}

}  // namespace

ExternalSortExecutor::ExternalSortExecutor(ExecContext* ctx, ExecutorPtr child,
                                           std::vector<SortKeySpec> keys)
    : Executor(ctx, child->schema()),
      child_(std::move(child)),
      keys_(std::move(keys)),
      key_encoder_(KeyExprs(keys_), KeyDescs(keys_)) {}

Status ExternalSortExecutor::FlushRun(std::vector<Item>* items) {
  std::sort(items->begin(), items->end(),
            [](const Item& a, const Item& b) { return a.key < b.key; });
  RELOPT_ASSIGN_OR_RETURN(HeapFile run, ctx_->CreateScratchHeap());
  for (const Item& item : *items) {
    RELOPT_ASSIGN_OR_RETURN(Rid rid, run.Insert(EncodeRecord(item.key, item.tuple)));
    (void)rid;
  }
  runs_.push_back(std::move(run));
  items->clear();
  return Status::OK();
}

Result<HeapFile> ExternalSortExecutor::MergeRuns(std::vector<HeapFile*> inputs) {
  struct Cursor {
    HeapFile::Iterator iter;
    std::string key;
    Tuple tuple;
    bool exhausted = false;
    explicit Cursor(HeapFile* heap) : iter(heap) {}
  };
  std::vector<Cursor> cursors;
  cursors.reserve(inputs.size());
  for (HeapFile* in : inputs) cursors.emplace_back(in);
  auto advance = [&](Cursor* c) -> Status {
    Rid rid;
    std::string bytes;
    RELOPT_ASSIGN_OR_RETURN(bool has, c->iter.Next(&rid, &bytes));
    if (!has) {
      c->exhausted = true;
      return Status::OK();
    }
    return DecodeRecord(bytes, num_cols_, &c->key, &c->tuple);
  };
  for (Cursor& c : cursors) {
    RELOPT_RETURN_NOT_OK(advance(&c));
  }
  RELOPT_ASSIGN_OR_RETURN(HeapFile out, ctx_->CreateScratchHeap());
  while (true) {
    Cursor* best = nullptr;
    for (Cursor& c : cursors) {
      if (c.exhausted) continue;
      if (best == nullptr || c.key < best->key) best = &c;
    }
    if (best == nullptr) break;
    RELOPT_ASSIGN_OR_RETURN(Rid rid, out.Insert(EncodeRecord(best->key, best->tuple)));
    (void)rid;
    RELOPT_RETURN_NOT_OK(advance(best));
  }
  return out;
}

Status ExternalSortExecutor::InitImpl() {
  // Release previous scratch runs on re-init.
  for (HeapFile& run : runs_) ctx_->ReleaseScratchHeap(run.file_id());
  runs_.clear();
  cursors_.clear();
  memory_items_.clear();
  memory_pos_ = 0;
  in_memory_ = false;
  num_spilled_runs_ = 0;
  merge_passes_ = 0;
  ResetCounters();

  num_cols_ = child_->schema().NumColumns();
  RELOPT_RETURN_NOT_OK(child_->Init());

  const size_t budget = ctx_->operator_memory_pages() * kPageSize;
  size_t bytes = 0;
  auto store = [&](std::string&& key, Tuple&& t) -> Status {
    bytes += key.size() + t.Serialize().size() + 32;
    memory_items_.push_back(Item{std::move(key), std::move(t)});
    if (bytes > budget) {
      RELOPT_RETURN_NOT_OK(FlushRun(&memory_items_));
      bytes = 0;
    }
    return Status::OK();
  };
  if (ctx_->batch_size() > 0) {
    // Native batch ingest: adopt whole batches from the child and encode all
    // their sort keys with the compiled batch encoder — one tight loop per
    // key expression instead of per-row Eval. Moving out of the batch slots
    // is safe — NextBatch clears them before refilling.
    TupleBatch batch(ctx_->batch_size());
    std::vector<std::string> keys;
    while (true) {
      RELOPT_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&batch));
      RELOPT_RETURN_NOT_OK(key_encoder_.EncodeBatch(batch, &keys, &stats_.fallback_rows));
      for (size_t k = 0; k < batch.NumSelected(); ++k) {
        Tuple& row = *batch.MutableRowAt(batch.selection()[k]);
        RELOPT_RETURN_NOT_OK(store(std::move(keys[k]), std::move(row)));
      }
      if (!has) break;
    }
  } else {
    Tuple t;
    while (true) {
      RELOPT_ASSIGN_OR_RETURN(bool has, child_->Next(&t));
      if (!has) break;
      std::string key;
      RELOPT_RETURN_NOT_OK(key_encoder_.EncodeRow(t, &key));
      RELOPT_RETURN_NOT_OK(store(std::move(key), std::move(t)));
    }
  }

  if (runs_.empty()) {
    // Whole input fits: in-memory sort, no I/O.
    std::sort(memory_items_.begin(), memory_items_.end(),
              [](const Item& a, const Item& b) { return a.key < b.key; });
    in_memory_ = true;
    return Status::OK();
  }
  if (!memory_items_.empty()) {
    RELOPT_RETURN_NOT_OK(FlushRun(&memory_items_));
  }
  num_spilled_runs_ = runs_.size();

  // Multi-pass merge down to the fan-in, then stream the final merge.
  const size_t fanin = std::max<size_t>(2, ctx_->operator_memory_pages() - 1);
  while (runs_.size() > fanin) {
    ++merge_passes_;
    std::vector<HeapFile> next_runs;
    for (size_t i = 0; i < runs_.size(); i += fanin) {
      size_t end = std::min(runs_.size(), i + fanin);
      std::vector<HeapFile*> group;
      for (size_t j = i; j < end; ++j) group.push_back(&runs_[j]);
      RELOPT_ASSIGN_OR_RETURN(HeapFile merged, MergeRuns(std::move(group)));
      next_runs.push_back(std::move(merged));
    }
    for (HeapFile& run : runs_) ctx_->ReleaseScratchHeap(run.file_id());
    runs_ = std::move(next_runs);
  }

  cursors_.resize(runs_.size());
  for (size_t i = 0; i < runs_.size(); ++i) {
    cursors_[i].iter = std::make_unique<HeapFile::Iterator>(&runs_[i]);
    RELOPT_RETURN_NOT_OK(AdvanceCursor(&cursors_[i]));
  }
  return Status::OK();
}

Status ExternalSortExecutor::AdvanceCursor(RunCursor* cursor) {
  Rid rid;
  std::string bytes;
  RELOPT_ASSIGN_OR_RETURN(bool has, cursor->iter->Next(&rid, &bytes));
  if (!has) {
    cursor->exhausted = true;
    return Status::OK();
  }
  return DecodeRecord(bytes, num_cols_, &cursor->key, &cursor->tuple);
}

Result<bool> ExternalSortExecutor::NextImpl(Tuple* out) {
  if (in_memory_) {
    if (memory_pos_ >= memory_items_.size()) return false;
    *out = memory_items_[memory_pos_++].tuple;
    CountRow();
    return true;
  }
  RunCursor* best = nullptr;
  for (RunCursor& c : cursors_) {
    if (c.exhausted) continue;
    if (best == nullptr || c.key < best->key) best = &c;
  }
  if (best == nullptr) return false;
  *out = best->tuple;
  RELOPT_RETURN_NOT_OK(AdvanceCursor(best));
  CountRow();
  return true;
}

Result<bool> ExternalSortExecutor::NextBatchImpl(TupleBatch* out) {
  // Native batch emit: fill the output batch straight from the sorted array
  // or the run cursors, skipping the per-row adapter.
  if (in_memory_) {
    while (!out->Full() && memory_pos_ < memory_items_.size()) {
      *out->AppendRow() = std::move(memory_items_[memory_pos_++].tuple);
    }
    CountRows(out->NumSelected());
    return memory_pos_ < memory_items_.size();
  }
  while (!out->Full()) {
    RunCursor* best = nullptr;
    for (RunCursor& c : cursors_) {
      if (c.exhausted) continue;
      if (best == nullptr || c.key < best->key) best = &c;
    }
    if (best == nullptr) {
      CountRows(out->NumSelected());
      return false;
    }
    *out->AppendRow() = std::move(best->tuple);
    RELOPT_RETURN_NOT_OK(AdvanceCursor(best));
  }
  CountRows(out->NumSelected());
  return true;
}

}  // namespace relopt
