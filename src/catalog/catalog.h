// Catalog: tables, indexes, and their statistics.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/statistics.h"
#include "storage/btree.h"
#include "storage/heap_file.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "util/result.h"

namespace relopt {

class Catalog;

/// A secondary (or clustered) B+tree index over one table.
struct IndexInfo {
  std::string name;
  std::string table_name;
  std::vector<size_t> key_columns;   ///< column positions in the table schema
  bool clustered = false;            ///< heap is physically ordered by the key
  std::unique_ptr<BTree> tree;

  /// "idx(t.a, t.b)" for plan printing.
  std::string KeyDescription(const Schema& schema) const;
};

/// A base table: schema + heap storage + statistics + indexes.
class TableInfo {
 public:
  TableInfo(std::string name, Schema schema, HeapFile heap)
      : name_(std::move(name)), schema_(std::move(schema)), heap_(std::move(heap)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  HeapFile* heap() { return &heap_; }
  const HeapFile* heap() const { return &heap_; }

  const TableStats& stats() const { return stats_; }
  void set_stats(TableStats stats) { stats_ = std::move(stats); }
  bool has_stats() const { return has_stats_; }
  void set_has_stats(bool v) { has_stats_ = v; }

  const std::vector<IndexInfo*>& indexes() const { return indexes_; }
  void AddIndex(IndexInfo* index) { indexes_.push_back(index); }
  void RemoveIndex(const std::string& index_name);

  /// Reads and decodes the tuple at `rid`.
  Result<Tuple> GetTuple(Rid rid) const;

  /// Rows inserted since creation (maintained by Catalog::InsertTuple).
  uint64_t live_rows() const { return live_rows_; }
  void set_live_rows(uint64_t n) { live_rows_ = n; }

 private:
  std::string name_;
  Schema schema_;
  HeapFile heap_;
  TableStats stats_;
  bool has_stats_ = false;
  std::vector<IndexInfo*> indexes_;
  uint64_t live_rows_ = 0;
};

/// \brief Owns all tables and indexes. Insert/delete go through the catalog
/// so secondary indexes stay consistent.
///
/// `version()` is a monotonically increasing schema/statistics epoch: it bumps
/// on every DDL (CREATE/DROP TABLE, CREATE INDEX) and every ANALYZE, i.e. on
/// every change that can alter an optimized plan's validity or the optimizer's
/// choices. The shared PlanCache keys cached plans on it.
class Catalog {
 public:
  explicit Catalog(BufferPool* pool) : pool_(pool) {}

  BufferPool* pool() const { return pool_; }

  /// Current schema/statistics epoch (starts at 1). Thread-safe to read while
  /// concurrent queries run; bumps happen under the engine's exclusive
  /// statement lock.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Creates an empty table. AlreadyExists if the name is taken.
  Result<TableInfo*> CreateTable(const std::string& name, Schema schema);

  /// NotFound if absent. Name matching is case-insensitive.
  Result<TableInfo*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// Drops the table, its storage, and its indexes.
  Status DropTable(const std::string& name);

  /// Builds a B+tree over existing rows. `clustered` asserts the heap is
  /// physically ordered by the key (the caller's responsibility; the cost
  /// model and the actual I/O both depend on it being true).
  Result<IndexInfo*> CreateIndex(const std::string& index_name, const std::string& table_name,
                                 const std::vector<std::string>& column_names,
                                 bool clustered = false);

  Result<IndexInfo*> GetIndex(const std::string& index_name) const;

  /// All table names, sorted.
  std::vector<std::string> TableNames() const;

  /// Inserts a row: heap + every index. Returns the RID.
  Result<Rid> InsertTuple(TableInfo* table, const Tuple& tuple);

  /// Deletes a row from heap + every index.
  Status DeleteTuple(TableInfo* table, Rid rid);

  /// Full-scan ANALYZE: recomputes TableStats (histograms with `num_buckets`
  /// buckets; 0 disables them).
  Status AnalyzeTable(const std::string& table_name, size_t num_buckets = 32);

 private:
  void BumpVersion() { version_.fetch_add(1, std::memory_order_acq_rel); }

  BufferPool* pool_;
  std::map<std::string, std::unique_ptr<TableInfo>> tables_;   // lower-cased keys
  std::map<std::string, std::unique_ptr<IndexInfo>> indexes_;  // lower-cased keys
  std::atomic<uint64_t> version_{1};
};

}  // namespace relopt
