#include "catalog/catalog.h"

#include "types/key_codec.h"
#include "util/str_util.h"

namespace relopt {

std::string IndexInfo::KeyDescription(const Schema& schema) const {
  std::string out = name + "(";
  for (size_t i = 0; i < key_columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.ColumnAt(key_columns[i]).name;
  }
  out += ")";
  return out;
}

void TableInfo::RemoveIndex(const std::string& index_name) {
  for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
    if ((*it)->name == index_name) {
      indexes_.erase(it);
      return;
    }
  }
}

Result<Tuple> TableInfo::GetTuple(Rid rid) const {
  RELOPT_ASSIGN_OR_RETURN(std::string bytes, heap_.Get(rid));
  return Tuple::Deserialize(bytes, schema_.NumColumns());
}

Result<TableInfo*> Catalog::CreateTable(const std::string& name, Schema schema) {
  std::string key = ToLower(name);
  if (tables_.count(key)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  RELOPT_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Create(pool_));
  auto info = std::make_unique<TableInfo>(name, std::move(schema), std::move(heap));
  TableInfo* raw = info.get();
  tables_[key] = std::move(info);
  BumpVersion();
  return raw;
}

Result<TableInfo*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return Status::NotFound("table '" + name + "' does not exist");
  return it->second.get();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(ToLower(name)) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return Status::NotFound("table '" + name + "' does not exist");
  TableInfo* table = it->second.get();
  // Drop dependent indexes first.
  std::vector<std::string> to_drop;
  for (IndexInfo* idx : table->indexes()) to_drop.push_back(idx->name);
  for (const std::string& idx_name : to_drop) {
    auto iit = indexes_.find(ToLower(idx_name));
    if (iit != indexes_.end()) {
      RELOPT_RETURN_NOT_OK(pool_->DropFilePages(iit->second->tree->file_id()));
      pool_->disk()->DeleteFile(iit->second->tree->file_id());
      indexes_.erase(iit);
    }
  }
  RELOPT_RETURN_NOT_OK(pool_->DropFilePages(table->heap()->file_id()));
  pool_->disk()->DeleteFile(table->heap()->file_id());
  tables_.erase(it);
  BumpVersion();
  return Status::OK();
}

Result<IndexInfo*> Catalog::CreateIndex(const std::string& index_name,
                                        const std::string& table_name,
                                        const std::vector<std::string>& column_names,
                                        bool clustered) {
  std::string key = ToLower(index_name);
  if (indexes_.count(key)) {
    return Status::AlreadyExists("index '" + index_name + "' already exists");
  }
  RELOPT_ASSIGN_OR_RETURN(TableInfo * table, GetTable(table_name));
  std::vector<size_t> key_columns;
  for (const std::string& col : column_names) {
    RELOPT_ASSIGN_OR_RETURN(size_t idx, table->schema().IndexOf(col));
    key_columns.push_back(idx);
  }
  if (key_columns.empty()) {
    return Status::InvalidArgument("index needs at least one column");
  }

  auto info = std::make_unique<IndexInfo>();
  info->name = index_name;
  info->table_name = table->name();
  info->key_columns = key_columns;
  info->clustered = clustered;
  RELOPT_ASSIGN_OR_RETURN(BTree tree, BTree::Create(pool_));
  info->tree = std::make_unique<BTree>(std::move(tree));

  // Bulk-build from existing rows.
  HeapFile::Iterator it(table->heap());
  Rid rid;
  std::string bytes;
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(bool has, it.Next(&rid, &bytes));
    if (!has) break;
    RELOPT_ASSIGN_OR_RETURN(Tuple tuple, Tuple::Deserialize(bytes, table->schema().NumColumns()));
    std::string enc = EncodeKeyFromTuple(tuple, key_columns);
    RELOPT_RETURN_NOT_OK(info->tree->Insert(enc, rid));
  }

  IndexInfo* raw = info.get();
  indexes_[key] = std::move(info);
  table->AddIndex(raw);
  BumpVersion();
  return raw;
}

Result<IndexInfo*> Catalog::GetIndex(const std::string& index_name) const {
  auto it = indexes_.find(ToLower(index_name));
  if (it == indexes_.end()) return Status::NotFound("index '" + index_name + "' does not exist");
  return it->second.get();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

Result<Rid> Catalog::InsertTuple(TableInfo* table, const Tuple& tuple) {
  if (tuple.NumValues() != table->schema().NumColumns()) {
    return Status::InvalidArgument("tuple has " + std::to_string(tuple.NumValues()) +
                                   " values, table '" + table->name() + "' has " +
                                   std::to_string(table->schema().NumColumns()) + " columns");
  }
  // Type-check against the schema (NULLs pass).
  for (size_t i = 0; i < tuple.NumValues(); ++i) {
    const Value& v = tuple.At(i);
    if (!v.is_null() && v.type() != table->schema().ColumnAt(i).type) {
      return Status::TypeError("value " + v.ToString() + " does not match column '" +
                               table->schema().ColumnAt(i).name + "' type " +
                               TypeIdToString(table->schema().ColumnAt(i).type));
    }
  }
  RELOPT_ASSIGN_OR_RETURN(Rid rid, table->heap()->Insert(tuple.Serialize()));
  for (IndexInfo* idx : table->indexes()) {
    std::string enc = EncodeKeyFromTuple(tuple, idx->key_columns);
    RELOPT_RETURN_NOT_OK(idx->tree->Insert(enc, rid));
  }
  table->set_live_rows(table->live_rows() + 1);
  return rid;
}

Status Catalog::DeleteTuple(TableInfo* table, Rid rid) {
  RELOPT_ASSIGN_OR_RETURN(Tuple tuple, table->GetTuple(rid));
  for (IndexInfo* idx : table->indexes()) {
    std::string enc = EncodeKeyFromTuple(tuple, idx->key_columns);
    RELOPT_RETURN_NOT_OK(idx->tree->Delete(enc, rid));
  }
  RELOPT_RETURN_NOT_OK(table->heap()->Delete(rid));
  table->set_live_rows(table->live_rows() > 0 ? table->live_rows() - 1 : 0);
  return Status::OK();
}

Status Catalog::AnalyzeTable(const std::string& table_name, size_t num_buckets) {
  RELOPT_ASSIGN_OR_RETURN(TableInfo * table, GetTable(table_name));
  StatsBuilder builder(table->schema(), num_buckets);
  HeapFile::Iterator it(table->heap());
  Rid rid;
  std::string bytes;
  uint64_t rows = 0;
  while (true) {
    RELOPT_ASSIGN_OR_RETURN(bool has, it.Next(&rid, &bytes));
    if (!has) break;
    RELOPT_ASSIGN_OR_RETURN(Tuple tuple, Tuple::Deserialize(bytes, table->schema().NumColumns()));
    builder.AddRow(tuple);
    ++rows;
  }
  RELOPT_ASSIGN_OR_RETURN(TableStats stats, builder.Finish(table->heap()->NumPages()));
  table->set_stats(std::move(stats));
  table->set_has_stats(true);
  table->set_live_rows(rows);
  // New statistics can change the optimizer's choices: retire cached plans.
  BumpVersion();
  return Status::OK();
}

}  // namespace relopt
