// Equi-depth histograms for selectivity estimation.
#pragma once

#include <string>
#include <vector>

#include "types/value.h"
#include "util/result.h"

namespace relopt {

/// \brief Equi-depth (equi-height) histogram over one column's values.
///
/// Buckets hold ~equal row counts; each records [lo, hi], row count, and
/// distinct count. Estimation interpolates linearly inside numeric buckets
/// and assumes the uniform midpoint for string buckets.
class EquiDepthHistogram {
 public:
  struct Bucket {
    Value lo;          // smallest value in bucket
    Value hi;          // largest value in bucket
    uint64_t count;    // rows in bucket
    uint64_t ndv;      // distinct values in bucket
  };

  EquiDepthHistogram() = default;

  /// Builds from non-null values (need not be pre-sorted; they are copied and
  /// sorted). `num_buckets` is a target; fewer are produced for tiny inputs.
  static Result<EquiDepthHistogram> Build(std::vector<Value> values, size_t num_buckets);

  bool Empty() const { return total_ == 0; }
  uint64_t total_count() const { return total_; }
  const std::vector<Bucket>& buckets() const { return buckets_; }

  /// Fraction of (non-null) rows with column == v.
  double EstimateEq(const Value& v) const;

  /// Fraction of rows with column < v (or <= if `inclusive`).
  double EstimateLess(const Value& v, bool inclusive) const;

  /// Fraction of rows in [lo, hi] with the given inclusivities; unbounded
  /// sides pass nullptr.
  double EstimateRange(const Value* lo, bool lo_inclusive, const Value* hi,
                       bool hi_inclusive) const;

  /// Human-readable dump (for EXPLAIN ANALYZE-style output and docs).
  std::string ToString() const;

 private:
  /// Position of v within a bucket, in [0,1] (linear for numerics).
  static double FractionWithin(const Bucket& b, const Value& v);

  std::vector<Bucket> buckets_;
  uint64_t total_ = 0;
};

}  // namespace relopt
