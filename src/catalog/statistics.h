// Table and column statistics for the optimizer (ANALYZE output).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "catalog/histogram.h"
#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace relopt {

/// Per-column statistics.
struct ColumnStats {
  uint64_t num_non_null = 0;
  uint64_t num_null = 0;
  uint64_t ndv = 0;                    ///< distinct non-null values
  std::optional<Value> min;            ///< smallest non-null value
  std::optional<Value> max;            ///< largest non-null value
  EquiDepthHistogram histogram;        ///< empty unless ANALYZE built one

  double null_fraction() const {
    uint64_t total = num_non_null + num_null;
    return total == 0 ? 0.0 : static_cast<double>(num_null) / static_cast<double>(total);
  }
};

/// Per-table statistics.
struct TableStats {
  uint64_t num_rows = 0;
  uint64_t num_pages = 0;
  std::vector<ColumnStats> columns;    ///< aligned with the table schema

  bool Valid() const { return !columns.empty() || num_rows == 0; }
  std::string ToString(const Schema& schema) const;
};

/// \brief Incremental statistics builder: feed every row, then Finish().
///
/// Used by ANALYZE (full scan) and by the workload generator (which knows the
/// rows as it makes them).
class StatsBuilder {
 public:
  /// `num_buckets` = 0 disables histograms (System-R mode keeps only
  /// ndv/min/max).
  explicit StatsBuilder(const Schema& schema, size_t num_buckets = 32);

  void AddRow(const Tuple& tuple);

  /// Produces the stats. `num_pages` comes from the heap file.
  Result<TableStats> Finish(uint64_t num_pages);

 private:
  size_t num_columns_;
  size_t num_buckets_;
  uint64_t num_rows_ = 0;
  // Collected non-null values per column (full materialization; the toy
  // engine's tables are laptop-scale by design).
  std::vector<std::vector<Value>> values_;
  std::vector<uint64_t> null_counts_;
};

}  // namespace relopt
