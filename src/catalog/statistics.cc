#include "catalog/statistics.h"

#include <algorithm>

#include "util/str_util.h"

namespace relopt {

std::string TableStats::ToString(const Schema& schema) const {
  std::string out = "rows=" + std::to_string(num_rows) + " pages=" + std::to_string(num_pages);
  for (size_t i = 0; i < columns.size() && i < schema.NumColumns(); ++i) {
    const ColumnStats& c = columns[i];
    out += "\n  " + schema.ColumnAt(i).QualifiedName() + ": ndv=" + std::to_string(c.ndv) +
           " nulls=" + std::to_string(c.num_null);
    if (c.min.has_value()) out += " min=" + c.min->ToString();
    if (c.max.has_value()) out += " max=" + c.max->ToString();
    if (!c.histogram.Empty()) {
      out += " buckets=" + std::to_string(c.histogram.buckets().size());
    }
  }
  return out;
}

StatsBuilder::StatsBuilder(const Schema& schema, size_t num_buckets)
    : num_columns_(schema.NumColumns()),
      num_buckets_(num_buckets),
      values_(num_columns_),
      null_counts_(num_columns_, 0) {}

void StatsBuilder::AddRow(const Tuple& tuple) {
  ++num_rows_;
  for (size_t i = 0; i < num_columns_ && i < tuple.NumValues(); ++i) {
    if (tuple.At(i).is_null()) {
      ++null_counts_[i];
    } else {
      values_[i].push_back(tuple.At(i));
    }
  }
}

Result<TableStats> StatsBuilder::Finish(uint64_t num_pages) {
  TableStats stats;
  stats.num_rows = num_rows_;
  stats.num_pages = num_pages;
  stats.columns.resize(num_columns_);
  for (size_t i = 0; i < num_columns_; ++i) {
    ColumnStats& c = stats.columns[i];
    c.num_null = null_counts_[i];
    c.num_non_null = values_[i].size();
    if (values_[i].empty()) continue;

    // Sort once: min/max/ndv all fall out, and the histogram builder re-sorts
    // its own copy (cheap at toy scale).
    Status sort_status = Status::OK();
    std::vector<Value> sorted = values_[i];
    std::sort(sorted.begin(), sorted.end(), [&](const Value& a, const Value& b) {
      Result<int> cmp = a.Compare(b);
      if (!cmp.ok()) {
        sort_status = cmp.status();
        return false;
      }
      return *cmp < 0;
    });
    RELOPT_RETURN_NOT_OK(sort_status);

    c.min = sorted.front();
    c.max = sorted.back();
    c.ndv = 1;
    for (size_t j = 1; j < sorted.size(); ++j) {
      if (!sorted[j].Equals(sorted[j - 1])) ++c.ndv;
    }
    if (num_buckets_ > 0) {
      RELOPT_ASSIGN_OR_RETURN(c.histogram,
                              EquiDepthHistogram::Build(std::move(sorted), num_buckets_));
    }
  }
  return stats;
}

}  // namespace relopt
