#include "catalog/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/str_util.h"

namespace relopt {

Result<EquiDepthHistogram> EquiDepthHistogram::Build(std::vector<Value> values,
                                                     size_t num_buckets) {
  EquiDepthHistogram hist;
  if (values.empty() || num_buckets == 0) return hist;
  // Sort; all values must be mutually comparable (one column => one type).
  Status sort_status = Status::OK();
  std::sort(values.begin(), values.end(), [&](const Value& a, const Value& b) {
    Result<int> c = a.Compare(b);
    if (!c.ok()) {
      sort_status = c.status();
      return false;
    }
    return *c < 0;
  });
  RELOPT_RETURN_NOT_OK(sort_status);

  const uint64_t n = values.size();
  const uint64_t per_bucket = std::max<uint64_t>(1, (n + num_buckets - 1) / num_buckets);
  size_t i = 0;
  while (i < values.size()) {
    size_t end = std::min(values.size(), i + static_cast<size_t>(per_bucket));
    // Extend so equal values never straddle buckets (keeps EstimateEq exact
    // for heavy hitters).
    while (end < values.size() && values[end].Equals(values[end - 1])) ++end;
    Bucket b;
    b.lo = values[i];
    b.hi = values[end - 1];
    b.count = end - i;
    b.ndv = 1;
    for (size_t j = i + 1; j < end; ++j) {
      if (!values[j].Equals(values[j - 1])) ++b.ndv;
    }
    hist.buckets_.push_back(std::move(b));
    i = end;
  }
  hist.total_ = n;
  return hist;
}

double EquiDepthHistogram::FractionWithin(const Bucket& b, const Value& v) {
  if (IsNumeric(v.type()) && IsNumeric(b.lo.type())) {
    double lo = b.lo.NumericAsDouble();
    double hi = b.hi.NumericAsDouble();
    double x = v.NumericAsDouble();
    if (hi <= lo) return 1.0;
    return std::clamp((x - lo) / (hi - lo), 0.0, 1.0);
  }
  return 0.5;  // strings: midpoint assumption
}

double EquiDepthHistogram::EstimateEq(const Value& v) const {
  if (total_ == 0 || v.is_null()) return 0.0;
  for (const Bucket& b : buckets_) {
    Result<int> clo = v.Compare(b.lo);
    Result<int> chi = v.Compare(b.hi);
    if (!clo.ok() || !chi.ok()) return 0.0;
    if (*clo >= 0 && *chi <= 0) {
      // Uniform within the bucket's distinct values.
      double bucket_frac = static_cast<double>(b.count) / static_cast<double>(total_);
      return bucket_frac / static_cast<double>(std::max<uint64_t>(1, b.ndv));
    }
  }
  return 0.0;
}

double EquiDepthHistogram::EstimateLess(const Value& v, bool inclusive) const {
  if (total_ == 0 || v.is_null()) return 0.0;
  double rows = 0;
  for (const Bucket& b : buckets_) {
    Result<int> clo = v.Compare(b.lo);
    Result<int> chi = v.Compare(b.hi);
    if (!clo.ok() || !chi.ok()) return 0.0;
    if (*chi > 0) {
      rows += static_cast<double>(b.count);  // bucket entirely below v
    } else if (*clo < 0) {
      break;  // bucket entirely above v
    } else {
      double frac = FractionWithin(b, v);
      rows += static_cast<double>(b.count) * frac;
      if (inclusive) {
        rows += static_cast<double>(b.count) / static_cast<double>(std::max<uint64_t>(1, b.ndv));
      }
      break;
    }
  }
  return std::clamp(rows / static_cast<double>(total_), 0.0, 1.0);
}

double EquiDepthHistogram::EstimateRange(const Value* lo, bool lo_inclusive, const Value* hi,
                                         bool hi_inclusive) const {
  if (total_ == 0) return 0.0;
  double below_hi = hi ? EstimateLess(*hi, hi_inclusive) : 1.0;
  double below_lo = lo ? EstimateLess(*lo, !lo_inclusive) : 0.0;
  return std::clamp(below_hi - below_lo, 0.0, 1.0);
}

std::string EquiDepthHistogram::ToString() const {
  std::string out = "histogram(" + std::to_string(buckets_.size()) + " buckets, " +
                    std::to_string(total_) + " rows)";
  for (const Bucket& b : buckets_) {
    out += "\n  [" + b.lo.ToString() + ", " + b.hi.ToString() + "] count=" +
           std::to_string(b.count) + " ndv=" + std::to_string(b.ndv);
  }
  return out;
}

}  // namespace relopt
