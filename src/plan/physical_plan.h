// Physical query plans: concrete access paths, join methods, sort, aggregate.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "expr/expression.h"
#include "types/schema.h"
#include "types/value.h"

namespace relopt {

/// Optimizer cost in the System-R style: page I/Os plus a weighted per-tuple
/// CPU term. `Total()` is what plans are compared by.
struct Cost {
  double page_ios = 0;
  double cpu_tuples = 0;

  /// Weight of one tuple of CPU relative to one page I/O (System R's "W").
  static constexpr double kDefaultCpuWeight = 0.01;

  /// Multiplier on the CPU weight under vectorized (batch) drive: compiled
  /// column kernels and amortized per-batch dispatch make one tuple of CPU
  /// several times cheaper than the row-at-a-time Volcano loop, so plans that
  /// trade I/O for CPU (e.g. hash join over index nested loop) win earlier.
  /// Calibrated against bench_vectorized / bench_expr batch-vs-row ratios.
  static constexpr double kVectorizedCpuFactor = 0.25;

  double Total(double cpu_weight = kDefaultCpuWeight) const {
    return page_ios + cpu_weight * cpu_tuples;
  }
  Cost operator+(const Cost& other) const {
    return Cost{page_ios + other.page_ios, cpu_tuples + other.cpu_tuples};
  }
  Cost& operator+=(const Cost& other) {
    page_ios += other.page_ios;
    cpu_tuples += other.cpu_tuples;
    return *this;
  }
};

enum class PhysicalNodeKind {
  kSeqScan,
  kIndexScan,
  kFilter,
  kProject,
  kNestedLoopJoin,
  kBlockNestedLoopJoin,
  kIndexNestedLoopJoin,
  kSortMergeJoin,
  kHashJoin,
  kSort,
  kAggregate,
  kLimit,
  kValues,
  kMaterialize,
  kTableFunctionScan,
};

const char* PhysicalNodeKindToString(PhysicalNodeKind kind);

class PhysicalNode;
using PhysicalPtr = std::unique_ptr<PhysicalNode>;

/// \brief Base physical operator. Carries the optimizer's estimates so
/// EXPLAIN can show estimated vs actual.
class PhysicalNode {
 public:
  PhysicalNode(PhysicalNodeKind kind, Schema schema)
      : kind_(kind), schema_(std::move(schema)) {}
  virtual ~PhysicalNode() = default;

  PhysicalNodeKind kind() const { return kind_; }
  const Schema& schema() const { return schema_; }

  const std::vector<PhysicalPtr>& children() const { return children_; }
  PhysicalNode* child(size_t i) const { return children_[i].get(); }
  void AddChild(PhysicalPtr child) { children_.push_back(std::move(child)); }

  double est_rows() const { return est_rows_; }
  const Cost& est_cost() const { return est_cost_; }
  void SetEstimates(double rows, Cost cost) {
    est_rows_ = rows;
    est_cost_ = cost;
  }

  /// Cardinality-feedback signature (optimizer/feedback.h); empty when this
  /// node's actuals carry no feedback signal. Stamped at plan-build time so
  /// the harvest after execution knows which store entry each actual feeds.
  const std::string& feedback_key() const { return feedback_key_; }
  void set_feedback_key(std::string key) { feedback_key_ = std::move(key); }

  virtual std::string Describe() const = 0;
  /// Indented tree with estimates.
  std::string ToString() const;

 protected:
  PhysicalNodeKind kind_;
  Schema schema_;
  std::vector<PhysicalPtr> children_;
  double est_rows_ = 0;
  Cost est_cost_;
  std::string feedback_key_;
};

/// Full scan of a base table.
class PhysSeqScan : public PhysicalNode {
 public:
  PhysSeqScan(std::string table_name, std::string alias, Schema schema)
      : PhysicalNode(PhysicalNodeKind::kSeqScan, std::move(schema)),
        table_name_(std::move(table_name)),
        alias_(std::move(alias)) {}

  const std::string& table_name() const { return table_name_; }
  const std::string& alias() const { return alias_; }
  std::string Describe() const override;

 private:
  std::string table_name_;
  std::string alias_;
};

/// Range or point scan through a B+tree index, fetching matching heap rows.
/// Bounds are composite key prefixes (Values for the leading index columns).
class PhysIndexScan : public PhysicalNode {
 public:
  PhysIndexScan(std::string table_name, std::string alias, std::string index_name, Schema schema)
      : PhysicalNode(PhysicalNodeKind::kIndexScan, std::move(schema)),
        table_name_(std::move(table_name)),
        alias_(std::move(alias)),
        index_name_(std::move(index_name)) {}

  const std::string& table_name() const { return table_name_; }
  const std::string& alias() const { return alias_; }
  const std::string& index_name() const { return index_name_; }

  /// Lower/upper bound values for a prefix of the index key; empty = open.
  std::vector<Value> lo_values;
  bool lo_inclusive = true;
  std::vector<Value> hi_values;
  bool hi_inclusive = true;
  /// Predicate re-checked on fetched rows (non-sargable leftovers).
  ExprPtr residual;

  std::string Describe() const override;

 private:
  std::string table_name_;
  std::string alias_;
  std::string index_name_;
};

class PhysFilter : public PhysicalNode {
 public:
  PhysFilter(PhysicalPtr child, ExprPtr predicate)
      : PhysicalNode(PhysicalNodeKind::kFilter, child->schema()),
        predicate_(std::move(predicate)) {
    AddChild(std::move(child));
  }

  const Expression* predicate() const { return predicate_.get(); }
  std::string Describe() const override;

 private:
  ExprPtr predicate_;

 public:
  const ExprPtr& predicate_ptr() const { return predicate_; }
};

class PhysProject : public PhysicalNode {
 public:
  PhysProject(PhysicalPtr child, std::vector<ExprPtr> exprs, Schema out_schema)
      : PhysicalNode(PhysicalNodeKind::kProject, std::move(out_schema)),
        exprs_(std::move(exprs)) {
    AddChild(std::move(child));
  }

  const std::vector<ExprPtr>& exprs() const { return exprs_; }
  std::string Describe() const override;

 private:
  std::vector<ExprPtr> exprs_;
};

/// Tuple-at-a-time nested loop join; restarts the inner child per outer row.
class PhysNestedLoopJoin : public PhysicalNode {
 public:
  PhysNestedLoopJoin(PhysicalPtr outer, PhysicalPtr inner, ExprPtr predicate)
      : PhysicalNode(PhysicalNodeKind::kNestedLoopJoin,
                     Schema::Concat(outer->schema(), inner->schema())),
        predicate_(std::move(predicate)) {
    AddChild(std::move(outer));
    AddChild(std::move(inner));
  }

  const Expression* predicate() const { return predicate_.get(); }
  std::string Describe() const override;

 private:
  ExprPtr predicate_;
};

/// Block nested loop: buffers a block of outer rows sized to the buffer pool,
/// scanning the inner once per block.
class PhysBlockNestedLoopJoin : public PhysicalNode {
 public:
  PhysBlockNestedLoopJoin(PhysicalPtr outer, PhysicalPtr inner, ExprPtr predicate,
                          size_t block_pages)
      : PhysicalNode(PhysicalNodeKind::kBlockNestedLoopJoin,
                     Schema::Concat(outer->schema(), inner->schema())),
        predicate_(std::move(predicate)),
        block_pages_(block_pages) {
    AddChild(std::move(outer));
    AddChild(std::move(inner));
  }

  const Expression* predicate() const { return predicate_.get(); }
  size_t block_pages() const { return block_pages_; }
  std::string Describe() const override;

 private:
  ExprPtr predicate_;
  size_t block_pages_;
};

/// Index nested loop: probes an index on the inner base table per outer row.
class PhysIndexNestedLoopJoin : public PhysicalNode {
 public:
  PhysIndexNestedLoopJoin(PhysicalPtr outer, std::string inner_table, std::string inner_alias,
                          std::string index_name, Schema inner_schema,
                          std::vector<ExprPtr> outer_key_exprs, ExprPtr residual)
      : PhysicalNode(PhysicalNodeKind::kIndexNestedLoopJoin,
                     Schema::Concat(outer->schema(), inner_schema)),
        inner_table_(std::move(inner_table)),
        inner_alias_(std::move(inner_alias)),
        index_name_(std::move(index_name)),
        inner_schema_(std::move(inner_schema)),
        outer_key_exprs_(std::move(outer_key_exprs)),
        residual_(std::move(residual)) {
    AddChild(std::move(outer));
  }

  const std::string& inner_table() const { return inner_table_; }
  const std::string& inner_alias() const { return inner_alias_; }
  const std::string& index_name() const { return index_name_; }
  const Schema& inner_schema() const { return inner_schema_; }
  const std::vector<ExprPtr>& outer_key_exprs() const { return outer_key_exprs_; }
  const Expression* residual() const { return residual_.get(); }

  std::string Describe() const override;

 private:
  std::string inner_table_;
  std::string inner_alias_;
  std::string index_name_;
  Schema inner_schema_;
  std::vector<ExprPtr> outer_key_exprs_;  // bound against the outer schema
  ExprPtr residual_;                      // bound against the concat schema
};

/// Merge join over sorted inputs (the optimizer inserts Sorts as needed).
class PhysSortMergeJoin : public PhysicalNode {
 public:
  PhysSortMergeJoin(PhysicalPtr left, PhysicalPtr right, std::vector<size_t> left_keys,
                    std::vector<size_t> right_keys, ExprPtr residual)
      : PhysicalNode(PhysicalNodeKind::kSortMergeJoin,
                     Schema::Concat(left->schema(), right->schema())),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        residual_(std::move(residual)) {
    AddChild(std::move(left));
    AddChild(std::move(right));
  }

  const std::vector<size_t>& left_keys() const { return left_keys_; }
  const std::vector<size_t>& right_keys() const { return right_keys_; }
  const Expression* residual() const { return residual_.get(); }
  std::string Describe() const override;

 private:
  std::vector<size_t> left_keys_;
  std::vector<size_t> right_keys_;
  ExprPtr residual_;
};

/// Hash join; the left child is the build side.
class PhysHashJoin : public PhysicalNode {
 public:
  PhysHashJoin(PhysicalPtr build, PhysicalPtr probe, std::vector<size_t> build_keys,
               std::vector<size_t> probe_keys, ExprPtr residual, bool output_probe_first)
      : PhysicalNode(PhysicalNodeKind::kHashJoin,
                     output_probe_first ? Schema::Concat(probe->schema(), build->schema())
                                        : Schema::Concat(build->schema(), probe->schema())),
        build_keys_(std::move(build_keys)),
        probe_keys_(std::move(probe_keys)),
        residual_(std::move(residual)),
        output_probe_first_(output_probe_first) {
    AddChild(std::move(build));
    AddChild(std::move(probe));
  }

  const std::vector<size_t>& build_keys() const { return build_keys_; }
  const std::vector<size_t>& probe_keys() const { return probe_keys_; }
  const Expression* residual() const { return residual_.get(); }
  /// If true, output rows are (probe ++ build) so the schema matches the
  /// logical left-right order even when the optimizer swapped build sides.
  bool output_probe_first() const { return output_probe_first_; }
  std::string Describe() const override;

 private:
  std::vector<size_t> build_keys_;
  std::vector<size_t> probe_keys_;
  ExprPtr residual_;
  bool output_probe_first_;
};

/// External merge sort on key expressions.
class PhysSort : public PhysicalNode {
 public:
  struct Key {
    ExprPtr expr;
    bool desc = false;
  };

  PhysSort(PhysicalPtr child, std::vector<Key> keys)
      : PhysicalNode(PhysicalNodeKind::kSort, child->schema()), keys_(std::move(keys)) {
    AddChild(std::move(child));
  }

  const std::vector<Key>& keys() const { return keys_; }
  std::string Describe() const override;

 private:
  std::vector<Key> keys_;
};

/// Hash aggregation.
class PhysAggregate : public PhysicalNode {
 public:
  struct Agg {
    AggFunc func;
    ExprPtr arg;  // null for COUNT(*)
  };

  PhysAggregate(PhysicalPtr child, std::vector<ExprPtr> group_by, std::vector<Agg> aggs,
                Schema out_schema)
      : PhysicalNode(PhysicalNodeKind::kAggregate, std::move(out_schema)),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)) {
    AddChild(std::move(child));
  }

  const std::vector<ExprPtr>& group_by() const { return group_by_; }
  const std::vector<Agg>& aggs() const { return aggs_; }
  std::string Describe() const override;

 private:
  std::vector<ExprPtr> group_by_;
  std::vector<Agg> aggs_;
};

class PhysLimit : public PhysicalNode {
 public:
  PhysLimit(PhysicalPtr child, int64_t limit)
      : PhysicalNode(PhysicalNodeKind::kLimit, child->schema()), limit_(limit) {
    AddChild(std::move(child));
  }

  int64_t limit() const { return limit_; }
  std::string Describe() const override;

 private:
  int64_t limit_;
};

class PhysValues : public PhysicalNode {
 public:
  PhysValues(std::vector<Tuple> rows, Schema schema)
      : PhysicalNode(PhysicalNodeKind::kValues, std::move(schema)), rows_(std::move(rows)) {}

  const std::vector<Tuple>& rows() const { return rows_; }
  std::string Describe() const override;

 private:
  std::vector<Tuple> rows_;
};

/// Leaf scan over an engine-introspection snapshot (relopt_metrics() etc.);
/// rows are materialized from the live registries at executor Init.
class PhysTableFunctionScan : public PhysicalNode {
 public:
  PhysTableFunctionScan(std::string function_name, std::string alias, Schema schema)
      : PhysicalNode(PhysicalNodeKind::kTableFunctionScan, std::move(schema)),
        function_name_(std::move(function_name)),
        alias_(std::move(alias)) {}

  const std::string& function_name() const { return function_name_; }
  const std::string& alias() const { return alias_; }
  std::string Describe() const override;

 private:
  std::string function_name_;
  std::string alias_;
};

/// Materializes the child into a scratch heap so re-scans cost |result| pages
/// instead of re-running the child.
class PhysMaterialize : public PhysicalNode {
 public:
  explicit PhysMaterialize(PhysicalPtr child)
      : PhysicalNode(PhysicalNodeKind::kMaterialize, child->schema()) {
    AddChild(std::move(child));
  }

  std::string Describe() const override;
};

}  // namespace relopt
