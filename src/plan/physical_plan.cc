#include "plan/physical_plan.h"

#include "util/str_util.h"

namespace relopt {

const char* PhysicalNodeKindToString(PhysicalNodeKind kind) {
  switch (kind) {
    case PhysicalNodeKind::kSeqScan:
      return "SeqScan";
    case PhysicalNodeKind::kIndexScan:
      return "IndexScan";
    case PhysicalNodeKind::kFilter:
      return "Filter";
    case PhysicalNodeKind::kProject:
      return "Project";
    case PhysicalNodeKind::kNestedLoopJoin:
      return "NestedLoopJoin";
    case PhysicalNodeKind::kBlockNestedLoopJoin:
      return "BlockNestedLoopJoin";
    case PhysicalNodeKind::kIndexNestedLoopJoin:
      return "IndexNestedLoopJoin";
    case PhysicalNodeKind::kSortMergeJoin:
      return "SortMergeJoin";
    case PhysicalNodeKind::kHashJoin:
      return "HashJoin";
    case PhysicalNodeKind::kSort:
      return "Sort";
    case PhysicalNodeKind::kAggregate:
      return "Aggregate";
    case PhysicalNodeKind::kLimit:
      return "Limit";
    case PhysicalNodeKind::kValues:
      return "Values";
    case PhysicalNodeKind::kMaterialize:
      return "Materialize";
    case PhysicalNodeKind::kTableFunctionScan:
      return "TableFunctionScan";
  }
  return "?";
}

namespace {
void Render(const PhysicalNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.Describe();
  *out += StringPrintf("  (rows=%.0f io=%.1f cpu=%.0f)", node.est_rows(),
                       node.est_cost().page_ios, node.est_cost().cpu_tuples);
  *out += "\n";
  for (const PhysicalPtr& child : node.children()) {
    Render(*child, depth + 1, out);
  }
}
}  // namespace

std::string PhysicalNode::ToString() const {
  std::string out;
  Render(*this, 0, &out);
  return out;
}

std::string PhysSeqScan::Describe() const {
  std::string out = "SeqScan " + table_name_;
  if (alias_ != table_name_) out += " AS " + alias_;
  return out;
}

std::string PhysIndexScan::Describe() const {
  std::string out = "IndexScan " + table_name_;
  if (alias_ != table_name_) out += " AS " + alias_;
  out += " using " + index_name_;
  auto render_bound = [](const std::vector<Value>& vals) {
    std::string s = "(";
    for (size_t i = 0; i < vals.size(); ++i) {
      if (i > 0) s += ", ";
      s += vals[i].ToString();
    }
    return s + ")";
  };
  if (!lo_values.empty()) {
    out += std::string(" lo") + (lo_inclusive ? ">=" : ">") + render_bound(lo_values);
  }
  if (!hi_values.empty()) {
    out += std::string(" hi") + (hi_inclusive ? "<=" : "<") + render_bound(hi_values);
  }
  if (residual) out += " residual " + residual->ToString();
  return out;
}

std::string PhysFilter::Describe() const {
  return "Filter " + (predicate_ ? predicate_->ToString() : "true");
}

std::string PhysProject::Describe() const {
  std::string out = "Project ";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs_[i]->ToString();
  }
  return out;
}

std::string PhysNestedLoopJoin::Describe() const {
  return "NestedLoopJoin " + (predicate_ ? predicate_->ToString() : "true");
}

std::string PhysBlockNestedLoopJoin::Describe() const {
  return "BlockNestedLoopJoin(block=" + std::to_string(block_pages_) + " pages) " +
         (predicate_ ? predicate_->ToString() : "true");
}

std::string PhysIndexNestedLoopJoin::Describe() const {
  std::string out = "IndexNestedLoopJoin inner=" + inner_table_;
  if (inner_alias_ != inner_table_) out += " AS " + inner_alias_;
  out += " using " + index_name_ + " keys(";
  for (size_t i = 0; i < outer_key_exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += outer_key_exprs_[i]->ToString();
  }
  out += ")";
  if (residual_) out += " residual " + residual_->ToString();
  return out;
}

namespace {
std::string RenderKeyIndices(const std::vector<size_t>& keys) {
  std::string out = "(";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += ", ";
    out += "#" + std::to_string(keys[i]);
  }
  return out + ")";
}
}  // namespace

std::string PhysSortMergeJoin::Describe() const {
  std::string out =
      "SortMergeJoin left" + RenderKeyIndices(left_keys_) + " right" + RenderKeyIndices(right_keys_);
  if (residual_) out += " residual " + residual_->ToString();
  return out;
}

std::string PhysHashJoin::Describe() const {
  std::string out =
      "HashJoin build" + RenderKeyIndices(build_keys_) + " probe" + RenderKeyIndices(probe_keys_);
  if (output_probe_first_) out += " (sides swapped)";
  if (residual_) out += " residual " + residual_->ToString();
  return out;
}

std::string PhysSort::Describe() const {
  std::string out = "Sort ";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys_[i].expr->ToString();
    if (keys_[i].desc) out += " DESC";
  }
  return out;
}

std::string PhysAggregate::Describe() const {
  std::string out = "Aggregate";
  if (!group_by_.empty()) {
    out += " group by ";
    for (size_t i = 0; i < group_by_.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by_[i]->ToString();
    }
  }
  out += " [";
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (i > 0) out += ", ";
    if (aggs_[i].func == AggFunc::kCountStar) {
      out += "count(*)";
    } else {
      out += std::string(AggFuncToString(aggs_[i].func)) + "(" +
             (aggs_[i].arg ? aggs_[i].arg->ToString() : "*") + ")";
    }
  }
  out += "]";
  return out;
}

std::string PhysLimit::Describe() const { return "Limit " + std::to_string(limit_); }

std::string PhysValues::Describe() const {
  return "Values (" + std::to_string(rows_.size()) + " rows)";
}

std::string PhysMaterialize::Describe() const { return "Materialize"; }

std::string PhysTableFunctionScan::Describe() const {
  std::string out = "TableFunctionScan " + function_name_ + "()";
  if (alias_ != function_name_) out += " AS " + alias_;
  return out;
}

}  // namespace relopt
