// Logical query plans (the binder's output, the optimizer's input).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "expr/expression.h"
#include "types/schema.h"

namespace relopt {

enum class LogicalNodeKind {
  kScan,
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kSort,
  kLimit,
  kValues,
  kTableFunction,
};

class LogicalNode;
using LogicalPtr = std::unique_ptr<LogicalNode>;

/// \brief Base logical operator. Owns its children; exposes an output schema
/// so expressions above can bind.
class LogicalNode {
 public:
  LogicalNode(LogicalNodeKind kind, Schema schema)
      : kind_(kind), schema_(std::move(schema)) {}
  virtual ~LogicalNode() = default;

  LogicalNodeKind kind() const { return kind_; }
  const Schema& schema() const { return schema_; }

  const std::vector<LogicalPtr>& children() const { return children_; }
  std::vector<LogicalPtr>& mutable_children() { return children_; }
  LogicalNode* child(size_t i) const { return children_[i].get(); }
  void AddChild(LogicalPtr child) { children_.push_back(std::move(child)); }
  LogicalPtr TakeChild(size_t i) { return std::move(children_[i]); }

  /// One-line description of this node (no children).
  virtual std::string Describe() const = 0;

  /// Multi-line indented tree rendering.
  std::string ToString() const;

 protected:
  LogicalNodeKind kind_;
  Schema schema_;
  std::vector<LogicalPtr> children_;
};

/// Base-table scan. The schema is qualified by the FROM alias.
class LogicalScan : public LogicalNode {
 public:
  LogicalScan(std::string table_name, std::string alias, Schema schema)
      : LogicalNode(LogicalNodeKind::kScan, std::move(schema)),
        table_name_(std::move(table_name)),
        alias_(std::move(alias)) {}

  const std::string& table_name() const { return table_name_; }
  const std::string& alias() const { return alias_; }

  std::string Describe() const override;

 private:
  std::string table_name_;
  std::string alias_;
};

class LogicalFilter : public LogicalNode {
 public:
  LogicalFilter(LogicalPtr child, ExprPtr predicate)
      : LogicalNode(LogicalNodeKind::kFilter, child->schema()), predicate_(std::move(predicate)) {
    AddChild(std::move(child));
  }

  const Expression* predicate() const { return predicate_.get(); }
  ExprPtr TakePredicate() { return std::move(predicate_); }
  void SetPredicate(ExprPtr p) { predicate_ = std::move(p); }

  std::string Describe() const override;

 private:
  ExprPtr predicate_;
};

class LogicalProject : public LogicalNode {
 public:
  LogicalProject(LogicalPtr child, std::vector<ExprPtr> exprs, Schema out_schema)
      : LogicalNode(LogicalNodeKind::kProject, std::move(out_schema)), exprs_(std::move(exprs)) {
    AddChild(std::move(child));
  }

  const std::vector<ExprPtr>& exprs() const { return exprs_; }
  std::vector<ExprPtr>& mutable_exprs() { return exprs_; }

  std::string Describe() const override;

 private:
  std::vector<ExprPtr> exprs_;
};

/// Inner join (predicate null = cross product). The binder emits a left-deep
/// chain of these; the optimizer replaces the whole join subtree.
class LogicalJoin : public LogicalNode {
 public:
  LogicalJoin(LogicalPtr left, LogicalPtr right, ExprPtr predicate)
      : LogicalNode(LogicalNodeKind::kJoin, Schema::Concat(left->schema(), right->schema())),
        predicate_(std::move(predicate)) {
    AddChild(std::move(left));
    AddChild(std::move(right));
  }

  const Expression* predicate() const { return predicate_.get(); }
  ExprPtr TakePredicate() { return std::move(predicate_); }

  std::string Describe() const override;

 private:
  ExprPtr predicate_;
};

/// One aggregate to compute.
struct AggregateSpec {
  AggFunc func;
  ExprPtr arg;          // null for COUNT(*)
  std::string out_name; // display name, e.g. "count(*)"
};

class LogicalAggregate : public LogicalNode {
 public:
  LogicalAggregate(LogicalPtr child, std::vector<ExprPtr> group_by,
                   std::vector<AggregateSpec> aggs, Schema out_schema)
      : LogicalNode(LogicalNodeKind::kAggregate, std::move(out_schema)),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)) {
    AddChild(std::move(child));
  }

  const std::vector<ExprPtr>& group_by() const { return group_by_; }
  const std::vector<AggregateSpec>& aggs() const { return aggs_; }
  std::vector<ExprPtr>& mutable_group_by() { return group_by_; }
  std::vector<AggregateSpec>& mutable_aggs() { return aggs_; }

  std::string Describe() const override;

 private:
  std::vector<ExprPtr> group_by_;
  std::vector<AggregateSpec> aggs_;
};

struct SortKey {
  ExprPtr expr;
  bool desc = false;
};

class LogicalSort : public LogicalNode {
 public:
  LogicalSort(LogicalPtr child, std::vector<SortKey> keys)
      : LogicalNode(LogicalNodeKind::kSort, child->schema()), keys_(std::move(keys)) {
    AddChild(std::move(child));
  }

  const std::vector<SortKey>& keys() const { return keys_; }
  std::vector<SortKey>& mutable_keys() { return keys_; }

  std::string Describe() const override;

 private:
  std::vector<SortKey> keys_;
};

class LogicalLimit : public LogicalNode {
 public:
  LogicalLimit(LogicalPtr child, int64_t limit)
      : LogicalNode(LogicalNodeKind::kLimit, child->schema()), limit_(limit) {
    AddChild(std::move(child));
  }

  int64_t limit() const { return limit_; }

  std::string Describe() const override;

 private:
  int64_t limit_;
};

/// Introspection table function in FROM (relopt_metrics() etc.): a leaf scan
/// over engine snapshot data (engine/table_functions.h). The schema is
/// qualified by the FROM alias.
class LogicalTableFunction : public LogicalNode {
 public:
  LogicalTableFunction(std::string function_name, std::string alias, Schema schema)
      : LogicalNode(LogicalNodeKind::kTableFunction, std::move(schema)),
        function_name_(std::move(function_name)),
        alias_(std::move(alias)) {}

  const std::string& function_name() const { return function_name_; }
  const std::string& alias() const { return alias_; }

  std::string Describe() const override;

 private:
  std::string function_name_;
  std::string alias_;
};

/// Literal rows (INSERT ... VALUES and FROM-less SELECT).
class LogicalValues : public LogicalNode {
 public:
  LogicalValues(std::vector<Tuple> rows, Schema schema)
      : LogicalNode(LogicalNodeKind::kValues, std::move(schema)), rows_(std::move(rows)) {}

  const std::vector<Tuple>& rows() const { return rows_; }

  std::string Describe() const override;

 private:
  std::vector<Tuple> rows_;
};

}  // namespace relopt
