#include "plan/logical_plan.h"

namespace relopt {

namespace {
void Render(const LogicalNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.Describe();
  *out += "\n";
  for (const LogicalPtr& child : node.children()) {
    Render(*child, depth + 1, out);
  }
}
}  // namespace

std::string LogicalNode::ToString() const {
  std::string out;
  Render(*this, 0, &out);
  return out;
}

std::string LogicalScan::Describe() const {
  std::string out = "Scan " + table_name_;
  if (alias_ != table_name_) out += " AS " + alias_;
  return out;
}

std::string LogicalFilter::Describe() const {
  return "Filter " + (predicate_ ? predicate_->ToString() : "true");
}

std::string LogicalProject::Describe() const {
  std::string out = "Project ";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs_[i]->ToString();
  }
  return out;
}

std::string LogicalJoin::Describe() const {
  return predicate_ ? "Join " + predicate_->ToString() : "CrossJoin";
}

std::string LogicalAggregate::Describe() const {
  std::string out = "Aggregate";
  if (!group_by_.empty()) {
    out += " group by ";
    for (size_t i = 0; i < group_by_.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by_[i]->ToString();
    }
  }
  out += " [";
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += aggs_[i].out_name;
  }
  out += "]";
  return out;
}

std::string LogicalSort::Describe() const {
  std::string out = "Sort ";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys_[i].expr->ToString();
    if (keys_[i].desc) out += " DESC";
  }
  return out;
}

std::string LogicalLimit::Describe() const { return "Limit " + std::to_string(limit_); }

std::string LogicalValues::Describe() const {
  return "Values (" + std::to_string(rows_.size()) + " rows)";
}

std::string LogicalTableFunction::Describe() const {
  std::string out = "TableFunction " + function_name_ + "()";
  if (alias_ != function_name_) out += " AS " + alias_;
  return out;
}

}  // namespace relopt
