// Per-thread I/O counters backing per-operator attribution under parallelism.
//
// The DiskManager and BufferPool bump a process-wide atomic total *and* the
// calling thread's local counters. Attribution (ExecContext) diffs only the
// thread-local counters, so each worker thread charges exactly the I/O it
// performed to the operator whose Init/Next frame is active on that thread —
// deltas stay exact no matter how many threads run concurrently.
#pragma once

#include <cstdint>

namespace relopt {

/// Monotonic per-thread I/O tallies (never reset; consumers diff snapshots).
struct ThreadIoCounters {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
};

/// The calling thread's counters.
inline ThreadIoCounters& LocalIoCounters() {
  thread_local ThreadIoCounters counters;
  return counters;
}

}  // namespace relopt
