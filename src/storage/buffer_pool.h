// BufferPool: fixed-size page cache with LRU replacement and hit/miss stats.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/io_counters.h"
#include "storage/page.h"
#include "util/result.h"

namespace relopt {

/// Cache effectiveness counters.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;   // page faults -> disk reads
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
};

/// \brief A frame handed out by the buffer pool. Pin with Fetch/New, unpin
/// when done; the pool evicts only unpinned frames (LRU).
///
/// Concurrency: a pin guarantees the frame stays resident, but not that its
/// bytes are stable — concurrent pinners of the same page must take the
/// frame `latch()` (shared to read page bytes, exclusive to mutate them).
/// Latch ordering rule: acquire a frame latch only *after* the pool call
/// returns (never while inside the pool), and release it before Unpin.
class PageFrame {
 public:
  PageId page_id() const { return page_id_; }
  char* data() { return data_.get(); }
  const char* data() const { return data_.get(); }

  /// Per-frame content latch (see class comment for the ordering rule).
  std::shared_mutex& latch() const { return latch_; }

 private:
  friend class BufferPool;
  PageId page_id_;
  std::unique_ptr<char[]> data_;
  int pin_count_ = 0;
  bool dirty_ = false;
  mutable std::shared_mutex latch_;
};

/// \brief Page cache in front of the DiskManager.
///
/// The pool is the engine's memory budget: join and sort operators size their
/// in-memory working sets from `capacity()`, so varying the pool capacity
/// reproduces the buffer-size experiments.
///
/// Thread-safe: one pool mutex guards the frame map, LRU state, and pin
/// counts (disk I/O for faults and write-backs happens under it, serializing
/// page movement); hit/miss/eviction counters are atomic so `stats()` is a
/// lock-free snapshot. Pinned frames are never evicted, so readers holding a
/// pin may access frame bytes outside the mutex (with the frame latch when a
/// concurrent writer is possible).
class BufferPool {
 public:
  /// `capacity` is in pages.
  BufferPool(DiskManager* disk, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches a page, pinning it. Miss -> one disk read (+ possible dirty
  /// write-back on eviction). Fails with ResourceExhausted if every frame is
  /// pinned.
  Result<PageFrame*> FetchPage(PageId page_id);

  /// Allocates a new page in `file_id` and returns it pinned and zeroed.
  Result<PageFrame*> NewPage(FileId file_id);

  /// Unpins; `dirty` marks the frame for write-back on eviction/flush.
  Status UnpinPage(PageId page_id, bool dirty);

  /// Writes back a page if dirty. No-op if not cached.
  Status FlushPage(PageId page_id);

  /// Writes back all dirty pages (does not evict).
  Status FlushAll();

  /// Drops all unpinned frames (writing back dirty ones). For tests and for
  /// resetting cache state between benchmark runs.
  Status EvictAll();

  /// Discards every cached frame of `file_id` WITHOUT write-back. Call when
  /// deleting a file; frames must be unpinned.
  Status DropFilePages(FileId file_id);

  size_t capacity() const { return capacity_; }
  /// Snapshot of the cache counters (atomic reads; safe while threads run).
  BufferPoolStats stats() const;
  void ResetStats();
  DiskManager* disk() const { return disk_; }

  /// Number of frames currently cached (for tests).
  size_t NumCached() const;

 private:
  /// Makes room for one more frame; evicts the LRU unpinned frame if full.
  /// Requires `mu_` held.
  Status EnsureCapacityLocked();
  /// Requires `mu_` held.
  Status EvictFrameLocked(PageId page_id);
  /// Requires `mu_` held.
  void TouchLruLocked(PageId page_id);

  DiskManager* disk_;
  size_t capacity_;
  mutable std::mutex mu_;  ///< guards frames_, lru_, pin counts, dirty bits
  std::unordered_map<PageId, std::unique_ptr<PageFrame>, PageIdHash> frames_;
  // LRU list of unpinned-or-pinned pages; front = most recent.
  std::list<PageId> lru_;
  std::unordered_map<PageId, std::list<PageId>::iterator, PageIdHash> lru_pos_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> dirty_writebacks_{0};
};

/// RAII pin guard: unpins on destruction.
class PinGuard {
 public:
  PinGuard(BufferPool* pool, PageFrame* frame, bool dirty = false)
      : pool_(pool), frame_(frame), dirty_(dirty) {}
  ~PinGuard() {
    if (pool_ && frame_) pool_->UnpinPage(frame_->page_id(), dirty_);
  }
  PinGuard(const PinGuard&) = delete;
  PinGuard& operator=(const PinGuard&) = delete;
  PinGuard(PinGuard&& other) noexcept
      : pool_(other.pool_), frame_(other.frame_), dirty_(other.dirty_) {
    other.pool_ = nullptr;
    other.frame_ = nullptr;
  }

  void MarkDirty() { dirty_ = true; }
  PageFrame* frame() const { return frame_; }

 private:
  BufferPool* pool_;
  PageFrame* frame_;
  bool dirty_;
};

}  // namespace relopt
