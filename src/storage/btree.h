// BTree: a page-backed B+tree index mapping encoded keys to RIDs.
//
// Keys are order-preserving byte strings (see types/key_codec.h), so all
// comparisons are memcmp. Duplicate keys are allowed. Every node visit goes
// through the buffer pool, so index I/O is accounted like any other page
// access — which is what the access-path cost experiments measure.
//
// Simplifications (documented in DESIGN.md):
//  * Delete removes entries without rebalancing (underflow allowed).
//  * Single-threaded; no latching.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "util/result.h"

namespace relopt {

/// \brief B+tree over (encoded key, RID) pairs.
class BTree {
 public:
  /// Opens a tree over an existing file (page 0 is the meta page).
  BTree(BufferPool* pool, FileId file_id);

  /// Creates a new file with an empty tree (meta page + empty root leaf).
  static Result<BTree> Create(BufferPool* pool);

  FileId file_id() const { return file_id_; }

  /// Inserts (key, rid). Duplicates are allowed.
  Status Insert(const std::string& key, Rid rid);

  /// Removes one entry equal to (key, rid). NotFound if absent.
  Status Delete(const std::string& key, Rid rid);

  /// All RIDs whose key equals `key`.
  Result<std::vector<Rid>> SearchEqual(const std::string& key);

  /// Tree height in levels (1 = just a root leaf). Used by the cost model.
  Result<int> Height();

  /// Total number of entries (leaf walk; O(leaves)).
  Result<size_t> NumEntries();

  /// Number of leaf pages (leaf walk). The cost model uses this.
  Result<size_t> NumLeafPages();

  /// Checks structural invariants (key order within and across nodes,
  /// child separator bounds). For tests.
  Status CheckIntegrity();

 private:
  /// In-memory decoded node.
  struct Node {
    bool is_leaf = true;
    PageNo next = kInvalidPageNo;        // leaf sibling chain
    PageNo leftmost_child = kInvalidPageNo;  // internal only
    struct Entry {
      std::string key;
      Rid rid;        // leaf payload
      PageNo child = kInvalidPageNo;  // internal payload
    };
    std::vector<Entry> entries;

    size_t SerializedSize() const;
  };

 public:
  /// \brief Forward iterator over a key range.
  ///
  /// Bounds are encoded keys; empty optional = unbounded on that side.
  /// `lo_inclusive`/`hi_inclusive` control closed/open ends.
  class Iterator {
   public:
    /// Positions at the first entry >= lo (or > lo if exclusive).
    static Result<Iterator> Seek(BTree* tree, std::optional<std::string> lo, bool lo_inclusive,
                                 std::optional<std::string> hi, bool hi_inclusive);

    /// Advances; returns false when the range is exhausted.
    Result<bool> Next(std::string* key, Rid* rid);

   private:
    Iterator(BTree* tree, std::optional<std::string> hi, bool hi_inclusive)
        : tree_(tree), hi_(std::move(hi)), hi_inclusive_(hi_inclusive) {}

    BTree* tree_ = nullptr;
    PageNo leaf_ = kInvalidPageNo;
    size_t pos_ = 0;
    std::optional<std::string> hi_;
    bool hi_inclusive_ = true;
    // Decoded current leaf; avoids re-parsing the page per entry. Valid only
    // while no inserts/deletes interleave with the scan (single-threaded
    // engine invariant).
    std::optional<Node> cached_;
  };

 private:
  friend class Iterator;

  Result<PageNo> RootPage();
  Status SetRootPage(PageNo root);

  Result<Node> LoadNode(PageNo page_no);
  Status StoreNode(PageNo page_no, const Node& node);
  Result<PageNo> AllocateNode(const Node& node);

  /// Descends to the leaf that should contain `key`; records the path of
  /// internal pages in `path` (root first) and the child index taken.
  Result<PageNo> FindLeaf(const std::string& key, std::vector<std::pair<PageNo, size_t>>* path);

  /// Splits an over-full node stored at `page_no`; returns the separator key
  /// and the new right sibling's page.
  Result<std::pair<std::string, PageNo>> SplitNode(PageNo page_no, Node* node);

  Status CheckNode(PageNo page_no, const std::string* lo, const std::string* hi, bool is_root,
                   int depth, int* leaf_depth);

  BufferPool* pool_;
  FileId file_id_;
};

}  // namespace relopt
