// Page constants and identifiers for the paged storage engine.
#pragma once

#include <cstdint>
#include <string>

namespace relopt {

/// Fixed page size. All storage cost accounting is in units of these pages,
/// matching the foundational cost models (page fetches as the cost unit).
constexpr size_t kPageSize = 4096;

using FileId = uint32_t;
using PageNo = uint32_t;

constexpr PageNo kInvalidPageNo = static_cast<PageNo>(-1);

/// Identifies a page: (file, page number within file).
struct PageId {
  FileId file_id = 0;
  PageNo page_no = kInvalidPageNo;

  bool IsValid() const { return page_no != kInvalidPageNo; }
  bool operator==(const PageId& other) const {
    return file_id == other.file_id && page_no == other.page_no;
  }
  std::string ToString() const {
    return "(" + std::to_string(file_id) + "," + std::to_string(page_no) + ")";
  }
};

struct PageIdHash {
  size_t operator()(const PageId& id) const {
    return (static_cast<size_t>(id.file_id) << 32) ^ id.page_no;
  }
};

/// Record identifier: page within a heap file plus slot index.
struct Rid {
  PageNo page_no = kInvalidPageNo;
  uint16_t slot = 0;

  bool IsValid() const { return page_no != kInvalidPageNo; }
  bool operator==(const Rid& other) const {
    return page_no == other.page_no && slot == other.slot;
  }
  bool operator<(const Rid& other) const {
    return page_no != other.page_no ? page_no < other.page_no : slot < other.slot;
  }
  std::string ToString() const {
    return "[" + std::to_string(page_no) + ":" + std::to_string(slot) + "]";
  }
};

}  // namespace relopt
